(** Hardware/OS primitive cost tables.

    Every cost the simulator charges is a composition of the primitives
    below. The values are {e calibrated}, not measured: they were fitted so
    that the per-layer path sums of our three protocol placements
    approximate the paper's Table 4 latency breakdown on the same
    platforms (see DESIGN.md section 2). All costs are in nanoseconds;
    per-byte costs are nanoseconds per byte. *)

type t = {
  name : string;
  app_call_overhead : int;
      (** benchmark-program work around each socket call (loop, stubs,
          timestamping) — present in the paper's measured round trips but
          not in its Table 4 rows, so charged under [Control] *)
  (* control transfer *)
  proc_call : int;  (** library procedure-call entry into the socket layer *)
  trap : int;  (** user/kernel boundary crossing, in and out *)
  ipc_msg : int;  (** one-way Mach IPC message, small payload *)
  ipc_per_byte : int;  (** marginal IPC cost per payload byte (two copies) *)
  (* scheduling *)
  wakeup_light : int;  (** wake a thread in the same address space *)
  wakeup_kernel : int;  (** kernel wakeup of a blocked user thread *)
  wakeup_heavy : int;  (** server wakeup through priority-level machinery *)
  (* synchronisation at protocol lock points (one raise/lower pair) *)
  sync_kernel : int;  (** in-kernel spl: interrupt masking, very cheap *)
  sync_light : int;  (** protocol library: plain user-level locks *)
  sync_heavy : int;  (** UX server: simulated hardware priority levels *)
  (* data movement, ns/byte *)
  copy_per_byte : int;  (** memory-to-memory copy within an address space *)
  copy_user_kernel_per_byte : int;  (** copyin/copyout across user/kernel *)
  kernel_mem_read_per_byte : int;  (** copy out of a wired kernel buffer *)
  device_read_per_byte : int;  (** copy from NIC device memory to host *)
  device_write_per_byte : int;  (** copy from host to NIC device memory *)
  checksum_per_byte : int;  (** Internet checksum over payload *)
  (* memory management *)
  mbuf_alloc : int;  (** allocate one mbuf (or cluster) *)
  mbuf_op : int;  (** constant-time chain operation: append, trim... *)
  (* fixed protocol-processing costs per packet (header work, PCB lookup) *)
  socket_layer : int;  (** socket-layer entry bookkeeping *)
  tcp_fixed : int;  (** TCP header construction / state processing *)
  udp_fixed : int;
  ip_fixed : int;
  ether_fixed : int;  (** encapsulation + driver transmit setup *)
  route_lookup : int;
  arp_cache_hit : int;
  (* receive-side kernel machinery *)
  intr : int;  (** interrupt entry/exit *)
  drv_rx_fixed : int;  (** driver work to accept a frame (descriptor ring,
                           buffer management) *)
  drv_rx_peek : int;  (** integrated filter: read just the headers out of
                          device memory, deferring the body copy *)
  netisr : int;  (** software-interrupt dispatch of the input queue *)
  pf_base : int;  (** packet-filter invocation overhead *)
  pf_per_insn : int;  (** per executed filter instruction *)
  shm_deliver_fixed : int;  (** hand a packet to a shared-memory ring:
                                mapping lookup plus condition signal *)
  (* wire *)
  wire_bps : int;  (** link bandwidth, bits/second *)
  wire_ifg : int;  (** inter-frame gap, ns *)
  wire_preamble_bytes : int;  (** preamble+SFD bytes serialised per frame *)
}

val decstation : t
(** DECstation 5000/200: 25 MHz MIPS R3000, Lance Ethernet (DMA). *)

val gateway486 : t
(** Gateway: 33 MHz i486, 3Com 3C503 on ISA — programmed I/O eight bits at
    a time, which makes device copies the throughput bottleneck. *)

type nic = {
  nic_name : string;
  pes : int;
      (** identical processing elements available to the protocol stage *)
  pre_fixed : int;  (** pre-order stage: parse headers, demux to flow *)
  pre_per_byte : int;
  proto_fixed : int;  (** protocol stage: TCP state machine, checksum *)
  proto_per_byte : int;
  post_fixed : int;  (** post-order stage: reorder point, completions *)
  post_per_byte : int;
  dma_per_byte : int;  (** NIC<->host memory DMA, charged in post-order *)
  doorbell : int;  (** host CPU cost to ring a doorbell *)
  completion : int;  (** host CPU cost to reap one completion entry *)
  crossing : int;  (** per-descriptor host<->NIC queue crossing *)
  ring_slots : int;  (** bounded descriptor ring depth *)
}
(** A smart NIC running the TCP fast path as a FlexTOE-style per-segment
    stage pipeline: serialised pre-order, [pes]-wide protocol stage,
    serialised post-order (see DESIGN.md section 16). *)

val nic_default : nic
(** Four processing elements; calibrated so a single PE is compute-bound
    on bulk transfer while four are wire-limited. *)

val nic_serial : nic
(** [nic_default] restricted to one processing element — the
    per-connection-serialisation baseline the pipeline must beat. *)

val zero_cost : t -> t
(** Zero every host-CPU cost, keep the wire parameters.  The platform the
    offloaded protocol stack runs under: its logic executes but charges
    nothing; the NIC pipeline model supplies the time instead. *)

val frame_time : t -> int -> int
(** [frame_time p len] is the wire occupancy in ns of a [len]-byte frame,
    including preamble and inter-frame gap. *)

val pp : Format.formatter -> t -> unit
