(** Accumulates CPU time per {!Phase.t} for the Table 4 experiment. *)

type t

val create : unit -> t

val add : t -> Phase.t -> int -> unit
(** Attribute [ns] of work to a phase. *)

val total : t -> Phase.t -> int

val grand_total : t -> int
(** Sum over all phases. *)

val reset : t -> unit
