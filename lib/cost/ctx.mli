(** Execution context: where protocol code is running and what it costs.

    The same TCP/IP/UDP code runs in the kernel, in the UX server, or in an
    application library; a [Ctx.t] tells it which CPU to consume, at what
    scheduling priority, how expensive its synchronisation primitives are,
    and where to attribute the time for the latency-breakdown experiment. *)

type role =
  | Kernel_stack  (** protocol in the kernel: spl is cheap, runs at
                      kernel priority *)
  | Server_stack  (** protocol in the UX server: simulated hardware
                      priority levels are expensive *)
  | Library_stack  (** protocol in the application: plain user-level locks *)

type t = {
  eng : Psd_sim.Engine.t;
  cpu : Psd_sim.Cpu.t;
  plat : Platform.t;
  role : role;
  prio : Psd_sim.Cpu.prio;
  sync_ns : int;  (** one lock / priority-level raise+lower pair *)
  wakeup_ns : int;  (** waking the thread that waits for data *)
  mutable breakdown : Breakdown.t option;
}

val create :
  eng:Psd_sim.Engine.t ->
  cpu:Psd_sim.Cpu.t ->
  plat:Platform.t ->
  role:role ->
  t

val charge : t -> Phase.t -> int -> unit
(** Consume CPU for [ns] at the context's priority and attribute it. *)

val charge_at : t -> Psd_sim.Cpu.prio -> Phase.t -> int -> unit
(** Consume at an explicit priority (interrupt-side work). *)

val sync : t -> Phase.t -> unit
(** One synchronisation point: an splnet/splx pair in the kernel and
    server, a mutex acquire/release in the library. *)

val account : t -> Phase.t -> int -> unit
(** Attribute time without consuming CPU (wire transit). *)

val pp_role : Format.formatter -> role -> unit
