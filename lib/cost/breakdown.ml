type t = (Phase.t, int ref) Hashtbl.t

let create () = Hashtbl.create 16

let cell t phase =
  match Hashtbl.find_opt t phase with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t phase r;
    r

let add t phase ns = cell t phase := !(cell t phase) + ns

let total t phase = match Hashtbl.find_opt t phase with
  | Some r -> !r
  | None -> 0

let grand_total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

let reset t = Hashtbl.reset t
