(** The latency-breakdown components of the paper's Table 4.

    Every CPU charge in the stack is attributed to one of these phases so
    the breakdown experiment can print the same rows the paper reports. *)

type t =
  | Entry_copyin  (** socket-layer entry + move user data into mbufs *)
  | Proto_output  (** tcp_output / udp_output *)
  | Ip_output
  | Ether_output  (** encapsulate + hand to the device *)
  | Device_intr  (** field the receive interrupt, read the device *)
  | Netisr_filter  (** demultiplex: netisr or packet-filter run *)
  | Kernel_copyout  (** deliver packet to the destination address space *)
  | Mbuf_queue  (** wrap as mbuf chain, queue on the input queue *)
  | Ip_intr
  | Proto_input  (** tcp_input / udp_input *)
  | Wakeup  (** pass control to the thread awaiting data *)
  | Copyout_exit  (** copy to the caller's buffer and leave the stack *)
  | Wire  (** network transit *)
  | Control  (** session setup / teardown / migration — not in Table 4 *)
  | Desc_crossing
      (** host<->NIC descriptor-queue crossing under the Offload
          placement — not in the paper's Table 4 *)

val all : t list
(** In Table 4 row order, [Control] and [Desc_crossing] last. *)

val label : t -> string

val send_path : t list
val receive_path : t list
