type placement = In_kernel | Server | Library | Offload

type delivery = Pf_ipc | Pf_shm | Pf_shm_ipf

type api = Classic | Newapi

type os = Mach25 | Ultrix | Bsd386 | Ux | Bnr2ss | Psd

type t = {
  label : string;
  placement : placement;
  delivery : delivery;
  api : api;
  os : os;
  large_tcp_bug : bool;
  nic : Platform.nic option;
}

let pp_placement fmt = function
  | In_kernel -> Format.fprintf fmt "in-kernel"
  | Server -> Format.fprintf fmt "server"
  | Library -> Format.fprintf fmt "library"
  | Offload -> Format.fprintf fmt "nic-offload"

let pp fmt t =
  match t.nic with
  | None -> Format.fprintf fmt "%s" t.label
  | Some n ->
      Format.fprintf fmt "%s [%a, %s x%d]" t.label pp_placement t.placement
        n.Platform.nic_name n.Platform.pes

let make ?(delivery = Pf_shm) ?(api = Classic) ?(bug = false) ?nic label
    placement os =
  { label; placement; delivery; api; os; large_tcp_bug = bug; nic }

let mach25_kernel = make "Mach 2.5 In-Kernel" In_kernel Mach25
let ultrix_kernel = make "Ultrix 4.2A In-Kernel" In_kernel Ultrix
let bsd386_kernel = make ~bug:true "386BSD In-Kernel" In_kernel Bsd386
let ux_server = make "Mach 3.0+UX Server" Server Ux
let bnr2ss_server = make ~bug:true "Mach 3.0+BNR2SS Server" Server Bnr2ss

let library d label = make ~delivery:d ("Mach 3.0+UX " ^ label) Library Psd

let library_ipc = library Pf_ipc "Library-IPC"
let library_shm = library Pf_shm "Library-SHM"
let library_shm_ipf = library Pf_shm_ipf "Library-SHM-IPF"

let with_newapi c suffix =
  { c with api = Newapi; label = "Mach 3.0+UX Library-NEWAPI-" ^ suffix }

let library_newapi_ipc = with_newapi library_ipc "IPC"
let library_newapi_shm = with_newapi library_shm "SHM"
let library_newapi_shm_ipf = with_newapi library_shm_ipf "SHM-IPF"

(* The seventh placement: the TCP fast path runs on a smart-NIC model and
   the host sees only a descriptor ring.  The API is necessarily NEWAPI —
   received payloads live in NIC-loaned host buffers, so the classic
   copying interface does not apply.  Delivery is irrelevant (no packet
   filter runs on the host) and kept at its default. *)
let offload =
  make ~api:Newapi ~nic:Platform.nic_default "Smart-NIC Offload" Offload Psd

let offload_serial =
  make ~api:Newapi ~nic:Platform.nic_serial "Smart-NIC Offload (1 PE)"
    Offload Psd

let decstation_rows =
  [
    mach25_kernel;
    ultrix_kernel;
    ux_server;
    library_ipc;
    library_shm;
    library_shm_ipf;
  ]

let gateway_rows =
  [
    mach25_kernel;
    bsd386_kernel;
    ux_server;
    bnr2ss_server;
    library_ipc;
    library_shm;
  ]

let newapi_rows =
  [ library_newapi_ipc; library_newapi_shm; library_newapi_shm_ipf ]

let table3_rows =
  [
    mach25_kernel;
    ultrix_kernel;
    library_newapi_ipc;
    library_newapi_shm;
    library_newapi_shm_ipf;
  ]

let effective_platform (p : Platform.t) os =
  let scale_proto m (p : Platform.t) =
    {
      p with
      tcp_fixed = p.tcp_fixed * m / 100;
      udp_fixed = p.udp_fixed * m / 100;
      ip_fixed = p.ip_fixed * m / 100;
      ether_fixed = p.ether_fixed * m / 100;
      socket_layer = p.socket_layer * m / 100;
      checksum_per_byte = p.checksum_per_byte * m / 100;
    }
  in
  let scale_intr m (p : Platform.t) =
    {
      p with
      intr = p.intr * m / 100;
      netisr = p.netisr * m / 100;
      wakeup_kernel = p.wakeup_kernel * m / 100;
      wakeup_heavy = p.wakeup_heavy * m / 100;
    }
  in
  let scale_sync m (p : Platform.t) =
    { p with sync_heavy = p.sync_heavy * m / 100 }
  in
  (* Mach 2.5, Ultrix and UX run the 4.3BSD protocols, whose UDP and
     socket layers are markedly heavier than the Net/2 (BNR2) code our
     library, 386BSD and BNR2SS use (paper Section 4, "Platforms"). *)
  let scale_43bsd (p : Platform.t) =
    {
      p with
      udp_fixed = p.udp_fixed * 370 / 100;
      tcp_fixed = p.tcp_fixed * 115 / 100;
      socket_layer = p.socket_layer * 190 / 100;
      ip_fixed = p.ip_fixed * 150 / 100;
      mbuf_alloc = p.mbuf_alloc * 150 / 100;
      netisr = p.netisr * 140 / 100;
      intr = p.intr * 125 / 100;
    }
  in
  match os with
  | Psd -> p
  | Mach25 -> scale_43bsd p
  | Ux -> scale_43bsd p
  | Ultrix -> scale_proto 108 (scale_43bsd p)
  | Bsd386 -> scale_intr 300 (scale_proto 125 p)
  | Bnr2ss -> scale_sync 115 (scale_proto 105 p)
