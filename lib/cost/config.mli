(** Protocol-placement configurations — the rows of the paper's tables.

    A configuration says {e where} the protocol stack executes
    (kernel / UX-style server / per-application library), {e how} incoming
    packets reach a library stack (per-packet IPC, shared-memory ring, or
    the device-integrated packet filter), {e which} socket API the
    application uses (the classic copying interface or the shared-buffer
    NEWAPI of Section 4.2), and which historical OS profile supplies the
    cost multipliers. *)

type placement =
  | In_kernel
  | Server
  | Library
  | Offload
      (** the TCP fast path runs on a smart-NIC model; the host sees only
          a descriptor ring (doorbell + completion, loaned rx buffers) *)

type delivery =
  | Pf_ipc  (** one Mach IPC message per incoming packet *)
  | Pf_shm  (** shared-memory ring; wakeups amortised over packet trains *)
  | Pf_shm_ipf
      (** packet filter integrated with the device driver: the packet body
          is copied once, from device memory straight into the receiving
          address space *)

type api =
  | Classic  (** BSD sockets: data copied between caller and stack *)
  | Newapi  (** shared buffers between application and protocol stack *)

type os = Mach25 | Ultrix | Bsd386 | Ux | Bnr2ss | Psd

type t = {
  label : string;  (** row label as printed in the tables *)
  placement : placement;
  delivery : delivery;  (** meaningful only for [Library] placement *)
  api : api;
  os : os;
  large_tcp_bug : bool;
      (** 386BSD and BNR2SS could not send large TCP packets; benchmarks
          report NA for the affected cells (paper Table 2). *)
  nic : Platform.nic option;
      (** the NIC compute profile; [Some _] exactly for [Offload] rows *)
}

val pp : Format.formatter -> t -> unit

val pp_placement : Format.formatter -> placement -> unit

(* Named configurations used by the experiments. *)

val mach25_kernel : t
val ultrix_kernel : t
val bsd386_kernel : t
val ux_server : t
val bnr2ss_server : t
val library_ipc : t
val library_shm : t
val library_shm_ipf : t
val library_newapi_ipc : t
val library_newapi_shm : t
val library_newapi_shm_ipf : t

val offload : t
(** Smart-NIC offload with [Platform.nic_default] (four processing
    elements, fine-grained pipeline parallelism). *)

val offload_serial : t
(** Same NIC restricted to one processing element — the per-connection
    serialisation baseline the pipeline speedup is measured against. *)

val decstation_rows : t list
(** The DECstation rows of Table 2, in paper order. *)

val gateway_rows : t list
(** The Gateway 486 rows of Table 2, in paper order. *)

val table3_rows : t list
(** The rows of Table 3 (two in-kernel baselines + three NEWAPI variants). *)

val newapi_rows : t list
(** The three shared-buffer library placements (IPC / SHM / SHM-IPF), in
    paper order — the rows the copy-count experiment appends to show the
    receive body copies reaching zero. *)

val effective_platform : Platform.t -> os -> Platform.t
(** Apply an OS profile's cost multipliers to a hardware platform:
    Ultrix protocol code is slightly slower than Mach 2.5's, 386BSD has
    markedly more expensive interrupt handling and scheduling, BNR2SS
    carries heavier server synchronisation. *)
