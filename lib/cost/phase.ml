type t =
  | Entry_copyin
  | Proto_output
  | Ip_output
  | Ether_output
  | Device_intr
  | Netisr_filter
  | Kernel_copyout
  | Mbuf_queue
  | Ip_intr
  | Proto_input
  | Wakeup
  | Copyout_exit
  | Wire
  | Control
  | Desc_crossing

let all =
  [
    Entry_copyin;
    Proto_output;
    Ip_output;
    Ether_output;
    Device_intr;
    Netisr_filter;
    Kernel_copyout;
    Mbuf_queue;
    Ip_intr;
    Proto_input;
    Wakeup;
    Copyout_exit;
    Wire;
    Control;
    Desc_crossing;
  ]

let label = function
  | Entry_copyin -> "entry/copyin"
  | Proto_output -> "tcp,udp_output"
  | Ip_output -> "ip_output"
  | Ether_output -> "ether_output"
  | Device_intr -> "device intr/read"
  | Netisr_filter -> "netisr/packet filter"
  | Kernel_copyout -> "kernel copyout"
  | Mbuf_queue -> "mbuf/queue"
  | Ip_intr -> "ipintr"
  | Proto_input -> "tcp,udp_input"
  | Wakeup -> "wakeup user thread"
  | Copyout_exit -> "copyout/exit"
  | Wire -> "network transit"
  | Control -> "control/session ops"
  | Desc_crossing -> "descriptor crossing"

let send_path = [ Entry_copyin; Proto_output; Ip_output; Ether_output ]

let receive_path =
  [
    Device_intr;
    Netisr_filter;
    Kernel_copyout;
    Mbuf_queue;
    Ip_intr;
    Proto_input;
    Wakeup;
    Copyout_exit;
  ]
