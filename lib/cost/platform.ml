type t = {
  name : string;
  app_call_overhead : int;
  proc_call : int;
  trap : int;
  ipc_msg : int;
  ipc_per_byte : int;
  wakeup_light : int;
  wakeup_kernel : int;
  wakeup_heavy : int;
  sync_kernel : int;
  sync_light : int;
  sync_heavy : int;
  copy_per_byte : int;
  copy_user_kernel_per_byte : int;
  kernel_mem_read_per_byte : int;
  device_read_per_byte : int;
  device_write_per_byte : int;
  checksum_per_byte : int;
  mbuf_alloc : int;
  mbuf_op : int;
  socket_layer : int;
  tcp_fixed : int;
  udp_fixed : int;
  ip_fixed : int;
  ether_fixed : int;
  route_lookup : int;
  arp_cache_hit : int;
  intr : int;
  drv_rx_fixed : int;
  drv_rx_peek : int;
  netisr : int;
  pf_base : int;
  pf_per_insn : int;
  shm_deliver_fixed : int;
  wire_bps : int;
  wire_ifg : int;
  wire_preamble_bytes : int;
}

(* Values in nanoseconds, calibrated against the paper's Table 4
   (DECstation 5000/200 column sums); see DESIGN.md. *)
let decstation =
  {
    name = "DECstation 5000/200";
    app_call_overhead = 40_000;
    proc_call = 2_000;
    trap = 23_000;
    ipc_msg = 75_000;
    ipc_per_byte = 90;
    wakeup_light = 40_000;
    wakeup_kernel = 65_000;
    wakeup_heavy = 230_000;
    sync_kernel = 1_500;
    sync_light = 9_000;
    sync_heavy = 70_000;
    copy_per_byte = 126;
    copy_user_kernel_per_byte = 70;
    kernel_mem_read_per_byte = 24;
    device_read_per_byte = 270;
    device_write_per_byte = 20;
    checksum_per_byte = 150;
    mbuf_alloc = 8_000;
    mbuf_op = 5_000;
    socket_layer = 9_000;
    tcp_fixed = 60_000;
    udp_fixed = 15_000;
    ip_fixed = 18_000;
    ether_fixed = 50_000;
    route_lookup = 5_000;
    arp_cache_hit = 3_000;
    intr = 30_000;
    drv_rx_fixed = 45_000;
    drv_rx_peek = 8_000;
    netisr = 40_000;
    pf_base = 20_000;
    pf_per_insn = 400;
    shm_deliver_fixed = 55_000;
    wire_bps = 10_000_000;
    wire_ifg = 9_600;
    wire_preamble_bytes = 8;
  }

(* The i486 at 33 MHz runs this integer-heavy code a little slower than the
   R3000 at 25 MHz; the dominant difference is the ISA-bus 3C503 NIC, whose
   programmed-I/O transfers cost over a microsecond per byte. *)
let gateway486 =
  let scale n = n * 13 / 10 in
  {
    name = "Gateway 486";
    app_call_overhead = scale 40_000;
    proc_call = scale 2_000;
    trap = scale 30_000;
    ipc_msg = 80_000;
    ipc_per_byte = 100;
    wakeup_light = scale 40_000;
    wakeup_kernel = scale 70_000;
    wakeup_heavy = 230_000;
    sync_kernel = scale 2_000;
    sync_light = scale 10_000;
    sync_heavy = 70_000;
    copy_per_byte = 110;
    copy_user_kernel_per_byte = 90;
    kernel_mem_read_per_byte = 40;
    device_read_per_byte = 1_150;
    device_write_per_byte = 1_050;
    checksum_per_byte = 190;
    mbuf_alloc = scale 8_000;
    mbuf_op = scale 5_000;
    socket_layer = scale 9_000;
    tcp_fixed = scale 60_000;
    udp_fixed = scale 15_000;
    ip_fixed = scale 18_000;
    ether_fixed = scale 50_000;
    route_lookup = scale 5_000;
    arp_cache_hit = scale 3_000;
    intr = scale 40_000;
    drv_rx_fixed = scale 50_000;
    drv_rx_peek = scale 8_000;
    netisr = scale 40_000;
    pf_base = scale 22_000;
    pf_per_insn = scale 400;
    shm_deliver_fixed = scale 55_000;
    wire_bps = 10_000_000;
    wire_ifg = 9_600;
    wire_preamble_bytes = 8;
  }

(* On-NIC processing profile: a smart NIC executing the TCP fast path as a
   FlexTOE-style per-segment stage pipeline.  The protocol stage runs on one
   of [pes] identical processing elements; pre-order (parse/demux) and
   post-order (reorder/DMA) stages are serialised so segment order on the
   wire and in the completion queue stays deterministic.  All costs ns. *)
type nic = {
  nic_name : string;
  pes : int;  (* protocol-stage processing elements *)
  pre_fixed : int;
  pre_per_byte : int;
  proto_fixed : int;
  proto_per_byte : int;
  post_fixed : int;
  post_per_byte : int;
  dma_per_byte : int;  (* NIC<->host memory DMA, charged in post-order *)
  doorbell : int;  (* host cost to ring the tx/rx doorbell *)
  completion : int;  (* host cost to reap one completion entry *)
  crossing : int;  (* per-descriptor host<->NIC queue crossing *)
  ring_slots : int;  (* bounded descriptor ring depth *)
}

(* Calibrated so one wimpy NIC core is compute-bound on bulk transfer
   (~2.2 ms/segment, well over the 1.23 ms wire time of a full frame)
   while four cores overlap protocol stages enough to become
   wire-limited — making the pipeline-parallel speedup measurable. *)
let nic_default =
  {
    nic_name = "psdNIC-4";
    pes = 4;
    pre_fixed = 12_000;
    pre_per_byte = 3;
    proto_fixed = 30_000;
    proto_per_byte = 1_500;
    post_fixed = 10_000;
    post_per_byte = 0;
    dma_per_byte = 80;
    doorbell = 6_000;
    completion = 9_000;
    crossing = 4_000;
    ring_slots = 64;
  }

let nic_serial = { nic_default with nic_name = "psdNIC-1"; pes = 1 }

(* A platform whose every host-CPU cost is zero but whose wire parameters
   survive.  The offload placement runs the regular protocol stack under
   this platform: the stack's logic executes (segmentation, reassembly,
   ACK generation, checksum verdicts) but charges nothing to the host CPU;
   all offload datapath time comes from the NIC pipeline model instead. *)
let zero_cost p =
  {
    p with
    name = p.name ^ " (on-NIC)";
    app_call_overhead = 0;
    proc_call = 0;
    trap = 0;
    ipc_msg = 0;
    ipc_per_byte = 0;
    wakeup_light = 0;
    wakeup_kernel = 0;
    wakeup_heavy = 0;
    sync_kernel = 0;
    sync_light = 0;
    sync_heavy = 0;
    copy_per_byte = 0;
    copy_user_kernel_per_byte = 0;
    kernel_mem_read_per_byte = 0;
    device_read_per_byte = 0;
    device_write_per_byte = 0;
    checksum_per_byte = 0;
    mbuf_alloc = 0;
    mbuf_op = 0;
    socket_layer = 0;
    tcp_fixed = 0;
    udp_fixed = 0;
    ip_fixed = 0;
    ether_fixed = 0;
    route_lookup = 0;
    arp_cache_hit = 0;
    intr = 0;
    drv_rx_fixed = 0;
    drv_rx_peek = 0;
    netisr = 0;
    pf_base = 0;
    pf_per_insn = 0;
    shm_deliver_fixed = 0;
  }

let frame_time p len =
  let bits = (len + p.wire_preamble_bytes) * 8 in
  let ns_per_bit = 1_000_000_000 / p.wire_bps in
  (bits * ns_per_bit) + p.wire_ifg

let pp fmt p = Format.fprintf fmt "%s" p.name
