type t = {
  name : string;
  app_call_overhead : int;
  proc_call : int;
  trap : int;
  ipc_msg : int;
  ipc_per_byte : int;
  wakeup_light : int;
  wakeup_kernel : int;
  wakeup_heavy : int;
  sync_kernel : int;
  sync_light : int;
  sync_heavy : int;
  copy_per_byte : int;
  copy_user_kernel_per_byte : int;
  kernel_mem_read_per_byte : int;
  device_read_per_byte : int;
  device_write_per_byte : int;
  checksum_per_byte : int;
  mbuf_alloc : int;
  mbuf_op : int;
  socket_layer : int;
  tcp_fixed : int;
  udp_fixed : int;
  ip_fixed : int;
  ether_fixed : int;
  route_lookup : int;
  arp_cache_hit : int;
  intr : int;
  drv_rx_fixed : int;
  drv_rx_peek : int;
  netisr : int;
  pf_base : int;
  pf_per_insn : int;
  shm_deliver_fixed : int;
  wire_bps : int;
  wire_ifg : int;
  wire_preamble_bytes : int;
}

(* Values in nanoseconds, calibrated against the paper's Table 4
   (DECstation 5000/200 column sums); see DESIGN.md. *)
let decstation =
  {
    name = "DECstation 5000/200";
    app_call_overhead = 40_000;
    proc_call = 2_000;
    trap = 23_000;
    ipc_msg = 75_000;
    ipc_per_byte = 90;
    wakeup_light = 40_000;
    wakeup_kernel = 65_000;
    wakeup_heavy = 230_000;
    sync_kernel = 1_500;
    sync_light = 9_000;
    sync_heavy = 70_000;
    copy_per_byte = 126;
    copy_user_kernel_per_byte = 70;
    kernel_mem_read_per_byte = 24;
    device_read_per_byte = 270;
    device_write_per_byte = 20;
    checksum_per_byte = 150;
    mbuf_alloc = 8_000;
    mbuf_op = 5_000;
    socket_layer = 9_000;
    tcp_fixed = 60_000;
    udp_fixed = 15_000;
    ip_fixed = 18_000;
    ether_fixed = 50_000;
    route_lookup = 5_000;
    arp_cache_hit = 3_000;
    intr = 30_000;
    drv_rx_fixed = 45_000;
    drv_rx_peek = 8_000;
    netisr = 40_000;
    pf_base = 20_000;
    pf_per_insn = 400;
    shm_deliver_fixed = 55_000;
    wire_bps = 10_000_000;
    wire_ifg = 9_600;
    wire_preamble_bytes = 8;
  }

(* The i486 at 33 MHz runs this integer-heavy code a little slower than the
   R3000 at 25 MHz; the dominant difference is the ISA-bus 3C503 NIC, whose
   programmed-I/O transfers cost over a microsecond per byte. *)
let gateway486 =
  let scale n = n * 13 / 10 in
  {
    name = "Gateway 486";
    app_call_overhead = scale 40_000;
    proc_call = scale 2_000;
    trap = scale 30_000;
    ipc_msg = 80_000;
    ipc_per_byte = 100;
    wakeup_light = scale 40_000;
    wakeup_kernel = scale 70_000;
    wakeup_heavy = 230_000;
    sync_kernel = scale 2_000;
    sync_light = scale 10_000;
    sync_heavy = 70_000;
    copy_per_byte = 110;
    copy_user_kernel_per_byte = 90;
    kernel_mem_read_per_byte = 40;
    device_read_per_byte = 1_150;
    device_write_per_byte = 1_050;
    checksum_per_byte = 190;
    mbuf_alloc = scale 8_000;
    mbuf_op = scale 5_000;
    socket_layer = scale 9_000;
    tcp_fixed = scale 60_000;
    udp_fixed = scale 15_000;
    ip_fixed = scale 18_000;
    ether_fixed = scale 50_000;
    route_lookup = scale 5_000;
    arp_cache_hit = scale 3_000;
    intr = scale 40_000;
    drv_rx_fixed = scale 50_000;
    drv_rx_peek = scale 8_000;
    netisr = scale 40_000;
    pf_base = scale 22_000;
    pf_per_insn = scale 400;
    shm_deliver_fixed = scale 55_000;
    wire_bps = 10_000_000;
    wire_ifg = 9_600;
    wire_preamble_bytes = 8;
  }

let frame_time p len =
  let bits = (len + p.wire_preamble_bytes) * 8 in
  let ns_per_bit = 1_000_000_000 / p.wire_bps in
  (bits * ns_per_bit) + p.wire_ifg

let pp fmt p = Format.fprintf fmt "%s" p.name
