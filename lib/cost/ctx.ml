type role = Kernel_stack | Server_stack | Library_stack

type t = {
  eng : Psd_sim.Engine.t;
  cpu : Psd_sim.Cpu.t;
  plat : Platform.t;
  role : role;
  prio : Psd_sim.Cpu.prio;
  sync_ns : int;
  wakeup_ns : int;
  mutable breakdown : Breakdown.t option;
}

let create ~eng ~cpu ~plat ~role =
  let prio =
    match role with
    | Kernel_stack -> Psd_sim.Cpu.Kernel
    | Server_stack | Library_stack -> Psd_sim.Cpu.User
  in
  let sync_ns =
    match role with
    | Kernel_stack -> plat.Platform.sync_kernel
    | Server_stack -> plat.Platform.sync_heavy
    | Library_stack -> plat.Platform.sync_light
  in
  let wakeup_ns =
    match role with
    | Kernel_stack -> plat.Platform.wakeup_kernel
    | Server_stack -> plat.Platform.wakeup_heavy
    | Library_stack -> plat.Platform.wakeup_light
  in
  { eng; cpu; plat; role; prio; sync_ns; wakeup_ns; breakdown = None }

let account t phase ns =
  match t.breakdown with
  | Some b -> Breakdown.add b phase ns
  | None -> ()

let charge_at t prio phase ns =
  if ns > 0 then begin
    account t phase ns;
    Psd_sim.Cpu.consume t.cpu ~prio ns
  end

let charge t phase ns = charge_at t t.prio phase ns

let sync t phase = charge t phase t.sync_ns

let pp_role fmt = function
  | Kernel_stack -> Format.fprintf fmt "kernel"
  | Server_stack -> Format.fprintf fmt "server"
  | Library_stack -> Format.fprintf fmt "library"
