(** The IP layer of one protocol stack instance.

    A stack instance lives wherever the configuration places protocol code
    — kernel, server, or application library — and charges its CPU time
    through the {!Psd_cost.Ctx.t} it was created with. Transmission goes
    through a pluggable [transmit] hook (installed by the Ethernet/ARP
    glue); delivery goes to per-protocol handlers (UDP, TCP, ICMP). *)

type stats = {
  mutable ip_output : int;
  mutable ip_delivered : int;
  mutable ip_fragmented : int;  (** fragments produced *)
  mutable ip_reassembled : int;  (** datagrams completed from fragments *)
  mutable ip_dropped_header : int;
  mutable ip_dropped_proto : int;
  mutable ip_dropped_addr : int;
  mutable ip_no_route : int;
}

type t

type handler = hdr:Header.t -> Psd_mbuf.Mbuf.t -> unit
(** Receives the transport payload of a delivered datagram. *)

type transmit = next_hop:Addr.t -> iface:int -> Psd_mbuf.Mbuf.t -> unit
(** Receives a complete IP packet (header prepended) for encapsulation. *)

val create :
  ctx:Psd_cost.Ctx.t ->
  addr:Addr.t ->
  routes:Route.t ->
  ?mtu:int ->
  unit ->
  t

val addr : t -> Addr.t

val routes : t -> Route.t

val set_transmit : t -> transmit -> unit

val register : t -> proto:int -> handler -> unit

val output :
  t ->
  ?ttl:int ->
  ?dont_frag:bool ->
  ?src:Addr.t ->
  proto:int ->
  dst:Addr.t ->
  Psd_mbuf.Mbuf.t ->
  (unit, [ `No_route | `Would_fragment | `Too_big ]) result
(** Route, fragment if necessary, and transmit a transport payload.
    Charges [ip_output] costs to the stack's context. *)

val input : t -> Bytes.t -> off:int -> len:int -> unit
(** Deliver a raw IP packet (as found in a received frame at [off]).
    Verifies the header, reassembles fragments, dispatches to the
    registered protocol handler. Charges [ipintr] costs. *)

val stats : t -> stats

val reass_timed_out : t -> int
(** Reassembly timeouts of this stack's fragment table. *)

val reass_dropped_inconsistent : t -> int
(** Fragments this stack dropped for contradicting an established
    datagram length (see {!Reass.dropped_inconsistent}). *)
