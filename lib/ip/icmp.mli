(** ICMP (RFC 792): echo and destination-unreachable.

    ICMP traffic is exactly the "exceptional network packet" class the
    paper assigns to the operating system (Section 3.1): in the
    decomposed configuration the ICMP filter points at the server, whose
    stack answers echoes and turns port-unreachable errors into soft
    errors on the offending UDP sessions. *)

type msg =
  | Echo_request of { id : int; seq : int; payload : string }
  | Echo_reply of { id : int; seq : int; payload : string }
  | Dest_unreachable of { code : int; original : Bytes.t }
      (** [original]: the offending datagram's IP header plus its first
          eight payload bytes, per the RFC *)

val code_port_unreachable : int
(** 3 *)

val encode : msg -> Bytes.t

val decode : Bytes.t -> (msg, string) result
(** Verifies the ICMP checksum. *)

type t

type reply_handler = src:Addr.t -> id:int -> seq:int -> payload:string -> unit

type unreachable_handler =
  orig_dst:Addr.t -> orig_proto:int -> orig_dst_port:int -> unit

val create : ctx:Psd_cost.Ctx.t -> ip:Ip.t -> unit -> t
(** Registers as the IP protocol-1 handler; answers echo requests
    automatically. *)

val ping :
  t -> dst:Addr.t -> ?id:int -> ?seq:int -> ?payload:string -> unit -> unit
(** Send an echo request (fire-and-forget; see {!on_reply}). *)

val on_reply : t -> reply_handler -> unit

val on_unreachable : t -> unreachable_handler -> unit
(** Fired when a destination-unreachable arrives whose embedded original
    packet can be parsed — the hook that propagates "port unreachable"
    into connected UDP sockets. *)

val send_port_unreachable : t -> dst:Addr.t -> original:Bytes.t -> unit
(** Report that a received datagram ([original] = its IP packet bytes)
    had no listener. *)

type stats = {
  mutable echo_requests_in : int;
  mutable echo_replies_in : int;
  mutable unreachable_in : int;
  mutable unreachable_out : int;
}

val stats : t -> stats
