(** IP fragment reassembly with per-datagram timeout. *)

type t

val create : Psd_sim.Engine.t -> ?timeout_ns:int -> unit -> t
(** Default timeout 30 s (BSD's IPFRAGTTL at 2 Hz ticks, roughly). *)

val input : t -> Header.t -> Psd_mbuf.Mbuf.t -> (Header.t * Psd_mbuf.Mbuf.t) option
(** Feed one fragment (header + transport payload). Returns the whole
    datagram when this fragment completes it: a header with fragmentation
    fields cleared and [total_len] covering the reassembled payload.
    Overlapping fragments are resolved in favour of later arrivals.
    Expired partial datagrams are discarded silently.

    The datagram's total length is established by the first MF=0
    fragment and never changes; a later fragment contradicting it — a
    final ending at a different offset, or any fragment extending past
    the established end — is dropped and counted in
    {!dropped_inconsistent}, so a corrupted duplicate of the final
    fragment cannot shrink the datagram below data already received. *)

val pending : t -> int
(** Incomplete datagrams currently buffered. *)

val timed_out : t -> int
(** Datagrams dropped by the reassembly timer since creation. *)

val dropped_inconsistent : t -> int
(** Fragments dropped for contradicting their datagram's established
    total length. *)
