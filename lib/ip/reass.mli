(** IP fragment reassembly with per-datagram timeout. *)

type t

val create : Psd_sim.Engine.t -> ?timeout_ns:int -> unit -> t
(** Default timeout 30 s (BSD's IPFRAGTTL at 2 Hz ticks, roughly). *)

val input : t -> Header.t -> Psd_mbuf.Mbuf.t -> (Header.t * Psd_mbuf.Mbuf.t) option
(** Feed one fragment (header + transport payload). Returns the whole
    datagram when this fragment completes it: a header with fragmentation
    fields cleared and [total_len] covering the reassembled payload.
    Overlapping fragments are resolved in favour of later arrivals.
    Expired partial datagrams are discarded silently. *)

val pending : t -> int
(** Incomplete datagrams currently buffered. *)

val timed_out : t -> int
(** Datagrams dropped by the reassembly timer since creation. *)
