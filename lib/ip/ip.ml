open Psd_mbuf
open Psd_cost

type stats = {
  mutable ip_output : int;
  mutable ip_delivered : int;
  mutable ip_fragmented : int;
  mutable ip_reassembled : int;
  mutable ip_dropped_header : int;
  mutable ip_dropped_proto : int;
  mutable ip_dropped_addr : int;
  mutable ip_no_route : int;
}

type handler = hdr:Header.t -> Mbuf.t -> unit

type transmit = next_hop:Addr.t -> iface:int -> Mbuf.t -> unit

type t = {
  ctx : Ctx.t;
  addr : Addr.t;
  routes : Route.t;
  mtu : int;
  mutable transmit : transmit;
  handlers : (int, handler) Hashtbl.t;
  reass : Reass.t;
  mutable next_ident : int;
  stats : stats;
}

let create ~ctx ~addr ~routes ?(mtu = 1500) () =
  {
    ctx;
    addr;
    routes;
    mtu;
    transmit = (fun ~next_hop:_ ~iface:_ _ -> ());
    handlers = Hashtbl.create 8;
    reass = Reass.create ctx.Ctx.eng ();
    next_ident = 1;
    stats =
      {
        ip_output = 0;
        ip_delivered = 0;
        ip_fragmented = 0;
        ip_reassembled = 0;
        ip_dropped_header = 0;
        ip_dropped_proto = 0;
        ip_dropped_addr = 0;
        ip_no_route = 0;
      };
  }

let addr t = t.addr

let routes t = t.routes

let set_transmit t f = t.transmit <- f

let register t ~proto handler = Hashtbl.replace t.handlers proto handler

let stats t = t.stats

let reass_timed_out t = Reass.timed_out t.reass

let reass_dropped_inconsistent t = Reass.dropped_inconsistent t.reass

let fresh_ident t =
  let id = t.next_ident in
  t.next_ident <- (t.next_ident + 1) land 0xffff;
  id

let prepend_header t ~hdr m =
  ignore t;
  let buf, off = Mbuf.prepend m Header.size in
  Header.encode_into buf ~off hdr

let max_payload = 0xffff - Header.size

let output t ?(ttl = 64) ?(dont_frag = false) ?src ~proto ~dst payload =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Ip_output
    (plat.Platform.ip_fixed + plat.Platform.route_lookup);
  let src = Option.value src ~default:t.addr in
  let len = Mbuf.length payload in
  if len > max_payload then Error `Too_big
  else
    match Route.lookup t.routes dst with
    | None ->
      t.stats.ip_no_route <- t.stats.ip_no_route + 1;
      Error `No_route
    | Some (next_hop, iface) ->
      let ident = fresh_ident t in
      let fits = len + Header.size <= t.mtu in
      if fits then begin
        let hdr =
          {
            Header.src;
            dst;
            proto;
            ttl;
            ident;
            dont_frag;
            more_frags = false;
            frag_off = 0;
            total_len = Header.size + len;
          }
        in
        prepend_header t ~hdr payload;
        t.stats.ip_output <- t.stats.ip_output + 1;
        t.transmit ~next_hop ~iface payload;
        Ok ()
      end
      else if dont_frag then Error `Would_fragment
      else begin
        (* Fragment: payload chunks of the largest 8-byte-aligned size. *)
        let chunk = (t.mtu - Header.size) land lnot 7 in
        let rec send off =
          if off < len then begin
            let this_len = min chunk (len - off) in
            let more = off + this_len < len in
            (* each fragment is a zero-copy window onto the datagram;
               the per-fragment header prepend allocates its own mbuf,
               so fragments never scribble on each other *)
            let frag = Mbuf.sub_view payload ~off ~len:this_len in
            let hdr =
              {
                Header.src;
                dst;
                proto;
                ttl;
                ident;
                dont_frag = false;
                more_frags = more;
                frag_off = off;
                total_len = Header.size + this_len;
              }
            in
            prepend_header t ~hdr frag;
            t.stats.ip_fragmented <- t.stats.ip_fragmented + 1;
            t.stats.ip_output <- t.stats.ip_output + 1;
            (* each extra fragment costs another header's worth of work *)
            if off > 0 then
              Ctx.charge t.ctx Phase.Ip_output plat.Platform.ip_fixed;
            t.transmit ~next_hop ~iface frag;
            send (off + this_len)
          end
        in
        send 0;
        Ok ()
      end

let input t b ~off ~len =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Ip_intr plat.Platform.ip_fixed;
  match Header.decode b ~off ~len with
  | Error _ ->
    t.stats.ip_dropped_header <- t.stats.ip_dropped_header + 1
  | Ok hdr ->
    if
      not
        (Addr.equal hdr.dst t.addr
        || Addr.equal hdr.dst Addr.broadcast)
    then t.stats.ip_dropped_addr <- t.stats.ip_dropped_addr + 1
    else begin
      let payload_len = hdr.total_len - Header.size in
      (* zero-copy: wrap the payload bytes in place. The frame buffer is
         this receiver's private copy and is never written after
         delivery, so the view stays valid for as long as TCP
         reassembly or the socket buffer holds it. *)
      let payload =
        Mbuf.of_bytes_view b ~off:(off + Header.size) ~len:payload_len
      in
      let was_fragment = hdr.more_frags || hdr.frag_off > 0 in
      match Reass.input t.reass hdr payload with
      | None -> ()
      | Some (hdr, datagram) -> (
        if was_fragment then
          t.stats.ip_reassembled <- t.stats.ip_reassembled + 1;
        match Hashtbl.find_opt t.handlers hdr.proto with
        | None ->
          t.stats.ip_dropped_proto <- t.stats.ip_dropped_proto + 1
        | Some handler ->
          t.stats.ip_delivered <- t.stats.ip_delivered + 1;
          handler ~hdr datagram)
    end
