type t = int

let of_octets a b c d =
  let octet v = v >= 0 && v <= 255 in
  if not (octet a && octet b && octet c && octet d) then
    invalid_arg "Addr.of_octets";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match (int_of_string a, int_of_string b, int_of_string c, int_of_string d)
    with
    | a, b, c, d -> of_octets a b c d
    | exception Failure _ -> invalid_arg ("Addr.of_string: " ^ s))
  | _ -> invalid_arg ("Addr.of_string: " ^ s)

let to_int t = t

let of_int v = v land 0xffffffff

let any = 0

let broadcast = 0xffffffff

let pp fmt t =
  Format.fprintf fmt "%d.%d.%d.%d"
    ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff)
    (t land 0xff)

let to_string t = Format.asprintf "%a" pp t

let equal = Int.equal

let compare = Int.compare

let in_subnet t ~net ~mask = t land mask = net land mask
