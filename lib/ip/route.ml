type next_hop = Direct | Gateway of Addr.t

type entry = { net : Addr.t; mask : Addr.t; hop : next_hop; iface : int }

type t = { mutable entries : entry list; mutable generation : int }

let create () = { entries = []; generation = 0 }

let mask_bits mask =
  let rec count m acc = if m = 0 then acc else count (m lsr 1) (acc + (m land 1)) in
  count (Addr.to_int mask) 0

let sort entries =
  List.stable_sort (fun a b -> compare (mask_bits b.mask) (mask_bits a.mask))
    entries

let add t e =
  let entries =
    List.filter (fun e' -> not (e'.net = e.net && e'.mask = e.mask)) t.entries
  in
  t.entries <- sort (e :: entries);
  t.generation <- t.generation + 1

let remove t ~net ~mask =
  t.entries <-
    List.filter (fun e -> not (e.net = net && e.mask = mask)) t.entries;
  t.generation <- t.generation + 1

let lookup t dst =
  let rec find = function
    | [] -> None
    | e :: rest ->
      if Addr.in_subnet dst ~net:e.net ~mask:e.mask then
        match e.hop with
        | Direct -> Some (dst, e.iface)
        | Gateway g -> Some (g, e.iface)
      else find rest
  in
  find t.entries

let entries t = t.entries

let generation t = t.generation
