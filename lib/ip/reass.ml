open Psd_mbuf

type key = { src : Addr.t; dst : Addr.t; proto : int; ident : int }

type datagram = {
  mutable frags : (int * Mbuf.t) list; (* (offset, payload) newest first *)
  mutable total : int option; (* payload length, known once MF=0 seen *)
  cancel : Psd_sim.Engine.cancel;
}

type t = {
  eng : Psd_sim.Engine.t;
  timeout_ns : int;
  table : (key, datagram) Hashtbl.t;
  mutable timed_out : int;
  mutable dropped_inconsistent : int;
}

let create eng ?(timeout_ns = Psd_sim.Time.sec 30) () =
  {
    eng;
    timeout_ns;
    table = Hashtbl.create 16;
    timed_out = 0;
    dropped_inconsistent = 0;
  }

let key_of (h : Header.t) =
  { src = h.src; dst = h.dst; proto = h.proto; ident = h.ident }

(* Coverage check: fragments sorted by offset must tile [0, total). *)
let complete frags total =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) frags in
  let rec walk pos = function
    | [] -> pos >= total
    | (off, m) :: rest ->
      if off > pos then false else walk (max pos (off + Mbuf.length m)) rest
  in
  walk 0 sorted

let assemble frags total =
  let flat = Bytes.create total in
  (* Reassembly is the one receive-side operation that inherently
     flattens: fragments land at their offsets in a fresh buffer
     (oldest first so that later arrivals win overlaps), one copy per
     fragment byte — counted as such. The result wraps the fresh buffer
     without a further copy. *)
  Psd_util.Copies.count Psd_util.Copies.Rx_flatten total;
  List.iter
    (fun (off, m) ->
      let len = min (Mbuf.length m) (total - off) in
      if len > 0 then
        Mbuf.blit_to_bytes (Mbuf.sub_view m ~off:0 ~len) flat off)
    (List.rev frags);
  Mbuf.of_bytes_view flat ~off:0 ~len:total

let input t (h : Header.t) payload =
  if (not h.more_frags) && h.frag_off = 0 then Some (h, payload)
  else begin
    let key = key_of h in
    let dg =
      match Hashtbl.find_opt t.table key with
      | Some dg -> dg
      | None ->
        let cancel =
          Psd_sim.Engine.after t.eng t.timeout_ns (fun () ->
              if Hashtbl.mem t.table key then begin
                Hashtbl.remove t.table key;
                t.timed_out <- t.timed_out + 1
              end)
        in
        let dg = { frags = []; total = None; cancel } in
        Hashtbl.add t.table key dg;
        dg
    in
    (* The datagram's length is fixed by the first MF=0 fragment seen
       and never rewritten: a duplicated-then-corrupted final whose
       offset shrank must not pull [total] below data already received
       and assemble a truncated datagram. Fragments that contradict the
       established length (a different final, or data beyond the end)
       are dropped and counted. *)
    let frag_end = h.frag_off + Mbuf.length payload in
    let consistent =
      match dg.total with
      | Some total ->
        if h.more_frags then frag_end <= total else frag_end = total
      | None ->
        h.more_frags
        || List.for_all (fun (off, m) -> off + Mbuf.length m <= frag_end)
             dg.frags
    in
    if not consistent then begin
      t.dropped_inconsistent <- t.dropped_inconsistent + 1;
      None
    end
    else begin
      dg.frags <- (h.frag_off, payload) :: dg.frags;
      if (not h.more_frags) && dg.total = None then
        dg.total <- Some frag_end;
      match dg.total with
      | Some total when complete dg.frags total ->
        Hashtbl.remove t.table key;
        dg.cancel ();
        let whole = assemble dg.frags total in
        let header =
          {
            h with
            more_frags = false;
            frag_off = 0;
            total_len = Header.size + total;
          }
        in
        Some (header, whole)
      | _ -> None
    end
  end

let pending t = Hashtbl.length t.table

let timed_out t = t.timed_out

let dropped_inconsistent t = t.dropped_inconsistent
