open Psd_util

type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;
  ttl : int;
  ident : int;
  dont_frag : bool;
  more_frags : bool;
  frag_off : int;
  total_len : int;
}

let size = 20

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

type error =
  | Too_short
  | Bad_version of int
  | Bad_header_length of int
  | Bad_checksum
  | Length_mismatch

let pp_error fmt = function
  | Too_short -> Format.fprintf fmt "packet shorter than IP header"
  | Bad_version v -> Format.fprintf fmt "IP version %d" v
  | Bad_header_length l -> Format.fprintf fmt "header length %d" l
  | Bad_checksum -> Format.fprintf fmt "bad header checksum"
  | Length_mismatch -> Format.fprintf fmt "total_len exceeds packet"

let encode_into b ~off t =
  assert (t.frag_off mod 8 = 0);
  Codec.set_u8 b off 0x45;
  Codec.set_u8 b (off + 1) 0 (* tos *);
  Codec.set_u16 b (off + 2) t.total_len;
  Codec.set_u16 b (off + 4) t.ident;
  let flags =
    (if t.dont_frag then 0x4000 else 0)
    lor (if t.more_frags then 0x2000 else 0)
    lor (t.frag_off / 8)
  in
  Codec.set_u16 b (off + 6) flags;
  Codec.set_u8 b (off + 8) t.ttl;
  Codec.set_u8 b (off + 9) t.proto;
  Codec.set_u16 b (off + 10) 0;
  Codec.set_u32i b (off + 12) (Addr.to_int t.src);
  Codec.set_u32i b (off + 16) (Addr.to_int t.dst);
  let cksum = Checksum.of_bytes b ~off ~len:size in
  Codec.set_u16 b (off + 10) cksum

let decode ?(truncated = false) b ~off ~len =
  if len < size then Error Too_short
  else begin
    let vihl = Codec.get_u8 b off in
    let version = vihl lsr 4 in
    let ihl = (vihl land 0xf) * 4 in
    if version <> 4 then Error (Bad_version version)
    else if ihl <> size then Error (Bad_header_length ihl)
    else if not (Checksum.valid b ~off ~len:size) then Error Bad_checksum
    else begin
      let total_len = Codec.get_u16 b (off + 2) in
      if (total_len > len && not truncated) || total_len < size then
        Error Length_mismatch
      else begin
        let flags = Codec.get_u16 b (off + 6) in
        Ok
          {
            src = Addr.of_int (Codec.get_u32i b (off + 12));
            dst = Addr.of_int (Codec.get_u32i b (off + 16));
            proto = Codec.get_u8 b (off + 9);
            ttl = Codec.get_u8 b (off + 8);
            ident = Codec.get_u16 b (off + 4);
            dont_frag = flags land 0x4000 <> 0;
            more_frags = flags land 0x2000 <> 0;
            frag_off = (flags land 0x1fff) * 8;
            total_len;
          }
      end
    end
  end

(* Forwarding hop: decrement TTL in place and patch the stored checksum
   incrementally (RFC 1624) — the TTL shares a 16-bit word with the
   protocol field, at header offset 8. *)
let decrement_ttl b ~off =
  let old_word = Codec.get_u16 b (off + 8) in
  let ttl = old_word lsr 8 in
  if ttl = 0 then invalid_arg "Header.decrement_ttl: ttl is zero";
  let new_word = old_word - 0x100 in
  Codec.set_u16 b (off + 8) new_word;
  let cksum = Codec.get_u16 b (off + 10) in
  Codec.set_u16 b (off + 10)
    (Checksum.update ~cksum ~old:old_word ~new_:new_word)

let pseudo_checksum ~src ~dst ~proto ~len =
  let acc = Checksum.empty in
  let acc = Checksum.add_u16 acc (Addr.to_int src lsr 16) in
  let acc = Checksum.add_u16 acc (Addr.to_int src land 0xffff) in
  let acc = Checksum.add_u16 acc (Addr.to_int dst lsr 16) in
  let acc = Checksum.add_u16 acc (Addr.to_int dst land 0xffff) in
  let acc = Checksum.add_u16 acc proto in
  Checksum.add_u16 acc len

let pp fmt t =
  Format.fprintf fmt "%a > %a proto %d len %d id %d%s%s off %d" Addr.pp t.src
    Addr.pp t.dst t.proto t.total_len t.ident
    (if t.dont_frag then " DF" else "")
    (if t.more_frags then " MF" else "")
    t.frag_off
