open Psd_util

type msg =
  | Echo_request of { id : int; seq : int; payload : string }
  | Echo_reply of { id : int; seq : int; payload : string }
  | Dest_unreachable of { code : int; original : Bytes.t }

let code_port_unreachable = 3

let encode msg =
  let fill ~ty ~code ~word body =
    let b = Bytes.create (8 + String.length body) in
    Codec.set_u8 b 0 ty;
    Codec.set_u8 b 1 code;
    Codec.set_u16 b 2 0;
    Codec.set_u32i b 4 word;
    Codec.blit_string body b 8;
    let c = Checksum.of_bytes b ~off:0 ~len:(Bytes.length b) in
    Codec.set_u16 b 2 c;
    b
  in
  match msg with
  | Echo_request { id; seq; payload } ->
    fill ~ty:8 ~code:0 ~word:((id lsl 16) lor (seq land 0xffff)) payload
  | Echo_reply { id; seq; payload } ->
    fill ~ty:0 ~code:0 ~word:((id lsl 16) lor (seq land 0xffff)) payload
  | Dest_unreachable { code; original } ->
    fill ~ty:3 ~code ~word:0 (Bytes.to_string original)

let decode b =
  let len = Bytes.length b in
  if len < 8 then Error "icmp: too short"
  else if not (Checksum.valid b ~off:0 ~len) then Error "icmp: bad checksum"
  else begin
    let ty = Codec.get_u8 b 0 and code = Codec.get_u8 b 1 in
    let word = Codec.get_u32i b 4 in
    let body = Bytes.sub_string b 8 (len - 8) in
    match ty with
    | 8 ->
      Ok (Echo_request { id = word lsr 16; seq = word land 0xffff; payload = body })
    | 0 ->
      Ok (Echo_reply { id = word lsr 16; seq = word land 0xffff; payload = body })
    | 3 -> Ok (Dest_unreachable { code; original = Bytes.of_string body })
    | _ -> Error (Printf.sprintf "icmp: unsupported type %d" ty)
  end

type reply_handler = src:Addr.t -> id:int -> seq:int -> payload:string -> unit

type unreachable_handler =
  orig_dst:Addr.t -> orig_proto:int -> orig_dst_port:int -> unit

type stats = {
  mutable echo_requests_in : int;
  mutable echo_replies_in : int;
  mutable unreachable_in : int;
  mutable unreachable_out : int;
}

type t = {
  ctx : Psd_cost.Ctx.t;
  ip : Ip.t;
  mutable reply_handlers : reply_handler list;
  mutable unreachable_handlers : unreachable_handler list;
  st : stats;
}

let stats t = t.st

let send t ~dst msg =
  let plat = t.ctx.Psd_cost.Ctx.plat in
  Psd_cost.Ctx.charge t.ctx Psd_cost.Phase.Control
    plat.Psd_cost.Platform.ip_fixed;
  let payload = encode msg in
  ignore
    (Ip.output t.ip ~proto:Header.proto_icmp ~dst
       (Psd_mbuf.Mbuf.of_bytes payload ~off:0 ~len:(Bytes.length payload)))

let ping t ~dst ?(id = 1) ?(seq = 0) ?(payload = "psd-ping") () =
  send t ~dst (Echo_request { id; seq; payload })

let on_reply t h = t.reply_handlers <- h :: t.reply_handlers

let on_unreachable t h =
  t.unreachable_handlers <- h :: t.unreachable_handlers

let send_port_unreachable t ~dst ~original =
  t.st.unreachable_out <- t.st.unreachable_out + 1;
  (* RFC 792: embed the IP header plus the first 8 payload bytes *)
  let keep = min (Bytes.length original) (Header.size + 8) in
  send t ~dst
    (Dest_unreachable
       { code = code_port_unreachable; original = Bytes.sub original 0 keep })

let handle_unreachable t original =
  t.st.unreachable_in <- t.st.unreachable_in + 1;
  match
    Header.decode ~truncated:true original ~off:0
      ~len:(Bytes.length original)
  with
  | Error _ -> ()
  | Ok inner ->
    if Bytes.length original >= Header.size + 4 then begin
      let dst_port = Codec.get_u16 original (Header.size + 2) in
      List.iter
        (fun h ->
          h ~orig_dst:inner.Header.dst ~orig_proto:inner.Header.proto
            ~orig_dst_port:dst_port)
        t.unreachable_handlers
    end

let create ~ctx ~ip () =
  let t =
    {
      ctx;
      ip;
      reply_handlers = [];
      unreachable_handlers = [];
      st =
        {
          echo_requests_in = 0;
          echo_replies_in = 0;
          unreachable_in = 0;
          unreachable_out = 0;
        };
    }
  in
  Ip.register ip ~proto:Header.proto_icmp (fun ~hdr m ->
      match decode (Psd_mbuf.Mbuf.to_bytes m) with
      | Error _ -> ()
      | Ok (Echo_request { id; seq; payload }) ->
        t.st.echo_requests_in <- t.st.echo_requests_in + 1;
        send t ~dst:hdr.Header.src (Echo_reply { id; seq; payload })
      | Ok (Echo_reply { id; seq; payload }) ->
        t.st.echo_replies_in <- t.st.echo_replies_in + 1;
        List.iter
          (fun h -> h ~src:hdr.Header.src ~id ~seq ~payload)
          t.reply_handlers
      | Ok (Dest_unreachable { code = _; original }) ->
        handle_unreachable t original);
  t
