(** IPv4 header encoding and decoding (RFC 791, no options). *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;
  ttl : int;
  ident : int;  (** fragment-group identifier *)
  dont_frag : bool;
  more_frags : bool;
  frag_off : int;  (** fragment offset in bytes (multiple of 8) *)
  total_len : int;  (** header + payload, bytes *)
}

val size : int
(** 20 bytes — options are out of scope (DESIGN.md section 6). *)

val proto_icmp : int
val proto_tcp : int
val proto_udp : int

type error =
  | Too_short
  | Bad_version of int
  | Bad_header_length of int
  | Bad_checksum
  | Length_mismatch  (** total_len exceeds the received bytes *)

val pp_error : Format.formatter -> error -> unit

val encode_into : Bytes.t -> off:int -> t -> unit
(** Write the header, including its checksum, at [off]. The buffer must
    have at least {!size} bytes at [off]. *)

val decode :
  ?truncated:bool -> Bytes.t -> off:int -> len:int -> (t, error) result
(** Parse and verify a header from [len] available bytes at [off]
    ([len] may exceed [total_len]: Ethernet pads short frames). With
    [~truncated:true] the [total_len]-fits check is skipped — for the
    header-plus-eight-bytes excerpts embedded in ICMP errors. *)

val decrement_ttl : Bytes.t -> off:int -> unit
(** Forwarding hop: decrement the TTL of an encoded header in place and
    patch the stored checksum incrementally (RFC 1624), without
    re-summing the header.
    @raise Invalid_argument if the TTL is already zero. *)

val pseudo_checksum :
  src:Addr.t -> dst:Addr.t -> proto:int -> len:int -> Psd_util.Checksum.acc
(** Checksum accumulator seeded with the TCP/UDP pseudo-header. *)

val pp : Format.formatter -> t -> unit
