(** IPv4 addresses, represented as host-order unsigned 32-bit ints. *)

type t = int

val of_string : string -> t
(** Dotted-quad parse. @raise Invalid_argument on malformed input. *)

val of_octets : int -> int -> int -> int -> t

val to_int : t -> int

val of_int : int -> t

val any : t
(** 0.0.0.0 — the wildcard local address (INADDR_ANY). *)

val broadcast : t
(** 255.255.255.255 *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val in_subnet : t -> net:t -> mask:t -> bool
