(** Longest-prefix-match routing table.

    Routes are protocol metastate: long-lived, shared by every session,
    owned by the operating system server, and cached read-only by
    application protocol libraries (paper Section 3.3). *)

type next_hop =
  | Direct  (** destination is on the attached network *)
  | Gateway of Addr.t

type entry = { net : Addr.t; mask : Addr.t; hop : next_hop; iface : int }

type t

val create : unit -> t

val add : t -> entry -> unit
(** Later additions replace earlier entries with the same [net]/[mask]. *)

val remove : t -> net:Addr.t -> mask:Addr.t -> unit

val lookup : t -> Addr.t -> (Addr.t * int) option
(** [lookup t dst] resolves the address to forward to — [dst] itself for
    directly-connected networks, the gateway otherwise — and the interface
    index. [None] when no route matches. *)

val entries : t -> entry list
(** Current entries, most-specific first. *)

val generation : t -> int
(** Incremented on every mutation; lets caches detect staleness. *)
