type proto = Tcp | Udp

type spec = {
  proto : proto;
  local_ip : int;
  local_port : int;
  remote_ip : int option;
  remote_port : int option;
}

let snaplen = 0xffff

(* Ethernet II offsets *)
let off_ethertype = 12
let off_ip = 14
let off_ip_frag = off_ip + 6
let off_ip_proto = off_ip + 9
let off_ip_src = off_ip + 12
let off_ip_dst = off_ip + 16

let ethertype_ip = 0x0800
let ethertype_arp = 0x0806

let proto_number = function Tcp -> 6 | Udp -> 17

let session spec =
  let open Insn in
  let open Asm in
  let check_remote_ip =
    match spec.remote_ip with
    | None -> []
    | Some ip ->
      [ I (Ld (W, Abs off_ip_src)); J (Jeq, K ip, "cont_rip", "reject");
        Label "cont_rip" ]
  in
  let check_remote_port =
    match spec.remote_port with
    | None -> []
    | Some port ->
      (* source port: first TCP/UDP header field, at x + 14 *)
      [ I (Ld (H, Ind off_ip)); J (Jeq, K port, "cont_rport", "reject");
        Label "cont_rport" ]
  in
  Asm.assemble_exn
    ([
       I (Ld (H, Abs off_ethertype));
       J (Jeq, K ethertype_ip, "is_ip", "reject");
       Label "is_ip";
       I (Ld (B, Abs off_ip_proto));
       J (Jeq, K (proto_number spec.proto), "proto_ok", "reject");
       Label "proto_ok";
       I (Ld (W, Abs off_ip_dst));
       J (Jeq, K spec.local_ip, "dst_ok", "reject");
       Label "dst_ok";
     ]
    @ check_remote_ip
    @ [
        (* Non-first fragment: ports are not present; accept on addresses. *)
        I (Ld (H, Abs off_ip_frag));
        J (Jset, K 0x1fff, "accept", "first_frag");
        Label "first_frag";
        I (Ldx (Msh off_ip));
        (* destination port at x + 14 + 2 *)
        I (Ld (H, Ind (off_ip + 2)));
        J (Jeq, K spec.local_port, "lport_ok", "reject");
        Label "lport_ok";
      ]
    @ check_remote_port
    @ [
        Label "accept";
        I (Ret (RetK snaplen));
        Label "reject";
        I (Ret (RetK 0));
      ])

(* --- flat session descriptors ----------------------------------------

   A session filter is entirely determined by its [spec]: a handful of
   equality tests against fields at fixed (or IHL-derived) offsets. The
   flat descriptor records exactly those fields so the kernel's
   demultiplexer can match a frame with direct byte comparisons instead
   of running the program at all.

   [flat_match] is a transliteration of the program [session] emits —
   same tests, same order, same out-of-bounds behaviour — and counts the
   instructions the interpreter would have executed on the same frame,
   so the simulated per-instruction demultiplexing cost is unchanged.
   The differential test suite checks (accept, steps) equality against
   the interpreter on random frames. *)

type flat = {
  f_proto : int;  (** IP protocol number *)
  f_local_ip : int;
  f_local_port : int;
  f_remote_ip : int option;
  f_remote_port : int option;
}

let flat_of_spec spec =
  {
    f_proto = proto_number spec.proto;
    f_local_ip = spec.local_ip land 0xffffffff;
    (* same masking the VM applies to jump constants: a port outside
       0..0xffff can never equal a 16-bit load, in either engine *)
    f_local_port = spec.local_port land 0xffffffff;
    f_remote_ip = Option.map (fun ip -> ip land 0xffffffff) spec.remote_ip;
    f_remote_port = Option.map (fun p -> p land 0xffffffff) spec.remote_port;
  }

exception Done of int

let flat_match f pkt ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length pkt then
    invalid_arg "Filter.flat_match";
  let steps = ref 0 in
  (* Each load/jump helper counts the one VM instruction it stands for.
     A load that would run off the end of the frame rejects immediately,
     as Vm.load_size does, with the faulting instruction counted. *)
  let ld_u8 rel =
    incr steps;
    if rel + 1 > len then raise (Done 0)
    else Char.code (Bytes.unsafe_get pkt (off + rel))
  in
  let ld_u16 rel =
    incr steps;
    if rel + 2 > len then raise (Done 0)
    else Psd_util.Codec.get_u16 pkt (off + rel)
  in
  let ld_u32 rel =
    incr steps;
    if rel + 4 > len then raise (Done 0)
    else Psd_util.Codec.get_u32i pkt (off + rel)
  in
  let jmp_to_ret v =
    (* the conditional jump, then the Ret at its target *)
    steps := !steps + 2;
    raise (Done v)
  in
  let jmp () = incr steps in
  let result =
    try
      let ety = ld_u16 off_ethertype in
      if ety <> ethertype_ip then jmp_to_ret 0 else jmp ();
      let proto = ld_u8 off_ip_proto in
      if proto <> f.f_proto then jmp_to_ret 0 else jmp ();
      let dst = ld_u32 off_ip_dst in
      if dst <> f.f_local_ip then jmp_to_ret 0 else jmp ();
      (match f.f_remote_ip with
      | None -> ()
      | Some ip ->
        let src = ld_u32 off_ip_src in
        if src <> ip then jmp_to_ret 0 else jmp ());
      let frag = ld_u16 off_ip_frag in
      if frag land 0x1fff <> 0 then jmp_to_ret snaplen else jmp ();
      let ihl4 = 4 * (ld_u8 off_ip land 0xf) (* ldx msh *) in
      let dport = ld_u16 (ihl4 + off_ip + 2) in
      if dport <> f.f_local_port then jmp_to_ret 0 else jmp ();
      (match f.f_remote_port with
      | None -> ()
      | Some p ->
        let sport = ld_u16 (ihl4 + off_ip) in
        if sport <> p then jmp_to_ret 0 else jmp ());
      incr steps (* the accept Ret *);
      snaplen
    with Done v -> v
  in
  (result, !steps)

let flat_run f pkt = flat_match f pkt ~off:0 ~len:(Bytes.length pkt)

let arp =
  let open Insn in
  let open Asm in
  Asm.assemble_exn
    [
      I (Ld (H, Abs off_ethertype));
      J (Jeq, K ethertype_arp, "accept", "reject");
      Label "accept";
      I (Ret (RetK snaplen));
      Label "reject";
      I (Ret (RetK 0));
    ]

let ip_all =
  let open Insn in
  let open Asm in
  Asm.assemble_exn
    [
      I (Ld (H, Abs off_ethertype));
      J (Jeq, K ethertype_ip, "accept", "reject");
      Label "accept";
      I (Ret (RetK snaplen));
      Label "reject";
      I (Ret (RetK 0));
    ]

let icmp ~local_ip =
  let open Insn in
  let open Asm in
  Asm.assemble_exn
    [
      I (Ld (H, Abs off_ethertype));
      J (Jeq, K ethertype_ip, "is_ip", "reject");
      Label "is_ip";
      I (Ld (B, Abs off_ip_proto));
      J (Jeq, K 1, "is_icmp", "reject");
      Label "is_icmp";
      I (Ld (W, Abs off_ip_dst));
      J (Jeq, K local_ip, "accept", "reject");
      Label "accept";
      I (Ret (RetK snaplen));
      Label "reject";
      I (Ret (RetK 0));
    ]
