type proto = Tcp | Udp

type spec = {
  proto : proto;
  local_ip : int;
  local_port : int;
  remote_ip : int option;
  remote_port : int option;
}

let snaplen = 0xffff

(* Ethernet II offsets *)
let off_ethertype = 12
let off_ip = 14
let off_ip_frag = off_ip + 6
let off_ip_proto = off_ip + 9
let off_ip_src = off_ip + 12
let off_ip_dst = off_ip + 16

let ethertype_ip = 0x0800
let ethertype_arp = 0x0806

let proto_number = function Tcp -> 6 | Udp -> 17

let session spec =
  let open Insn in
  let open Asm in
  let check_remote_ip =
    match spec.remote_ip with
    | None -> []
    | Some ip ->
      [ I (Ld (W, Abs off_ip_src)); J (Jeq, K ip, "cont_rip", "reject");
        Label "cont_rip" ]
  in
  let check_remote_port =
    match spec.remote_port with
    | None -> []
    | Some port ->
      (* source port: first TCP/UDP header field, at x + 14 *)
      [ I (Ld (H, Ind off_ip)); J (Jeq, K port, "cont_rport", "reject");
        Label "cont_rport" ]
  in
  Asm.assemble_exn
    ([
       I (Ld (H, Abs off_ethertype));
       J (Jeq, K ethertype_ip, "is_ip", "reject");
       Label "is_ip";
       I (Ld (B, Abs off_ip_proto));
       J (Jeq, K (proto_number spec.proto), "proto_ok", "reject");
       Label "proto_ok";
       I (Ld (W, Abs off_ip_dst));
       J (Jeq, K spec.local_ip, "dst_ok", "reject");
       Label "dst_ok";
     ]
    @ check_remote_ip
    @ [
        (* Non-first fragment: ports are not present; accept on addresses. *)
        I (Ld (H, Abs off_ip_frag));
        J (Jset, K 0x1fff, "accept", "first_frag");
        Label "first_frag";
        I (Ldx (Msh off_ip));
        (* destination port at x + 14 + 2 *)
        I (Ld (H, Ind (off_ip + 2)));
        J (Jeq, K spec.local_port, "lport_ok", "reject");
        Label "lport_ok";
      ]
    @ check_remote_port
    @ [
        Label "accept";
        I (Ret (RetK snaplen));
        Label "reject";
        I (Ret (RetK 0));
      ])

let arp =
  let open Insn in
  let open Asm in
  Asm.assemble_exn
    [
      I (Ld (H, Abs off_ethertype));
      J (Jeq, K ethertype_arp, "accept", "reject");
      Label "accept";
      I (Ret (RetK snaplen));
      Label "reject";
      I (Ret (RetK 0));
    ]

let ip_all =
  let open Insn in
  let open Asm in
  Asm.assemble_exn
    [
      I (Ld (H, Abs off_ethertype));
      J (Jeq, K ethertype_ip, "accept", "reject");
      Label "accept";
      I (Ret (RetK snaplen));
      Label "reject";
      I (Ret (RetK 0));
    ]

let icmp ~local_ip =
  let open Insn in
  let open Asm in
  Asm.assemble_exn
    [
      I (Ld (H, Abs off_ethertype));
      J (Jeq, K ethertype_ip, "is_ip", "reject");
      Label "is_ip";
      I (Ld (B, Abs off_ip_proto));
      J (Jeq, K 1, "is_icmp", "reject");
      Label "is_icmp";
      I (Ld (W, Abs off_ip_dst));
      J (Jeq, K local_ip, "accept", "reject");
      Label "accept";
      I (Ret (RetK snaplen));
      Label "reject";
      I (Ret (RetK 0));
    ]
