(** Compilation of network-session specifications to filter programs.

    The operating system compiles and installs one of these per network
    session (paper Section 3.1): the kernel then demultiplexes each
    incoming Ethernet frame to the address space holding the matching
    endpoint. Addresses are IPv4 in host byte order as unsigned 31-bit-safe
    OCaml ints; offsets assume Ethernet II framing. *)

type proto = Tcp | Udp

type spec = {
  proto : proto;
  local_ip : int;  (** destination address of packets we should receive *)
  local_port : int;
  remote_ip : int option;  (** [None] matches any peer (unconnected UDP,
                               listening TCP) *)
  remote_port : int option;
}

type flat = {
  f_proto : int;  (** IP protocol number *)
  f_local_ip : int;
  f_local_port : int;
  f_remote_ip : int option;
  f_remote_port : int option;
}
(** Declarative form of a session filter: the fixed-offset field
    comparisons the program performs, recorded so the kernel can match
    common frames without running the program. *)

val flat_of_spec : spec -> flat

val flat_match : flat -> Bytes.t -> off:int -> len:int -> int * int
(** [flat_match f pkt ~off ~len] decides the same accept/reject as
    interpreting [session spec] over the frame view, by direct byte
    comparisons, and returns [(accepted_bytes, instructions)] where
    [instructions] is exactly the count {!Vm.run} would report — the
    fast path must not change the simulated demultiplexing cost.
    @raise Invalid_argument if the view exceeds the buffer. *)

val flat_run : flat -> Bytes.t -> int * int
(** [flat_run f pkt] = [flat_match f pkt ~off:0 ~len:(Bytes.length pkt)]. *)

val session : spec -> Vm.program
(** Accept exactly the frames addressed to the session: Ethernet type IP,
    matching IP protocol, destination (and optionally source) address and
    port. Non-first IP fragments that match at the address level are
    accepted even though their ports are not inspectable, so that the
    endpoint's reassembly sees every piece. *)

val arp : Vm.program
(** Accept ARP frames (the operating system server handles these). *)

val ip_all : Vm.program
(** Accept every IP frame — the single filter used when a whole protocol
    stack (kernel or server placement) receives all traffic. *)

val icmp : local_ip:int -> Vm.program
(** Accept ICMP addressed to the host (exceptional packets go to the
    operating system server). *)

val snaplen : int
(** Accept length used by generated filters (covers any Ethernet frame). *)
