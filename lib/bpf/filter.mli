(** Compilation of network-session specifications to filter programs.

    The operating system compiles and installs one of these per network
    session (paper Section 3.1): the kernel then demultiplexes each
    incoming Ethernet frame to the address space holding the matching
    endpoint. Addresses are IPv4 in host byte order as unsigned 31-bit-safe
    OCaml ints; offsets assume Ethernet II framing. *)

type proto = Tcp | Udp

type spec = {
  proto : proto;
  local_ip : int;  (** destination address of packets we should receive *)
  local_port : int;
  remote_ip : int option;  (** [None] matches any peer (unconnected UDP,
                               listening TCP) *)
  remote_port : int option;
}

val session : spec -> Vm.program
(** Accept exactly the frames addressed to the session: Ethernet type IP,
    matching IP protocol, destination (and optionally source) address and
    port. Non-first IP fragments that match at the address level are
    accepted even though their ports are not inspectable, so that the
    endpoint's reassembly sees every piece. *)

val arp : Vm.program
(** Accept ARP frames (the operating system server handles these). *)

val ip_all : Vm.program
(** Accept every IP frame — the single filter used when a whole protocol
    stack (kernel or server placement) receives all traffic. *)

val icmp : local_ip:int -> Vm.program
(** Accept ICMP addressed to the host (exceptional packets go to the
    operating system server). *)

val snaplen : int
(** Accept length used by generated filters (covers any Ethernet frame). *)
