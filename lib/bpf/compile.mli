(** Filter programs compiled to OCaml closures.

    Compilation translates a validated program into one closure per
    instruction, with jump targets resolved at compile time (forward-only
    jumps make a single back-to-front pass sufficient). Running a
    compiled filter performs no fetch/decode dispatch, which makes it
    several times faster than {!Vm.run} on the per-frame demultiplexing
    path — while still counting executed instructions, so the simulated
    (virtual-time) cost charged per packet is identical to the
    interpreter's. *)

type t
(** A compiled filter. A value of this type owns mutable scratch state:
    it is cheap to run repeatedly but must not be executed reentrantly
    (the simulator is single-threaded, so this never arises). *)

val compile : Vm.program -> (t, Vm.error) result
(** Validate and compile. Any program accepted by {!Vm.validate}
    compiles; the result is permanent (filters are compiled once, at
    install time). *)

val compile_exn : Vm.program -> t
(** @raise Invalid_argument if the program fails validation. *)

val exec : t -> Bytes.t -> off:int -> len:int -> int * int
(** [exec t pkt ~off ~len] runs the filter over the packet view
    [pkt[off .. off+len)] and returns [(accepted_bytes,
    instructions_executed)] — exactly what {!Vm.run} would return on the
    same view. Absolute loads are relative to [off]; [Len] loads read
    [len]. Out-of-bounds packet loads reject (0 accepted bytes).
    @raise Invalid_argument if the view exceeds the buffer. *)

val run : t -> Bytes.t -> int * int
(** [run t pkt] = [exec t pkt ~off:0 ~len:(Bytes.length pkt)] — the
    drop-in replacement for {!Vm.run_exn}. *)
