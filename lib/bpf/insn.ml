type size = B | H | W

type mode = Abs of int | Ind of int | Len | Imm of int | Mem of int | Msh of int

type src = K of int | X

type alu = Add | Sub | Mul | Div | And | Or | Lsh | Rsh

type cond = Jeq | Jgt | Jge | Jset

type ret = RetK of int | RetA

type t =
  | Ld of size * mode
  | Ldx of mode
  | St of int
  | Stx of int
  | Alu of alu * src
  | Neg
  | Ja of int
  | Jmp of cond * src * int * int
  | Ret of ret
  | Tax
  | Txa

let pp_size fmt = function
  | B -> Format.fprintf fmt "b"
  | H -> Format.fprintf fmt "h"
  | W -> Format.fprintf fmt "w"

let pp_mode fmt = function
  | Abs k -> Format.fprintf fmt "[%d]" k
  | Ind k -> Format.fprintf fmt "[x+%d]" k
  | Len -> Format.fprintf fmt "len"
  | Imm k -> Format.fprintf fmt "#%d" k
  | Mem k -> Format.fprintf fmt "M[%d]" k
  | Msh k -> Format.fprintf fmt "4*([%d]&0xf)" k

let pp_src fmt = function
  | K k -> Format.fprintf fmt "#0x%x" k
  | X -> Format.fprintf fmt "x"

let pp_alu fmt op =
  let s =
    match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | And -> "and"
    | Or -> "or"
    | Lsh -> "lsh"
    | Rsh -> "rsh"
  in
  Format.fprintf fmt "%s" s

let pp_cond fmt c =
  let s =
    match c with Jeq -> "jeq" | Jgt -> "jgt" | Jge -> "jge" | Jset -> "jset"
  in
  Format.fprintf fmt "%s" s

let pp fmt = function
  | Ld (s, m) -> Format.fprintf fmt "ld%a %a" pp_size s pp_mode m
  | Ldx m -> Format.fprintf fmt "ldx %a" pp_mode m
  | St k -> Format.fprintf fmt "st M[%d]" k
  | Stx k -> Format.fprintf fmt "stx M[%d]" k
  | Alu (op, s) -> Format.fprintf fmt "%a %a" pp_alu op pp_src s
  | Neg -> Format.fprintf fmt "neg"
  | Ja k -> Format.fprintf fmt "ja +%d" k
  | Jmp (c, s, jt, jf) ->
    Format.fprintf fmt "%a %a +%d +%d" pp_cond c pp_src s jt jf
  | Ret (RetK k) -> Format.fprintf fmt "ret #%d" k
  | Ret RetA -> Format.fprintf fmt "ret a"
  | Tax -> Format.fprintf fmt "tax"
  | Txa -> Format.fprintf fmt "txa"

let pp_program fmt prog =
  Array.iteri
    (fun i insn -> Format.fprintf fmt "%3d: %a@." i pp insn)
    prog
