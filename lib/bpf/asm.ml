type stmt =
  | Label of string
  | I of Insn.t
  | J of Insn.cond * Insn.src * string * string
  | Goto of string

let assemble stmts =
  let exception E of string in
  try
    (* First pass: assign instruction indices to labels. *)
    let labels = Hashtbl.create 16 in
    let count =
      List.fold_left
        (fun idx stmt ->
          match stmt with
          | Label name ->
            if Hashtbl.mem labels name then
              raise (E ("duplicate label " ^ name));
            Hashtbl.add labels name idx;
            idx
          | I _ | J _ | Goto _ -> idx + 1)
        0 stmts
    in
    let resolve at name =
      match Hashtbl.find_opt labels name with
      | None -> raise (E ("unknown label " ^ name))
      | Some target ->
        let off = target - (at + 1) in
        if off < 0 then raise (E ("backward jump to " ^ name));
        off
    in
    let prog = Array.make count (Insn.Ret (Insn.RetK 0)) in
    let idx = ref 0 in
    List.iter
      (fun stmt ->
        match stmt with
        | Label _ -> ()
        | I insn ->
          prog.(!idx) <- insn;
          incr idx
        | J (cond, src, jt, jf) ->
          prog.(!idx) <- Insn.Jmp (cond, src, resolve !idx jt, resolve !idx jf);
          incr idx
        | Goto name ->
          prog.(!idx) <- Insn.Ja (resolve !idx name);
          incr idx)
      stmts;
    match Vm.validate prog with
    | Ok () -> Ok prog
    | Error e -> Error (Format.asprintf "%a" Vm.pp_error e)
  with E msg -> Error msg

let assemble_exn stmts =
  match assemble stmts with
  | Ok p -> p
  | Error msg -> invalid_arg ("Asm.assemble: " ^ msg)
