(** Packet-filter virtual machine: validation and interpretation. *)

type program = Insn.t array

type error =
  | Empty_program
  | Jump_out_of_range of int  (** instruction index *)
  | Backward_jump of int
  | Division_by_zero of int
  | Bad_scratch_index of int
  | Missing_return
  | Msh_in_ld of int  (** [Msh] addressing is only legal in [Ldx] *)

val pp_error : Format.formatter -> error -> unit

val scratch_cells : int
(** Number of scratch-memory cells ([M[0..15]], BSD: 16). *)

val validate : program -> (unit, error) result
(** Static checks performed when a filter is installed in the kernel:
    all jumps are forward and in range, constant divisors are non-zero,
    scratch indices are in [0..15], and the last instruction (and hence
    every path, given forward-only jumps) is reachable only through
    returns or falls into a return. *)

val run : program -> Bytes.t -> (int * int, [ `Invalid ]) result
(** [run prog pkt] interprets the filter over the packet and returns
    [(accepted_bytes, instructions_executed)]. An out-of-bounds packet
    load rejects the packet ([0] accepted bytes), matching BSD semantics.
    [`Invalid] is returned only for programs that fail {!validate}. *)

val run_exn : program -> Bytes.t -> int * int
(** Like {!run} on a pre-validated program.
    @raise Invalid_argument on an invalid program. *)
