type program = Insn.t array

type error =
  | Empty_program
  | Jump_out_of_range of int
  | Backward_jump of int
  | Division_by_zero of int
  | Bad_scratch_index of int
  | Missing_return
  | Msh_in_ld of int

let pp_error fmt = function
  | Empty_program -> Format.fprintf fmt "empty program"
  | Jump_out_of_range i -> Format.fprintf fmt "jump out of range at %d" i
  | Backward_jump i -> Format.fprintf fmt "backward jump at %d" i
  | Division_by_zero i -> Format.fprintf fmt "constant division by zero at %d" i
  | Bad_scratch_index i -> Format.fprintf fmt "bad scratch index at %d" i
  | Missing_return -> Format.fprintf fmt "program can fall off the end"
  | Msh_in_ld i -> Format.fprintf fmt "msh addressing outside ldx at %d" i

let scratch_cells = 16

let validate prog =
  let n = Array.length prog in
  if n = 0 then Error Empty_program
  else begin
    let exception E of error in
    let check_jump i off =
      if off < 0 then raise (E (Backward_jump i));
      if i + 1 + off >= n then raise (E (Jump_out_of_range i))
    in
    let check_scratch i k =
      if k < 0 || k >= scratch_cells then raise (E (Bad_scratch_index i))
    in
    try
      Array.iteri
        (fun i insn ->
          match (insn : Insn.t) with
          | Ld (_, Msh _) -> raise (E (Msh_in_ld i))
          | Ld (_, Mem k) | Ldx (Mem k) | St k | Stx k -> check_scratch i k
          | Ld _ | Ldx _ | Neg | Tax | Txa | Ret _ -> ()
          | Alu (Div, K 0) -> raise (E (Division_by_zero i))
          | Alu _ -> ()
          | Ja off -> check_jump i off
          | Jmp (_, _, jt, jf) ->
            check_jump i jt;
            check_jump i jf)
        prog;
      (match prog.(n - 1) with
      | Ret _ -> ()
      | _ -> raise (E Missing_return));
      Ok ()
    with E e -> Error e
  end

let mask32 v = v land 0xffffffff

let run prog pkt =
  match validate prog with
  | Error _ -> Error `Invalid
  | Ok () ->
    let len = Bytes.length pkt in
    let mem = Array.make scratch_cells 0 in
    let exception Done of int in
    let steps = ref 0 in
    let load_size (size : Insn.size) off =
      let need = match size with Insn.B -> 1 | H -> 2 | W -> 4 in
      if off < 0 || off + need > len then raise (Done 0)
      else
        match size with
        | Insn.B -> Psd_util.Codec.get_u8 pkt off
        | H -> Psd_util.Codec.get_u16 pkt off
        | W -> Psd_util.Codec.get_u32i pkt off
    in
    let result =
      try
        let a = ref 0 and x = ref 0 in
        let pc = ref 0 in
        while true do
          let insn = prog.(!pc) in
          incr steps;
          incr pc;
          match (insn : Insn.t) with
          | Ld (size, mode) ->
            a :=
              (match mode with
              | Abs k -> load_size size k
              | Ind k -> load_size size (!x + k)
              | Len -> len
              | Imm k -> mask32 k
              | Mem k -> mem.(k)
              | Msh _ -> assert false)
          | Ldx mode ->
            x :=
              (match mode with
              | Imm k -> mask32 k
              | Mem k -> mem.(k)
              | Len -> len
              | Msh k -> 4 * (load_size Insn.B k land 0xf)
              | Abs k -> load_size Insn.W k
              | Ind k -> load_size Insn.W (!x + k))
          | St k -> mem.(k) <- !a
          | Stx k -> mem.(k) <- !x
          | Alu (op, src) ->
            let v = match src with Insn.K k -> mask32 k | X -> !x in
            a :=
              mask32
                (match op with
                | Add -> !a + v
                | Sub -> !a - v
                | Mul -> !a * v
                | Div -> if v = 0 then raise (Done 0) else !a / v
                | And -> !a land v
                | Or -> !a lor v
                | Lsh -> !a lsl (v land 31)
                | Rsh -> !a lsr (v land 31))
          | Neg -> a := mask32 (- !a)
          | Tax -> x := !a
          | Txa -> a := !x
          | Ja off -> pc := !pc + off
          | Jmp (cond, src, jt, jf) ->
            let v = match src with Insn.K k -> mask32 k | X -> !x in
            let taken =
              match cond with
              | Jeq -> !a = v
              | Jgt -> !a > v
              | Jge -> !a >= v
              | Jset -> !a land v <> 0
            in
            pc := !pc + if taken then jt else jf
          | Ret (RetK k) -> raise (Done k)
          | Ret RetA -> raise (Done !a)
        done;
        assert false
      with Done v -> v
    in
    Ok (result, !steps)

let run_exn prog pkt =
  match run prog pkt with
  | Ok r -> r
  | Error `Invalid -> invalid_arg "Vm.run_exn: invalid program"
