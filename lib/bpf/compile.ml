(* Compilation of validated filter programs to straight-line OCaml
   closures. Jump targets are resolved once, at compile time: because the
   validator guarantees forward-only jumps, the instruction array can be
   translated back-to-front, each instruction capturing its successor
   closure(s) directly. Execution then involves no fetch/decode loop, no
   program-counter arithmetic and no per-instruction dispatch — just a
   chain of tail calls.

   The executed-instruction count is maintained alongside, so the
   simulator can charge exactly the same per-instruction virtual-time
   cost as the interpreter: a compiled filter changes wall-clock cost
   only, never simulated cost. *)

type state = {
  mutable pkt : Bytes.t;
  mutable base : int;  (* first byte of the packet view *)
  mutable len : int;   (* view length; [Len] loads and bounds checks *)
  mutable a : int;
  mutable x : int;
  mem : int array;
  mutable steps : int;
}

type t = { state : state; entry : unit -> int }

let mask32 v = v land 0xffffffff

let compile prog =
  match Vm.validate prog with
  | Error e -> Error e
  | Ok () ->
    let st =
      {
        pkt = Bytes.empty;
        base = 0;
        len = 0;
        a = 0;
        x = 0;
        mem = Array.make Vm.scratch_cells 0;
        steps = 0;
      }
    in
    let n = Array.length prog in
    (* code.(n) is never reached: validation proves every path returns. *)
    let code = Array.make (n + 1) (fun () -> 0) in
    (* Loads mirror Vm.load_size: an out-of-range access rejects the
       packet (returns 0) with the faulting instruction already counted. *)
    let ld_u8 rel =
      if rel < 0 || rel + 1 > st.len then -1
      else Char.code (Bytes.unsafe_get st.pkt (st.base + rel))
    in
    let ld_u16 rel =
      if rel < 0 || rel + 2 > st.len then -1
      else Psd_util.Codec.get_u16 st.pkt (st.base + rel)
    in
    let ld_u32 rel =
      if rel < 0 || rel + 4 > st.len then -1
      else Psd_util.Codec.get_u32i st.pkt (st.base + rel)
    in
    let ld (size : Insn.size) rel =
      match size with B -> ld_u8 rel | H -> ld_u16 rel | W -> ld_u32 rel
    in
    for i = n - 1 downto 0 do
      let next = code.(i + 1) in
      let f =
        match (prog.(i) : Insn.t) with
        | Ld (size, Abs k) ->
          fun () ->
            st.steps <- st.steps + 1;
            let v = ld size k in
            if v < 0 then 0
            else begin
              st.a <- v;
              next ()
            end
        | Ld (size, Ind k) ->
          fun () ->
            st.steps <- st.steps + 1;
            let v = ld size (st.x + k) in
            if v < 0 then 0
            else begin
              st.a <- v;
              next ()
            end
        | Ld (_, Len) ->
          fun () ->
            st.steps <- st.steps + 1;
            st.a <- st.len;
            next ()
        | Ld (_, Imm k) ->
          let k = mask32 k in
          fun () ->
            st.steps <- st.steps + 1;
            st.a <- k;
            next ()
        | Ld (_, Mem k) ->
          fun () ->
            st.steps <- st.steps + 1;
            st.a <- st.mem.(k);
            next ()
        | Ld (_, Msh _) -> assert false (* rejected by validate *)
        | Ldx (Imm k) ->
          let k = mask32 k in
          fun () ->
            st.steps <- st.steps + 1;
            st.x <- k;
            next ()
        | Ldx (Mem k) ->
          fun () ->
            st.steps <- st.steps + 1;
            st.x <- st.mem.(k);
            next ()
        | Ldx Len ->
          fun () ->
            st.steps <- st.steps + 1;
            st.x <- st.len;
            next ()
        | Ldx (Msh k) ->
          fun () ->
            st.steps <- st.steps + 1;
            let v = ld_u8 k in
            if v < 0 then 0
            else begin
              st.x <- 4 * (v land 0xf);
              next ()
            end
        | Ldx (Abs k) ->
          fun () ->
            st.steps <- st.steps + 1;
            let v = ld_u32 k in
            if v < 0 then 0
            else begin
              st.x <- v;
              next ()
            end
        | Ldx (Ind k) ->
          fun () ->
            st.steps <- st.steps + 1;
            let v = ld_u32 (st.x + k) in
            if v < 0 then 0
            else begin
              st.x <- v;
              next ()
            end
        | St k ->
          fun () ->
            st.steps <- st.steps + 1;
            st.mem.(k) <- st.a;
            next ()
        | Stx k ->
          fun () ->
            st.steps <- st.steps + 1;
            st.mem.(k) <- st.x;
            next ()
        | Alu (op, src) -> (
          let apply (op : Insn.alu) a v =
            match op with
            | Add -> mask32 (a + v)
            | Sub -> mask32 (a - v)
            | Mul -> mask32 (a * v)
            | Div -> a / v (* v <> 0 checked by caller *)
            | And -> a land v
            | Or -> a lor v
            | Lsh -> mask32 (a lsl (v land 31))
            | Rsh -> a lsr (v land 31)
          in
          match src with
          | K k ->
            let k = mask32 k in
            if op = Div && k = 0 then assert false (* rejected by validate *)
            else
              fun () ->
                st.steps <- st.steps + 1;
                st.a <- apply op st.a k;
                next ()
          | X ->
            if op = Div then
              fun () ->
                st.steps <- st.steps + 1;
                if st.x = 0 then 0
                else begin
                  st.a <- st.a / st.x;
                  next ()
                end
            else
              fun () ->
                st.steps <- st.steps + 1;
                st.a <- apply op st.a st.x;
                next ())
        | Neg ->
          fun () ->
            st.steps <- st.steps + 1;
            st.a <- mask32 (-st.a);
            next ()
        | Tax ->
          fun () ->
            st.steps <- st.steps + 1;
            st.x <- st.a;
            next ()
        | Txa ->
          fun () ->
            st.steps <- st.steps + 1;
            st.a <- st.x;
            next ()
        | Ja off ->
          let target = code.(i + 1 + off) in
          fun () ->
            st.steps <- st.steps + 1;
            target ()
        | Jmp (cond, src, jt, jf) ->
          let on_true = code.(i + 1 + jt) in
          let on_false = code.(i + 1 + jf) in
          let value =
            match src with
            | Insn.K k ->
              let k = mask32 k in
              fun () -> k
            | X -> fun () -> st.x
          in
          let test =
            match (cond : Insn.cond) with
            | Jeq -> fun a v -> a = v
            | Jgt -> fun a v -> a > v
            | Jge -> fun a v -> a >= v
            | Jset -> fun a v -> a land v <> 0
          in
          fun () ->
            st.steps <- st.steps + 1;
            if test st.a (value ()) then on_true () else on_false ()
        | Ret (RetK k) ->
          fun () ->
            st.steps <- st.steps + 1;
            k
        | Ret RetA ->
          fun () ->
            st.steps <- st.steps + 1;
            st.a
      in
      code.(i) <- f
    done;
    Ok { state = st; entry = code.(0) }

let compile_exn prog =
  match compile prog with
  | Ok t -> t
  | Error e ->
    invalid_arg (Format.asprintf "Compile.compile_exn: %a" Vm.pp_error e)

let exec t pkt ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length pkt then
    invalid_arg "Compile.exec";
  let st = t.state in
  st.pkt <- pkt;
  st.base <- off;
  st.len <- len;
  st.a <- 0;
  st.x <- 0;
  st.steps <- 0;
  Array.fill st.mem 0 Vm.scratch_cells 0;
  let accept = t.entry () in
  st.pkt <- Bytes.empty;
  (* don't retain the frame *)
  (accept, st.steps)

let run t pkt = exec t pkt ~off:0 ~len:(Bytes.length pkt)
