(** Tiny assembler: filter programs with symbolic jump targets.

    BPF jump offsets are relative and forward-only, which is error-prone
    to compute by hand; filters are written against labels instead and
    resolved here. *)

type stmt =
  | Label of string
  | I of Insn.t  (** any non-jumping instruction *)
  | J of Insn.cond * Insn.src * string * string
      (** conditional jump to two labels *)
  | Goto of string

val assemble : stmt list -> (Vm.program, string) result
(** Resolve labels to relative offsets and validate the result. Fails on
    unknown or duplicate labels and on programs {!Vm.validate} rejects. *)

val assemble_exn : stmt list -> Vm.program
