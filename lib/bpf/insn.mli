(** BPF-style packet-filter instruction set.

    A register machine in the style of McCanne & Jacobson's BSD Packet
    Filter: a 32-bit accumulator [A], an index register [X], sixteen
    32-bit scratch cells, and forward-only conditional jumps. Programs
    inspect a packet and return the number of bytes to deliver
    (0 = reject). *)

type size = B  (** byte *) | H  (** 16-bit big-endian *) | W  (** 32-bit *)

type mode =
  | Abs of int  (** packet byte at constant offset *)
  | Ind of int  (** packet byte at [X + k] *)
  | Len  (** packet length *)
  | Imm of int  (** constant *)
  | Mem of int  (** scratch cell *)
  | Msh of int
      (** [4 * (pkt[k] land 0xf)] — extracts an IP header length;
          only valid for {!Insn.t.Ldx} *)

type src = K of int  (** constant operand *) | X  (** index register *)

type alu = Add | Sub | Mul | Div | And | Or | Lsh | Rsh

type cond = Jeq | Jgt | Jge | Jset

type ret = RetK of int | RetA

type t =
  | Ld of size * mode  (** load into A *)
  | Ldx of mode  (** load into X *)
  | St of int  (** A to scratch cell *)
  | Stx of int  (** X to scratch cell *)
  | Alu of alu * src  (** A := A op src *)
  | Neg  (** A := -A *)
  | Ja of int  (** unconditional forward jump *)
  | Jmp of cond * src * int * int  (** compare A, jump jt / jf *)
  | Ret of ret
  | Tax  (** X := A *)
  | Txa  (** A := X *)

val pp : Format.formatter -> t -> unit

val pp_program : Format.formatter -> t array -> unit
