(** A multi-interface IP router.

    The paper's testbed is a single private Ethernet, but its stacks keep
    full routing tables with gateway entries (metastate, Section 3.3);
    this module provides the box those entries point at, so that
    multi-segment topologies can be simulated: each interface owns a
    network device and an ARP identity, and IP packets are forwarded
    between segments with TTL decrement, header-checksum rewrite, and
    per-hop ARP resolution. Forwarding runs in the router's kernel
    context and charges routing costs per packet. *)

type t

val create :
  eng:Psd_sim.Engine.t ->
  ?plat:Psd_cost.Platform.t ->
  ?shard:int ->
  name:string ->
  ifaces:(Psd_link.Segment.t * string) list ->
  unit ->
  t
(** [ifaces] pairs each attached segment with the router's address on it
    (e.g. [(seg1, "10.0.1.254"); (seg2, "10.0.2.254")]). A direct route
    for each interface's /24 is installed; additional routes can be added
    through {!routes}. The router answers ARP for its own addresses.
    [shard] (default 0) places every interface NIC on that shard of its
    duplex segment; [eng] must then be that shard's engine. *)

val routes : t -> Psd_ip.Route.t

val host : t -> Psd_mach.Host.t

val forwarded : t -> int
(** Packets forwarded between interfaces. *)

val dropped_ttl : t -> int
(** Packets discarded because their TTL expired here. *)

val dropped_no_route : t -> int
