(** Host-wide transport port namespace.

    With protocol stacks in application address spaces, port uniqueness
    can no longer be enforced by a single in-kernel PCB table; the
    operating-system server owns this allocator and every endpoint name
    passes through it (paper Section 3.2, "Establishing connections"). *)

type t

val create : ?ephemeral_base:int -> unit -> t
(** Ephemeral allocation starts at [ephemeral_base] (default 1024). *)

val reserve : t -> int -> (unit, [ `In_use ]) result
(** Claim a specific port. *)

val alloc_ephemeral : t -> int
(** Claim the next free ephemeral port: amortised O(1) — a rising
    watermark while virgin ports remain (same order the old linear
    scan produced), then FIFO recycling of released ports.
    @raise Failure if the namespace is exhausted. *)

val release : t -> int -> unit

val in_use : t -> int -> bool

val count : t -> int
