open Psd_cost
module S = Session

type app = {
  host : Psd_mach.Host.t;
  config : Config.t;
  task : Psd_mach.Task.t;
  stack : Netstack.t option; (* protocol library (Library placement) *)
  call_ctx : Ctx.t;
  server : (S.req, S.resp) Psd_mach.Ipc.port option;
  server_app_id : int option;
  kernel_stack : Netstack.t option;
  kernel_tcp_ports : Portalloc.t option;
  kernel_udp_ports : Portalloc.t option;
  local_cond : Psd_sim.Cond.t; (* any local socket changed readiness *)
  (* [sockets] may contain closed entries: [close] only marks and
     counts them, and the list is compacted once half of it is dead —
     amortised O(1) per close where eager filtering made closing n
     sockets O(n²). Every iteration over [sockets] must skip closed
     entries. *)
  mutable sockets : t list;
  mutable n_socks : int; (* length of [sockets], dead included *)
  mutable dead_socks : int; (* closed entries awaiting compaction *)
  mutable forker : (name:string -> app) option;
  mutable next_local_sid : int;
  (* One shared TCP handlers record per stack (an app sees at most two:
     its library stack and the kernel stack). Callbacks recover the
     socket from the pcb's owner token, so a million connections share
     one record instead of carrying six closures each. *)
  mutable stream_h : (Netstack.t * Psd_tcp.Tcp.handlers) list;
}

(* The socket record is sized for the C1M workload: a million mostly
   idle connections. Everything a quiescent socket does not need is
   either packed (booleans into [sflags], endpoints into int fields
   with port [-1] as "none") or allocated lazily on first use and, for
   the receive buffers, deflated back to [None] once drained — an
   accepted-but-quiet connection pays for no sockbuf, no dgram queue,
   no condition variables and no completion queue. *)
and t = {
  a : app;
  knd : S.kind;
  sid : S.sid;
  mutable loc : loc;
  mutable rcv : Psd_socket.Sockbuf.t option;
  mutable dq : dgram_payload Psd_socket.Dgramq.t option;
  mutable acked : Psd_sim.Cond.t option;
  mutable conn : Psd_sim.Cond.t option;
  mutable sflags : int;
  mutable conn_err : string option;
  mutable local_ip : Psd_ip.Addr.t;
  mutable local_port : int; (* -1 = unbound *)
  mutable rem_ip : Psd_ip.Addr.t;
  mutable rem_port : int; (* -1 = unconnected *)
  mutable soft_err : string option; (* e.g. ICMP port unreachable *)
  (* NEWAPI send-completion discipline: [send_owned] hands ownership of
     a caller buffer to the stack until every byte of that send is
     acknowledged. Thresholds are cumulative enqueued-byte counts (the
     classic [send] path maintains the counter too, so owned and copied
     sends interleave correctly); completions are FIFO, drained from the
     TCP [on_acked] stream. *)
  mutable tx_enqueued_total : int;
  mutable tx_acked_total : int;
  mutable tx_completions : (int * (unit -> unit)) Queue.t option;
  (* Fired once when the peer closes its send side (FIN) or the
     connection errors — lets a server hold a million idle connections
     open without parking a reader fiber (and its inflated receive
     buffer) on every one of them. *)
  mutable on_hangup : (unit -> unit) option;
}

(* What a datagram socket queues: the classic API stores a cooked
   string (the copy-out happened at delivery), the NEWAPI stores the
   payload view itself, loaned to the application at receive time. *)
and dgram_payload = Cooked of string | Loaned of Psd_mbuf.Mbuf.t

and loc =
  | Fresh
  | Remote
  | Ltcp of Psd_tcp.Tcp.pcb * Netstack.t
  | Ludp of Psd_udp.Udp.pcb * Netstack.t
  | Llisten of Psd_tcp.Tcp.listener * Netstack.t

type location = Loc_library | Loc_server | Loc_kernel | Loc_none

exception Sock of t
(* The owner token shared TCP handlers use to find their socket. *)

(* [sflags] bits *)
let f_conn_ok = 1

let f_nodelay = 2

let f_selected = 4

let f_reported = 8 (* readiness the server currently believes *)

let f_closed = 16

let f_nonblocking = 32

let[@inline] sflag s bit = s.sflags land bit <> 0

let[@inline] set_sflag s bit v =
  s.sflags <- (if v then s.sflags lor bit else s.sflags land lnot bit)

let[@inline] conn_ok s = sflag s f_conn_ok

let[@inline] closed s = sflag s f_closed

let[@inline] nonblocking s = sflag s f_nonblocking

let snd_hiwat = 24 * 1024

let task a = a.task

let app_stack a = a.stack

let kind s = s.knd

let local_endpoint s =
  if s.local_port < 0 then None else Some (s.local_ip, s.local_port)

let remote_endpoint s =
  if s.rem_port < 0 then None else Some (s.rem_ip, s.rem_port)

let set_local s ((ip, port) : S.endpoint) =
  s.local_ip <- ip;
  s.local_port <- port

let set_rem s ((ip, port) : S.endpoint) =
  s.rem_ip <- ip;
  s.rem_port <- port

let set_nodelay s v =
  set_sflag s f_nodelay v;
  match s.loc with
  | Ltcp (pcb, _) -> Psd_tcp.Tcp.set_nodelay pcb v
  | _ -> ()

let eng a = Psd_mach.Host.eng a.host

let in_kernel a = a.config.Config.placement = Config.In_kernel

let offloaded a = a.config.Config.placement = Config.Offload

(* Sessions live in a stack on this host with no OS server in the loop:
   the kernel stack (In_kernel) or the on-NIC stack (Offload).  Both
   dispatch through the kernel_stack/kernel_ports plumbing; they differ
   only in what the call boundary costs (a trap vs a descriptor-ring
   crossing) and in copy physics. *)
let local_stack a = in_kernel a || offloaded a

(* The NIC pipeline behind an offloaded app's stack, for the
   doorbell/completion counters. *)
let nic_pipe a =
  match a.kernel_stack with
  | Some stack -> Psd_mach.Netdev.offload_pipe (Netstack.netdev stack)
  | None -> None

let location s =
  match s.loc with
  | Fresh -> Loc_none
  | Remote -> Loc_server
  | Llisten _ | Ltcp _ | Ludp _ ->
    if local_stack s.a then Loc_kernel else Loc_library

let sb_readable = function
  | Some b -> Psd_socket.Sockbuf.readable b
  | None -> false

let dq_readable = function
  | Some q -> Psd_socket.Dgramq.readable q
  | None -> false

let readable s =
  match s.loc with
  | Llisten (l, _) -> Psd_tcp.Tcp.pending l > 0
  | Ltcp _ -> sb_readable s.rcv
  | Ludp _ -> dq_readable s.dq
  | Remote | Fresh ->
    (* server-resident readiness is known only to the server *)
    sb_readable s.rcv || dq_readable s.dq

(* ------------------------------------------------------------------ *)
(* proxy: RPC plumbing and the cooperative status protocol             *)

let server_port a =
  match a.server with
  | Some p -> p
  | None -> invalid_arg "Sockets: no operating-system server"

let rpc s ?req_bytes ?resp_size ?(phase = Phase.Control) req =
  Psd_mach.Ipc.call (server_port s.a) ~ctx:s.a.call_ctx ~phase ?req_bytes
    ?resp_size req

(* proxy_status: tell the server when a selected socket's readiness
   changes (it cannot observe application-resident sessions itself).
   A "became readable" report must later be withdrawn when the data is
   consumed, even if no select is outstanding at that moment — otherwise
   the server's view goes stale and later selects return spuriously. *)
let notify_status s =
  if s.sid >= 0 then begin
    let r = readable s in
    let must_tell =
      (sflag s f_selected || sflag s f_reported) && r <> sflag s f_reported
    in
    if must_tell then begin
      set_sflag s f_reported r;
      match s.a.server with
      | Some port ->
        Psd_mach.Ipc.oneway port ~ctx:s.a.call_ctx ~phase:Phase.Control
          (S.R_status { sid = s.sid; readable = r })
      | None -> ()
    end
  end

let signal_local a = Psd_sim.Cond.broadcast a.local_cond

(* ------------------------------------------------------------------ *)
(* lazy per-socket state: inflate on first use, deflate when inert     *)

let rcv_of s =
  match s.rcv with
  | Some b -> b
  | None ->
    let b = Psd_socket.Sockbuf.create (eng s.a) () in
    Psd_socket.Sockbuf.on_change b (fun () -> signal_local s.a);
    s.rcv <- Some b;
    b

let dq_of s =
  match s.dq with
  | Some q -> q
  | None ->
    let q = Psd_socket.Dgramq.create (eng s.a) () in
    Psd_socket.Dgramq.on_change q (fun () -> signal_local s.a);
    s.dq <- Some q;
    q

let acked_of s =
  match s.acked with
  | Some c -> c
  | None ->
    let c = Psd_sim.Cond.create (eng s.a) in
    s.acked <- Some c;
    c

let conn_of s =
  match s.conn with
  | Some c -> c
  | None ->
    let c = Psd_sim.Cond.create (eng s.a) in
    s.conn <- Some c;
    c

let txq_of s =
  match s.tx_completions with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    s.tx_completions <- Some q;
    q

(* Broadcasting an un-inflated condition is exactly broadcasting one
   with no waiters: any fiber that could wait inflates it first. *)
let broadcast_opt = function
  | Some c -> Psd_sim.Cond.broadcast c
  | None -> ()

(* Deflate the receive buffer once it carries no observable state: no
   bytes, no outstanding loan, no EOF or error mark, no blocked reader.
   Re-inflation reproduces this exact state, so readers cannot tell —
   but an accepted-then-drained connection drops back to paying zero. *)
let maybe_deflate_rcv s =
  match s.rcv with
  | Some b ->
    if
      Psd_socket.Sockbuf.cc b = 0
      && Psd_socket.Sockbuf.loaned b = 0
      && (not (Psd_socket.Sockbuf.eof b))
      && Psd_socket.Sockbuf.error b = None
      && not (Psd_socket.Sockbuf.has_waiters b)
    then s.rcv <- None
  | None -> ()

(* The dropped-datagram count is observable state too (BSD SO_RCVBUF
   overflow accounting): a queue that ever dropped stays inflated. *)
let maybe_deflate_dq s =
  match s.dq with
  | Some q ->
    if
      (not (Psd_socket.Dgramq.readable q))
      && (not (Psd_socket.Dgramq.has_waiters q))
      && Psd_socket.Dgramq.dropped q = 0
    then s.dq <- None
  | None -> ()

let ewouldblock = "operation would block"

(* ------------------------------------------------------------------ *)
(* cost charging for the data path entry/exit                          *)

let chunks len = max 1 ((len + Psd_mbuf.Mbuf.cluster_size - 1) / Psd_mbuf.Mbuf.cluster_size)

(* Entry into the socket layer for a local (kernel or library) session.
   When the data is not copied (library UDP: "the user data can be
   referenced instead of copied", Table 4) no mbuf storage is allocated
   either. *)
(* Offload boundary: the host's only datapath work is the descriptor
   ring.  A send rings the doorbell; a receive reaps a completion; each
   descriptor pays the bounded host<->NIC queue crossing, attributed to
   its own phase so the breakdown table shows where the boundary cost
   lands.  Everything the stack itself charges is zero under the
   zero-cost platform, so these are the whole host-side cost. *)
let charge_doorbell a =
  match a.config.Config.nic with
  | Some n ->
    Ctx.charge a.call_ctx Phase.Entry_copyin n.Platform.doorbell;
    Ctx.charge a.call_ctx Phase.Desc_crossing n.Platform.crossing;
    (match nic_pipe a with
    | Some p -> Psd_mach.Nicpipe.doorbell p
    | None -> ())
  | None -> ()

let charge_completion a =
  match a.config.Config.nic with
  | Some n ->
    Ctx.charge a.call_ctx Phase.Copyout_exit n.Platform.completion;
    Ctx.charge a.call_ctx Phase.Desc_crossing n.Platform.crossing;
    (match nic_pipe a with
    | Some p -> Psd_mach.Nicpipe.completion p
    | None -> ())
  | None -> ()

let charge_entry a (stack : Netstack.t) ~len ~copies =
  if offloaded a then charge_doorbell a;
  let ctx = Netstack.ctx stack in
  let plat = ctx.Ctx.plat in
  let via_trap = in_kernel a in
  let copy_per_byte =
    if a.config.Config.api = Config.Newapi then 0
    else if via_trap then plat.Platform.copy_user_kernel_per_byte
    else plat.Platform.copy_per_byte
  in
  Ctx.charge ctx Phase.Entry_copyin
    ((if via_trap then plat.Platform.trap else plat.Platform.proc_call)
    + plat.Platform.socket_layer
    + (if copies then chunks len * plat.Platform.mbuf_alloc else 0)
    + ctx.Ctx.sync_ns
    + if copies then len * copy_per_byte else 0)

let charge_exit a (stack : Netstack.t) ~len ~copies =
  if offloaded a then charge_completion a;
  let ctx = Netstack.ctx stack in
  let plat = ctx.Ctx.plat in
  let via_trap = in_kernel a in
  let copy_per_byte =
    if a.config.Config.api = Config.Newapi then 0
    else if via_trap then plat.Platform.copy_user_kernel_per_byte
    else plat.Platform.copy_per_byte
  in
  Ctx.charge ctx Phase.Copyout_exit
    ((if via_trap then plat.Platform.trap else plat.Platform.proc_call)
    + plat.Platform.mbuf_op + ctx.Ctx.sync_ns
    + if copies then len * copy_per_byte else 0)

(* ------------------------------------------------------------------ *)
(* socket creation                                                     *)

let make_socket a knd sid =
  let s =
    {
      a;
      knd;
      sid;
      loc = Fresh;
      rcv = None;
      dq = None;
      acked = None;
      conn = None;
      sflags = 0;
      conn_err = None;
      local_ip = Psd_ip.Addr.any;
      local_port = -1;
      rem_ip = Psd_ip.Addr.any;
      rem_port = -1;
      soft_err = None;
      tx_enqueued_total = 0;
      tx_acked_total = 0;
      tx_completions = None;
      on_hangup = None;
    }
  in
  a.sockets <- s :: a.sockets;
  a.n_socks <- a.n_socks + 1;
  s

let fresh_local_sid a =
  let sid = a.next_local_sid in
  a.next_local_sid <- sid - 1;
  sid

(* Socket creation reports failures through the [result] API like every
   other call: an [Rs_err] from the operating-system server carries the
   cause (unknown application, resource exhaustion, ...) and it must
   reach the caller instead of collapsing into a generic exception. *)
let create_socket a knd =
  if local_stack a then Ok (make_socket a knd (fresh_local_sid a))
  else begin
    let app_id = Option.get a.server_app_id in
    match
      Psd_mach.Ipc.call (server_port a) ~ctx:a.call_ctx ~phase:Phase.Control
        (S.R_socket { kind = knd; app = app_id })
    with
    | S.Rs_socket sid -> Ok (make_socket a knd sid)
    | S.Rs_err e -> Error e
    | _ -> Error "unexpected reply to socket request"
  end

let try_stream a = create_socket a S.Stream

let try_dgram a = create_socket a S.Dgram

(* Convenience constructors; even these keep the server's error text. *)
let stream a =
  match try_stream a with
  | Ok s -> s
  | Error e -> failwith ("socket: " ^ e)

let dgram a =
  match try_dgram a with
  | Ok s -> s
  | Error e -> failwith ("socket: " ^ e)

(* ------------------------------------------------------------------ *)
(* NEWAPI send-completion bookkeeping                                  *)

(* Fire every completion whose byte threshold has been acknowledged.
   FIFO: thresholds are registered in enqueue order and are monotone,
   so the queue head is always the earliest outstanding send. *)
let drain_tx_completions s =
  match s.tx_completions with
  | None -> ()
  | Some q ->
    let rec go () =
      match Queue.peek_opt q with
      | Some (threshold, k) when s.tx_acked_total >= threshold ->
        ignore (Queue.pop q);
        k ();
        go ()
      | _ -> ()
    in
    go ()

(* On error or close the stack gives the buffers back unconditionally —
   a completion that can never fire would strand the caller's memory. *)
let fire_all_tx_completions s =
  match s.tx_completions with
  | None -> ()
  | Some q ->
    while not (Queue.is_empty q) do
      let _, k = Queue.pop q in
      k ()
    done

(* ------------------------------------------------------------------ *)
(* handlers wiring for library/kernel-resident sessions                *)

(* Recover the socket a shared handler fired for. Handlers are only
   installed together with an owner token, so the fallback is dead code
   kept for totality. *)
let[@inline] on_sock pcb f =
  match Psd_tcp.Tcp.owner pcb with Sock s -> f s | _ -> ()

(* The hook runs in its own immediate fiber — exactly when a reader
   resumed out of a blocked [recv] would run — because firing it
   synchronously from inside [deliver_fin]/[on_error] would reenter
   the TCP input path mid-segment; a fiber (not a bare event) because
   hooks typically call [close], which blocks. *)
let fire_hangup s =
  match s.on_hangup with
  | Some k ->
    s.on_hangup <- None;
    Psd_sim.Engine.spawn (eng s.a) ~name:"sock-hangup" k
  | None -> ()

(* One handlers record per stack, cached on the app: every callback
   recovers its socket from the pcb's owner token, so connections share
   the record instead of closing over their socket six times each. *)
let stream_handlers a (stack : Netstack.t) =
  match List.assq_opt stack a.stream_h with
  | Some h -> h
  | None ->
    let ctx = Netstack.ctx stack in
    let plat = ctx.Ctx.plat in
    let h =
      {
        Psd_tcp.Tcp.deliver =
          (fun pcb m ->
            on_sock pcb (fun s ->
                Ctx.charge ctx Phase.Proto_input
                  (plat.Platform.mbuf_op + ctx.Ctx.sync_ns);
                (match s.rcv with
                | Some b when Psd_socket.Sockbuf.has_waiters b ->
                  Ctx.charge ctx Phase.Wakeup ctx.Ctx.wakeup_ns
                | _ -> ());
                Psd_socket.Sockbuf.append (rcv_of s) m;
                notify_status s));
        deliver_fin =
          (fun pcb ->
            on_sock pcb (fun s ->
                Psd_socket.Sockbuf.set_eof (rcv_of s);
                notify_status s;
                fire_hangup s));
        on_established =
          (fun pcb ->
            on_sock pcb (fun s ->
                set_sflag s f_conn_ok true;
                broadcast_opt s.conn));
        on_acked =
          (fun pcb n ->
            on_sock pcb (fun s ->
                s.tx_acked_total <- s.tx_acked_total + n;
                drain_tx_completions s;
                broadcast_opt s.acked;
                signal_local s.a));
        on_error =
          (fun pcb e ->
            on_sock pcb (fun s ->
                let msg = Format.asprintf "%a" Psd_tcp.Tcp.pp_error e in
                s.conn_err <- Some msg;
                Psd_socket.Sockbuf.set_error (rcv_of s) msg;
                fire_all_tx_completions s;
                broadcast_opt s.conn;
                broadcast_opt s.acked;
                notify_status s;
                fire_hangup s));
        on_state = (fun pcb _ -> on_sock pcb (fun s -> signal_local s.a));
      }
    in
    a.stream_h <- (stack, h) :: a.stream_h;
    h

(* Bind a pcb to its socket and install the stack's shared handlers —
   owner first, so any data re-delivered by [set_handlers] can already
   find the socket. *)
let adopt_pcb s stack pcb =
  Psd_tcp.Tcp.set_owner pcb (Sock s);
  Psd_tcp.Tcp.set_handlers pcb (stream_handlers s.a stack)

let udp_receive s (stack : Netstack.t) (dg : Psd_udp.Udp.datagram) =
  let ctx = Netstack.ctx stack in
  (match s.dq with
  | Some q when Psd_socket.Dgramq.has_waiters q ->
    Ctx.charge ctx Phase.Wakeup ctx.Ctx.wakeup_ns
  | _ -> ());
  (* NEWAPI: queue the payload view itself — it is loaned to the
     application at receive time, so no copy-out happens here (or
     ever, on the loaned path). The classic API cooks the string now
     and counts the copy-out at this point. *)
  let payload =
    if s.a.config.Config.api = Config.Newapi then
      Loaned dg.Psd_udp.Udp.payload
    else begin
      Psd_util.Copies.count Psd_util.Copies.Rx_copyout
        (Psd_mbuf.Mbuf.length dg.Psd_udp.Udp.payload);
      Cooked (Psd_mbuf.Mbuf.to_string dg.Psd_udp.Udp.payload)
    end
  in
  ignore
    (Psd_socket.Dgramq.push (dq_of s)
       ~src:(Psd_ip.Addr.to_int dg.Psd_udp.Udp.src, dg.Psd_udp.Udp.src_port)
       payload);
  notify_status s

(* ------------------------------------------------------------------ *)
(* bind / connect / listen / accept                                    *)

let kernel_ports a = function
  | S.Stream -> Option.get a.kernel_tcp_ports
  | S.Dgram -> Option.get a.kernel_udp_ports

let kstack a = Option.get a.kernel_stack

let charge_trap a =
  if offloaded a then begin
    (* control ops cross the descriptor ring too: post + reap *)
    match a.config.Config.nic with
    | Some n ->
      Ctx.charge a.call_ctx Phase.Control
        (n.Platform.doorbell + n.Platform.completion);
      Ctx.charge a.call_ctx Phase.Desc_crossing (2 * n.Platform.crossing)
    | None -> ()
  end
  else
    let plat = Psd_mach.Host.plat a.host in
    Ctx.charge a.call_ctx Phase.Control plat.Platform.trap

let bind_local_udp s stack port =
  match
    Psd_udp.Udp.bind (Netstack.udp stack) ~port
      ~receive:(fun dg -> udp_receive s stack dg)
  with
  | Ok pcb ->
    s.loc <- Ludp (pcb, stack);
    set_local s (Netstack.addr stack, port);
    Ok port
  | Error `Port_in_use -> Error "port in use in stack"

let bind s ?port () =
  if closed s then Error "bad descriptor"
  else if local_stack s.a then begin
    charge_trap s.a;
    let ports = kernel_ports s.a s.knd in
    let result =
      match port with
      | Some p -> (
        match Portalloc.reserve ports p with
        | Ok () -> Ok p
        | Error `In_use -> Error "address in use")
      | None -> Ok (Portalloc.alloc_ephemeral ports)
    in
    match result with
    | Error e -> Error e
    | Ok p -> (
      match s.knd with
      | S.Dgram -> bind_local_udp s (kstack s.a) p
      | S.Stream ->
        set_local s (Netstack.addr (kstack s.a), p);
        Ok p)
  end
  else
    match rpc s (S.R_bind { sid = s.sid; port }) with
    | S.Rs_bound m -> (
      set_local s m.S.m_local;
      match (s.knd, s.a.stack) with
      | S.Dgram, Some stack ->
        (* the UDP session has migrated here: bind the library stack *)
        bind_local_udp s stack (snd m.S.m_local)
      | _ ->
        s.loc <- (if s.knd = S.Dgram then Remote else s.loc);
        Ok (snd m.S.m_local))
    | S.Rs_err e -> Error e
    | _ -> Error "protocol error"

let wait_connected s =
  Psd_sim.Cond.until (conn_of s) (fun () ->
      if conn_ok s then Some (Ok ())
      else
        match s.conn_err with Some e -> Some (Error e) | None -> None)

let connect s ip port =
  if closed s then Error "bad descriptor"
  else if local_stack s.a then begin
    charge_trap s.a;
    match s.knd with
    | S.Dgram -> (
      let ensure_bound =
        match s.loc with
        | Ludp _ -> Ok 0
        | Fresh -> bind s ()
        | _ -> Error "invalid state"
      in
      match (ensure_bound, s.loc) with
      | Ok _, Ludp (pcb, _) ->
        Psd_udp.Udp.connect pcb ip port;
        set_rem s (ip, port);
        Ok ()
      | Error e, _ -> Error e
      | _ -> Error "invalid state")
    | S.Stream -> (
      let src_port =
        if s.local_port >= 0 then s.local_port
        else Portalloc.alloc_ephemeral (kernel_ports s.a S.Stream)
      in
      let stack = kstack s.a in
      set_local s (Netstack.addr stack, src_port);
      let pcb =
        Psd_tcp.Tcp.connect (Netstack.tcp stack) ~src_port ~dst:ip
          ~dst_port:port ()
      in
      s.loc <- Ltcp (pcb, stack);
      set_rem s (ip, port);
      adopt_pcb s stack pcb;
      Psd_tcp.Tcp.set_nodelay pcb (sflag s f_nodelay);
      match wait_connected s with
      | Ok () -> Ok ()
      | Error e ->
        s.loc <- Fresh;
        Error e)
  end
  else
    match rpc s (S.R_connect { sid = s.sid; dst = (ip, port) }) with
    | S.Rs_connected m -> (
      set_local s m.S.m_local;
      set_rem s (ip, port);
      match (m.S.m_tcb, s.knd, s.a.stack) with
      | Some snap, S.Stream, Some stack ->
        (* the established session migrates into our protocol library;
           the handlers (and owner) must be live at import time because
           any data that arrived during establishment is re-delivered
           through them *)
        let pcb =
          Psd_tcp.Tcp.import (Netstack.tcp stack) ~owner:(Sock s)
            ~handlers:(stream_handlers s.a stack) snap
        in
        s.loc <- Ltcp (pcb, stack);
        set_sflag s f_conn_ok true;
        Psd_tcp.Tcp.set_nodelay pcb (sflag s f_nodelay);
        Ok ()
      | None, S.Dgram, Some stack -> (
        (* library UDP: (re)bind locally with the connected peer *)
        (match s.loc with
        | Ludp (pcb, _) ->
          Psd_udp.Udp.connect pcb ip port;
          Ok ()
        | Fresh -> (
          match bind_local_udp s stack (snd m.S.m_local) with
          | Ok _ -> (
            match s.loc with
            | Ludp (pcb, _) ->
              Psd_udp.Udp.connect pcb ip port;
              Ok ()
            | _ -> Error "bind failed")
          | Error e -> Error e)
        | _ -> Error "invalid state"))
      | _ ->
        (* server-resident session (Server placement) *)
        s.loc <- Remote;
        set_sflag s f_conn_ok true;
        Ok ())
    | S.Rs_err e -> Error e
    | _ -> Error "protocol error"

let listen s ?(backlog = 5) () =
  if s.knd <> S.Stream then Error "listen on datagram socket"
  else if local_stack s.a then begin
    charge_trap s.a;
    if s.local_port < 0 then Error "listen before bind"
    else begin
      let port = s.local_port in
      let stack = kstack s.a in
      let listener = Psd_tcp.Tcp.listen (Netstack.tcp stack) ~port ~backlog () in
      (* wake acceptors on this socket's own condition so an incoming
         connection resumes only them, not every app-wide waiter; the
         app-wide signal stays for select() *)
      Psd_tcp.Tcp.on_ready listener (fun () ->
          broadcast_opt s.conn;
          signal_local s.a);
      s.loc <- Llisten (listener, stack);
      Ok ()
    end
  end
  else
    match rpc s (S.R_listen { sid = s.sid; backlog }) with
    | S.Rs_ok ->
      s.loc <- Remote;
      Ok ()
    | S.Rs_err e -> Error e
    | _ -> Error "protocol error"

let accept s =
  if local_stack s.a then begin
    charge_trap s.a;
    match s.loc with
    | Llisten (listener, _) when nonblocking s
                                 && Psd_tcp.Tcp.pending listener = 0 ->
      Error ewouldblock
    | Llisten (listener, stack) ->
      let pcb =
        Psd_sim.Cond.until (conn_of s) (fun () ->
            Psd_tcp.Tcp.accept_ready listener)
      in
      let s' = make_socket s.a S.Stream (fresh_local_sid s.a) in
      s'.loc <- Ltcp (pcb, stack);
      s'.local_ip <- s.local_ip;
      s'.local_port <- s.local_port;
      set_rem s' (Psd_tcp.Tcp.remote pcb);
      set_sflag s' f_conn_ok true;
      adopt_pcb s' stack pcb;
      Ok s'
    | _ -> Error "accept on non-listening socket"
  end
  else if
    nonblocking s
    && (match
          rpc s
            (S.R_select
               {
                 app = Option.value s.a.server_app_id ~default:0;
                 sids = [ s.sid ];
                 timeout_ns = Some 0;
               })
        with
       | S.Rs_select [] -> true
       | _ -> false)
  then Error ewouldblock
  else
    match rpc s (S.R_accept { sid = s.sid }) with
    | S.Rs_accepted (sid', m) -> (
      let s' = make_socket s.a S.Stream sid' in
      set_local s' m.S.m_local;
      (match m.S.m_remote with Some ep -> set_rem s' ep | None -> ());
      set_sflag s' f_conn_ok true;
      match (m.S.m_tcb, s.a.stack) with
      | Some snap, Some stack ->
        let pcb =
          Psd_tcp.Tcp.import (Netstack.tcp stack) ~owner:(Sock s')
            ~handlers:(stream_handlers s.a stack) snap
        in
        s'.loc <- Ltcp (pcb, stack);
        Ok s'
      | _ ->
        s'.loc <- Remote;
        Ok s')
    | S.Rs_err e -> Error e
    | _ -> Error "protocol error"

(* ------------------------------------------------------------------ *)
(* data transfer                                                       *)

let charge_app_overhead s =
  let plat = Psd_mach.Host.plat s.a.host in
  Ctx.charge s.a.call_ctx Phase.Control plat.Platform.app_call_overhead

(* Physical capture of user send data into the protocol stack. The
   in-kernel placement really crosses an address space, so it keeps the
   user->kernel copyin ([Tx_copyin]); a library stack shares the user's
   address space and OCaml strings are immutable, so the payload is
   captured as a zero-copy view and the only body copy left on the send
   path is the frame gather ([Tx_frame]). Virtual time is charged by
   [charge_entry] from the byte count either way — this choice is
   purely physical. *)
let user_payload a data ~off ~len =
  if in_kernel a then begin
    Psd_util.Copies.count Psd_util.Copies.Tx_copyin len;
    Psd_mbuf.Mbuf.of_bytes (Bytes.unsafe_of_string data) ~off ~len
  end
  else Psd_mbuf.Mbuf.of_bytes_view (Bytes.unsafe_of_string data) ~off ~len

(* NEWAPI capture of a caller-owned buffer. A library stack aliases the
   bytes as a shared view — zero copies, which is the whole point; the
   in-kernel placement still crosses an address space, so ownership
   transfer degenerates to the classic copyin (and completion can fire
   as soon as the copy is made). The [Tx_owned] site is counted by the
   caller, once per ownership transfer, not here per chunk. *)
let owned_payload a data ~off ~len =
  if in_kernel a then begin
    Psd_util.Copies.count Psd_util.Copies.Tx_copyin len;
    Psd_mbuf.Mbuf.of_bytes data ~off ~len
  end
  else Psd_mbuf.Mbuf.of_bytes_view data ~off ~len

(* Completion thresholds are cumulative enqueued-byte counts and are
   registered in enqueue order, so the FIFO queue stays sorted. A send
   whose bytes were all acknowledged during its own backpressure waits
   completes immediately. *)
let register_tx_completion s ~threshold k =
  if s.tx_acked_total >= threshold then k ()
  else Queue.push (threshold, k) (txq_of s)

(* Event-driven hangup notification: [k] runs once, when the peer's FIN
   or a connection error arrives — or immediately if it already has.
   The immediate-fire check closes the race where the FIN beat the
   registration; without it a million-connection server would park a
   reader fiber per connection just to learn about the close. *)
let on_hangup s k =
  let hung_up =
    s.conn_err <> None
    || match s.rcv with
       | Some b -> Psd_socket.Sockbuf.eof b || Psd_socket.Sockbuf.error b <> None
       | None -> false
  in
  if hung_up then Psd_sim.Engine.spawn (eng s.a) ~name:"sock-hangup" k
  else s.on_hangup <- Some k

let send s ?dst data =
  let len = String.length data in
  charge_app_overhead s;
  if closed s then Error "bad descriptor"
  else
    match s.loc with
    | Ltcp (pcb, stack) when nonblocking s ->
      charge_entry s.a stack ~len ~copies:true;
      (* non-blocking: write what fits, never wait *)
      let space = snd_hiwat - Psd_tcp.Tcp.sndq_length pcb in
      if s.conn_err <> None then
        Error (Option.value s.conn_err ~default:"error")
      else if space <= 0 then Error ewouldblock
      else begin
        let n = min space len in
        Psd_tcp.Tcp.send pcb (user_payload s.a data ~off:0 ~len:n);
        s.tx_enqueued_total <- s.tx_enqueued_total + n;
        Ok n
      end
    | Ltcp (pcb, stack) ->
      charge_entry s.a stack ~len ~copies:true;
      (* send-buffer backpressure: large writes go in as space opens *)
      let rec push off =
        if off >= len then Ok len
        else begin
          let space =
            Psd_sim.Cond.until (acked_of s) (fun () ->
                if s.conn_err <> None then Some 0
                else
                  let sp = snd_hiwat - Psd_tcp.Tcp.sndq_length pcb in
                  if sp > 0 then Some sp else None)
          in
          if space = 0 then
            Error (Option.value s.conn_err ~default:"error")
          else begin
            let n = min space (len - off) in
            Psd_tcp.Tcp.send pcb (user_payload s.a data ~off ~len:n);
            s.tx_enqueued_total <- s.tx_enqueued_total + n;
            push (off + n)
          end
        end
      in
      push 0
    | Ludp (pcb, stack) -> (
      charge_entry s.a stack ~len ~copies:(in_kernel s.a);
      let pending =
        match Psd_udp.Udp.take_error pcb with
        | Some e -> Some e
        | None ->
          let e = s.soft_err in
          s.soft_err <- None;
          e
      in
      match pending with
      | Some e -> Error e
      | None ->
      match
        Psd_udp.Udp.send pcb
          ?dst:(Option.map (fun (ip, p) -> (ip, p)) dst)
          (user_payload s.a data ~off:0 ~len)
      with
      | Ok () -> Ok len
      | Error `No_destination -> Error "destination required"
      | Error `No_route -> Error "no route to host"
      | Error `Too_big -> Error "message too long")
    | Remote -> (
      (* a data-bearing RPC copies the payload four times in total
         (paper Section 4.3): charge three message-copy passes here, the
         server's socket layer performs the fourth *)
      Psd_util.Copies.count Psd_util.Copies.Tx_rpc ~n:3 (3 * len);
      match
        rpc s ~phase:Phase.Entry_copyin ~req_bytes:((3 * len) + 32)
          (S.R_send { sid = s.sid; data; dst })
      with
      | S.Rs_ok -> Ok len
      | S.Rs_err e -> Error e
      | _ -> Error "protocol error")
    | Fresh | Llisten _ -> Error "not connected"

let recvfrom s ~max =
  charge_app_overhead s;
  if closed s then Error "bad descriptor"
  else if
    nonblocking s
    && (match s.loc with
       | Ltcp _ -> not (sb_readable s.rcv)
       | Ludp _ -> not (dq_readable s.dq)
       | _ -> false)
  then Error ewouldblock
  else
    match s.loc with
    | Ltcp (pcb, stack) -> (
      match Psd_socket.Sockbuf.read (rcv_of s) ~max with
      | Ok m ->
        let len = Psd_mbuf.Mbuf.length m in
        charge_exit s.a stack ~len ~copies:true;
        Psd_tcp.Tcp.user_consumed pcb len;
        notify_status s;
        maybe_deflate_rcv s;
        Psd_util.Copies.count Psd_util.Copies.Rx_copyout len;
        Ok (Psd_mbuf.Mbuf.to_string m, None)
      | Error `Eof -> Ok ("", None)
      | Error (`Error e) -> Error e)
    | Ludp (_, stack) ->
      let (src_ip, src_port), payload = Psd_socket.Dgramq.recv (dq_of s) in
      maybe_deflate_dq s;
      let payload =
        match payload with
        | Cooked str -> str
        | Loaned m ->
          (* classic call on a NEWAPI socket: the copy-out deferred at
             delivery happens here instead (observational shift only) *)
          Psd_util.Copies.count Psd_util.Copies.Rx_copyout
            (Psd_mbuf.Mbuf.length m);
          Psd_mbuf.Mbuf.to_string m
      in
      let payload =
        if String.length payload > max then String.sub payload 0 max
        else payload
      in
      charge_exit s.a stack ~len:(String.length payload) ~copies:true;
      notify_status s;
      Ok (payload, Some (Psd_ip.Addr.of_int src_ip, src_port))
    | Remote -> (
      let resp_size = function
        | S.Rs_recv (Ok (data, _)) -> (3 * String.length data) + 32
        | _ -> 32
      in
      match
        rpc s ~phase:Phase.Copyout_exit ~resp_size
          (S.R_recv { sid = s.sid; max })
      with
      | S.Rs_recv (Ok (data, src)) ->
        Psd_util.Copies.count Psd_util.Copies.Rx_rpc ~n:3
          (3 * String.length data);
        Ok (data, src)
      | S.Rs_recv (Error `Eof) -> Ok ("", None)
      | S.Rs_recv (Error (`Err e)) -> Error e
      | S.Rs_err e -> Error e
      | _ -> Error "protocol error")
    | Fresh | Llisten _ -> Error "not connected"

let recv s ~max =
  match recvfrom s ~max with Ok (d, _) -> Ok d | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* NEWAPI shared-buffer placements                                     *)

(* The paper's NEWAPI rows: receive hands out *loans* of the library's
   buffers (no copy-out — the application reads the packet where the
   delivery channel deposited it) and send aliases *caller-owned*
   buffers (no copy-in — ownership transfers to the stack until the
   completion fires). Both calls charge exactly the classic calls'
   virtual time (under a NEWAPI config the per-byte copy cost is
   already zero); only the physical copies and their accounting
   disappear, so routing a workload through this API never perturbs
   simulated results. *)

type loan = {
  lview : Psd_mbuf.Mbuf.t; (* borrowed view of the receive buffer *)
  llen : int;
  lsrc : S.endpoint option; (* datagram source; [None] for streams *)
  mutable lreturned : bool;
}

let loan_view l = l.lview

let loan_length l = l.llen

let loan_src l = l.lsrc

let recv_loan s ~max =
  charge_app_overhead s;
  if closed s then Error "bad descriptor"
  else if
    nonblocking s
    && (match s.loc with
       | Ltcp _ -> not (sb_readable s.rcv)
       | Ludp _ -> not (dq_readable s.dq)
       | _ -> false)
  then Error ewouldblock
  else
    match s.loc with
    | Ltcp (_, stack) -> (
      match Psd_socket.Sockbuf.read_loan (rcv_of s) ~max with
      | Ok m ->
        let len = Psd_mbuf.Mbuf.length m in
        charge_exit s.a stack ~len ~copies:true;
        (* offload: the bytes became application-visible by NIC DMA into
           loaned memory — the library placements count this deposit at
           their delivery channel (Pktchan); here the ring is the channel *)
        if offloaded s.a then
          Psd_util.Copies.count Psd_util.Copies.Rx_loan len;
        notify_status s;
        Ok { lview = m; llen = len; lsrc = None; lreturned = false }
      | Error `Eof ->
        Ok
          {
            lview = Psd_mbuf.Mbuf.empty ();
            llen = 0;
            lsrc = None;
            lreturned = false;
          }
      | Error (`Error e) -> Error e)
    | Ludp (_, stack) -> (
      let (src_ip, src_port), payload = Psd_socket.Dgramq.recv (dq_of s) in
      maybe_deflate_dq s;
      (* datagram loans keep message boundaries: the whole payload is
         lent regardless of [max] (the classic call would truncate;
         a borrower sees the datagram exactly as delivered) *)
      let m =
        match payload with
        | Loaned m -> m
        | Cooked str ->
          (* classic delivery already cooked a private string (the
             socket predates the NEWAPI config, or mixed use): loan a
             view of it — already application-visible, nothing moves *)
          Psd_mbuf.Mbuf.of_bytes_view
            (Bytes.unsafe_of_string str)
            ~off:0 ~len:(String.length str)
      in
      let len = Psd_mbuf.Mbuf.length m in
      charge_exit s.a stack ~len ~copies:true;
      if offloaded s.a then
        Psd_util.Copies.count Psd_util.Copies.Rx_loan len;
      notify_status s;
      Ok
        {
          lview = m;
          llen = len;
          lsrc = Some (Psd_ip.Addr.of_int src_ip, src_port);
          lreturned = false;
        })
    | Remote -> Error "NEWAPI loans require a local protocol stack"
    | Fresh | Llisten _ -> Error "not connected"

(* Deterministic reclamation: buffer space (and, for TCP, the window
   the loaned bytes held open) is released exactly here — never by GC,
   never early. *)
let return_loan s l =
  if l.lreturned then invalid_arg "Sockets.return_loan: already returned";
  l.lreturned <- true;
  match s.loc with
  | Ltcp (pcb, _) ->
    (* a live loan keeps the sockbuf inflated, so it is present unless
       this is a zero-length EOF loan with nothing left to release *)
    (match s.rcv with
    | Some b -> Psd_socket.Sockbuf.loan_return b l.llen
    | None -> if l.llen > 0 then invalid_arg "Sockets.return_loan: not loaned");
    if l.llen > 0 then Psd_tcp.Tcp.user_consumed pcb l.llen;
    notify_status s;
    maybe_deflate_rcv s
  | Ludp _ | Remote | Fresh | Llisten _ ->
    (* datagram queue space was released at dequeue; the loan only
       pins the payload view, which the borrower is now done with *)
    ()

let send_owned s ?dst data ~completion =
  let len = Bytes.length data in
  charge_app_overhead s;
  if closed s then Error "bad descriptor"
  else
    match s.loc with
    | Ltcp (pcb, stack) when nonblocking s ->
      charge_entry s.a stack ~len ~copies:true;
      let space = snd_hiwat - Psd_tcp.Tcp.sndq_length pcb in
      if s.conn_err <> None then
        Error (Option.value s.conn_err ~default:"error")
      else if space <= 0 then Error ewouldblock
      else begin
        let n = min space len in
        if not (in_kernel s.a) then
          Psd_util.Copies.count Psd_util.Copies.Tx_owned n;
        Psd_tcp.Tcp.send pcb (owned_payload s.a data ~off:0 ~len:n);
        s.tx_enqueued_total <- s.tx_enqueued_total + n;
        register_tx_completion s ~threshold:s.tx_enqueued_total completion;
        Ok n
      end
    | Ltcp (pcb, stack) ->
      charge_entry s.a stack ~len ~copies:true;
      if not (in_kernel s.a) then
        Psd_util.Copies.count Psd_util.Copies.Tx_owned len;
      let rec push off =
        if off >= len then begin
          register_tx_completion s ~threshold:s.tx_enqueued_total
            completion;
          Ok len
        end
        else begin
          let space =
            Psd_sim.Cond.until (acked_of s) (fun () ->
                if s.conn_err <> None then Some 0
                else
                  let sp = snd_hiwat - Psd_tcp.Tcp.sndq_length pcb in
                  if sp > 0 then Some sp else None)
          in
          if space = 0 then
            Error (Option.value s.conn_err ~default:"error")
          else begin
            let n = min space (len - off) in
            Psd_tcp.Tcp.send pcb (owned_payload s.a data ~off ~len:n);
            s.tx_enqueued_total <- s.tx_enqueued_total + n;
            push (off + n)
          end
        end
      in
      push 0
    | Ludp (pcb, stack) -> (
      charge_entry s.a stack ~len ~copies:(in_kernel s.a);
      if not (in_kernel s.a) then
        Psd_util.Copies.count Psd_util.Copies.Tx_owned len;
      let pending =
        match Psd_udp.Udp.take_error pcb with
        | Some e -> Some e
        | None ->
          let e = s.soft_err in
          s.soft_err <- None;
          e
      in
      match pending with
      | Some e -> Error e
      | None -> (
        match
          Psd_udp.Udp.send pcb
            ?dst:(Option.map (fun (ip, p) -> (ip, p)) dst)
            (owned_payload s.a data ~off:0 ~len)
        with
        | Ok () ->
          (* the frame gather has already copied the bytes onto the
             wire: ownership returns before the call does *)
          completion ();
          Ok len
        | Error `No_destination -> Error "destination required"
        | Error `No_route -> Error "no route to host"
        | Error `Too_big -> Error "message too long"))
    | Remote -> Error "NEWAPI ownership transfer requires a local stack"
    | Fresh | Llisten _ -> Error "not connected"

(* ------------------------------------------------------------------ *)
(* select                                                              *)

let select ?timeout_ns socks =
  match socks with
  | [] -> []
  | first :: _ ->
    let a = first.a in
    let locally_ready () =
      match List.filter readable socks with [] -> None | rs -> Some rs
    in
    if local_stack a then begin
      charge_trap a;
      match timeout_ns with
      | None -> Psd_sim.Cond.until a.local_cond locally_ready
      | Some dt -> (
        match Psd_sim.Cond.until_timeout a.local_cond dt locally_ready with
        | Some rs -> rs
        | None -> [])
    end
    else begin
      match locally_ready () with
      | Some rs -> rs (* no operating-system involvement needed *)
      | None -> (
        (* register interest and report current status, then call
           through to the server's select *)
        List.iter
          (fun s ->
            set_sflag s f_selected true;
            (* sync the server's view before blocking there *)
            notify_status s)
          socks;
        let sids = List.map (fun s -> s.sid) socks in
        let resp =
          rpc first
            (S.R_select
               {
                 app = Option.value a.server_app_id ~default:0;
                 sids;
                 timeout_ns;
               })
        in
        List.iter (fun s -> set_sflag s f_selected false) socks;
        match resp with
        | S.Rs_select ready_sids ->
          List.filter
            (fun s -> readable s || List.mem s.sid ready_sids)
            socks
        | _ -> [])
    end

(* ------------------------------------------------------------------ *)
(* teardown, fork, exit                                                *)

let close s =
  if not (closed s) then begin
    set_sflag s f_closed true;
    (* outstanding owned buffers come home: a completion that survived
       the socket would strand the caller's memory forever *)
    fire_all_tx_completions s;
    let a = s.a in
    a.dead_socks <- a.dead_socks + 1;
    if a.dead_socks > 16 && 2 * a.dead_socks >= a.n_socks then begin
      a.sockets <- List.filter (fun s' -> not (closed s')) a.sockets;
      a.n_socks <- List.length a.sockets;
      a.dead_socks <- 0
    end;
    if local_stack s.a then begin
      charge_trap s.a;
      (match s.loc with
      | Ltcp (pcb, _) -> Psd_tcp.Tcp.shutdown_send pcb
      | Ludp (pcb, stack) -> Psd_udp.Udp.close (Netstack.udp stack) pcb
      | Llisten (l, stack) ->
        Psd_tcp.Tcp.close_listener (Netstack.tcp stack) l
      | Remote | Fresh -> ());
      match s.loc with
      | (Ltcp _ | Llisten _) when s.local_port >= 0 ->
        Portalloc.release (kernel_ports s.a S.Stream) s.local_port
      | Ludp _ when s.local_port >= 0 ->
        Portalloc.release (kernel_ports s.a S.Dgram) s.local_port
      | _ -> ()
    end
    else begin
      let tcb =
        match s.loc with
        | Ltcp (pcb, stack) when Psd_tcp.Tcp.state pcb <> Psd_tcp.Tcp.Closed
          ->
          (* graceful shutdown runs in the operating-system server *)
          let snap = Psd_tcp.Tcp.export pcb in
          if s.rem_port >= 0 then
            Psd_tcp.Tcp.mute (Netstack.tcp stack)
              ~local_port:(Psd_tcp.Tcp.snapshot_local_port snap)
              ~remote:(s.rem_ip, s.rem_port)
              ~duration_ns:(Psd_sim.Time.sec 1);
          Some snap
        | _ -> None
      in
      (match s.loc with
      | Ludp (pcb, stack) -> Psd_udp.Udp.close (Netstack.udp stack) pcb
      | _ -> ());
      match rpc s (S.R_close { sid = s.sid; tcb }) with _ -> ()
    end
  end

let fork a ~name =
  let forker =
    match a.forker with
    | Some f -> f
    | None -> invalid_arg "Sockets.fork: no forker installed"
  in
  (* Per the paper: sessions must be returned to the operating system
     before fork so parent and child share them there. *)
  if not (local_stack a) then
    List.iter
      (fun s ->
        if closed s then ()
        else
          match s.loc with
          | Ltcp (pcb, stack)
            when Psd_tcp.Tcp.state pcb <> Psd_tcp.Tcp.Closed
          ->
          let snap = Psd_tcp.Tcp.export pcb in
          if s.rem_port >= 0 then
            Psd_tcp.Tcp.mute (Netstack.tcp stack)
              ~local_port:(Psd_tcp.Tcp.snapshot_local_port snap)
              ~remote:(s.rem_ip, s.rem_port)
              ~duration_ns:(Psd_sim.Time.sec 1);
          (match rpc s (S.R_return { sid = s.sid; tcb = Some snap }) with
          | _ -> ());
          s.loc <- Remote
        | Ltcp (_, _) -> s.loc <- Remote
        | Ludp (pcb, stack) ->
          Psd_udp.Udp.close (Netstack.udp stack) pcb;
          (match rpc s (S.R_return { sid = s.sid; tcb = None }) with
          | _ -> ());
          s.loc <- Remote
        | _ -> ())
      a.sockets;
  let child = forker ~name in
  (* duplicate descriptors: both refer to the same (server) sessions,
     which stay alive until the last reference closes *)
  List.iter
    (fun s ->
      if not (closed s) then begin
        let dup = make_socket child s.knd s.sid in
        dup.loc <- s.loc;
        dup.local_ip <- s.local_ip;
        dup.local_port <- s.local_port;
        dup.rem_ip <- s.rem_ip;
        dup.rem_port <- s.rem_port;
        set_sflag dup f_conn_ok (conn_ok s);
        if (not (local_stack a)) && s.sid >= 0 then
          match rpc s (S.R_dup { sid = s.sid }) with _ -> ()
      end)
    (List.rev a.sockets);
  child

let exit a =
  (* abort library-resident connections: RSTs go to the peers *)
  List.iter
    (fun s ->
      if closed s then ()
      else
        match s.loc with
        | Ltcp (pcb, _) -> Psd_tcp.Tcp.abort pcb
        | Ludp (pcb, stack) -> Psd_udp.Udp.close (Netstack.udp stack) pcb
        | _ -> ())
    a.sockets;
  a.sockets <- [];
  a.n_socks <- 0;
  a.dead_socks <- 0;
  Psd_mach.Task.exit a.task

(* ------------------------------------------------------------------ *)
(* wiring                                                              *)

let make_app ~host ~config ~task ~stack ~call_ctx ~server ~server_app_id
    ~kernel_stack ~kernel_tcp_ports ~kernel_udp_ports =
  {
    host;
    config;
    task;
    stack;
    call_ctx;
    server;
    server_app_id;
    kernel_stack;
    kernel_tcp_ports;
    kernel_udp_ports;
    local_cond = Psd_sim.Cond.create (Psd_mach.Host.eng host);
    sockets = [];
    n_socks = 0;
    dead_socks = 0;
    forker = None;
    next_local_sid = -1;
    stream_h = [];
  }

let set_forker a f = a.forker <- Some f

let set_nonblocking s v = set_sflag s f_nonblocking v

let shutdown s =
  match s.loc with
  | Ltcp (pcb, _) ->
    if local_stack s.a then charge_trap s.a;
    Psd_tcp.Tcp.shutdown_send pcb;
    Ok ()
  | Remote -> (
    match rpc s (S.R_shutdown { sid = s.sid }) with
    | S.Rs_ok -> Ok ()
    | S.Rs_err e -> Error e
    | _ -> Error "protocol error")
  | _ -> Error "not connected"

let fork_inherited a =
  List.rev (List.filter (fun s -> not (closed s)) a.sockets)

let deliver_soft_error a sid msg =
  List.iter
    (fun s -> if s.sid = sid && not (closed s) then s.soft_err <- Some msg)
    a.sockets
