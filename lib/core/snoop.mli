(** A wire tap: a promiscuous NIC that decodes every frame on the
    segment, tcpdump-style.

    Used for diagnostics and in examples/tests — notably to demonstrate
    the security observation of paper Section 3.4: network security is
    fragile against physically vulnerable connections, which is why
    session-level encryption (see {!Secure}) belongs above the transport
    rather than in the packet machinery. *)

type record = {
  at_ns : int;
  line : string;  (** one-line decoded rendering *)
  frame : Bytes.t;
}

type t

val attach : Psd_sim.Engine.t -> Psd_link.Segment.t -> t
(** Attach a promiscuous observer to the segment. It charges no CPU —
    the tap is an instrument, not a simulated host. *)

val records : t -> record list
(** Everything captured so far, oldest first. *)

val count : t -> int

val clear : t -> unit

val payload_seen : t -> string -> bool
(** Does any captured frame contain this byte string? (The
    "could an eavesdropper read it" test.) *)

val decode_frame : Bytes.t -> string
(** Render one frame: MACs, protocol, addresses/ports, flags, length. *)

val pp_trace : Format.formatter -> t -> unit
