(** The application programming interface: BSD sockets, implemented by
    the proxy/library decomposition.

    An {!app} is one application address space. Its socket calls are
    dispatched by configuration:

    - {e In-kernel}: every call traps into the kernel stack.
    - {e Server}: every call is an RPC to the operating-system server.
    - {e Library} (the paper's architecture): [socket]/[bind]/[connect]/
      [listen]/[accept]/[close]/[select]/[fork] go through the proxy to
      the server, which establishes sessions and {e migrates} them into
      the application's protocol library; [send]/[recv] then run
      entirely at user level against the migrated session. After
      {!fork}, sessions have been returned to the server and data
      operations are routed there — exactly the fallback the paper
      describes.

    All calls that may block must run in a simulation fiber. The API is
    syntactically close to the BSD one on purpose (source-level
    compatibility, paper Section 2.1). *)

type app
type t
(** A socket descriptor. *)

(** How an open socket currently reaches its session — observable for
    tests and experiments. *)
type location =
  | Loc_library  (** session migrated into this application *)
  | Loc_server  (** session resident in the operating-system server *)
  | Loc_kernel  (** in-kernel configuration *)
  | Loc_none  (** not yet bound/connected *)

(* --- application lifecycle -------------------------------------------- *)

val task : app -> Psd_mach.Task.t

val app_stack : app -> Netstack.t option
(** The application's protocol library stack (Library placement only). *)

val fork : app -> name:string -> app
(** The BSD [fork] protocol: every library-resident session is returned
    to the operating-system server first (paper Table 1, [proxy_return]),
    then the task forks. Parent and child descriptors afterwards share
    the server-resident sessions. *)

val exit : app -> unit
(** Task death: library-resident connections are aborted (RST to peers)
    and the server cleans up naming state. *)

(* --- the socket calls --------------------------------------------------- *)

val stream : app -> t
(** [socket(AF_INET, SOCK_STREAM, 0)]. Raises [Failure] on a server
    error, preserving the server's error text; use {!try_stream} for
    the [result] form. *)

val dgram : app -> t
(** [socket(AF_INET, SOCK_DGRAM, 0)]. Raises [Failure] on a server
    error; use {!try_dgram} for the [result] form. *)

val try_stream : app -> (t, string) result
(** Like {!stream}, but a failed creation returns the operating-system
    server's error as [Error] instead of raising — the typed-error form
    of the call, matching {!send}/{!recv}. *)

val try_dgram : app -> (t, string) result
(** [result]-returning {!dgram}. *)

val bind : t -> ?port:int -> unit -> (int, string) result
(** Returns the bound port (ephemeral when [port] is omitted). *)

val connect : t -> Psd_ip.Addr.t -> int -> (unit, string) result
(** Blocking active open. *)

val listen : t -> ?backlog:int -> unit -> (unit, string) result

val accept : t -> (t, string) result
(** Blocking; returns the connected socket. *)

val send : t -> ?dst:Session.endpoint -> string -> (int, string) result
(** Blocking send ([write]/[sendto]); applies send-buffer backpressure
    for streams. Returns the byte count written. *)

val recv : t -> max:int -> (string, string) result
(** Blocking receive; [""] means EOF on a stream. *)

val recvfrom :
  t -> max:int -> (string * Session.endpoint option, string) result
(** Like {!recv} but also reports the datagram source. *)

(* --- NEWAPI shared-buffer calls (paper's NEWAPI rows) ------------------- *)

type loan
(** A borrowed view of receive-buffer memory, handed out by
    {!recv_loan}. The application reads the packet body where the
    delivery channel deposited it — no copy-out — and must give the
    memory back with {!return_loan}, which is when buffer space (and
    the TCP receive window the bytes held open) is reclaimed. The view
    must not be used after return. *)

val loan_view : loan -> Psd_mbuf.Mbuf.t
(** The loaned bytes (empty at stream EOF). *)

val loan_length : loan -> int

val loan_src : loan -> Session.endpoint option
(** Datagram source; [None] for streams. *)

val recv_loan : t -> max:int -> (loan, string) result
(** NEWAPI receive: blocking like {!recv}, but the data is lent, not
    copied out. A zero-length loan means EOF on a stream. Datagram
    loans preserve message boundaries and ignore [max] (the whole
    datagram is lent). Charges exactly {!recv}'s virtual time; only
    the physical copy disappears. Requires a local (kernel or library)
    session — server-resident sockets cannot share buffers. *)

val return_loan : t -> loan -> unit
(** Give the loaned memory back. Deterministic reclamation point:
    sockbuf space frees and the TCP window reopens here, never earlier
    and never by GC. Raises [Invalid_argument] on double return. *)

val send_owned :
  t ->
  ?dst:Session.endpoint ->
  Bytes.t ->
  completion:(unit -> unit) ->
  (int, string) result
(** NEWAPI send: the caller's buffer is aliased into the stack as a
    shared view — no copy-in — and ownership transfers to the stack
    until [completion] fires. For streams that is when every byte of
    this send has been acknowledged (completions also fire on error
    and at {!close}, so the buffer always comes home); for datagrams
    the frame gather copies the bytes before the call returns, so
    [completion] fires synchronously. The buffer must not be written
    until then. Blocking/backpressure behaviour, partial non-blocking
    writes, and virtual-time charges are exactly {!send}'s. *)

val select : ?timeout_ns:int -> t list -> t list
(** Readability select over sockets of one application. Implemented
    cooperatively: locally-ready sockets return without contacting the
    server; otherwise the proxy registers interest, calls through to the
    server, and application-level protocol libraries notify the server
    of readiness changes ([proxy_status], paper Section 3.2). *)

val close : t -> unit
(** For library-resident streams, the session (and its shutdown
    handshake, TIME_WAIT included) migrates back to the server. *)

val on_hangup : t -> (unit -> unit) -> unit
(** [on_hangup s k] runs [k] once when the peer closes its send side
    (FIN) or the connection errors — immediately if it already has.
    Event-driven alternative to blocking in {!recv} for the close: a
    server holding a million idle connections registers a hangup hook
    and exits its per-connection fiber, instead of keeping a blocked
    reader (and the receive buffer it pins) alive per connection.
    At most one hook per socket; a second registration replaces the
    first. Local (kernel or library) stream sessions only. *)

val set_nodelay : t -> bool -> unit

val set_nonblocking : t -> bool -> unit
(** In non-blocking mode, {!recv}/{!recvfrom} with nothing buffered,
    {!send} with a full send buffer, and {!accept} with an empty queue
    return [Error "operation would block"]; stream sends may write
    partially. Pair with {!select}, as BSD programs do. *)

val shutdown : t -> (unit, string) result
(** [shutdown(fd, SHUT_WR)]: close the send side (FIN after pending
    data); the socket remains readable until the peer closes. *)

(* --- introspection ------------------------------------------------------ *)

val location : t -> location
val local_endpoint : t -> Session.endpoint option
val remote_endpoint : t -> Session.endpoint option
val kind : t -> Session.kind
val readable : t -> bool

(* --- wiring (used by System) -------------------------------------------- *)

val make_app :
  host:Psd_mach.Host.t ->
  config:Psd_cost.Config.t ->
  task:Psd_mach.Task.t ->
  stack:Netstack.t option ->
  call_ctx:Psd_cost.Ctx.t ->
  server:(Session.req, Session.resp) Psd_mach.Ipc.port option ->
  server_app_id:int option ->
  kernel_stack:Netstack.t option ->
  kernel_tcp_ports:Portalloc.t option ->
  kernel_udp_ports:Portalloc.t option ->
  app
(** Assembled by {!System.app}; not meant for direct use. *)

val deliver_soft_error : app -> Session.sid -> string -> unit
(** Used by the System wiring: the operating-system server pushes ICMP
    soft errors (port unreachable) into the owning application; the next
    data operation on the affected socket fails with it. *)

val fork_inherited : app -> t list
(** The descriptors an application holds (for a forked child: the
    duplicates inherited from its parent), oldest first. *)

val set_forker : app -> (name:string -> app) -> unit
(** Install the factory used by {!fork} to create the child application
    (assembled by {!System}). *)
