(** One complete protocol endpoint: Ethernet glue + ARP access + IP +
    TCP + UDP, executing in a given cost context.

    Exactly the same stack runs in three places — the kernel, the UX
    server task, or an application's protocol library; only the
    {!Psd_cost.Ctx.t}, the input path, and the ARP mode differ. This
    "one stack, three placements" property is the paper's reuse goal
    (Section 2.1). *)

type arp_mode =
  | Arp_authoritative
      (** owns the host's ARP resolver and answers queries on the wire
          (kernel and server stacks) *)
  | Arp_cached of (Psd_ip.Addr.t -> Psd_link.Macaddr.t option)
      (** consults a local cache, falling back to the supplied miss
          function (an RPC to the operating-system server); never sees
          ARP frames itself (library stacks) *)

type input_kind =
  | Netisr_queue
      (** kernel stack: frames arrive on the netisr queue with no
          delivery cost beyond the interrupt path *)
  | Chan of Psd_mach.Pktchan.t
      (** user-level stack: frames arrive through a kernel delivery
          channel *)

type t

val create :
  ctx:Psd_cost.Ctx.t ->
  netdev:Psd_mach.Netdev.t ->
  addr:Psd_ip.Addr.t ->
  routes:Psd_ip.Route.t ->
  arp:arp_mode ->
  arp_cache:Psd_arp.Cache.t ->
  input:input_kind ->
  ?rcv_buf:int ->
  ?delack_ns:int ->
  unit ->
  t
(** Builds the stack and spawns its input fiber. [routes] and
    [arp_cache] are supplied by the caller so that cached copies can be
    wired to the server's master tables (metastate, paper Section 3.3). *)

val ctx : t -> Psd_cost.Ctx.t
val ip : t -> Psd_ip.Ip.t
val tcp : t -> Psd_tcp.Tcp.t
val udp : t -> Psd_udp.Udp.t
val addr : t -> Psd_ip.Addr.t
val netdev : t -> Psd_mach.Netdev.t

val sink : t -> Bytes.t -> unit
(** Where the packet filter should deliver this stack's frames. *)

val arp_resolver : t -> Psd_arp.Resolver.t option
(** The resolver, for authoritative stacks. *)

val icmp : t -> Psd_ip.Icmp.t option
(** The ICMP engine — present on authoritative (kernel/server) stacks,
    which handle the host's exceptional packets. *)

val frames_in : t -> int
