(** Assembles a simulated host in any of the paper's configurations.

    A [System.t] is one machine on the Ethernet segment: its kernel
    (network device, packet filter), and — depending on the
    configuration — an in-kernel protocol stack, or an operating-system
    server whose sessions either stay put (Server placement) or migrate
    into application protocol libraries (Library placement, the paper's
    architecture, with the IPC / SHM / SHM-IPF delivery variants). *)

type t

val create :
  eng:Psd_sim.Engine.t ->
  segment:Psd_link.Segment.t ->
  ?shard:int ->
  config:Psd_cost.Config.t ->
  ?plat:Psd_cost.Platform.t ->
  ?rcv_buf:int ->
  ?delack_ns:int ->
  ?fault:Psd_link.Fault.policy ->
  addr:string ->
  name:string ->
  unit ->
  t
(** [plat] defaults to the DECstation 5000/200 (adjusted by the
    configuration's OS profile). A direct route for the address's /24 is
    installed.

    [shard] (default 0) places the host's NIC on that shard of a duplex
    segment for domain-parallel runs; [eng] must then be that shard's
    engine (see {!Psd_sim.Shard}).

    [fault] subjects every frame this host receives to a deterministic
    fault process (see {!Psd_link.Fault}); its RNG is split off the
    engine's, so one simulation seed fixes the complete fault schedule.
    Omitting it — or passing a null policy — leaves the receive path
    bit-identical to a host built without the argument. *)

val app : t -> name:string -> Sockets.app
(** Create an application process on this host. In the Library placement
    this builds the application's protocol library: its own stack, its
    kernel delivery channel, and its metastate caches, and registers its
    packet sink with the operating-system server. *)

val add_route : t -> net:string -> mask:string -> gateway:string -> unit
(** Install a gateway route in the host's (master) routing table — for
    topologies with a {!Router} between segments. Library-placement
    application stacks read the same table (cached metastate). *)

val host : t -> Psd_mach.Host.t
val config : t -> Psd_cost.Config.t
val addr : t -> Psd_ip.Addr.t
val netdev : t -> Psd_mach.Netdev.t
val server : t -> Os_server.t option
val kernel_stack : t -> Netstack.t option

val nic_pipe : t -> Psd_mach.Nicpipe.t option
(** The NIC pipeline model, present exactly under the Offload placement
    (pipeline occupancy/stall counters for the offload benchmark). *)

val stacks_tcp_stats : t -> Psd_tcp.Tcp.stats list
(** TCP statistics of every stack on the host (kernel or server plus any
    application libraries), for experiment reporting. *)

val stacks_ip_stats : t -> Psd_ip.Ip.stats list
(** IP statistics of every stack on the host, same order as
    {!stacks_tcp_stats}. *)

val reass_timed_out : t -> int
(** IP reassembly timeouts summed over every stack on the host. *)

val fault_stats : t -> Psd_link.Fault.stats option
(** Counters of the host's fault process, when [create] installed one. *)

val set_breakdown : t -> Psd_cost.Breakdown.t option -> unit
(** Attach a latency-breakdown accumulator to every context on this host
    (kernel machinery and all protocol stacks) — the Table 4 probe. *)

val set_tcp_predict : t -> bool -> unit
(** Enable/disable the TCP header-prediction fast path on every stack of
    this host (see {!Psd_tcp.Tcp.set_predict}; observational only). *)
