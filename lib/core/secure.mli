(** Session-level encryption over a stream socket.

    Paper Section 3.4: "Application-level protocols can be used with
    session-level encryption software, provided that session keys are
    confined to the application's address space." That is precisely what
    this module demonstrates: keys live in the application, the protocol
    library below sees only ciphertext, and the operating-system server
    is never involved on the data path.

    The cipher is a toy (a splitmix64 keystream XOR with a per-record
    integrity tag) — the point is the architecture, not the
    cryptography; do not reuse it for anything real. Records are
    length-prefixed on the wire. *)

type t

val client :
  Sockets.t -> psk:string -> (t, string) result
(** Run the initiator side of the nonce-exchange handshake on a
    connected stream socket. Both sides must share [psk]. *)

val server : Sockets.t -> psk:string -> (t, string) result

val send : t -> string -> (unit, string) result
(** Encrypt and send one record. *)

val recv : t -> (string, string) result
(** Receive and decrypt one record; [""] on clean EOF. A record that
    fails its integrity check (wrong key, corruption) is an error. *)

val close : t -> unit

val socket : t -> Sockets.t
