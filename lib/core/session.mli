(** Shared vocabulary of the proxy ↔ operating-system-server protocol:
    session identifiers and the request/response messages behind each
    Table 1 call. *)

type sid = int

type kind = Stream | Dgram

val pp_kind : Format.formatter -> kind -> unit

type endpoint = Psd_ip.Addr.t * int

(** Requests the proxy sends to the server (the [proxy_*] column of the
    paper's Table 1, plus the data operations used while a session is
    server-resident, the cooperative-select calls, and metastate reads). *)
type req =
  | R_socket of { kind : kind; app : int }
  | R_bind of { sid : sid; port : int option }
  | R_connect of { sid : sid; dst : endpoint }
  | R_listen of { sid : sid; backlog : int }
  | R_accept of { sid : sid }
  | R_return of { sid : sid; tcb : Psd_tcp.Tcp.snapshot option }
      (** migrate a session back before [fork] *)
  | R_close of { sid : sid; tcb : Psd_tcp.Tcp.snapshot option }
  | R_status of { sid : sid; readable : bool }
      (** cooperative select: the application reports a readiness change *)
  | R_select of { app : int; sids : sid list; timeout_ns : int option }
  | R_arp of Psd_ip.Addr.t
  | R_send of { sid : sid; data : string; dst : endpoint option }
  | R_recv of { sid : sid; max : int }
  | R_shutdown of { sid : sid }
      (** half-close: stop sending, keep receiving *)
  | R_dup of { sid : sid }
      (** fork duplicated a descriptor: one more reference holds the
          session open *)
  | R_task_exited of { app : int }

type migrated = {
  m_local : endpoint;
  m_remote : endpoint option;
  m_tcb : Psd_tcp.Tcp.snapshot option;
      (** [None] for UDP — datagram sessions have no protocol state to
          move (paper Section 3.1) *)
}

type resp =
  | Rs_ok
  | Rs_err of string
  | Rs_socket of sid
  | Rs_bound of migrated
      (** session bound; for UDP under library placement this is the
          moment the session migrates to the application *)
  | Rs_connected of migrated
  | Rs_accepted of sid * migrated
  | Rs_select of sid list  (** sessions now readable ([] = timeout) *)
  | Rs_arp of Psd_link.Macaddr.t option
  | Rs_recv of (string * endpoint option, [ `Eof | `Err of string ]) result
