type t = {
  sock : Sockets.t;
  tx : Psd_util.Rng.t;
  rx : Psd_util.Rng.t;
  tx_tag : Psd_util.Rng.t;
  rx_tag : Psd_util.Rng.t;
}

(* FNV-1a over a string: key material derivation (toy). *)
let fnv s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h

let derive ~psk ~nc ~ns label = fnv (psk ^ nc ^ ns ^ label)

let xor_stream rng data =
  let b = Bytes.of_string data in
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i
      (Char.chr
         (Char.code (Bytes.get b i)
         lxor (Int64.to_int (Psd_util.Rng.next rng) land 0xff)))
  done;
  Bytes.unsafe_to_string b

let tag_of rng data =
  (* one keystream step mixed with a digest of the plaintext *)
  let k = Int64.to_int (Psd_util.Rng.next rng) land 0x3fffffff in
  (k + (fnv data land 0x3fffffff)) land 0x3fffffff

(* --- socket record helpers ------------------------------------------- *)

let send_all sock data =
  match Sockets.send sock data with
  | Ok _ -> Ok ()
  | Error e -> Error e

let recv_exact sock n =
  let buf = Buffer.create n in
  let rec go () =
    if Buffer.length buf >= n then Ok (Buffer.contents buf)
    else
      match Sockets.recv sock ~max:(n - Buffer.length buf) with
      | Ok "" -> Error `Eof
      | Ok d ->
        Buffer.add_string buf d;
        go ()
      | Error e -> Error (`Err e)
  in
  go ()

let u32_be v =
  let b = Bytes.create 4 in
  Psd_util.Codec.set_u32i b 0 v;
  Bytes.unsafe_to_string b

(* --- handshake --------------------------------------------------------- *)

let nonce sock =
  (* derive a nonce from the socket's endpoints and a per-call counter;
     the simulation's determinism is preserved *)
  let base =
    match (Sockets.local_endpoint sock, Sockets.remote_endpoint sock) with
    | Some (a, ap), Some (b, bp) ->
      Printf.sprintf "%d:%d:%d:%d" (Psd_ip.Addr.to_int a) ap
        (Psd_ip.Addr.to_int b) bp
    | _ -> "anon"
  in
  Printf.sprintf "%016x" (fnv base)

let make ~sock ~psk ~nc ~ns ~initiator =
  let dir_tx = if initiator then "c2s" else "s2c" in
  let dir_rx = if initiator then "s2c" else "c2s" in
  {
    sock;
    tx = Psd_util.Rng.create ~seed:(derive ~psk ~nc ~ns dir_tx);
    rx = Psd_util.Rng.create ~seed:(derive ~psk ~nc ~ns dir_rx);
    tx_tag = Psd_util.Rng.create ~seed:(derive ~psk ~nc ~ns (dir_tx ^ "tag"));
    rx_tag = Psd_util.Rng.create ~seed:(derive ~psk ~nc ~ns (dir_rx ^ "tag"));
  }

let client sock ~psk =
  let nc = nonce sock in
  match send_all sock nc with
  | Error e -> Error e
  | Ok () -> (
    match recv_exact sock 16 with
    | Ok ns -> Ok (make ~sock ~psk ~nc ~ns ~initiator:true)
    | Error `Eof -> Error "peer closed during handshake"
    | Error (`Err e) -> Error e)

let server sock ~psk =
  match recv_exact sock 16 with
  | Error `Eof -> Error "peer closed during handshake"
  | Error (`Err e) -> Error e
  | Ok nc -> (
    let ns = nonce sock in
    match send_all sock ns with
    | Error e -> Error e
    | Ok () -> Ok (make ~sock ~psk ~nc ~ns ~initiator:false))

(* --- records ------------------------------------------------------------ *)

let send t plaintext =
  let ct = xor_stream t.tx plaintext in
  let tag = tag_of t.tx_tag plaintext in
  let header = u32_be (String.length ct) ^ u32_be tag in
  match send_all t.sock (header ^ ct) with
  | Ok () -> Ok ()
  | Error e -> Error e

let recv t =
  match recv_exact t.sock 8 with
  | Error `Eof -> Ok "" (* clean end of stream *)
  | Error (`Err e) -> Error e
  | Ok header -> (
    let b = Bytes.of_string header in
    let len = Psd_util.Codec.get_u32i b 0 in
    let tag = Psd_util.Codec.get_u32i b 4 in
    if len > 16 * 1024 * 1024 then Error "record too large (bad key?)"
    else
      match recv_exact t.sock len with
      | Error `Eof -> Error "truncated record"
      | Error (`Err e) -> Error e
      | Ok ct ->
        let plaintext = xor_stream t.rx ct in
        if tag_of t.rx_tag plaintext <> tag then
          Error "integrity check failed (wrong key or corruption)"
        else Ok plaintext)

let close t = Sockets.close t.sock

let socket t = t.sock
