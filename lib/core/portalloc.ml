type t = {
  used : (int, unit) Hashtbl.t;
  ephemeral_base : int;
  (* Watermark cursor: ports in [ephemeral_base, next) have been handed
     out (or skipped over a reservation) at least once; ports >= next
     are virgin. Fresh allocation bumps the watermark — identical to
     the old linear scan's pre-wraparound behavior, but with no rescans
     of the in-use prefix. *)
  mutable next : int;
  (* Released ephemeral ports below the watermark, recycled FIFO once
     the virgin space is exhausted (where the old scan would wrap).
     Entries may be stale (re-reserved since release); [alloc] skips
     and discards those, and [release] re-enqueues, so each port has at
     most one *valid* entry at a time. *)
  free : int Queue.t;
}

let max_port = 65535

let create ?(ephemeral_base = 1024) () =
  {
    used = Hashtbl.create 32;
    ephemeral_base;
    next = ephemeral_base;
    free = Queue.create ();
  }

let in_use t port = Hashtbl.mem t.used port

let reserve t port =
  if port <= 0 || port > max_port then Error `In_use
  else if in_use t port then Error `In_use
  else begin
    Hashtbl.replace t.used port ();
    Ok ()
  end

let alloc_ephemeral t =
  let rec fresh () =
    if t.next > max_port then recycle ()
    else begin
      let p = t.next in
      t.next <- p + 1;
      if in_use t p then fresh ()
      else begin
        Hashtbl.replace t.used p ();
        p
      end
    end
  and recycle () =
    match Queue.take_opt t.free with
    | None -> failwith "Portalloc: namespace exhausted"
    | Some p ->
      if in_use t p then recycle ()
      else begin
        Hashtbl.replace t.used p ();
        p
      end
  in
  fresh ()

let release t port =
  if Hashtbl.mem t.used port then begin
    Hashtbl.remove t.used port;
    if port >= t.ephemeral_base && port < t.next then Queue.add port t.free
  end

let count t = Hashtbl.length t.used
