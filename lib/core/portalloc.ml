type t = {
  used : (int, unit) Hashtbl.t;
  ephemeral_base : int;
  mutable next : int;
}

let max_port = 65535

let create ?(ephemeral_base = 1024) () =
  { used = Hashtbl.create 32; ephemeral_base; next = ephemeral_base }

let in_use t port = Hashtbl.mem t.used port

let reserve t port =
  if port <= 0 || port > max_port then Error `In_use
  else if in_use t port then Error `In_use
  else begin
    Hashtbl.replace t.used port ();
    Ok ()
  end

let alloc_ephemeral t =
  let start = t.next in
  let rec scan p ~wrapped =
    if p > max_port then
      if wrapped then failwith "Portalloc: namespace exhausted"
      else scan t.ephemeral_base ~wrapped:true
    else if (not (in_use t p)) && (not wrapped || p < start) then begin
      Hashtbl.replace t.used p ();
      t.next <- (if p >= max_port then t.ephemeral_base else p + 1);
      p
    end
    else if wrapped && p >= start then
      failwith "Portalloc: namespace exhausted"
    else scan (p + 1) ~wrapped
  in
  scan start ~wrapped:false

let release t port = Hashtbl.remove t.used port

let count t = Hashtbl.length t.used
