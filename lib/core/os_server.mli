(** The operating-system server (CMU UX in the paper).

    Owns everything about networking that is {e not} on the send/receive
    fast path: the port namespace, connection establishment and teardown,
    session migration, packet-filter installation, routing/ARP metastate,
    the cooperative select protocol, and cleanup after task death.
    In the [Server] placement it also runs the data path: its protocol
    stack holds every session for its whole life.

    One server runs per host (except the pure in-kernel configurations,
    which have no server at all). *)

type t

type app_ref
(** A registered application: task identity plus the packet sink of its
    protocol library. *)

val create :
  host:Psd_mach.Host.t ->
  netdev:Psd_mach.Netdev.t ->
  config:Psd_cost.Config.t ->
  addr:Psd_ip.Addr.t ->
  routes:Psd_ip.Route.t ->
  ?rcv_buf:int ->
  ?delack_ns:int ->
  unit ->
  t
(** Builds the server task, its protocol stack (heavy-synchronisation
    [Server_stack] context), installs its catch-all and ARP filters, and
    starts serving the proxy RPC port. *)

val rpc_port : t -> (Session.req, Session.resp) Psd_mach.Ipc.port
(** Where proxies send their calls (paper Table 1, right column). *)

val register_app :
  t ->
  task:Psd_mach.Task.t ->
  sink:(Bytes.t -> unit) ->
  ?on_error:(Session.sid -> string -> unit) ->
  unit ->
  app_ref
(** Introduce an application address space: the server needs its packet
    sink to point session filters at it, its error callback for
    forwarding ICMP soft errors into migrated sessions, and hooks its
    death for connection cleanup. *)

val app_id : app_ref -> int

val stack : t -> Netstack.t

val routes : t -> Psd_ip.Route.t
(** Master routing table (metastate). *)

val arp_master : t -> Psd_arp.Cache.t
(** Master ARP cache; application caches subscribe to its updates. *)

val tcp_ports : t -> Portalloc.t

val sessions_active : t -> int

val migrations : t -> int
(** Sessions moved between server and applications since start. *)

val host : t -> Psd_mach.Host.t
