type record = { at_ns : int; line : string; frame : Bytes.t }

type t = { eng : Psd_sim.Engine.t; mutable recs : record list }

let tcp_flags b off =
  let f = Psd_util.Codec.get_u8 b (off + 13) in
  let bit mask ch = if f land mask <> 0 then String.make 1 ch else "" in
  bit 0x02 'S' ^ bit 0x01 'F' ^ bit 0x04 'R' ^ bit 0x08 'P'
  ^ if f land 0x10 <> 0 then "." else ""

let decode_frame frame =
  let open Psd_util in
  if not (Psd_link.Frame.is_valid frame) then "runt frame"
  else begin
    let ethertype = Psd_link.Frame.ethertype frame in
    if ethertype = Psd_link.Frame.ethertype_arp then
      match Psd_arp.Packet.decode frame ~off:14 ~len:(Bytes.length frame - 14) with
      | Ok p -> Format.asprintf "%a" Psd_arp.Packet.pp p
      | Error e -> e
    else if ethertype = Psd_link.Frame.ethertype_ip then begin
      match
        Psd_ip.Header.decode frame ~off:14 ~len:(Bytes.length frame - 14)
      with
      | Error e -> Format.asprintf "bad ip: %a" Psd_ip.Header.pp_error e
      | Ok h ->
        let o = 14 + Psd_ip.Header.size in
        let plen = h.Psd_ip.Header.total_len - Psd_ip.Header.size in
        if h.Psd_ip.Header.frag_off > 0 then
          Format.asprintf "%a > %a ip fragment off %d len %d" Psd_ip.Addr.pp
            h.Psd_ip.Header.src Psd_ip.Addr.pp h.Psd_ip.Header.dst
            h.Psd_ip.Header.frag_off plen
        else if h.Psd_ip.Header.proto = Psd_ip.Header.proto_tcp then
          Format.asprintf "%a.%d > %a.%d tcp [%s] seq %d ack %d win %d len %d"
            Psd_ip.Addr.pp h.Psd_ip.Header.src (Codec.get_u16 frame o)
            Psd_ip.Addr.pp h.Psd_ip.Header.dst
            (Codec.get_u16 frame (o + 2))
            (tcp_flags frame o)
            (Codec.get_u32i frame (o + 4))
            (Codec.get_u32i frame (o + 8))
            (Codec.get_u16 frame (o + 14))
            (plen - (Codec.get_u8 frame (o + 12) lsr 4 * 4))
        else if h.Psd_ip.Header.proto = Psd_ip.Header.proto_udp then
          Format.asprintf "%a.%d > %a.%d udp len %d" Psd_ip.Addr.pp
            h.Psd_ip.Header.src (Codec.get_u16 frame o) Psd_ip.Addr.pp
            h.Psd_ip.Header.dst
            (Codec.get_u16 frame (o + 2))
            (plen - 8)
        else if h.Psd_ip.Header.proto = Psd_ip.Header.proto_icmp then
          Format.asprintf "%a > %a icmp type %d" Psd_ip.Addr.pp
            h.Psd_ip.Header.src Psd_ip.Addr.pp h.Psd_ip.Header.dst
            (Codec.get_u8 frame o)
        else
          Format.asprintf "%a > %a proto %d len %d" Psd_ip.Addr.pp
            h.Psd_ip.Header.src Psd_ip.Addr.pp h.Psd_ip.Header.dst
            h.Psd_ip.Header.proto plen
    end
    else Printf.sprintf "ethertype 0x%04x len %d" ethertype (Bytes.length frame)
  end

let attach eng segment =
  let t = { eng; recs = [] } in
  let mac = Psd_link.Macaddr.of_host_id 0xfffff in
  let nic = Psd_link.Segment.attach segment ~mac in
  Psd_link.Segment.set_promiscuous nic true;
  Psd_link.Segment.set_rx nic (fun frame ->
      t.recs <-
        { at_ns = Psd_sim.Engine.now eng; line = decode_frame frame; frame }
        :: t.recs);
  t

let records t = List.rev t.recs

let count t = List.length t.recs

let clear t = t.recs <- []

let contains_sub hay needle =
  let hl = Bytes.length hay and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec at i =
      if i + nl > hl then false
      else if Bytes.sub_string hay i nl = needle then true
      else at (i + 1)
    in
    at 0
  end

let payload_seen t needle =
  List.exists (fun r -> contains_sub r.frame needle) t.recs

let pp_trace fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "%10.3fms  %s@." (float_of_int r.at_ns /. 1e6)
        r.line)
    (records t)
