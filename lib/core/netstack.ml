open Psd_cost
open Psd_mbuf

type arp_mode =
  | Arp_authoritative
  | Arp_cached of (Psd_ip.Addr.t -> Psd_link.Macaddr.t option)

type input_kind = Netisr_queue | Chan of Psd_mach.Pktchan.t

type t = {
  ctx : Ctx.t;
  netdev : Psd_mach.Netdev.t;
  ip : Psd_ip.Ip.t;
  tcp : Psd_tcp.Tcp.t;
  udp : Psd_udp.Udp.t;
  icmp : Psd_ip.Icmp.t option;
  arp_cache : Psd_arp.Cache.t;
  mutable resolver : Psd_arp.Resolver.t option;
  input : input_kind;
  netisr_q : Bytes.t Psd_sim.Mailbox.t;
  mutable frames_in : int;
}

let eng t = t.ctx.Ctx.eng

let from_user ctx =
  match ctx.Ctx.role with
  | Ctx.Kernel_stack -> false
  | Ctx.Server_stack | Ctx.Library_stack -> true

(* Encapsulate an IP packet and hand it to the device. *)
let encapsulate t ~dst_mac packet =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Ether_output
    (plat.Platform.ether_fixed + plat.Platform.arp_cache_hit);
  let buf, off = Mbuf.prepend packet Psd_link.Frame.header_size in
  Psd_link.Frame.set_header buf ~off ~dst:dst_mac
    ~src:(Psd_mach.Netdev.mac t.netdev)
    ~ethertype:Psd_link.Frame.ethertype_ip;
  Psd_util.Copies.count Psd_util.Copies.Tx_frame (Mbuf.length packet);
  Psd_mach.Netdev.transmit t.netdev ~ctx:t.ctx ~from_user:(from_user t.ctx)
    (Mbuf.to_bytes packet)

let send_arp t ~dst (p : Psd_arp.Packet.t) =
  let payload = Psd_arp.Packet.encode p in
  let frame =
    Bytes.create (Psd_link.Frame.header_size + Bytes.length payload)
  in
  Psd_link.Frame.set_header frame ~off:0 ~dst
    ~src:(Psd_mach.Netdev.mac t.netdev)
    ~ethertype:Psd_link.Frame.ethertype_arp;
  Bytes.blit payload 0 frame Psd_link.Frame.header_size (Bytes.length payload);
  Psd_mach.Netdev.transmit t.netdev ~ctx:t.ctx ~from_user:(from_user t.ctx)
    frame

let process_frame t frame =
  t.frames_in <- t.frames_in + 1;
  let plat = t.ctx.Ctx.plat in
  (* wrap as an mbuf chain and queue onto the stack's input queue *)
  let mbuf_queue_cost =
    match t.input with
    | Netisr_queue -> 0 (* folded into the kernel's netisr processing *)
    | Chan _ ->
      plat.Platform.mbuf_alloc + plat.Platform.mbuf_op + t.ctx.Ctx.sync_ns
  in
  Ctx.charge t.ctx Phase.Mbuf_queue mbuf_queue_cost;
  if Psd_link.Frame.is_valid frame then begin
    let ethertype = Psd_link.Frame.ethertype frame in
    let off = Psd_link.Frame.header_size in
    let len = Bytes.length frame - off in
    if ethertype = Psd_link.Frame.ethertype_ip then
      Psd_ip.Ip.input t.ip frame ~off ~len
    else if ethertype = Psd_link.Frame.ethertype_arp then
      match t.resolver with
      | Some r -> (
        match Psd_arp.Packet.decode frame ~off ~len with
        | Ok p -> Psd_arp.Resolver.input r p
        | Error _ -> ())
      | None -> ()
  end

let create ~ctx ~netdev ~addr ~routes ~arp ~arp_cache ~input ?rcv_buf
    ?delack_ns () =
  let ip = Psd_ip.Ip.create ~ctx ~addr ~routes () in
  let tcp = Psd_tcp.Tcp.create ~ctx ~ip ?default_rcv_buf:rcv_buf ?delack_ns () in
  let udp = Psd_udp.Udp.create ~ctx ~ip () in
  (* authoritative stacks (kernel, server) own the host's ICMP: they
     answer echoes and translate port-unreachables into UDP soft errors *)
  let icmp =
    match arp with
    | Arp_authoritative ->
      let icmp = Psd_ip.Icmp.create ~ctx ~ip () in
      Psd_udp.Udp.set_unreachable_hook udp (fun ~src ~original ->
          Psd_ip.Icmp.send_port_unreachable icmp ~dst:src ~original);
      Psd_ip.Icmp.on_unreachable icmp
        (fun ~orig_dst ~orig_proto ~orig_dst_port ->
          if orig_proto = Psd_ip.Header.proto_udp then
            Psd_udp.Udp.notify_unreachable udp ~dst:orig_dst
              ~port:orig_dst_port);
      Some icmp
    | Arp_cached _ -> None
  in
  let netisr_q = Psd_sim.Mailbox.create ctx.Ctx.eng in
  let t =
    {
      ctx;
      netdev;
      ip;
      tcp;
      udp;
      icmp;
      arp_cache;
      resolver = None;
      input;
      netisr_q;
      frames_in = 0;
    }
  in
  (match arp with
  | Arp_authoritative ->
    t.resolver <-
      Some
        (Psd_arp.Resolver.create ~eng:ctx.Ctx.eng ~cache:arp_cache
           ~my_ip:addr
           ~my_mac:(Psd_mach.Netdev.mac netdev)
           ~send:(fun ~dst p -> send_arp t ~dst p)
           ())
  | Arp_cached _ -> ());
  (* transmit hook: resolve the next hop, encapsulate, send *)
  Psd_ip.Ip.set_transmit ip (fun ~next_hop ~iface:_ packet ->
      match arp with
      | Arp_authoritative -> (
        match Psd_arp.Cache.lookup arp_cache next_hop with
        | Some mac -> encapsulate t ~dst_mac:mac packet
        | None -> (
          match t.resolver with
          | Some r ->
            Psd_arp.Resolver.resolve r next_hop (function
              | Some mac -> encapsulate t ~dst_mac:mac packet
              | None -> () (* unresolvable: drop, like BSD *))
          | None -> ()))
      | Arp_cached miss -> (
        match Psd_arp.Cache.lookup arp_cache next_hop with
        | Some mac -> encapsulate t ~dst_mac:mac packet
        | None -> (
          (* metastate cache miss: ask the operating-system server *)
          match miss next_hop with
          | Some mac ->
            Psd_arp.Cache.insert arp_cache next_hop mac;
            encapsulate t ~dst_mac:mac packet
          | None -> ())));
  (* input fiber: dequeue the whole packet train accumulated since the
     last wakeup, then process it — one block/wakeup per train instead of
     per packet. Popping a non-empty queue never blocks or charges, so
     the charge/event sequence is identical to the per-packet loop. *)
  Psd_sim.Engine.spawn ctx.Ctx.eng ~name:"stack-input" (fun () ->
      let rec loop () =
        let frames =
          match input with
          | Netisr_queue -> (
            match Psd_sim.Mailbox.drain netisr_q with
            | [] -> [ Psd_sim.Mailbox.recv netisr_q ]
            | fs -> fs)
          | Chan chan -> Psd_mach.Pktchan.recv_batch chan
        in
        List.iter (process_frame t) frames;
        loop ()
      in
      loop ());
  t

let ctx t = t.ctx
let ip t = t.ip
let tcp t = t.tcp
let udp t = t.udp
let addr t = Psd_ip.Ip.addr t.ip
let netdev t = t.netdev

let sink t frame =
  match t.input with
  | Netisr_queue -> Psd_sim.Mailbox.send t.netisr_q frame
  | Chan chan -> Psd_mach.Pktchan.deliver chan frame

let arp_resolver t = t.resolver

let icmp t = t.icmp

let frames_in t = t.frames_in

let _ = eng
