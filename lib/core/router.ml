open Psd_cost

type iface = {
  index : int;
  netdev : Psd_mach.Netdev.t;
  addr : Psd_ip.Addr.t;
  cache : Psd_arp.Cache.t;
  resolver : Psd_arp.Resolver.t;
}

type t = {
  host : Psd_mach.Host.t;
  ctx : Ctx.t;
  ifaces : iface array;
  routes : Psd_ip.Route.t;
  inbox : (int * Bytes.t) Psd_sim.Mailbox.t;
  mutable forwarded : int;
  mutable dropped_ttl : int;
  mutable dropped_no_route : int;
}

let routes t = t.routes
let host t = t.host
let forwarded t = t.forwarded
let dropped_ttl t = t.dropped_ttl
let dropped_no_route t = t.dropped_no_route

(* Atomic for the same reason as [System.mac_counter]: routers may be
   built from several shards' setup code. *)
let mac_counter = Atomic.make 0x8000

let fresh_mac () =
  Psd_link.Macaddr.of_host_id (Atomic.fetch_and_add mac_counter 1 + 1)

let send_arp t iface ~dst (p : Psd_arp.Packet.t) =
  let payload = Psd_arp.Packet.encode p in
  let frame =
    Bytes.create (Psd_link.Frame.header_size + Bytes.length payload)
  in
  Psd_link.Frame.set_header frame ~off:0 ~dst
    ~src:(Psd_mach.Netdev.mac iface.netdev)
    ~ethertype:Psd_link.Frame.ethertype_arp;
  Bytes.blit payload 0 frame Psd_link.Frame.header_size
    (Bytes.length payload);
  Psd_mach.Netdev.transmit iface.netdev ~ctx:t.ctx ~from_user:false frame

(* Forward one IP packet that arrived on [in_iface]. *)
let forward t ~in_iface frame =
  ignore in_iface;
  let plat = Psd_mach.Host.plat t.host in
  let off = Psd_link.Frame.header_size in
  let len = Bytes.length frame - off in
  Ctx.charge t.ctx Phase.Ip_intr
    (plat.Platform.ip_fixed + plat.Platform.route_lookup);
  match Psd_ip.Header.decode frame ~off ~len with
  | Error _ -> ()
  | Ok hdr ->
    let local =
      Array.exists
        (fun i -> Psd_ip.Addr.equal i.addr hdr.Psd_ip.Header.dst)
        t.ifaces
    in
    if local then () (* the router itself is not an endpoint *)
    else if hdr.Psd_ip.Header.ttl <= 1 then
      t.dropped_ttl <- t.dropped_ttl + 1
    else begin
      match Psd_ip.Route.lookup t.routes hdr.Psd_ip.Header.dst with
      | None -> t.dropped_no_route <- t.dropped_no_route + 1
      | Some (next_hop, out_index) ->
        let out = t.ifaces.(out_index) in
        (* rewrite TTL in place; RFC 1624 incremental checksum update
           patches the stored checksum without re-summing the header *)
        let packet = Bytes.sub frame off (hdr.Psd_ip.Header.total_len) in
        Psd_ip.Header.decrement_ttl packet ~off:0;
        Psd_arp.Resolver.resolve out.resolver next_hop (function
          | None -> t.dropped_no_route <- t.dropped_no_route + 1
          | Some mac ->
            t.forwarded <- t.forwarded + 1;
            let out_frame =
              Bytes.create (Psd_link.Frame.header_size + Bytes.length packet)
            in
            Psd_link.Frame.set_header out_frame ~off:0 ~dst:mac
              ~src:(Psd_mach.Netdev.mac out.netdev)
              ~ethertype:Psd_link.Frame.ethertype_ip;
            Bytes.blit packet 0 out_frame Psd_link.Frame.header_size
              (Bytes.length packet);
            Psd_mach.Netdev.transmit out.netdev ~ctx:t.ctx ~from_user:false
              out_frame)
    end

let process t (idx, frame) =
  let iface = t.ifaces.(idx) in
  if Psd_link.Frame.is_valid frame then begin
    let ethertype = Psd_link.Frame.ethertype frame in
    if ethertype = Psd_link.Frame.ethertype_arp then begin
      match
        Psd_arp.Packet.decode frame ~off:Psd_link.Frame.header_size
          ~len:(Bytes.length frame - Psd_link.Frame.header_size)
      with
      | Ok p -> Psd_arp.Resolver.input iface.resolver p
      | Error _ -> ()
    end
    else if ethertype = Psd_link.Frame.ethertype_ip then
      forward t ~in_iface:iface frame
  end

let create ~eng ?(plat = Platform.decstation) ?(shard = 0) ~name ~ifaces () =
  let host = Psd_mach.Host.create ~eng ~plat ~name in
  let ctx =
    Ctx.create ~eng ~cpu:(Psd_mach.Host.cpu host) ~plat
      ~role:Ctx.Kernel_stack
  in
  let routes = Psd_ip.Route.create () in
  let inbox = Psd_sim.Mailbox.create eng in
  let t =
    {
      host;
      ctx;
      ifaces = [||];
      routes;
      inbox;
      forwarded = 0;
      dropped_ttl = 0;
      dropped_no_route = 0;
    }
  in
  let make_iface index (segment, addr_s) =
    let addr = Psd_ip.Addr.of_string addr_s in
    let netdev =
      Psd_mach.Netdev.create ~shard host segment ~mac:(fresh_mac ())
    in
    let cache = Psd_arp.Cache.create eng () in
    (* temporary resolver: rebuilt below once the record exists *)
    let iface_ref = ref None in
    let resolver =
      Psd_arp.Resolver.create ~eng ~cache ~my_ip:addr
        ~my_mac:(Psd_mach.Netdev.mac netdev)
        ~send:(fun ~dst p ->
          match !iface_ref with
          | Some iface -> send_arp t iface ~dst p
          | None -> ())
        ()
    in
    let iface = { index; netdev; addr; cache; resolver } in
    iface_ref := Some iface;
    Psd_ip.Route.add routes
      {
        Psd_ip.Route.net =
          Psd_ip.Addr.of_int (Psd_ip.Addr.to_int addr land 0xffffff00);
        mask = Psd_ip.Addr.of_string "255.255.255.0";
        hop = Psd_ip.Route.Direct;
        iface = index;
      };
    (* the router hears everything IP + ARP on each segment *)
    let (_ : Psd_mach.Netdev.filter_id) =
      Psd_mach.Netdev.attach netdev ~prio:100 ~prog:Psd_bpf.Filter.ip_all
        ~sink:(fun frame -> Psd_sim.Mailbox.send inbox (index, frame))
        ()
    in
    let (_ : Psd_mach.Netdev.filter_id) =
      Psd_mach.Netdev.attach netdev ~prio:50 ~prog:Psd_bpf.Filter.arp
        ~sink:(fun frame -> Psd_sim.Mailbox.send inbox (index, frame))
        ()
    in
    iface
  in
  let t = { t with ifaces = Array.of_list (List.mapi make_iface ifaces) } in
  Psd_sim.Engine.spawn eng ~name:(name ^ "-forwarder") (fun () ->
      let rec loop () =
        process t (Psd_sim.Mailbox.recv t.inbox);
        loop ()
      in
      loop ());
  t
