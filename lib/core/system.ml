open Psd_cost

type t = {
  eng : Psd_sim.Engine.t;
  host : Psd_mach.Host.t;
  config : Config.t;
  netdev : Psd_mach.Netdev.t;
  addr : Psd_ip.Addr.t;
  routes : Psd_ip.Route.t;
  server : Os_server.t option;
  kernel_stack : Netstack.t option;
  kernel_tcp_ports : Portalloc.t option;
  kernel_udp_ports : Portalloc.t option;
  mutable app_stacks : Netstack.t list;
  mutable ctxs : Ctx.t list; (* every context on this host *)
  mutable next_app_seq : int;
  mutable tcp_predict : bool; (* applied to stacks created later too *)
  rcv_buf : int option;
  delack_ns : int option;
  fault : Psd_link.Fault.t option;
}

(* Atomic: systems may be built on several shards' engines (each shard
   builds its own hosts, but construction order across shards is not
   synchronized). Workloads that need identical MACs across partition
   choices build hosts in a fixed global order before running. *)
let mac_counter = Atomic.make 0

let fresh_mac () =
  Psd_link.Macaddr.of_host_id (Atomic.fetch_and_add mac_counter 1 + 1)

let create ~eng ~segment ?(shard = 0) ~config ?plat ?rcv_buf ?delack_ns ?fault
    ~addr ~name () =
  let base_plat = Option.value plat ~default:Platform.decstation in
  let plat = Config.effective_platform base_plat config.Config.os in
  let host = Psd_mach.Host.create ~eng ~plat ~name in
  let netdev =
    Psd_mach.Netdev.create ~shard host segment ~mac:(fresh_mac ())
  in
  (* A null policy installs nothing and draws nothing, so fault-free
     runs stay bit-identical whether or not the argument was passed. *)
  let fault =
    match fault with
    | Some policy when not (Psd_link.Fault.is_null policy) ->
      let f =
        Psd_link.Fault.create
          ~rng:(Psd_util.Rng.split (Psd_sim.Engine.rng eng))
          policy
      in
      Psd_mach.Netdev.set_fault netdev (Some f);
      Some f
    | _ -> None
  in
  (match (config.Config.placement, config.Config.delivery) with
  | Config.Library, Config.Pf_shm_ipf ->
    Psd_mach.Netdev.set_rx_mode netdev Psd_mach.Netdev.Rx_deferred
  | _ -> ());
  let addr = Psd_ip.Addr.of_string addr in
  let routes = Psd_ip.Route.create () in
  Psd_ip.Route.add routes
    {
      Psd_ip.Route.net = Psd_ip.Addr.of_int (Psd_ip.Addr.to_int addr land 0xffffff00);
      mask = Psd_ip.Addr.of_string "255.255.255.0";
      hop = Psd_ip.Route.Direct;
      iface = 0;
    };
  let t =
    {
      eng;
      host;
      config;
      netdev;
      addr;
      routes;
      server = None;
      kernel_stack = None;
      kernel_tcp_ports = None;
      kernel_udp_ports = None;
      app_stacks = [];
      ctxs = [ Psd_mach.Host.kernel_ctx host ];
      next_app_seq = 1;
      tcp_predict = true;
      rcv_buf;
      delack_ns;
      fault;
    }
  in
  match config.Config.placement with
  | Config.In_kernel ->
    let kctx = Psd_mach.Host.kernel_ctx host in
    let arp_cache = Psd_arp.Cache.create eng () in
    let stack =
      Netstack.create ~ctx:kctx ~netdev ~addr ~routes
        ~arp:Netstack.Arp_authoritative ~arp_cache
        ~input:Netstack.Netisr_queue ?rcv_buf ?delack_ns ()
    in
    let (_ : Psd_mach.Netdev.filter_id) =
      Psd_mach.Netdev.attach netdev ~prio:100 ~prog:Psd_bpf.Filter.ip_all
        ~sink:(Netstack.sink stack) ()
    in
    let (_ : Psd_mach.Netdev.filter_id) =
      Psd_mach.Netdev.attach netdev ~prio:50 ~prog:Psd_bpf.Filter.arp
        ~sink:(Netstack.sink stack) ()
    in
    {
      t with
      kernel_stack = Some stack;
      kernel_tcp_ports = Some (Portalloc.create ());
      kernel_udp_ports = Some (Portalloc.create ());
    }
  | Config.Offload ->
    (* The seventh placement: the protocol stack's logic runs under a
       zero-cost platform (it executes but charges the host nothing);
       all datapath time comes from the NIC pipeline model installed on
       the netdev, plus explicit doorbell/completion/crossing charges at
       the socket boundary.  No packet filters: the device hands every
       frame straight to the on-NIC stack at pipeline completion. *)
    let nic_prof =
      Option.value config.Config.nic ~default:Platform.nic_default
    in
    let pipe = Psd_mach.Nicpipe.create eng nic_prof in
    let nic_ctx =
      Ctx.create ~eng ~cpu:(Psd_mach.Host.cpu host)
        ~plat:(Platform.zero_cost plat) ~role:Ctx.Kernel_stack
    in
    let arp_cache = Psd_arp.Cache.create eng () in
    let stack =
      Netstack.create ~ctx:nic_ctx ~netdev ~addr ~routes
        ~arp:Netstack.Arp_authoritative ~arp_cache
        ~input:Netstack.Netisr_queue ?rcv_buf ?delack_ns ()
    in
    Psd_mach.Netdev.install_offload netdev pipe ~sink:(Netstack.sink stack);
    {
      t with
      kernel_stack = Some stack;
      kernel_tcp_ports = Some (Portalloc.create ());
      kernel_udp_ports = Some (Portalloc.create ());
      ctxs = nic_ctx :: t.ctxs;
    }
  | Config.Server | Config.Library ->
    let server = Os_server.create ~host ~netdev ~config ~addr ~routes ?rcv_buf ?delack_ns () in
    {
      t with
      server = Some server;
      ctxs = Netstack.ctx (Os_server.stack server) :: t.ctxs;
    }

(* Delivery channel for an application's protocol library. Under a
   NEWAPI configuration the channel's receive memory counts as loaned
   by the application (copy bookkeeping only; same costs). *)
let app_channel t =
  let plat = Psd_mach.Host.plat t.host in
  let newapi = t.config.Config.api = Config.Newapi in
  match t.config.Config.delivery with
  | Config.Pf_ipc ->
    Psd_mach.Pktchan.create ~newapi t.host ~kind:Psd_mach.Pktchan.Ipc
      ~deliver_fixed:10_000
      ~deliver_per_byte:plat.Platform.kernel_mem_read_per_byte
  | Config.Pf_shm ->
    Psd_mach.Pktchan.create ~newapi t.host ~kind:(Psd_mach.Pktchan.Shm 64)
      ~deliver_fixed:plat.Platform.shm_deliver_fixed
      ~deliver_per_byte:plat.Platform.kernel_mem_read_per_byte
  | Config.Pf_shm_ipf ->
    Psd_mach.Pktchan.create ~newapi t.host ~kind:(Psd_mach.Pktchan.Shm 64)
      ~deliver_fixed:plat.Platform.shm_deliver_fixed
      ~deliver_per_byte:plat.Platform.device_read_per_byte

let rec app t ~name =
  let seq = t.next_app_seq in
  t.next_app_seq <- seq + 1;
  let task = Psd_mach.Task.create t.host ~name () in
  let eng = t.eng in
  let plat = Psd_mach.Host.plat t.host in
  let a =
    match t.config.Config.placement with
    | Config.In_kernel | Config.Offload ->
      let call_ctx =
        Ctx.create ~eng ~cpu:(Psd_mach.Host.cpu t.host) ~plat
          ~role:Ctx.Library_stack
      in
      t.ctxs <- call_ctx :: t.ctxs;
      Sockets.make_app ~host:t.host ~config:t.config ~task ~stack:None
        ~call_ctx ~server:None ~server_app_id:None
        ~kernel_stack:t.kernel_stack ~kernel_tcp_ports:t.kernel_tcp_ports
        ~kernel_udp_ports:t.kernel_udp_ports
    | Config.Server ->
      let server = Option.get t.server in
      let call_ctx =
        Ctx.create ~eng ~cpu:(Psd_mach.Host.cpu t.host) ~plat
          ~role:Ctx.Library_stack
      in
      t.ctxs <- call_ctx :: t.ctxs;
      let err_fwd = ref (fun _ _ -> ()) in
      let app_ref =
        Os_server.register_app server ~task ~sink:(fun _ -> ())
          ~on_error:(fun sid msg -> !err_fwd sid msg) ()
      in
      ignore err_fwd;
      Sockets.make_app ~host:t.host ~config:t.config ~task ~stack:None
        ~call_ctx
        ~server:(Some (Os_server.rpc_port server))
        ~server_app_id:(Some (Os_server.app_id app_ref))
        ~kernel_stack:None ~kernel_tcp_ports:None ~kernel_udp_ports:None
    | Config.Library ->
      let server = Option.get t.server in
      let ctx =
        Ctx.create ~eng ~cpu:(Psd_mach.Host.cpu t.host) ~plat
          ~role:Ctx.Library_stack
      in
      t.ctxs <- ctx :: t.ctxs;
      let chan = app_channel t in
      (* metastate: a local ARP cache invalidated from the server's
         master; misses are proxy RPCs *)
      let arp_cache = Psd_arp.Cache.create eng () in
      Psd_arp.Cache.subscribe (Os_server.arp_master server) (fun ip ->
          Psd_arp.Cache.invalidate arp_cache ip);
      let rpc_port = Os_server.rpc_port server in
      let arp_miss ip =
        match
          Psd_mach.Ipc.call rpc_port ~ctx ~phase:Phase.Ether_output
            (Session.R_arp ip)
        with
        | Session.Rs_arp mac -> mac
        | _ -> None
      in
      let stack =
        Netstack.create ~ctx ~netdev:t.netdev ~addr:t.addr ~routes:t.routes
          ~arp:(Netstack.Arp_cached arp_miss) ~arp_cache
          ~input:(Netstack.Chan chan) ?rcv_buf:t.rcv_buf
          ?delack_ns:t.delack_ns ()
      in
      t.app_stacks <- stack :: t.app_stacks;
      Psd_tcp.Tcp.set_predict (Netstack.tcp stack) t.tcp_predict;
      let err_fwd = ref (fun _ _ -> ()) in
      let app_ref =
        Os_server.register_app server ~task ~sink:(Netstack.sink stack)
          ~on_error:(fun sid msg -> !err_fwd sid msg) ()
      in
      let a =
        Sockets.make_app ~host:t.host ~config:t.config ~task
          ~stack:(Some stack) ~call_ctx:ctx ~server:(Some rpc_port)
          ~server_app_id:(Some (Os_server.app_id app_ref))
          ~kernel_stack:None ~kernel_tcp_ports:None ~kernel_udp_ports:None
      in
      err_fwd := Sockets.deliver_soft_error a;
      a
  in
  Sockets.set_forker a (fun ~name -> app t ~name);
  a

let add_route t ~net ~mask ~gateway =
  Psd_ip.Route.add t.routes
    {
      Psd_ip.Route.net = Psd_ip.Addr.of_string net;
      mask = Psd_ip.Addr.of_string mask;
      hop = Psd_ip.Route.Gateway (Psd_ip.Addr.of_string gateway);
      iface = 0;
    }

let host t = t.host
let config t = t.config
let addr t = t.addr
let netdev t = t.netdev
let server t = t.server
let kernel_stack t = t.kernel_stack

let nic_pipe t = Psd_mach.Netdev.offload_pipe t.netdev

let fault_stats t = Option.map Psd_link.Fault.stats t.fault

let stacks t =
  let base =
    match (t.kernel_stack, t.server) with
    | Some s, _ -> [ s ]
    | None, Some srv -> [ Os_server.stack srv ]
    | None, None -> []
  in
  base @ t.app_stacks

let stacks_tcp_stats t =
  List.map (fun s -> Psd_tcp.Tcp.stats (Netstack.tcp s)) (stacks t)

let stacks_ip_stats t =
  List.map (fun s -> Psd_ip.Ip.stats (Netstack.ip s)) (stacks t)

let reass_timed_out t =
  List.fold_left
    (fun acc s -> acc + Psd_ip.Ip.reass_timed_out (Netstack.ip s))
    0 (stacks t)

let set_breakdown t b = List.iter (fun ctx -> ctx.Ctx.breakdown <- b) t.ctxs

let set_tcp_predict t v =
  t.tcp_predict <- v;
  List.iter
    (fun s -> Psd_tcp.Tcp.set_predict (Netstack.tcp s) v)
    (stacks t)
