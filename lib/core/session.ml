type sid = int

type kind = Stream | Dgram

let pp_kind fmt k =
  Format.fprintf fmt "%s"
    (match k with Stream -> "SOCK_STREAM" | Dgram -> "SOCK_DGRAM")

type endpoint = Psd_ip.Addr.t * int

type req =
  | R_socket of { kind : kind; app : int }
  | R_bind of { sid : sid; port : int option }
  | R_connect of { sid : sid; dst : endpoint }
  | R_listen of { sid : sid; backlog : int }
  | R_accept of { sid : sid }
  | R_return of { sid : sid; tcb : Psd_tcp.Tcp.snapshot option }
  | R_close of { sid : sid; tcb : Psd_tcp.Tcp.snapshot option }
  | R_status of { sid : sid; readable : bool }
  | R_select of { app : int; sids : sid list; timeout_ns : int option }
  | R_arp of Psd_ip.Addr.t
  | R_send of { sid : sid; data : string; dst : endpoint option }
  | R_recv of { sid : sid; max : int }
  | R_shutdown of { sid : sid }
  | R_dup of { sid : sid }
  | R_task_exited of { app : int }

type migrated = {
  m_local : endpoint;
  m_remote : endpoint option;
  m_tcb : Psd_tcp.Tcp.snapshot option;
}

type resp =
  | Rs_ok
  | Rs_err of string
  | Rs_socket of sid
  | Rs_bound of migrated
  | Rs_connected of migrated
  | Rs_accepted of sid * migrated
  | Rs_select of sid list
  | Rs_arp of Psd_link.Macaddr.t option
  | Rs_recv of (string * endpoint option, [ `Eof | `Err of string ]) result
