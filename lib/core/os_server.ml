open Psd_cost
module S = Session

type app_ref = {
  a_id : int;
  a_task : Psd_mach.Task.t;
  a_sink : Bytes.t -> unit;
  a_error : S.sid -> string -> unit;
}

type server_binding = {
  mutable b_tcp : Psd_tcp.Tcp.pcb option;
  mutable b_listener : Psd_tcp.Tcp.listener option;
  mutable b_udp : Psd_udp.Udp.pcb option;
  b_rcv : Psd_socket.Sockbuf.t;
  b_dq : string Psd_socket.Dgramq.t;
  b_acked : Psd_sim.Cond.t;
  b_accept : Psd_sim.Cond.t;
}

type location = Embryonic | In_server of server_binding | In_app

type session = {
  sid : S.sid;
  kind : S.kind;
  app : app_ref;
  mutable lport : int option;
  mutable remote : S.endpoint option;
  mutable location : location;
  mutable filter : Psd_mach.Netdev.filter_id option;
  mutable app_readable : bool;
  mutable closing : bool;
  mutable refs : int; (* descriptors naming this session (fork dups) *)
}

type t = {
  host : Psd_mach.Host.t;
  task : Psd_mach.Task.t;
  config : Config.t;
  netdev : Psd_mach.Netdev.t;
  stack : Netstack.t;
  tcp_ports : Portalloc.t;
  udp_ports : Portalloc.t;
  arp_master : Psd_arp.Cache.t;
  routes : Psd_ip.Route.t;
  sessions : (S.sid, session) Hashtbl.t;
  apps : (int, app_ref) Hashtbl.t;
  rpc : (S.req, S.resp) Psd_mach.Ipc.port;
  select_cond : Psd_sim.Cond.t;
  mutable next_sid : int;
  mutable next_app : int;
  mutable migrations : int;
  snd_hiwat : int;
}

let eng t = Psd_mach.Host.eng t.host

let sctx t = Netstack.ctx t.stack

let rpc_port t = t.rpc

let stack t = t.stack

let routes t = t.routes

let arp_master t = t.arp_master

let tcp_ports t = t.tcp_ports

let sessions_active t = Hashtbl.length t.sessions

let migrations t = t.migrations

let host t = t.host

let app_id a = a.a_id

(* ---------------------------------------------------------------- *)
(* filters                                                            *)

let bpf_proto = function S.Stream -> Psd_bpf.Filter.Tcp | S.Dgram -> Psd_bpf.Filter.Udp

let install_session_filter t sess ~sink =
  (match sess.filter with
  | Some id -> Psd_mach.Netdev.detach t.netdev id
  | None -> ());
  match sess.lport with
  | None -> ()
  | Some lport ->
    let spec =
      {
        Psd_bpf.Filter.proto = bpf_proto sess.kind;
        local_ip = Psd_ip.Addr.to_int (Netstack.addr t.stack);
        local_port = lport;
        remote_ip =
          Option.map (fun (ip, _) -> Psd_ip.Addr.to_int ip) sess.remote;
        remote_port = Option.map snd sess.remote;
      }
    in
    let prio = if sess.remote <> None then 5 else 20 in
    let prog = Psd_bpf.Filter.session spec in
    let flat = Psd_bpf.Filter.flat_of_spec spec in
    sess.filter <-
      Some (Psd_mach.Netdev.attach t.netdev ~prio ~flat ~prog ~sink ())

let drop_session_filter t sess =
  match sess.filter with
  | Some id ->
    Psd_mach.Netdev.detach t.netdev id;
    sess.filter <- None
  | None -> ()

(* ---------------------------------------------------------------- *)
(* session bookkeeping                                                *)

let ports_of t = function
  | S.Stream -> t.tcp_ports
  | S.Dgram -> t.udp_ports

let destroy_session t sess =
  drop_session_filter t sess;
  (match sess.lport with
  | Some p -> Portalloc.release (ports_of t sess.kind) p
  | None -> ());
  Hashtbl.remove t.sessions sess.sid;
  Psd_sim.Cond.broadcast t.select_cond

let make_binding t =
  let b =
    {
      b_tcp = None;
      b_listener = None;
      b_udp = None;
      b_rcv = Psd_socket.Sockbuf.create (eng t) ();
      b_dq = Psd_socket.Dgramq.create (eng t) ();
      b_acked = Psd_sim.Cond.create (eng t);
      b_accept = Psd_sim.Cond.create (eng t);
    }
  in
  Psd_socket.Sockbuf.on_change b.b_rcv (fun () ->
      Psd_sim.Cond.broadcast t.select_cond);
  Psd_socket.Dgramq.on_change b.b_dq (fun () ->
      Psd_sim.Cond.broadcast t.select_cond);
  b

(* Handlers for a server-resident stream session: data flows into the
   binding's socket buffer; acks wake blocked senders. *)
let wire_stream_handlers t sess b =
  let ctx = sctx t in
  let plat = ctx.Ctx.plat in
  {
    Psd_tcp.Tcp.deliver =
      (fun _ m ->
        Ctx.charge ctx Phase.Proto_input
          (plat.Platform.mbuf_op + ctx.Ctx.sync_ns);
        if Psd_socket.Sockbuf.has_waiters b.b_rcv then
          Ctx.charge ctx Phase.Wakeup ctx.Ctx.wakeup_ns;
        Psd_socket.Sockbuf.append b.b_rcv m);
    deliver_fin = (fun _ -> Psd_socket.Sockbuf.set_eof b.b_rcv);
    on_established = (fun _ -> Psd_sim.Cond.broadcast b.b_accept);
    on_acked =
      (fun _ _ ->
        Psd_sim.Cond.broadcast b.b_acked;
        Psd_sim.Cond.broadcast t.select_cond);
    on_error =
      (fun _ e ->
        Psd_socket.Sockbuf.set_error b.b_rcv
          (Format.asprintf "%a" Psd_tcp.Tcp.pp_error e);
        Psd_sim.Cond.broadcast b.b_acked);
    on_state =
      (fun _ st ->
        if st = Psd_tcp.Tcp.Closed then
          if sess.closing then destroy_session t sess);
  }

(* Handlers used while the server winds a connection down after the
   application closed it: incoming data is discarded but consumed so the
   peer is not stalled. *)
let wire_drain_handlers t sess pcb_ref =
  {
    Psd_tcp.Tcp.null_handlers with
    Psd_tcp.Tcp.deliver =
      (fun _ m ->
        let n = Psd_mbuf.Mbuf.length m in
        Psd_sim.Engine.spawn (eng t) ~name:"drain" (fun () ->
            match !pcb_ref with
            | Some pcb -> Psd_tcp.Tcp.user_consumed pcb n
            | None -> ()));
    on_state =
      (fun _ st ->
        if st = Psd_tcp.Tcp.Closed then destroy_session t sess);
  }

(* ---------------------------------------------------------------- *)
(* request handlers                                                   *)

let find t sid = Hashtbl.find_opt t.sessions sid

let fresh_sid t =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  sid

let alloc_port t kind = function
  | Some p -> (
    match Portalloc.reserve (ports_of t kind) p with
    | Ok () -> Ok p
    | Error `In_use -> Error "address in use")
  | None -> Ok (Portalloc.alloc_ephemeral (ports_of t kind))

let readiness sess =
  match sess.location with
  | In_app -> sess.app_readable
  | Embryonic -> false
  | In_server b -> (
    Psd_socket.Sockbuf.readable b.b_rcv
    || Psd_socket.Dgramq.readable b.b_dq
    || match b.b_listener with
       | Some l -> Psd_tcp.Tcp.pending l > 0
       | None -> false)

let migrate_to_library t = t.config.Config.placement = Config.Library

let handle_socket t ~kind ~app_id =
  match Hashtbl.find_opt t.apps app_id with
  | None -> S.Rs_err "unknown application"
  | Some app ->
    let sid = fresh_sid t in
    Hashtbl.replace t.sessions sid
      {
        sid;
        kind;
        app;
        lport = None;
        remote = None;
        location = Embryonic;
        filter = None;
        app_readable = false;
        closing = false;
        refs = 1;
      };
    S.Rs_socket sid

let bind_server_udp t sess b port =
  let receive dg =
    let ctx = sctx t in
    if Psd_socket.Dgramq.has_waiters b.b_dq then
      Ctx.charge ctx Phase.Wakeup ctx.Ctx.wakeup_ns;
    Psd_util.Copies.count Psd_util.Copies.Rx_copyout
      (Psd_mbuf.Mbuf.length dg.Psd_udp.Udp.payload);
    ignore
      (Psd_socket.Dgramq.push b.b_dq
         ~src:(Psd_ip.Addr.to_int dg.Psd_udp.Udp.src, dg.Psd_udp.Udp.src_port)
         (Psd_mbuf.Mbuf.to_string dg.Psd_udp.Udp.payload))
  in
  match Psd_udp.Udp.bind (Netstack.udp t.stack) ~port ~receive with
  | Ok pcb ->
    b.b_udp <- Some pcb;
    (match sess.remote with
    | Some (ip, p) -> Psd_udp.Udp.connect pcb ip p
    | None -> ());
    Ok ()
  | Error `Port_in_use -> Error "port in use in server stack"

let handle_bind t ~sid ~port =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    match alloc_port t sess.kind port with
    | Error e -> S.Rs_err e
    | Ok port -> (
      sess.lport <- Some port;
      let local = (Netstack.addr t.stack, port) in
      match (sess.kind, migrate_to_library t) with
      | S.Dgram, true ->
        (* the UDP session migrates to the application at bind time *)
        install_session_filter t sess ~sink:sess.app.a_sink;
        sess.location <- In_app;
        t.migrations <- t.migrations + 1;
        S.Rs_bound { S.m_local = local; m_remote = None; m_tcb = None }
      | S.Dgram, false -> (
        let b = make_binding t in
        match bind_server_udp t sess b port with
        | Ok () ->
          sess.location <- In_server b;
          S.Rs_bound { S.m_local = local; m_remote = None; m_tcb = None }
        | Error e -> S.Rs_err e)
      | S.Stream, _ ->
        (* only the endpoint name is fixed at bind time for TCP *)
        S.Rs_bound { S.m_local = local; m_remote = None; m_tcb = None }))

let handle_connect t ~sid ~dst =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    sess.remote <- Some dst;
    let port =
      match sess.lport with
      | Some p -> Ok p
      | None -> alloc_port t sess.kind None
    in
    match port with
    | Error e -> S.Rs_err e
    | Ok port -> (
      sess.lport <- Some port;
      let local = (Netstack.addr t.stack, port) in
      match sess.kind with
      | S.Dgram ->
        if migrate_to_library t then begin
          install_session_filter t sess ~sink:sess.app.a_sink;
          sess.location <- In_app;
          if sess.location = In_app then ();
          S.Rs_connected
            { S.m_local = local; m_remote = Some dst; m_tcb = None }
        end
        else begin
          match sess.location with
          | In_server b -> (
            match b.b_udp with
            | Some pcb ->
              Psd_udp.Udp.connect pcb (fst dst) (snd dst);
              install_session_filter t sess ~sink:(Netstack.sink t.stack);
              S.Rs_connected
                { S.m_local = local; m_remote = Some dst; m_tcb = None }
            | None -> S.Rs_err "not bound")
          | _ -> (
            let b = make_binding t in
            match bind_server_udp t sess b port with
            | Ok () ->
              sess.location <- In_server b;
              S.Rs_connected
                { S.m_local = local; m_remote = Some dst; m_tcb = None }
            | Error e -> S.Rs_err e)
        end
      | S.Stream -> (
        (* Establishment is always performed by the operating system:
           packets for the nascent connection come to the server stack. *)
        install_session_filter t sess ~sink:(Netstack.sink t.stack);
        let b = make_binding t in
        let established = ref false and failed = ref None in
        let control =
          {
            Psd_tcp.Tcp.null_handlers with
            Psd_tcp.Tcp.on_established =
              (fun _ ->
                established := true;
                Psd_sim.Cond.broadcast b.b_accept);
            on_error =
              (fun _ e ->
                failed := Some e;
                Psd_sim.Cond.broadcast b.b_accept);
          }
        in
        let pcb =
          Psd_tcp.Tcp.connect (Netstack.tcp t.stack) ~handlers:control
            ~claim_data:false ~src_port:port ~dst:(fst dst)
            ~dst_port:(snd dst) ()
        in
        b.b_tcp <- Some pcb;
        (* wait for the handshake *)
        let () =
          Psd_sim.Cond.until b.b_accept (fun () ->
              if !established || !failed <> None then Some () else None)
        in
        match !failed with
        | Some e ->
          destroy_session t sess;
          S.Rs_err (Format.asprintf "%a" Psd_tcp.Tcp.pp_error e)
        | None ->
          if migrate_to_library t then begin
            let snap = Psd_tcp.Tcp.export pcb in
            b.b_tcp <- None;
            (* segments racing the filter switch must not draw RSTs *)
            Psd_tcp.Tcp.mute (Netstack.tcp t.stack) ~local_port:port
              ~remote:dst ~duration_ns:(Psd_sim.Time.sec 1);
            install_session_filter t sess ~sink:sess.app.a_sink;
            sess.location <- In_app;
            t.migrations <- t.migrations + 1;
            S.Rs_connected
              { S.m_local = local; m_remote = Some dst; m_tcb = Some snap }
          end
          else begin
            Psd_tcp.Tcp.set_handlers pcb (wire_stream_handlers t sess b);
            sess.location <- In_server b;
            S.Rs_connected
              { S.m_local = local; m_remote = Some dst; m_tcb = None }
          end)))

let handle_listen t ~sid ~backlog =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    match (sess.kind, sess.lport) with
    | S.Dgram, _ -> S.Rs_err "listen on datagram socket"
    | S.Stream, None -> S.Rs_err "listen before bind"
    | S.Stream, Some port ->
      let b = make_binding t in
      let listener =
        Psd_tcp.Tcp.listen (Netstack.tcp t.stack) ~port ~backlog ()
      in
      b.b_listener <- Some listener;
      Psd_tcp.Tcp.on_ready listener (fun () ->
          Psd_sim.Cond.broadcast b.b_accept;
          Psd_sim.Cond.broadcast t.select_cond);
      sess.location <- In_server b;
      (* the wildcard filter brings handshake traffic to the server *)
      if migrate_to_library t then
        install_session_filter t sess ~sink:(Netstack.sink t.stack);
      S.Rs_ok)

let handle_accept t ~sid =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    match sess.location with
    | In_server ({ b_listener = Some listener; _ } as b) -> (
      let pcb =
        Psd_sim.Cond.until b.b_accept (fun () ->
            Psd_tcp.Tcp.accept_ready listener)
      in
      let remote = Psd_tcp.Tcp.remote pcb in
      let sid' = fresh_sid t in
      let sess' =
        {
          sid = sid';
          kind = S.Stream;
          app = sess.app;
          lport = sess.lport;
          remote = Some remote;
          location = Embryonic;
          filter = None;
          app_readable = false;
          closing = false;
          refs = 1;
        }
      in
      Hashtbl.replace t.sessions sid' sess';
      let local = (Netstack.addr t.stack, Option.get sess.lport) in
      if migrate_to_library t then begin
        let snap = Psd_tcp.Tcp.export pcb in
        Psd_tcp.Tcp.mute (Netstack.tcp t.stack)
          ~local_port:(Option.get sess.lport) ~remote
          ~duration_ns:(Psd_sim.Time.sec 1);
        install_session_filter t sess' ~sink:sess'.app.a_sink;
        sess'.location <- In_app;
        t.migrations <- t.migrations + 1;
        S.Rs_accepted
          ( sid',
            { S.m_local = local; m_remote = Some remote; m_tcb = Some snap }
          )
      end
      else begin
        let b' = make_binding t in
        b'.b_tcp <- Some pcb;
        Psd_tcp.Tcp.set_handlers pcb (wire_stream_handlers t sess' b');
        sess'.location <- In_server b';
        S.Rs_accepted
          (sid', { S.m_local = local; m_remote = Some remote; m_tcb = None })
      end)
    | _ -> S.Rs_err "accept on non-listening session")

let import_to_server t sess snap =
  let b = make_binding t in
  let pcb = ref None in
  let handlers = wire_stream_handlers t sess b in
  let p = Psd_tcp.Tcp.import (Netstack.tcp t.stack) ~handlers snap in
  pcb := Some p;
  b.b_tcp <- Some p;
  b

let handle_return t ~sid ~tcb =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    match (sess.kind, tcb) with
    | S.Stream, Some snap ->
      let b = import_to_server t sess snap in
      sess.location <- In_server b;
      install_session_filter t sess ~sink:(Netstack.sink t.stack);
      t.migrations <- t.migrations + 1;
      Psd_sim.Cond.broadcast t.select_cond;
      S.Rs_ok
    | S.Dgram, _ -> (
      match sess.lport with
      | None -> S.Rs_err "return of unbound datagram session"
      | Some port -> (
        let b = make_binding t in
        match bind_server_udp t sess b port with
        | Ok () ->
          sess.location <- In_server b;
          install_session_filter t sess ~sink:(Netstack.sink t.stack);
          t.migrations <- t.migrations + 1;
          S.Rs_ok
        | Error e -> S.Rs_err e))
    | S.Stream, None -> S.Rs_err "return without protocol state")

let handle_close t ~sid ~tcb =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess when sess.refs > 1 ->
    (* another descriptor (fork duplicate) still names the session *)
    sess.refs <- sess.refs - 1;
    (match tcb with
    | Some snap ->
      (* the closer held the live state: bring it home so the surviving
         descriptor can keep using it *)
      let b = import_to_server t sess snap in
      sess.location <- In_server b;
      install_session_filter t sess ~sink:(Netstack.sink t.stack);
      t.migrations <- t.migrations + 1
    | None -> ());
    S.Rs_ok
  | Some sess -> (
    sess.closing <- true;
    match sess.kind with
    | S.Dgram ->
      (match sess.location with
      | In_server { b_udp = Some pcb; _ } ->
        Psd_udp.Udp.close (Netstack.udp t.stack) pcb
      | _ -> ());
      destroy_session t sess;
      S.Rs_ok
    | S.Stream -> (
      match (sess.location, tcb) with
      | In_app, Some snap ->
        (* migrate home, then run the full shutdown protocol here *)
        install_session_filter t sess ~sink:(Netstack.sink t.stack);
        t.migrations <- t.migrations + 1;
        let pcb_ref = ref None in
        let handlers = wire_drain_handlers t sess pcb_ref in
        let pcb = Psd_tcp.Tcp.import (Netstack.tcp t.stack) ~handlers snap in
        pcb_ref := Some pcb;
        sess.location <- Embryonic;
        Psd_tcp.Tcp.shutdown_send pcb;
        S.Rs_ok
      | In_server b, _ ->
        (match b.b_listener with
        | Some l ->
          Psd_tcp.Tcp.close_listener (Netstack.tcp t.stack) l;
          destroy_session t sess
        | None -> ());
        (match b.b_tcp with
        | Some pcb ->
          (* rebind state hooks so the session dies when TCP does *)
          Psd_tcp.Tcp.shutdown_send pcb;
          if Psd_tcp.Tcp.state pcb = Psd_tcp.Tcp.Closed then
            destroy_session t sess
        | None -> ());
        S.Rs_ok
      | (Embryonic | In_app), _ ->
        destroy_session t sess;
        S.Rs_ok))

let handle_send t ~sid ~data ~dst =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    match sess.location with
    | In_server b -> (
      match sess.kind with
      | S.Stream -> (
        match b.b_tcp with
        | Some pcb when Psd_tcp.Tcp.can_send pcb ->
          let ctx = sctx t in
          let plat = ctx.Ctx.plat in
          Ctx.charge ctx Phase.Entry_copyin
            (plat.Platform.socket_layer + plat.Platform.mbuf_alloc
           + ctx.Ctx.sync_ns);
          (* send-buffer backpressure: chunk large writes *)
          let len = String.length data in
          let rec push off =
            if off >= len then S.Rs_ok
            else begin
              let space =
                Psd_sim.Cond.until b.b_acked (fun () ->
                    if Psd_tcp.Tcp.state pcb = Psd_tcp.Tcp.Closed then
                      Some 0
                    else
                      let sp = t.snd_hiwat - Psd_tcp.Tcp.sndq_length pcb in
                      if sp > 0 then Some sp else None)
              in
              if space = 0 then S.Rs_err "connection closed"
              else if not (Psd_tcp.Tcp.can_send pcb) then
                S.Rs_err "connection closed"
              else begin
                let n = min space (len - off) in
                (* the server's socket layer performs the RPC's fourth
                   copy: message data into mbufs *)
                Psd_util.Copies.count Psd_util.Copies.Tx_copyin n;
                Psd_tcp.Tcp.send pcb
                  (Psd_mbuf.Mbuf.of_bytes (Bytes.unsafe_of_string data)
                     ~off ~len:n);
                push (off + n)
              end
            end
          in
          push 0
        | Some _ -> S.Rs_err "connection closing"
        | None -> S.Rs_err "not connected")
      | S.Dgram -> (
        match b.b_udp with
        | Some pcb when Psd_udp.Udp.take_error pcb <> None ->
          S.Rs_err "connection refused"
        | Some pcb -> (
          let ctx = sctx t in
          let plat = ctx.Ctx.plat in
          Ctx.charge ctx Phase.Entry_copyin
            (plat.Platform.socket_layer + plat.Platform.mbuf_alloc
           + ctx.Ctx.sync_ns);
          Psd_util.Copies.count Psd_util.Copies.Tx_copyin
            (String.length data);
          match
            Psd_udp.Udp.send pcb
              ?dst:(Option.map (fun (ip, p) -> (ip, p)) dst)
              (Psd_mbuf.Mbuf.of_string data)
          with
          | Ok () -> S.Rs_ok
          | Error `No_destination -> S.Rs_err "destination required"
          | Error `No_route -> S.Rs_err "no route to host"
          | Error `Too_big -> S.Rs_err "message too long")
        | None -> S.Rs_err "not bound"))
    | _ -> S.Rs_err "session not resident in server")

let handle_recv t ~sid ~max =
  match find t sid with
  | None -> S.Rs_err "no such session"
  | Some sess -> (
    match sess.location with
    | In_server b -> (
      match sess.kind with
      | S.Stream -> (
        let ctx = sctx t in
        Ctx.charge ctx Phase.Copyout_exit ctx.Ctx.plat.Platform.socket_layer;
        match Psd_socket.Sockbuf.read b.b_rcv ~max with
        | Ok m ->
          let len = Psd_mbuf.Mbuf.length m in
          (match b.b_tcp with
          | Some pcb -> Psd_tcp.Tcp.user_consumed pcb len
          | None -> ());
          Psd_util.Copies.count Psd_util.Copies.Rx_copyout len;
          S.Rs_recv (Ok (Psd_mbuf.Mbuf.to_string m, None))
        | Error `Eof -> S.Rs_recv (Error `Eof)
        | Error (`Error e) -> S.Rs_recv (Error (`Err e)))
      | S.Dgram ->
        let (src_ip, src_port), payload = Psd_socket.Dgramq.recv b.b_dq in
        S.Rs_recv
          (Ok (payload, Some (Psd_ip.Addr.of_int src_ip, src_port))))
    | _ -> S.Rs_err "session not resident in server")

let handle_select t ~sids ~timeout_ns =
  let ready () =
    let rs =
      List.filter
        (fun sid ->
          match find t sid with Some s -> readiness s | None -> false)
        sids
    in
    if rs = [] then None else Some rs
  in
  match timeout_ns with
  | None -> S.Rs_select (Psd_sim.Cond.until t.select_cond ready)
  | Some dt -> (
    match Psd_sim.Cond.until_timeout t.select_cond dt ready with
    | Some rs -> S.Rs_select rs
    | None -> S.Rs_select [])

let handle_arp t ip =
  match Psd_arp.Cache.lookup t.arp_master ip with
  | Some mac -> S.Rs_arp (Some mac)
  | None -> (
    match Netstack.arp_resolver t.stack with
    | None -> S.Rs_arp None
    | Some r ->
      let result = ref None and done_ = ref false in
      let cond = Psd_sim.Cond.create (eng t) in
      Psd_arp.Resolver.resolve r ip (fun res ->
          result := res;
          done_ := true;
          Psd_sim.Cond.broadcast cond);
      Psd_sim.Cond.until cond (fun () -> if !done_ then Some () else None);
      S.Rs_arp !result)

let handle_task_exited t ~app_id =
  let owned =
    Hashtbl.fold
      (fun _ sess acc -> if sess.app.a_id = app_id then sess :: acc else acc)
      t.sessions []
  in
  List.iter
    (fun sess ->
      (match sess.location with
      | In_server b ->
        (match b.b_listener with
        | Some l -> Psd_tcp.Tcp.close_listener (Netstack.tcp t.stack) l
        | None -> ());
        (match b.b_tcp with
        | Some pcb -> Psd_tcp.Tcp.abort pcb
        | None -> ());
        (match b.b_udp with
        | Some pcb -> Psd_udp.Udp.close (Netstack.udp t.stack) pcb
        | None -> ())
      | In_app | Embryonic -> ());
      destroy_session t sess)
    owned;
  Hashtbl.remove t.apps app_id;
  S.Rs_ok

let handle t req =
  (* every server entry pays its socket-layer bookkeeping *)
  let ctx = sctx t in
  Ctx.charge ctx Phase.Control ctx.Ctx.plat.Platform.socket_layer;
  match req with
  | S.R_socket { kind; app } -> handle_socket t ~kind ~app_id:app
  | S.R_bind { sid; port } -> handle_bind t ~sid ~port
  | S.R_connect { sid; dst } -> handle_connect t ~sid ~dst
  | S.R_listen { sid; backlog } -> handle_listen t ~sid ~backlog
  | S.R_accept { sid } -> handle_accept t ~sid
  | S.R_return { sid; tcb } -> handle_return t ~sid ~tcb
  | S.R_close { sid; tcb } -> handle_close t ~sid ~tcb
  | S.R_status { sid; readable } -> (
    match find t sid with
    | Some sess ->
      sess.app_readable <- readable;
      Psd_sim.Cond.broadcast t.select_cond;
      S.Rs_ok
    | None -> S.Rs_ok)
  | S.R_select { app = _; sids; timeout_ns } -> handle_select t ~sids ~timeout_ns
  | S.R_arp ip -> handle_arp t ip
  | S.R_send { sid; data; dst } -> handle_send t ~sid ~data ~dst
  | S.R_recv { sid; max } -> handle_recv t ~sid ~max
  | S.R_shutdown { sid } -> (
    match find t sid with
    | Some { location = In_server { b_tcp = Some pcb; _ }; _ } ->
      Psd_tcp.Tcp.shutdown_send pcb;
      S.Rs_ok
    | Some _ -> S.Rs_err "shutdown on non-stream or migrated session"
    | None -> S.Rs_err "no such session")
  | S.R_dup { sid } -> (
    match find t sid with
    | Some sess ->
      sess.refs <- sess.refs + 1;
      S.Rs_ok
    | None -> S.Rs_err "no such session")
  | S.R_task_exited { app } -> handle_task_exited t ~app_id:app

let create ~host ~netdev ~config ~addr ~routes ?rcv_buf ?delack_ns () =
  let eng = Psd_mach.Host.eng host in
  let cpu = Psd_mach.Host.cpu host in
  let plat = Psd_mach.Host.plat host in
  let task = Psd_mach.Task.create host ~name:"os-server" () in
  let ctx = Ctx.create ~eng ~cpu ~plat ~role:Ctx.Server_stack in
  let arp_master = Psd_arp.Cache.create eng () in
  (* The server receives packets through a kernel queue with copyout
     into its address space; wakeups amortise over packet trains just as
     for application channels (the paper's server numbers reflect a
     mature, optimised delivery path — Table 4 "kernel copyout"). *)
  let chan =
    Psd_mach.Pktchan.create host ~kind:(Psd_mach.Pktchan.Shm 256)
      ~deliver_fixed:48_000
      ~deliver_per_byte:plat.Platform.kernel_mem_read_per_byte
  in
  let stack =
    Netstack.create ~ctx ~netdev ~addr ~routes ~arp:Netstack.Arp_authoritative
      ~arp_cache:arp_master ~input:(Netstack.Chan chan) ?rcv_buf ?delack_ns
      ()
  in
  let t =
    {
      host;
      task;
      config;
      netdev;
      stack;
      tcp_ports = Portalloc.create ();
      udp_ports = Portalloc.create ();
      arp_master;
      routes;
      sessions = Hashtbl.create 32;
      apps = Hashtbl.create 8;
      rpc = Psd_mach.Ipc.create_port host;
      select_cond = Psd_sim.Cond.create eng;
      next_sid = 1;
      next_app = 1;
      migrations = 0;
      snd_hiwat = 24 * 1024;
    }
  in
  (* standing filters: ARP always; all IP when the server runs the whole
     data path (Server placement) *)
  let (_ : Psd_mach.Netdev.filter_id) =
    Psd_mach.Netdev.attach netdev ~prio:50 ~prog:Psd_bpf.Filter.arp
      ~sink:(Netstack.sink stack) ()
  in
  (match config.Config.placement with
  | Config.Server ->
    let (_ : Psd_mach.Netdev.filter_id) =
      Psd_mach.Netdev.attach netdev ~prio:100 ~prog:Psd_bpf.Filter.ip_all
        ~sink:(Netstack.sink stack) ()
    in
    ()
  | Config.Library ->
    (* exceptional packets — segments for unknown ports, ICMP — fall
       through every session filter to the operating system *)
    let (_ : Psd_mach.Netdev.filter_id) =
      Psd_mach.Netdev.attach netdev ~prio:200 ~prog:Psd_bpf.Filter.ip_all
        ~sink:(Netstack.sink stack) ()
    in
    ()
  | Config.In_kernel | Config.Offload -> ());
  (* ICMP port-unreachables for sessions that migrated to applications
     are forwarded as soft errors (one kernel message each) *)
  (match Netstack.icmp stack with
  | Some icmp ->
    Psd_ip.Icmp.on_unreachable icmp
      (fun ~orig_dst ~orig_proto ~orig_dst_port ->
        if orig_proto = Psd_ip.Header.proto_udp then
          Hashtbl.iter
            (fun _ sess ->
              match (sess.kind, sess.location, sess.remote) with
              | S.Dgram, In_app, Some (ip, port)
                when Psd_ip.Addr.equal ip orig_dst && port = orig_dst_port
                ->
                Ctx.charge (sctx t) Phase.Control
                  plat.Platform.ipc_msg;
                sess.app.a_error sess.sid "connection refused"
              | _ -> ())
            t.sessions)
  | None -> ());
  Psd_mach.Ipc.serve t.rpc ~workers:16 (fun req -> handle t req);
  t

let register_app t ~task ~sink ?(on_error = fun _ _ -> ()) () =
  let a =
    { a_id = t.next_app; a_task = task; a_sink = sink; a_error = on_error }
  in
  t.next_app <- t.next_app + 1;
  Hashtbl.replace t.apps a.a_id a;
  Psd_mach.Task.on_exit task (fun () ->
      Psd_sim.Engine.spawn (eng t) ~name:"task-exit-cleanup" (fun () ->
          ignore (handle_task_exited t ~app_id:a.a_id)));
  a
