let get_u8 b i = Char.code (Bytes.get b i)
let set_u8 b i v = Bytes.set b i (Char.chr (v land 0xff))

let get_u16 b i = Bytes.get_uint16_be b i
let set_u16 b i v = Bytes.set_uint16_be b i (v land 0xffff)

let get_u32 b i = Bytes.get_int32_be b i
let set_u32 b i v = Bytes.set_int32_be b i v

let get_u32i b i = Int32.to_int (Bytes.get_int32_be b i) land 0xffffffff

let set_u32i b i v = Bytes.set_int32_be b i (Int32.of_int v)

let blit_string s b off = Bytes.blit_string s 0 b off (String.length s)

let hexdump b ~off ~len =
  let buf = Buffer.create (len * 4) in
  let line_start = ref off in
  let stop = off + len in
  while !line_start < stop do
    let n = min 16 (stop - !line_start) in
    Buffer.add_string buf (Printf.sprintf "%04x  " (!line_start - off));
    for i = 0 to 15 do
      if i < n then
        Buffer.add_string buf
          (Printf.sprintf "%02x " (get_u8 b (!line_start + i)))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_char buf ' ';
    for i = 0 to n - 1 do
      let c = Bytes.get b (!line_start + i) in
      Buffer.add_char buf (if c >= ' ' && c < '\x7f' then c else '.')
    done;
    Buffer.add_char buf '\n';
    line_start := !line_start + 16
  done;
  Buffer.contents buf
