type t = {
  mutable samples : float list;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
  mutable sum : float;
  mutable sorted : float array option;
}

let create () =
  {
    samples = [];
    n = 0;
    mean = 0.;
    m2 = 0.;
    mn = infinity;
    mx = neg_infinity;
    sum = 0.;
    sorted = None;
  }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let min t = if t.n = 0 then nan else t.mn

let max t = if t.n = 0 then nan else t.mx

let stddev t =
  if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.n = 0 then nan
  else begin
    let a = sorted t in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int t.n)) - 1
    in
    a.(Stdlib.max 0 (Stdlib.min (t.n - 1) rank))
  end

let total t = t.sum

(* Named-counter rendering shared by the workload reports: only the
   counters that actually fired are worth a reader's attention. *)
let pp_counters fmt counters =
  match List.filter (fun (_, v) -> v <> 0) counters with
  | [] -> Format.pp_print_string fmt "none"
  | live ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ' ')
      (fun fmt (k, v) -> Format.fprintf fmt "%s=%d" k v)
      fmt live
