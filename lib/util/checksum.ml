type acc = int

let empty = 0

let add_u16 acc w = acc + (w land 0xffff)

let fold16 v =
  let v = ref v in
  while !v lsr 16 <> 0 do
    v := (!v land 0xffff) + (!v lsr 16)
  done;
  !v

(* One's-complement sums commute with byte order (RFC 1071 §2.B):
   swap16 x ≡ 256·x (mod 0xffff), so a sum of byte-swapped words, folded
   and swapped back, equals the big-endian sum modulo 0xffff — and is
   zero exactly when the big-endian sum is. That lets the inner loop read
   native-endian 64-bit words (four 16-bit lanes per load) regardless of
   host byte order, correcting once at the end. *)
let swap16 v = ((v land 0xff) lsl 8) lor ((v lsr 8) land 0xff)

let add_bytes acc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.add_bytes";
  let acc = ref acc in
  let i = ref off in
  let stop = off + len in
  if len >= 32 then begin
    (* Word-at-a-time: pairs are consumed from [off], so the 16-bit lanes
       of each 64-bit load coincide with the logical word stream whatever
       the buffer's memory alignment. Splitting each word into 32-bit
       halves keeps the running sum far below OCaml's 63-bit int range
       (2^32 per half; a 64 KB packet contributes < 2^46). *)
    let sum = ref 0 in
    while !i + 8 <= stop do
      let w = Bytes.get_int64_ne b !i in
      sum :=
        !sum
        + Int64.to_int (Int64.logand w 0xFFFF_FFFFL)
        + Int64.to_int (Int64.shift_right_logical w 32);
      i := !i + 8
    done;
    let folded = fold16 !sum in
    acc := !acc + if Sys.big_endian then folded else swap16 folded
  end;
  while !i + 2 <= stop do
    acc := !acc + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Bytes.get_uint8 b !i lsl 8);
  !acc

(* Folding a range that begins at an odd offset of the logical word
   stream: sum it as if even-aligned, then swap — by the same RFC 1071
   §2.B byte-order commutation the word-at-a-time loop relies on. This
   is what lets a checksum run over an mbuf chain whose segment
   boundaries fall on odd bytes without copying to realign. *)
let add_bytes_odd acc b ~off ~len =
  acc + swap16 (fold16 (add_bytes 0 b ~off ~len))

let finish acc = lnot (fold16 acc) land 0xffff

let of_bytes b ~off ~len = finish (add_bytes empty b ~off ~len)

let valid b ~off ~len = of_bytes b ~off ~len = 0

(* RFC 1624: HC' = ~(~HC + ~m + m'). *)
let update ~cksum ~old ~new_ =
  finish
    ((lnot cksum land 0xffff) + (lnot old land 0xffff) + (new_ land 0xffff))
