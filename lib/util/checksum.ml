type acc = int

let empty = 0

let add_u16 acc w = acc + (w land 0xffff)

let add_bytes acc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.add_bytes";
  let acc = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + (Char.code (Bytes.get b !i) lsl 8)
           + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

let of_bytes b ~off ~len = finish (add_bytes empty b ~off ~len)

let valid b ~off ~len = of_bytes b ~off ~len = 0
