(** One's-complement Internet checksum (RFC 1071).

    Used by the IP, TCP and UDP layers. The incremental interface lets a
    caller checksum a pseudo-header followed by a payload without
    materialising them contiguously. *)

type acc
(** Partial checksum state. *)

val empty : acc
(** The checksum of zero bytes. *)

val add_bytes : acc -> Bytes.t -> off:int -> len:int -> acc
(** [add_bytes acc b ~off ~len] folds [len] bytes of [b] starting at [off]
    into [acc]. Successive calls must supply an even number of bytes except
    for the final call (odd trailing bytes are padded per RFC 1071).
    @raise Invalid_argument if the range is out of bounds. *)

val add_u16 : acc -> int -> acc
(** Fold one 16-bit big-endian word into the accumulator. *)

val add_bytes_odd : acc -> Bytes.t -> off:int -> len:int -> acc
(** Like {!add_bytes}, but for a range that starts at an {e odd} byte
    offset of the logical word stream being checksummed (RFC 1071 §2.B
    byte-swap identity). Lets segmented buffers be summed in place even
    when segment boundaries are odd-aligned. *)

val finish : acc -> int
(** Final one's-complement fold; the 16-bit checksum value. *)

val of_bytes : Bytes.t -> off:int -> len:int -> int
(** One-shot checksum of a byte range. *)

val valid : Bytes.t -> off:int -> len:int -> bool
(** [valid b ~off ~len] is [true] when the range (which includes a stored
    checksum field) sums to [0xffff], i.e. verifies correctly. *)

val update : cksum:int -> old:int -> new_:int -> int
(** Incremental checksum update (RFC 1624): the stored checksum of a
    buffer after one 16-bit word changes from [old] to [new_], without
    re-summing the buffer — [HC' = ~(~HC + ~m + m')]. Used when a header
    field (e.g. the IP TTL on a forwarding hop) is rewritten in place. *)
