(** Imperative binary min-heap keyed by [int].

    Backbone of the simulator's event queue. Ties are broken by insertion
    order so that events scheduled for the same instant fire FIFO, which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> key:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-keyed element, FIFO among equal keys. *)

val peek_key : 'a t -> int option

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
