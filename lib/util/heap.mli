(** Imperative binary min-heap keyed by [int].

    Backbone of the simulator's event queue. Ties are broken by insertion
    order so that events scheduled for the same instant fire FIFO, which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> key:int -> 'a -> unit

val push_seq : 'a t -> key:int -> seq:int -> 'a -> unit
(** Like {!push} with a caller-supplied tie-break sequence number.
    [seq] must be strictly greater than every seq currently in the
    heap; used when several queues share one monotone counter so that
    (key, seq) totally orders entries across all of them. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-keyed element, FIFO among equal keys. *)

val peek_key : 'a t -> int option

(** [min_key h] is the smallest key, or [max_int] when empty.
    Allocation-free variant of {!peek_key} for hot paths. *)
val min_key : 'a t -> int

val min_seq : 'a t -> int
(** Tie-break seq of the minimum entry, or [max_int] when empty. *)

(** [pop_min h] removes and returns the minimum entry's value without
    allocating. Raises [Invalid_argument] on an empty heap; pair with
    {!min_key} or {!is_empty}. *)
val pop_min : 'a t -> 'a

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit

val pushes : 'a t -> int
(** Total number of pushes over the heap's lifetime (diagnostics). *)
