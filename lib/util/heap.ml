(* Min-heap keyed by (key, seq): seq is a monotonically increasing
   push counter, so entries with equal keys pop in FIFO order — the
   engine's same-instant determinism contract.

   Layout notes, because this sits under every simulated event:
   - 4-ary: children of [i] are [4i+1 .. 4i+4]. The comparator is a
     strict total order (unique [seq] breaks every key tie), so any
     correct heap shape yields the same pop sequence — arity is purely
     a constant-factor choice; four-way nodes halve sift depth and
     keep a node's children in adjacent slots.
   - Parallel unboxed arrays: keys and seqs live in int arrays, so the
     sift loops compare without dereferencing boxed entry records (and
     without write barriers when they move); values are only moved,
     never examined.
   - Both sifts bubble a hole instead of swapping. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable n : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; n = 0; next_seq = 0 }

let grow h filler =
  let cap = max 16 (2 * Array.length h.keys) in
  let keys = Array.make cap 0
  and seqs = Array.make cap 0
  and vals = Array.make cap filler in
  Array.blit h.keys 0 keys 0 h.n;
  Array.blit h.seqs 0 seqs 0 h.n;
  Array.blit h.vals 0 vals 0 h.n;
  h.keys <- keys;
  h.seqs <- seqs;
  h.vals <- vals

(* [seq] must exceed every seq currently in the heap — callers either
   let [push] draw from the internal counter or supply their own
   monotone counter shared with other queues (the engine shares one
   counter between the heap and the timing wheel so that cross-queue
   (key, seq) order is a total order over all events). *)
let push_seq h ~key ~seq value =
  if seq >= h.next_seq then h.next_seq <- seq + 1;
  if h.n = Array.length h.keys then grow h value;
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  (* hole bubble-up; the fresh element holds the largest seq, so a key
     tie with a parent is never "less" and the key compare suffices *)
  let i = ref h.n in
  h.n <- h.n + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if key < keys.(parent) then begin
      keys.(!i) <- keys.(parent);
      seqs.(!i) <- seqs.(parent);
      vals.(!i) <- vals.(parent);
      i := parent
    end
    else continue := false
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  vals.(!i) <- value

let push h ~key value = push_seq h ~key ~seq:h.next_seq value

let pop_min h =
  if h.n = 0 then invalid_arg "Heap.pop_min: empty";
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  let top = vals.(0) in
  let n = h.n - 1 in
  h.n <- n;
  if n > 0 then begin
    (* hole bubble-down: place the displaced last element *)
    let ek = keys.(n) and es = seqs.(n) and ev = vals.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let base = (4 * !i) + 1 in
      if base >= n then continue := false
      else begin
        let m = ref base in
        let last = min (base + 3) (n - 1) in
        for c = base + 1 to last do
          if
            keys.(c) < keys.(!m)
            || (keys.(c) = keys.(!m) && seqs.(c) < seqs.(!m))
          then m := c
        done;
        let m = !m in
        if keys.(m) < ek || (keys.(m) = ek && seqs.(m) < es) then begin
          keys.(!i) <- keys.(m);
          seqs.(!i) <- seqs.(m);
          vals.(!i) <- vals.(m);
          i := m
        end
        else continue := false
      end
    done;
    keys.(!i) <- ek;
    seqs.(!i) <- es;
    vals.(!i) <- ev
  end;
  top

let pop h =
  if h.n = 0 then None
  else
    let key = h.keys.(0) in
    Some (key, pop_min h)

let peek_key h = if h.n = 0 then None else Some h.keys.(0)

(* allocation-free peek for hot paths; empty heap reads as +inf *)
let min_key h = if h.n = 0 then max_int else h.keys.(0)

let min_seq h = if h.n = 0 then max_int else h.seqs.(0)

let size h = h.n

let is_empty h = h.n = 0

let clear h =
  h.n <- 0;
  h.keys <- [||];
  h.seqs <- [||];
  h.vals <- [||]

let pushes h = h.next_seq
