type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable a : 'a entry array;
  mutable n : int;
  mutable next_seq : int;
}

let create () = { a = [||]; n = 0; next_seq = 0 }

let less x y = x.key < y.key || (x.key = y.key && x.seq < y.seq)

let grow h =
  let cap = max 16 (2 * Array.length h.a) in
  let a = Array.make cap h.a.(0) in
  Array.blit h.a 0 a 0 h.n;
  h.a <- a

let push h ~key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.n = Array.length h.a then
    if h.n = 0 then h.a <- Array.make 16 e else grow h;
  (* sift up *)
  let i = ref h.n in
  h.n <- h.n + 1;
  h.a.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less h.a.(!i) h.a.(parent) then begin
      let tmp = h.a.(parent) in
      h.a.(parent) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.n = 0 then None
  else begin
    let top = h.a.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.a.(0) <- h.a.(h.n);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && less h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.n && less h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end

let peek_key h = if h.n = 0 then None else Some h.a.(0).key

let size h = h.n

let is_empty h = h.n = 0

let clear h =
  h.n <- 0;
  h.a <- [||]
