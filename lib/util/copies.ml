(* Wall-clock copy accounting: every remaining [Bytes.blit]-class data
   copy on the packet datapath is charged to one of these sites, so the
   placements' copy discipline (paper Section 4: SHM-IPF copies the body
   exactly once) is measurable rather than asserted. The counters are
   global and observational only — nothing on the virtual-time side reads
   them — so they can never perturb simulated results. *)

type site =
  | Tx_copyin (* user data copied into mbufs at the socket layer *)
  | Tx_retain (* send-queue range copied for (re)transmission *)
  | Tx_frame (* mbuf chain flattened into the outgoing frame *)
  | Tx_rpc (* send payload copied through RPC messages to the server *)
  | Wire (* per-receiver frame copy made by the shared segment *)
  | Rx_device (* driver copy out of device memory (full-copy rx mode) *)
  | Rx_ipc (* per-packet message: copy into and out of the IPC msg *)
  | Rx_ring (* packet copied into the shared-memory ring *)
  | Rx_flatten (* non-contiguous chain flattened for header decode *)
  | Rx_copyout (* received data copied out to the application string *)
  | Rx_rpc (* received payload copied through RPC messages *)
  | Rx_loan (* NEWAPI: packet placed in application-loaned memory *)
  | Tx_owned (* NEWAPI: caller-owned buffer aliased for transmit *)

let site_index = function
  | Tx_copyin -> 0
  | Tx_retain -> 1
  | Tx_frame -> 2
  | Tx_rpc -> 3
  | Wire -> 4
  | Rx_device -> 5
  | Rx_ipc -> 6
  | Rx_ring -> 7
  | Rx_flatten -> 8
  | Rx_copyout -> 9
  | Rx_rpc -> 10
  | Rx_loan -> 11
  | Tx_owned -> 12

let site_name = function
  | Tx_copyin -> "tx_copyin"
  | Tx_retain -> "tx_retain"
  | Tx_frame -> "tx_frame"
  | Tx_rpc -> "tx_rpc"
  | Wire -> "wire"
  | Rx_device -> "rx_device"
  | Rx_ipc -> "rx_ipc"
  | Rx_ring -> "rx_ring"
  | Rx_flatten -> "rx_flatten"
  | Rx_copyout -> "rx_copyout"
  | Rx_rpc -> "rx_rpc"
  | Rx_loan -> "rx_loan"
  | Tx_owned -> "tx_owned"

let all_sites =
  [
    Tx_copyin; Tx_retain; Tx_frame; Tx_rpc; Wire; Rx_device; Rx_ipc;
    Rx_ring; Rx_flatten; Rx_copyout; Rx_rpc; Rx_loan; Tx_owned;
  ]

let n_sites = List.length all_sites

(* Atomic: with the engine sharded across domains (Psd_sim.Shard),
   several domains charge copy sites concurrently. Totals are sums, so
   they are independent of interleaving — a sharded run reports the
   same counts as its single-domain replay. *)
let copies_a = Array.init n_sites (fun _ -> Atomic.make 0)

let bytes_a = Array.init n_sites (fun _ -> Atomic.make 0)

let count site ?(n = 1) bytes =
  let i = site_index site in
  ignore (Atomic.fetch_and_add copies_a.(i) n);
  ignore (Atomic.fetch_and_add bytes_a.(i) bytes)

let copies site = Atomic.get copies_a.(site_index site)

let bytes site = Atomic.get bytes_a.(site_index site)

let reset () =
  Array.iter (fun a -> Atomic.set a 0) copies_a;
  Array.iter (fun a -> Atomic.set a 0) bytes_a

let all () =
  List.map (fun s -> (site_name s, copies s, bytes s)) all_sites

(* The copies a received packet body undergoes between the shared wire's
   delivery and the receiving socket buffer — the quantity the paper's
   placements differ in. [Wire] (the simulated medium itself) and
   [Rx_copyout] (the API's final copy into the app string, identical
   everywhere) are excluded. [Rx_loan] is excluded too: under the NEWAPI
   the delivery lands directly in application-loaned shared memory, so
   the deposit *is* the API boundary crossing — the loan site records
   that the bytes became application-visible, taking the place of the
   excluded [Rx_copyout], not adding a body copy. *)
let rx_datapath_sites = [ Rx_device; Rx_ipc; Rx_ring; Rx_flatten; Rx_rpc ]

let rx_datapath_copies () =
  List.fold_left (fun acc s -> acc + copies s) 0 rx_datapath_sites

(* The copies a transmitted packet body undergoes between the user's
   send buffer and the wire. Unlike the rx direction, the final gather
   into the outgoing frame ([Tx_frame]) is included: it is the one
   unavoidable body copy of the zero-copy send path, so "SHM-IPF tx = 1"
   means exactly the frame gather and nothing else. [Wire] stays
   excluded (the medium itself, identical everywhere), and so is
   [Tx_owned]: aliasing a caller-owned buffer as a shared view moves no
   bytes — it is the NEWAPI's ownership-transfer event, the analogue of
   the copy-in it replaces. *)
let tx_datapath_sites = [ Tx_copyin; Tx_retain; Tx_frame; Tx_rpc ]

let tx_datapath_copies () =
  List.fold_left (fun acc s -> acc + copies s) 0 tx_datapath_sites
