(** Deterministic pseudo-random numbers (splitmix64).

    The simulator must be reproducible run-to-run, so all randomness
    (initial TCP sequence numbers, ephemeral ports, payload patterns)
    flows through an explicitly seeded generator. *)

type t

val create : seed:int -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int32 : t -> int32
(** Uniform 32-bit value (e.g. TCP initial sequence numbers). *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** Derive an independent generator (for per-host streams). *)
