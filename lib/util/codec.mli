(** Big-endian fixed-width integer accessors over [Bytes.t].

    All network headers in this project are encoded with these helpers.
    Every function raises [Invalid_argument] on out-of-bounds access. *)

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit

val get_u16 : Bytes.t -> int -> int
(** Big-endian 16-bit read. *)

val set_u16 : Bytes.t -> int -> int -> unit
(** Big-endian 16-bit write; the value is truncated to 16 bits. *)

val get_u32 : Bytes.t -> int -> int32
val set_u32 : Bytes.t -> int -> int32 -> unit

val get_u32i : Bytes.t -> int -> int
(** 32-bit read as a non-negative OCaml [int]. *)

val set_u32i : Bytes.t -> int -> int -> unit
(** 32-bit write from an OCaml [int]; truncated to 32 bits. *)

val blit_string : string -> Bytes.t -> int -> unit
(** [blit_string s b off] copies all of [s] into [b] at [off]. *)

val hexdump : Bytes.t -> off:int -> len:int -> string
(** Conventional 16-bytes-per-line hex/ASCII rendering for diagnostics. *)
