(** Datapath copy accounting.

    Global, purely observational counters charged at every remaining
    physical data copy ([Bytes.blit]/[Bytes.copy]/[to_string]) on the
    packet path. They quantify the copy discipline the paper argues
    about — SHM-IPF performs exactly one packet-body copy, the
    server-based placement the most — without touching virtual time.
    The counters are atomic, so charges from several domains of a
    sharded run ({!Psd_sim.Shard}) are never lost; being sums, the
    totals are also independent of domain interleaving. *)

type site =
  | Tx_copyin  (** user data copied into mbufs at the socket layer *)
  | Tx_retain  (** send-queue range copied for (re)transmission *)
  | Tx_frame  (** mbuf chain flattened into the outgoing frame *)
  | Tx_rpc  (** send payload copied through RPC messages to the server *)
  | Wire  (** per-receiver frame copy made by the shared segment *)
  | Rx_device  (** driver copy out of device memory (full-copy rx mode) *)
  | Rx_ipc  (** per-packet message: copy into and out of the IPC msg *)
  | Rx_ring  (** packet copied into the shared-memory ring *)
  | Rx_flatten  (** non-contiguous chain flattened for header decode *)
  | Rx_copyout  (** received data copied out to the application string *)
  | Rx_rpc  (** received payload copied through RPC messages *)
  | Rx_loan
      (** NEWAPI: packet deposited directly in application-loaned shared
          memory. Not a body copy — it records the moment the bytes
          became application-visible, replacing the [Rx_copyout] the
          loaned receive path no longer performs. Excluded from
          {!rx_datapath_copies}. *)
  | Tx_owned
      (** NEWAPI: caller-owned send buffer aliased as a shared view
          (ownership transfer until completion). Moves no bytes;
          excluded from {!tx_datapath_copies}. *)

val count : site -> ?n:int -> int -> unit
(** [count site ~n bytes] records [n] copies (default 1) moving [bytes]
    bytes in total at [site]. *)

val copies : site -> int

val bytes : site -> int

val reset : unit -> unit

val all_sites : site list

val site_name : site -> string

val all : unit -> (string * int * int) list
(** [(name, copies, bytes)] for every site, in declaration order. *)

val rx_datapath_copies : unit -> int
(** Total packet-body copies between wire delivery and the receiving
    socket buffer (excludes the wire copy itself, the final API copyout
    — identical across placements — and the NEWAPI loan deposit, which
    is the API boundary itself, not a body copy). *)

val tx_datapath_copies : unit -> int
(** Total packet-body copies between the user's send buffer and the
    wire ([Tx_copyin] + [Tx_retain] + [Tx_frame] + [Tx_rpc]). The frame
    gather is included: it is the single body copy the zero-copy send
    path is allowed, so a placement whose tx count is 1 touched the
    payload only while writing the outgoing frame. *)
