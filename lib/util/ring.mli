(** Bounded FIFO ring buffer.

    Models the fixed-size packet rings used by the shared-memory
    kernel/application channel: producers fail (drop) when the ring is
    full rather than blocking. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] appends [x]; [false] (and no change) when full. *)

val pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate oldest-first without consuming. *)
