(** Online summary statistics for benchmark samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val min : t -> float

val max : t -> float

val stddev : t -> float
(** Sample standard deviation (Welford); [0.] for fewer than two samples. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0..100], nearest-rank on the recorded
    samples; [nan] when empty. Samples are retained, so this is exact. *)

val total : t -> float
(** Sum of all samples. *)

val pp_counters : Format.formatter -> (string * int) list -> unit
(** Render named event counters compactly, omitting the zero ones:
    ["rexmt=12 dup_acks=31"], or ["none"] when nothing fired. *)
