open Psd_util
open Psd_mbuf
open Psd_cost

type datagram = {
  src : Psd_ip.Addr.t;
  src_port : int;
  dst : Psd_ip.Addr.t;
  payload : Mbuf.t;
}

type stats = {
  mutable udp_out : int;
  mutable udp_in : int;
  mutable udp_drop_checksum : int;
  mutable udp_drop_malformed : int;
  mutable udp_drop_no_port : int;
}

type pcb = {
  owner : t;
  mutable port : int;
  mutable peer : (Psd_ip.Addr.t * int) option;
  mutable receive : datagram -> unit;
  mutable dead : bool;
  mutable soft_error : string option;
}

and t = {
  ctx : Ctx.t;
  ip : Psd_ip.Ip.t;
  ports : (int, pcb list) Hashtbl.t;
  mutable unreachable_hook : (src:Psd_ip.Addr.t -> original:Bytes.t -> unit) option;
  st : stats;
}

let header_size = 8

let stats t = t.st

let local_port pcb = pcb.port

let remote pcb = pcb.peer

let set_receive pcb f = pcb.receive <- f

let charge_out t len =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Proto_output
    (plat.Platform.udp_fixed + (2 * t.ctx.Ctx.sync_ns)
    + (plat.Platform.checksum_per_byte * (header_size + len)))

let charge_in t len =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Proto_input
    (plat.Platform.udp_fixed + (2 * t.ctx.Ctx.sync_ns)
    + (plat.Platform.checksum_per_byte * (header_size + len))
    + plat.Platform.mbuf_op)

(* Demultiplex: a connected PCB matching the source exactly wins over a
   wildcard (unconnected) PCB on the same port. *)
let find_pcb t ~port ~src ~src_port =
  match Hashtbl.find_opt t.ports port with
  | None -> None
  | Some pcbs -> (
    let connected =
      List.find_opt
        (fun p ->
          match p.peer with
          | Some (ip, pt) -> Psd_ip.Addr.equal ip src && pt = src_port
          | None -> false)
        pcbs
    in
    match connected with
    | Some p -> Some p
    | None -> List.find_opt (fun p -> p.peer = None) pcbs)

let input t ~(hdr : Psd_ip.Header.t) (m : Mbuf.t) =
  let len = Mbuf.length m in
  charge_in t (max 0 (len - header_size));
  (* fast path: delivered datagrams arrive as one contiguous view, so
     the header, checksum and payload are read in place; only a
     reassembled multi-segment chain still flattens *)
  let flat, base =
    match Mbuf.contiguous m with
    | Some (b, off, _) -> (b, off)
    | None ->
      Psd_util.Copies.count Psd_util.Copies.Rx_flatten len;
      (Mbuf.to_bytes m, 0)
  in
  if len < header_size then
    (* too short to even carry a header: malformed, not a checksum miss *)
    t.st.udp_drop_malformed <- t.st.udp_drop_malformed + 1
  else begin
    let src_port = Codec.get_u16 flat base in
    let dst_port = Codec.get_u16 flat (base + 2) in
    let udp_len = Codec.get_u16 flat (base + 4) in
    let cksum = Codec.get_u16 flat (base + 6) in
    (* A length field shorter than the header or longer than the IP
       payload can never checksum correctly by accident of data — it is
       a framing error, counted apart from checksum mismatches so
       corruption-injection statistics stay trustworthy. *)
    if udp_len < header_size || udp_len > len then
      t.st.udp_drop_malformed <- t.st.udp_drop_malformed + 1
    else begin
    let valid =
      if cksum = 0 then true (* checksum not computed by sender *)
      else begin
        let acc =
          Psd_ip.Header.pseudo_checksum ~src:hdr.Psd_ip.Header.src
            ~dst:hdr.Psd_ip.Header.dst ~proto:Psd_ip.Header.proto_udp
            ~len:udp_len
        in
        let acc = Checksum.add_bytes acc flat ~off:base ~len:udp_len in
        Checksum.finish acc = 0
      end
    in
    if not valid then
      t.st.udp_drop_checksum <- t.st.udp_drop_checksum + 1
    else
      match
        find_pcb t ~port:dst_port ~src:hdr.Psd_ip.Header.src ~src_port
      with
      | None ->
        t.st.udp_drop_no_port <- t.st.udp_drop_no_port + 1;
        (match t.unreachable_hook with
        | Some hook ->
          (* reconstruct the offending IP packet (header + first bytes of
             the datagram) for the ICMP destination-unreachable body *)
          let keep = min len (Psd_ip.Header.size + 8) in
          let original = Bytes.create (Psd_ip.Header.size + keep) in
          Psd_ip.Header.encode_into original ~off:0
            { hdr with Psd_ip.Header.total_len = Psd_ip.Header.size + len };
          Bytes.blit flat base original Psd_ip.Header.size keep;
          hook ~src:hdr.Psd_ip.Header.src
            ~original:(Bytes.sub original 0 (Psd_ip.Header.size + keep))
        | None -> ())
      | Some pcb ->
        t.st.udp_in <- t.st.udp_in + 1;
        (* zero-copy: the payload is a view into the delivered frame *)
        let payload =
          Mbuf.of_bytes_view flat ~off:(base + header_size)
            ~len:(udp_len - header_size)
        in
        pcb.receive
          {
            src = hdr.Psd_ip.Header.src;
            src_port;
            dst = hdr.Psd_ip.Header.dst;
            payload;
          }
    end
  end

let create ~ctx ~ip () =
  let t =
    {
      ctx;
      ip;
      ports = Hashtbl.create 16;
      unreachable_hook = None;
      st =
        {
          udp_out = 0;
          udp_in = 0;
          udp_drop_checksum = 0;
          udp_drop_malformed = 0;
          udp_drop_no_port = 0;
        };
    }
  in
  Psd_ip.Ip.register ip ~proto:Psd_ip.Header.proto_udp (fun ~hdr m ->
      input t ~hdr m);
  t

let bind t ~port ~receive =
  let existing = Option.value (Hashtbl.find_opt t.ports port) ~default:[] in
  (* Two wildcard PCBs on one port would be ambiguous. *)
  if List.exists (fun p -> p.peer = None) existing then Error `Port_in_use
  else begin
    let pcb =
      { owner = t; port; peer = None; receive; dead = false;
        soft_error = None }
    in
    Hashtbl.replace t.ports port (pcb :: existing);
    Ok pcb
  end

let connect pcb ip port = pcb.peer <- Some (ip, port)

let disconnect pcb = pcb.peer <- None

let set_unreachable_hook t f = t.unreachable_hook <- Some f

let take_error pcb =
  let e = pcb.soft_error in
  pcb.soft_error <- None;
  e

(* an ICMP port-unreachable arrived for a datagram we sent to
   [dst]:[port] — surface it on connected PCBs naming that peer *)
let notify_unreachable t ~dst ~port =
  Hashtbl.iter
    (fun _ pcbs ->
      List.iter
        (fun p ->
          match p.peer with
          | Some (ip, pt) when Psd_ip.Addr.equal ip dst && pt = port ->
            p.soft_error <- Some "connection refused"
          | _ -> ())
        pcbs)
    t.ports

let max_datagram = 0xffff - header_size

let send pcb ?dst m =
  let t = pcb.owner in
  let destination = match dst with Some d -> Some d | None -> pcb.peer in
  match destination with
  | None -> Error `No_destination
  | Some (dst_ip, dst_port) ->
    let len = Mbuf.length m in
    if len > max_datagram then Error `Too_big
    else begin
      charge_out t len;
      let udp_len = header_size + len in
      let buf, off = Mbuf.prepend m header_size in
      Codec.set_u16 buf off pcb.port;
      Codec.set_u16 buf (off + 2) dst_port;
      Codec.set_u16 buf (off + 4) udp_len;
      Codec.set_u16 buf (off + 6) 0;
      (* real checksum over pseudo-header + datagram, straight over the
         chain's segments — no flatten *)
      let acc =
        Psd_ip.Header.pseudo_checksum ~src:(Psd_ip.Ip.addr t.ip) ~dst:dst_ip
          ~proto:Psd_ip.Header.proto_udp ~len:udp_len
      in
      let acc = Mbuf.checksum_add m acc in
      let cksum =
        match Checksum.finish acc with 0 -> 0xffff | c -> c
      in
      Codec.set_u16 buf (off + 6) cksum;
      t.st.udp_out <- t.st.udp_out + 1;
      match
        Psd_ip.Ip.output t.ip ~proto:Psd_ip.Header.proto_udp ~dst:dst_ip m
      with
      | Ok () -> Ok ()
      | Error `No_route -> Error `No_route
      | Error (`Too_big | `Would_fragment) -> Error `Too_big
    end

let close t pcb =
  pcb.dead <- true;
  match Hashtbl.find_opt t.ports pcb.port with
  | None -> ()
  | Some pcbs -> (
    match List.filter (fun p -> p != pcb) pcbs with
    | [] -> Hashtbl.remove t.ports pcb.port
    | rest -> Hashtbl.replace t.ports pcb.port rest)

