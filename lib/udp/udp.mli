(** UDP (RFC 768).

    One [Udp.t] is the UDP instance of one protocol stack. UDP is
    stateless on the wire; a PCB only names a local endpoint, an optional
    connected peer, and a receive callback. Migrating a UDP session
    between stacks (paper Section 3.2) therefore amounts to rebinding the
    port in the destination stack — there are no sequence variables to
    carry. *)

type t
type pcb

type datagram = {
  src : Psd_ip.Addr.t;
  src_port : int;
  dst : Psd_ip.Addr.t;
  payload : Psd_mbuf.Mbuf.t;
}

type stats = {
  mutable udp_out : int;
  mutable udp_in : int;
  mutable udp_drop_checksum : int;
      (** plausibly-framed datagrams whose internet checksum failed *)
  mutable udp_drop_malformed : int;
      (** datagrams whose length field is shorter than the header or
          longer than the IP payload (framing damage, not payload
          damage) *)
  mutable udp_drop_no_port : int;
}

val header_size : int
(** 8 bytes. *)

val create : ctx:Psd_cost.Ctx.t -> ip:Psd_ip.Ip.t -> unit -> t
(** Registers the instance as the IP protocol-17 handler of [ip]. *)

val bind :
  t ->
  port:int ->
  receive:(datagram -> unit) ->
  (pcb, [ `Port_in_use ]) result
(** Create a PCB on a local port. Port allocation policy (uniqueness
    across an entire host when stacks live in applications) belongs to
    the operating-system server, which calls this with a port it has
    reserved. *)

val connect : pcb -> Psd_ip.Addr.t -> int -> unit
(** Fix the remote endpoint: [send] may omit the destination and only
    datagrams from this peer are delivered. *)

val disconnect : pcb -> unit

val send :
  pcb ->
  ?dst:Psd_ip.Addr.t * int ->
  Psd_mbuf.Mbuf.t ->
  (unit, [ `No_destination | `No_route | `Too_big ]) result
(** Transmit one datagram. [dst] must be given for unconnected PCBs.
    Datagrams above the IP limit fail with [`Too_big]; larger-than-MTU
    payloads are fragmented by IP. *)

val close : t -> pcb -> unit

val local_port : pcb -> int

val remote : pcb -> (Psd_ip.Addr.t * int) option

val set_receive : pcb -> (datagram -> unit) -> unit

val set_unreachable_hook :
  t -> (src:Psd_ip.Addr.t -> original:Bytes.t -> unit) -> unit
(** Called when a datagram arrives for a port with no listener; the
    reconstructed offending IP packet is handed over so the caller (the
    stack's ICMP engine) can emit a port-unreachable. *)

val notify_unreachable : t -> dst:Psd_ip.Addr.t -> port:int -> unit
(** An ICMP port-unreachable arrived for traffic this instance sent to
    [dst]:[port]: record a soft error on every connected PCB naming that
    peer (BSD semantics — unconnected sockets are not told). *)

val take_error : pcb -> string option
(** Read and clear the PCB's pending soft error. *)

val stats : t -> stats
