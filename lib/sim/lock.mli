(** Fiber mutex.

    Serialises a protocol stack the way splnet does in BSD: packet input,
    timers and user calls mutate shared protocol state under one lock.
    Fibers are cooperative, so the lock only matters across blocking
    points (CPU charges, IPC) — but those are exactly where interleaving
    would corrupt a TCB. *)

type t

val create : Engine.t -> t

val acquire : t -> unit
(** Block until the lock is free, then take it. Not reentrant. *)

val release : t -> unit
(** @raise Invalid_argument if the lock is not held. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val wait : t -> Cond.t -> unit
(** Atomically release the lock, wait for a signal on the condition, and
    reacquire — the POSIX [pthread_cond_wait] shape. The caller must hold
    the lock and must re-check its predicate on return. *)

val holder_active : t -> bool
