(** Conservative domain-parallel simulation: N single-domain {!Engine}
    instances (one per host partition) advanced in barrier-synchronized
    rounds. Each round, every shard executes all local events below a
    conservative horizon derived from the other shards' published next
    event keys plus per-link lookahead (wire serialization +
    propagation delay), then exchanges cross-shard arrivals through
    per-pair FIFO buffers.

    The merged dispatch order is {e bit-identical} to running the same
    partitioned simulation without domains: arrivals are injected at
    round start sorted by (key, source shard, FIFO index) and draw
    their sequence numbers from the receiving engine at injection, so
    the (key, seq) total order every engine already maintains is a pure
    function of the inputs. [~domains:false] steps the identical round
    protocol sequentially — it is the reference the parallel mode is
    tested against. *)

type t

val create : ?seed:int -> n:int -> unit -> t
(** [create ~n ()] builds [n] engines with per-shard derived seeds.
    Shard [i]'s engine may only be touched (spawn/schedule/inspect) by
    code running on shard [i]. *)

val n : t -> int

val engine : t -> int -> Engine.t
(** The engine owned by a shard — use it to build that shard's hosts,
    wires and fibers before running. *)

val set_lookahead : t -> src:int -> dst:int -> int -> unit
(** Declare a directed link: events generated on [src] for [dst] are
    promised to carry keys at least the lookahead (>= 1 ns) ahead of
    [src]'s clock. Called once per direction per wire; repeated calls
    keep the minimum. *)

val lookahead : t -> src:int -> dst:int -> int
(** Registered lookahead, [max_int] if the pair has no link. *)

val post : t -> src:int -> dst:int -> key:int -> (unit -> unit) -> unit
(** Deliver a callback to shard [dst] at absolute virtual time [key].
    [src = dst] schedules directly (sequence allocated now, exactly
    like a local schedule). Cross-shard posts must satisfy the declared
    lookahead: [key >= now(src) + lookahead(src, dst)].
    @raise Invalid_argument on a lookahead violation or unknown link. *)

val run_until : ?domains:bool -> t -> int -> unit
(** Advance every shard to the given absolute virtual time.
    [~domains:true] (default) runs one OCaml domain per shard;
    [~domains:false] steps the same rounds on the calling domain.
    @raise Failure if any fiber failed (aggregated across shards). *)

val run_for : ?domains:bool -> t -> int -> unit
(** Relative form of {!run_until} (from shard 0's clock, which equals
    every other shard's clock between runs). *)

val run : ?domains:bool -> t -> unit
(** Run until no shard has pending events. *)

val now : t -> int
(** Virtual time (shard 0's clock; all clocks agree between runs). *)

val rounds : t -> int
(** Cumulative conservative windows executed (diagnostics). *)

val posted : t -> int
(** Cumulative cross-shard deliveries (diagnostics). *)
