(** Hierarchical timing wheel (Varghese-style) with heap-identical
    ordering.

    Each entry carries a [(key, seq)] pair; {!pop_min} yields entries in
    strict [(key, seq)] order, matching the 4-ary event heap's FIFO
    tie-break exactly, so timers may live here instead of the heap
    without changing a simulation's event order. Insert, cancel and
    re-arm are O(1); popping amortises the cursor cascade.

    Restriction that keeps placement O(1): the wheel's internal time
    only advances to the key of the entry being popped (the current
    minimum). Consequently every [insert]/[reinsert] key must be
    [>= min_key] of the popped history — in the engine's use, keys are
    [now + dt] with [dt >= 0], which always satisfies this. *)

type 'a t

type 'a node
(** A timer entry; reusable across re-arms via {!reinsert}. *)

val create : dummy:'a -> unit -> 'a t
(** [dummy] is an inert value used to blank popped/cancelled slots so
    the wheel never retains a fired callback. *)

val insert : 'a t -> key:int -> seq:int -> 'a -> 'a node
(** Add an entry. [seq] must be strictly greater than every seq already
    inserted (the engine's global push counter provides this); equal
    keys pop in seq order. *)

val reinsert : 'a t -> 'a node -> key:int -> seq:int -> 'a -> unit
(** Re-arm a node that is not currently linked (never armed, fired, or
    cancelled). Allocation-free. *)

val cancel : 'a t -> 'a node -> unit
(** Unlink an entry. O(1), idempotent, no-op after firing. *)

val acquire : 'a t -> key:int -> seq:int -> 'a -> 'a node
(** Like {!insert}, but serves the node from the wheel's internal free
    list when one is available, so steady-state arm/fire churn is
    allocation-free. The node is owned by the caller until {!release}. *)

val release : 'a t -> 'a node -> unit
(** Unlink the node if still linked and return it to the free list. The
    caller must drop its reference afterwards: releasing a node twice,
    or using it after release, corrupts the pool. *)

val pool_size : 'a t -> int
(** Number of nodes currently parked on the free list. *)

val active : 'a node -> bool
(** Whether the node is currently linked (armed and not yet fired). *)

val min_key : 'a t -> int
(** Smallest key, or [max_int] when empty. Amortised O(1). *)

val min_seq : 'a t -> int
(** Seq of the minimum entry, or [max_int] when empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the minimum entry's value, advancing the wheel to
    its key. Raises [Invalid_argument] when empty. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val now : 'a t -> int
(** The wheel's internal cursor time (diagnostics). *)
