(* Hierarchical timing wheel (Varghese & Lauck), specialised for the
   engine's determinism contract: every entry carries the same (key, seq)
   pair the 4-ary event heap would have given it, and [pop_min] yields
   entries in exactly (key, seq) order — so a run whose timers live here
   is event-for-event identical to one whose timers live in the heap.

   Layout: [levels] levels of [slots] buckets; level [k] bucket [s]
   holds entries whose key agrees with the wheel cursor [cur] on every
   base-[slots] digit above [k] and whose digit [k] is [s]. Equivalently,
   an entry lives at the level of the highest base-[slots] digit where
   its key differs from [cur] (level 0 if none). 8 levels of 256 slots
   cover the full 62-bit non-negative key space.

   The wheel only ever advances [cur] to the key of the entry being
   popped — i.e. to the current minimum. That restriction is what keeps
   placement cheap: advancing to the minimum can only change cursor
   digits at or below the popped entry's level, and any entry that the
   digit change would misplace would have to sort below the minimum —
   a contradiction — so only the boundary buckets on the advance path
   need cascading, and every other entry's placement stays valid.

   Tie-breaking: a level-0 bucket is single-key (all digits of the key
   are pinned by cursor agreement + the slot index), so its FIFO list
   order is insertion order = seq order, given the engine's monotone
   seq counter. Cascades walk buckets in list order and append at the
   tail, preserving relative order of equal keys across levels.

   Buckets are circular doubly-linked lists through a sentinel, so
   cancel is O(1), allocation-free, and idempotent; nodes are reusable
   via [reinsert] so a re-armed timer costs no allocation. *)

type 'a node = {
  mutable key : int;
  mutable seq : int;
  mutable value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable lvl : int; (* current level while linked *)
  mutable linked : bool;
}

let slot_bits = 8
let slots = 1 lsl slot_bits
let levels = 8
let slot_mask = slots - 1

type 'a t = {
  dummy : 'a;
  buckets : 'a node array array; (* [level].[slot] sentinels *)
  level_count : int array; (* live entries per level *)
  mutable cur : int; (* wheel time; all live keys are >= cur *)
  mutable count : int;
  (* Exact cached minimum when [Some]; [None] means empty or unknown
     (recomputed lazily by [min_node]). *)
  mutable cached : 'a node option;
  (* Node pool: singly linked through [next] (prev stays self),
     terminated by the [nil] sentinel. [acquire]/[release] recycle
     nodes here so arm/fire/re-arm churn allocates nothing and an idle
     timer pins no node. *)
  nil : 'a node;
  mutable free : 'a node;
  mutable free_len : int;
}

let make_sentinel dummy =
  let rec s =
    { key = 0; seq = 0; value = dummy; prev = s; next = s; lvl = -1;
      linked = false }
  in
  s

let create ~dummy () =
  let nil = make_sentinel dummy in
  {
    dummy;
    buckets =
      Array.init levels (fun _ ->
          Array.init slots (fun _ -> make_sentinel dummy));
    level_count = Array.make levels 0;
    cur = 0;
    count = 0;
    cached = None;
    nil;
    free = nil;
    free_len = 0;
  }

let size t = t.count

let is_empty t = t.count = 0

let now t = t.cur

let active n = n.linked

let slot_of key k = (key lsr (k * slot_bits)) land slot_mask

(* Highest base-[slots] digit where [key] differs from [cur]; 0 if none. *)
let level_of t key =
  let d = key lxor t.cur in
  if d <= slot_mask then 0
  else begin
    let k = ref 0 and d = ref d in
    while !d > slot_mask do
      incr k;
      d := !d lsr slot_bits
    done;
    !k
  end

let link_tail t n =
  let k = n.lvl in
  let b = t.buckets.(k).(slot_of n.key k) in
  n.prev <- b.prev;
  n.next <- b;
  b.prev.next <- n;
  b.prev <- n;
  n.linked <- true;
  t.level_count.(k) <- t.level_count.(k) + 1

let unlink t n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n;
  n.linked <- false;
  t.level_count.(n.lvl) <- t.level_count.(n.lvl) - 1

(* (key, seq) strict order; [b] beats [a] when strictly smaller *)
let beats ~key ~seq a = key < a.key || (key = a.key && seq < a.seq)

let place t n =
  n.lvl <- level_of t n.key;
  link_tail t n;
  t.count <- t.count + 1;
  match t.cached with
  | Some m -> if beats ~key:n.key ~seq:n.seq m then t.cached <- Some n
  | None -> if t.count = 1 then t.cached <- Some n
(* count > 1 with no cache: stay lazy; min_node recomputes *)

let insert t ~key ~seq value =
  if key < t.cur then invalid_arg "Wheel.insert: key precedes wheel time";
  let rec n =
    { key; seq; value; prev = n; next = n; lvl = 0; linked = false }
  in
  place t n;
  n

let reinsert t n ~key ~seq value =
  if n.linked then invalid_arg "Wheel.reinsert: node still linked";
  if key < t.cur then invalid_arg "Wheel.reinsert: key precedes wheel time";
  n.key <- key;
  n.seq <- seq;
  n.value <- value;
  place t n

let cancel t n =
  if n.linked then begin
    unlink t n;
    t.count <- t.count - 1;
    n.value <- t.dummy;
    (match t.cached with
    | Some m when m == n -> t.cached <- None
    | _ -> ())
  end

(* Pooled variant of [insert]: serve from the free list when possible.
   The returned node is owned by the caller until [release]d. *)
let acquire t ~key ~seq value =
  if t.free == t.nil then insert t ~key ~seq value
  else begin
    let n = t.free in
    t.free <- n.next;
    t.free_len <- t.free_len - 1;
    n.prev <- n;
    n.next <- n;
    reinsert t n ~key ~seq value;
    n
  end

(* Unlink (if still linked) and return the node to the pool. The caller
   must drop its reference: releasing the same node twice corrupts the
   free list. *)
let release t n =
  cancel t n;
  n.next <- t.free;
  t.free <- n;
  t.free_len <- t.free_len + 1

let pool_size t = t.free_len

(* Scan for the minimum entry. Levels are scanned bottom-up and, within
   a level, slots in increasing order from the cursor digit: level-j
   entries always sort below level-k entries for j < k (they agree with
   [cur] on strictly more high digits), and within a level the slot
   index orders the keys (all higher digits agree with [cur]). The first
   non-empty level-0 bucket is single-key and FIFO-ordered, so its head
   is the answer; at higher levels the bucket spans a key range and must
   be scanned for the (key, seq) minimum. *)
let find_min t =
  let best = ref None in
  (try
     for k = 0 to levels - 1 do
       if t.level_count.(k) > 0 then begin
         let first = slot_of t.cur k + if k = 0 then 0 else 1 in
         for s = first to slots - 1 do
           let b = t.buckets.(k).(s) in
           if b.next != b then begin
             if k = 0 then best := Some b.next
             else begin
               let m = ref b.next in
               let n = ref b.next.next in
               while !n != b do
                 if beats ~key:!n.key ~seq:!n.seq !m then m := !n;
                 n := !n.next
               done;
               best := Some !m
             end;
             raise Exit
           end
         done
       end
     done
   with Exit -> ());
  !best

let min_node t =
  match t.cached with
  | Some n -> Some n
  | None ->
    if t.count = 0 then None
    else begin
      let m = find_min t in
      t.cached <- m;
      m
    end

let min_key t = match min_node t with Some n -> n.key | None -> max_int

let min_seq t = match min_node t with Some n -> n.seq | None -> max_int

(* Advance the cursor to [target] (the current minimum key) and cascade
   the boundary buckets: flush, top-down, each level's bucket at the
   target's digit, re-placing entries at their (strictly lower) new
   level in list order so equal-key FIFO order survives the cascade.
   Buckets below the highest changed digit are provably empty (any
   occupant would sort below the minimum), so the loop does no work
   there beyond a counter check. *)
let advance t target =
  if target <> t.cur then begin
    let d = t.cur lxor target in
    let hk = ref 0 and dd = ref d in
    while !dd > slot_mask do
      incr hk;
      dd := !dd lsr slot_bits
    done;
    t.cur <- target;
    for k = !hk downto 1 do
      if t.level_count.(k) > 0 then begin
        let b = t.buckets.(k).(slot_of target k) in
        let n = ref b.next in
        while !n != b do
          let nx = !n.next in
          let e = !n in
          unlink t e;
          e.lvl <- level_of t e.key;
          link_tail t e;
          n := nx
        done
      end
    done
  end

let pop_min t =
  match min_node t with
  | None -> invalid_arg "Wheel.pop_min: empty"
  | Some m ->
    advance t m.key;
    unlink t m;
    t.count <- t.count - 1;
    let v = m.value in
    m.value <- t.dummy;
    (* After the cascade the minimum's level-0 bucket holds every
       remaining entry with the same key, in seq order — so the new
       head, if any, is the next minimum for free. Otherwise fall back
       to a lazy rescan. *)
    let b = t.buckets.(0).(slot_of m.key 0) in
    t.cached <- (if b.next != b then Some b.next else None);
    v
