(** Unbounded blocking FIFO between fibers.

    The building block for IPC message queues and protocol input queues:
    senders never block; receivers block until a message arrives. *)

type 'a t

val create : Engine.t -> 'a t

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Block the calling fiber until a message is available. Messages are
    delivered in FIFO order; concurrent receivers are served oldest-first. *)

val recv_timeout : 'a t -> int -> 'a option
(** [None] when the timeout (nanoseconds) elapses first. *)

val try_recv : 'a t -> 'a option

val length : 'a t -> int

val drain : 'a t -> 'a list
(** Remove and return all queued messages without blocking. *)
