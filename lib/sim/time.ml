let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let to_us n = float_of_int n /. 1e3
let to_ms n = float_of_int n /. 1e6
let to_sec n = float_of_int n /. 1e9

let pp fmt n =
  if n < 1_000 then Format.fprintf fmt "%dns" n
  else if n < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us n)
  else if n < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_ms n)
  else Format.fprintf fmt "%.3fs" (to_sec n)
