(* Conservative parallel discrete-event layer: N single-domain engines,
   partitioned by host, synchronized by barrier rounds (YAWNS-style
   windows, no null messages).

   Round protocol — two phases per round, two barriers:

     phase 1 (publish): each shard drains its inboxes (one SPSC buffer
       per ordered shard pair, written only by the source shard in the
       previous round's phase 2, read only by the destination here —
       the intervening barrier is the hand-off), injects the arrivals
       into its engine, and publishes nk_i = next pending key.
     barrier A — every shard now sees the same frozen (nk, abort)
       arrays, so the continue/stop decision below is computed
       identically everywhere.
     phase 2 (execute): each shard computes its conservative horizon
         H_i = min(stop + 1, min over in-links j of nk_j + look(j, i))
       (saturating) and dispatches every local event with key < H_i.
       Cross-shard sends produced while executing are appended to the
       pair buffers for the next round.
     barrier B — hands the buffers to their readers.

   Safety: a send posted by shard j while executing carries
   key >= now_j + look(j, i) >= nk_j + look(j, i) >= H_i, so no arrival
   ever lands inside the window the receiver is currently executing —
   every injection is in its engine's future.  Progress: the globally
   minimal shard's horizon strictly exceeds its own next key (lookahead
   >= 1 ns), so the global minimum always advances.

   Determinism (the bit-identical contract): arrivals are injected at
   round start sorted by (key, source shard, per-pair FIFO index) and
   allocate their sequence numbers from the receiving engine at
   injection, so the merged (key, seq) dispatch order is a pure
   function of the simulation inputs — independent of wall-clock
   interleaving, and of whether the rounds run on N domains or are
   stepped sequentially on one.  The sequential driver executes the
   exact same phases in shard order, so [~domains:false] and
   [~domains:true] transcripts are identical by construction; the
   differential suites enforce it. *)

type entry = { e_key : int; e_fn : unit -> unit }

let dummy_entry = { e_key = 0; e_fn = ignore }

(* Growable per-(src, dst) buffer. Writer and reader are separated by a
   barrier, never concurrent, so plain mutable state is race-free. *)
type inbox = { mutable ib_buf : entry array; mutable ib_len : int }

let ib_push b e =
  if b.ib_len = Array.length b.ib_buf then begin
    let nb = Array.make (max 8 (2 * b.ib_len)) dummy_entry in
    Array.blit b.ib_buf 0 nb 0 b.ib_len;
    b.ib_buf <- nb
  end;
  b.ib_buf.(b.ib_len) <- e;
  b.ib_len <- b.ib_len + 1

(* Sense-reversing barrier. The atomics are the synchronization edges
   that make every plain write before an [await] visible after it
   (release/acquire on the same locations). Waiters spin briefly — the
   fast path when each shard has its own core — then block on a
   condition variable, so on an oversubscribed (or single-core) host a
   wait costs a context switch instead of a scheduler quantum. *)
type barrier = {
  bn : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
}

let barrier_create n =
  {
    bn = n;
    count = Atomic.make 0;
    sense = Atomic.make false;
    lock = Mutex.create ();
    cond = Condition.create ();
  }

let spin_budget = 512

let barrier_await b local_sense =
  if Atomic.fetch_and_add b.count 1 = b.bn - 1 then begin
    Atomic.set b.count 0;
    (* Flip sense under the lock: a waiter that checked sense and is
       about to sleep holds the lock, so the broadcast can't be lost. *)
    Mutex.lock b.lock;
    Atomic.set b.sense local_sense;
    Condition.broadcast b.cond;
    Mutex.unlock b.lock
  end
  else begin
    let spins = ref 0 in
    while Atomic.get b.sense <> local_sense && !spins < spin_budget do
      Domain.cpu_relax ();
      incr spins
    done;
    if Atomic.get b.sense <> local_sense then begin
      Mutex.lock b.lock;
      while Atomic.get b.sense <> local_sense do
        Condition.wait b.cond b.lock
      done;
      Mutex.unlock b.lock
    end
  end

type t = {
  engines : Engine.t array;
  nshards : int;
  look : int array array; (* look.(src).(dst); max_int = no link *)
  boxes : inbox array array; (* boxes.(src).(dst) *)
  nk : int array; (* published next keys, frozen at barrier A *)
  ab : bool array; (* published abort flags, frozen at barrier A *)
  fail_slot : exn option array;
  posted_ctr : int array; (* per-source cross-shard sends *)
  barrier : barrier;
  mutable total_rounds : int;
}

let create ?(seed = 42) ~n () =
  if n < 1 then invalid_arg "Shard.create: need at least one shard";
  {
    (* Distinct seeds per shard: each engine's RNG stream is owned by
       its domain. Workloads that need cross-partition determinism
       derive their streams from explicit seeds instead. *)
    engines = Array.init n (fun i -> Engine.create ~seed:(seed + (i * 7919)) ());
    nshards = n;
    look = Array.make_matrix n n max_int;
    boxes =
      Array.init n (fun _ ->
          Array.init n (fun _ -> { ib_buf = [||]; ib_len = 0 }));
    nk = Array.make n max_int;
    ab = Array.make n false;
    fail_slot = Array.make n None;
    posted_ctr = Array.make n 0;
    barrier = barrier_create n;
    total_rounds = 0;
  }

let n t = t.nshards

let engine t i = t.engines.(i)

let now t = Engine.now t.engines.(0)

let rounds t = t.total_rounds

let posted t = Array.fold_left ( + ) 0 t.posted_ctr

let set_lookahead t ~src ~dst d =
  if src = dst then invalid_arg "Shard.set_lookahead: src = dst";
  if d < 1 then invalid_arg "Shard.set_lookahead: lookahead must be >= 1ns";
  if d < t.look.(src).(dst) then t.look.(src).(dst) <- d

let lookahead t ~src ~dst = t.look.(src).(dst)

let post t ~src ~dst ~key fn =
  if src = dst then Engine.schedule_abs t.engines.(src) ~key fn
  else begin
    let d = t.look.(src).(dst) in
    if d = max_int then invalid_arg "Shard.post: no lookahead for link";
    if key < Engine.now t.engines.(src) + d then
      invalid_arg "Shard.post: key violates the link lookahead";
    ib_push t.boxes.(src).(dst) { e_key = key; e_fn = fn };
    t.posted_ctr.(src) <- t.posted_ctr.(src) + 1
  end

(* saturating add of non-negative ints *)
let sadd a b = if a >= max_int - b then max_int else a + b

let compare_entry a b = compare a.e_key b.e_key

(* phase 1: drain inboxes in (src, FIFO) order, stable-sort by key —
   giving the (key, src shard, FIFO index) injection order — then
   inject, allocating receiver seqs; publish next key and abort flag. *)
let phase_publish t i =
  (if t.fail_slot.(i) = None then
     try
       let total = ref 0 in
       for s = 0 to t.nshards - 1 do
         total := !total + t.boxes.(s).(i).ib_len
       done;
       if !total > 0 then begin
         let tmp = Array.make !total dummy_entry in
         let w = ref 0 in
         for s = 0 to t.nshards - 1 do
           let b = t.boxes.(s).(i) in
           for j = 0 to b.ib_len - 1 do
             tmp.(!w) <- b.ib_buf.(j);
             incr w
           done;
           b.ib_len <- 0
         done;
         Array.stable_sort compare_entry tmp;
         Array.iter
           (fun e -> Engine.schedule_abs t.engines.(i) ~key:e.e_key e.e_fn)
           tmp
       end
     with e -> t.fail_slot.(i) <- Some e);
  t.ab.(i) <- t.fail_slot.(i) <> None;
  t.nk.(i) <- if t.ab.(i) then max_int else Engine.next_key t.engines.(i)

(* The continue/stop decision: a pure function of the arrays frozen at
   barrier A, hence identical on every shard. *)
let decide_stop t stop =
  let m = ref max_int and any_ab = ref false in
  for i = 0 to t.nshards - 1 do
    if t.nk.(i) < !m then m := t.nk.(i);
    if t.ab.(i) then any_ab := true
  done;
  (* [m = max_int] (all engines drained) must stop even when
     [stop = max_int], where [m > stop] alone would spin forever. *)
  !any_ab || !m = max_int || !m > stop

(* Conservative horizon. The published next keys alone are NOT a safe
   bound: a shard with nothing scheduled (nk = max_int) can still be
   woken by a message we send this round and reply into virtual times
   far below where we would have run to. The safe quantity is the
   standard earliest-possible-execution fixpoint
       C_j = min(nk_j, min over in-links k of C_k + look(k, j))
   — any event shard j will ever execute is >= C_j, whether it is
   already scheduled or caused by a chain of future cross-shard wakeups
   (each hop adds at least its link lookahead). The horizon for shard i
   is then the earliest arrival any shard could still cause here:
       H_i = min(stop + 1, min over in-links j of C_j + look(j, i)).
   The fixpoint is a shortest-path relaxation over at most n nodes;
   every shard computes it from the same frozen nk array, so all
   shards agree. Progress: the globally minimal shard has
   H >= C_min + min-lookahead > its own next key. *)
let horizon t i stop =
  let n = t.nshards in
  let c = Array.copy t.nk in
  let changed = ref true in
  while !changed do
    changed := false;
    for k = 0 to n - 1 do
      for j = 0 to n - 1 do
        if k <> j && t.look.(k).(j) <> max_int then begin
          let v = sadd c.(k) t.look.(k).(j) in
          if v < c.(j) then begin
            c.(j) <- v;
            changed := true
          end
        end
      done
    done
  done;
  let h = ref (sadd stop 1) in
  for j = 0 to n - 1 do
    if j <> i && t.look.(j).(i) <> max_int then begin
      let hj = sadd c.(j) t.look.(j).(i) in
      if hj < !h then h := hj
    end
  done;
  !h

let phase_execute t i stop =
  if t.fail_slot.(i) = None then
    try Engine.run_below t.engines.(i) (horizon t i stop)
    with e -> t.fail_slot.(i) <- Some e

(* Per-shard round loop for the domain-parallel driver. *)
let shard_body t i stop =
  let sense = ref false in
  let continue_ = ref true in
  while !continue_ do
    phase_publish t i;
    sense := not !sense;
    barrier_await t.barrier !sense;
    if decide_stop t stop then continue_ := false
    else begin
      phase_execute t i stop;
      if i = 0 then t.total_rounds <- t.total_rounds + 1;
      sense := not !sense;
      barrier_await t.barrier !sense
    end
  done;
  if t.fail_slot.(i) = None && stop <> max_int then
    Engine.advance_to t.engines.(i) stop

(* Same phases, same order, no domains: used for ~domains:false and as
   the reference the parallel driver must match bit-for-bit. *)
let sequential_run t stop =
  let continue_ = ref true in
  while !continue_ do
    for i = 0 to t.nshards - 1 do
      phase_publish t i
    done;
    if decide_stop t stop then continue_ := false
    else begin
      for i = 0 to t.nshards - 1 do
        phase_execute t i stop
      done;
      t.total_rounds <- t.total_rounds + 1
    end
  done;
  if stop <> max_int then
    Array.iter (fun e -> Engine.advance_to e stop) t.engines

let check_failures t =
  (match Array.find_opt (fun s -> s <> None) t.fail_slot with
  | Some (Some e) -> raise e
  | _ -> ());
  let total =
    Array.fold_left
      (fun acc e -> acc + List.length (Engine.failures e))
      0 t.engines
  in
  if total > 0 then begin
    let first =
      Array.to_list t.engines
      |> List.concat_map Engine.failures
      |> List.hd
    in
    failwith
      (Printf.sprintf "Shard.run: %d fiber failure(s); first: %s" total
         (Printexc.to_string first))
  end

let run_until ?(domains = true) t stop =
  if domains && t.nshards > 1 then begin
    let doms =
      Array.init (t.nshards - 1) (fun k ->
          Domain.spawn (fun () -> shard_body t (k + 1) stop))
    in
    shard_body t 0 stop;
    Array.iter Domain.join doms
  end
  else sequential_run t stop;
  check_failures t

let run_for ?domains t dt = run_until ?domains t (now t + dt)

let run ?domains t = run_until ?domains t max_int
