(** Single-CPU processor resource.

    Every simulated host has exactly one CPU (the paper's machines are
    uniprocessors), so protocol processing, interrupt handling and
    application copies contend for cycles — which is what makes receive-side
    processing the throughput bottleneck in several configurations.

    The resource is non-preemptive with three priority bands: when the CPU
    is released, the oldest waiter in the highest non-empty band runs next.
    Interrupt handlers therefore get the CPU ahead of kernel threads, which
    get it ahead of user threads, with at most one service-time of
    priority inversion — a good approximation of the real machines at the
    microsecond granularity we charge. *)

type prio = Interrupt | Kernel | User

type t

val create : Engine.t -> t

val consume : t -> prio:prio -> int -> unit
(** [consume cpu ~prio ns] acquires the CPU (waiting behind current owner
    and higher-priority waiters), holds it for [ns] nanoseconds of virtual
    time, and releases it. Zero-cost calls return immediately without
    acquiring. Must be called from a fiber. *)

val busy_time : t -> int
(** Total nanoseconds the CPU has been held since creation (utilisation
    accounting for benchmarks). *)
