type waiter = { mutable fired : bool; resume : unit -> unit }

type t = { eng : Engine.t; mutable queue : waiter list }

let create eng = { eng; queue = [] }

let wait t =
  Engine.suspend t.eng (fun resume ->
      t.queue <- t.queue @ [ { fired = false; resume } ])

let fire w =
  if not w.fired then begin
    w.fired <- true;
    w.resume ()
  end

let signal t =
  match t.queue with
  | [] -> ()
  | w :: rest ->
    t.queue <- rest;
    fire w

let broadcast t =
  let q = t.queue in
  t.queue <- [];
  List.iter fire q

let wait_timeout t dt =
  let result = ref `Ok in
  Engine.suspend t.eng (fun resume ->
      let w = { fired = false; resume } in
      t.queue <- t.queue @ [ w ];
      let (_ : Engine.cancel) =
        Engine.after t.eng dt (fun () ->
            if not w.fired then begin
              result := `Timeout;
              t.queue <- List.filter (fun w' -> w' != w) t.queue;
              fire w
            end)
      in
      ());
  !result

let rec until t f =
  match f () with
  | Some v -> v
  | None ->
    wait t;
    until t f

let until_timeout t dt f =
  let deadline = Engine.now t.eng + dt in
  let rec loop () =
    match f () with
    | Some v -> Some v
    | None ->
      let remaining = deadline - Engine.now t.eng in
      if remaining <= 0 then None
      else
        match wait_timeout t remaining with
        | `Ok -> loop ()
        | `Timeout -> f ()
  in
  loop ()

let waiters t = List.length t.queue
