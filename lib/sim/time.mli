(** Virtual-time unit helpers. The simulation's base unit is the
    nanosecond, stored in an OCaml [int]. *)

val us : int -> int
(** Microseconds to nanoseconds. *)

val ms : int -> int
val sec : int -> int

val to_us : int -> float
val to_ms : int -> float
val to_sec : int -> float

val pp : Format.formatter -> int -> unit
(** Human-readable rendering with an adaptive unit. *)
