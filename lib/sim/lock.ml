type t = {
  eng : Engine.t;
  mutable held : bool;
  waiters : (unit -> unit) Queue.t;
}

let create eng = { eng; held = false; waiters = Queue.create () }

let acquire t =
  if t.held then
    (* Ownership is handed off directly by release. *)
    Engine.suspend t.eng (fun resume -> Queue.push resume t.waiters)
  else t.held <- true

let release t =
  if not t.held then invalid_arg "Lock.release: not held";
  if Queue.is_empty t.waiters then t.held <- false
  else (Queue.pop t.waiters) ()

let with_lock t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e

let wait t cond =
  release t;
  Cond.wait cond;
  acquire t

let holder_active t = t.held
