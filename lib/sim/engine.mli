(** Discrete-event simulation engine.

    Simulated concurrency is expressed as {e fibers}: lightweight cooperative
    threads built on OCaml effect handlers. A fiber runs until it blocks
    ([sleep], [suspend], or a higher-level primitive such as
    {!Cond.wait} or {!Cpu.consume}); the engine then dispatches the next
    pending event in virtual-time order. Virtual time only advances between
    events, never during OCaml execution, so simulated latencies are exact
    and runs are deterministic for a given seed.

    All times are integer {e nanoseconds} of virtual time. *)

type t

type cancel = unit -> unit
(** Cancels a pending timer; idempotent, and a no-op after firing. *)

val create : ?seed:int -> unit -> t
(** A fresh simulation world at time 0. [seed] (default 42) drives
    {!rng} and all derived generators. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Psd_util.Rng.t
(** The engine's root deterministic random stream. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] creates a fiber executing [f], scheduled at the current
    virtual time. May be called from inside or outside a fiber. An
    exception escaping [f] is recorded (see {!failures}) and terminates
    only that fiber. *)

val sleep : t -> int -> unit
(** Block the calling fiber for the given number of nanoseconds.
    Must be called from within a fiber. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] blocks the calling fiber and calls
    [register resume]. Invoking [resume] (exactly once, from any context)
    schedules the fiber to continue at the then-current virtual time.
    This is the primitive from which blocking abstractions are built. *)

val schedule : t -> int -> (unit -> unit) -> unit
(** [schedule t dt f] runs callback [f] (not a fiber; it must not block)
    [dt] nanoseconds from now. *)

val schedule_abs : t -> key:int -> (unit -> unit) -> unit
(** [schedule_abs t ~key f] runs callback [f] at absolute virtual time
    [key] (which must be [>= now t]). The sequence number is allocated
    at the moment of the call, exactly as [schedule t (key - now t) f]
    would — this is the injection primitive {!Shard} uses to deliver
    cross-shard arrivals with single-engine dispatch order.
    @raise Invalid_argument if [key] is in the past. *)

val after : t -> int -> (unit -> unit) -> cancel
(** Like {!schedule} but cancellable — the shape used for protocol
    timers (retransmit, delayed ACK, 2MSL...). *)

type timer
(** A re-armable timer slot backed by the engine's hierarchical timing
    wheel. Functionally equivalent to keeping an {!after} cancel token
    in a mutable slot, but arm/cancel/re-arm are O(1), cancellation
    frees the entry immediately (a cancelled {!after} lingers in the
    event queue as a no-op until its deadline), and wheel nodes are
    pooled on a per-engine free list: firing or cancelling returns the
    node (and drops the callback), so an idle timer slot is two words
    and steady-state arm/fire churn does not allocate. Dispatch order
    is identical either way: wheel entries carry the same
    (time, sequence) pair a heap push would have been given. *)

val timer : unit -> timer
(** A fresh, unarmed timer slot. *)

val timer_arm : t -> timer -> int -> (unit -> unit) -> unit
(** [timer_arm t tm dt f] fires [f] once, [dt] nanoseconds from now
    ([f] must not block; spawn a fiber for blocking work). If [tm] is
    already armed it is rescheduled — equivalent to cancelling the old
    {!after} and creating a new one. *)

val timer_cancel : t -> timer -> unit
(** Disarm; idempotent, no-op after firing. *)

val timer_armed : timer -> bool
(** Whether the timer is armed and has not yet fired. *)

val timer_nodes_free : t -> int
(** Wheel nodes currently parked on the engine's free list
    (pool-reuse diagnostics for the scale benchmark). *)

val run : t -> unit
(** Dispatch events until none remain.
    @raise Failure if any fiber raised; the first exception's message is
    included. *)

val run_until : t -> int -> unit
(** Dispatch events with timestamps [<=] the given absolute time, then
    set the clock to that time. *)

val run_for : t -> int -> unit
(** [run_for t dt] = [run_until t (now t + dt)]. *)

val next_key : t -> int
(** Virtual time of the earliest pending event across both queues
    (heap and wheel), or [max_int] when the engine is idle. This is the
    quantity the shard layer publishes to compute conservative
    horizons. *)

val run_below : t -> int -> unit
(** [run_below t bound] dispatches every pending event with
    key [< bound] — one conservative window of a sharded run. Unlike
    {!run_until} the clock is left at the last dispatched event rather
    than advanced to the bound, and fiber failures are accumulated
    (see {!failures}) rather than raised; the shard layer aggregates
    them when the whole run completes. *)

val advance_to : t -> int -> unit
(** Force the clock forward to the given absolute time if it is ahead
    of [now] (used by the shard layer at the end of a run; events must
    not be pending below that time). *)

val alive : t -> int
(** Number of fibers spawned but not yet finished. After {!run} returns,
    a non-zero value means fibers are blocked forever (deadlock). *)

val failures : t -> exn list
(** Exceptions raised by fibers, oldest first. *)

val set_trace : t -> (time:int -> string -> unit) option -> unit
(** Install a trace sink for {!trace} messages (diagnostics). *)

val trace : t -> string -> unit

val events_scheduled : t -> int
(** Total events pushed onto the queue since creation — the simulator's
    work metric (diagnostics and wall-clock tuning). *)
