type t = {
  mutable now : int;
  events : (unit -> unit) Psd_util.Heap.t;
  rng : Psd_util.Rng.t;
  mutable alive : int;
  mutable failures : exn list; (* newest first; reversed when read *)
  mutable trace_sink : (time:int -> string -> unit) option;
}

type cancel = unit -> unit

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let create ?(seed = 42) () =
  {
    now = 0;
    events = Psd_util.Heap.create ();
    rng = Psd_util.Rng.create ~seed;
    alive = 0;
    failures = [];
    trace_sink = None;
  }

let now t = t.now

let rng t = t.rng

let schedule t dt f =
  if dt < 0 then invalid_arg "Engine.schedule: negative delay";
  Psd_util.Heap.push t.events ~key:(t.now + dt) f

let after t dt f =
  let cancelled = ref false in
  schedule t dt (fun () -> if not !cancelled then f ());
  fun () -> cancelled := true

let suspend t register =
  ignore t;
  Effect.perform (Suspend register)

let sleep t dt =
  if dt < 0 then invalid_arg "Engine.sleep: negative delay";
  suspend t (fun resume -> schedule t dt (fun () -> resume ()))

let spawn t ?name f =
  let body () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> t.alive <- t.alive - 1);
        exnc =
          (fun e ->
            t.alive <- t.alive - 1;
            (* prepend: appending would make accumulating n failures
               O(n²); readers reverse once instead *)
            t.failures <- e :: t.failures;
            (match t.trace_sink with
            | Some sink ->
              sink ~time:t.now
                (Printf.sprintf "fiber %s died: %s"
                   (Option.value name ~default:"?")
                   (Printexc.to_string e))
            | None -> ()));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        invalid_arg "Engine: fiber resumed twice";
                      resumed := true;
                      schedule t 0 (fun () -> continue k ())))
            | _ -> None);
      }
  in
  t.alive <- t.alive + 1;
  schedule t 0 body

let step t =
  match Psd_util.Heap.pop t.events with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    f ();
    true

let check_failures t =
  match List.rev t.failures with
  | [] -> ()
  | e :: _ ->
    failwith
      (Printf.sprintf "Engine.run: %d fiber failure(s); first: %s"
         (List.length t.failures) (Printexc.to_string e))

let run t =
  while step t do
    ()
  done;
  check_failures t

let run_until t stop =
  let continue = ref true in
  while !continue do
    match Psd_util.Heap.peek_key t.events with
    | Some key when key <= stop -> ignore (step t)
    | _ -> continue := false
  done;
  if t.now < stop then t.now <- stop;
  check_failures t

let run_for t dt = run_until t (t.now + dt)

let alive t = t.alive

let failures t = List.rev t.failures

let set_trace t sink = t.trace_sink <- sink

let trace t msg =
  match t.trace_sink with
  | Some sink -> sink ~time:t.now msg
  | None -> ()
