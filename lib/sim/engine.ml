(* A timer is two words: the wheel node while armed, and the armed
   callback. The wheel stores the timer record itself as the entry
   value; the fire path and [timer_cancel] both release the node to the
   wheel's free list and blank [tfn], so an idle timer (fired or
   cancelled) pins neither a node nor a closure — the compact-PCB work
   counts on five such timers per connection costing ~nothing when
   quiescent. *)
type timer = {
  mutable tnode : timer Wheel.node option;
  mutable tfn : unit -> unit;
}

type t = {
  mutable now : int;
  events : (unit -> unit) Psd_util.Heap.t;
  (* Re-armable protocol timers live on a hierarchical timing wheel
     instead of the heap: O(1) cancel/re-arm, and a cancelled timer
     leaves no dead entry behind (a cancelled [after] stays in the heap
     until its deadline as a no-op). Heap and wheel share [next_seq],
     so (key, seq) totally orders events across both queues and
     dispatch order is identical to a single-queue engine. *)
  timers : timer Wheel.t;
  mutable next_seq : int;
  rng : Psd_util.Rng.t;
  mutable alive : int;
  mutable failures : exn list; (* newest first; reversed when read *)
  mutable trace_sink : (time:int -> string -> unit) option;
  mutable horizon : int; (* run_until bound; sleeps may not advance past it *)
}

type cancel = unit -> unit

let nop = fun () -> ()

let dummy_timer = { tnode = None; tfn = nop }

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* Sleep is the hot path (every cost charge passes through it), so it
   gets its own effect: the handler skips [Suspend]'s resume-closure and
   double-resume guard. It keeps the same two-step schedule (timer
   fires, then the fiber re-enters the queue at delay 0) because the
   re-queue assigns the continuation its sequence number at fire time —
   same-instant FIFO order is part of the determinism contract, and
   collapsing the two steps observably reorders lossy runs. *)
type _ Effect.t += Sleep : int -> unit Effect.t

let create ?(seed = 42) () =
  {
    now = 0;
    events = Psd_util.Heap.create ();
    timers = Wheel.create ~dummy:dummy_timer ();
    next_seq = 0;
    rng = Psd_util.Rng.create ~seed;
    alive = 0;
    failures = [];
    trace_sink = None;
    horizon = max_int;
  }

let now t = t.now

let rng t = t.rng

let alloc_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let schedule t dt f =
  if dt < 0 then invalid_arg "Engine.schedule: negative delay";
  Psd_util.Heap.push_seq t.events ~key:(t.now + dt) ~seq:(alloc_seq t) f

(* Absolute-key scheduling, for the shard layer: a cross-shard arrival
   carries the virtual time it was computed for on the sending shard;
   the receiving engine allocates the seq at injection, exactly as a
   local [schedule] at the same instant would. *)
let schedule_abs t ~key f =
  if key < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_abs: key %d is before now %d" key
         t.now);
  Psd_util.Heap.push_seq t.events ~key ~seq:(alloc_seq t) f

let after t dt f =
  let cancelled = ref false in
  schedule t dt (fun () -> if not !cancelled then f ());
  fun () -> cancelled := true

let timer () = { tnode = None; tfn = nop }

let timer_arm t tm dt f =
  if dt < 0 then invalid_arg "Engine.timer_arm: negative delay";
  let key = t.now + dt in
  (* One seq per arm, exactly like the heap push [after] would do, so
     interleavings with heap events are unchanged. *)
  let seq = alloc_seq t in
  tm.tfn <- f;
  match tm.tnode with
  | Some n ->
    (* still armed: re-use our own node in place, no pool round-trip *)
    Wheel.cancel t.timers n;
    Wheel.reinsert t.timers n ~key ~seq tm
  | None -> tm.tnode <- Some (Wheel.acquire t.timers ~key ~seq tm)

let timer_cancel t tm =
  match tm.tnode with
  | Some n ->
    tm.tnode <- None;
    tm.tfn <- nop;
    Wheel.release t.timers n
  | None -> ()

let timer_armed tm = tm.tnode <> None

let timer_nodes_free t = Wheel.pool_size t.timers

let suspend t register =
  ignore t;
  Effect.perform (Suspend register)

let sleep t dt =
  if dt < 0 then invalid_arg "Engine.sleep: negative delay";
  let target = t.now + dt in
  (* Bypass: if no queued event fires at or before [target] (and the
     run horizon doesn't cut the sleep short), the two-step schedule
     would pop the timer, re-queue the continuation, and pop it again
     with nothing able to interleave — the fiber wakes with the heap in
     exactly the state it left it, and no other push can happen in
     between, so relative sequence order of every real event is
     unchanged.  Advancing the clock inline is observationally
     identical and skips two heap operations and two effect
     stack-switches.  ~70% of steady-state events are these
     uncontended cost-charge sleeps. *)
  if
    target <= t.horizon
    && Psd_util.Heap.min_key t.events > target
    && Wheel.min_key t.timers > target
  then t.now <- target
  else Effect.perform (Sleep dt)

let spawn t ?name f =
  let body () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> t.alive <- t.alive - 1);
        exnc =
          (fun e ->
            t.alive <- t.alive - 1;
            (* prepend: appending would make accumulating n failures
               O(n²); readers reverse once instead *)
            t.failures <- e :: t.failures;
            (match t.trace_sink with
            | Some sink ->
              sink ~time:t.now
                (Printf.sprintf "fiber %s died: %s"
                   (Option.value name ~default:"?")
                   (Printexc.to_string e))
            | None -> ()));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        invalid_arg "Engine: fiber resumed twice";
                      resumed := true;
                      schedule t 0 (fun () -> continue k ())))
            | Sleep dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t dt (fun () ->
                      schedule t 0 (fun () -> continue k ())))
            | _ -> None);
      }
  in
  t.alive <- t.alive + 1;
  schedule t 0 body

(* Next event across both queues is the (key, seq) minimum; the shared
   seq counter makes the comparison a strict total order. *)
let next_key t = min (Psd_util.Heap.min_key t.events) (Wheel.min_key t.timers)

let step t =
  let hk = Psd_util.Heap.min_key t.events in
  let wk = Wheel.min_key t.timers in
  if hk = max_int && wk = max_int then false
  else begin
    if
      wk < hk
      || (wk = hk && Wheel.min_seq t.timers < Psd_util.Heap.min_seq t.events)
    then begin
      t.now <- wk;
      let tm = Wheel.pop_min t.timers in
      (* Fire: detach the (already unlinked) node into the pool and
         blank the callback before invoking it, so a quiescent timer
         retains nothing and the callback may freely re-arm. *)
      (match tm.tnode with
      | Some n ->
        tm.tnode <- None;
        Wheel.release t.timers n
      | None -> ());
      let f = tm.tfn in
      tm.tfn <- nop;
      f ()
    end
    else begin
      t.now <- hk;
      let f = Psd_util.Heap.pop_min t.events in
      f ()
    end;
    true
  end

let check_failures t =
  match List.rev t.failures with
  | [] -> ()
  | e :: _ ->
    failwith
      (Printf.sprintf "Engine.run: %d fiber failure(s); first: %s"
         (List.length t.failures) (Printexc.to_string e))

let run t =
  while step t do
    ()
  done;
  check_failures t

let run_until t stop =
  let saved = t.horizon in
  t.horizon <- stop;
  while
    let nk = next_key t in
    nk <> max_int && nk <= stop
  do
    ignore (step t)
  done;
  t.horizon <- saved;
  if t.now < stop then t.now <- stop;
  check_failures t

let run_for t dt = run_until t (t.now + dt)

(* Windowed dispatch for the shard layer: execute every event with
   key < [bound] and stop, leaving the clock at the last dispatched
   event (NOT advanced to the bound — the conservative horizon is
   exclusive, and the next window may open below it).  The sleep-bypass
   horizon is set to [bound - 1] so a sleep that would cross the window
   suspends through the Sleep effect instead of advancing the clock
   into territory another shard may still inject events into.
   Failures are left accumulated for the shard layer to aggregate. *)
let run_below t bound =
  let saved = t.horizon in
  t.horizon <- bound - 1;
  while next_key t < bound do
    ignore (step t)
  done;
  t.horizon <- saved

(* Force the clock forward at the end of a sharded run, mirroring what
   [run_until] does when the last event precedes the stop time. *)
let advance_to t time = if time > t.now then t.now <- time

let alive t = t.alive

let failures t = List.rev t.failures

let set_trace t sink = t.trace_sink <- sink

let trace t msg =
  match t.trace_sink with
  | Some sink -> sink ~time:t.now msg
  | None -> ()

(* heap pushes + wheel arms: one seq is allocated per scheduled event *)
let events_scheduled t = t.next_seq
