type 'a t = { q : 'a Queue.t; nonempty : Cond.t }

let create eng = { q = Queue.create (); nonempty = Cond.create eng }

let send t x =
  Queue.push x t.q;
  Cond.signal t.nonempty

let rec recv t =
  match Queue.take_opt t.q with
  | Some x -> x
  | None ->
    Cond.wait t.nonempty;
    recv t

let recv_timeout t dt = Cond.until_timeout t.nonempty dt (fun () -> Queue.take_opt t.q)

let try_recv t = Queue.take_opt t.q

let length t = Queue.length t.q

let drain t =
  let xs = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  xs
