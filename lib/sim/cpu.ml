type prio = Interrupt | Kernel | User

type t = {
  eng : Engine.t;
  mutable busy : bool;
  queues : (unit -> unit) Queue.t array; (* index 0 = Interrupt *)
  mutable busy_time : int;
}

let band = function Interrupt -> 0 | Kernel -> 1 | User -> 2

let create eng =
  { eng; busy = false; queues = Array.init 3 (fun _ -> Queue.create ());
    busy_time = 0 }

let next_waiter t =
  let rec find i =
    if i >= 3 then None
    else if Queue.is_empty t.queues.(i) then find (i + 1)
    else Some (Queue.pop t.queues.(i))
  in
  find 0

let acquire t prio =
  if t.busy then
    Engine.suspend t.eng (fun resume ->
        Queue.push resume t.queues.(band prio))
    (* the releaser hands ownership directly to us: busy stays true *)
  else t.busy <- true

let release t =
  match next_waiter t with
  | Some resume -> resume ()
  | None -> t.busy <- false

let consume t ~prio ns =
  if ns < 0 then invalid_arg "Cpu.consume: negative time";
  if ns > 0 then begin
    acquire t prio;
    t.busy_time <- t.busy_time + ns;
    Engine.sleep t.eng ns;
    release t
  end

let busy_time t = t.busy_time
