(** Condition variables for simulation fibers.

    Unlike POSIX condition variables there is no associated mutex: fibers
    are cooperative, so the check-then-wait sequence is atomic with respect
    to other fibers. As with POSIX, waiters must re-check their predicate
    in a loop — a signal may race with a timeout, and broadcast wakes
    everyone. *)

type t

val create : Engine.t -> t

val wait : t -> unit
(** Block the calling fiber until signalled. *)

val wait_timeout : t -> int -> [ `Ok | `Timeout ]
(** Block until signalled or until the given number of nanoseconds has
    elapsed, whichever is first. *)

val signal : t -> unit
(** Wake the oldest waiter, if any. *)

val broadcast : t -> unit
(** Wake every current waiter. *)

val until : t -> (unit -> 'a option) -> 'a
(** [until t f] repeatedly evaluates [f]; when it returns [Some v], [v] is
    the result, otherwise the fiber waits for a signal and retries. The
    standard shape for blocking on a predicate. *)

val until_timeout : t -> int -> (unit -> 'a option) -> 'a option
(** Like {!until} but gives up [None] once the given number of nanoseconds
    has elapsed without the predicate holding. *)

val waiters : t -> int
