(** Mach-style synchronous RPC between tasks on one host.

    This is the control-path transport: the proxy's calls into the
    operating-system server (paper Table 1), and every socket call in the
    server-based configuration.

    Cost accounting: the {e entire} messaging overhead — trap, one message
    each way, per-byte copies, and both scheduler handoffs — is charged to
    the caller's context under the caller's phase. Caller and server share
    the host CPU, so attributing the overhead at the call site is
    time-equivalent and keeps the latency-breakdown attribution simple.
    Handlers charge only their actual protocol work. *)

type ('req, 'resp) port

val create_port : Host.t -> ('req, 'resp) port

val serve :
  ('req, 'resp) port -> ?workers:int -> ('req -> 'resp) -> unit
(** Spawn server fibers (default 2) that loop handling requests. The
    handler runs in a server fiber and may block. *)

val call :
  ('req, 'resp) port ->
  ctx:Psd_cost.Ctx.t ->
  phase:Psd_cost.Phase.t ->
  ?req_bytes:int ->
  ?resp_size:('resp -> int) ->
  'req ->
  'resp
(** Synchronous RPC; blocks the calling fiber. [req_bytes] (default 64, a
    small control message) sizes the request's per-byte copy cost;
    [resp_size] computes the reply's from the actual response (a [recv]
    reply is charged for the data it carries, not the buffer offered). *)

val oneway :
  ('req, 'resp) port ->
  ctx:Psd_cost.Ctx.t ->
  phase:Psd_cost.Phase.t ->
  ?req_bytes:int ->
  'req ->
  unit
(** Fire-and-forget message (half the cost of {!call}); any response is
    discarded. *)

val queue_length : ('req, 'resp) port -> int
