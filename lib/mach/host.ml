type t = {
  eng : Psd_sim.Engine.t;
  cpu : Psd_sim.Cpu.t;
  plat : Psd_cost.Platform.t;
  name : string;
  kernel_ctx : Psd_cost.Ctx.t;
  mutable next_task_id : int;
}

let create ~eng ~plat ~name =
  let cpu = Psd_sim.Cpu.create eng in
  {
    eng;
    cpu;
    plat;
    name;
    kernel_ctx =
      Psd_cost.Ctx.create ~eng ~cpu ~plat ~role:Psd_cost.Ctx.Kernel_stack;
    next_task_id = 1;
  }

let eng t = t.eng
let cpu t = t.cpu
let plat t = t.plat
let name t = t.name
let kernel_ctx t = t.kernel_ctx

let fresh_task_id t =
  let id = t.next_task_id in
  t.next_task_id <- id + 1;
  id
