type t = {
  host : Host.t;
  id : int;
  name : string;
  parent : t option;
  mutable alive : bool;
  mutable exit_hooks : (unit -> unit) list;
}

let create host ?parent ~name () =
  { host; id = Host.fresh_task_id host; name; parent; alive = true;
    exit_hooks = [] }

let id t = t.id
let name t = t.name
let host t = t.host
let parent t = t.parent
let alive t = t.alive

let on_exit t hook = t.exit_hooks <- t.exit_hooks @ [ hook ]

let exit t =
  if t.alive then begin
    t.alive <- false;
    List.iter (fun hook -> hook ()) t.exit_hooks;
    t.exit_hooks <- []
  end

let fork t ~name =
  if not t.alive then invalid_arg "Task.fork: dead task";
  create t.host ~parent:t ~name ()
