open Psd_cost

type kind = Ipc | Shm of int

type t = {
  host : Host.t;
  kind : kind;
  (* NEWAPI shared-buffer mode: the rx ring pages (or the IPC message's
     receive side) are memory the application loaned to the channel, so
     the deposit is counted at the [Rx_loan] API-boundary site instead
     of a body-copy site. Virtual-time charges are identical either
     way — only the copy bookkeeping moves. *)
  newapi : bool;
  ring : Bytes.t Psd_util.Ring.t option; (* None for Ipc (unbounded) *)
  q : Bytes.t Queue.t;
  cond : Psd_sim.Cond.t;
  deliver_fixed : int;
  deliver_per_byte : int;
  mutable waiting : int;
  mutable dropped : int;
  mutable wakeups : int;
  mutable delivered : int;
  (* transmit direction: application -> kernel, the mirror image of the
     receive machinery above. An IPC channel sends one message per
     frame; an SHM channel shares the ring discipline (same capacity as
     the rx ring) with a wakeup only when the kernel-side consumer is
     blocked, so a bulk sender enqueues a burst per wakeup. *)
  tx_ring : Bytes.t Psd_util.Ring.t option;
  tx_q : Bytes.t Queue.t;
  tx_cond : Psd_sim.Cond.t;
  mutable tx_waiting : int;
  mutable tx_dropped : int;
  mutable tx_wakeups : int;
  mutable tx_sent : int;
}

let create ?(newapi = false) host ~kind ~deliver_fixed ~deliver_per_byte =
  {
    host;
    kind;
    newapi;
    ring =
      (match kind with
      | Ipc -> None
      | Shm cap -> Some (Psd_util.Ring.create ~capacity:cap));
    q = Queue.create ();
    cond = Psd_sim.Cond.create (Host.eng host);
    deliver_fixed;
    deliver_per_byte;
    waiting = 0;
    dropped = 0;
    wakeups = 0;
    delivered = 0;
    tx_ring =
      (match kind with
      | Ipc -> None
      | Shm cap -> Some (Psd_util.Ring.create ~capacity:cap));
    tx_q = Queue.create ();
    tx_cond = Psd_sim.Cond.create (Host.eng host);
    tx_waiting = 0;
    tx_dropped = 0;
    tx_wakeups = 0;
    tx_sent = 0;
  }

let kctx t = Host.kernel_ctx t.host

let deliver t pkt =
  let plat = Host.plat t.host in
  let len = Bytes.length pkt in
  match t.kind with
  | Ipc ->
    (* per-packet message: base cost + copies + unconditional dispatch *)
    Ctx.charge_at (kctx t) Psd_sim.Cpu.Kernel Phase.Kernel_copyout
      (t.deliver_fixed + plat.Platform.ipc_msg + plat.Platform.wakeup_kernel
      + (len * (t.deliver_per_byte + plat.Platform.ipc_per_byte)));
    (* two physical passes, mirroring deliver_per_byte + ipc_per_byte.
       Under the NEWAPI the message body is received into
       application-loaned pages, so the second pass is the loan deposit
       (API boundary), not a body copy. *)
    if t.newapi then begin
      Psd_util.Copies.count Psd_util.Copies.Rx_ipc ~n:1 len;
      Psd_util.Copies.count Psd_util.Copies.Rx_loan ~n:1 len
    end
    else Psd_util.Copies.count Psd_util.Copies.Rx_ipc ~n:2 (2 * len);
    Queue.push pkt t.q;
    t.delivered <- t.delivered + 1;
    t.wakeups <- t.wakeups + 1;
    Psd_sim.Cond.signal t.cond
  | Shm _ ->
    Ctx.charge_at (kctx t) Psd_sim.Cpu.Kernel Phase.Kernel_copyout
      (t.deliver_fixed + (len * t.deliver_per_byte));
    let ring = Option.get t.ring in
    if Psd_util.Ring.push ring pkt then begin
      (* NEWAPI: the ring pages are application-loaned receive buffers,
         so this deposit is the placement into app memory *)
      if t.newapi then Psd_util.Copies.count Psd_util.Copies.Rx_loan len
      else Psd_util.Copies.count Psd_util.Copies.Rx_ring len;
      t.delivered <- t.delivered + 1;
      (* lightweight condition: wake only a blocked receiver *)
      if t.waiting > 0 then begin
        t.wakeups <- t.wakeups + 1;
        Ctx.charge_at (kctx t) Psd_sim.Cpu.Kernel Phase.Kernel_copyout
          plat.Platform.wakeup_kernel;
        Psd_sim.Cond.signal t.cond
      end
    end
    else t.dropped <- t.dropped + 1

(* --- transmit direction ------------------------------------------- *)

(* Sender side; the cost formulas mirror [deliver]'s exactly (message
   cost + copies for IPC; ring copy + conditional wakeup for SHM) and
   are charged to the kernel context under [Entry_copyin], the send
   path's user/kernel crossing. No [Copies] site is charged here: the
   simulated ring/message copy is part of the placement's cost model,
   while the physical payload travels as a shared view — the tx channel
   is not on the body-copy path. *)
let send t pkt =
  let plat = Host.plat t.host in
  let len = Bytes.length pkt in
  match t.kind with
  | Ipc ->
    Ctx.charge_at (kctx t) Psd_sim.Cpu.Kernel Phase.Entry_copyin
      (t.deliver_fixed + plat.Platform.ipc_msg + plat.Platform.wakeup_kernel
      + (len * (t.deliver_per_byte + plat.Platform.ipc_per_byte)));
    Queue.push pkt t.tx_q;
    t.tx_sent <- t.tx_sent + 1;
    t.tx_wakeups <- t.tx_wakeups + 1;
    Psd_sim.Cond.signal t.tx_cond
  | Shm _ ->
    Ctx.charge_at (kctx t) Psd_sim.Cpu.Kernel Phase.Entry_copyin
      (t.deliver_fixed + (len * t.deliver_per_byte));
    let ring = Option.get t.tx_ring in
    if Psd_util.Ring.push ring pkt then begin
      t.tx_sent <- t.tx_sent + 1;
      if t.tx_waiting > 0 then begin
        t.tx_wakeups <- t.tx_wakeups + 1;
        Ctx.charge_at (kctx t) Psd_sim.Cpu.Kernel Phase.Entry_copyin
          plat.Platform.wakeup_kernel;
        Psd_sim.Cond.signal t.tx_cond
      end
    end
    else t.tx_dropped <- t.tx_dropped + 1

let send_batch t pkts = List.iter (fun pkt -> send t pkt) pkts

let tx_pop t =
  match t.kind with
  | Ipc -> Queue.take_opt t.tx_q
  | Shm _ -> Psd_util.Ring.pop (Option.get t.tx_ring)

let rec tx_recv t =
  match tx_pop t with
  | Some pkt -> pkt
  | None ->
    t.tx_waiting <- t.tx_waiting + 1;
    Psd_sim.Cond.wait t.tx_cond;
    t.tx_waiting <- t.tx_waiting - 1;
    tx_recv t

let try_tx_recv t = tx_pop t

let tx_drain t =
  let rec go acc =
    match tx_pop t with Some pkt -> go (pkt :: acc) | None -> List.rev acc
  in
  go []

let tx_recv_batch t =
  match tx_drain t with
  | [] ->
    let pkt = tx_recv t in
    pkt :: tx_drain t
  | pkts -> pkts

let tx_queued t =
  match t.kind with
  | Ipc -> Queue.length t.tx_q
  | Shm _ -> Psd_util.Ring.length (Option.get t.tx_ring)

let tx_dropped t = t.tx_dropped

let tx_wakeups t = t.tx_wakeups

let tx_sent t = t.tx_sent

(* --- receive direction -------------------------------------------- *)

let pop t =
  match t.kind with
  | Ipc -> Queue.take_opt t.q
  | Shm _ -> Psd_util.Ring.pop (Option.get t.ring)

let rec recv t =
  match pop t with
  | Some pkt -> pkt
  | None ->
    t.waiting <- t.waiting + 1;
    Psd_sim.Cond.wait t.cond;
    t.waiting <- t.waiting - 1;
    recv t

let try_recv t = pop t

(* Drain everything already queued, oldest first, without blocking —
   the paper's SHM batching observable: a receiver woken once consumes
   the whole packet train that accumulated while it ran. *)
let drain t =
  let rec go acc =
    match pop t with Some pkt -> go (pkt :: acc) | None -> List.rev acc
  in
  go []

(* Blocking batch receive. Identical event sequence to per-packet
   [recv]: popping a non-empty queue never blocks or charges, and the
   waiting++/wait/waiting-- discipline on empty is [recv]'s own — so
   wakeup accounting (and therefore virtual time) is unchanged, only the
   number of OCaml-level loop iterations per wakeup drops. *)
let recv_batch t =
  match drain t with
  | [] ->
    let pkt = recv t in
    pkt :: drain t
  | pkts -> pkts

let queued t =
  match t.kind with
  | Ipc -> Queue.length t.q
  | Shm _ -> Psd_util.Ring.length (Option.get t.ring)

let dropped t = t.dropped

let wakeups t = t.wakeups

let delivered t = t.delivered
