open Psd_cost

type rx_mode = Rx_full_copy | Rx_deferred

type filter_id = int

type filter = {
  id : filter_id;
  prio : int;
  matcher : Bytes.t -> int * int;  (* (accepted_bytes, instructions) *)
  sink : Bytes.t -> unit;
}

type t = {
  host : Host.t;
  nic : Psd_link.Segment.nic;
  mutable mode : rx_mode;
  mutable filters : filter list; (* sorted by prio *)
  mutable egress : (filter_id * (Bytes.t -> int * int)) list;
  mutable next_id : int;
  mutable rx_frames : int;
  mutable rx_unmatched : int;
  mutable tx_blocked : int;
  (* smart-NIC offload: when set, frames bypass the interrupt/filter
     machinery entirely and flow through the NIC pipeline model *)
  mutable offload : (Nicpipe.t * (Bytes.t -> unit)) option;
}

let create ?(shard = 0) host segment ~mac =
  let nic = Psd_link.Segment.attach_on segment ~shard ~mac in
  let t =
    {
      host;
      nic;
      mode = Rx_full_copy;
      filters = [];
      egress = [];
      next_id = 1;
      rx_frames = 0;
      rx_unmatched = 0;
      tx_blocked = 0;
      offload = None;
    }
  in
  Psd_link.Segment.set_rx nic (fun frame ->
      match t.offload with
      | Some (pipe, sink) ->
        (* no interrupt fiber, no filter run: the NIC pipeline carries
           the frame and the stack sees it at pipeline completion; the
           body reaches the host only by DMA into a loaned buffer *)
        t.rx_frames <- t.rx_frames + 1;
        Nicpipe.admit_deliver pipe ~dir:Nicpipe.Rx ~len:(Bytes.length frame)
          (fun () -> sink frame)
      | None ->
      Psd_sim.Engine.spawn (Host.eng host) ~name:"netintr" (fun () ->
          let plat = Host.plat host in
          let kctx = Host.kernel_ctx host in
          let len = Bytes.length frame in
          t.rx_frames <- t.rx_frames + 1;
          (* interrupt + driver read *)
          let intr_cost =
            match t.mode with
            | Rx_full_copy ->
              (* the driver copies the whole frame out of device memory;
                 deferred mode only peeks at headers and leaves the body
                 for the input-packet-filter path to move once *)
              Psd_util.Copies.count Psd_util.Copies.Rx_device len;
              plat.Platform.intr + plat.Platform.drv_rx_fixed
              + (len * plat.Platform.device_read_per_byte)
            | Rx_deferred -> plat.Platform.intr + plat.Platform.drv_rx_peek
          in
          Ctx.charge_at kctx Psd_sim.Cpu.Interrupt Phase.Device_intr
            intr_cost;
          (* demultiplex through the filters, first match wins *)
          let insns = ref 0 in
          let rec demux = function
            | [] -> None
            | f :: rest ->
              let accept, steps = f.matcher frame in
              insns := !insns + steps;
              if accept > 0 then Some f else demux rest
          in
          let matched = demux t.filters in
          Ctx.charge_at kctx Psd_sim.Cpu.Interrupt Phase.Netisr_filter
            (plat.Platform.netisr + plat.Platform.pf_base
            + (!insns * plat.Platform.pf_per_insn));
          match matched with
          | Some f -> f.sink frame
          | None -> t.rx_unmatched <- t.rx_unmatched + 1));
  t

let mac t = Psd_link.Segment.mac t.nic

let host t = t.host

let wire_busy_ns t = Psd_link.Segment.nic_busy_ns t.nic

let set_rx_mode t mode = t.mode <- mode

let set_fault t f = Psd_link.Segment.set_nic_fault t.nic f

let fault t = Psd_link.Segment.nic_fault t.nic

(* The demultiplexing fast-path ladder (cheapest engine that can decide
   the program, chosen once at install time):
     1. flat descriptor — session filters reduce to a few direct byte
        comparisons;
     2. compiled closures — any valid program (snoop/wiretap filters,
        hand-written programs);
     3. the interpreter — unreachable in practice since every valid
        program compiles, but kept as the semantic reference.
   All three report the executed-instruction count the interpreter would
   have produced, so the charged virtual time is identical whichever
   rung runs. *)
let make_matcher ?flat prog =
  match flat with
  | Some f -> fun frame -> Psd_bpf.Filter.flat_run f frame
  | None -> (
    match Psd_bpf.Compile.compile prog with
    | Ok c -> fun frame -> Psd_bpf.Compile.run c frame
    | Error _ -> (
      fun frame ->
        match Psd_bpf.Vm.run prog frame with
        | Ok r -> r
        | Error `Invalid -> (0, 0)))

let attach t ?(prio = 10) ?flat ~prog ~sink () =
  (match Psd_bpf.Vm.validate prog with
  | Ok () -> ()
  | Error e ->
    invalid_arg
      (Format.asprintf "Netdev.attach: invalid filter: %a" Psd_bpf.Vm.pp_error
         e));
  let id = t.next_id in
  t.next_id <- id + 1;
  let f = { id; prio; matcher = make_matcher ?flat prog; sink } in
  t.filters <-
    List.stable_sort
      (fun a b -> compare a.prio b.prio)
      (f :: t.filters);
  id

let detach t id = t.filters <- List.filter (fun f -> f.id <> id) t.filters

(* Outgoing packet limiting (paper Section 3.4): when egress filters are
   installed, a frame must be accepted by at least one of them or it is
   silently discarded. The check runs in the kernel, after the trap, so
   an application library cannot bypass it. *)
let egress_allows t frame =
  match t.egress with
  | [] -> true
  | progs ->
    let plat = Host.plat t.host in
    let insns = ref 0 in
    let ok =
      List.exists
        (fun (_, matcher) ->
          let accept, steps = matcher frame in
          insns := !insns + steps;
          accept > 0)
        progs
    in
    Psd_sim.Engine.spawn (Host.eng t.host) ~name:"egress-charge" (fun () ->
        Ctx.charge_at (Host.kernel_ctx t.host) Psd_sim.Cpu.Kernel
          Phase.Ether_output
          (plat.Platform.pf_base + (!insns * plat.Platform.pf_per_insn)));
    ok

let transmit t ~ctx ~from_user frame =
  match t.offload with
  | Some (pipe, _) ->
    (* descriptor-posted send: no trap, no host device write — the NIC
       DMAs the frame and serialises it after its tx pipeline *)
    if egress_allows t frame then
      Nicpipe.admit_deliver pipe ~dir:Nicpipe.Tx ~len:(Bytes.length frame)
        (fun () -> Psd_link.Segment.transmit t.nic frame)
    else t.tx_blocked <- t.tx_blocked + 1
  | None ->
    let plat = Host.plat t.host in
    let len = Bytes.length frame in
    let cost =
      (if from_user then
         plat.Platform.trap + (len * plat.Platform.copy_user_kernel_per_byte)
       else 0)
      + (len * plat.Platform.device_write_per_byte)
    in
    Ctx.charge ctx Phase.Ether_output cost;
    if egress_allows t frame then Psd_link.Segment.transmit t.nic frame
    else t.tx_blocked <- t.tx_blocked + 1

(* Burst transmit for a batched sender (Pktchan tx_recv_batch): each
   frame pays exactly [transmit]'s charges in order, so a batch is
   cost- and event-identical to the per-frame loop it replaces. *)
let transmit_batch t ~ctx ~from_user frames =
  List.iter (fun frame -> transmit t ~ctx ~from_user frame) frames

let attach_egress t ~prog () =
  (match Psd_bpf.Vm.validate prog with
  | Ok () -> ()
  | Error e ->
    invalid_arg
      (Format.asprintf "Netdev.attach_egress: invalid filter: %a"
         Psd_bpf.Vm.pp_error e));
  let id = t.next_id in
  t.next_id <- id + 1;
  t.egress <- (id, make_matcher prog) :: t.egress;
  id

let detach_egress t id =
  t.egress <- List.filter (fun (id', _) -> id' <> id) t.egress

let tx_blocked t = t.tx_blocked

let rx_frames t = t.rx_frames

let rx_unmatched t = t.rx_unmatched

let filters t = List.length t.filters

let install_offload t pipe ~sink = t.offload <- Some (pipe, sink)

let offload_pipe t = Option.map fst t.offload
