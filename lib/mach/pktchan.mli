(** Kernel→address-space packet delivery channels.

    The three user/kernel network interfaces the paper measures map onto
    two channel kinds plus a cost parameterisation:

    - [`Ipc]: one Mach message per packet (Library-IPC). Every delivery
      pays the message cost, and the receiver is scheduled per packet.
    - [`Shm cap]: a fixed-size shared-memory ring (Library-SHM and
      Library-SHM-IPF). The kernel copies the packet into the ring and
      signals a lightweight condition variable {e only when the receiver
      is blocked} — packet trains amortise the scheduling cost, which is
      exactly why SHM beats IPC on throughput (paper Section 4.1).

    The per-byte copy charged at delivery is a parameter because it
    differs between SHM (copy out of a wired kernel buffer) and SHM-IPF
    (deferred copy straight out of device memory). *)

type t

type kind = Ipc | Shm of int  (** ring capacity *)

val create :
  ?newapi:bool ->
  Host.t ->
  kind:kind ->
  deliver_fixed:int ->
  deliver_per_byte:int ->
  t
(** [~newapi:true] marks the channel's receive memory as loaned by the
    application (the paper's NEWAPI shared-buffer variants): deposits
    are then counted at the [Rx_loan] API-boundary site instead of the
    [Rx_ring]/second-[Rx_ipc] body-copy sites. Pure bookkeeping — the
    virtual-time charges are identical either way. Default [false]. *)

val deliver : t -> Bytes.t -> unit
(** Kernel side; called from the interrupt/netisr fiber. Charges the
    kernel context under [Kernel_copyout]. IPC channels also pay the
    message cost; full rings drop the packet. *)

val recv : t -> Bytes.t
(** Receiver side; blocks the calling fiber until a packet arrives. *)

val try_recv : t -> Bytes.t option

val drain : t -> Bytes.t list
(** Every packet already queued, oldest first, without blocking (empty
    list when none). *)

val recv_batch : t -> Bytes.t list
(** Blocking batch receive: the whole queued packet train in one call
    (blocking like {!recv} only when the channel is empty). Event-order
    identical to calling {!recv} per packet; one wakeup now amortises
    over the train — the paper's SHM batching observable. *)

val queued : t -> int

val dropped : t -> int
(** Packets lost to ring overflow since creation. *)

val wakeups : t -> int
(** Scheduler wakeups performed — the batching observable. *)

val delivered : t -> int

(** {1 Transmit direction}

    The mirror image of delivery: the application (library stack)
    enqueues outgoing frames toward the kernel. An IPC channel pays the
    per-frame message cost; an SHM channel shares the ring discipline
    (same capacity as the receive ring) and wakes the kernel-side
    consumer only when it is blocked, so a bulk sender enqueues a burst
    per wakeup — {!send_batch} is the symmetric observable to
    {!recv_batch}. Costs are charged to the kernel context under
    [Entry_copyin] with exactly [deliver]'s formulas. The default
    simulator transmit path does not route through these queues (that
    would reorder events against the recorded baselines); they are the
    tx counterpart measured by the bench and test suites. *)

val send : t -> Bytes.t -> unit
(** Application side. IPC channels pay the message cost per frame; a
    full SHM tx ring tail-drops the frame (see {!tx_dropped}). *)

val send_batch : t -> Bytes.t list -> unit
(** [send_batch t pkts] enqueues [pkts] in order; equivalent to
    [List.iter (send t) pkts] in cost, ordering, and drop behaviour. *)

val tx_recv : t -> Bytes.t
(** Kernel side; blocks the calling fiber until a frame is queued. *)

val try_tx_recv : t -> Bytes.t option

val tx_drain : t -> Bytes.t list
(** Every frame already queued, oldest first, without blocking. *)

val tx_recv_batch : t -> Bytes.t list
(** Blocking batch receive of the queued frame train; event-order
    identical to per-frame {!tx_recv}. *)

val tx_queued : t -> int

val tx_dropped : t -> int
(** Frames lost to tx-ring overflow since creation. *)

val tx_wakeups : t -> int

val tx_sent : t -> int
(** Frames accepted into the tx channel since creation. *)
