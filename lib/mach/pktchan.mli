(** Kernel→address-space packet delivery channels.

    The three user/kernel network interfaces the paper measures map onto
    two channel kinds plus a cost parameterisation:

    - [`Ipc]: one Mach message per packet (Library-IPC). Every delivery
      pays the message cost, and the receiver is scheduled per packet.
    - [`Shm cap]: a fixed-size shared-memory ring (Library-SHM and
      Library-SHM-IPF). The kernel copies the packet into the ring and
      signals a lightweight condition variable {e only when the receiver
      is blocked} — packet trains amortise the scheduling cost, which is
      exactly why SHM beats IPC on throughput (paper Section 4.1).

    The per-byte copy charged at delivery is a parameter because it
    differs between SHM (copy out of a wired kernel buffer) and SHM-IPF
    (deferred copy straight out of device memory). *)

type t

type kind = Ipc | Shm of int  (** ring capacity *)

val create :
  Host.t -> kind:kind -> deliver_fixed:int -> deliver_per_byte:int -> t

val deliver : t -> Bytes.t -> unit
(** Kernel side; called from the interrupt/netisr fiber. Charges the
    kernel context under [Kernel_copyout]. IPC channels also pay the
    message cost; full rings drop the packet. *)

val recv : t -> Bytes.t
(** Receiver side; blocks the calling fiber until a packet arrives. *)

val try_recv : t -> Bytes.t option

val drain : t -> Bytes.t list
(** Every packet already queued, oldest first, without blocking (empty
    list when none). *)

val recv_batch : t -> Bytes.t list
(** Blocking batch receive: the whole queued packet train in one call
    (blocking like {!recv} only when the channel is empty). Event-order
    identical to calling {!recv} per packet; one wakeup now amortises
    over the train — the paper's SHM batching observable. *)

val queued : t -> int

val dropped : t -> int
(** Packets lost to ring overflow since creation. *)

val wakeups : t -> int
(** Scheduler wakeups performed — the batching observable. *)

val delivered : t -> int
