open Psd_cost

type dir = Tx | Rx

type t = {
  eng : Psd_sim.Engine.t;
  prof : Platform.nic;
  (* analytic stage-occupancy clocks, all in absolute virtual time *)
  mutable pre_free : int;
  pe_free : int array;
  mutable post_free : int;
  (* bounded descriptor ring: completion time of the admission that used
     each slot; a new segment may not start before the slot it reuses
     (ring_slots admissions ago) has completed *)
  ring : int array;
  mutable ring_head : int;
  (* counters *)
  mutable tx_segs : int;
  mutable rx_segs : int;
  mutable doorbells : int;
  mutable completions : int;
  mutable ring_stalls : int;
  mutable ring_stall_ns : int;
  mutable pre_stall_ns : int;
  mutable proto_stall_ns : int;
  mutable post_stall_ns : int;
  mutable busy_pre_ns : int;
  mutable busy_proto_ns : int;
  mutable busy_post_ns : int;
  mutable first_admit_ns : int;
  mutable last_done_ns : int;
}

let create eng (prof : Platform.nic) =
  if prof.Platform.pes < 1 then invalid_arg "Nicpipe.create: pes < 1";
  if prof.Platform.ring_slots < 1 then
    invalid_arg "Nicpipe.create: ring_slots < 1";
  {
    eng;
    prof;
    pre_free = 0;
    pe_free = Array.make prof.Platform.pes 0;
    post_free = 0;
    ring = Array.make prof.Platform.ring_slots 0;
    ring_head = 0;
    tx_segs = 0;
    rx_segs = 0;
    doorbells = 0;
    completions = 0;
    ring_stalls = 0;
    ring_stall_ns = 0;
    pre_stall_ns = 0;
    proto_stall_ns = 0;
    post_stall_ns = 0;
    busy_pre_ns = 0;
    busy_proto_ns = 0;
    busy_post_ns = 0;
    first_admit_ns = -1;
    last_done_ns = 0;
  }

let profile t = t.prof

(* Admit one segment into the three-stage pipeline and return the
   absolute virtual time its post-order stage (including DMA) completes.

   Determinism: everything is computed analytically at admission time
   from the stage clocks, so the result depends only on the admission
   order, which is the engine's deterministic event order.  The protocol
   stage picks the earliest-free processing element, breaking ties by
   lowest index (the rule DESIGN.md section 16 documents).  Pre-order and
   post-order are serialised; because [post_free] is monotone in
   admission order, completions leave in admission (FIFO) order even
   when a short segment overtakes a long one inside the protocol
   stage. *)
let admit t ~dir ~len =
  let now = Psd_sim.Engine.now t.eng in
  if t.first_admit_ns < 0 then t.first_admit_ns <- now;
  let p = t.prof in
  (* bounded descriptor ring back-pressure *)
  let slot_free = t.ring.(t.ring_head) in
  let start0 = max now slot_free in
  if start0 > now then begin
    t.ring_stalls <- t.ring_stalls + 1;
    t.ring_stall_ns <- t.ring_stall_ns + (start0 - now)
  end;
  (* pre-order: parse/demux, serialised *)
  let pre_start = max start0 t.pre_free in
  t.pre_stall_ns <- t.pre_stall_ns + (pre_start - start0);
  let pre_cost = p.Platform.pre_fixed + (len * p.Platform.pre_per_byte) in
  let pre_done = pre_start + pre_cost in
  t.pre_free <- pre_done;
  t.busy_pre_ns <- t.busy_pre_ns + pre_cost;
  (* protocol: earliest-free PE, lowest index on ties *)
  let best = ref 0 in
  for i = 1 to Array.length t.pe_free - 1 do
    if t.pe_free.(i) < t.pe_free.(!best) then best := i
  done;
  let proto_start = max pre_done t.pe_free.(!best) in
  t.proto_stall_ns <- t.proto_stall_ns + (proto_start - pre_done);
  let proto_cost = p.Platform.proto_fixed + (len * p.Platform.proto_per_byte) in
  let proto_done = proto_start + proto_cost in
  t.pe_free.(!best) <- proto_done;
  t.busy_proto_ns <- t.busy_proto_ns + proto_cost;
  (* post-order: reorder point + DMA, serialised FIFO *)
  let post_start = max proto_done t.post_free in
  t.post_stall_ns <- t.post_stall_ns + (post_start - proto_done);
  let post_cost =
    p.Platform.post_fixed
    + (len * (p.Platform.post_per_byte + p.Platform.dma_per_byte))
  in
  let post_done = post_start + post_cost in
  t.post_free <- post_done;
  t.busy_post_ns <- t.busy_post_ns + post_cost;
  t.ring.(t.ring_head) <- post_done;
  t.ring_head <- (t.ring_head + 1) mod Array.length t.ring;
  (match dir with
  | Tx -> t.tx_segs <- t.tx_segs + 1
  | Rx -> t.rx_segs <- t.rx_segs + 1);
  if post_done > t.last_done_ns then t.last_done_ns <- post_done;
  post_done

let admit_deliver t ~dir ~len k =
  let done_at = admit t ~dir ~len in
  Psd_sim.Engine.schedule_abs t.eng ~key:done_at (fun () -> k ())

let doorbell t = t.doorbells <- t.doorbells + 1

let completion t = t.completions <- t.completions + 1

let segs t = t.tx_segs + t.rx_segs

let doorbells t = t.doorbells

let completions t = t.completions

let span_ns t = if t.first_admit_ns < 0 then 0 else t.last_done_ns - t.first_admit_ns

(* Occupancy of the protocol-stage PE pool over the interval the pipeline
   was active, in percent. *)
let proto_occupancy_pct t =
  let span = span_ns t in
  if span <= 0 then 0
  else t.busy_proto_ns * 100 / (span * Array.length t.pe_free)

let counters t =
  [
    ("segs offloaded", segs t);
    ("tx segs", t.tx_segs);
    ("rx segs", t.rx_segs);
    ("doorbells", t.doorbells);
    ("completions", t.completions);
    ("ring stalls", t.ring_stalls);
    ("ring stall ns", t.ring_stall_ns);
    ("pre-order stall ns", t.pre_stall_ns);
    ("protocol stall ns", t.proto_stall_ns);
    ("post-order stall ns", t.post_stall_ns);
    ("pre-order busy ns", t.busy_pre_ns);
    ("protocol busy ns", t.busy_proto_ns);
    ("post-order busy ns", t.busy_post_ns);
    ("protocol occupancy %", proto_occupancy_pct t);
  ]
