open Psd_cost

type ('req, 'resp) port = {
  host : Host.t;
  mb : ('req * ('resp -> unit)) Psd_sim.Mailbox.t;
}

let create_port host = { host; mb = Psd_sim.Mailbox.create (Host.eng host) }

let serve port ?(workers = 2) handler =
  for _ = 1 to workers do
    Psd_sim.Engine.spawn (Host.eng port.host) ~name:"ipc-server" (fun () ->
        let rec loop () =
          let req, reply = Psd_sim.Mailbox.recv port.mb in
          reply (handler req);
          loop ()
        in
        loop ())
  done

let msg_cost (plat : Platform.t) bytes =
  plat.Platform.ipc_msg + (bytes * plat.Platform.ipc_per_byte)

let call port ~ctx ~phase ?(req_bytes = 64) ?(resp_size = fun _ -> 64) req
    =
  let plat = ctx.Ctx.plat in
  (* request half: trap, message, handoff to the server *)
  Ctx.charge ctx phase
    (plat.Platform.trap + msg_cost plat req_bytes
   + plat.Platform.wakeup_kernel);
  let result = ref None in
  let cond = Psd_sim.Cond.create (Host.eng port.host) in
  Psd_sim.Mailbox.send port.mb
    ( req,
      fun resp ->
        result := Some resp;
        Psd_sim.Cond.signal cond );
  let resp = Psd_sim.Cond.until cond (fun () -> !result) in
  (* reply half: message back plus our own wakeup *)
  Ctx.charge ctx phase
    (msg_cost plat (resp_size resp) + plat.Platform.wakeup_kernel);
  resp

let oneway port ~ctx ~phase ?(req_bytes = 64) req =
  let plat = ctx.Ctx.plat in
  Ctx.charge ctx phase
    (plat.Platform.trap + msg_cost plat req_bytes
   + plat.Platform.wakeup_kernel);
  Psd_sim.Mailbox.send port.mb (req, fun _ -> ())

let queue_length port = Psd_sim.Mailbox.length port.mb
