(** The kernel network interface: device driver, interrupt path, and the
    packet-filter demultiplexer.

    Receive path: NIC interrupt → driver reads the frame out of device
    memory (entirely, or just the headers when the integrated packet
    filter defers the body copy) → installed filters run in priority
    order → the first match's sink takes the frame. Send path: a
    low-latency trap copies the frame from the sender's address space
    into a wired kernel buffer and hands it to the device. *)

type t

type rx_mode =
  | Rx_full_copy  (** copy the whole frame out of the device at interrupt
                      time (standard driver) *)
  | Rx_deferred  (** integrated packet filter: peek at headers only;
                     whoever delivers the packet pays the single body
                     copy from device memory (Library-SHM-IPF) *)

type filter_id

val create :
  ?shard:int -> Host.t -> Psd_link.Segment.t -> mac:Psd_link.Macaddr.t -> t
(** [?shard] (default 0) places the NIC on that shard of a duplex
    segment (see {!Psd_link.Segment.attach_on}); the host must have
    been built on the same shard's engine. *)

val mac : t -> Psd_link.Macaddr.t

val host : t -> Host.t

val wire_busy_ns : t -> int
(** Cumulative transmit serialisation time of this device's NIC on a
    duplex segment (0 on a classic shared segment, whose busy time is
    segment-wide). Safe to read from the owning shard. *)

val set_rx_mode : t -> rx_mode -> unit

val set_fault : t -> Psd_link.Fault.t option -> unit
(** Subject every frame delivered to this device to a fault process
    (drop/duplicate/reorder/corrupt/jitter) before the interrupt fires.
    Overrides any segment-wide fault process for this NIC. *)

val fault : t -> Psd_link.Fault.t option

val attach :
  t ->
  ?prio:int ->
  ?flat:Psd_bpf.Filter.flat ->
  prog:Psd_bpf.Vm.program ->
  sink:(Bytes.t -> unit) ->
  unit ->
  filter_id
(** Install a validated filter program. Lower [prio] runs first (default
    10); session-specific filters should outrank wildcard ones. The sink
    runs in the interrupt fiber after demultiplexing costs are charged —
    it should enqueue, not process.

    Demultiplexing runs the cheapest engine that can decide the program:
    the [?flat] descriptor when the caller derived one from a session
    spec (direct byte comparisons), otherwise the program compiled to
    closures, with the interpreter as the final fallback. All rungs
    report the interpreter's executed-instruction count, so the charged
    virtual time does not depend on which engine ran. The caller is
    responsible for [flat] describing the same predicate as [prog].
    @raise Invalid_argument if the program fails validation. *)

val detach : t -> filter_id -> unit

val transmit : t -> ctx:Psd_cost.Ctx.t -> from_user:bool -> Bytes.t -> unit
(** Send a complete Ethernet frame. [from_user] adds the trap and the
    user→kernel copy (library and server placements). Device-write costs
    are charged to [ctx]; wire serialisation is handled by the segment.
    When egress filters are installed, frames none of them accept are
    silently dropped (counted in {!tx_blocked}). *)

val transmit_batch :
  t -> ctx:Psd_cost.Ctx.t -> from_user:bool -> Bytes.t list -> unit
(** Send a burst of frames in order. Cost- and event-identical to
    calling {!transmit} per frame; exists as the device-side consumer
    of a batched tx channel ({!Pktchan.tx_recv_batch}). *)

val attach_egress : t -> prog:Psd_bpf.Vm.program -> unit -> filter_id
(** Install an outgoing-packet limiter (paper Section 3.4): with one or
    more egress filters present, only frames at least one accepts may
    leave. The check runs in the kernel, below the protocol library, so
    applications cannot spoof packets past it.
    @raise Invalid_argument if the program fails validation. *)

val detach_egress : t -> filter_id -> unit

val tx_blocked : t -> int
(** Frames discarded by the egress limiter since creation. *)

val rx_frames : t -> int

val rx_unmatched : t -> int
(** Frames no filter accepted (counted, then dropped). *)

val filters : t -> int

val install_offload : t -> Nicpipe.t -> sink:(Bytes.t -> unit) -> unit
(** Put the device in smart-NIC offload mode: every received frame is
    admitted into the pipeline (no interrupt fiber, no filter run) and
    handed to [sink] at pipeline completion; every transmitted frame is
    descriptor-posted (no trap, no host device-write cost) and reaches
    the wire when its tx pipeline completes. *)

val offload_pipe : t -> Nicpipe.t option
