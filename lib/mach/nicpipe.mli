(** The on-NIC processing model: a FlexTOE-style per-segment stage
    pipeline in virtual time.

    Each admitted segment flows through three stages — serialised
    pre-order (parse, flow demux), an N-wide protocol stage (TCP state
    machine, checksum) on identical processing elements, and serialised
    post-order (reorder point, completion, DMA).  Stage occupancy is
    tracked analytically: admission computes the segment's completion
    time from the stage clocks without spawning fibers, so two segments
    of one connection overlap in different stages and the whole model
    costs O(pes) per segment.

    Determinism: completion times depend only on admission order (the
    engine's event order); the protocol stage picks the earliest-free
    element with lowest-index tie-break, and the serialised post-order
    clock restores FIFO completion order (DESIGN.md section 16). *)

type t

type dir = Tx | Rx

val create : Psd_sim.Engine.t -> Psd_cost.Platform.nic -> t
(** @raise Invalid_argument if the profile has no processing element or
    no ring slot. *)

val profile : t -> Psd_cost.Platform.nic

val admit : t -> dir:dir -> len:int -> int
(** Admit one [len]-byte segment now; returns the absolute virtual time
    its post-order stage (including DMA) completes.  The bounded
    descriptor ring back-pressures admission: a segment may not start
    before the ring slot it reuses has completed. *)

val admit_deliver : t -> dir:dir -> len:int -> (unit -> unit) -> unit
(** [admit_deliver t ~dir ~len k] admits the segment and runs [k] at its
    completion time ([k] is an engine callback — it must not block). *)

val doorbell : t -> unit
(** Count one host doorbell write (the host-side cost is charged by the
    socket layer). *)

val completion : t -> unit
(** Count one host completion reap. *)

val segs : t -> int

val doorbells : t -> int

val completions : t -> int

val span_ns : t -> int
(** Virtual time between the first admission and the last completion. *)

val proto_occupancy_pct : t -> int
(** Busy fraction of the protocol-stage processing-element pool over
    {!span_ns}, in percent. *)

val counters : t -> (string * int) list
(** Counter list in [Stats.pp_counters] shape: segments offloaded per
    direction, doorbells, completions, per-stage stall and busy time,
    protocol-stage occupancy. *)
