(** Tasks: address spaces / processes on a host.

    Tasks matter to the protocol architecture for two reasons: sessions
    live in exactly one address space at a time, and the operating system
    must notice task death to abort connections the dead task was
    managing (paper Section 3.2, "Terminating session state"). [fork]
    duplicates the UNIX process abstraction so the fork/migration
    semantics can be exercised. *)

type t

val create : Host.t -> ?parent:t -> name:string -> unit -> t

val id : t -> int

val name : t -> string

val host : t -> Host.t

val parent : t -> t option

val alive : t -> bool

val on_exit : t -> (unit -> unit) -> unit
(** Register a death hook (the OS server uses this to clean up network
    state). Hooks run in registration order when {!exit} is called. *)

val exit : t -> unit
(** Terminate the task; idempotent. *)

val fork : t -> name:string -> t
(** Create a child task. The caller (socket layer) is responsible for
    returning sessions to the operating system first, per the paper's
    fork protocol. @raise Invalid_argument if the task is dead. *)
