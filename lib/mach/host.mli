(** A simulated machine: one CPU, one hardware platform, tasks, and a
    Mach-style kernel boundary. *)

type t

val create :
  eng:Psd_sim.Engine.t -> plat:Psd_cost.Platform.t -> name:string -> t

val eng : t -> Psd_sim.Engine.t

val cpu : t -> Psd_sim.Cpu.t

val plat : t -> Psd_cost.Platform.t

val name : t -> string

val kernel_ctx : t -> Psd_cost.Ctx.t
(** The context in which kernel machinery (interrupts, packet filter,
    IPC) charges its time. *)

val fresh_task_id : t -> int
