(** 32-bit modular TCP sequence-number arithmetic (RFC 793 section 3.3). *)

type t = int
(** Always in [0, 2^32). *)

val add : t -> int -> t

val sub : t -> int -> t

val diff : t -> t -> int
(** [diff a b] is the signed distance [a - b], correct when the true
    distance is within half the sequence space. *)

val lt : t -> t -> bool
(** [lt a b]: [a] is strictly before [b] in sequence space. *)

val leq : t -> t -> bool

val gt : t -> t -> bool

val geq : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val in_window : t -> base:t -> size:int -> bool
(** [in_window x ~base ~size]: [base <= x < base + size] modulo 2^32. *)
