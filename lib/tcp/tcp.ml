open Psd_mbuf
open Psd_cost

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let pp_state fmt s =
  let name =
    match s with
    | Closed -> "CLOSED"
    | Listen -> "LISTEN"
    | Syn_sent -> "SYN_SENT"
    | Syn_received -> "SYN_RCVD"
    | Established -> "ESTABLISHED"
    | Fin_wait_1 -> "FIN_WAIT_1"
    | Fin_wait_2 -> "FIN_WAIT_2"
    | Close_wait -> "CLOSE_WAIT"
    | Closing -> "CLOSING"
    | Last_ack -> "LAST_ACK"
    | Time_wait -> "TIME_WAIT"
  in
  Format.fprintf fmt "%s" name

type error = Refused | Reset | Timed_out

let pp_error fmt e =
  Format.fprintf fmt "%s"
    (match e with
    | Refused -> "connection refused"
    | Reset -> "connection reset by peer"
    | Timed_out -> "connection timed out")

type stats = {
  mutable segs_out : int;
  mutable bytes_out : int;
  mutable segs_in : int;
  mutable bytes_in : int;
  mutable rexmt_segs : int;
  mutable fast_rexmt : int;
  mutable dup_acks_in : int;
  mutable ooo_segs : int;
  mutable acks_delayed : int;
  mutable rst_out : int;
  mutable drop_checksum : int;
  mutable drop_malformed : int;
  mutable drop_no_pcb : int;
  mutable predict_hit : int;
  mutable predict_miss : int;
}

type conn_key = { lport : int; rip : Psd_ip.Addr.t; rport : int }

(* C1M compaction: the seed PCB spent ~360 bytes on 44 fields, nine of
   them one-word bools and two of them option-boxed pairs. The packed
   layout folds every boolean (and the five [tm_pending] bits) into one
   [flags] int, flattens [rtt_timing : (Seq.t * int) option] into two
   int fields with a [-1] "not timing" sentinel, and stores the FIN
   sequence as an int with the same sentinel. [gen] supports the PCB
   free list: it bumps on every reuse so timer fibers armed against a
   previous life of the record skip instead of acting on the wrong
   connection. [owner] is an upcall token for the socket layer (an exn
   used as a universal type) so one shared [handlers] record per stack
   can recover the socket from the pcb — the seed allocated six
   closures per connection instead. *)
type pcb = {
  t : t;
  mutable key : conn_key;
  mutable state : state;
  mutable handlers : handlers;
  mutable owner : exn;
  (* bits 0-4: [tm_pending] per timer slot; bits 5+: the former bools *)
  mutable flags : int;
  mutable gen : int;
  (* send side *)
  sndq : Mbuf.t;
  mutable data_base : Seq.t; (* sequence number of sndq head byte *)
  mutable snd_una : Seq.t;
  mutable snd_nxt : Seq.t;
  mutable snd_max : Seq.t;
  mutable snd_wnd : int;
  mutable snd_wl1 : Seq.t;
  mutable snd_wl2 : Seq.t;
  mutable iss : Seq.t;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dup_acks : int;
  (* retransmission; [rtt_start < 0] = no segment being timed *)
  mutable srtt : int;
  mutable rttvar : int;
  mutable rto : int;
  mutable nrexmt : int;
  mutable rtt_seq : Seq.t;
  mutable rtt_start : int;
  (* Wheel-backed timer slots, indexed by [tm_rexmt .. tm_keep] through
     [tslot]; [flags] bit [slot] mirrors what the former per-slot
     [cancel option] field held ([Some _] = bit set). Five flat fields
     rather than an array: the array box cost 6 words on every PCB. *)
  tm0 : Psd_sim.Engine.timer;
  tm1 : Psd_sim.Engine.timer;
  tm2 : Psd_sim.Engine.timer;
  tm3 : Psd_sim.Engine.timer;
  tm4 : Psd_sim.Engine.timer;
  mutable last_activity : int;
  mutable keep_probes : int;
  (* receive side; [fin_rcvd < 0] = no FIN sequence pending *)
  mutable irs : Seq.t;
  mutable rcv_nxt : Seq.t;
  mutable rcv_buf : int;
  mutable rcv_buffered : int;
  mutable rcv_adv : Seq.t;
  mutable reass : (Seq.t * Mbuf.t) list; (* sorted by seq *)
  mutable fin_rcvd : Seq.t;
  mutable mss : int;
  (* buffered delivery before handlers are installed (pre-accept data) *)
  undelivered : Mbuf.t;
  mutable parent_listener : listener option;
}

and handlers = {
  deliver : pcb -> Mbuf.t -> unit;
  deliver_fin : pcb -> unit;
  on_established : pcb -> unit;
  on_acked : pcb -> int -> unit;
  on_error : pcb -> error -> unit;
  on_state : pcb -> state -> unit;
}

and listener = {
  (* accept queue and half-open count are both O(1) per event: the
     backlog check on each SYN must not scan the connection table, and
     accept must not rebuild a list *)
  l_t : t;
  l_port : int;
  l_backlog : int;
  l_queue : pcb Queue.t;
  mutable l_half_open : int; (* children in [Syn_received] pointing here *)
  mutable l_ready_cb : unit -> unit;
  mutable l_closed : bool;
}

and t = {
  ctx : Ctx.t;
  ip : Psd_ip.Ip.t;
  lock : Psd_sim.Lock.t;
  default_mss : int;
  msl_ns : int;
  rto_min_ns : int;
  rto_max_ns : int;
  rto_init_ns : int;
  delack_ns : int;
  max_rexmt : int;
  keep_idle_ns : int;
  keep_interval_ns : int;
  keep_max_probes : int;
  default_rcv_buf : int;
  conns : (conn_key, pcb) Hashtbl.t;
  (* one-entry demux memo: steady-state traffic is dominated by one
     connection, so remember the last pcb matched on input and skip the
     tuple-key hash. Invalidated on any [conns] removal. *)
  mutable memo : pcb option;
  listeners : (int, listener) Hashtbl.t;
  muted : (conn_key, int) Hashtbl.t; (* key -> expiry; migration quench *)
  (* header-prediction fast path enabled (observational knob: on or
     off, every virtual-time outcome is identical — see fast_synchronized) *)
  mutable predict : bool;
  (* maintained-count hook: called with +1/-1 as connections enter and
     leave [conns], so callers tracking populations over many stacks
     (the scale workloads) read a counter instead of walking stacks —
     per-tick stats stay O(1) in the connection count *)
  mutable conn_gauge : (int -> unit) option;
  (* PCB free list: dropped connections park here (up to [pool_cap])
     and [make_pcb] reuses them, so connect/close churn re-initialises
     one record instead of allocating a 40-word block + timer bank.
     [pool_cap = 0] disables pooling (the differential suite runs the
     same schedules pooled and unpooled and demands identical output). *)
  pool_cap : int;
  mutable pool : pcb list;
  mutable pool_free : int;
  mutable pool_fresh : int; (* PCBs built from scratch *)
  mutable pool_hits : int; (* PCBs served from the free list *)
  mutable pool_puts : int; (* PCBs returned to the free list *)
  st : stats;
}

exception No_owner

let null_handlers =
  {
    deliver = (fun _ _ -> ());
    deliver_fin = (fun _ -> ());
    on_established = (fun _ -> ());
    on_acked = (fun _ _ -> ());
    on_error = (fun _ _ -> ());
    on_state = (fun _ _ -> ());
  }

(* --- packed pcb flags --------------------------------------------- *)

let f_handlers_set = 1 lsl 5
let f_dead = 1 lsl 6
let f_fin_wanted = 1 lsl 7
let f_fin_sent = 1 lsl 8
let f_nodelay = 1 lsl 9
let f_keepalive = 1 lsl 10
let f_ack_now = 1 lsl 11
let f_delack_pending = 1 lsl 12
let f_fin_undelivered = 1 lsl 13
let f_pooled = 1 lsl 14

let[@inline] flag pcb bit = pcb.flags land bit <> 0

let[@inline] set_flag pcb bit v =
  if v then pcb.flags <- pcb.flags lor bit
  else pcb.flags <- pcb.flags land lnot bit

let[@inline] dead pcb = flag pcb f_dead

let[@inline] ack_now pcb = flag pcb f_ack_now

let[@inline] delack_pending pcb = flag pcb f_delack_pending

let[@inline] fin_wanted pcb = flag pcb f_fin_wanted

let[@inline] fin_sent pcb = flag pcb f_fin_sent

let stats t = t.st

let pool_stats t = (t.pool_fresh, t.pool_hits, t.pool_puts, t.pool_free)

let set_conn_gauge t g = t.conn_gauge <- Some g

(* The two [conns] mutation helpers keep the gauge exact even if a
   caller double-removes: the delta is derived from table membership. *)
let conns_insert t key pcb =
  let fresh = not (Hashtbl.mem t.conns key) in
  Hashtbl.replace t.conns key pcb;
  if fresh then match t.conn_gauge with Some g -> g 1 | None -> ()

let conns_remove t key =
  if Hashtbl.mem t.conns key then begin
    Hashtbl.remove t.conns key;
    match t.conn_gauge with Some g -> g (-1) | None -> ()
  end

let set_predict t v = t.predict <- v

let active_pcbs t = Hashtbl.length t.conns

let state pcb = pcb.state

let sndq_length pcb = Mbuf.length pcb.sndq

let rcv_buffered pcb = pcb.rcv_buffered

let local_port pcb = pcb.key.lport

let remote pcb = (pcb.key.rip, pcb.key.rport)

let set_nodelay pcb v = set_flag pcb f_nodelay v

(* The socket layer's upcall token: one shared [handlers] record per
   stack recovers its per-connection state from here instead of closing
   over it six times per connection. An exn is OCaml's lightest
   universal type; [No_owner] is the empty default. *)
let set_owner pcb e = pcb.owner <- e

let owner pcb = pcb.owner

let srtt_ns pcb = pcb.srtt

let cwnd pcb = pcb.cwnd

(* ----------------------------------------------------------------- *)
(* helpers                                                            *)

let set_state pcb s =
  if pcb.state <> s then begin
    pcb.state <- s;
    pcb.handlers.on_state pcb s
  end

let eng t = t.ctx.Ctx.eng

(* ----------------------------------------------------------------- *)
(* timer slots

   The five per-PCB timers share one wheel-backed slot mechanism:
   [set_timer] arms slot [i] (cancelling any previous arm) to run its
   body in a fresh fiber under the instance lock — the exact shape the
   five hand-rolled [Engine.after]+[spawn] blocks used to have.

   [tm_pending] deliberately tracks the *protocol's* view of each slot
   rather than the wheel node's linked state: the old code cleared the
   [cancel option] field at the top of the fire body (inside the lock),
   leaving a window between pop and body in which a concurrent re-arm
   installs a fresh token that the body's clear then discards without
   cancelling. Each fire body clears its bit at the same point the old
   code assigned [None], so that window — and every spurious re-fire it
   allows — is reproduced bit-for-bit. *)

let tm_rexmt = 0
let tm_persist = 1
let tm_delack = 2
let tm_msl = 3
let tm_keep = 4
let tm_count = 5

let tm_names =
  [| "tcp-rexmt"; "tcp-persist"; "tcp-delack"; "tcp-2msl"; "tcp-keep" |]

let[@inline] tslot pcb = function
  | 0 -> pcb.tm0
  | 1 -> pcb.tm1
  | 2 -> pcb.tm2
  | 3 -> pcb.tm3
  | _ -> pcb.tm4

let timer_pending pcb slot = pcb.flags land (1 lsl slot) <> 0

let clear_pending pcb slot = pcb.flags <- pcb.flags land lnot (1 lsl slot)

let stop_timer t pcb slot =
  clear_pending pcb slot;
  Psd_sim.Engine.timer_cancel (eng t) (tslot pcb slot)

(* The fire fiber latches [pcb.gen]: a pooled pcb may be recycled into
   a different connection between the wheel pop and the fiber running
   (both can happen in the same instant), and the generation check
   makes the body a no-op exactly where the unpooled code's
   [not pcb.dead] checks would have made it one — the dropped
   connection the timer belonged to no longer exists either way. *)
let set_timer t pcb slot dt body =
  pcb.flags <- pcb.flags lor (1 lsl slot);
  let g = pcb.gen in
  Psd_sim.Engine.timer_arm (eng t) (tslot pcb slot) dt (fun () ->
      Psd_sim.Engine.spawn (eng t) ~name:tm_names.(slot) (fun () ->
          Psd_sim.Lock.with_lock t.lock (fun () ->
              if pcb.gen = g then body ())))

let fin_seq pcb = Seq.add pcb.data_base (Mbuf.length pcb.sndq)

(* Advertised receive window: never shrink an advertisement. *)
let rcv_window pcb =
  let space = max 0 (pcb.rcv_buf - pcb.rcv_buffered) in
  let space = min space 65535 in
  let already = max 0 (Seq.diff pcb.rcv_adv pcb.rcv_nxt) in
  max space already

let charge_segment_out t len =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Proto_output
    (plat.Platform.tcp_fixed + (2 * t.ctx.Ctx.sync_ns)
    + (plat.Platform.checksum_per_byte * (Segment.base_size + len))
    + plat.Platform.mbuf_alloc)

let charge_segment_in t len =
  let plat = t.ctx.Ctx.plat in
  Ctx.charge t.ctx Phase.Proto_input
    (plat.Platform.tcp_fixed + (2 * t.ctx.Ctx.sync_ns)
    + (plat.Platform.checksum_per_byte * (Segment.base_size + len))
    + plat.Platform.mbuf_op)

(* Transmit one segment. [payload] is consumed (header prepended). *)
let emit t ~src_port ~dst ~dst_port ~seq ~ack ~flags ~window ~mss_opt payload
    =
  let len = Mbuf.length payload in
  charge_segment_out t len;
  t.st.segs_out <- t.st.segs_out + 1;
  let seg =
    {
      Segment.src_port;
      dst_port;
      seq;
      ack;
      flags;
      window;
      mss = mss_opt;
    }
  in
  let packet =
    Segment.encode seg ~src:(Psd_ip.Ip.addr t.ip) ~dst ~payload
  in
  match
    Psd_ip.Ip.output t.ip ~proto:Psd_ip.Header.proto_tcp ~dst packet
  with
  | Ok () -> ()
  | Error _ -> () (* routing failures surface as retransmission timeouts *)

let ack_flags = { Segment.no_flags with Segment.ack = true }

let send_ack t pcb =
  set_flag pcb f_ack_now false;
  set_flag pcb f_delack_pending false;
  let window = rcv_window pcb in
  pcb.rcv_adv <- Seq.max pcb.rcv_adv (Seq.add pcb.rcv_nxt window);
  emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip ~dst_port:pcb.key.rport
    ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~flags:ack_flags ~window ~mss_opt:None
    (Mbuf.empty ())

(* Reply RST to a segment that has no (usable) connection. *)
let send_rst_for t (seg : Segment.t) ~data_len ~to_ip =
  if not seg.Segment.flags.Segment.rst then begin
    t.st.rst_out <- t.st.rst_out + 1;
    let flags = { Segment.no_flags with Segment.rst = true; ack = true } in
    if seg.Segment.flags.Segment.ack then
      emit t ~src_port:seg.Segment.dst_port ~dst:to_ip
        ~dst_port:seg.Segment.src_port ~seq:seg.Segment.ack ~ack:0
        ~flags:{ flags with Segment.ack = false }
        ~window:0 ~mss_opt:None (Mbuf.empty ())
    else begin
      let advance =
        data_len
        + (if seg.Segment.flags.Segment.syn then 1 else 0)
        + if seg.Segment.flags.Segment.fin then 1 else 0
      in
      emit t ~src_port:seg.Segment.dst_port ~dst:to_ip
        ~dst_port:seg.Segment.src_port ~seq:0
        ~ack:(Seq.add seg.Segment.seq advance)
        ~flags ~window:0 ~mss_opt:None (Mbuf.empty ())
    end
  end

let deliver_data pcb m =
  if flag pcb f_handlers_set then pcb.handlers.deliver pcb m
  else Mbuf.concat pcb.undelivered m

let deliver_fin pcb =
  if flag pcb f_handlers_set then pcb.handlers.deliver_fin pcb
  else set_flag pcb f_fin_undelivered true

(* A pcb leaving the connection table (or completing the handshake)
   while still attached to its listener comes off that listener's
   half-open count — the counter tracks exactly the pcbs the old code
   found by folding over [t.conns] on every SYN. *)
let detach_listener pcb =
  match pcb.parent_listener with
  | Some l ->
    pcb.parent_listener <- None;
    l.l_half_open <- l.l_half_open - 1
  | None -> ()

(* Park a dropped pcb on the free list (bounded by [pool_cap]) after
   scrubbing every reference it holds, so a parked record pins neither
   user data nor callbacks. The [f_dead]/[f_pooled] flags stay set
   until [reset_pcb] wipes them on reuse, keeping late timer fibers and
   stale user calls on the dead paths they would take without pooling.
   [export] never comes through here: an exported pcb's record may
   still be referenced by the migration caller. *)
let recycle t pcb =
  if t.pool_cap > 0 && (not (flag pcb f_pooled)) && t.pool_free < t.pool_cap
  then begin
    set_flag pcb f_pooled true;
    pcb.handlers <- null_handlers;
    pcb.owner <- No_owner;
    let n = Mbuf.length pcb.sndq in
    if n > 0 then Mbuf.drop_front pcb.sndq n;
    let n = Mbuf.length pcb.undelivered in
    if n > 0 then Mbuf.drop_front pcb.undelivered n;
    pcb.reass <- [];
    pcb.parent_listener <- None;
    t.pool <- pcb :: t.pool;
    t.pool_free <- t.pool_free + 1;
    t.pool_puts <- t.pool_puts + 1
  end

let drop_pcb t pcb err =
  set_flag pcb f_dead true;
  detach_listener pcb;
  for slot = 0 to tm_count - 1 do
    stop_timer t pcb slot
  done;
  t.memo <- None;
  conns_remove t pcb.key;
  set_state pcb Closed;
  (match err with Some e -> pcb.handlers.on_error pcb e | None -> ());
  recycle t pcb

(* ----------------------------------------------------------------- *)
(* retransmission timers                                              *)

let update_rtt t pcb measured =
  pcb.nrexmt <- 0;
  if pcb.srtt = 0 then begin
    pcb.srtt <- measured;
    pcb.rttvar <- measured / 2
  end
  else begin
    let err = measured - pcb.srtt in
    pcb.srtt <- pcb.srtt + (err / 8);
    pcb.rttvar <- pcb.rttvar + ((abs err - pcb.rttvar) / 4)
  end;
  pcb.rto <-
    min t.rto_max_ns (max t.rto_min_ns (pcb.srtt + (4 * pcb.rttvar)))

let rec arm_rexmt t pcb =
  set_timer t pcb tm_rexmt pcb.rto (fun () ->
      if not (dead pcb) then rexmt_fire t pcb)

and rexmt_fire t pcb =
  clear_pending pcb tm_rexmt;
  pcb.nrexmt <- pcb.nrexmt + 1;
  if pcb.nrexmt > t.max_rexmt then begin
    (match pcb.state with
    | Syn_sent -> drop_pcb t pcb (Some Refused)
    | _ -> drop_pcb t pcb (Some Timed_out))
  end
  else begin
    t.st.rexmt_segs <- t.st.rexmt_segs + 1;
    pcb.rto <- min t.rto_max_ns (pcb.rto * 2);
    (* Karn: do not time retransmitted sequence numbers. *)
    pcb.rtt_start <- -1;
    match pcb.state with
    | Syn_sent ->
      let flags = { Segment.no_flags with Segment.syn = true } in
      emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip ~dst_port:pcb.key.rport
        ~seq:pcb.iss ~ack:0 ~flags ~window:(rcv_window pcb)
        ~mss_opt:(Some t.default_mss) (Mbuf.empty ());
      arm_rexmt t pcb
    | Syn_received ->
      let flags = { Segment.no_flags with Segment.syn = true; ack = true } in
      let window = rcv_window pcb in
      pcb.rcv_adv <- Seq.max pcb.rcv_adv (Seq.add pcb.rcv_nxt window);
      emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip ~dst_port:pcb.key.rport
        ~seq:pcb.iss ~ack:pcb.rcv_nxt ~flags ~window
        ~mss_opt:(Some t.default_mss) (Mbuf.empty ());
      arm_rexmt t pcb
    | _ ->
      (* congestion response: back to slow start *)
      let inflight = max pcb.mss (Seq.diff pcb.snd_max pcb.snd_una) in
      pcb.ssthresh <- max (2 * pcb.mss) (min inflight pcb.snd_wnd / 2);
      pcb.cwnd <- pcb.mss;
      pcb.dup_acks <- 0;
      pcb.snd_nxt <- pcb.snd_una;
      output t pcb ~force:true
  end

and arm_persist t pcb =
  if not (timer_pending pcb tm_persist) then
    set_timer t pcb tm_persist pcb.rto (fun () ->
        if not (dead pcb) then begin
          clear_pending pcb tm_persist;
          pcb.rto <- min t.rto_max_ns (pcb.rto * 2);
          output t pcb ~force:true;
          if pcb.snd_wnd = 0 && Mbuf.length pcb.sndq > 0 then
            arm_persist t pcb
        end)

and arm_delack t pcb =
  if not (timer_pending pcb tm_delack) then
    set_timer t pcb tm_delack t.delack_ns (fun () ->
        clear_pending pcb tm_delack;
        if (not (dead pcb)) && (delack_pending pcb) then begin
          t.st.acks_delayed <- t.st.acks_delayed + 1;
          send_ack t pcb
        end)

and arm_keepalive t pcb =
  set_timer t pcb tm_keep t.keep_interval_ns (fun () ->
      if (not (dead pcb)) && flag pcb f_keepalive && pcb.state = Established then begin
        let idle = Psd_sim.Engine.now (eng t) - pcb.last_activity in
        if idle >= t.keep_idle_ns then begin
          pcb.keep_probes <- pcb.keep_probes + 1;
          if pcb.keep_probes > t.keep_max_probes then
            drop_pcb t pcb (Some Timed_out)
          else begin
            (* garbage-sequence probe: elicits a bare ACK *)
            emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip
              ~dst_port:pcb.key.rport ~seq:(Seq.sub pcb.snd_una 1)
              ~ack:pcb.rcv_nxt ~flags:ack_flags ~window:(rcv_window pcb)
              ~mss_opt:None (Mbuf.empty ());
            arm_keepalive t pcb
          end
        end
        else begin
          pcb.keep_probes <- 0;
          arm_keepalive t pcb
        end
      end)

and arm_msl t pcb =
  set_timer t pcb tm_msl (2 * t.msl_ns) (fun () ->
      if not (dead pcb) then drop_pcb t pcb None)

(* ----------------------------------------------------------------- *)
(* output engine                                                      *)

and output t pcb ~force =
  match pcb.state with
  | Closed | Listen | Syn_sent | Syn_received | Time_wait -> ()
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
    ->
    let continue = ref true in
    while !continue do
      continue := false;
      let sndq_len = Mbuf.length pcb.sndq in
      let off = Seq.diff pcb.snd_nxt pcb.data_base in
      if off < 0 then () (* snd_nxt points at SYN/FIN space; nothing to do *)
      else begin
        let wnd = min pcb.snd_wnd pcb.cwnd in
        let wnd = if force && wnd = 0 then 1 else wnd in
        let in_flight = Seq.diff pcb.snd_nxt pcb.snd_una in
        let usable = max 0 (wnd - in_flight) in
        let remaining = max 0 (sndq_len - off) in
        let len = min (min remaining usable) pcb.mss in
        let all_sent_after = len = remaining in
        let fin_to_send =
          (* also true when retransmitting a FIN already sent once:
             snd_nxt was pulled back to (or before) the FIN's sequence *)
          (fin_wanted pcb) && all_sent_after
          && ((not (fin_sent pcb)) || Seq.leq pcb.snd_nxt (fin_seq pcb))
        in
        let idle = Seq.diff pcb.snd_max pcb.snd_una = 0 in
        let should_send_data =
          len > 0
          && (len = pcb.mss
             || (all_sent_after && (flag pcb f_nodelay || idle))
             || (pcb.snd_wnd > 0 && len >= pcb.snd_wnd / 2)
             || force)
        in
        if should_send_data || (fin_to_send && usable >= 0) then begin
          let payload =
            if len > 0 then
              (* data must survive on the send queue until acked, but
                 the wire does not need its own bytes: a shared view of
                 the queued range is enough (both sides are immutable
                 until the ack drops the range), so first transmission
                 and retransmission alike emit without a [Tx_retain]
                 copy. The single physical copy happens at the frame
                 gather ([Tx_frame]). *)
              Mbuf.sub_view pcb.sndq ~off ~len
            else Mbuf.empty ()
          in
          let flags =
            {
              Segment.no_flags with
              Segment.ack = true;
              psh = (len > 0 && all_sent_after);
              fin = fin_to_send;
            }
          in
          let window = rcv_window pcb in
          pcb.rcv_adv <- Seq.max pcb.rcv_adv (Seq.add pcb.rcv_nxt window);
          set_flag pcb f_ack_now false;
          set_flag pcb f_delack_pending false;
          let seq = pcb.snd_nxt in
          let is_rexmt = Seq.lt seq pcb.snd_max in
          if is_rexmt then t.st.rexmt_segs <- t.st.rexmt_segs + 1
          else t.st.bytes_out <- t.st.bytes_out + len;
          emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip
            ~dst_port:pcb.key.rport ~seq ~ack:pcb.rcv_nxt ~flags ~window
            ~mss_opt:None payload;
          if fin_to_send then begin
            set_flag pcb f_fin_sent true;
            (match pcb.state with
            | Established -> set_state pcb Fin_wait_1
            | Close_wait -> set_state pcb Last_ack
            | _ -> ())
          end;
          pcb.snd_nxt <- Seq.add pcb.snd_nxt (len + if fin_to_send then 1 else 0);
          if Seq.gt pcb.snd_nxt pcb.snd_max then begin
            (* time this transmission if nothing is being timed *)
            if pcb.rtt_start < 0 && len > 0 && not is_rexmt then begin
              pcb.rtt_seq <- seq;
              pcb.rtt_start <- Psd_sim.Engine.now (eng t)
            end;
            pcb.snd_max <- pcb.snd_nxt
          end;
          if (not (timer_pending pcb tm_rexmt)) && (len > 0 || fin_to_send)
          then
            arm_rexmt t pcb;
          (* keep sending while full-size segments fit in the window *)
          if len = pcb.mss && not force then continue := true
        end
        else if
          remaining > 0 && pcb.snd_wnd = 0
          && not (timer_pending pcb tm_rexmt)
        then arm_persist t pcb
      end
    done;
    if (ack_now pcb) then send_ack t pcb

(* ----------------------------------------------------------------- *)
(* construction                                                       *)

(* Reinitialise a pooled pcb to exactly the state a fresh literal would
   have — every mutable field, no exceptions. [gen] bumps so timer
   fibers armed against the record's previous life skip their bodies. *)
let reset_pcb t pcb ~key ~state ~handlers ~rcv_buf ~mss =
  pcb.gen <- pcb.gen + 1;
  pcb.key <- key;
  pcb.state <- state;
  pcb.handlers <- handlers;
  pcb.owner <- No_owner;
  pcb.flags <- 0;
  pcb.data_base <- 0;
  pcb.snd_una <- 0;
  pcb.snd_nxt <- 0;
  pcb.snd_max <- 0;
  pcb.snd_wnd <- 0;
  pcb.snd_wl1 <- 0;
  pcb.snd_wl2 <- 0;
  pcb.iss <- 0;
  pcb.cwnd <- mss;
  pcb.ssthresh <- 65535;
  pcb.dup_acks <- 0;
  pcb.srtt <- 0;
  pcb.rttvar <- 0;
  pcb.rto <- t.rto_init_ns;
  pcb.nrexmt <- 0;
  pcb.rtt_seq <- 0;
  pcb.rtt_start <- -1;
  pcb.last_activity <- 0;
  pcb.keep_probes <- 0;
  pcb.irs <- 0;
  pcb.rcv_nxt <- 0;
  pcb.rcv_buf <- rcv_buf;
  pcb.rcv_buffered <- 0;
  pcb.rcv_adv <- 0;
  pcb.reass <- [];
  pcb.fin_rcvd <- -1;
  pcb.mss <- mss;
  pcb.parent_listener <- None

let make_pcb t ~key ~state ~handlers ~rcv_buf ~mss =
  match t.pool with
  | pcb :: rest ->
    t.pool <- rest;
    t.pool_free <- t.pool_free - 1;
    t.pool_hits <- t.pool_hits + 1;
    reset_pcb t pcb ~key ~state ~handlers ~rcv_buf ~mss;
    pcb
  | [] ->
    t.pool_fresh <- t.pool_fresh + 1;
    {
      t;
      key;
      state;
      handlers;
      owner = No_owner;
      flags = 0;
      gen = 0;
      sndq = Mbuf.empty ();
      data_base = 0;
      snd_una = 0;
      snd_nxt = 0;
      snd_max = 0;
      snd_wnd = 0;
      snd_wl1 = 0;
      snd_wl2 = 0;
      iss = 0;
      cwnd = mss;
      ssthresh = 65535;
      dup_acks = 0;
      srtt = 0;
      rttvar = 0;
      rto = t.rto_init_ns;
      nrexmt = 0;
      rtt_seq = 0;
      rtt_start = -1;
      tm0 = Psd_sim.Engine.timer ();
      tm1 = Psd_sim.Engine.timer ();
      tm2 = Psd_sim.Engine.timer ();
      tm3 = Psd_sim.Engine.timer ();
      tm4 = Psd_sim.Engine.timer ();
      last_activity = 0;
      keep_probes = 0;
      irs = 0;
      rcv_nxt = 0;
      rcv_buf;
      rcv_buffered = 0;
      rcv_adv = 0;
      reass = [];
      fin_rcvd = -1;
      mss;
      undelivered = Mbuf.empty ();
      parent_listener = None;
    }

let fresh_iss t =
  Int32.to_int (Psd_util.Rng.int32 (Psd_sim.Engine.rng (eng t)))
  land 0xffffffff

(* ----------------------------------------------------------------- *)
(* input engine                                                       *)

let establish t pcb =
  ignore t;
  set_state pcb Established;
  pcb.handlers.on_established pcb;
  match pcb.parent_listener with
  | Some l when not l.l_closed ->
    detach_listener pcb;
    Queue.add pcb l.l_queue;
    l.l_ready_cb ()
  | Some _ -> detach_listener pcb
  | None -> ()

(* Splice the reassembly queue: deliver everything now contiguous. *)
let splice t pcb =
  let rec go () =
    match pcb.reass with
    | (seq, m) :: rest when Seq.leq seq pcb.rcv_nxt ->
      let m_len = Mbuf.length m in
      let dup = Seq.diff pcb.rcv_nxt seq in
      if dup >= m_len then begin
        pcb.reass <- rest;
        go ()
      end
      else begin
        if dup > 0 then Mbuf.trim_front m dup;
        pcb.reass <- rest;
        let len = Mbuf.length m in
        pcb.rcv_nxt <- Seq.add pcb.rcv_nxt len;
        pcb.rcv_buffered <- pcb.rcv_buffered + len;
        t.st.bytes_in <- t.st.bytes_in + len;
        deliver_data pcb m;
        go ()
      end
    | _ -> ()
  in
  go ()

let insert_reass t pcb seq m =
  if Mbuf.length m > 0 then begin
    t.st.ooo_segs <- t.st.ooo_segs + 1;
    let rec ins = function
      | [] -> [ (seq, m) ]
      | (s, m') :: rest as l ->
        if Seq.lt seq s then (seq, m) :: l else (s, m') :: ins rest
    in
    pcb.reass <- ins pcb.reass
  end

let process_fin_if_ready t pcb =
  let fs = pcb.fin_rcvd in
  if fs >= 0 && Seq.geq pcb.rcv_nxt fs && pcb.reass = [] then begin
    pcb.fin_rcvd <- -1;
    pcb.rcv_nxt <- Seq.add fs 1;
    set_flag pcb f_ack_now true;
    deliver_fin pcb;
    (match pcb.state with
    | Established -> set_state pcb Close_wait
    | Fin_wait_1 ->
      (* our FIN not yet acked: simultaneous close *)
      set_state pcb Closing
    | Fin_wait_2 ->
      set_state pcb Time_wait;
      arm_msl t pcb
    | Time_wait -> arm_msl t pcb
    | _ -> ())
  end

let handle_listener t (l : listener) (seg : Segment.t) ~from_ip =
  if seg.Segment.flags.Segment.rst then ()
  else if seg.Segment.flags.Segment.ack then
    send_rst_for t seg ~data_len:0 ~to_ip:from_ip
  else if seg.Segment.flags.Segment.syn then begin
    (* half-open children count against the backlog too *)
    if l.l_half_open + Queue.length l.l_queue >= l.l_backlog then ()
    (* drop: queue full *)
    else begin
      let key =
        { lport = l.l_port; rip = from_ip; rport = seg.Segment.src_port }
      in
      let mss =
        match seg.Segment.mss with
        | Some m -> min m t.default_mss
        | None -> min 536 t.default_mss
      in
      let pcb =
        make_pcb t ~key ~state:Syn_received ~handlers:null_handlers
          ~rcv_buf:t.default_rcv_buf ~mss
      in
      pcb.iss <- fresh_iss t;
      pcb.snd_una <- pcb.iss;
      pcb.snd_nxt <- Seq.add pcb.iss 1;
      pcb.snd_max <- pcb.snd_nxt;
      pcb.data_base <- Seq.add pcb.iss 1;
      pcb.irs <- seg.Segment.seq;
      pcb.rcv_nxt <- Seq.add seg.Segment.seq 1;
      pcb.rcv_adv <- pcb.rcv_nxt;
      pcb.snd_wnd <- seg.Segment.window;
      pcb.snd_wl1 <- seg.Segment.seq;
      pcb.snd_wl2 <- pcb.iss;
      pcb.parent_listener <- Some l;
      l.l_half_open <- l.l_half_open + 1;
      t.memo <- None;
      conns_insert t key pcb;
      (* SYN-ACK *)
      let flags =
        { Segment.no_flags with Segment.syn = true; ack = true }
      in
      let window = rcv_window pcb in
      pcb.rcv_adv <- Seq.max pcb.rcv_adv (Seq.add pcb.rcv_nxt window);
      emit t ~src_port:key.lport ~dst:key.rip ~dst_port:key.rport
        ~seq:pcb.iss ~ack:pcb.rcv_nxt ~flags ~window
        ~mss_opt:(Some t.default_mss)
        (Mbuf.empty ());
      arm_rexmt t pcb
    end
  end

let handle_syn_sent t pcb (seg : Segment.t) payload =
  let f = seg.Segment.flags in
  let ack_acceptable =
    f.Segment.ack
    && Seq.gt seg.Segment.ack pcb.iss
    && Seq.leq seg.Segment.ack pcb.snd_max
  in
  if f.Segment.ack && not ack_acceptable then
    send_rst_for t seg ~data_len:(Mbuf.length payload) ~to_ip:pcb.key.rip
  else if f.Segment.rst then begin
    if ack_acceptable then drop_pcb t pcb (Some Refused)
  end
  else if f.Segment.syn then begin
    pcb.irs <- seg.Segment.seq;
    pcb.rcv_nxt <- Seq.add seg.Segment.seq 1;
    pcb.rcv_adv <- pcb.rcv_nxt;
    (match seg.Segment.mss with
    | Some m -> pcb.mss <- min m pcb.mss
    | None -> pcb.mss <- min 536 pcb.mss);
    pcb.cwnd <- pcb.mss;
    pcb.snd_wnd <- seg.Segment.window;
    pcb.snd_wl1 <- seg.Segment.seq;
    pcb.snd_wl2 <- seg.Segment.ack;
    if ack_acceptable then begin
      (* our SYN is acked: connection complete *)
      pcb.snd_una <- seg.Segment.ack;
      stop_timer t pcb tm_rexmt;
      pcb.nrexmt <- 0;
      set_flag pcb f_ack_now true;
      establish t pcb;
      send_ack t pcb;
      output t pcb ~force:false
    end
    else begin
      (* simultaneous open *)
      set_state pcb Syn_received;
      let flags =
        { Segment.no_flags with Segment.syn = true; ack = true }
      in
      let window = rcv_window pcb in
      pcb.rcv_adv <- Seq.max pcb.rcv_adv (Seq.add pcb.rcv_nxt window);
      emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip ~dst_port:pcb.key.rport
        ~seq:pcb.iss ~ack:pcb.rcv_nxt ~flags ~window
        ~mss_opt:(Some t.default_mss)
        (Mbuf.empty ())
    end
  end

(* ACK processing for synchronised states. Returns false if the segment
   should be dropped. *)
let process_ack t pcb (seg : Segment.t) =
  let ack = seg.Segment.ack in
  if Seq.leq ack pcb.snd_una then begin
    (* duplicate ack *)
    if
      Mbuf.length pcb.sndq > 0
      && Seq.diff pcb.snd_max pcb.snd_una > 0
      && seg.Segment.window = pcb.snd_wnd
    then begin
      t.st.dup_acks_in <- t.st.dup_acks_in + 1;
      pcb.dup_acks <- pcb.dup_acks + 1;
      if pcb.dup_acks = 3 then begin
        (* fast retransmit + fast recovery *)
        t.st.fast_rexmt <- t.st.fast_rexmt + 1;
        let inflight = max pcb.mss (Seq.diff pcb.snd_max pcb.snd_una) in
        pcb.ssthresh <- max (2 * pcb.mss) (min inflight pcb.snd_wnd / 2);
        stop_timer t pcb tm_rexmt;
        pcb.rtt_start <- -1;
        let onxt = pcb.snd_nxt in
        pcb.snd_nxt <- pcb.snd_una;
        pcb.cwnd <- pcb.mss;
        output t pcb ~force:true;
        pcb.cwnd <- pcb.ssthresh + (3 * pcb.mss);
        pcb.snd_nxt <- Seq.max onxt pcb.snd_nxt
      end
      else if pcb.dup_acks > 3 then begin
        pcb.cwnd <- pcb.cwnd + pcb.mss;
        output t pcb ~force:false
      end
    end
    else pcb.dup_acks <- 0;
    true
  end
  else if Seq.gt ack pcb.snd_max then begin
    set_flag pcb f_ack_now true;
    false
  end
  else begin
    (* new data acknowledged *)
    if pcb.dup_acks >= 3 then pcb.cwnd <- pcb.ssthresh;
    pcb.dup_acks <- 0;
    if pcb.rtt_start >= 0 && Seq.gt ack pcb.rtt_seq then begin
      update_rtt t pcb (Psd_sim.Engine.now (eng t) - pcb.rtt_start);
      pcb.rtt_start <- -1
    end;
    (* congestion window growth *)
    if pcb.cwnd < pcb.ssthresh then pcb.cwnd <- pcb.cwnd + pcb.mss
    else pcb.cwnd <- pcb.cwnd + max 1 (pcb.mss * pcb.mss / pcb.cwnd);
    pcb.cwnd <- min pcb.cwnd 65535;
    let data_acked =
      min (max 0 (Seq.diff ack pcb.data_base)) (Mbuf.length pcb.sndq)
    in
    if data_acked > 0 then begin
      Mbuf.drop_front pcb.sndq data_acked;
      pcb.data_base <- Seq.add pcb.data_base data_acked
    end;
    let fin_acked =
      (fin_sent pcb) && Seq.geq ack (Seq.add (fin_seq pcb) 1)
    in
    pcb.snd_una <- ack;
    if Seq.lt pcb.snd_nxt pcb.snd_una then pcb.snd_nxt <- pcb.snd_una;
    pcb.nrexmt <- 0;
    if Seq.diff pcb.snd_max pcb.snd_una = 0 then stop_timer t pcb tm_rexmt
    else arm_rexmt t pcb;
    if data_acked > 0 then pcb.handlers.on_acked pcb data_acked;
    (* state transitions on FIN acknowledgement *)
    (match pcb.state with
    | Syn_received -> establish t pcb
    | Fin_wait_1 when fin_acked -> set_state pcb Fin_wait_2
    | Closing when fin_acked ->
      set_state pcb Time_wait;
      arm_msl t pcb
    | Last_ack when fin_acked -> drop_pcb t pcb None
    | _ -> ());
    not (dead pcb)
  end

let handle_synchronized t pcb (seg : Segment.t) payload =
  let f = seg.Segment.flags in
  let seq = ref seg.Segment.seq in
  let fin = ref f.Segment.fin in
  (* --- trim to the receive window --------------------------------- *)
  let wnd = rcv_window pcb in
  (* left edge *)
  let todrop = Seq.diff pcb.rcv_nxt !seq in
  let seg_len = Mbuf.length payload in
  let dropped_all_dup =
    if todrop > 0 then begin
      if todrop >= seg_len then begin
        (* complete duplicate (possibly a retransmitted FIN) *)
        if !fin && todrop = seg_len + 1 then begin
          (* the FIN itself is the duplicate: clear the flag so the FIN
             machinery below does not run again — rcv_nxt already sits
             past it, and a second pass would deliver EOF twice. A
             retransmitted FIN in TIME-WAIT still restarts the 2MSL
             timer (RFC 793), which the re-run used to do as a side
             effect. *)
          fin := false;
          if pcb.state = Time_wait then arm_msl t pcb
        end;
        set_flag pcb f_ack_now true;
        if todrop > seg_len || not !fin then begin
          if seg_len > 0 || not f.Segment.ack then true
          else false (* pure ACK with old seq: still process the ack *)
        end
        else begin
          (* exactly the data is dup but FIN is new *)
          Mbuf.trim_front payload seg_len;
          seq := Seq.add !seq seg_len;
          false
        end
      end
      else begin
        Mbuf.trim_front payload todrop;
        seq := Seq.add !seq todrop;
        false
      end
    end
    else false
  in
  if dropped_all_dup then send_ack t pcb
  else begin
    (* right edge *)
    let seg_len = Mbuf.length payload in
    let excess = Seq.diff (Seq.add !seq seg_len) (Seq.add pcb.rcv_nxt wnd) in
    let beyond =
      if excess > 0 then
        if excess >= seg_len && seg_len > 0 then begin
          set_flag pcb f_ack_now true;
          true
        end
        else begin
          if excess > 0 && seg_len > 0 then begin
            Mbuf.trim_back payload excess;
            fin := false
          end;
          false
        end
      else false
    in
    if beyond then send_ack t pcb
    else if f.Segment.rst then begin
      match pcb.state with
      | Syn_received -> drop_pcb t pcb (Some Refused)
      | Closing | Last_ack | Time_wait -> drop_pcb t pcb None
      | _ -> drop_pcb t pcb (Some Reset)
    end
    else if f.Segment.syn && Seq.geq !seq pcb.rcv_nxt then begin
      (* SYN in window: fatal *)
      send_rst_for t seg ~data_len:0 ~to_ip:pcb.key.rip;
      drop_pcb t pcb (Some Reset)
    end
    else if not f.Segment.ack then () (* post-handshake segments need ACK *)
    else begin
      let continue_ = process_ack t pcb seg in
      if continue_ && not (dead pcb) then begin
        (* window update *)
        if
          Seq.lt pcb.snd_wl1 !seq
          || (pcb.snd_wl1 = !seq && Seq.leq pcb.snd_wl2 seg.Segment.ack)
        then begin
          let opened = seg.Segment.window > pcb.snd_wnd in
          pcb.snd_wnd <- seg.Segment.window;
          pcb.snd_wl1 <- !seq;
          pcb.snd_wl2 <- seg.Segment.ack;
          if opened then stop_timer t pcb tm_persist
        end;
        (* data *)
        let seg_len = Mbuf.length payload in
        let receivable =
          match pcb.state with
          | Established | Fin_wait_1 | Fin_wait_2 -> true
          | _ -> false
        in
        if seg_len > 0 && receivable then begin
          if !seq = pcb.rcv_nxt && pcb.reass = [] then begin
            (* common case: in-order segment *)
            pcb.rcv_nxt <- Seq.add pcb.rcv_nxt seg_len;
            pcb.rcv_buffered <- pcb.rcv_buffered + seg_len;
            t.st.bytes_in <- t.st.bytes_in + seg_len;
            deliver_data pcb payload;
            (* ack every other segment; delay otherwise *)
            if (delack_pending pcb) then set_flag pcb f_ack_now true
            else begin
              set_flag pcb f_delack_pending true;
              arm_delack t pcb
            end
          end
          else begin
            insert_reass t pcb !seq payload;
            splice t pcb;
            (* out-of-order: duplicate ack immediately (fast rexmt aid) *)
            set_flag pcb f_ack_now true
          end
        end
        else if seg_len > 0 then
          (* data arriving in a state that cannot accept it *)
          set_flag pcb f_ack_now true;
        if !fin then begin
          let fs = Seq.add !seq seg_len in
          if pcb.fin_rcvd < 0 then pcb.fin_rcvd <- fs;
          process_fin_if_ready t pcb
        end
        else process_fin_if_ready t pcb;
        if not (dead pcb) then begin
          if (ack_now pcb) then send_ack t pcb;
          output t pcb ~force:false
        end
      end
      else if (ack_now pcb) && not (dead pcb) then send_ack t pcb
    end
  end

(* --- header prediction (Van Jacobson fast path) -------------------- *)

(* The segment qualifies when every conditional branch of
   [handle_synchronized] that could do work before ACK processing is
   provably a no-op: connection in steady state, no control flags (PSH
   is allowed — like BSD's prediction mask, and nothing in this input
   path reads it), exactly the next expected sequence (left trim
   [todrop] = 0), nothing queued for reassembly, and the payload inside
   the receive window (right trim [excess] <= 0). *)
let predicted pcb (seg : Segment.t) payload =
  let f = seg.Segment.flags in
  pcb.state = Established
  && f.Segment.ack
  && (not f.Segment.syn)
  && (not f.Segment.fin)
  && (not f.Segment.rst)
  && (not f.Segment.urg)
  && seg.Segment.seq = pcb.rcv_nxt
  && pcb.reass = []
  && Mbuf.length payload <= rcv_window pcb

(* Straight-line copy of the branches of [handle_synchronized] that
   remain live under [predicted]: shared ACK processing, the window
   update, the in-order data append with delayed-ack logic, and the
   common tail. Every line is verbatim from the slow path, so a hit
   computes the identical pcb state, emits the identical segments, and
   charges the identical virtual time — the fast path is a control-flow
   shortcut, not a semantic change. *)
let fast_synchronized t pcb (seg : Segment.t) payload =
  let seq = seg.Segment.seq in
  let continue_ = process_ack t pcb seg in
  if continue_ && not (dead pcb) then begin
    (* window update *)
    if
      Seq.lt pcb.snd_wl1 seq
      || (pcb.snd_wl1 = seq && Seq.leq pcb.snd_wl2 seg.Segment.ack)
    then begin
      let opened = seg.Segment.window > pcb.snd_wnd in
      pcb.snd_wnd <- seg.Segment.window;
      pcb.snd_wl1 <- seq;
      pcb.snd_wl2 <- seg.Segment.ack;
      if opened then stop_timer t pcb tm_persist
    end;
    let seg_len = Mbuf.length payload in
    if seg_len > 0 then begin
      (* in-order segment, nothing queued: append *)
      pcb.rcv_nxt <- Seq.add pcb.rcv_nxt seg_len;
      pcb.rcv_buffered <- pcb.rcv_buffered + seg_len;
      t.st.bytes_in <- t.st.bytes_in + seg_len;
      deliver_data pcb payload;
      (* ack every other segment; delay otherwise *)
      if (delack_pending pcb) then set_flag pcb f_ack_now true
      else begin
        set_flag pcb f_delack_pending true;
        arm_delack t pcb
      end
    end;
    process_fin_if_ready t pcb;
    if not (dead pcb) then begin
      if (ack_now pcb) then send_ack t pcb;
      output t pcb ~force:false
    end
  end
  else if (ack_now pcb) && not (dead pcb) then send_ack t pcb

let input t ~(hdr : Psd_ip.Header.t) (m : Mbuf.t) =
  Psd_sim.Lock.with_lock t.lock (fun () ->
      let seg_len = Mbuf.length m in
      charge_segment_in t seg_len;
      (* fast path: a delivered packet arrives as one contiguous view,
         so the header decode and checksum run in place; only a
         reassembled multi-segment chain still flattens (and is counted
         doing so) *)
      let b, off =
        match Mbuf.contiguous m with
        | Some (b, off, _) -> (b, off)
        | None ->
          Psd_util.Copies.count Psd_util.Copies.Rx_flatten seg_len;
          (Mbuf.to_bytes m, 0)
      in
      match
        Segment.decode ~off ~len:seg_len b ~src:hdr.Psd_ip.Header.src
          ~dst:hdr.Psd_ip.Header.dst
      with
      | Error Segment.Bad_checksum ->
        t.st.drop_checksum <- t.st.drop_checksum + 1
      | Error (Segment.Truncated | Segment.Bad_offset) ->
        t.st.drop_malformed <- t.st.drop_malformed + 1
      | Ok (seg, payload) -> (
        t.st.segs_in <- t.st.segs_in + 1;
        let key =
          {
            lport = seg.Segment.dst_port;
            rip = hdr.Psd_ip.Header.src;
            rport = seg.Segment.src_port;
          }
        in
        let hit =
          match t.memo with
          | Some p when p.key = key -> t.memo
          | _ ->
            let found = Hashtbl.find_opt t.conns key in
            (match found with Some _ -> t.memo <- found | None -> ());
            found
        in
        match hit with
        | Some pcb -> (
          pcb.last_activity <- Psd_sim.Engine.now (eng t);
          pcb.keep_probes <- 0;
          match pcb.state with
          | Syn_sent -> handle_syn_sent t pcb seg payload
          | Closed | Listen -> ()
          | _ ->
            if t.predict && predicted pcb seg payload then begin
              t.st.predict_hit <- t.st.predict_hit + 1;
              fast_synchronized t pcb seg payload
            end
            else begin
              if t.predict then t.st.predict_miss <- t.st.predict_miss + 1;
              handle_synchronized t pcb seg payload
            end)
        | None ->
          (* a migrating connection's segments must be dropped silently —
             even when a listener still covers the port, or the stack
             would answer the peer's in-flight data with a reset *)
          let muted =
            match Hashtbl.find_opt t.muted key with
            | Some expiry when Psd_sim.Engine.now (eng t) < expiry -> true
            | Some _ ->
              Hashtbl.remove t.muted key;
              false
            | None -> false
          in
          if muted then t.st.drop_no_pcb <- t.st.drop_no_pcb + 1
          else (
            match Hashtbl.find_opt t.listeners seg.Segment.dst_port with
            | Some l when not l.l_closed ->
              handle_listener t l seg ~from_ip:hdr.Psd_ip.Header.src
            | _ ->
              t.st.drop_no_pcb <- t.st.drop_no_pcb + 1;
              send_rst_for t seg ~data_len:(Mbuf.length payload)
                ~to_ip:hdr.Psd_ip.Header.src)))

(* ----------------------------------------------------------------- *)
(* user interface                                                     *)

let create ~ctx ~ip ?(mss = 1460) ?(msl_ns = Psd_sim.Time.sec 30)
    ?(rto_min_ns = Psd_sim.Time.ms 500) ?(rto_init_ns = Psd_sim.Time.ms 1000)
    ?(delack_ns = Psd_sim.Time.ms 200) ?(max_rexmt = 12)
    ?(default_rcv_buf = 24 * 1024)
    ?(keep_idle_ns = Psd_sim.Time.sec (2 * 60 * 60))
    ?(keep_interval_ns = Psd_sim.Time.sec 75) ?(keep_max_probes = 8)
    ?(pcb_pool = 1024) () =
  let t =
    {
      ctx;
      ip;
      lock = Psd_sim.Lock.create ctx.Ctx.eng;
      default_mss = mss;
      default_rcv_buf;
      msl_ns;
      rto_min_ns;
      rto_max_ns = Psd_sim.Time.sec 64;
      rto_init_ns;
      delack_ns;
      max_rexmt;
      keep_idle_ns;
      keep_interval_ns;
      keep_max_probes;
      conns = Hashtbl.create 32;
      memo = None;
      listeners = Hashtbl.create 8;
      muted = Hashtbl.create 8;
      predict = true;
      conn_gauge = None;
      pool_cap = max 0 pcb_pool;
      pool = [];
      pool_free = 0;
      pool_fresh = 0;
      pool_hits = 0;
      pool_puts = 0;
      st =
        {
          segs_out = 0;
          bytes_out = 0;
          segs_in = 0;
          bytes_in = 0;
          rexmt_segs = 0;
          fast_rexmt = 0;
          dup_acks_in = 0;
          ooo_segs = 0;
          acks_delayed = 0;
          rst_out = 0;
          drop_checksum = 0;
          drop_malformed = 0;
          drop_no_pcb = 0;
          predict_hit = 0;
          predict_miss = 0;
        };
    }
  in
  Psd_ip.Ip.register ip ~proto:Psd_ip.Header.proto_tcp (fun ~hdr m ->
      input t ~hdr m);
  t

let connect t ?(handlers = null_handlers) ?(claim_data = true)
    ?rcv_buf ~src_port ~dst ~dst_port () =
  let rcv_buf = Option.value rcv_buf ~default:t.default_rcv_buf in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      let key = { lport = src_port; rip = dst; rport = dst_port } in
      if Hashtbl.mem t.conns key then
        invalid_arg "Tcp.connect: connection exists";
      let pcb =
        make_pcb t ~key ~state:Syn_sent ~handlers ~rcv_buf
          ~mss:t.default_mss
      in
      set_flag pcb f_handlers_set claim_data;
      pcb.iss <- fresh_iss t;
      pcb.snd_una <- pcb.iss;
      pcb.snd_nxt <- Seq.add pcb.iss 1;
      pcb.snd_max <- pcb.snd_nxt;
      pcb.data_base <- Seq.add pcb.iss 1;
      t.memo <- None;
      conns_insert t key pcb;
      let flags = { Segment.no_flags with Segment.syn = true } in
      emit t ~src_port ~dst ~dst_port ~seq:pcb.iss ~ack:0 ~flags
        ~window:(rcv_window pcb) ~mss_opt:(Some t.default_mss)
        (Mbuf.empty ());
      arm_rexmt t pcb;
      pcb)

let listen t ~port ?(backlog = 5) () =
  Psd_sim.Lock.with_lock t.lock (fun () ->
      if Hashtbl.mem t.listeners port then
        invalid_arg "Tcp.listen: port in use";
      let l =
        {
          l_t = t;
          l_port = port;
          l_backlog = max 1 backlog;
          l_queue = Queue.create ();
          l_half_open = 0;
          l_ready_cb = (fun () -> ());
          l_closed = false;
        }
      in
      Hashtbl.replace t.listeners port l;
      l)

let accept_ready l = Queue.take_opt l.l_queue

let on_ready l cb = l.l_ready_cb <- cb

let pending l = Queue.length l.l_queue

let close_listener t l =
  Psd_sim.Lock.with_lock t.lock (fun () ->
      l.l_closed <- true;
      Hashtbl.remove t.listeners l.l_port;
      (* connections still queued are aborted *)
      Queue.iter
        (fun pcb ->
          t.st.rst_out <- t.st.rst_out + 1;
          let flags = { Segment.no_flags with Segment.rst = true } in
          emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip
            ~dst_port:pcb.key.rport ~seq:pcb.snd_nxt ~ack:0 ~flags ~window:0
            ~mss_opt:None (Mbuf.empty ());
          drop_pcb t pcb None)
        l.l_queue;
      Queue.clear l.l_queue)

(* Completion of a passively-opened connection: queue it on its
   listener. Called from process_ack's Syn_received -> Established
   transition via the pcb handlers; instead we hook establish. *)

let send pcb m =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      if (fin_wanted pcb) then invalid_arg "Tcp.send: after shutdown";
      (match pcb.state with
      | Established | Close_wait | Syn_sent | Syn_received -> ()
      | _ -> invalid_arg "Tcp.send: connection not open");
      Mbuf.concat pcb.sndq m;
      output t pcb ~force:false)

let user_consumed pcb n =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      pcb.rcv_buffered <- max 0 (pcb.rcv_buffered - n);
      (* window-update ACK when the window opens significantly *)
      let new_wnd = rcv_window pcb in
      let advertised = max 0 (Seq.diff pcb.rcv_adv pcb.rcv_nxt) in
      if
        (not (dead pcb))
        && pcb.state <> Closed
        && (new_wnd - advertised >= 2 * pcb.mss
           || (advertised = 0 && new_wnd > 0))
      then send_ack t pcb)

let shutdown_send pcb =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      if not (fin_wanted pcb) then begin
        set_flag pcb f_fin_wanted true;
        match pcb.state with
        | Syn_sent ->
          (* nothing sent yet; tear down silently *)
          drop_pcb t pcb None
        | Established | Close_wait | Syn_received ->
          output t pcb ~force:false
        | _ -> ()
      end)

let abort pcb =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      if not (dead pcb) then begin
        (match pcb.state with
        | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
          ->
          t.st.rst_out <- t.st.rst_out + 1;
          let flags =
            { Segment.no_flags with Segment.rst = true; ack = true }
          in
          emit t ~src_port:pcb.key.lport ~dst:pcb.key.rip
            ~dst_port:pcb.key.rport ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~flags
            ~window:0 ~mss_opt:None (Mbuf.empty ())
        | _ -> ());
        drop_pcb t pcb None
      end)

let set_handlers ?(claim_data = true) pcb h =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      pcb.handlers <- h;
      if not claim_data then set_flag pcb f_handlers_set false
      else begin
      set_flag pcb f_handlers_set true;
      if Mbuf.length pcb.undelivered > 0 then begin
        let pending = Mbuf.split pcb.undelivered (Mbuf.length pcb.undelivered) in
        h.deliver pcb pending
      end;
      if flag pcb f_fin_undelivered then begin
        set_flag pcb f_fin_undelivered false;
        h.deliver_fin pcb
      end
      end)

(* ----------------------------------------------------------------- *)
(* session migration                                                  *)

type snapshot = {
  s_key : conn_key;
  s_state : state;
  s_data_base : Seq.t;
  s_snd_una : Seq.t;
  s_snd_nxt : Seq.t;
  s_snd_max : Seq.t;
  s_snd_wnd : int;
  s_snd_wl1 : Seq.t;
  s_snd_wl2 : Seq.t;
  s_iss : Seq.t;
  s_cwnd : int;
  s_ssthresh : int;
  s_fin_wanted : bool;
  s_fin_sent : bool;
  s_nodelay : bool;
  s_srtt : int;
  s_rttvar : int;
  s_rto : int;
  s_irs : Seq.t;
  s_rcv_nxt : Seq.t;
  s_rcv_buf : int;
  s_rcv_buffered : int;
  s_rcv_adv : Seq.t;
  s_reass : (Seq.t * string) list;
  s_fin_rcvd_seq : Seq.t option;
  s_mss : int;
  s_sndq : string;
  s_undelivered : string;
  s_fin_undelivered : bool;
  s_delack_pending : bool;
}

let export pcb =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      if (dead pcb) then invalid_arg "Tcp.export: dead pcb";
      let snap =
        {
          s_key = pcb.key;
          s_state = pcb.state;
          s_data_base = pcb.data_base;
          s_snd_una = pcb.snd_una;
          s_snd_nxt = pcb.snd_nxt;
          s_snd_max = pcb.snd_max;
          s_snd_wnd = pcb.snd_wnd;
          s_snd_wl1 = pcb.snd_wl1;
          s_snd_wl2 = pcb.snd_wl2;
          s_iss = pcb.iss;
          s_cwnd = pcb.cwnd;
          s_ssthresh = pcb.ssthresh;
          s_fin_wanted = (fin_wanted pcb);
          s_fin_sent = (fin_sent pcb);
          s_nodelay = flag pcb f_nodelay;
          s_srtt = pcb.srtt;
          s_rttvar = pcb.rttvar;
          s_rto = pcb.rto;
          s_irs = pcb.irs;
          s_rcv_nxt = pcb.rcv_nxt;
          s_rcv_buf = pcb.rcv_buf;
          s_rcv_buffered = pcb.rcv_buffered;
          s_rcv_adv = pcb.rcv_adv;
          s_reass =
            List.map (fun (s, m) -> (s, Mbuf.to_string m)) pcb.reass;
          s_fin_rcvd_seq =
            (if pcb.fin_rcvd < 0 then None else Some pcb.fin_rcvd);
          s_mss = pcb.mss;
          s_sndq = Mbuf.to_string pcb.sndq;
          s_undelivered = Mbuf.to_string pcb.undelivered;
          s_fin_undelivered = flag pcb f_fin_undelivered;
          s_delack_pending = (delack_pending pcb);
        }
      in
      (* Detach without emitting anything: the session is in transit. *)
      set_flag pcb f_dead true;
      detach_listener pcb;
      for slot = 0 to tm_count - 1 do
        stop_timer t pcb slot
      done;
      t.memo <- None;
      conns_remove t pcb.key;
      snap)

let import t ?(owner = No_owner) ~handlers snap =
  Psd_sim.Lock.with_lock t.lock (fun () ->
      if Hashtbl.mem t.conns snap.s_key then
        invalid_arg "Tcp.import: connection exists";
      let pcb =
        make_pcb t ~key:snap.s_key ~state:snap.s_state ~handlers
          ~rcv_buf:snap.s_rcv_buf ~mss:snap.s_mss
      in
      (* the owner must be installed before the re-delivery below:
         shared handlers recover their per-connection state through it *)
      pcb.owner <- owner;
      set_flag pcb f_handlers_set true;
      pcb.data_base <- snap.s_data_base;
      pcb.snd_una <- snap.s_snd_una;
      pcb.snd_nxt <- snap.s_snd_nxt;
      pcb.snd_max <- snap.s_snd_max;
      pcb.snd_wnd <- snap.s_snd_wnd;
      pcb.snd_wl1 <- snap.s_snd_wl1;
      pcb.snd_wl2 <- snap.s_snd_wl2;
      pcb.iss <- snap.s_iss;
      pcb.cwnd <- snap.s_cwnd;
      pcb.ssthresh <- snap.s_ssthresh;
      set_flag pcb f_fin_wanted snap.s_fin_wanted;
      set_flag pcb f_fin_sent snap.s_fin_sent;
      set_flag pcb f_nodelay snap.s_nodelay;
      pcb.srtt <- snap.s_srtt;
      pcb.rttvar <- snap.s_rttvar;
      pcb.rto <- snap.s_rto;
      pcb.irs <- snap.s_irs;
      pcb.rcv_nxt <- snap.s_rcv_nxt;
      pcb.rcv_buffered <- snap.s_rcv_buffered;
      pcb.rcv_adv <- snap.s_rcv_adv;
      pcb.reass <-
        List.map (fun (s, data) -> (s, Mbuf.of_string data)) snap.s_reass;
      pcb.fin_rcvd <-
        (match snap.s_fin_rcvd_seq with None -> -1 | Some fs -> fs);
      set_flag pcb f_delack_pending snap.s_delack_pending;
      Mbuf.concat pcb.sndq (Mbuf.of_string snap.s_sndq);
      t.memo <- None;
      conns_insert t pcb.key pcb;
      (* Re-deliver data that was buffered but not yet consumed. *)
      if String.length snap.s_undelivered > 0 then
        handlers.deliver pcb (Mbuf.of_string snap.s_undelivered);
      if snap.s_fin_undelivered then handlers.deliver_fin pcb;
      (* restart machinery *)
      if Seq.diff pcb.snd_max pcb.snd_una > 0 then arm_rexmt t pcb;
      if (delack_pending pcb) then arm_delack t pcb;
      if pcb.state = Time_wait then arm_msl t pcb;
      pcb)

let snapshot_size snap =
  (* fixed TCB fields ~ 96 bytes in BSD; plus queued data *)
  96
  + String.length snap.s_sndq
  + String.length snap.s_undelivered
  + List.fold_left (fun acc (_, d) -> acc + String.length d) 0 snap.s_reass

let snapshot_remote snap = (snap.s_key.rip, snap.s_key.rport)

let snapshot_local_port snap = snap.s_key.lport

let set_keepalive pcb v =
  let t = pcb.t in
  Psd_sim.Lock.with_lock t.lock (fun () ->
      set_flag pcb f_keepalive v;
      pcb.last_activity <- Psd_sim.Engine.now (eng t);
      if v then arm_keepalive t pcb else stop_timer t pcb tm_keep)

let can_send pcb =
  (not (dead pcb)) && (not (fin_wanted pcb))
  &&
  match pcb.state with
  | Established | Close_wait | Syn_sent | Syn_received -> true
  | _ -> false

let mute t ~local_port ~remote:(rip, rport) ~duration_ns =
  let key = { lport = local_port; rip; rport } in
  Hashtbl.replace t.muted key (Psd_sim.Engine.now (eng t) + duration_ns)
