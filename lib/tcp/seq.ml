type t = int

let modulus = 1 lsl 32

let add a n = (a + n) land (modulus - 1)

let sub a n = (a - n) land (modulus - 1)

let diff a b =
  let d = (a - b) land (modulus - 1) in
  if d >= modulus / 2 then d - modulus else d

let lt a b = diff a b < 0

let leq a b = diff a b <= 0

let gt a b = diff a b > 0

let geq a b = diff a b >= 0

let max a b = if geq a b then a else b

let min a b = if leq a b then a else b

let in_window x ~base ~size =
  let d = diff x base in
  d >= 0 && d < size
