(** TCP segment header encoding (RFC 793; MSS is the only option used). *)

type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

val no_flags : flags

type t = {
  src_port : int;
  dst_port : int;
  seq : Seq.t;
  ack : Seq.t;
  flags : flags;
  window : int;
  mss : int option;  (** MSS option, legal only on SYN segments *)
}

val base_size : int
(** 20 bytes without options. *)

val header_size : t -> int
(** 20, or 24 when the MSS option is present. *)

val encode :
  t ->
  src:Psd_ip.Addr.t ->
  dst:Psd_ip.Addr.t ->
  payload:Psd_mbuf.Mbuf.t ->
  Psd_mbuf.Mbuf.t
(** Prepend the TCP header (with a correct checksum over the pseudo
    header, header and payload) onto [payload] and return the chain. *)

type decode_error =
  | Truncated  (** shorter than the fixed header *)
  | Bad_offset  (** data offset below 20 or past the segment end *)
  | Bad_checksum

val pp_decode_error : Format.formatter -> decode_error -> unit

val decode :
  ?off:int ->
  ?len:int ->
  Bytes.t ->
  src:Psd_ip.Addr.t ->
  dst:Psd_ip.Addr.t ->
  (t * Psd_mbuf.Mbuf.t, decode_error) result
(** Parse a transport payload ([len] bytes at [off]; defaults cover the
    whole buffer) and verify its checksum; returns the header and the
    data as a zero-copy view into [b]. The caller must not mutate the
    buffer afterwards. The error distinguishes malformed segments
    ([Truncated], [Bad_offset]) from checksum mismatches so the caller
    can account them separately. *)

val pp : Format.formatter -> t -> unit
