(** TCP (RFC 793 + the BSD Net/2-era congestion machinery).

    One [Tcp.t] is the TCP instance of one protocol stack — in-kernel,
    in the UX server, or in an application's protocol library. It
    implements:

    - three-way handshake, active and passive open, simultaneous close;
    - sliding-window data transfer with BSD-style output decisions
      (Nagle, silly-window avoidance, window-update ACKs, delayed ACKs);
    - retransmission with Jacobson/Karels RTT estimation, Karn's rule and
      exponential backoff; persist probes against zero windows;
    - slow start, congestion avoidance, fast retransmit and fast recovery;
    - out-of-order segment reassembly;
    - full teardown: FIN in both directions, TIME_WAIT with 2MSL, RST.

    Crucially for the paper, a live connection's entire state can be
    {!export}ed from one instance and {!import}ed into another — this is
    the mechanism by which the operating-system server migrates a session
    into an application's protocol library after [accept]/[connect], and
    back again before [fork]/[close] (paper Section 3.1). *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val pp_state : Format.formatter -> state -> unit

type error =
  | Refused  (** RST received during connect *)
  | Reset  (** RST received on an established connection *)
  | Timed_out  (** retransmission limit exceeded *)

val pp_error : Format.formatter -> error -> unit

type t
type pcb
type listener

type handlers = {
  deliver : pcb -> Psd_mbuf.Mbuf.t -> unit;
      (** in-order data, called once per newly contiguous chunk *)
  deliver_fin : pcb -> unit;  (** peer closed its send side (EOF) *)
  on_established : pcb -> unit;
  on_acked : pcb -> int -> unit;
      (** bytes newly acknowledged; wakes senders *)
  on_error : pcb -> error -> unit;
  on_state : pcb -> state -> unit;  (** after every state transition *)
}
(** Every callback receives the connection it fired for, so one
    [handlers] record can serve every connection of a stack
    (per-connection context lives behind {!set_owner}) — at one million
    connections, six closures per socket were a measurable share of
    per-connection memory. Closure-per-connection handlers still work:
    ignore the [pcb] argument. *)

val null_handlers : handlers

val set_owner : pcb -> exn -> unit
(** Attach an upcall token for shared handlers to recover per-connection
    state from (an [exn] as a universal type: declare
    [exception Sock of t] and match it back). Cleared to {!No_owner}
    when the connection is dropped. *)

val owner : pcb -> exn

exception No_owner
(** Default {!owner} value. *)

type stats = {
  mutable segs_out : int;
  mutable bytes_out : int;  (** payload bytes, first transmissions *)
  mutable segs_in : int;
  mutable bytes_in : int;  (** payload bytes accepted in order *)
  mutable rexmt_segs : int;
  mutable fast_rexmt : int;
  mutable dup_acks_in : int;
  mutable ooo_segs : int;
  mutable acks_delayed : int;
  mutable rst_out : int;
  mutable drop_checksum : int;
      (** well-formed segments whose internet checksum failed *)
  mutable drop_malformed : int;
      (** truncated segments or impossible data offsets — kept separate
          from {!drop_checksum} so corruption-injection statistics can
          tell garbled payloads from garbled framing *)
  mutable drop_no_pcb : int;
  mutable predict_hit : int;
      (** synchronized-state segments taken by the header-prediction
          fast path *)
  mutable predict_miss : int;
      (** synchronized-state segments that fell through to the full
          input processing (counted only while prediction is enabled) *)
}

val create :
  ctx:Psd_cost.Ctx.t ->
  ip:Psd_ip.Ip.t ->
  ?mss:int ->
  ?msl_ns:int ->
  ?rto_min_ns:int ->
  ?rto_init_ns:int ->
  ?delack_ns:int ->
  ?max_rexmt:int ->
  ?default_rcv_buf:int ->
  ?keep_idle_ns:int ->
  ?keep_interval_ns:int ->
  ?keep_max_probes:int ->
  ?pcb_pool:int ->
  unit ->
  t
(** Registers the instance as the IP protocol-6 handler of [ip]. Defaults:
    MSS 1460, MSL 30 s, minimum RTO 500 ms, initial RTO 1 s, delayed-ACK
    200 ms, 12 retransmissions before giving up, 24 KB receive buffer
    (the per-configuration buffer sizes of Table 2 are set here).
    [pcb_pool] bounds the PCB free list (default 1024 records; [0]
    disables pooling — dispatch is bit-identical either way, which the
    differential suite checks). *)

(* --- opening ---------------------------------------------------------- *)

val connect :
  t ->
  ?handlers:handlers ->
  ?claim_data:bool ->
  ?rcv_buf:int ->
  src_port:int ->
  dst:Psd_ip.Addr.t ->
  dst_port:int ->
  unit ->
  pcb
(** Active open: sends the SYN and returns immediately; [on_established]
    or [on_error] fires later. [src_port] must be allocated by the
    caller's port authority (the operating-system server in decomposed
    configurations). [rcv_buf] is the receive-window limit (default
    24 KB). *)

val listen : t -> port:int -> ?backlog:int -> unit -> listener
(** Passive open. Handshakes complete autonomously; finished connections
    queue on the listener (default backlog 5, SYNs beyond it dropped). *)

val accept_ready : listener -> pcb option
(** Pop a completed connection, if any (callers block via {!on_ready}). *)

val on_ready : listener -> (unit -> unit) -> unit
(** Callback fired whenever a connection becomes ready to accept. *)

val pending : listener -> int

val close_listener : t -> listener -> unit

(* --- data transfer ---------------------------------------------------- *)

val send : pcb -> Psd_mbuf.Mbuf.t -> unit
(** Append to the send queue and run the output engine. The caller
    (socket layer) enforces send-buffer limits via {!sndq_length} and
    [on_acked]. @raise Invalid_argument after [shutdown_send]. *)

val user_consumed : pcb -> int -> unit
(** The application copied [n] bytes out of its receive buffer: opens the
    advertised window, possibly emitting a window-update ACK. *)

val shutdown_send : pcb -> unit
(** Close the send side (queue a FIN after pending data). Idempotent. *)

val abort : pcb -> unit
(** Send RST and drop the connection immediately. *)

(* --- introspection ----------------------------------------------------- *)

val state : pcb -> state
val sndq_length : pcb -> int
(** Bytes queued and not yet acknowledged (send-buffer occupancy). *)

val rcv_buffered : pcb -> int
val local_port : pcb -> int
val remote : pcb -> Psd_ip.Addr.t * int
val set_handlers : ?claim_data:bool -> pcb -> handlers -> unit
(** Install handlers. With [~claim_data:false] the control callbacks
    ([on_established], [on_error], ...) are active but data is NOT
    delivered; it keeps accumulating inside the PCB so a later
    {!export} carries it — used by the operating-system server for
    sessions that will migrate to an application. *)


val set_nodelay : pcb -> bool -> unit

val set_keepalive : pcb -> bool -> unit
(** SO_KEEPALIVE: once the connection has been idle for [keep_idle_ns]
    (default two hours, BSD), send garbage-sequence probes every
    [keep_interval_ns]; after [keep_max_probes] unanswered probes the
    connection is dropped with [Timed_out]. *)


val set_predict : t -> bool -> unit
(** Enable or disable the Van Jacobson header-prediction fast path
    (default enabled). Purely observational: on a hit the fast path
    executes the same statements the full input processing would, so
    pcb state, emitted segments, and virtual time are bit-identical
    either way — only {!stats.predict_hit}/{!stats.predict_miss} and
    wall-clock differ. The switch exists for the differential test
    suite and for measuring the fast path's wall-clock effect. *)

val srtt_ns : pcb -> int
val cwnd : pcb -> int
val stats : t -> stats
val active_pcbs : t -> int

val pool_stats : t -> int * int * int * int
(** [(fresh, hits, puts, free)]: PCBs built from scratch, served from
    the free list, returned to it, and currently parked on it. With no
    leak, [free = puts - hits] and [active_pcbs = fresh + hits - puts]
    (exports excluded) — the scale smoke test asserts this. *)

val set_conn_gauge : t -> (int -> unit) -> unit
(** Install a maintained-count hook: called with [+1] when a PCB enters
    the connection table (passive open, connect, import) and [-1] when
    one leaves (drop, export). Lets a workload tracking the total PCB
    population over many stacks keep a counter instead of walking every
    stack per sample — O(1) per tick regardless of connection count. *)

(* --- session migration ------------------------------------------------- *)

type snapshot

val export : pcb -> snapshot
(** Detach the connection from its instance: timers stop, the PCB leaves
    the demultiplexing tables, and the full protocol state (including
    unacknowledged send data and undelivered receive data) is captured.
    The PCB becomes unusable. *)

val import : t -> ?owner:exn -> handlers:handlers -> snapshot -> pcb
(** Install exported state into another instance; timers restart, and the
    connection continues exactly where it stopped. Undelivered in-order
    data is re-delivered through the new [handlers.deliver] — [owner] is
    installed first, so shared handlers can already recover their
    per-connection state during that re-delivery. *)

val snapshot_size : snapshot -> int
(** Approximate wire size in bytes of the state (what session migration
    pays to move it across the IPC boundary). *)

val snapshot_remote : snapshot -> Psd_ip.Addr.t * int
val snapshot_local_port : snapshot -> int

val can_send : pcb -> bool
(** The connection accepts more send data: open, not shut down. *)

val mute :
  t ->
  local_port:int ->
  remote:Psd_ip.Addr.t * int ->
  duration_ns:int ->
  unit
(** Suppress RST generation for segments of a connection this instance
    does not (or no longer does) hold. Session migration uses this: after
    {!export}, segments already queued toward the old stack must be
    dropped silently rather than answered with a reset. *)
