open Psd_util
open Psd_mbuf

type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

let no_flags =
  { fin = false; syn = false; rst = false; psh = false; ack = false;
    urg = false }

type t = {
  src_port : int;
  dst_port : int;
  seq : Seq.t;
  ack : Seq.t;
  flags : flags;
  window : int;
  mss : int option;
}

let base_size = 20

let header_size t = match t.mss with None -> base_size | Some _ -> 24

let flags_byte f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_byte b =
  {
    fin = b land 0x01 <> 0;
    syn = b land 0x02 <> 0;
    rst = b land 0x04 <> 0;
    psh = b land 0x08 <> 0;
    ack = b land 0x10 <> 0;
    urg = b land 0x20 <> 0;
  }

let encode t ~src ~dst ~payload =
  let hlen = header_size t in
  let buf, off = Mbuf.prepend payload hlen in
  Codec.set_u16 buf off t.src_port;
  Codec.set_u16 buf (off + 2) t.dst_port;
  Codec.set_u32i buf (off + 4) t.seq;
  Codec.set_u32i buf (off + 8) t.ack;
  Codec.set_u8 buf (off + 12) ((hlen / 4) lsl 4);
  Codec.set_u8 buf (off + 13) (flags_byte t.flags);
  Codec.set_u16 buf (off + 14) t.window;
  Codec.set_u16 buf (off + 16) 0 (* checksum *);
  Codec.set_u16 buf (off + 18) 0 (* urgent pointer: unused *);
  (match t.mss with
  | None -> ()
  | Some mss ->
    Codec.set_u8 buf (off + 20) 2;
    Codec.set_u8 buf (off + 21) 4;
    Codec.set_u16 buf (off + 22) mss);
  (* Checksum over pseudo-header + header + data, run directly over the
     chain's segments — odd-length segment boundaries are handled by the
     RFC 1071 byte-swap identity, so no flatten is needed. *)
  let whole = payload in
  let total = Mbuf.length whole in
  let acc =
    Psd_ip.Header.pseudo_checksum ~src ~dst ~proto:Psd_ip.Header.proto_tcp
      ~len:total
  in
  let acc = Mbuf.checksum_add whole acc in
  Codec.set_u16 buf (off + 16) (Checksum.finish acc);
  whole

let parse_mss buf off hlen =
  (* Walk options between offset 20 and hlen. *)
  let rec walk i =
    if i >= hlen then None
    else
      match Codec.get_u8 buf (off + i) with
      | 0 -> None (* end of options *)
      | 1 -> walk (i + 1) (* nop *)
      | 2 when i + 4 <= hlen -> Some (Codec.get_u16 buf (off + i + 2))
      | _ ->
        if i + 1 >= hlen then None
        else begin
          let optlen = Codec.get_u8 buf (off + i + 1) in
          if optlen < 2 then None else walk (i + optlen)
        end
  in
  walk 20

type decode_error = Truncated | Bad_offset | Bad_checksum

let pp_decode_error fmt e =
  Format.fprintf fmt "%s"
    (match e with
    | Truncated -> "tcp: segment too short"
    | Bad_offset -> "tcp: bad data offset"
    | Bad_checksum -> "tcp: bad checksum")

let decode ?(off = 0) ?len b ~src ~dst =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if len < base_size then Error Truncated
  else begin
    let hlen = Codec.get_u8 b (off + 12) lsr 4 * 4 in
    if hlen < base_size || hlen > len then Error Bad_offset
    else begin
      let total = len in
      let acc =
        Psd_ip.Header.pseudo_checksum ~src ~dst ~proto:Psd_ip.Header.proto_tcp
          ~len:total
      in
      let acc = Checksum.add_bytes acc b ~off ~len:total in
      if Checksum.finish acc <> 0 then Error Bad_checksum
      else begin
        let flags = flags_of_byte (Codec.get_u8 b (off + 13)) in
        let header =
          {
            src_port = Codec.get_u16 b off;
            dst_port = Codec.get_u16 b (off + 2);
            seq = Codec.get_u32i b (off + 4);
            ack = Codec.get_u32i b (off + 8);
            flags;
            window = Codec.get_u16 b (off + 14);
            mss = (if flags.syn then parse_mss b off hlen else None);
          }
        in
        (* zero-copy payload: a view into the decode buffer *)
        let payload = Mbuf.of_bytes_view b ~off:(off + hlen) ~len:(len - hlen) in
        Ok (header, payload)
      end
    end
  end

let pp fmt t =
  let f = t.flags in
  let flag_str =
    String.concat ""
      [
        (if f.syn then "S" else "");
        (if f.fin then "F" else "");
        (if f.rst then "R" else "");
        (if f.psh then "P" else "");
        (if f.ack then "." else "");
      ]
  in
  Format.fprintf fmt "%d > %d [%s] seq %d ack %d win %d" t.src_port t.dst_port
    flag_str t.seq t.ack t.window
