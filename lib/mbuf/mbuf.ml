type seg = {
  buf : Bytes.t;
  mutable off : int;
  mutable len : int;
  mutable shared : bool;
      (* [buf] may be referenced by another segment record (a view of a
         delivered frame, or the far side of a zero-copy [split]).
         The only operation that writes into an existing buffer is
         [prepend]'s headroom reuse, and it must not fire on a shared
         buffer: the bytes ahead of a view belong to someone else. *)
}

(* [total] caches the sum of segment lengths so [length] is O(1) instead
   of an O(segments) fold — it is consulted on nearly every socket-buffer
   and TCP-send-queue operation. Every mutator maintains it. *)
type t = { mutable segs : seg list; mutable total : int }

let mlen = 108
let cluster_size = 2048
let default_headroom = 64

let empty () = { segs = []; total = 0 }

let length t = t.total

let seg_count t = List.length t.segs

let is_empty t = t.total = 0

let of_bytes ?(headroom = default_headroom) b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Mbuf.of_bytes";
  let rec chunks off len acc first =
    if len = 0 then List.rev acc
    else begin
      let room = if first then headroom else 0 in
      let n = min len cluster_size in
      let buf = Bytes.create (room + n) in
      Bytes.blit b off buf room n;
      let s = { buf; off = room; len = n; shared = false } in
      chunks (off + n) (len - n) (s :: acc) false
    end
  in
  let segs =
    if len = 0 then
      (* keep headroom available for header prepends on empty payloads *)
      [ { buf = Bytes.create headroom; off = headroom; len = 0;
          shared = false } ]
    else if headroom + len <= mlen then
      (* small-mbuf case (BSD: data under [mlen] lives in an ordinary
         mbuf, not a cluster): one fixed-size mbuf holds headroom and
         payload, instead of chasing the cluster path for a handful of
         bytes. Segment count and boundaries are identical either way. *)
      let buf = Bytes.create mlen in
      (Bytes.blit b off buf headroom len;
       [ { buf; off = headroom; len; shared = false } ])
    else chunks off len [] true
  in
  { segs; total = len }

let of_string ?headroom s =
  of_bytes ?headroom (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let of_bytes_view b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Mbuf.of_bytes_view";
  { segs = [ { buf = b; off; len; shared = true } ]; total = len }

let prepend t n =
  if n < 0 then invalid_arg "Mbuf.prepend";
  t.total <- t.total + n;
  match t.segs with
  | s :: _ when s.off >= n && not s.shared ->
    s.off <- s.off - n;
    s.len <- s.len + n;
    (s.buf, s.off)
  | segs ->
    let buf = Bytes.create (max n mlen) in
    let off = Bytes.length buf - n in
    let s = { buf; off; len = n; shared = false } in
    t.segs <- s :: segs;
    (buf, off)

let trim_front t n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.trim_front";
  let rec go n segs =
    if n = 0 then segs
    else
      match segs with
      | [] -> assert false
      | s :: rest ->
        if s.len <= n then go (n - s.len) rest
        else begin
          s.off <- s.off + n;
          s.len <- s.len - n;
          segs
        end
  in
  t.segs <- go n t.segs;
  t.total <- t.total - n

let drop_front = trim_front

let trim_back t n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.trim_back";
  let keep = t.total - n in
  let rec go remaining segs =
    match segs with
    | [] -> []
    | s :: rest ->
      if s.len <= remaining then s :: go (remaining - s.len) rest
      else if remaining = 0 then []
      else begin
        s.len <- remaining;
        [ s ]
      end
  in
  t.segs <- go keep t.segs;
  t.total <- keep

let concat a b =
  a.segs <- a.segs @ b.segs;
  a.total <- a.total + b.total;
  b.segs <- [];
  b.total <- 0

let fold_ranges t ~init ~f =
  List.fold_left
    (fun acc s -> if s.len = 0 then acc else f acc s.buf ~off:s.off ~len:s.len)
    init t.segs

let iter_ranges t ~f =
  List.iter (fun s -> if s.len > 0 then f s.buf ~off:s.off ~len:s.len) t.segs

(* BSD m_copym. Copies each overlapping source range straight into fresh
   cluster segments — one copy per byte, where the previous
   implementation flattened into an intermediate buffer and then
   re-chunked it (two copies and a throwaway allocation per call; this
   sits on the TCP send path, once per transmitted segment). *)
let copy_range t ~off ~len =
  if off < 0 || len < 0 || off + len > t.total then
    invalid_arg "Mbuf.copy_range";
  if len = 0 then of_bytes Bytes.empty ~off:0 ~len:0
  else begin
    let dst =
      ref
        {
          buf = Bytes.create (default_headroom + min len cluster_size);
          off = default_headroom;
          len = 0;
          shared = false;
        }
    in
    let dst_room = ref (min len cluster_size) in
    let acc = ref [ !dst ] in
    let remaining = ref len in
    let pos = ref 0 in
    List.iter
      (fun s ->
        let seg_start = !pos and seg_end = !pos + s.len in
        pos := seg_end;
        let lo = max seg_start off and hi = min seg_end (off + len) in
        let lo = ref lo in
        while !lo < hi do
          if !dst_room = 0 then begin
            let n = min !remaining cluster_size in
            let d = { buf = Bytes.create n; off = 0; len = 0;
                      shared = false } in
            dst := d;
            dst_room := n;
            acc := d :: !acc
          end;
          let d = !dst in
          let n = min (hi - !lo) !dst_room in
          Bytes.blit s.buf (s.off + !lo - seg_start) d.buf (d.off + d.len) n;
          d.len <- d.len + n;
          dst_room := !dst_room - n;
          remaining := !remaining - n;
          lo := !lo + n
        done)
      t.segs;
    assert (!remaining = 0);
    { segs = List.rev !acc; total = len }
  end

(* Zero-copy split (BSD m_split): the front chain takes the leading
   segment records; a cut inside a segment makes two records over the
   same buffer, both marked shared so neither side's headroom reuse can
   scribble on the other's bytes. *)
let split t n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.split";
  let rec go n segs front =
    if n = 0 then (List.rev front, segs)
    else
      match segs with
      | [] -> assert false
      | s :: rest ->
        if s.len <= n then go (n - s.len) rest (s :: front)
        else begin
          s.shared <- true;
          let head = { buf = s.buf; off = s.off; len = n; shared = true } in
          s.off <- s.off + n;
          s.len <- s.len - n;
          (List.rev (head :: front), segs)
        end
  in
  let front_segs, back_segs = go n t.segs [] in
  t.segs <- back_segs;
  t.total <- t.total - n;
  { segs = front_segs; total = n }

(* Non-destructive zero-copy window: fresh segment records over the same
   buffers (both sides marked shared). *)
let sub_view t ~off ~len =
  if off < 0 || len < 0 || off + len > t.total then
    invalid_arg "Mbuf.sub_view";
  let acc = ref [] in
  let pos = ref 0 in
  List.iter
    (fun s ->
      let lo = max !pos off and hi = min (!pos + s.len) (off + len) in
      if lo < hi then begin
        s.shared <- true;
        acc :=
          { buf = s.buf; off = s.off + lo - !pos; len = hi - lo;
            shared = true }
          :: !acc
      end;
      pos := !pos + s.len)
    t.segs;
  { segs = List.rev !acc; total = len }

let contiguous t =
  let rec go = function
    | [] -> Some (Bytes.empty, 0, 0)
    | [ s ] -> Some (s.buf, s.off, s.len)
    | s :: rest -> if s.len = 0 then go rest else non_empty s rest
  and non_empty s = function
    | [] -> Some (s.buf, s.off, s.len)
    | r :: rest -> if r.len = 0 then non_empty s rest else None
  in
  go t.segs

let checksum_add t acc =
  (* mutable fold: this runs once per segment on the rx fast path, and
     a (acc, parity) tuple per chain link is measurable churn *)
  let sum = ref acc and odd = ref false in
  List.iter
    (fun s ->
      if s.len > 0 then begin
        sum :=
          (if !odd then
             Psd_util.Checksum.add_bytes_odd !sum s.buf ~off:s.off ~len:s.len
           else Psd_util.Checksum.add_bytes !sum s.buf ~off:s.off ~len:s.len);
        odd := !odd <> (s.len land 1 = 1)
      end)
    t.segs;
  !sum

let blit_to_bytes t b off =
  let pos = ref off in
  List.iter
    (fun s ->
      Bytes.blit s.buf s.off b !pos s.len;
      pos := !pos + s.len)
    t.segs

let to_bytes t =
  let b = Bytes.create t.total in
  blit_to_bytes t b 0;
  b

let to_string t = Bytes.unsafe_to_string (to_bytes t)

let get_u8 t i =
  if i < 0 || i >= t.total then invalid_arg "Mbuf.get_u8";
  let rec go i segs =
    match segs with
    | [] -> assert false
    | s :: rest ->
      if i < s.len then Char.code (Bytes.get s.buf (s.off + i))
      else go (i - s.len) rest
  in
  go i t.segs
