(** BSD-style mbuf chains — the unit of packet memory in the stack.

    A chain is a sequence of segments, each a view into a byte buffer.
    Small data lives in ordinary mbufs ([mlen] bytes of storage); bulk data
    lives in clusters ([cluster_size] bytes). Protocol headers are
    prepended into reserved headroom without copying the payload, and the
    TCP send queue hands out {e copies} of ranges ([copy_range], BSD's
    [m_copym]) because data must survive on the queue until acknowledged.

    Chains are mutable; operations are destructive unless documented
    otherwise. *)

type t

val mlen : int
(** Data bytes available in a small mbuf (BSD: 108). *)

val cluster_size : int
(** Data bytes in a cluster mbuf (BSD: 2048). *)

val default_headroom : int
(** Headroom reserved by {!of_string} and friends for link/IP/TCP headers
    prepended later (enough for Ethernet + IP + TCP). *)

val empty : unit -> t
(** A fresh zero-length chain. *)

val of_string : ?headroom:int -> string -> t
(** Copy a payload into a new chain, chunked into clusters. *)

val of_bytes : ?headroom:int -> Bytes.t -> off:int -> len:int -> t
(** Copy [len] bytes of [b] at [off] into a new chain. Payloads that fit
    in a small mbuf (headroom + len ≤ [mlen]) get one, larger ones are
    chunked into clusters. *)

val of_bytes_view : Bytes.t -> off:int -> len:int -> t
(** Wrap a byte range as a chain {e without copying}. The chain aliases
    [b]: the caller must not mutate the range afterwards. The segment is
    marked shared, so {!prepend} never reuses headroom inside [b]. *)

val length : t -> int
(** Total payload bytes in the chain. *)

val seg_count : t -> int
(** Number of segments (for mbuf-allocation cost accounting). *)

val is_empty : t -> bool

val prepend : t -> int -> Bytes.t * int
(** [prepend t n] grows the chain by [n] bytes at the front — in the first
    segment's headroom when it fits, otherwise in a fresh mbuf — and
    returns [(buf, off)] where the caller writes the header. *)

val trim_front : t -> int -> unit
(** Drop the first [n] bytes (strip a header).
    @raise Invalid_argument if the chain is shorter than [n]. *)

val trim_back : t -> int -> unit
(** Drop the last [n] bytes. *)

val drop_front : t -> int -> unit
(** Alias of {!trim_front}, named for its socket-buffer use (BSD [sbdrop]:
    release acknowledged data). *)

val concat : t -> t -> unit
(** [concat a b] appends [b]'s segments to [a]; [b] becomes empty. *)

val copy_range : t -> off:int -> len:int -> t
(** Non-destructive copy of a byte range as a fresh chain (BSD [m_copym]).
    @raise Invalid_argument if the range exceeds the chain. *)

val split : t -> int -> t
(** [split t n] removes the first [n] bytes of [t] and returns them as a
    new chain; [t] keeps the remainder. Zero-copy (BSD [m_split]): the
    two chains share buffers, which both sides track so header prepends
    never write into shared storage. *)

val sub_view : t -> off:int -> len:int -> t
(** Non-destructive zero-copy window onto a byte range: fresh segment
    records over the same buffers. Read-only by the same aliasing rule
    as {!of_bytes_view}. *)

val contiguous : t -> (Bytes.t * int * int) option
(** [Some (buf, off, len)] when the chain's payload is a single
    contiguous byte range (at most one non-empty segment) — the
    zero-copy header-decode fast path. [None] otherwise. *)

val to_bytes : t -> Bytes.t
(** Flatten to a contiguous buffer (handing a frame to the wire). *)

val blit_to_bytes : t -> Bytes.t -> int -> unit
(** Flatten into an existing buffer at an offset. *)

val to_string : t -> string

val fold_ranges : t -> init:'a -> f:('a -> Bytes.t -> off:int -> len:int -> 'a) -> 'a
(** Fold over the segments' byte ranges (checksum, copies) without
    flattening. *)

val iter_ranges : t -> f:(Bytes.t -> off:int -> len:int -> unit) -> unit
(** Read-only iteration over the non-empty segment ranges. *)

val checksum_add : t -> Psd_util.Checksum.acc -> Psd_util.Checksum.acc
(** Fold the whole chain into an Internet-checksum accumulator, running
    the word-at-a-time kernel directly over the segments (odd-length
    segment boundaries handled by the RFC 1071 byte-swap identity).
    Equals [Checksum.add_bytes] over the flattened chain. *)

val get_u8 : t -> int -> int
(** Random access by payload offset (slow; for tests and header peeks). *)
