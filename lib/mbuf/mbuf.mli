(** BSD-style mbuf chains — the unit of packet memory in the stack.

    A chain is a sequence of segments, each a view into a byte buffer.
    Small data lives in ordinary mbufs ([mlen] bytes of storage); bulk data
    lives in clusters ([cluster_size] bytes). Protocol headers are
    prepended into reserved headroom without copying the payload, and the
    TCP send queue hands out {e copies} of ranges ([copy_range], BSD's
    [m_copym]) because data must survive on the queue until acknowledged.

    Chains are mutable; operations are destructive unless documented
    otherwise. *)

type t

val mlen : int
(** Data bytes available in a small mbuf (BSD: 108). *)

val cluster_size : int
(** Data bytes in a cluster mbuf (BSD: 2048). *)

val default_headroom : int
(** Headroom reserved by {!of_string} and friends for link/IP/TCP headers
    prepended later (enough for Ethernet + IP + TCP). *)

val empty : unit -> t
(** A fresh zero-length chain. *)

val of_string : ?headroom:int -> string -> t
(** Copy a payload into a new chain, chunked into clusters. *)

val of_bytes : ?headroom:int -> Bytes.t -> off:int -> len:int -> t
(** Copy [len] bytes of [b] at [off] into a new chain. *)

val length : t -> int
(** Total payload bytes in the chain. *)

val seg_count : t -> int
(** Number of segments (for mbuf-allocation cost accounting). *)

val is_empty : t -> bool

val prepend : t -> int -> Bytes.t * int
(** [prepend t n] grows the chain by [n] bytes at the front — in the first
    segment's headroom when it fits, otherwise in a fresh mbuf — and
    returns [(buf, off)] where the caller writes the header. *)

val trim_front : t -> int -> unit
(** Drop the first [n] bytes (strip a header).
    @raise Invalid_argument if the chain is shorter than [n]. *)

val trim_back : t -> int -> unit
(** Drop the last [n] bytes. *)

val drop_front : t -> int -> unit
(** Alias of {!trim_front}, named for its socket-buffer use (BSD [sbdrop]:
    release acknowledged data). *)

val concat : t -> t -> unit
(** [concat a b] appends [b]'s segments to [a]; [b] becomes empty. *)

val copy_range : t -> off:int -> len:int -> t
(** Non-destructive copy of a byte range as a fresh chain (BSD [m_copym]).
    @raise Invalid_argument if the range exceeds the chain. *)

val split : t -> int -> t
(** [split t n] removes the first [n] bytes of [t] and returns them as a
    new chain; [t] keeps the remainder. *)

val to_bytes : t -> Bytes.t
(** Flatten to a contiguous buffer (handing a frame to the wire). *)

val blit_to_bytes : t -> Bytes.t -> int -> unit
(** Flatten into an existing buffer at an offset. *)

val to_string : t -> string

val fold_ranges : t -> init:'a -> f:('a -> Bytes.t -> off:int -> len:int -> 'a) -> 'a
(** Fold over the segments' byte ranges (checksum, copies) without
    flattening. *)

val get_u8 : t -> int -> int
(** Random access by payload offset (slow; for tests and header peeks). *)
