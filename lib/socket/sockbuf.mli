(** Socket receive buffer: a bounded byte-stream queue between a protocol
    stack (producer) and application readers (consumers), with EOF and
    error propagation — the [so_rcv] of BSD sockets. *)

type t

val create : Psd_sim.Engine.t -> ?hiwat:int -> unit -> t
(** [hiwat] defaults to 24 KB — the best DECstation receive-buffer size
    reported in the paper's Table 2 for most configurations. *)

val hiwat : t -> int

val cc : t -> int
(** Bytes currently buffered. *)

val space : t -> int
(** [hiwat - cc - loaned], floored at zero: bytes out on loan still
    occupy the buffer until returned. *)

val loaned : t -> int
(** Bytes handed out by {!read_loan} and not yet {!loan_return}ed. *)

val append : t -> Psd_mbuf.Mbuf.t -> unit
(** Producer side; never blocks (TCP's advertised window, not this
    buffer, provides backpressure). Wakes blocked readers. *)

val set_eof : t -> unit
(** No more data will arrive (peer FIN). Wakes readers. *)

val set_error : t -> string -> unit
(** Fail all pending and future reads. *)

val read : t -> max:int -> (Psd_mbuf.Mbuf.t, [ `Eof | `Error of string ]) result
(** Blocking read: waits for data, then returns up to [max] bytes.
    [`Eof] only after all buffered data has been drained. Must be called
    from a fiber. *)

val try_read : t -> max:int -> (Psd_mbuf.Mbuf.t, [ `Empty | `Eof | `Error of string ]) result
(** Non-blocking variant. *)

val read_loan :
  t -> max:int -> (Psd_mbuf.Mbuf.t, [ `Eof | `Error of string ]) result
(** NEWAPI drain: like {!read} — the result is the queued segment views
    themselves, never a flattened copy — but the bytes remain charged
    against [hiwat] until the borrower calls {!loan_return}, so buffer
    space is reclaimed deterministically at return time, not at read
    time. *)

val try_read_loan :
  t -> max:int -> (Psd_mbuf.Mbuf.t, [ `Empty | `Eof | `Error of string ]) result
(** Non-blocking variant of {!read_loan}. *)

val loan_return : t -> int -> unit
(** [loan_return t n] gives back [n] loaned bytes, releasing their
    buffer space (and notifying change hooks). Raises [Invalid_argument]
    if [n] is negative or exceeds the outstanding loan. *)

val readable : t -> bool
(** Data, EOF or an error is available — the [select] readability test. *)

val on_change : t -> (unit -> unit) -> unit
(** Callback after every state change (data appended, EOF, error, data
    consumed) — drives the cooperative select protocol. *)

val eof : t -> bool

val error : t -> string option
(** The failure installed by {!set_error}, if any. *)

val has_waiters : t -> bool
(** A reader is blocked in {!read} — the producer should charge a
    scheduler wakeup when it appends. *)
