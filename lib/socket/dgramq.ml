(* Polymorphic in the payload: the classic socket API queues cooked
   strings, the NEWAPI queues loaned mbuf views — boundary and drop
   semantics are payload-independent. *)
type 'a t = {
  q : ((int * int) * 'a) Queue.t;
  max_queued : int;
  cond : Psd_sim.Cond.t;
  mutable dropped : int;
  mutable change_hooks : (unit -> unit) list;
}

let create eng ?(max_queued = 32) () =
  {
    q = Queue.create ();
    max_queued;
    cond = Psd_sim.Cond.create eng;
    dropped = 0;
    change_hooks = [];
  }

let changed t =
  Psd_sim.Cond.broadcast t.cond;
  List.iter (fun f -> f ()) t.change_hooks

let push t ~src payload =
  if Queue.length t.q >= t.max_queued then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.push (src, payload) t.q;
    changed t;
    true
  end

let try_recv t =
  let r = Queue.take_opt t.q in
  if r <> None then changed t;
  r

let recv t = Psd_sim.Cond.until t.cond (fun () -> try_recv t)

let readable t = not (Queue.is_empty t.q)

let length t = Queue.length t.q

let dropped t = t.dropped

let on_change t f = t.change_hooks <- f :: t.change_hooks

let has_waiters t = Psd_sim.Cond.waiters t.cond > 0
