open Psd_mbuf

type t = {
  eng : Psd_sim.Engine.t;
  hiwat : int;
  data : Mbuf.t;
  mutable eof : bool;
  mutable error : string option;
  nonempty : Psd_sim.Cond.t;
  mutable change_hooks : (unit -> unit) list;
}

let create eng ?(hiwat = 24 * 1024) () =
  {
    eng;
    hiwat;
    data = Mbuf.empty ();
    eof = false;
    error = None;
    nonempty = Psd_sim.Cond.create eng;
    change_hooks = [];
  }

let hiwat t = t.hiwat

let cc t = Mbuf.length t.data

let space t = max 0 (t.hiwat - cc t)

let changed t =
  Psd_sim.Cond.broadcast t.nonempty;
  List.iter (fun f -> f ()) t.change_hooks

let append t m =
  Mbuf.concat t.data m;
  changed t

let set_eof t =
  t.eof <- true;
  changed t

let set_error t msg =
  t.error <- Some msg;
  changed t

let take t max_bytes =
  let n = min max_bytes (Mbuf.length t.data) in
  Mbuf.split t.data n

let state t =
  if Mbuf.length t.data > 0 then `Data
  else
    match t.error with
    | Some e -> `Error e
    | None -> if t.eof then `Eof else `Empty

let try_read t ~max =
  match state t with
  | `Data ->
    let m = take t max in
    changed t;
    Ok m
  | `Error e -> Error (`Error e)
  | `Eof -> Error `Eof
  | `Empty -> Error `Empty

let read t ~max =
  Psd_sim.Cond.until t.nonempty (fun () ->
      match try_read t ~max with
      | Ok m -> Some (Ok m)
      | Error `Empty -> None
      | Error `Eof -> Some (Error `Eof)
      | Error (`Error e) -> Some (Error (`Error e)))

let readable t = state t <> `Empty

let on_change t f = t.change_hooks <- f :: t.change_hooks

let eof t = t.eof

let has_waiters t = Psd_sim.Cond.waiters t.nonempty > 0
