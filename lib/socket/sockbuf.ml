open Psd_mbuf

type t = {
  eng : Psd_sim.Engine.t;
  hiwat : int;
  data : Mbuf.t;
  mutable eof : bool;
  mutable error : string option;
  nonempty : Psd_sim.Cond.t;
  mutable change_hooks : (unit -> unit) list;
  (* NEWAPI loan accounting: bytes handed out as borrowed views by
     [read_loan] and not yet given back by [loan_return]. Loaned bytes
     have left [data] but the application still holds the pages, so
     they keep counting against [hiwat] — space is reclaimed exactly
     when the loan is returned, never earlier. *)
  mutable loaned : int;
}

let create eng ?(hiwat = 24 * 1024) () =
  {
    eng;
    hiwat;
    data = Mbuf.empty ();
    eof = false;
    error = None;
    nonempty = Psd_sim.Cond.create eng;
    change_hooks = [];
    loaned = 0;
  }

let hiwat t = t.hiwat

let cc t = Mbuf.length t.data

let space t = max 0 (t.hiwat - cc t - t.loaned)

let loaned t = t.loaned

let changed t =
  Psd_sim.Cond.broadcast t.nonempty;
  List.iter (fun f -> f ()) t.change_hooks

let append t m =
  Mbuf.concat t.data m;
  changed t

let set_eof t =
  t.eof <- true;
  changed t

let set_error t msg =
  t.error <- Some msg;
  changed t

let take t max_bytes =
  let n = min max_bytes (Mbuf.length t.data) in
  Mbuf.split t.data n

let state t =
  if Mbuf.length t.data > 0 then `Data
  else
    match t.error with
    | Some e -> `Error e
    | None -> if t.eof then `Eof else `Empty

let try_read t ~max =
  match state t with
  | `Data ->
    let m = take t max in
    changed t;
    Ok m
  | `Error e -> Error (`Error e)
  | `Eof -> Error `Eof
  | `Empty -> Error `Empty

let read t ~max =
  Psd_sim.Cond.until t.nonempty (fun () ->
      match try_read t ~max with
      | Ok m -> Some (Ok m)
      | Error `Empty -> None
      | Error `Eof -> Some (Error `Eof)
      | Error (`Error e) -> Some (Error (`Error e)))

(* Loaned drain: identical take discipline to [try_read]/[read] — the
   returned chain is whatever segment views are queued, never a
   flattened copy — but the bytes stay charged against [hiwat] until
   the borrower calls [loan_return]. *)
let try_read_loan t ~max =
  match try_read t ~max with
  | Ok m ->
    t.loaned <- t.loaned + Mbuf.length m;
    Ok m
  | err -> err

let read_loan t ~max =
  Psd_sim.Cond.until t.nonempty (fun () ->
      match try_read_loan t ~max with
      | Ok m -> Some (Ok m)
      | Error `Empty -> None
      | Error `Eof -> Some (Error `Eof)
      | Error (`Error e) -> Some (Error (`Error e)))

let loan_return t n =
  if n < 0 then invalid_arg "Sockbuf.loan_return: negative length";
  if n > t.loaned then invalid_arg "Sockbuf.loan_return: not loaned";
  t.loaned <- t.loaned - n;
  if n > 0 then changed t

let readable t = state t <> `Empty

let on_change t f = t.change_hooks <- f :: t.change_hooks

let eof t = t.eof

let error t = t.error

let has_waiters t = Psd_sim.Cond.waiters t.nonempty > 0
