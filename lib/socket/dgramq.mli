(** Datagram receive queue: preserves message boundaries and source
    addresses — the [so_rcv] of a UDP socket. Bounded: datagrams arriving
    at a full queue are dropped, as BSD does. Polymorphic in the payload:
    the classic API queues cooked strings, the NEWAPI queues loaned mbuf
    views. *)

type 'a t

val create : Psd_sim.Engine.t -> ?max_queued:int -> unit -> 'a t
(** Default capacity 32 datagrams. *)

val push : 'a t -> src:int * int -> 'a -> bool
(** [push t ~src:(addr, port) payload]: [false] when the queue was full
    and the datagram was dropped. Wakes blocked readers. *)

val recv : 'a t -> (int * int) * 'a
(** Block until a datagram is available. *)

val try_recv : 'a t -> ((int * int) * 'a) option

val readable : 'a t -> bool

val length : 'a t -> int

val dropped : 'a t -> int

val on_change : 'a t -> (unit -> unit) -> unit

val has_waiters : 'a t -> bool
