(** Datagram receive queue: preserves message boundaries and source
    addresses — the [so_rcv] of a UDP socket. Bounded: datagrams arriving
    at a full queue are dropped, as BSD does. *)

type t

val create : Psd_sim.Engine.t -> ?max_queued:int -> unit -> t
(** Default capacity 32 datagrams. *)

val push : t -> src:int * int -> string -> bool
(** [push t ~src:(addr, port) payload]: [false] when the queue was full
    and the datagram was dropped. Wakes blocked readers. *)

val recv : t -> (int * int) * string
(** Block until a datagram is available. *)

val try_recv : t -> ((int * int) * string) option

val readable : t -> bool

val length : t -> int

val dropped : t -> int

val on_change : t -> (unit -> unit) -> unit

val has_waiters : t -> bool
