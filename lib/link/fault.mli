(** Deterministic wire fault injection.

    A fault process sits between a segment's serialisation and a NIC's
    receive handler and subjects every would-be delivery to an
    independent sequence of Bernoulli trials: drop, duplicate, reorder,
    corrupt, delay-jitter. All randomness comes from the single
    {!Psd_util.Rng.t} the process was created with, and draws are made
    in a fixed documented order, so a given seed replays the exact same
    fault schedule bit-for-bit — a failing lossy run is reproducible
    from its seed alone.

    Faults are evaluated per delivery (per receiving NIC), not per
    transmission: on a broadcast each receiver suffers its own
    independent fate, like independent receive-path noise on a shared
    medium.

    Corruption only touches frames carrying the IP ethertype, and only
    bytes past the 14-byte Ethernet header. The link CRC of a real
    Ethernet would discard virtually all corrupted frames at the NIC —
    modelled by {!policy.drop} — so the interesting corruptions are the
    ones that reach the protocols, and those must be caught by the IP
    header checksum and the TCP/UDP internet checksums. A single-byte
    XOR always perturbs a correct 16-bit one's-complement sum, so every
    injected corruption is detectable. Non-IP frames (ARP) carry no
    internet checksum and are left alone; use drops to stress the ARP
    retry path. *)

type policy = {
  drop : float;  (** P(delivery silently lost) *)
  duplicate : float;  (** P(frame delivered twice) *)
  reorder : float;
      (** P(delivery held back by [reorder_ns], letting later frames
          overtake it) *)
  corrupt : float;  (** P(one random payload byte XOR-flipped) *)
  jitter : float;  (** P(delivery delayed by U[1, jitter_max_ns]) *)
  reorder_ns : int;  (** hold-back applied to reordered deliveries *)
  jitter_max_ns : int;  (** upper bound of the jitter delay *)
}

val none : policy
(** All probabilities zero: a no-op process that never draws from its
    RNG, so attaching it cannot perturb anything. *)

val drop_only : float -> policy
(** Uniform loss at the given rate, nothing else. *)

val chaos : float -> policy
(** Drop, duplicate, reorder and corrupt each at the given rate, with
    default reorder/jitter magnitudes. *)

val is_null : policy -> bool
(** True when every probability is zero (the process cannot act). *)

type stats = {
  mutable frames : int;  (** deliveries evaluated *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable jittered : int;
}

type t

val create : rng:Psd_util.Rng.t -> policy -> t
(** The caller supplies the RNG; derive it from the simulation seed
    (e.g. [Rng.split (Engine.rng eng)] or [Rng.create ~seed]) to make
    the fault schedule part of the deterministic replay. *)

val policy : t -> policy

val stats : t -> stats

val injected : stats -> int
(** Total fault events ([dropped + duplicated + reordered + corrupted +
    jittered]). *)

val apply : t -> Bytes.t -> (int * Bytes.t) list
(** Decide the fate of one delivery. Returns the list of
    [(extra_delay_ns, frame)] deliveries the receiver should see — empty
    when dropped, two entries when duplicated. The argument must be the
    receiver's private copy: corruption mutates it in place (extra
    duplicate copies are freshly allocated). A zero extra delay means
    "deliver synchronously, exactly as a fault-free wire would". *)
