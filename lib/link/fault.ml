open Psd_util

type policy = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  jitter : float;
  reorder_ns : int;
  jitter_max_ns : int;
}

let default_reorder_ns = 3_000_000 (* ~2.5 max-frame times at 10 Mb/s *)

let default_jitter_max_ns = 1_000_000

let none =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    corrupt = 0.;
    jitter = 0.;
    reorder_ns = default_reorder_ns;
    jitter_max_ns = default_jitter_max_ns;
  }

let drop_only p = { none with drop = p }

let chaos p = { none with drop = p; duplicate = p; reorder = p; corrupt = p }

let is_null p =
  p.drop = 0. && p.duplicate = 0. && p.reorder = 0. && p.corrupt = 0.
  && p.jitter = 0.

type stats = {
  mutable frames : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable jittered : int;
}

type t = { policy : policy; rng : Rng.t; st : stats }

let create ~rng policy =
  {
    policy;
    rng;
    st =
      {
        frames = 0;
        dropped = 0;
        duplicated = 0;
        reordered = 0;
        corrupted = 0;
        jittered = 0;
      };
  }

let policy t = t.policy

let stats t = t.st

let injected st =
  st.dropped + st.duplicated + st.reordered + st.corrupted + st.jittered

(* XOR one byte of the encapsulated IP packet. Offsets are confined to
   the claimed IP length so Ethernet padding (which no checksum covers)
   is never the victim; a corruption that nothing can detect would
   assert nothing. *)
let corrupt_in_place t frame =
  let len = Bytes.length frame in
  if
    len > Frame.header_size
    && Frame.ethertype frame = Frame.ethertype_ip
  then begin
    let claimed =
      (Bytes.get_uint8 frame (Frame.header_size + 2) lsl 8)
      lor Bytes.get_uint8 frame (Frame.header_size + 3)
    in
    let span = min (len - Frame.header_size) (max 1 claimed) in
    let off = Frame.header_size + Rng.int t.rng span in
    let mask = 1 + Rng.int t.rng 255 in
    Bytes.set_uint8 frame off (Bytes.get_uint8 frame off lxor mask);
    t.st.corrupted <- t.st.corrupted + 1
  end

(* Trials are drawn in a fixed order — drop, duplicate, then per copy
   corrupt, reorder, jitter — and a zero-probability trial consumes no
   draw, so a policy's schedule is a pure function of (seed, delivery
   sequence). *)
let apply t frame =
  let p = t.policy in
  let st = t.st in
  st.frames <- st.frames + 1;
  if is_null p then [ (0, frame) ]
  else begin
    let flip pr = pr > 0. && Rng.float t.rng < pr in
    if flip p.drop then begin
      st.dropped <- st.dropped + 1;
      []
    end
    else begin
      let copies =
        if flip p.duplicate then begin
          st.duplicated <- st.duplicated + 1;
          [ frame; Bytes.copy frame ]
        end
        else [ frame ]
      in
      List.map
        (fun frm ->
          if flip p.corrupt then corrupt_in_place t frm;
          let delay = ref 0 in
          if flip p.reorder then begin
            st.reordered <- st.reordered + 1;
            delay := !delay + p.reorder_ns
          end;
          if flip p.jitter then begin
            st.jittered <- st.jittered + 1;
            delay := !delay + 1 + Rng.int t.rng p.jitter_max_ns
          end;
          (!delay, frm))
        copies
    end
  end
