(** 48-bit Ethernet MAC addresses. *)

type t

val of_string : string -> t
(** From six raw bytes. @raise Invalid_argument otherwise. *)

val of_host_id : int -> t
(** A locally-administered unicast address derived from a small host
    number — how the simulator assigns NIC addresses. *)

val broadcast : t

val is_broadcast : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val write : t -> Bytes.t -> int -> unit
(** Encode the six bytes at an offset. *)

val read : Bytes.t -> int -> t

val pp : Format.formatter -> t -> unit
(** [aa:bb:cc:dd:ee:ff] notation. *)

val to_string : t -> string
(** The six raw bytes. *)
