(** A shared 10 Mb/s Ethernet segment.

    Frames are serialised FIFO at the configured bit rate with a preamble
    and inter-frame gap per frame; a frame is delivered to the NICs whose
    address matches (or that are promiscuous) when its last bit arrives.
    Collisions are not modelled — the paper's measurements are taken on a
    private two-host network where the medium is effectively
    collision-free (DESIGN.md section 6). *)

type t

type nic

val create : Psd_sim.Engine.t -> ?bps:int -> ?ifg_ns:int -> unit -> t
(** Default 10 Mb/s with the standard 9.6 µs inter-frame gap. *)

val attach : t -> mac:Macaddr.t -> nic
(** Attach a NIC with the given address. *)

val mac : nic -> Macaddr.t

val set_rx : nic -> (Bytes.t -> unit) -> unit
(** Install the receive handler (the host's device-interrupt entry).
    The handler receives the padded on-wire frame. *)

val set_promiscuous : nic -> bool -> unit

val set_fault : t -> Fault.t option -> unit
(** Install (or clear) a fault process for every delivery on this
    segment. With [None] — the default — delivery is byte-perfect and
    event-for-event identical to a segment that never had a fault
    process, so fault-free runs replay bit-identically. *)

val set_nic_fault : nic -> Fault.t option -> unit
(** Per-NIC fault process; when set it overrides the segment-wide one
    for deliveries to this NIC (it is not composed with it). *)

val fault : t -> Fault.t option

val nic_fault : nic -> Fault.t option

val transmit : nic -> Bytes.t -> unit
(** Queue a frame for transmission. Undersized frames are padded to the
    Ethernet minimum; frames above the MTU raise [Invalid_argument].
    Transmission is asynchronous: the call returns immediately and
    delivery happens when serialisation completes. *)

val frame_time : t -> int -> int
(** Wire occupancy (ns) of a frame of the given length on this segment,
    including preamble, padding and inter-frame gap. *)

val frames_sent : t -> int

val bytes_sent : t -> int

val busy_ns : t -> int
(** Cumulative wire-busy time, for utilisation reporting. *)
