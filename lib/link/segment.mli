(** A shared 10 Mb/s Ethernet segment.

    Frames are serialised FIFO at the configured bit rate with a preamble
    and inter-frame gap per frame; a frame is delivered to the NICs whose
    address matches (or that are promiscuous) when its last bit arrives.
    Collisions are not modelled — the paper's measurements are taken on a
    private two-host network where the medium is effectively
    collision-free (DESIGN.md section 6). *)

type t

type nic

val create : Psd_sim.Engine.t -> ?bps:int -> ?ifg_ns:int -> unit -> t
(** Default 10 Mb/s with the standard 9.6 µs inter-frame gap. *)

val create_duplex :
  Psd_sim.Shard.t -> ?bps:int -> ?ifg_ns:int -> ?prop_ns:int -> unit -> t
(** A full-duplex point-to-multipoint wire whose NICs may live on
    different shards of the given {!Psd_sim.Shard.t}: each NIC
    serialises its own transmissions (no shared medium contention
    state), each receiver gets its own delivery event on its own
    engine, and attaching NICs on two different shards registers the
    wire's minimum frame latency (+ [prop_ns] propagation, default 0)
    as the conservative lookahead between them. Use [n = 1] shards for
    a single-domain duplex baseline — the virtual-time transcript is
    identical for every shard count. Duplex segments take per-NIC fault
    processes only ({!set_fault} rejects a policy). *)

val duplex : t -> bool

val min_latency : t -> int
(** Smallest possible transmit-to-arrival delta on this segment (ns):
    minimum-frame serialisation plus propagation — the lookahead a
    duplex wire contributes between shards. *)

val attach : t -> mac:Macaddr.t -> nic
(** Attach a NIC with the given address (on shard 0 if duplex). *)

val attach_on : t -> shard:int -> mac:Macaddr.t -> nic
(** Attach a NIC owned by the given shard of a duplex segment; its
    receive handler and delivery events run on that shard's engine.
    On a classic segment only [~shard:0] is accepted. *)

val mac : nic -> Macaddr.t

val set_rx : nic -> (Bytes.t -> unit) -> unit
(** Install the receive handler (the host's device-interrupt entry).
    The handler receives the padded on-wire frame. *)

val set_promiscuous : nic -> bool -> unit

val set_fault : t -> Fault.t option -> unit
(** Install (or clear) a fault process for every delivery on this
    segment. With [None] — the default — delivery is byte-perfect and
    event-for-event identical to a segment that never had a fault
    process, so fault-free runs replay bit-identically. *)

val set_nic_fault : nic -> Fault.t option -> unit
(** Per-NIC fault process; when set it overrides the segment-wide one
    for deliveries to this NIC (it is not composed with it). *)

val fault : t -> Fault.t option

val nic_fault : nic -> Fault.t option

val transmit : nic -> Bytes.t -> unit
(** Queue a frame for transmission. Undersized frames are padded to the
    Ethernet minimum; frames above the MTU raise [Invalid_argument].
    Transmission is asynchronous: the call returns immediately and
    delivery happens when serialisation completes. *)

val frame_time : t -> int -> int
(** Wire occupancy (ns) of a frame of the given length on this segment,
    including preamble, padding and inter-frame gap. *)

val frames_sent : t -> int

val bytes_sent : t -> int

val busy_ns : t -> int
(** Cumulative wire-busy time, for utilisation reporting. On a duplex
    segment this sums over NICs — read it only when no other domain is
    running (between sharded runs). *)

val nic_busy_ns : nic -> int
(** Cumulative transmit-busy time of one NIC of a duplex segment —
    safe to read from the owning shard while other shards run. *)
