let header_size = 14
let min_frame = 60
let mtu = 1500
let max_frame = header_size + mtu

let ethertype_ip = 0x0800
let ethertype_arp = 0x0806

let set_header b ~off ~dst ~src ~ethertype =
  Macaddr.write dst b off;
  Macaddr.write src b (off + 6);
  Psd_util.Codec.set_u16 b (off + 12) ethertype

let dst b = Macaddr.read b 0

let src b = Macaddr.read b 6

let ethertype b = Psd_util.Codec.get_u16 b 12

let is_valid b = Bytes.length b >= header_size
