type t = string

let of_string s =
  if String.length s <> 6 then invalid_arg "Macaddr.of_string";
  s

let of_host_id id =
  let b = Bytes.create 6 in
  Bytes.set b 0 '\x02' (* locally administered, unicast *);
  Bytes.set b 1 '\x00';
  Bytes.set_uint16_be b 2 (id lsr 16);
  Bytes.set_uint16_be b 4 (id land 0xffff);
  Bytes.unsafe_to_string b

let broadcast = "\xff\xff\xff\xff\xff\xff"

let is_broadcast t = String.equal t broadcast

let equal = String.equal

let compare = String.compare

let write t b off = Bytes.blit_string t 0 b off 6

let read b off = Bytes.sub_string b off 6

let pp fmt t =
  Format.fprintf fmt "%02x:%02x:%02x:%02x:%02x:%02x" (Char.code t.[0])
    (Char.code t.[1]) (Char.code t.[2]) (Char.code t.[3]) (Char.code t.[4])
    (Char.code t.[5])

let to_string t = t
