(** Ethernet II frame header encoding. *)

val header_size : int
(** 14 bytes: destination, source, ethertype. *)

val min_frame : int
(** Minimum transmitted frame size (60 bytes before FCS); shorter frames
    are padded on the wire. *)

val max_frame : int
(** Header plus the 1500-byte MTU. *)

val mtu : int
(** Maximum payload carried per frame (1500). *)

val ethertype_ip : int
val ethertype_arp : int

val set_header :
  Bytes.t -> off:int -> dst:Macaddr.t -> src:Macaddr.t -> ethertype:int -> unit

val dst : Bytes.t -> Macaddr.t
(** Fields of a frame laid out from offset 0. *)

val src : Bytes.t -> Macaddr.t

val ethertype : Bytes.t -> int

val is_valid : Bytes.t -> bool
(** Frame is at least header-sized. *)
