type nic = {
  nic_mac : Macaddr.t;
  mutable rx : Bytes.t -> unit;
  mutable promisc : bool;
  mutable nic_fault : Fault.t option;
  segment : t;
  (* the engine (and shard) that owns this NIC's host; equal to [t.eng]
     (shard 0) on a classic shared segment *)
  nic_eng : Psd_sim.Engine.t;
  nic_shard : int;
  (* duplex mode: each NIC serialises its own transmissions *)
  mutable nic_busy_until : int;
  mutable nic_frames : int;
  mutable nic_bytes : int;
  mutable nic_busy_ns : int;
}

and t = {
  eng : Psd_sim.Engine.t;
  (* [Some shard] switches the segment to duplex delivery: per-NIC
     transmit serialisation and per-receiver delivery events routed
     through the shard layer (possibly to another domain). [None] is
     the classic shared half-duplex medium. *)
  shard : Psd_sim.Shard.t option;
  prop_ns : int;
  bps : int;
  ifg_ns : int;
  mutable nics : nic list;
  mutable fault : Fault.t option;
  mutable busy_until : int;
  mutable frames : int;
  mutable bytes : int;
  mutable busy_ns : int;
}

let preamble_bytes = 8

let create eng ?(bps = 10_000_000) ?(ifg_ns = 9_600) () =
  {
    eng;
    shard = None;
    prop_ns = 0;
    bps;
    ifg_ns;
    nics = [];
    fault = None;
    busy_until = 0;
    frames = 0;
    bytes = 0;
    busy_ns = 0;
  }

let create_duplex shard ?(bps = 10_000_000) ?(ifg_ns = 9_600) ?(prop_ns = 0) ()
    =
  if prop_ns < 0 then invalid_arg "Segment.create_duplex: negative prop_ns";
  {
    eng = Psd_sim.Shard.engine shard 0;
    shard = Some shard;
    prop_ns;
    bps;
    ifg_ns;
    nics = [];
    fault = None;
    busy_until = 0;
    frames = 0;
    bytes = 0;
    busy_ns = 0;
  }

let duplex t = t.shard <> None

let frame_time t len =
  let len = max len Frame.min_frame in
  let bits = (len + preamble_bytes) * 8 in
  (bits * 1_000_000_000 / t.bps) + t.ifg_ns

(* Earliest possible sender-clock-to-arrival delta of any frame on this
   segment: minimum-size serialisation (the trailing inter-frame gap is
   not part of the arrival time) plus propagation. This is the
   conservative lookahead a duplex wire contributes between shards. *)
let min_latency t = frame_time t Frame.min_frame - t.ifg_ns + t.prop_ns

let attach_on t ~shard:si ~mac =
  let eng, si =
    match t.shard with
    | None ->
      if si <> 0 then
        invalid_arg "Segment.attach_on: classic segment has only shard 0";
      (t.eng, 0)
    | Some sh -> (Psd_sim.Shard.engine sh si, si)
  in
  let nic =
    {
      nic_mac = mac;
      rx = (fun _ -> ());
      promisc = false;
      nic_fault = None;
      segment = t;
      nic_eng = eng;
      nic_shard = si;
      nic_busy_until = 0;
      nic_frames = 0;
      nic_bytes = 0;
      nic_busy_ns = 0;
    }
  in
  (* a wire between two shards bounds how soon one can disturb the
     other: declare it, keeping the minimum over parallel wires *)
  (match t.shard with
  | Some sh ->
    let d = min_latency t in
    List.iter
      (fun other ->
        if other.nic_shard <> si then begin
          Psd_sim.Shard.set_lookahead sh ~src:si ~dst:other.nic_shard d;
          Psd_sim.Shard.set_lookahead sh ~src:other.nic_shard ~dst:si d
        end)
      t.nics
  | None -> ());
  t.nics <- t.nics @ [ nic ];
  nic

let attach t ~mac = attach_on t ~shard:0 ~mac

let mac nic = nic.nic_mac

let set_rx nic f = nic.rx <- f

let set_promiscuous nic v = nic.promisc <- v

let set_fault t f =
  if t.shard <> None && f <> None then
    invalid_arg
      "Segment.set_fault: duplex segments take per-NIC fault processes \
       (segment-wide state would be shared across domains)";
  t.fault <- f

let set_nic_fault nic f = nic.nic_fault <- f

let fault t = t.fault

let nic_fault nic = nic.nic_fault

let pad frame =
  let len = Bytes.length frame in
  if len >= Frame.min_frame then frame
  else begin
    let padded = Bytes.make Frame.min_frame '\x00' in
    Bytes.blit frame 0 padded 0 len;
    padded
  end

let wanted receiver dst =
  receiver.promisc
  || Macaddr.is_broadcast dst
  || Macaddr.equal dst receiver.nic_mac

(* Classic shared medium: one serialisation queue, one delivery event
   iterating the receivers on the shared engine. Byte-identical to the
   pre-duplex implementation. *)
let transmit_shared nic t frame =
  let now = Psd_sim.Engine.now t.eng in
  let start = max now t.busy_until in
  let occupancy = frame_time t (Bytes.length frame) in
  t.busy_until <- start + occupancy;
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  t.busy_ns <- t.busy_ns + occupancy;
  let arrival = start + occupancy - t.ifg_ns in
  let dst = Frame.dst frame in
  Psd_sim.Engine.schedule t.eng (arrival - now) (fun () ->
      List.iter
        (fun receiver ->
          if receiver != nic then
            if wanted receiver dst then begin
              (* each receiver gets a private copy of the frame: it is
                 the simulated medium handing the NIC its own bits, and
                 it is what makes downstream zero-copy views safe — the
                 buffer has exactly one owner and is never written after
                 delivery (fault corruption happens below, before the
                 receiver sees it) *)
              Psd_util.Copies.count Psd_util.Copies.Wire
                (Bytes.length frame);
              let copy = Bytes.copy frame in
              (* a NIC-specific fault process overrides the segment's *)
              match
                (match receiver.nic_fault with
                | Some _ as f -> f
                | None -> t.fault)
              with
              | None -> receiver.rx copy
              | Some f ->
                List.iter
                  (fun (extra_ns, frm) ->
                    if extra_ns = 0 then receiver.rx frm
                    else
                      Psd_sim.Engine.schedule t.eng extra_ns (fun () ->
                          receiver.rx frm))
                  (Fault.apply f copy)
            end)
        t.nics)

(* Duplex (sharded) medium: the sender serialises on its own NIC and
   each receiver gets its own delivery event on its own engine, routed
   through the shard layer when the receiver lives on another shard.
   The receiver list is walked in attach order, so the set of posted
   (key, dst) deliveries is independent of the shard partition — that,
   plus the shard layer's (key, src, FIFO) injection order, is what
   makes 1-shard and N-shard runs bit-identical. *)
let transmit_duplex nic t sh frame =
  let now = Psd_sim.Engine.now nic.nic_eng in
  let start = max now nic.nic_busy_until in
  let occupancy = frame_time t (Bytes.length frame) in
  nic.nic_busy_until <- start + occupancy;
  nic.nic_frames <- nic.nic_frames + 1;
  nic.nic_bytes <- nic.nic_bytes + Bytes.length frame;
  nic.nic_busy_ns <- nic.nic_busy_ns + occupancy;
  let arrival = start + occupancy - t.ifg_ns + t.prop_ns in
  let dst = Frame.dst frame in
  List.iter
    (fun receiver ->
      if receiver != nic && wanted receiver dst then
        let deliver () =
          (* copy on the receiver's side, as the shared path does *)
          Psd_util.Copies.count Psd_util.Copies.Wire (Bytes.length frame);
          let copy = Bytes.copy frame in
          match receiver.nic_fault with
          | None -> receiver.rx copy
          | Some f ->
            List.iter
              (fun (extra_ns, frm) ->
                if extra_ns = 0 then receiver.rx frm
                else
                  Psd_sim.Engine.schedule receiver.nic_eng extra_ns
                    (fun () -> receiver.rx frm))
              (Fault.apply f copy)
        in
        Psd_sim.Shard.post sh ~src:nic.nic_shard ~dst:receiver.nic_shard
          ~key:arrival deliver)
    t.nics

let transmit nic frame =
  let t = nic.segment in
  let len = Bytes.length frame in
  if len < Frame.header_size then invalid_arg "Segment.transmit: runt frame";
  if len > Frame.max_frame then invalid_arg "Segment.transmit: giant frame";
  let frame = pad frame in
  match t.shard with
  | Some sh -> transmit_duplex nic t sh frame
  | None -> transmit_shared nic t frame

let sum_nics t f = List.fold_left (fun acc n -> acc + f n) 0 t.nics

let frames_sent t =
  if duplex t then sum_nics t (fun n -> n.nic_frames) else t.frames

let bytes_sent t =
  if duplex t then sum_nics t (fun n -> n.nic_bytes) else t.bytes

let busy_ns t =
  if duplex t then sum_nics t (fun n -> n.nic_busy_ns) else t.busy_ns

let nic_busy_ns nic = nic.nic_busy_ns
