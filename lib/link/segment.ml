type nic = {
  nic_mac : Macaddr.t;
  mutable rx : Bytes.t -> unit;
  mutable promisc : bool;
  mutable nic_fault : Fault.t option;
  segment : t;
}

and t = {
  eng : Psd_sim.Engine.t;
  bps : int;
  ifg_ns : int;
  mutable nics : nic list;
  mutable fault : Fault.t option;
  mutable busy_until : int;
  mutable frames : int;
  mutable bytes : int;
  mutable busy_ns : int;
}

let preamble_bytes = 8

let create eng ?(bps = 10_000_000) ?(ifg_ns = 9_600) () =
  {
    eng;
    bps;
    ifg_ns;
    nics = [];
    fault = None;
    busy_until = 0;
    frames = 0;
    bytes = 0;
    busy_ns = 0;
  }

let attach t ~mac =
  let nic =
    {
      nic_mac = mac;
      rx = (fun _ -> ());
      promisc = false;
      nic_fault = None;
      segment = t;
    }
  in
  t.nics <- t.nics @ [ nic ];
  nic

let mac nic = nic.nic_mac

let set_rx nic f = nic.rx <- f

let set_promiscuous nic v = nic.promisc <- v

let set_fault t f = t.fault <- f

let set_nic_fault nic f = nic.nic_fault <- f

let fault t = t.fault

let nic_fault nic = nic.nic_fault

let frame_time t len =
  let len = max len Frame.min_frame in
  let bits = (len + preamble_bytes) * 8 in
  (bits * 1_000_000_000 / t.bps) + t.ifg_ns

let pad frame =
  let len = Bytes.length frame in
  if len >= Frame.min_frame then frame
  else begin
    let padded = Bytes.make Frame.min_frame '\x00' in
    Bytes.blit frame 0 padded 0 len;
    padded
  end

let transmit nic frame =
  let t = nic.segment in
  let len = Bytes.length frame in
  if len < Frame.header_size then invalid_arg "Segment.transmit: runt frame";
  if len > Frame.max_frame then invalid_arg "Segment.transmit: giant frame";
  let frame = pad frame in
  let now = Psd_sim.Engine.now t.eng in
  let start = max now t.busy_until in
  let occupancy = frame_time t (Bytes.length frame) in
  t.busy_until <- start + occupancy;
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  t.busy_ns <- t.busy_ns + occupancy;
  let arrival = start + occupancy - t.ifg_ns in
  let dst = Frame.dst frame in
  Psd_sim.Engine.schedule t.eng (arrival - now) (fun () ->
      List.iter
        (fun receiver ->
          if receiver != nic then
            let wanted =
              receiver.promisc
              || Macaddr.is_broadcast dst
              || Macaddr.equal dst receiver.nic_mac
            in
            if wanted then begin
              (* each receiver gets a private copy of the frame: it is
                 the simulated medium handing the NIC its own bits, and
                 it is what makes downstream zero-copy views safe — the
                 buffer has exactly one owner and is never written after
                 delivery (fault corruption happens below, before the
                 receiver sees it) *)
              Psd_util.Copies.count Psd_util.Copies.Wire
                (Bytes.length frame);
              let copy = Bytes.copy frame in
              (* a NIC-specific fault process overrides the segment's *)
              match
                (match receiver.nic_fault with
                | Some _ as f -> f
                | None -> t.fault)
              with
              | None -> receiver.rx copy
              | Some f ->
                List.iter
                  (fun (extra_ns, frm) ->
                    if extra_ns = 0 then receiver.rx frm
                    else
                      Psd_sim.Engine.schedule t.eng extra_ns (fun () ->
                          receiver.rx frm))
                  (Fault.apply f copy)
            end)
        t.nics)

let frames_sent t = t.frames

let bytes_sent t = t.bytes

let busy_ns t = t.busy_ns
