(** Control-plane scale workload: [conns] concurrent TCP connections
    from many client hosts, through a gateway router, to one server.

    Client hosts pack 250 per /24 segment and the farm grows segments
    as needed ([10.0.<k>.0/24] per segment, server on [10.1.0.0/24]),
    so the host count is bounded by the address plan — 250 segments of
    250 hosts, 62,500 hosts — not by a single subnet.

    Connections ramp up staggered, all hold open simultaneously at the
    sampling point (memory per connection via [Gc] live-word deltas),
    then close and drain through TIME_WAIT. Reported wall-clock
    excludes the GC walks taken for the memory samples. *)

type result = {
  conns : int;
  hosts : int; (* client hosts used *)
  segments : int; (* client /24 segments hung off the gateway *)
  connected : int;
  echoed : int; (* connections that completed an echo round-trip *)
  failed : int;
  peak_pcbs : int; (* live PCBs across all stacks at the peak *)
  bytes_per_conn : float; (* GC delta / conns: pcbs, sockets, fibers *)
  bytes_per_pcb : float; (* GC delta / peak_pcbs *)
  events : int; (* total events scheduled over the run *)
  virtual_ns : int;
  wall_s : float;
  events_per_wall_s : float;
  wall_ms_per_sim_s : float; (* wall cost of one simulated second *)
  rexmt_segs : int;
  injected : int; (* wire faults injected, when a policy is set *)
  final_pcbs : int; (* after close + drain; 0 means no PCB leak *)
  pool_fresh : int; (* PCB pool counters summed over every stack: *)
  pool_hits : int; (* fresh allocations, free-list reuses, ... *)
  pool_puts : int; (* ... returns to the free list, and records *)
  pool_free : int; (* parked on it at the end of the run. *)
}

type error =
  | Bad_conns of int (* conns must be >= 1 *)
  | Bad_per_host of int (* per_host must be >= 1 *)
  | Too_many_hosts of { hosts : int; limit : int }
      (* the conns/per_host combination needs more client hosts than
         the 250x250 address plan can number *)

val pp_error : Format.formatter -> error -> unit

val run :
  ?config:Psd_cost.Config.t ->
  ?conns:int ->
  ?per_host:int ->
  ?bps:int ->
  ?spacing_ns:int ->
  ?hold_ns:int ->
  ?ping_bytes:int ->
  ?backlog:int ->
  ?seed:int ->
  ?fault:Psd_link.Fault.policy ->
  unit ->
  (result, error) Stdlib.result
(** Defaults: Mach 2.5 in-kernel stacks, 1000 connections, 500 per
    client host, 100 Mb/s segments, one connect per 2 ms, 5 s hold,
    64-byte ping, backlog 4096, seed 11, no faults. Returns [Error]
    without building any topology when the conns/per_host combination
    is invalid. *)

val run_par :
  ?config:Psd_cost.Config.t ->
  ?conns:int ->
  ?per_host:int ->
  ?bps:int ->
  ?spacing_ns:int ->
  ?hold_ns:int ->
  ?ping_bytes:int ->
  ?backlog:int ->
  ?seed:int ->
  ?fault:Psd_link.Fault.policy ->
  ?nshards:int ->
  ?domains:bool ->
  ?prop_ns:int ->
  unit ->
  (result, error) Stdlib.result
(** Domain-parallel variant of {!run} on a conservative
    {!Psd_sim.Shard} engine: server and router on shard 0, client hosts
    over the remaining shards — whole segments per shard when there are
    enough segments, per-host round-robin otherwise — and every segment
    full-duplex with [prop_ns] (default 1 ms) propagation delay setting
    the lookahead window. For any [nshards] and either [domains]
    setting the connection outcome counters, PCB population, and
    virtual time are bit-identical — the parallel differential suite
    enforces it. Wire faults are per-receiving-NIC on client and server
    hosts with RNG streams derived from [seed] and the host index, so
    one seed fixes one fault schedule for every shard count ([events]
    and wall-clock fields do legitimately vary between modes). *)

val pp : Format.formatter -> result -> unit
