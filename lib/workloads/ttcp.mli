(** The paper's throughput microbenchmark: memory-to-memory TCP transfer
    of a fixed volume between two hosts (16 MB in the paper). *)

type recovery = {
  rexmt : int;  (** timer retransmissions, both hosts *)
  fast_rexmt : int;  (** fast retransmits (3 dup acks), both hosts *)
  dup_acks_in : int;
  ooo_segs : int;  (** segments queued out of order by the receiver *)
  drop_checksum : int;  (** TCP segments dropped for a bad checksum *)
  drop_malformed : int;  (** TCP segments dropped for broken framing *)
  reass_timed_out : int;  (** IP fragment datagrams that timed out *)
  injected : int;  (** wire faults injected (0 when no policy given) *)
  predict_hit : int;
      (** segments taken by the TCP header-prediction fast path, both
          hosts (not printed by {!pp_recovery}: the fast path is
          observational and the recovery printout is a recorded
          baseline) *)
  predict_miss : int;  (** segments that fell through to the slow path *)
}
(** How the transfer recovered from injected wire faults, summed over
    both hosts' stacks. All-zero (except possibly [dup_acks_in]) on a
    clean wire. *)

val pp_recovery : Format.formatter -> recovery -> unit

type result = {
  config : Psd_cost.Config.t;
  bytes : int;
  elapsed_ns : int;
  kb_per_sec : float;
  rcv_buf : int;
  segs_out : int;  (** sender data segments *)
  rexmt : int;
  wire_utilization : float;  (** fraction of elapsed time the wire was busy *)
  recovery : recovery;
}

val run :
  ?plat:Psd_cost.Platform.t ->
  ?machine:Paper.machine ->
  ?mb:int ->
  ?rcv_buf:int ->
  ?delack_ns:int ->
  ?seed:int ->
  ?fault:Psd_link.Fault.policy ->
  ?predict:bool ->
  ?probe:(sender:Psd_core.System.t -> receiver:Psd_core.System.t -> unit) ->
  Psd_cost.Config.t ->
  result
(** Build a fresh two-host simulation in the given configuration and
    transfer [mb] megabytes (default 16). [rcv_buf] defaults to the
    paper's per-configuration best (Table 2). [fault] installs a
    wire-level fault-injection policy on the shared segment (both
    directions suffer); the payload is patterned and verified end to
    end, so [run] raises if recovery ever delivers wrong bytes. A null
    policy (or none) leaves the run bit-identical to the seed.
    [predict] (default [true]) toggles the header-prediction fast path
    on both hosts; either setting produces the same result record up to
    the [predict_hit]/[predict_miss] counters. [probe] runs after the
    transfer completes, with both hosts still live — the offload bench
    reads {!Psd_core.System.nic_pipe} counters through it. *)

val run_par :
  ?plat:Psd_cost.Platform.t ->
  ?machine:Paper.machine ->
  ?mb:int ->
  ?rcv_buf:int ->
  ?delack_ns:int ->
  ?seed:int ->
  ?fault:Psd_link.Fault.policy ->
  ?predict:bool ->
  ?nshards:int ->
  ?domains:bool ->
  ?prop_ns:int ->
  Psd_cost.Config.t ->
  result
(** Domain-parallel variant of {!run}: sender and receiver hosts live
    on separate shards of a conservative {!Psd_sim.Shard} engine joined
    by a full-duplex wire ([?prop_ns], default 1 ms, adds propagation
    delay — it widens the conservative lookahead window and so sets the
    barrier-round granularity; 0 gives wire timing identical to {!run}
    but a window of only twice the minimum frame time). [~nshards:1] (single shard) is the baseline; for
    any shard count and for [~domains] [true] (one OCaml domain per
    shard, default) or [false] (same rounds stepped sequentially) the
    result record is bit-identical — the parallel differential suite
    enforces it. Wire faults are per-receiving-NIC with RNG streams
    derived from [seed] and the host index (partition-independent);
    [wire_utilization] reports the data direction (sender NIC) only. *)

val pp : Format.formatter -> result -> unit
