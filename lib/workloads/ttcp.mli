(** The paper's throughput microbenchmark: memory-to-memory TCP transfer
    of a fixed volume between two hosts (16 MB in the paper). *)

type result = {
  config : Psd_cost.Config.t;
  bytes : int;
  elapsed_ns : int;
  kb_per_sec : float;
  rcv_buf : int;
  segs_out : int;  (** sender data segments *)
  rexmt : int;
  wire_utilization : float;  (** fraction of elapsed time the wire was busy *)
}

val run :
  ?plat:Psd_cost.Platform.t ->
  ?machine:Paper.machine ->
  ?mb:int ->
  ?rcv_buf:int ->
  ?delack_ns:int ->
  ?seed:int ->
  Psd_cost.Config.t ->
  result
(** Build a fresh two-host simulation in the given configuration and
    transfer [mb] megabytes (default 16). [rcv_buf] defaults to the
    paper's per-configuration best (Table 2). *)

val pp : Format.formatter -> result -> unit
