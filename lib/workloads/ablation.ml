module Cfg = Psd_cost.Config
open Psd_core

let delivery ?(mb = 8) ?(rounds = 200) () =
  let results =
    List.map
      (fun config ->
        let tp = Ttcp.run ~mb config in
        let lat =
          Protolat.run ~rounds ~proto:Protolat.Udp ~size:1 config
        in
        (config.Cfg.label, tp.Ttcp.kb_per_sec, lat.Protolat.rtt_ms))
      [ Cfg.library_ipc; Cfg.library_shm; Cfg.library_shm_ipf ]
  in
  Format.printf "@.=== Ablation: kernel packet-delivery variant ===@.";
  List.iter
    (fun (label, tp, rtt) ->
      Format.printf "  %-36s %6.0f KB/s   %5.2f ms (1B UDP rtt)@." label tp
        rtt)
    results;
  Format.printf
    "  (IPC->SHM isolates wakeup batching; SHM->SHM-IPF isolates the \
     deferred device copy)@.";
  results

let ack_strategy ?(mb = 8) () =
  let delayed = Ttcp.run ~mb Cfg.library_shm_ipf in
  (* delack timer of ~0 makes every segment generate an immediate ack *)
  let immediate = Ttcp.run ~mb ~delack_ns:1 Cfg.library_shm_ipf in
  let results =
    [
      ("delayed acks (every other segment)", delayed.Ttcp.kb_per_sec);
      ("ack every segment", immediate.Ttcp.kb_per_sec);
    ]
  in
  Format.printf "@.=== Ablation: acknowledgement strategy (Library-SHM-IPF) ===@.";
  List.iter
    (fun (label, tp) -> Format.printf "  %-36s %6.0f KB/s@." label tp)
    results;
  results

let sync_weight ?(rounds = 300) () =
  let base = Psd_cost.Platform.decstation in
  let heavy =
    { base with Psd_cost.Platform.sync_light = base.Psd_cost.Platform.sync_heavy }
  in
  let run plat =
    (Protolat.run ~plat ~rounds ~proto:Protolat.Tcp ~size:1
       Cfg.library_shm_ipf)
      .Protolat.rtt_ms
  in
  let results =
    [
      ("library locks (normal)", run base);
      ("simulated priority levels (server's)", run heavy);
    ]
  in
  Format.printf
    "@.=== Ablation: synchronisation weight in the protocol library ===@.";
  List.iter
    (fun (label, ms) -> Format.printf "  %-40s %5.2f ms (1B TCP rtt)@." label ms)
    results;
  results

let bufsize_sweep ?(mb = 8) ?(sizes_kb = [ 4; 8; 16; 24; 32; 48; 63 ]) config
    =
  let results =
    List.map
      (fun kb ->
        let r = Ttcp.run ~mb ~rcv_buf:(kb * 1024) config in
        (kb, r.Ttcp.kb_per_sec))
      sizes_kb
  in
  Format.printf "@.=== Sweep: receive-buffer size, %s ===@." config.Cfg.label;
  List.iter
    (fun (kb, tp) -> Format.printf "  %3d KB -> %6.0f KB/s@." kb tp)
    results;
  results

let loss_sweep ?(mb = 2)
    ?(rates = [ 0.; 0.001; 0.005; 0.01; 0.02; 0.05 ]) () =
  let results =
    List.map
      (fun config ->
        let rows =
          List.map
            (fun rate ->
              let r =
                Ttcp.run ~mb ~fault:(Psd_link.Fault.drop_only rate) config
              in
              (rate, r.Ttcp.kb_per_sec, r.Ttcp.recovery.Ttcp.rexmt,
               r.Ttcp.recovery.Ttcp.fast_rexmt))
            rates
        in
        (config.Cfg.label, rows))
      Cfg.decstation_rows
  in
  Format.printf
    "@.=== Sweep: TCP goodput vs frame loss rate (%d MB per point) ===@." mb;
  Format.printf "  %-36s" "loss rate ->";
  List.iter (fun r -> Format.printf " %8.1f%%" (100. *. r)) rates;
  Format.printf "@.";
  List.iter
    (fun (label, rows) ->
      Format.printf "  %-36s" label;
      List.iter (fun (_, kbps, _, _) -> Format.printf " %8.0f " kbps) rows;
      Format.printf "@.  %36s" "(rexmt+fast)";
      List.iter
        (fun (_, _, rexmt, fast) -> Format.printf " %5d+%-3d" rexmt fast)
        rows;
      Format.printf "@.")
    results;
  Format.printf
    "  (all placements pay the same recovery machinery; loss compresses \
     the placement gap@.   because the wire, not per-byte processing, \
     becomes the bottleneck)@.";
  results

let loss_faults ?(mb = 4) ?(rate = 0.01) () =
  let module F = Psd_link.Fault in
  let policies =
    [
      ("clean wire", F.none);
      ("drop", F.drop_only rate);
      ("duplicate", { F.none with F.duplicate = rate });
      ("reorder", { F.none with F.reorder = rate });
      ("corrupt", { F.none with F.corrupt = rate });
      ("chaos (all of the above)", F.chaos rate);
    ]
  in
  let results =
    List.map
      (fun (label, policy) ->
        let r = Ttcp.run ~mb ~fault:policy Cfg.library_shm_ipf in
        (label, r.Ttcp.kb_per_sec, r.Ttcp.recovery))
      policies
  in
  Format.printf
    "@.=== Ablation: fault class at %.1f%% rate (Library-SHM-IPF, %d MB) \
     ===@."
    (100. *. rate) mb;
  List.iter
    (fun (label, kbps, rec_) ->
      Format.printf "  %-26s %6.0f KB/s   %a@." label kbps Ttcp.pp_recovery
        rec_)
    results;
  Format.printf
    "  (drops cost a window each; duplicates and reordering only cost \
     dup-ack processing;@.   corruption is caught by the checksums and \
     then behaves like loss)@.";
  results

let migration_cost ?(conns = 20) ?(bytes_per_conn = 1024) () =
  let run config =
    let eng = Psd_sim.Engine.create ~seed:5 () in
    let segment = Psd_link.Segment.create eng () in
    let sys_a =
      System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"a" ()
    in
    let sys_b =
      System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"b" ()
    in
    let sapp = System.app sys_b ~name:"srv" in
    Psd_sim.Engine.spawn eng (fun () ->
        let s = Sockets.stream sapp in
        ignore (Sockets.bind s ~port:7 ());
        ignore (Sockets.listen s ~backlog:8 ());
        let rec serve () =
          match Sockets.accept s with
          | Ok c ->
            Psd_sim.Engine.spawn eng (fun () ->
                let rec drain () =
                  match Sockets.recv c ~max:65536 with
                  | Ok "" | Error _ -> Sockets.close c
                  | Ok _ -> drain ()
                in
                drain ());
            serve ()
          | Error _ -> ()
        in
        serve ());
    let capp = System.app sys_a ~name:"cli" in
    let per_conn = Psd_util.Stats.create () in
    let payload = String.make bytes_per_conn 'm' in
    Psd_sim.Engine.spawn eng (fun () ->
        for _ = 1 to conns do
          let t0 = Psd_sim.Engine.now eng in
          let s = Sockets.stream capp in
          (match Sockets.connect s (System.addr sys_b) 7 with
          | Ok () -> ()
          | Error e -> failwith e);
          ignore (Sockets.send s payload);
          Sockets.close s;
          Psd_util.Stats.add per_conn
            (float_of_int (Psd_sim.Engine.now eng - t0))
        done);
    Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 120);
    Psd_util.Stats.mean per_conn /. 1e6
  in
  let results =
    [
      ("Library placement (2 migrations/conn)", run Cfg.library_shm_ipf);
      ("Server placement (no migration)", run Cfg.ux_server);
      ("In-kernel (no migration)", run Cfg.mach25_kernel);
    ]
  in
  Format.printf
    "@.=== Ablation: session-migration cost per short connection (%d B \
     payload) ===@."
    bytes_per_conn;
  List.iter
    (fun (label, ms) -> Format.printf "  %-42s %6.2f ms/conn@." label ms)
    results;
  results
