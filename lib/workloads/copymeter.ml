open Psd_core

(* A one-way UDP blast with the copy counters reset after a one-packet
   warm-up, so every Bytes.blit the datapath performs is attributable
   per-packet. UDP keeps the wire unidirectional (no acks polluting the
   counters), and the warm-up resolves ARP before the measurement
   window opens (address-resolution frames ride the operating-system
   server's classic delivery channel, which would otherwise smear
   control-traffic copies over the per-packet data-path numbers). *)

type result = {
  config : Psd_cost.Config.t;
  packets : int;  (** datagrams delivered to the application *)
  sent : int;  (** datagrams submitted by the blaster *)
  payload_bytes : int;
  sites : (string * int * int) list;  (** site, copies, bytes *)
  rx_body_copies : int;
      (** receive-datapath payload copies (device, IPC, ring, flatten,
          RPC) — the number the paper's single-copy argument is about *)
  tx_body_copies : int;
      (** transmit-datapath payload copies (copyin, retain, frame
          gather, RPC) — 1 on a zero-copy send path: only the gather *)
}

let run ?(count = 200) ?(size = 1024) config =
  let eng = Psd_sim.Engine.create () in
  let segment = Psd_link.Segment.create eng () in
  let sys_a =
    System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"cm-tx" ()
  in
  let sys_b =
    System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"cm-rx" ()
  in
  let newapi = config.Psd_cost.Config.api = Psd_cost.Config.Newapi in
  let got = ref 0 in
  let got_bytes = ref 0 in
  let rapp = System.app sys_b ~name:"cm-sink" in
  Psd_sim.Engine.spawn eng ~name:"cm-sink" (fun () ->
      let s = Sockets.dgram rapp in
      (match Sockets.bind s ~port:9 () with
      | Ok _ -> ()
      | Error e -> failwith e);
      let rec loop () =
        match Sockets.recvfrom s ~max:65536 with
        | Ok (d, _) ->
          incr got;
          got_bytes := !got_bytes + String.length d;
          loop ()
        | Error e -> failwith ("copymeter sink: " ^ e)
      in
      (* NEWAPI sink: borrow each datagram where the channel deposited
         it and hand it straight back — no copy-out ever happens, which
         is the measurement: the rx_loan site replaces the body copy. *)
      let rec loop_loan () =
        match Sockets.recv_loan s ~max:65536 with
        | Ok l ->
          incr got;
          got_bytes := !got_bytes + Sockets.loan_length l;
          Sockets.return_loan s l;
          loop_loan ()
        | Error e -> failwith ("copymeter sink: " ^ e)
      in
      if newapi then loop_loan () else loop ());
  let sapp = System.app sys_a ~name:"cm-blast" in
  Psd_sim.Engine.spawn eng ~name:"cm-blast" (fun () ->
      let s = Sockets.dgram sapp in
      (match Sockets.bind s () with Ok _ -> () | Error e -> failwith e);
      let payload = String.init size (fun i -> Char.chr (i land 0xff)) in
      let dst = (System.addr sys_b, 9) in
      (* warm-up: one throwaway datagram resolves ARP on both hosts,
         then the counters reset and the measured blast begins *)
      (match Sockets.send s ~dst payload with
      | Ok _ -> ()
      | Error e -> failwith ("copymeter warm-up: " ^ e));
      Psd_sim.Engine.sleep eng (Psd_sim.Time.sec 1);
      Psd_util.Copies.reset ();
      got := 0;
      got_bytes := 0;
      if newapi then begin
        (* datagram send_owned completes synchronously (the frame
           gather copies during the call), so one owned buffer serves
           the whole blast *)
        let owned = Bytes.of_string payload in
        let done_ = ref true in
        for _ = 1 to count do
          if not !done_ then
            failwith "copymeter: owned buffer not returned";
          done_ := false;
          match
            Sockets.send_owned s ~dst owned ~completion:(fun () ->
                done_ := true)
          with
          | Ok _ -> ()
          | Error e -> failwith ("copymeter blast: " ^ e)
        done
      end
      else
        for _ = 1 to count do
          match Sockets.send s ~dst payload with
          | Ok _ -> ()
          | Error e -> failwith ("copymeter blast: " ^ e)
        done);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 60);
  if !got = 0 then
    failwith
      (Printf.sprintf "copymeter[%s]: no datagrams arrived"
         config.Psd_cost.Config.label);
  {
    config;
    packets = !got;
    sent = count;
    payload_bytes = !got_bytes;
    sites = Psd_util.Copies.all ();
    rx_body_copies = Psd_util.Copies.rx_datapath_copies ();
    tx_body_copies = Psd_util.Copies.tx_datapath_copies ();
  }

let pp fmt r =
  (* tx normalises by submitted datagrams, rx by delivered ones: under
     the server placement a few datagrams die in flight, and each
     direction's copies happen on its own side of the loss *)
  Format.fprintf fmt "%-36s %4d pkts  %.2f tx + %.2f rx body copies/pkt@."
    r.config.Psd_cost.Config.label r.packets
    (float_of_int r.tx_body_copies /. float_of_int r.sent)
    (float_of_int r.rx_body_copies /. float_of_int r.packets);
  List.iter
    (fun (site, copies, bytes) ->
      if copies > 0 then
        let denom =
          if String.length site >= 3 && String.sub site 0 3 = "tx_" then
            r.sent
          else r.packets
        in
        Format.fprintf fmt "    %-12s %6d copies  %9d bytes  (%.2f/pkt)@."
          site copies bytes
          (float_of_int copies /. float_of_int denom))
    r.sites
