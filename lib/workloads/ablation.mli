(** Ablation studies for the design choices DESIGN.md calls out.

    Each prints a small table and returns the measurements so tests can
    assert the causal direction. *)

val delivery : ?mb:int -> ?rounds:int -> unit -> (string * float * float) list
(** Packet-delivery variant at fixed workload: for IPC / SHM / SHM-IPF,
    (label, ttcp KB/s, 1-byte UDP RTT ms). Isolates wakeup batching
    (IPC vs SHM) from copy elimination (SHM vs SHM-IPF). *)

val ack_strategy : ?mb:int -> unit -> (string * float) list
(** Throughput with delayed ACKs (ack every other segment) versus
    ack-immediately — the receiver-processing sensitivity the paper's
    throughput discussion leans on. *)

val sync_weight : ?rounds:int -> unit -> (string * float) list
(** The library placement run with its normal lightweight locks versus
    with the server's simulated-priority-level costs: shows that the
    Table 4 synchronisation gap is causal, not incidental to placement. *)

val bufsize_sweep :
  ?mb:int -> ?sizes_kb:int list -> Psd_cost.Config.t -> (int * float) list
(** Throughput versus receive-buffer size — the sweep the paper ran to
    pick each configuration's best buffer (Table 2's buffer column). *)

val loss_sweep :
  ?mb:int ->
  ?rates:float list ->
  unit ->
  (string * (float * float * int * int) list) list
(** TCP goodput versus injected frame-loss rate across all six
    DECstation placements: per configuration, a row of (loss rate,
    KB/s, timer retransmissions, fast retransmits). Deterministic —
    same seed, same fault schedule, same counters. *)

val loss_faults :
  ?mb:int ->
  ?rate:float ->
  unit ->
  (string * float * Ttcp.recovery) list
(** One fault class at a time (drop / duplicate / reorder / corrupt /
    all together) at a fixed rate on the Library-SHM-IPF placement, with
    the recovery counters that show which machinery each class
    exercises. *)

val migration_cost : ?conns:int -> ?bytes_per_conn:int -> unit ->
  (string * float) list
(** Cost of session migration amortised against connection lifetime:
    mean per-connection wall time for connect/send/close cycles in the
    Library placement (two migrations per connection) versus the Server
    placement (none). *)
