type machine = Dec | Gateway

let lbl (c : Psd_cost.Config.t) = c.Psd_cost.Config.label

let kb n = n * 1024

(* Table 2 "ReceiveBufferSize" column; 120KB clamped to the largest
   advertisable 16-bit window. *)
let best_rcv_buf machine c =
  let max_wnd = 65535 in
  match (machine, lbl c) with
  | Dec, "Mach 2.5 In-Kernel" -> kb 24
  | Dec, "Ultrix 4.2A In-Kernel" -> kb 16
  | Dec, "Mach 3.0+UX Server" -> kb 24
  | Dec, "Mach 3.0+UX Library-IPC" -> kb 24
  | Dec, "Mach 3.0+UX Library-SHM" -> max_wnd
  | Dec, "Mach 3.0+UX Library-SHM-IPF" -> max_wnd
  | Dec, "Mach 3.0+UX Library-NEWAPI-IPC" -> kb 24
  | Dec, "Mach 3.0+UX Library-NEWAPI-SHM" -> max_wnd
  | Dec, "Mach 3.0+UX Library-NEWAPI-SHM-IPF" -> max_wnd
  | Gateway, "Mach 2.5 In-Kernel" -> kb 8
  | Gateway, "386BSD In-Kernel" -> kb 8
  | Gateway, "Mach 3.0+UX Server" -> kb 16
  | Gateway, "Mach 3.0+BNR2SS Server" -> max_wnd
  | Gateway, "Mach 3.0+UX Library-IPC" -> kb 24
  | Gateway, "Mach 3.0+UX Library-SHM" -> kb 24
  (* the NIC fast path is never the window bottleneck on either machine *)
  | _, "Smart-NIC Offload" | _, "Smart-NIC Offload (1 PE)" -> max_wnd
  | _ -> kb 24

let tcp_sizes = [ 1; 100; 512; 1024; 1460 ]
let udp_sizes = [ 1; 100; 512; 1024; 1472 ]

(* label -> (throughput, tcp latencies, udp latencies) — Table 2. *)
let dec_rows =
  [
    ( "Mach 2.5 In-Kernel",
      Some 1070.,
      [ 1.40; 1.73; 3.05; 4.56; 6.04 ],
      [ 1.45; 1.74; 3.05; 4.56; 5.88 ] );
    ( "Ultrix 4.2A In-Kernel",
      Some 996.,
      [ 1.52; 1.89; 3.50; 4.78; 6.13 ],
      [ 1.52; 1.81; 3.29; 4.69; 6.05 ] );
    ( "Mach 3.0+UX Server",
      Some 740.,
      [ 3.64; 4.21; 5.90; 7.84; 9.73 ],
      [ 3.64; 4.01; 6.55; 7.99; 9.81 ] );
    ( "Mach 3.0+UX Library-IPC",
      Some 910.,
      [ 1.69; 2.09; 3.43; 5.09; 6.63 ],
      [ 1.40; 1.78; 3.08; 4.71; 6.10 ] );
    ( "Mach 3.0+UX Library-SHM",
      Some 1076.,
      [ 1.82; 2.29; 3.56; 5.32; 6.73 ],
      [ 1.34; 1.68; 2.95; 4.59; 5.95 ] );
    ( "Mach 3.0+UX Library-SHM-IPF",
      Some 1088.,
      [ 1.72; 2.11; 3.44; 5.09; 6.56 ],
      [ 1.23; 1.57; 2.83; 4.41; 5.78 ] );
  ]

let gateway_rows =
  [
    ( "Mach 2.5 In-Kernel",
      Some 457.,
      [ 2.08; 2.69; 5.45; 8.78; 12.05 ],
      [ 1.83; 2.41; 5.19; 8.54; 11.41 ] );
    ( "386BSD In-Kernel",
      Some 320.,
      [ 2.71; 3.64; 6.21; nan; nan ],
      [ 2.63; 3.19; 6.01; 9.45; 12.54 ] );
    ( "Mach 3.0+UX Server",
      Some 415.,
      [ 4.09; 4.88; 7.76; 11.30; 14.29 ],
      [ 3.96; 4.67; 7.80; 11.65; 15.01 ] );
    ( "Mach 3.0+BNR2SS Server",
      Some 382.,
      [ 3.99; 4.70; 8.00; nan; nan ],
      [ 4.61; 5.17; 8.95; 13.24; 16.10 ] );
    ( "Mach 3.0+UX Library-IPC",
      Some 469.,
      [ 2.49; 3.10; 5.84; 9.25; 14.09 ],
      [ 2.12; 2.68; 5.31; 8.74; 11.66 ] );
    ( "Mach 3.0+UX Library-SHM",
      Some 503.,
      [ 2.39; 3.07; 5.79; 9.15; 12.58 ],
      [ 2.02; 2.59; 5.30; 8.64; 11.62 ] );
  ]

(* Table 3: NEWAPI rows plus the two in-kernel baselines (DECstation). *)
let table3_rows =
  [
    ( "Mach 2.5 In-Kernel",
      Some 1070.,
      [ 1.40; 1.73; 3.05; 4.56; 6.04 ],
      [ 1.45; 1.74; 3.05; 4.56; 5.88 ] );
    ( "Ultrix 4.2A In-Kernel",
      Some 996.,
      [ 1.52; 1.89; 3.53; 4.78; 6.13 ],
      [ 1.52; 1.81; 3.29; 4.69; 6.05 ] );
    ( "Mach 3.0+UX Library-NEWAPI-IPC",
      Some 959.,
      [ 1.67; 2.02; 3.35; 4.96; 6.45 ],
      [ 1.42; 1.75; 3.05; 4.69; 6.09 ] );
    ( "Mach 3.0+UX Library-NEWAPI-SHM",
      Some 1083.,
      [ 1.70; 2.07; 3.33; 4.94; 6.38 ],
      [ 1.34; 1.66; 2.93; 4.54; 5.95 ] );
    ( "Mach 3.0+UX Library-NEWAPI-SHM-IPF",
      Some 1099.,
      [ 1.63; 1.98; 3.24; 4.80; 6.26 ],
      [ 1.25; 1.57; 2.83; 4.38; 5.76 ] );
  ]

let rows_for = function Dec -> dec_rows | Gateway -> gateway_rows

let find_row rows label =
  List.find_opt (fun (l, _, _, _) -> String.equal l label) rows

let nth_size sizes size = List.find_index (fun s -> s = size) sizes

let latency_of sizes lats size =
  match nth_size sizes size with
  | Some i ->
    let v = List.nth lats i in
    if Float.is_nan v then None else Some v
  | None -> None

let table2_throughput machine label =
  match find_row (rows_for machine) label with
  | Some (_, tp, _, _) -> tp
  | None -> None

let table2_tcp_latency machine label size =
  match find_row (rows_for machine) label with
  | Some (_, _, tcp, _) -> latency_of tcp_sizes tcp size
  | None -> None

let table2_udp_latency machine label size =
  match find_row (rows_for machine) label with
  | Some (_, _, _, udp) -> latency_of udp_sizes udp size
  | None -> None

let table3_throughput label =
  match find_row table3_rows label with Some (_, tp, _, _) -> tp | None -> None

let table3_tcp_latency label size =
  match find_row table3_rows label with
  | Some (_, _, tcp, _) -> latency_of tcp_sizes tcp size
  | None -> None

let table3_udp_latency label size =
  match find_row table3_rows label with
  | Some (_, _, _, udp) -> latency_of udp_sizes udp size
  | None -> None

(* Table 4, microseconds. (impl, proto, size) -> phase label -> us *)
let table4 =
  [
    (* impl, proto, size, [rows in Phase order] *)
    ("Library", "tcp", 1,
     [ ("entry/copyin", 19); ("tcp,udp_output", 82); ("ip_output", 26);
       ("ether_output", 98); ("device intr/read", 42);
       ("netisr/packet filter", 82); ("kernel copyout", 123);
       ("mbuf/queue", 22); ("ipintr", 37); ("tcp,udp_input", 214);
       ("wakeup user thread", 92); ("copyout/exit", 46);
       ("network transit", 51) ]);
    ("Library", "tcp", 1460,
     [ ("entry/copyin", 203); ("tcp,udp_output", 328); ("ip_output", 26);
       ("ether_output", 274); ("device intr/read", 43);
       ("netisr/packet filter", 95); ("kernel copyout", 534);
       ("mbuf/queue", 21); ("ipintr", 35); ("tcp,udp_input", 445);
       ("wakeup user thread", 95); ("copyout/exit", 261);
       ("network transit", 1214) ]);
    ("Kernel", "tcp", 1,
     [ ("entry/copyin", 50); ("tcp,udp_output", 65); ("ip_output", 24);
       ("ether_output", 75); ("device intr/read", 77);
       ("netisr/packet filter", 79); ("kernel copyout", 0);
       ("mbuf/queue", 0); ("ipintr", 30); ("tcp,udp_input", 76);
       ("wakeup user thread", 54); ("copyout/exit", 32);
       ("network transit", 51) ]);
    ("Kernel", "tcp", 1460,
     [ ("entry/copyin", 153); ("tcp,udp_output", 307); ("ip_output", 20);
       ("ether_output", 105); ("device intr/read", 469);
       ("netisr/packet filter", 73); ("kernel copyout", 0);
       ("mbuf/queue", 0); ("ipintr", 37); ("tcp,udp_input", 270);
       ("wakeup user thread", 54); ("copyout/exit", 220);
       ("network transit", 1214) ]);
    ("Server", "tcp", 1,
     [ ("entry/copyin", 254); ("tcp,udp_output", 224); ("ip_output", 31);
       ("ether_output", 166); ("device intr/read", 101);
       ("netisr/packet filter", 53); ("kernel copyout", 113);
       ("mbuf/queue", 79); ("ipintr", 127); ("tcp,udp_input", 249);
       ("wakeup user thread", 194); ("copyout/exit", 222);
       ("network transit", 51) ]);
    ("Server", "tcp", 1460,
     [ ("entry/copyin", 579); ("tcp,udp_output", 447); ("ip_output", 25);
       ("ether_output", 331); ("device intr/read", 496);
       ("netisr/packet filter", 52); ("kernel copyout", 148);
       ("mbuf/queue", 58); ("ipintr", 95); ("tcp,udp_input", 365);
       ("wakeup user thread", 213); ("copyout/exit", 1028);
       ("network transit", 1214) ]);
    ("Library", "udp", 1,
     [ ("entry/copyin", 6); ("tcp,udp_output", 18); ("ip_output", 17);
       ("ether_output", 105); ("device intr/read", 39);
       ("netisr/packet filter", 58); ("kernel copyout", 107);
       ("mbuf/queue", 20); ("ipintr", 35); ("tcp,udp_input", 103);
       ("wakeup user thread", 73); ("copyout/exit", 21);
       ("network transit", 51) ]);
    ("Library", "udp", 1472,
     [ ("entry/copyin", 7); ("tcp,udp_output", 239); ("ip_output", 18);
       ("ether_output", 280); ("device intr/read", 40);
       ("netisr/packet filter", 70); ("kernel copyout", 517);
       ("mbuf/queue", 20); ("ipintr", 33); ("tcp,udp_input", 318);
       ("wakeup user thread", 80); ("copyout/exit", 63);
       ("network transit", 1214) ]);
    ("Kernel", "udp", 1,
     [ ("entry/copyin", 65); ("tcp,udp_output", 70); ("ip_output", 22);
       ("ether_output", 74); ("device intr/read", 74);
       ("netisr/packet filter", 83); ("kernel copyout", 0);
       ("mbuf/queue", 0); ("ipintr", 30); ("tcp,udp_input", 67);
       ("wakeup user thread", 70); ("copyout/exit", 27);
       ("network transit", 51) ]);
    ("Kernel", "udp", 1472,
     [ ("entry/copyin", 104); ("tcp,udp_output", 273); ("ip_output", 25);
       ("ether_output", 163); ("device intr/read", 481);
       ("netisr/packet filter", 84); ("kernel copyout", 0);
       ("mbuf/queue", 0); ("ipintr", 54); ("tcp,udp_input", 279);
       ("wakeup user thread", 69); ("copyout/exit", 75);
       ("network transit", 1214) ]);
    ("Server", "udp", 1,
     [ ("entry/copyin", 293); ("tcp,udp_output", 229); ("ip_output", 24);
       ("ether_output", 188); ("device intr/read", 99);
       ("netisr/packet filter", 76); ("kernel copyout", 124);
       ("mbuf/queue", 68); ("ipintr", 121); ("tcp,udp_input", 61);
       ("wakeup user thread", 262); ("copyout/exit", 208);
       ("network transit", 51) ]);
    ("Server", "udp", 1472,
     [ ("entry/copyin", 628); ("tcp,udp_output", 398); ("ip_output", 27);
       ("ether_output", 367); ("device intr/read", 497);
       ("netisr/packet filter", 61); ("kernel copyout", 207);
       ("mbuf/queue", 64); ("ipintr", 91); ("tcp,udp_input", 273);
       ("wakeup user thread", 274); ("copyout/exit", 619);
       ("network transit", 1214) ]);
  ]

let table4_cell impl ~proto ~size phase_label =
  match
    List.find_opt (fun (i, p, s, _) -> i = impl && p = proto && s = size)
      table4
  with
  | Some (_, _, _, cells) -> List.assoc_opt phase_label cells
  | None -> None
