(** Experiment drivers that regenerate the paper's tables and figure.

    Each function prints the measured table with the paper's values
    alongside, and returns the measured data for programmatic checks
    (tests, EXPERIMENTS.md generation). *)

type cell = { ours : float; paper : float option }

type latency_row = {
  label : string;
  tcp_ms : (int * cell option) list;  (** size -> cell; None = NA *)
  udp_ms : (int * cell option) list;
  throughput : cell option;
  rcv_buf : int;
}

val table2 :
  ?machine:Paper.machine ->
  ?mb:int ->
  ?rounds:int ->
  ?with_offload:bool ->
  unit ->
  latency_row list
(** TCP throughput and TCP/UDP round-trip latency for every configuration
    of Table 2 on the chosen machine (default DECstation; default 16 MB
    transfers, 200 round trips per latency cell). [with_offload] (default
    false, keeping the seed output unchanged) appends the Smart-NIC
    Offload row. *)

val table3 :
  ?mb:int -> ?rounds:int -> ?with_offload:bool -> unit -> latency_row list
(** The NEWAPI comparison (DECstation only, like the paper);
    [with_offload] appends the Smart-NIC Offload row. *)

type breakdown_row = {
  phase : string;
  us : (string * int * int option) list;
      (** (implementation, measured us, paper us) per column *)
}

val table4 :
  ?rounds:int -> ?with_offload:bool -> unit -> breakdown_row list list
(** Per-layer latency breakdown for Library (SHM-IPF), Kernel (Mach 2.5)
    and Server (UX), TCP and UDP, at 1 byte and the maximum unfragmented
    size — the paper's Table 4 structure. Returns one table per
    (proto, size) pair. [with_offload] appends the Offload column and a
    "descriptor crossing" row showing where the host<->NIC boundary cost
    lands. *)

val table1 : unit -> unit
(** Print the proxy/server call decomposition (paper Table 1). *)

val figure1 : unit -> unit
(** Print the component/placement map of each configuration (paper
    Figure 1). *)

val print_rows : header:string -> latency_row list -> unit
