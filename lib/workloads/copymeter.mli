(** Copies-per-packet meter: a one-way UDP blast under a placement with
    the {!Psd_util.Copies} counters reset first, so each remaining
    [Bytes.blit] in the datapath is attributed to a boundary site and
    normalised per delivered datagram. This is the measurement behind
    the paper's single-copy claim for the SHM-IPF delivery path. *)

type result = {
  config : Psd_cost.Config.t;
  packets : int;  (** datagrams delivered to the application *)
  sent : int;  (** datagrams submitted by the blaster *)
  payload_bytes : int;
  sites : (string * int * int) list;  (** site, copies, bytes *)
  rx_body_copies : int;
      (** receive-datapath payload copies (device, IPC, ring, flatten,
          RPC) across the whole run *)
  tx_body_copies : int;
      (** transmit-datapath payload copies (copyin, retain, frame
          gather, RPC) across the whole run; a zero-copy send path
      performs exactly one per datagram — the frame gather *)
}

val run : ?count:int -> ?size:int -> Psd_cost.Config.t -> result
(** [run config] blasts [count] (default 200) datagrams of [size]
    (default 1024) bytes from one host to another and reports the copy
    counters. Raises if nothing arrives. *)

val pp : Format.formatter -> result -> unit
