(* Control-plane scale workload: many client hosts drive a large number
   of concurrent TCP connections through a gateway router to one
   server, exercising exactly the machinery ROADMAP item 3 calls out —
   per-connection timers (wheel), ephemeral-port allocation, listener
   backlog/accept paths, and per-connection memory.

   Topology — client hosts pack 250 per /24 segment, and the farm grows
   segments as needed, so host count is bounded by addressing (250
   segments x 250 hosts = 62,500), not by one subnet:

     seg 1: client[0..249]     10.0.1.1..250  ---+
     seg 2: client[250..499]   10.0.2.1..250  ---+-- router --- server
     ...          10.0.<k>.0/24, iface .254   ---+    10.1.0.254  10.1.0.1

   Each connection: connect, send one ping, read the echo, then hold
   the connection open until a common close deadline so that all
   [conns] connections are simultaneously established at the sampling
   point; then close and drain (FIN exchanges + 2MSL).

   Connects are staggered [spacing_ns] apart, round-robin across
   client hosts, to keep the SYN arrival rate under the server's
   simulated service rate — otherwise the backlog overflows and the
   sweep measures retransmission storms rather than steady-state
   control-plane behavior.

   The server echoes each connection's ping and then parks an
   event-driven {!Sockets.on_hangup} hook instead of blocking in
   [recv]: at a million connections, a per-connection reader fiber and
   the receive buffer it pins would dominate idle memory.

   Wall-clock is measured around the whole simulation; the GC walks
   used for the memory samples are timed and excluded so events/sec
   reflects simulator throughput, not measurement overhead. *)

open Psd_core

type result = {
  conns : int;
  hosts : int;
  segments : int; (* client /24 segments hung off the gateway *)
  connected : int;
  echoed : int;
  failed : int;
  peak_pcbs : int; (* live PCBs (all stacks) at the sampling point *)
  bytes_per_conn : float; (* full footprint: pcbs, sockets, fibers *)
  bytes_per_pcb : float;
  events : int;
  virtual_ns : int;
  wall_s : float;
  events_per_wall_s : float;
  wall_ms_per_sim_s : float;
  rexmt_segs : int;
  injected : int;
  final_pcbs : int; (* leak check: should be 0 after the drain *)
  pool_fresh : int; (* PCB pool counters summed over all stacks *)
  pool_hits : int;
  pool_puts : int;
  pool_free : int;
}

type error =
  | Bad_conns of int (* conns must be >= 1 *)
  | Bad_per_host of int (* per_host must be >= 1 *)
  | Too_many_hosts of { hosts : int; limit : int }

let pp_error fmt = function
  | Bad_conns n -> Format.fprintf fmt "conns must be >= 1 (got %d)" n
  | Bad_per_host n -> Format.fprintf fmt "per_host must be >= 1 (got %d)" n
  | Too_many_hosts { hosts; limit } ->
    Format.fprintf fmt
      "conns/per_host needs %d client hosts; the address plan caps at %d \
       (250 segments x 250 hosts)"
      hosts limit

let server_port = 4000

(* 250 hosts fit one 10.0.<k>.0/24 segment (.254 is the gateway) *)
let hosts_per_segment = 250
let max_segments = 250
let host_limit = hosts_per_segment * max_segments

(* Validate a conns/per_host combination and derive the farm shape. *)
let plan ~conns ~per_host =
  if conns < 1 then Error (Bad_conns conns)
  else if per_host < 1 then Error (Bad_per_host per_host)
  else
    let hosts = (conns + per_host - 1) / per_host in
    if hosts > host_limit then
      Error (Too_many_hosts { hosts; limit = host_limit })
    else Ok (hosts, (hosts + hosts_per_segment - 1) / hosts_per_segment)

let client_addr h =
  Printf.sprintf "10.0.%d.%d"
    ((h / hosts_per_segment) + 1)
    ((h mod hosts_per_segment) + 1)

let segment_gateway k = Printf.sprintf "10.0.%d.254" (k + 1)
let segment_net k = Printf.sprintf "10.0.%d.0" (k + 1)
let server_addr = "10.1.0.1"
let server_gateway = "10.1.0.254"

let ok what = function Ok v -> v | Error e -> failwith (what ^ ": " ^ e)

(* Echo [ping_bytes] back, then hand the connection to an [on_hangup]
   hook and exit the fiber: the close still happens at exactly the
   virtual time a blocked reader would have observed EOF, but the idle
   hold costs no parked fiber and no inflated receive buffer. *)
let serve_echo eng c ~ping_bytes =
  Psd_sim.Engine.spawn eng ~name:"scale-echo" (fun () ->
      let rec echo got =
        if got >= ping_bytes then
          Sockets.on_hangup c (fun () -> Sockets.close c)
        else
          match Sockets.recv c ~max:65536 with
          | Ok "" | Error _ -> Sockets.close c
          | Ok d -> (
            match Sockets.send c d with
            | Ok _ -> echo (got + String.length d)
            | Error _ -> Sockets.close c)
      in
      echo 0)

let sum_pool_stats all_systems =
  List.fold_left
    (fun (a, b, c, d) sys ->
      match System.kernel_stack sys with
      | Some stack ->
        let f, h, p, fr = Psd_tcp.Tcp.pool_stats (Netstack.tcp stack) in
        (a + f, b + h, c + p, d + fr)
      | None -> (a, b, c, d))
    (0, 0, 0, 0) all_systems

let sum_rexmt all_systems =
  List.fold_left
    (fun acc sys ->
      List.fold_left
        (fun acc st -> acc + st.Psd_tcp.Tcp.rexmt_segs)
        acc
        (System.stacks_tcp_stats sys))
    0 all_systems

let run ?(config = Psd_cost.Config.mach25_kernel) ?(conns = 1000)
    ?(per_host = 500) ?(bps = 100_000_000)
    ?(spacing_ns = Psd_sim.Time.us 2000) ?(hold_ns = Psd_sim.Time.sec 5)
    ?(ping_bytes = 64) ?(backlog = 4096) ?(seed = 11) ?fault () =
  match plan ~conns ~per_host with
  | Error e -> Error e
  | Ok (hosts, nsegs) ->
  let eng = Psd_sim.Engine.create ~seed () in
  let client_segs =
    Array.init nsegs (fun _ -> Psd_link.Segment.create eng ~bps ())
  in
  let seg_srv = Psd_link.Segment.create eng ~bps () in
  let wire_faults =
    match fault with
    | Some policy when not (Psd_link.Fault.is_null policy) ->
      List.map
        (fun seg ->
          let f =
            Psd_link.Fault.create
              ~rng:(Psd_util.Rng.split (Psd_sim.Engine.rng eng))
              policy
          in
          Psd_link.Segment.set_fault seg (Some f);
          f)
        (Array.to_list client_segs @ [ seg_srv ])
    | _ -> []
  in
  let server =
    System.create ~eng ~segment:seg_srv ~config ~addr:server_addr ~name:"srv"
      ()
  in
  let clients =
    Array.init hosts (fun h ->
        System.create ~eng
          ~segment:client_segs.(h / hosts_per_segment)
          ~config ~addr:(client_addr h)
          ~name:(Printf.sprintf "cli%d" h)
          ())
  in
  let _router =
    Router.create ~eng ~name:"gw"
      ~ifaces:
        (List.init nsegs (fun k -> (client_segs.(k), segment_gateway k))
        @ [ (seg_srv, server_gateway) ])
      ()
  in
  Array.iteri
    (fun h sys ->
      System.add_route sys ~net:"10.1.0.0" ~mask:"255.255.255.0"
        ~gateway:(segment_gateway (h / hosts_per_segment)))
    clients;
  for k = 0 to nsegs - 1 do
    System.add_route server ~net:(segment_net k) ~mask:"255.255.255.0"
      ~gateway:server_gateway
  done;
  let all_systems = server :: Array.to_list clients in
  (* Maintained PCB population: each kernel stack bumps the counter as
     connections enter/leave its table, so sampling is O(1) instead of
     a walk over every host's stack. *)
  let live_pcbs = ref 0 in
  List.iter
    (fun sys ->
      match System.kernel_stack sys with
      | Some stack ->
        Psd_tcp.Tcp.set_conn_gauge (Netstack.tcp stack) (fun d ->
            live_pcbs := !live_pcbs + d)
      | None -> ())
    all_systems;
  (* server: accept forever, echo each connection until it hangs up *)
  let srv_app = System.app server ~name:"scale-srv" in
  Psd_sim.Engine.spawn eng ~name:"scale-accept" (fun () ->
      let l = Sockets.stream srv_app in
      ignore (ok "scale bind" (Sockets.bind l ~port:server_port ()));
      ok "scale listen" (Sockets.listen l ~backlog ());
      let rec loop () =
        let c = ok "scale accept" (Sockets.accept l) in
        serve_echo eng c ~ping_bytes;
        loop ()
      in
      loop ());
  (* Baseline after the topology is built but before any per-connection
     state exists: the delta at peak is what [conns] connections cost. *)
  Gc.full_major ();
  let base_words = (Gc.stat ()).Gc.live_words in
  let connected = ref 0 and echoed = ref 0 and failed = ref 0 in
  let ramp_ns = conns * spacing_ns in
  let close_at = ramp_ns + hold_ns in
  let ping = String.init ping_bytes (fun i -> Char.chr (i land 0xff)) in
  for h = 0 to hosts - 1 do
    let app =
      System.app clients.(h) ~name:(Printf.sprintf "scale-cli%d" h)
    in
    (* connection [g] lives on host [g mod hosts]: consecutive connects
       land on distinct hosts *)
    let g = ref h in
    while !g < conns do
      let start_ns = !g * spacing_ns in
      Psd_sim.Engine.spawn eng ~name:"scale-conn" (fun () ->
          Psd_sim.Engine.sleep eng start_ns;
          let s = Sockets.stream app in
          match Sockets.connect s (System.addr server) server_port with
          | Error _ ->
            incr failed;
            Sockets.close s
          | Ok () ->
            incr connected;
            let finish okp =
              if okp then incr echoed else incr failed;
              (* hold until the common deadline, then depart staggered —
                 a synchronized mass-close would measure a FIN
                 retransmission storm, not control-plane costs *)
              let leave_at = close_at + (start_ns / 2) in
              let nowv = Psd_sim.Engine.now eng in
              if leave_at > nowv then
                Psd_sim.Engine.sleep eng (leave_at - nowv);
              Sockets.close s
            in
            (match Sockets.send s ping with
            | Error _ -> finish false
            | Ok _ ->
              let rec drain got =
                if got >= ping_bytes then finish true
                else
                  match Sockets.recv s ~max:(ping_bytes - got) with
                  | Ok "" | Error _ -> finish false
                  | Ok d -> drain (got + String.length d)
              in
              drain 0));
      g := !g + hosts
    done
  done;
  (* Drive the ramp in fixed virtual-time chunks until every connection
     resolved (echo or failure) or the close deadline arrives; the
     chunking depends only on deterministic state, so two runs with one
     seed take identical schedules. *)
  let wall0 = Unix.gettimeofday () in
  let chunk = Psd_sim.Time.ms 200 in
  while
    !echoed + !failed < conns && Psd_sim.Engine.now eng < close_at
  do
    Psd_sim.Engine.run_for eng chunk
  done;
  (* peak sample: all surviving connections are concurrently open *)
  let peak_pcbs = !live_pcbs in
  let gc0 = Unix.gettimeofday () in
  Gc.full_major ();
  let peak_words = (Gc.stat ()).Gc.live_words in
  let gc_cost = Unix.gettimeofday () -. gc0 in
  (* staggered departures + FIN exchanges + TIME_WAIT drain *)
  let drain_until = close_at + (ramp_ns / 2) + Psd_sim.Time.sec 70 in
  let nowv = Psd_sim.Engine.now eng in
  if drain_until > nowv then Psd_sim.Engine.run_for eng (drain_until - nowv);
  let wall_s = Unix.gettimeofday () -. wall0 -. gc_cost in
  let delta_bytes = float_of_int ((peak_words - base_words) * 8) in
  let events = Psd_sim.Engine.events_scheduled eng in
  let virtual_ns = Psd_sim.Engine.now eng in
  let pool_fresh, pool_hits, pool_puts, pool_free =
    sum_pool_stats all_systems
  in
  Ok
    {
      conns;
      hosts;
      segments = nsegs;
      connected = !connected;
      echoed = !echoed;
      failed = !failed;
      peak_pcbs;
      bytes_per_conn = delta_bytes /. float_of_int (max 1 conns);
      bytes_per_pcb = delta_bytes /. float_of_int (max 1 peak_pcbs);
      events;
      virtual_ns;
      wall_s;
      events_per_wall_s = float_of_int events /. wall_s;
      wall_ms_per_sim_s =
        wall_s *. 1000. /. (float_of_int virtual_ns /. 1e9);
      rexmt_segs = sum_rexmt all_systems;
      injected =
        List.fold_left
          (fun acc f ->
            acc + Psd_link.Fault.injected (Psd_link.Fault.stats f))
          0 wire_faults;
      final_pcbs = !live_pcbs;
      pool_fresh;
      pool_hits;
      pool_puts;
      pool_free;
    }

(* Host-sharded variant: the server and the gateway router stay on
   shard 0; client hosts distribute over shards 1..n-1 (all on shard 0
   when [nshards = 1]). With enough segments, whole segments map to
   shards ([h / 250]), giving each domain contiguous farms; with fewer
   segments than shards the old per-host round-robin keeps every shard
   busy — and reproduces the exact partition the differential suite
   has always checked for single-segment runs. All segments are
   full-duplex so per-NIC transmit state shards cleanly, with [prop_ns]
   propagation delay setting the conservative lookahead window.
   Differences from [run], chosen for partition-independence:
   - per-shard counters (connected/echoed/failed, PCB gauges), each
     written only by its own domain and summed between rounds;
   - wire faults are per-receiving-NIC processes on the client and
     server NICs (not the router's), with RNG streams derived from the
     workload seed and the host index — one seed fixes one fault
     schedule for every shard count. *)
let run_par ?(config = Psd_cost.Config.mach25_kernel) ?(conns = 1000)
    ?(per_host = 500) ?(bps = 100_000_000)
    ?(spacing_ns = Psd_sim.Time.us 2000) ?(hold_ns = Psd_sim.Time.sec 5)
    ?(ping_bytes = 64) ?(backlog = 4096) ?(seed = 11) ?fault
    ?(nshards = 2) ?(domains = true) ?(prop_ns = Psd_sim.Time.ms 1) () =
  match plan ~conns ~per_host with
  | Error e -> Error e
  | Ok (hosts, nsegs) ->
  let shard = Psd_sim.Shard.create ~seed ~n:nshards () in
  let shard_of h =
    if nshards = 1 then 0
    else if nsegs >= nshards - 1 then
      1 + (h / hosts_per_segment mod (nshards - 1))
    else 1 + (h mod (nshards - 1))
  in
  let eng0 = Psd_sim.Shard.engine shard 0 in
  let client_segs =
    Array.init nsegs (fun _ ->
        Psd_link.Segment.create_duplex shard ~bps ~prop_ns ())
  in
  let seg_srv = Psd_link.Segment.create_duplex shard ~bps ~prop_ns () in
  let server =
    System.create ~eng:eng0 ~segment:seg_srv ~shard:0 ~config
      ~addr:server_addr ~name:"srv" ()
  in
  let clients =
    Array.init hosts (fun h ->
        System.create
          ~eng:(Psd_sim.Shard.engine shard (shard_of h))
          ~segment:client_segs.(h / hosts_per_segment)
          ~shard:(shard_of h) ~config ~addr:(client_addr h)
          ~name:(Printf.sprintf "cli%d" h)
          ())
  in
  let _router =
    Router.create ~eng:eng0 ~shard:0 ~name:"gw"
      ~ifaces:
        (List.init nsegs (fun k -> (client_segs.(k), segment_gateway k))
        @ [ (seg_srv, server_gateway) ])
      ()
  in
  Array.iteri
    (fun h sys ->
      System.add_route sys ~net:"10.1.0.0" ~mask:"255.255.255.0"
        ~gateway:(segment_gateway (h / hosts_per_segment)))
    clients;
  for k = 0 to nsegs - 1 do
    System.add_route server ~net:(segment_net k) ~mask:"255.255.255.0"
      ~gateway:server_gateway
  done;
  let all_systems = server :: Array.to_list clients in
  let wire_faults =
    match fault with
    | Some policy when not (Psd_link.Fault.is_null policy) ->
      List.mapi
        (fun i sys ->
          let f =
            Psd_link.Fault.create
              ~rng:(Psd_util.Rng.create ~seed:(seed + (7919 * (i + 1))))
              policy
          in
          Psd_mach.Netdev.set_fault (System.netdev sys) (Some f);
          f)
        all_systems
    | _ -> []
  in
  (* Per-shard cells, each written only by the domain that owns the
     shard; the driver loop reads them between rounds, when the domains
     are joined. *)
  let connected = Array.make nshards 0
  and echoed = Array.make nshards 0
  and failed = Array.make nshards 0
  and live_pcbs = Array.make nshards 0 in
  let cell a s = a.(s) <- a.(s) + 1 in
  let sum a = Array.fold_left ( + ) 0 a in
  List.iteri
    (fun i sys ->
      let s = if i = 0 then 0 else shard_of (i - 1) in
      match System.kernel_stack sys with
      | Some stack ->
        Psd_tcp.Tcp.set_conn_gauge (Netstack.tcp stack) (fun d ->
            live_pcbs.(s) <- live_pcbs.(s) + d)
      | None -> ())
    all_systems;
  let srv_app = System.app server ~name:"scale-srv" in
  Psd_sim.Engine.spawn eng0 ~name:"scale-accept" (fun () ->
      let l = Sockets.stream srv_app in
      ignore (ok "scale bind" (Sockets.bind l ~port:server_port ()));
      ok "scale listen" (Sockets.listen l ~backlog ());
      let rec loop () =
        let c = ok "scale accept" (Sockets.accept l) in
        serve_echo eng0 c ~ping_bytes;
        loop ()
      in
      loop ());
  Gc.full_major ();
  let base_words = (Gc.stat ()).Gc.live_words in
  let ramp_ns = conns * spacing_ns in
  let close_at = ramp_ns + hold_ns in
  let ping = String.init ping_bytes (fun i -> Char.chr (i land 0xff)) in
  for h = 0 to hosts - 1 do
    let s = shard_of h in
    let ceng = Psd_sim.Shard.engine shard s in
    let app =
      System.app clients.(h) ~name:(Printf.sprintf "scale-cli%d" h)
    in
    let g = ref h in
    while !g < conns do
      let start_ns = !g * spacing_ns in
      Psd_sim.Engine.spawn ceng ~name:"scale-conn" (fun () ->
          Psd_sim.Engine.sleep ceng start_ns;
          let sck = Sockets.stream app in
          match Sockets.connect sck (System.addr server) server_port with
          | Error _ ->
            cell failed s;
            Sockets.close sck
          | Ok () ->
            cell connected s;
            let finish okp =
              cell (if okp then echoed else failed) s;
              let leave_at = close_at + (start_ns / 2) in
              let nowv = Psd_sim.Engine.now ceng in
              if leave_at > nowv then
                Psd_sim.Engine.sleep ceng (leave_at - nowv);
              Sockets.close sck
            in
            (match Sockets.send sck ping with
            | Error _ -> finish false
            | Ok _ ->
              let rec drain got =
                if got >= ping_bytes then finish true
                else
                  match Sockets.recv sck ~max:(ping_bytes - got) with
                  | Ok "" | Error _ -> finish false
                  | Ok d -> drain (got + String.length d)
              in
              drain 0));
      g := !g + hosts
    done
  done;
  let wall0 = Unix.gettimeofday () in
  let chunk = Psd_sim.Time.ms 200 in
  while
    sum echoed + sum failed < conns && Psd_sim.Shard.now shard < close_at
  do
    Psd_sim.Shard.run_for ~domains shard chunk
  done;
  let peak_pcbs = sum live_pcbs in
  let gc0 = Unix.gettimeofday () in
  Gc.full_major ();
  let peak_words = (Gc.stat ()).Gc.live_words in
  let gc_cost = Unix.gettimeofday () -. gc0 in
  let drain_until = close_at + (ramp_ns / 2) + Psd_sim.Time.sec 70 in
  let nowv = Psd_sim.Shard.now shard in
  if drain_until > nowv then
    Psd_sim.Shard.run_for ~domains shard (drain_until - nowv);
  let wall_s = Unix.gettimeofday () -. wall0 -. gc_cost in
  let delta_bytes = float_of_int ((peak_words - base_words) * 8) in
  let events = ref 0 in
  for i = 0 to nshards - 1 do
    events :=
      !events
      + Psd_sim.Engine.events_scheduled (Psd_sim.Shard.engine shard i)
  done;
  let events = !events in
  let virtual_ns = Psd_sim.Shard.now shard in
  let pool_fresh, pool_hits, pool_puts, pool_free =
    sum_pool_stats all_systems
  in
  Ok
    {
      conns;
      hosts;
      segments = nsegs;
      connected = sum connected;
      echoed = sum echoed;
      failed = sum failed;
      peak_pcbs;
      bytes_per_conn = delta_bytes /. float_of_int (max 1 conns);
      bytes_per_pcb = delta_bytes /. float_of_int (max 1 peak_pcbs);
      events;
      virtual_ns;
      wall_s;
      events_per_wall_s = float_of_int events /. wall_s;
      wall_ms_per_sim_s =
        wall_s *. 1000. /. (float_of_int virtual_ns /. 1e9);
      rexmt_segs = sum_rexmt all_systems;
      injected =
        List.fold_left
          (fun acc f ->
            acc + Psd_link.Fault.injected (Psd_link.Fault.stats f))
          0 wire_faults;
      final_pcbs = sum live_pcbs;
      pool_fresh;
      pool_hits;
      pool_puts;
      pool_free;
    }

let pp fmt r =
  Format.fprintf fmt
    "%7d conns  %4d hosts/%-3d seg | %7d echoed %5d failed | %8.0f B/conn \
     %8.0f B/pcb | %9d events  %8.0f ev/s  %6.1f wall-ms/sim-s | %d rexmt \
     | pool %d/%d/%d/%d"
    r.conns r.hosts r.segments r.echoed r.failed r.bytes_per_conn
    r.bytes_per_pcb r.events r.events_per_wall_s r.wall_ms_per_sim_s
    r.rexmt_segs r.pool_fresh r.pool_hits r.pool_puts r.pool_free
