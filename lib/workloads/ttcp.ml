open Psd_core

type result = {
  config : Psd_cost.Config.t;
  bytes : int;
  elapsed_ns : int;
  kb_per_sec : float;
  rcv_buf : int;
  segs_out : int;
  rexmt : int;
  wire_utilization : float;
}

let run ?plat ?(machine = Paper.Dec) ?(mb = 16) ?rcv_buf ?delack_ns ?(seed = 7) config =
  let plat =
    Option.value plat
      ~default:
        (match machine with
        | Paper.Dec -> Psd_cost.Platform.decstation
        | Paper.Gateway -> Psd_cost.Platform.gateway486)
  in
  let rcv_buf =
    Option.value rcv_buf ~default:(Paper.best_rcv_buf machine config)
  in
  let eng = Psd_sim.Engine.create ~seed () in
  let segment = Psd_link.Segment.create eng () in
  let sys_a =
    System.create ~eng ~segment ~config ~plat ~rcv_buf ?delack_ns
      ~addr:"10.0.0.1" ~name:"sender" ()
  in
  let sys_b =
    System.create ~eng ~segment ~config ~plat ~rcv_buf ?delack_ns
      ~addr:"10.0.0.2" ~name:"receiver" ()
  in
  let total = mb * 1024 * 1024 in
  let received = ref 0 in
  let t_start = ref 0 and t_end = ref 0 in
  let wire_busy_start = ref 0 in
  (* receiver: accept one connection, drain it *)
  let rapp = System.app sys_b ~name:"ttcp-r" in
  Psd_sim.Engine.spawn eng ~name:"ttcp-r" (fun () ->
      let s = Sockets.stream rapp in
      (match Sockets.bind s ~port:5001 () with
      | Ok _ -> ()
      | Error e -> failwith e);
      (match Sockets.listen s () with Ok () -> () | Error e -> failwith e);
      match Sockets.accept s with
      | Error e -> failwith e
      | Ok c ->
        let rec drain () =
          match Sockets.recv c ~max:65536 with
          | Ok "" -> t_end := Psd_sim.Engine.now eng
          | Ok d ->
            received := !received + String.length d;
            drain ()
          | Error e -> failwith ("ttcp receiver: " ^ e)
        in
        drain ());
  (* sender: connect and pump [total] bytes in 8KB writes (like ttcp) *)
  let sapp = System.app sys_a ~name:"ttcp-s" in
  Psd_sim.Engine.spawn eng ~name:"ttcp-s" (fun () ->
      let s = Sockets.stream sapp in
      (match Sockets.connect s (System.addr sys_b) 5001 with
      | Ok () -> ()
      | Error e -> failwith ("ttcp connect: " ^ e));
      t_start := Psd_sim.Engine.now eng;
      wire_busy_start := Psd_link.Segment.busy_ns segment;
      let block = String.make 8192 'T' in
      let rec pump sent =
        if sent < total then begin
          let n = min (String.length block) (total - sent) in
          let chunk = if n = String.length block then block else String.sub block 0 n in
          match Sockets.send s chunk with
          | Ok _ -> pump (sent + n)
          | Error e -> failwith ("ttcp send: " ^ e)
        end
      in
      pump 0;
      Sockets.close s);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec (60 * (mb + 4)));
  if !received < total then
    failwith
      (Printf.sprintf "ttcp[%s]: only %d of %d bytes arrived"
         config.Psd_cost.Config.label !received total);
  let elapsed = !t_end - !t_start in
  let stats = System.stacks_tcp_stats sys_a in
  let segs_out =
    List.fold_left (fun acc st -> acc + st.Psd_tcp.Tcp.segs_out) 0 stats
  in
  let rexmt =
    List.fold_left (fun acc st -> acc + st.Psd_tcp.Tcp.rexmt_segs) 0 stats
  in
  {
    config;
    bytes = total;
    elapsed_ns = elapsed;
    kb_per_sec =
      float_of_int total /. 1024. /. (float_of_int elapsed /. 1e9);
    rcv_buf;
    segs_out;
    rexmt;
    wire_utilization =
      float_of_int (Psd_link.Segment.busy_ns segment - !wire_busy_start)
      /. float_of_int elapsed;
  }

let pp fmt r =
  Format.fprintf fmt "%-36s %8.0f KB/s  (buf %3dKB, %5d segs, %d rexmt, wire %.0f%%)"
    r.config.Psd_cost.Config.label r.kb_per_sec (r.rcv_buf / 1024) r.segs_out
    r.rexmt
    (100. *. r.wire_utilization)
