open Psd_core

type recovery = {
  rexmt : int;
  fast_rexmt : int;
  dup_acks_in : int;
  ooo_segs : int;
  drop_checksum : int;
  drop_malformed : int;
  reass_timed_out : int;
  injected : int;
  predict_hit : int;
  predict_miss : int;
}

let pp_recovery fmt r =
  Psd_util.Stats.pp_counters fmt
    [
      ("injected", r.injected);
      ("rexmt", r.rexmt);
      ("fast_rexmt", r.fast_rexmt);
      ("dup_acks_in", r.dup_acks_in);
      ("ooo_segs", r.ooo_segs);
      ("drop_checksum", r.drop_checksum);
      ("drop_malformed", r.drop_malformed);
      ("reass_timed_out", r.reass_timed_out);
    ]

type result = {
  config : Psd_cost.Config.t;
  bytes : int;
  elapsed_ns : int;
  kb_per_sec : float;
  rcv_buf : int;
  segs_out : int;
  rexmt : int;
  wire_utilization : float;
  recovery : recovery;
}

(* The stream's invariant is byte-at-offset = offset mod 256, so any
   received chunk must equal a window of this repeating table starting at
   (offset mod 256). One memcmp per chunk replaces the old per-byte
   closure scan that dominated receiver wall-clock; the byte-level walk
   below runs only on mismatch, to name the first corrupt byte. *)
let pattern =
  String.init (65536 + 256) (fun i -> Char.chr (i land 0xff))

(* NEWAPI verification reads the loaned view in place, segment range by
   segment range — flattening it would reintroduce exactly the copy-out
   the loan exists to avoid (and would show up in the loan path's
   allocation guard). *)
let verify_loan ~label view ~stream_off =
  ignore
    (Psd_mbuf.Mbuf.fold_ranges view ~init:stream_off
       ~f:(fun off buf ~off:b ~len ->
         for i = 0 to len - 1 do
           let c = Char.code (Bytes.get buf (b + i)) in
           if c <> (off + i) land 0xff then
             failwith
               (Printf.sprintf
                  "ttcp[%s]: payload corrupt at byte %d (got %#x)" label
                  (off + i) c)
         done;
         off + len))

let run ?plat ?(machine = Paper.Dec) ?(mb = 16) ?rcv_buf ?delack_ns ?(seed = 7)
    ?fault ?(predict = true) ?probe config =
  let plat =
    Option.value plat
      ~default:
        (match machine with
        | Paper.Dec -> Psd_cost.Platform.decstation
        | Paper.Gateway -> Psd_cost.Platform.gateway486)
  in
  let rcv_buf =
    Option.value rcv_buf ~default:(Paper.best_rcv_buf machine config)
  in
  let eng = Psd_sim.Engine.create ~seed () in
  let segment = Psd_link.Segment.create eng () in
  (* Wire-level fault injection covers both directions (data and acks).
     The fault RNG is split off the engine's only when a live policy is
     installed, so fault-free runs replay the seed bit-identically. *)
  let wire_fault =
    match fault with
    | Some policy when not (Psd_link.Fault.is_null policy) ->
      let f =
        Psd_link.Fault.create
          ~rng:(Psd_util.Rng.split (Psd_sim.Engine.rng eng))
          policy
      in
      Psd_link.Segment.set_fault segment (Some f);
      Some f
    | _ -> None
  in
  let sys_a =
    System.create ~eng ~segment ~config ~plat ~rcv_buf ?delack_ns
      ~addr:"10.0.0.1" ~name:"sender" ()
  in
  let sys_b =
    System.create ~eng ~segment ~config ~plat ~rcv_buf ?delack_ns
      ~addr:"10.0.0.2" ~name:"receiver" ()
  in
  if not predict then begin
    System.set_tcp_predict sys_a false;
    System.set_tcp_predict sys_b false
  end;
  let total = mb * 1024 * 1024 in
  let newapi = config.Psd_cost.Config.api = Psd_cost.Config.Newapi in
  let received = ref 0 in
  let t_start = ref 0 and t_end = ref 0 in
  let wire_busy_start = ref 0 in
  (* receiver: accept one connection, drain it *)
  let rapp = System.app sys_b ~name:"ttcp-r" in
  Psd_sim.Engine.spawn eng ~name:"ttcp-r" (fun () ->
      let s = Sockets.stream rapp in
      (match Sockets.bind s ~port:5001 () with
      | Ok _ -> ()
      | Error e -> failwith e);
      (match Sockets.listen s () with Ok () -> () | Error e -> failwith e);
      match Sockets.accept s with
      | Error e -> failwith e
      | Ok c ->
        let rec drain () =
          match Sockets.recv c ~max:65536 with
          | Ok "" -> t_end := Psd_sim.Engine.now eng
          | Ok d ->
            (* End-to-end integrity: every byte must equal its stream
               offset mod 256, so any corruption that slipped past the
               checksums (or any reassembly bug) is caught here. *)
            let n = String.length d in
            if
              n > 0
              && not
                   (String.equal d
                      (String.sub pattern (!received land 0xff) n))
            then
              String.iteri
                (fun i c ->
                  let off = !received + i in
                  if Char.code c <> off land 0xff then
                    failwith
                      (Printf.sprintf
                         "ttcp[%s]: payload corrupt at byte %d (got %#x)"
                         config.Psd_cost.Config.label off (Char.code c)))
                d;
            received := !received + n;
            drain ()
          | Error e -> failwith ("ttcp receiver: " ^ e)
        in
        (* NEWAPI drain: borrow each chunk where the stack deposited it,
           verify through the view, give it straight back. The loan is
           returned in the same simulation instant it was granted, so
           window reopening — and therefore every transcript event —
           matches the classic copy-out drain exactly. *)
        let rec drain_loan () =
          match Sockets.recv_loan c ~max:65536 with
          | Error e -> failwith ("ttcp receiver: " ^ e)
          | Ok l ->
            let n = Sockets.loan_length l in
            if n = 0 then begin
              Sockets.return_loan c l;
              t_end := Psd_sim.Engine.now eng
            end
            else begin
              verify_loan ~label:config.Psd_cost.Config.label
                (Sockets.loan_view l) ~stream_off:!received;
              received := !received + n;
              Sockets.return_loan c l;
              drain_loan ()
            end
        in
        if newapi then drain_loan () else drain ());
  (* sender: connect and pump [total] bytes in 8KB writes (like ttcp) *)
  let sapp = System.app sys_a ~name:"ttcp-s" in
  Psd_sim.Engine.spawn eng ~name:"ttcp-s" (fun () ->
      let s = Sockets.stream sapp in
      (match Sockets.connect s (System.addr sys_b) 5001 with
      | Ok () -> ()
      | Error e -> failwith ("ttcp connect: " ^ e));
      t_start := Psd_sim.Engine.now eng;
      wire_busy_start := Psd_link.Segment.busy_ns segment;
      (* 8192 is a multiple of 256, so a block whose byte [i] is
         [i mod 256] makes every byte of the stream equal its global
         offset mod 256 — cheap for the receiver to verify. *)
      let block = String.init 8192 (fun i -> Char.chr (i land 0xff)) in
      let rec pump sent =
        if sent < total then begin
          let n = min (String.length block) (total - sent) in
          let chunk = if n = String.length block then block else String.sub block 0 n in
          match Sockets.send s chunk with
          | Ok _ -> pump (sent + n)
          | Error e -> failwith ("ttcp send: " ^ e)
        end
      in
      (* NEWAPI pump: a ring of caller-owned blocks lent to the stack.
         nring * 8192 = snd_hiwat + 8192, so when send #(k-1) returns
         the send queue holds at most snd_hiwat bytes and everything
         through send #(k-nring) has been acknowledged — the slot about
         to be reused is provably complete. Assert rather than wait:
         the pump's virtual-time behaviour stays exactly [pump]'s. *)
      let pump_owned () =
        let nring = 4 in
        let ring =
          Array.init nring (fun _ ->
              Bytes.init 8192 (fun i -> Char.chr (i land 0xff)))
        in
        let completed = Array.make nring true in
        let rec go k sent =
          if sent < total then begin
            let n = min 8192 (total - sent) in
            let slot = k mod nring in
            if not completed.(slot) then
              failwith
                "ttcp: owned buffer reused before its completion fired";
            completed.(slot) <- false;
            let buf =
              if n = 8192 then ring.(slot) else Bytes.sub ring.(slot) 0 n
            in
            match
              Sockets.send_owned s buf ~completion:(fun () ->
                  completed.(slot) <- true)
            with
            | Ok _ -> go (k + 1) (sent + n)
            | Error e -> failwith ("ttcp send: " ^ e)
          end
        in
        go 0 0
      in
      if newapi then pump_owned () else pump 0;
      Sockets.close s);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec (60 * (mb + 4)));
  if !received < total then
    failwith
      (Printf.sprintf "ttcp[%s]: only %d of %d bytes arrived"
         config.Psd_cost.Config.label !received total);
  (match probe with
  | Some f -> f ~sender:sys_a ~receiver:sys_b
  | None -> ());
  let elapsed = !t_end - !t_start in
  let stats = System.stacks_tcp_stats sys_a in
  let segs_out =
    List.fold_left (fun acc st -> acc + st.Psd_tcp.Tcp.segs_out) 0 stats
  in
  let rexmt =
    List.fold_left (fun acc st -> acc + st.Psd_tcp.Tcp.rexmt_segs) 0 stats
  in
  let recovery =
    let both = System.stacks_tcp_stats sys_a @ System.stacks_tcp_stats sys_b in
    let sum f = List.fold_left (fun acc st -> acc + f st) 0 both in
    {
      rexmt = sum (fun st -> st.Psd_tcp.Tcp.rexmt_segs);
      fast_rexmt = sum (fun st -> st.Psd_tcp.Tcp.fast_rexmt);
      dup_acks_in = sum (fun st -> st.Psd_tcp.Tcp.dup_acks_in);
      ooo_segs = sum (fun st -> st.Psd_tcp.Tcp.ooo_segs);
      drop_checksum = sum (fun st -> st.Psd_tcp.Tcp.drop_checksum);
      drop_malformed = sum (fun st -> st.Psd_tcp.Tcp.drop_malformed);
      reass_timed_out =
        System.reass_timed_out sys_a + System.reass_timed_out sys_b;
      injected =
        (match wire_fault with
        | None -> 0
        | Some f -> Psd_link.Fault.injected (Psd_link.Fault.stats f));
      predict_hit = sum (fun st -> st.Psd_tcp.Tcp.predict_hit);
      predict_miss = sum (fun st -> st.Psd_tcp.Tcp.predict_miss);
    }
  in
  {
    config;
    bytes = total;
    elapsed_ns = elapsed;
    kb_per_sec =
      float_of_int total /. 1024. /. (float_of_int elapsed /. 1e9);
    rcv_buf;
    segs_out;
    rexmt;
    wire_utilization =
      float_of_int (Psd_link.Segment.busy_ns segment - !wire_busy_start)
      /. float_of_int elapsed;
    recovery;
  }

(* Domain-parallel ttcp: the sender and receiver hosts live on two
   shards of a conservative {!Psd_sim.Shard} engine, joined by a
   full-duplex wire whose minimum frame latency is the lookahead.
   [~nshards:1] builds the identical topology on a one-shard engine —
   the single-domain baseline whose virtual-time transcript the
   two-shard runs (sequential or domain-parallel) must reproduce
   bit-for-bit; the differential tests compare exactly these.

   Differences from [run], deliberate and partition-independent:
   - the wire is duplex (each NIC serialises its own transmissions)
     rather than a shared half-duplex medium, since a shared busy state
     cannot be split across domains;
   - wire faults are per-receiving-NIC processes with RNG streams
     derived from the workload seed and the receiving host's index
     (never from an engine RNG, whose draw order would depend on the
     partition), so one seed fixes one fault schedule for every shard
     count;
   - wire utilization reports the data direction only (the sender
     NIC's serialisation time), which the owning shard can read without
     racing the receiver's domain. *)
let run_par ?plat ?(machine = Paper.Dec) ?(mb = 16) ?rcv_buf ?delack_ns
    ?(seed = 7) ?fault ?(predict = true) ?(nshards = 2) ?(domains = true)
    ?(prop_ns = Psd_sim.Time.ms 1) config =
  let plat =
    Option.value plat
      ~default:
        (match machine with
        | Paper.Dec -> Psd_cost.Platform.decstation
        | Paper.Gateway -> Psd_cost.Platform.gateway486)
  in
  let rcv_buf =
    Option.value rcv_buf ~default:(Paper.best_rcv_buf machine config)
  in
  let shard = Psd_sim.Shard.create ~seed ~n:nshards () in
  let sid_b = min 1 (nshards - 1) in
  let eng_a = Psd_sim.Shard.engine shard 0 in
  let eng_b = Psd_sim.Shard.engine shard sid_b in
  let segment = Psd_link.Segment.create_duplex shard ~prop_ns () in
  let sys_a =
    System.create ~eng:eng_a ~segment ~shard:0 ~config ~plat ~rcv_buf
      ?delack_ns ~addr:"10.0.0.1" ~name:"sender" ()
  in
  let sys_b =
    System.create ~eng:eng_b ~segment ~shard:sid_b ~config ~plat ~rcv_buf
      ?delack_ns ~addr:"10.0.0.2" ~name:"receiver" ()
  in
  let wire_faults =
    match fault with
    | Some policy when not (Psd_link.Fault.is_null policy) ->
      List.mapi
        (fun i sys ->
          let f =
            Psd_link.Fault.create
              ~rng:(Psd_util.Rng.create ~seed:(seed + (7919 * (i + 1))))
              policy
          in
          Psd_mach.Netdev.set_fault (System.netdev sys) (Some f);
          f)
        [ sys_a; sys_b ]
    | _ -> []
  in
  if not predict then begin
    System.set_tcp_predict sys_a false;
    System.set_tcp_predict sys_b false
  end;
  let total = mb * 1024 * 1024 in
  let received = ref 0 in
  let t_start = ref 0 and t_end = ref 0 in
  let wire_busy_start = ref 0 in
  let rapp = System.app sys_b ~name:"ttcp-r" in
  Psd_sim.Engine.spawn eng_b ~name:"ttcp-r" (fun () ->
      let s = Sockets.stream rapp in
      (match Sockets.bind s ~port:5001 () with
      | Ok _ -> ()
      | Error e -> failwith e);
      (match Sockets.listen s () with Ok () -> () | Error e -> failwith e);
      match Sockets.accept s with
      | Error e -> failwith e
      | Ok c ->
        let rec drain () =
          match Sockets.recv c ~max:65536 with
          | Ok "" -> t_end := Psd_sim.Engine.now eng_b
          | Ok d ->
            let n = String.length d in
            if
              n > 0
              && not
                   (String.equal d
                      (String.sub pattern (!received land 0xff) n))
            then
              String.iteri
                (fun i c ->
                  let off = !received + i in
                  if Char.code c <> off land 0xff then
                    failwith
                      (Printf.sprintf
                         "ttcp-par[%s]: payload corrupt at byte %d (got %#x)"
                         config.Psd_cost.Config.label off (Char.code c)))
                d;
            received := !received + n;
            drain ()
          | Error e -> failwith ("ttcp-par receiver: " ^ e)
        in
        drain ());
  let sapp = System.app sys_a ~name:"ttcp-s" in
  Psd_sim.Engine.spawn eng_a ~name:"ttcp-s" (fun () ->
      let s = Sockets.stream sapp in
      (match Sockets.connect s (System.addr sys_b) 5001 with
      | Ok () -> ()
      | Error e -> failwith ("ttcp-par connect: " ^ e));
      t_start := Psd_sim.Engine.now eng_a;
      wire_busy_start := Psd_mach.Netdev.wire_busy_ns (System.netdev sys_a);
      let block = String.init 8192 (fun i -> Char.chr (i land 0xff)) in
      let rec pump sent =
        if sent < total then begin
          let n = min (String.length block) (total - sent) in
          let chunk =
            if n = String.length block then block else String.sub block 0 n
          in
          match Sockets.send s chunk with
          | Ok _ -> pump (sent + n)
          | Error e -> failwith ("ttcp-par send: " ^ e)
        end
      in
      pump 0;
      Sockets.close s);
  Psd_sim.Shard.run_for ~domains shard (Psd_sim.Time.sec (60 * (mb + 4)));
  if !received < total then
    failwith
      (Printf.sprintf "ttcp-par[%s]: only %d of %d bytes arrived"
         config.Psd_cost.Config.label !received total);
  let elapsed = !t_end - !t_start in
  let stats = System.stacks_tcp_stats sys_a in
  let segs_out =
    List.fold_left (fun acc st -> acc + st.Psd_tcp.Tcp.segs_out) 0 stats
  in
  let rexmt =
    List.fold_left (fun acc st -> acc + st.Psd_tcp.Tcp.rexmt_segs) 0 stats
  in
  let recovery =
    let both = System.stacks_tcp_stats sys_a @ System.stacks_tcp_stats sys_b in
    let sum f = List.fold_left (fun acc st -> acc + f st) 0 both in
    {
      rexmt = sum (fun st -> st.Psd_tcp.Tcp.rexmt_segs);
      fast_rexmt = sum (fun st -> st.Psd_tcp.Tcp.fast_rexmt);
      dup_acks_in = sum (fun st -> st.Psd_tcp.Tcp.dup_acks_in);
      ooo_segs = sum (fun st -> st.Psd_tcp.Tcp.ooo_segs);
      drop_checksum = sum (fun st -> st.Psd_tcp.Tcp.drop_checksum);
      drop_malformed = sum (fun st -> st.Psd_tcp.Tcp.drop_malformed);
      reass_timed_out =
        System.reass_timed_out sys_a + System.reass_timed_out sys_b;
      injected =
        List.fold_left
          (fun acc f -> acc + Psd_link.Fault.injected (Psd_link.Fault.stats f))
          0 wire_faults;
      predict_hit = sum (fun st -> st.Psd_tcp.Tcp.predict_hit);
      predict_miss = sum (fun st -> st.Psd_tcp.Tcp.predict_miss);
    }
  in
  {
    config;
    bytes = total;
    elapsed_ns = elapsed;
    kb_per_sec =
      float_of_int total /. 1024. /. (float_of_int elapsed /. 1e9);
    rcv_buf;
    segs_out;
    rexmt;
    wire_utilization =
      float_of_int
        (Psd_mach.Netdev.wire_busy_ns (System.netdev sys_a)
        - !wire_busy_start)
      /. float_of_int elapsed;
    recovery;
  }

let pp fmt r =
  Format.fprintf fmt "%-36s %8.0f KB/s  (buf %3dKB, %5d segs, %d rexmt, wire %.0f%%)"
    r.config.Psd_cost.Config.label r.kb_per_sec (r.rcv_buf / 1024) r.segs_out
    r.rexmt
    (100. *. r.wire_utilization)
