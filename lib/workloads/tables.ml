module Cfg = Psd_cost.Config

type cell = { ours : float; paper : float option }

type latency_row = {
  label : string;
  tcp_ms : (int * cell option) list;
  udp_ms : (int * cell option) list;
  throughput : cell option;
  rcv_buf : int;
}

let latency_cells ~machine ~rounds ~proto ~paper_of config =
  List.map
    (fun size ->
      let r = Protolat.run ~machine ~rounds ~proto ~size config in
      if r.Protolat.na then (size, None)
      else
        (size, Some { ours = r.Protolat.rtt_ms; paper = paper_of size }))
    (match proto with
    | Protolat.Tcp -> Paper.tcp_sizes
    | Protolat.Udp -> Paper.udp_sizes)

let row ~machine ~mb ~rounds ~paper_tp ~paper_tcp ~paper_udp config =
  let tp = Ttcp.run ~machine ~mb config in
  {
    label = config.Cfg.label;
    throughput =
      Some { ours = tp.Ttcp.kb_per_sec; paper = paper_tp config.Cfg.label };
    rcv_buf = tp.Ttcp.rcv_buf;
    tcp_ms =
      latency_cells ~machine ~rounds ~proto:Protolat.Tcp
        ~paper_of:(paper_tcp config.Cfg.label) config;
    udp_ms =
      latency_cells ~machine ~rounds ~proto:Protolat.Udp
        ~paper_of:(paper_udp config.Cfg.label) config;
  }

let pp_cell fmt = function
  | None -> Format.fprintf fmt "   NA      "
  | Some { ours; paper } -> (
    match paper with
    | Some p -> Format.fprintf fmt "%5.2f/%-5.2f" ours p
    | None -> Format.fprintf fmt "%5.2f/  -  " ours)

let print_rows ~header rows =
  Format.printf "@.=== %s ===@." header;
  Format.printf "%-38s %14s %5s |%s|%s@." "(ours/paper)" "TCP KB/s" "buf"
    " TCP rtt ms: 1 / 100 / 512 / 1024 / max       "
    " UDP rtt ms: 1 / 100 / 512 / 1024 / max";
  List.iter
    (fun r ->
      Format.printf "%-38s" r.label;
      (match r.throughput with
      | Some { ours; paper = Some p } -> Format.printf " %6.0f/%-6.0f" ours p
      | Some { ours; paper = None } -> Format.printf " %6.0f/  -   " ours
      | None -> Format.printf "      NA      ");
      Format.printf " %3dK |" (r.rcv_buf / 1024);
      List.iter (fun (_, c) -> Format.printf "%a " pp_cell c) r.tcp_ms;
      Format.printf "|";
      List.iter (fun (_, c) -> Format.printf "%a " pp_cell c) r.udp_ms;
      Format.printf "@.")
    rows

let table2 ?(machine = Paper.Dec) ?(mb = 16) ?(rounds = 200)
    ?(with_offload = false) () =
  let configs =
    match machine with
    | Paper.Dec -> Cfg.decstation_rows
    | Paper.Gateway -> Cfg.gateway_rows
  in
  let configs = if with_offload then configs @ [ Cfg.offload ] else configs in
  List.map
    (fun c ->
      row ~machine ~mb ~rounds
        ~paper_tp:(Paper.table2_throughput machine)
        ~paper_tcp:(fun label size -> Paper.table2_tcp_latency machine label size)
        ~paper_udp:(fun label size -> Paper.table2_udp_latency machine label size)
        c)
    configs

let table3 ?(mb = 16) ?(rounds = 200) ?(with_offload = false) () =
  let configs =
    if with_offload then Cfg.table3_rows @ [ Cfg.offload ] else Cfg.table3_rows
  in
  List.map
    (fun c ->
      row ~machine:Paper.Dec ~mb ~rounds
        ~paper_tp:Paper.table3_throughput
        ~paper_tcp:(fun label size -> Paper.table3_tcp_latency label size)
        ~paper_udp:(fun label size -> Paper.table3_udp_latency label size)
        c)
    configs

(* ------------------------------------------------------------------ *)
(* Table 4                                                              *)

type breakdown_row = {
  phase : string;
  us : (string * int * int option) list;
}

let t4_configs =
  [
    ("Library", Cfg.library_shm_ipf);
    ("Kernel", Cfg.mach25_kernel);
    ("Server", Cfg.ux_server);
  ]

(* [Desc_crossing] exists only under the Offload placement; it is kept
   out of the classic breakdown so the seed Table 4 output is unchanged
   and appended (with the extra column) when the offload row runs. *)
let breakdown_phases =
  List.filter
    (fun p ->
      p <> Psd_cost.Phase.Wire
      && p <> Psd_cost.Phase.Control
      && p <> Psd_cost.Phase.Desc_crossing)
    Psd_cost.Phase.all

let table4_one ?(with_offload = false) ~rounds ~proto ~size () =
  let configs =
    if with_offload then t4_configs @ [ ("Offload", Cfg.offload) ]
    else t4_configs
  in
  let phases =
    if with_offload then breakdown_phases @ [ Psd_cost.Phase.Desc_crossing ]
    else breakdown_phases
  in
  let per_config =
    List.map
      (fun (impl, config) ->
        let b = Psd_cost.Breakdown.create () in
        let r = Protolat.run ~rounds ~breakdown:b ~proto ~size config in
        ignore r;
        (impl, b))
      configs
  in
  let proto_name = match proto with Protolat.Tcp -> "tcp" | Protolat.Udp -> "udp" in
  let rows =
    List.map
      (fun phase ->
        let label = Psd_cost.Phase.label phase in
        {
          phase = label;
          us =
            List.map
              (fun (impl, b) ->
                let ns = Psd_cost.Breakdown.total b phase in
                ( impl,
                  ns / rounds / 1000,
                  Paper.table4_cell impl ~proto:proto_name ~size label ))
              per_config;
        })
      phases
  in
  (* network transit: analytic, same for every implementation *)
  let plat = Psd_cost.Platform.decstation in
  let headers =
    match proto with Protolat.Tcp -> 40 | Protolat.Udp -> 28
  in
  let frame = max 60 (14 + headers + size) in
  let wire_us = Psd_cost.Platform.frame_time plat frame / 1000 in
  rows
  @ [
      {
        phase = Psd_cost.Phase.label Psd_cost.Phase.Wire;
        us =
          List.map
            (fun (impl, _) ->
              ( impl,
                wire_us,
                Paper.table4_cell impl ~proto:proto_name ~size
                  "network transit" ))
            per_config;
      };
    ]

let print_breakdown ~title rows =
  Format.printf "@.--- Table 4: %s (us per round trip; ours/paper) ---@." title;
  Format.printf "%-24s" "layer";
  (match rows with
  | r :: _ -> List.iter (fun (impl, _, _) -> Format.printf " %14s" impl) r.us
  | [] -> ());
  Format.printf "@.";
  let totals = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Format.printf "%-24s" r.phase;
      List.iter
        (fun (impl, us, paper) ->
          let t, tp, any =
            Option.value (Hashtbl.find_opt totals impl) ~default:(0, 0, false)
          in
          Hashtbl.replace totals impl
            ( t + us,
              tp + Option.value paper ~default:0,
              any || paper <> None );
          match paper with
          | Some p -> Format.printf " %6d/%-6d" us p
          | None -> Format.printf " %6d/ -    " us)
        r.us;
      Format.printf "@.")
    rows;
  Format.printf "%-24s" "TOTAL";
  (match rows with
  | r :: _ ->
    List.iter
      (fun (impl, _, _) ->
        let t, tp, any = Hashtbl.find totals impl in
        (* a column with no paper cells at all (the Offload placement)
           totals to NA on the paper side, not 0 *)
        if any then Format.printf " %6d/%-6d" t tp
        else Format.printf " %6d/ -    " t)
      r.us
  | [] -> ());
  Format.printf "@."

let table4 ?(rounds = 200) ?(with_offload = false) () =
  let cases =
    [
      ("TCP 1 byte", Protolat.Tcp, 1);
      ("TCP 1460 bytes", Protolat.Tcp, 1460);
      ("UDP 1 byte", Protolat.Udp, 1);
      ("UDP 1472 bytes", Protolat.Udp, 1472);
    ]
  in
  List.map
    (fun (title, proto, size) ->
      let rows = table4_one ~with_offload ~rounds ~proto ~size () in
      print_breakdown ~title rows;
      rows)
    cases

(* ------------------------------------------------------------------ *)
(* Table 1 and Figure 1                                                 *)

let table1 () =
  Format.printf
    "@.=== Table 1: the proxy interface (library exports / server exports / \
     action) ===@.";
  List.iter
    (fun (proxy, server, action) ->
      Format.printf "  %-28s %-16s %s@." proxy server action)
    [
      ("socket", "proxy_socket", "Create a session managed by the OS.");
      ( "bind",
        "proxy_bind",
        "Set local address. UDP sessions migrate to the application." );
      ( "connect",
        "proxy_connect",
        "Set remote address. UDP and TCP sessions migrate to the \
         application." );
      ("listen", "proxy_listen", "Open passively; the OS awaits connections.");
      ( "accept",
        "proxy_accept",
        "Migrate a passively opened session to the application." );
      ( "send/recv (all variants)",
        "(none)",
        "Transfer data directly; the OS is not involved." );
      ( "fork",
        "proxy_return",
        "Return sessions to the OS before fork duplicates descriptors." );
      ( "select",
        "proxy_status",
        "Notify the OS of readiness changes in application sessions." );
      ( "close",
        "proxy_close",
        "Migrate the session back; the OS runs the shutdown handshake." );
    ]

let figure1 () =
  Format.printf "@.=== Figure 1: component placement by configuration ===@.";
  let describe (c : Cfg.t) =
    let where, input =
      match c.Cfg.placement with
      | Cfg.In_kernel -> ("kernel", "netisr queue (no crossing)")
      | Cfg.Server -> ("UX server task", "packet filter -> server IPC channel")
      | Cfg.Library ->
        ( "per-application library",
          match c.Cfg.delivery with
          | Cfg.Pf_ipc -> "packet filter -> one IPC message per packet"
          | Cfg.Pf_shm -> "packet filter -> shared-memory ring, batched wakeups"
          | Cfg.Pf_shm_ipf ->
            "device-integrated packet filter -> shared-memory ring, single \
             copy from device" )
      | Cfg.Offload ->
        ( "smart NIC",
          "NIC pipeline -> DMA into loaned buffer -> completion ring" )
    in
    Format.printf "  %-38s stack in %-26s rx: %s@." c.Cfg.label where input;
    match c.Cfg.placement with
    | Cfg.Library ->
      Format.printf
        "  %38s control path: proxy -> OS server (naming, \
         connection setup/teardown, routing/ARP metastate, fork/select)@."
        ""
    | _ -> ()
  in
  List.iter describe
    (Cfg.decstation_rows @ [ Cfg.library_newapi_shm_ipf ])
