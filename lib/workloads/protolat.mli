(** The paper's latency microbenchmark: round-trip time of an N-byte
    message echoed by the remote host, for TCP and UDP. *)

type proto = Tcp | Udp

type result = {
  config : Psd_cost.Config.t;
  proto : proto;
  size : int;
  rounds : int;
  rtt_ms : float;  (** mean round-trip time *)
  na : bool;  (** configuration cannot run this cell (the 386BSD/BNR2SS
                  large-TCP-segment bug, paper Table 2) *)
}

val run :
  ?plat:Psd_cost.Platform.t ->
  ?machine:Paper.machine ->
  ?rounds:int ->
  ?warmup:int ->
  ?seed:int ->
  ?breakdown:Psd_cost.Breakdown.t ->
  proto:proto ->
  size:int ->
  Psd_cost.Config.t ->
  result
(** Default 200 measured round trips after 8 warm-up rounds (ARP
    resolution, handshake, slow start). When [breakdown] is supplied it
    is attached to the {e client} host's contexts for the measured rounds
    only — divide its totals by [rounds] for the per-round-trip Table 4
    numbers (wire transit excluded; compute it analytically). *)

val pp : Format.formatter -> result -> unit
