(** Reference values transcribed from the paper, used to print
    paper-vs-measured comparisons and to choose per-configuration
    parameters (receive buffer sizes). *)

type machine = Dec | Gateway

val best_rcv_buf : machine -> Psd_cost.Config.t -> int
(** The "Receive Buffer Size" column of Table 2/3 (bytes; the paper's
    120 KB entries are clamped to the 64 KB limit a 16-bit window can
    advertise). *)

val table2_throughput : machine -> string -> float option
(** Paper TCP throughput in KB/s by configuration label. *)

val table2_tcp_latency : machine -> string -> int -> float option
(** Paper TCP round-trip latency in ms by label and message size. *)

val table2_udp_latency : machine -> string -> int -> float option

val table3_throughput : string -> float option
(** DECstation NEWAPI table. *)

val table3_tcp_latency : string -> int -> float option

val table3_udp_latency : string -> int -> float option

val tcp_sizes : int list
(** Message sizes of the latency columns: 1, 100, 512, 1024, 1460. *)

val udp_sizes : int list
(** 1, 100, 512, 1024, 1472. *)

val table4_cell : string -> proto:string -> size:int -> string -> int option
(** [table4_cell impl ~proto ~size phase_label] is the paper's Table 4
    entry in microseconds; [impl] is ["Library"], ["Kernel"] or
    ["Server"]. *)
