open Psd_core

type proto = Tcp | Udp

type result = {
  config : Psd_cost.Config.t;
  proto : proto;
  size : int;
  rounds : int;
  rtt_ms : float;
  na : bool;
}

let na_cell config proto size =
  config.Psd_cost.Config.large_tcp_bug && proto = Tcp && size > 512

let run ?plat ?(machine = Paper.Dec) ?(rounds = 200) ?(warmup = 8) ?(seed = 11)
    ?breakdown ~proto ~size config =
  if na_cell config proto size then
    { config; proto; size; rounds = 0; rtt_ms = nan; na = true }
  else begin
    let plat =
      Option.value plat
        ~default:
          (match machine with
          | Paper.Dec -> Psd_cost.Platform.decstation
          | Paper.Gateway -> Psd_cost.Platform.gateway486)
    in
    let eng = Psd_sim.Engine.create ~seed () in
    let segment = Psd_link.Segment.create eng () in
    let sys_a =
      System.create ~eng ~segment ~config ~plat ~addr:"10.0.0.1"
        ~name:"client" ()
    in
    let sys_b =
      System.create ~eng ~segment ~config ~plat ~addr:"10.0.0.2"
        ~name:"server" ()
    in
    let stats = Psd_util.Stats.create () in
    let payload = String.make size 'p' in
    (* echo server *)
    let sapp = System.app sys_b ~name:"echo" in
    Psd_sim.Engine.spawn eng ~name:"echo" (fun () ->
        match proto with
        | Udp ->
          let s = Sockets.dgram sapp in
          (match Sockets.bind s ~port:7 () with
          | Ok _ -> ()
          | Error e -> failwith e);
          let rec loop () =
            match Sockets.recvfrom s ~max:65536 with
            | Ok (d, Some src) ->
              (match Sockets.send s ~dst:src d with
              | Ok _ -> ()
              | Error e -> failwith e);
              loop ()
            | Ok (_, None) -> failwith "no source"
            | Error e -> failwith e
          in
          loop ()
        | Tcp -> (
          let s = Sockets.stream sapp in
          (match Sockets.bind s ~port:7 () with
          | Ok _ -> ()
          | Error e -> failwith e);
          (match Sockets.listen s () with
          | Ok () -> ()
          | Error e -> failwith e);
          match Sockets.accept s with
          | Error e -> failwith e
          | Ok c ->
            Sockets.set_nodelay c true;
            (* echo exactly size-byte messages *)
            let rec loop () =
              let rec read_msg acc =
                if String.length acc >= size then acc
                else
                  match Sockets.recv c ~max:size with
                  | Ok "" -> acc
                  | Ok d -> read_msg (acc ^ d)
                  | Error _ -> acc
              in
              let msg = read_msg "" in
              if String.length msg = size then begin
                (match Sockets.send c msg with
                | Ok _ -> ()
                | Error _ -> ());
                loop ()
              end
            in
            loop ()));
    (* client *)
    let capp = System.app sys_a ~name:"protolat" in
    let finished = ref false in
    Psd_sim.Engine.spawn eng ~name:"protolat" (fun () ->
        let s, recv_reply =
          match proto with
          | Udp ->
            let s = Sockets.dgram capp in
            (match Sockets.bind s () with
            | Ok _ -> ()
            | Error e -> failwith e);
            (match Sockets.connect s (System.addr sys_b) 7 with
            | Ok () -> ()
            | Error e -> failwith e);
            (s, fun () -> ignore (Result.get_ok (Sockets.recv s ~max:65536)))
          | Tcp ->
            let s = Sockets.stream capp in
            (match Sockets.connect s (System.addr sys_b) 7 with
            | Ok () -> ()
            | Error e -> failwith e);
            Sockets.set_nodelay s true;
            ( s,
              fun () ->
                let rec read_msg got =
                  if got < size then
                    match Sockets.recv s ~max:size with
                    | Ok "" -> failwith "eof"
                    | Ok d -> read_msg (got + String.length d)
                    | Error e -> failwith e
                in
                read_msg 0 )
        in
        let round () =
          let t0 = Psd_sim.Engine.now eng in
          (match Sockets.send s payload with
          | Ok _ -> ()
          | Error e -> failwith ("send: " ^ e));
          recv_reply ();
          Psd_sim.Engine.now eng - t0
        in
        for _ = 1 to warmup do
          ignore (round ())
        done;
        (* attach the breakdown probe only for measured rounds *)
        (match breakdown with
        | Some b ->
          System.set_breakdown sys_a (Some b)
        | None -> ());
        for _ = 1 to rounds do
          Psd_util.Stats.add stats (float_of_int (round ()))
        done;
        System.set_breakdown sys_a None;
        finished := true);
    Psd_sim.Engine.run_for eng (Psd_sim.Time.sec (60 + (rounds / 5)));
    if not !finished then
      failwith
        (Printf.sprintf "protolat[%s]: did not complete"
           config.Psd_cost.Config.label);
    {
      config;
      proto;
      size;
      rounds;
      rtt_ms = Psd_util.Stats.mean stats /. 1e6;
      na = false;
    }
  end

let pp fmt r =
  if r.na then
    Format.fprintf fmt "%-36s %s %5d B: NA" r.config.Psd_cost.Config.label
      (match r.proto with Tcp -> "TCP" | Udp -> "UDP")
      r.size
  else
    Format.fprintf fmt "%-36s %s %5d B: %6.2f ms"
      r.config.Psd_cost.Config.label
      (match r.proto with Tcp -> "TCP" | Udp -> "UDP")
      r.size r.rtt_ms
