(** ARP mapping cache with expiry and change notification.

    The operating system server owns the authoritative table; protocol
    libraries hold local caches and subscribe to invalidation callbacks so
    the send path never has to consult the server for a warm mapping
    (paper Section 3.3). *)

type t

val create : Psd_sim.Engine.t -> ?ttl_ns:int -> unit -> t
(** Entries expire [ttl_ns] after insertion (default 20 minutes, BSD's
    ARP lifetime). *)

val lookup : t -> Psd_ip.Addr.t -> Psd_link.Macaddr.t option
(** [None] for missing or expired entries. *)

val insert : t -> Psd_ip.Addr.t -> Psd_link.Macaddr.t -> unit
(** Insert or refresh; notifies subscribers of the change. *)

val invalidate : t -> Psd_ip.Addr.t -> unit
(** Remove an entry; notifies subscribers. *)

val flush : t -> unit
(** Drop every entry; notifies subscribers per entry. *)

val subscribe : t -> (Psd_ip.Addr.t -> unit) -> unit
(** Register a callback fired whenever a mapping is inserted, refreshed,
    invalidated or expired — the server uses this to push invalidations
    into application caches. *)

val entries : t -> (Psd_ip.Addr.t * Psd_link.Macaddr.t) list

val size : t -> int
