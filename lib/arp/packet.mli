(** ARP packet encoding for IPv4 over Ethernet (RFC 826). *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Psd_link.Macaddr.t;
  sender_ip : Psd_ip.Addr.t;
  target_mac : Psd_link.Macaddr.t;  (** zero MAC in requests *)
  target_ip : Psd_ip.Addr.t;
}

val size : int
(** 28 bytes. *)

val encode : t -> Bytes.t

val decode : Bytes.t -> off:int -> len:int -> (t, string) result

val pp : Format.formatter -> t -> unit
