type waiting = {
  mutable continuations : (Psd_link.Macaddr.t option -> unit) list;
  mutable tries_left : int;
  mutable cancel : Psd_sim.Engine.cancel;
}

type t = {
  eng : Psd_sim.Engine.t;
  cache : Cache.t;
  my_ip : Psd_ip.Addr.t;
  my_mac : Psd_link.Macaddr.t;
  send : dst:Psd_link.Macaddr.t -> Packet.t -> unit;
  retries : int;
  retry_interval_ns : int;
  pending : (Psd_ip.Addr.t, waiting) Hashtbl.t;
}

let create ~eng ~cache ~my_ip ~my_mac ~send ?(retries = 3)
    ?(retry_interval_ns = Psd_sim.Time.sec 1) () =
  {
    eng;
    cache;
    my_ip;
    my_mac;
    send;
    retries;
    retry_interval_ns;
    pending = Hashtbl.create 8;
  }

let query t ip =
  t.send ~dst:Psd_link.Macaddr.broadcast
    {
      Packet.op = Packet.Request;
      sender_mac = t.my_mac;
      sender_ip = t.my_ip;
      target_mac = Psd_link.Macaddr.of_string "\x00\x00\x00\x00\x00\x00";
      target_ip = ip;
    }

(* The retry must run in a fiber: query ends in Netdev.transmit, which
   charges cpu time (a Sleep effect), and raw timer events have no
   effect handler. Mirrors the tcp timer idiom. *)
let rec arm_retry t ip w =
  w.cancel <-
    Psd_sim.Engine.after t.eng t.retry_interval_ns (fun () ->
        Psd_sim.Engine.spawn t.eng ~name:"arp-retry" (fun () ->
            if w.tries_left > 0 then begin
              w.tries_left <- w.tries_left - 1;
              query t ip;
              arm_retry t ip w
            end
            else begin
              Hashtbl.remove t.pending ip;
              List.iter (fun k -> k None) (List.rev w.continuations)
            end))

let resolve t ip k =
  match Cache.lookup t.cache ip with
  | Some mac -> k (Some mac)
  | None -> (
    match Hashtbl.find_opt t.pending ip with
    | Some w -> w.continuations <- k :: w.continuations
    | None ->
      let w =
        { continuations = [ k ]; tries_left = t.retries; cancel = (fun () -> ()) }
      in
      Hashtbl.add t.pending ip w;
      query t ip;
      arm_retry t ip w)

let learn t ip mac =
  Cache.insert t.cache ip mac;
  match Hashtbl.find_opt t.pending ip with
  | None -> ()
  | Some w ->
    Hashtbl.remove t.pending ip;
    w.cancel ();
    List.iter (fun k -> k (Some mac)) (List.rev w.continuations)

let input t (p : Packet.t) =
  match p.op with
  | Packet.Request ->
    (* Opportunistically learn the sender; reply if the target is us. *)
    if Hashtbl.mem t.pending p.sender_ip || Cache.lookup t.cache p.sender_ip <> None
    then learn t p.sender_ip p.sender_mac;
    if Psd_ip.Addr.equal p.target_ip t.my_ip then
      t.send ~dst:p.sender_mac
        {
          Packet.op = Packet.Reply;
          sender_mac = t.my_mac;
          sender_ip = t.my_ip;
          target_mac = p.sender_mac;
          target_ip = p.sender_ip;
        }
  | Packet.Reply -> learn t p.sender_ip p.sender_mac

let pending t = Hashtbl.length t.pending
