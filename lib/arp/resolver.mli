(** ARP resolution state machine.

    Resolves IP next-hops to MAC addresses: answers requests for the
    host's own address, learns mappings from replies, retransmits
    outstanding queries, and releases packets queued behind a pending
    resolution. One resolver serves a host; in the decomposed
    configuration it runs in the operating-system server, which handles
    ARP as an "exceptional" packet class (paper Section 3.1). *)

type t

val create :
  eng:Psd_sim.Engine.t ->
  cache:Cache.t ->
  my_ip:Psd_ip.Addr.t ->
  my_mac:Psd_link.Macaddr.t ->
  send:(dst:Psd_link.Macaddr.t -> Packet.t -> unit) ->
  ?retries:int ->
  ?retry_interval_ns:int ->
  unit ->
  t
(** [send] transmits an ARP packet in an Ethernet frame. Defaults:
    3 retries, 1 s apart (BSD behaviour). *)

val resolve : t -> Psd_ip.Addr.t -> (Psd_link.Macaddr.t option -> unit) -> unit
(** Invoke the continuation with the mapping — immediately on a cache
    hit, after a query/reply exchange otherwise, with [None] if every
    retry times out. Concurrent resolutions of one address share a single
    query sequence. *)

val input : t -> Packet.t -> unit
(** Process a received ARP packet: reply to requests that target us,
    learn sender mappings, complete pending resolutions. *)

val pending : t -> int
(** Addresses with an outstanding query. *)
