open Psd_util

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Psd_link.Macaddr.t;
  sender_ip : Psd_ip.Addr.t;
  target_mac : Psd_link.Macaddr.t;
  target_ip : Psd_ip.Addr.t;
}

let size = 28

let encode t =
  let b = Bytes.create size in
  Codec.set_u16 b 0 1 (* htype ethernet *);
  Codec.set_u16 b 2 0x0800 (* ptype ipv4 *);
  Codec.set_u8 b 4 6 (* hlen *);
  Codec.set_u8 b 5 4 (* plen *);
  Codec.set_u16 b 6 (match t.op with Request -> 1 | Reply -> 2);
  Psd_link.Macaddr.write t.sender_mac b 8;
  Codec.set_u32i b 14 (Psd_ip.Addr.to_int t.sender_ip);
  Psd_link.Macaddr.write t.target_mac b 18;
  Codec.set_u32i b 24 (Psd_ip.Addr.to_int t.target_ip);
  b

let decode b ~off ~len =
  if len < size then Error "arp: too short"
  else if Codec.get_u16 b off <> 1 then Error "arp: bad htype"
  else if Codec.get_u16 b (off + 2) <> 0x0800 then Error "arp: bad ptype"
  else
    match Codec.get_u16 b (off + 6) with
    | 1 | 2 ->
      let op = if Codec.get_u16 b (off + 6) = 1 then Request else Reply in
      Ok
        {
          op;
          sender_mac = Psd_link.Macaddr.read b (off + 8);
          sender_ip = Psd_ip.Addr.of_int (Codec.get_u32i b (off + 14));
          target_mac = Psd_link.Macaddr.read b (off + 18);
          target_ip = Psd_ip.Addr.of_int (Codec.get_u32i b (off + 24));
        }
    | op -> Error (Printf.sprintf "arp: bad op %d" op)

let pp fmt t =
  match t.op with
  | Request ->
    Format.fprintf fmt "arp who-has %a tell %a" Psd_ip.Addr.pp t.target_ip
      Psd_ip.Addr.pp t.sender_ip
  | Reply ->
    Format.fprintf fmt "arp %a is-at %a" Psd_ip.Addr.pp t.sender_ip
      Psd_link.Macaddr.pp t.sender_mac
