type entry = { mac : Psd_link.Macaddr.t; expires : int }

type t = {
  eng : Psd_sim.Engine.t;
  ttl_ns : int;
  table : (Psd_ip.Addr.t, entry) Hashtbl.t;
  mutable subscribers : (Psd_ip.Addr.t -> unit) list;
}

let create eng ?(ttl_ns = Psd_sim.Time.sec (20 * 60)) () =
  { eng; ttl_ns; table = Hashtbl.create 16; subscribers = [] }

let notify t ip = List.iter (fun f -> f ip) t.subscribers

let lookup t ip =
  match Hashtbl.find_opt t.table ip with
  | None -> None
  | Some e ->
    if Psd_sim.Engine.now t.eng >= e.expires then begin
      Hashtbl.remove t.table ip;
      notify t ip;
      None
    end
    else Some e.mac

let insert t ip mac =
  let expires = Psd_sim.Engine.now t.eng + t.ttl_ns in
  Hashtbl.replace t.table ip { mac; expires };
  notify t ip

let invalidate t ip =
  if Hashtbl.mem t.table ip then begin
    Hashtbl.remove t.table ip;
    notify t ip
  end

let flush t =
  let ips = Hashtbl.fold (fun ip _ acc -> ip :: acc) t.table [] in
  List.iter (invalidate t) ips

let subscribe t f = t.subscribers <- f :: t.subscribers

let entries t =
  let now = Psd_sim.Engine.now t.eng in
  Hashtbl.fold
    (fun ip e acc -> if now < e.expires then (ip, e.mac) :: acc else acc)
    t.table []

let size t = List.length (entries t)
