open Psd_bpf
open Psd_util

(* Build a minimal Ethernet+IPv4+transport frame for filter tests. *)
let make_frame ?(ethertype = 0x0800) ?(ip_proto = 6) ?(src_ip = 0x0a000001)
    ?(dst_ip = 0x0a000002) ?(src_port = 1234) ?(dst_port = 80)
    ?(frag_off = 0) ?(ip_hl = 5) ?(payload_len = 4) () =
  let ip_hlen = ip_hl * 4 in
  let total = 14 + ip_hlen + 8 + payload_len in
  let b = Bytes.make total '\x00' in
  Codec.set_u16 b 12 ethertype;
  Codec.set_u8 b 14 ((4 lsl 4) lor ip_hl);
  Codec.set_u16 b (14 + 6) frag_off;
  Codec.set_u8 b (14 + 9) ip_proto;
  Codec.set_u32i b (14 + 12) src_ip;
  Codec.set_u32i b (14 + 16) dst_ip;
  Codec.set_u16 b (14 + ip_hlen) src_port;
  Codec.set_u16 b (14 + ip_hlen + 2) dst_port;
  b

let accepts prog pkt =
  match Vm.run prog pkt with
  | Ok (n, _) -> n > 0
  | Error `Invalid -> Alcotest.fail "invalid program"

(* --- VM semantics ---------------------------------------------------- *)

let ret_a_of insns input =
  let prog = Array.of_list insns in
  match Vm.run prog input with
  | Ok (v, _) -> v
  | Error `Invalid -> Alcotest.fail "invalid program"

let test_vm_loads () =
  let pkt = Bytes.of_string "\x01\x02\x03\x04\x05" in
  let open Insn in
  Alcotest.(check int) "ldb" 0x03
    (ret_a_of [ Ld (B, Abs 2); Ret RetA ] pkt);
  Alcotest.(check int) "ldh" 0x0203
    (ret_a_of [ Ld (H, Abs 1); Ret RetA ] pkt);
  Alcotest.(check int) "ldw" 0x01020304
    (ret_a_of [ Ld (W, Abs 0); Ret RetA ] pkt);
  Alcotest.(check int) "len" 5 (ret_a_of [ Ld (W, Len); Ret RetA ] pkt);
  Alcotest.(check int) "imm" 77 (ret_a_of [ Ld (W, Imm 77); Ret RetA ] pkt)

let test_vm_out_of_bounds_rejects () =
  let pkt = Bytes.of_string "\x01\x02" in
  let open Insn in
  Alcotest.(check int) "oob w" 0
    (ret_a_of [ Ld (W, Abs 0); Ret (RetK 99) ] pkt);
  Alcotest.(check int) "oob ind" 0
    (ret_a_of [ Ldx (Imm 100); Ld (B, Ind 0); Ret (RetK 99) ] pkt)

let test_vm_alu () =
  let pkt = Bytes.create 1 in
  let open Insn in
  let calc insns = ret_a_of (Ld (W, Imm 12) :: insns @ [ Ret RetA ]) pkt in
  Alcotest.(check int) "add" 15 (calc [ Alu (Add, K 3) ]);
  Alcotest.(check int) "sub" 9 (calc [ Alu (Sub, K 3) ]);
  Alcotest.(check int) "mul" 36 (calc [ Alu (Mul, K 3) ]);
  Alcotest.(check int) "div" 4 (calc [ Alu (Div, K 3) ]);
  Alcotest.(check int) "and" 8 (calc [ Alu (And, K 0b1010) ]);
  Alcotest.(check int) "or" 14 (calc [ Alu (Or, K 0b0110) ]);
  Alcotest.(check int) "lsh" 48 (calc [ Alu (Lsh, K 2) ]);
  Alcotest.(check int) "rsh" 3 (calc [ Alu (Rsh, K 2) ]);
  Alcotest.(check int) "neg" ((-12) land 0xffffffff) (calc [ Neg ]);
  Alcotest.(check int) "x path" 19
    (ret_a_of
       [ Ld (W, Imm 7); Tax; Ld (W, Imm 12); Alu (Add, X); Ret RetA ]
       pkt)

let test_vm_scratch () =
  let pkt = Bytes.create 1 in
  let open Insn in
  Alcotest.(check int) "st/ld mem" 42
    (ret_a_of
       [ Ld (W, Imm 42); St 3; Ld (W, Imm 0); Ld (W, Mem 3); Ret RetA ]
       pkt)

let test_vm_msh () =
  (* byte 0 = 0x45 -> 4 * 5 = 20 *)
  let pkt = Bytes.of_string "\x45\x00" in
  let open Insn in
  Alcotest.(check int) "msh" 20
    (ret_a_of [ Ldx (Msh 0); Txa; Ret RetA ] pkt)

let test_vm_jumps () =
  let pkt = Bytes.create 1 in
  let open Insn in
  let prog c v =
    [ Ld (W, Imm 10); Jmp (c, K v, 0, 1); Ret (RetK 1); Ret (RetK 0) ]
  in
  let run c v = ret_a_of (prog c v) pkt in
  Alcotest.(check int) "jeq taken" 1 (run Jeq 10);
  Alcotest.(check int) "jeq not" 0 (run Jeq 11);
  Alcotest.(check int) "jgt" 1 (run Jgt 9);
  Alcotest.(check int) "jge" 1 (run Jge 10);
  Alcotest.(check int) "jset" 1 (run Jset 2);
  Alcotest.(check int) "jset not" 0 (run Jset 4);
  Alcotest.(check int) "ja" 5
    (ret_a_of [ Ja 1; Ret (RetK 9); Ret (RetK 5) ] pkt)

let test_vm_insn_count () =
  let pkt = Bytes.create 4 in
  let open Insn in
  match Vm.run [| Ld (W, Imm 1); Alu (Add, K 1); Ret RetA |] pkt with
  | Ok (v, steps) ->
    Alcotest.(check int) "value" 2 v;
    Alcotest.(check int) "steps" 3 steps
  | Error `Invalid -> Alcotest.fail "invalid"

(* --- validator ------------------------------------------------------- *)

let expect_invalid name prog expected =
  match Vm.validate prog with
  | Ok () -> Alcotest.failf "%s: expected invalid" name
  | Error e ->
    Alcotest.(check string) name expected (Format.asprintf "%a" Vm.pp_error e)

let test_validate_errors () =
  let open Insn in
  expect_invalid "empty" [||] "empty program";
  expect_invalid "no ret" [| Ld (W, Imm 0) |] "program can fall off the end";
  expect_invalid "jump range"
    [| Jmp (Jeq, K 0, 5, 0); Ret (RetK 0) |]
    "jump out of range at 0";
  expect_invalid "div0"
    [| Alu (Div, K 0); Ret RetA |]
    "constant division by zero at 0";
  expect_invalid "scratch" [| St 16; Ret (RetK 0) |] "bad scratch index at 0";
  expect_invalid "msh in ld"
    [| Ld (W, Msh 0); Ret RetA |]
    "msh addressing outside ldx at 0"

let test_validate_ok () =
  match Vm.validate Filter.ip_all with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ip_all invalid: %a" Vm.pp_error e

(* --- assembler ------------------------------------------------------- *)

let test_asm_unknown_label () =
  match Asm.assemble [ Asm.Goto "nowhere"; Asm.I (Insn.Ret (Insn.RetK 0)) ] with
  | Error msg -> Alcotest.(check string) "msg" "unknown label nowhere" msg
  | Ok _ -> Alcotest.fail "expected error"

let test_asm_duplicate_label () =
  match
    Asm.assemble
      [ Asm.Label "a"; Asm.Label "a"; Asm.I (Insn.Ret (Insn.RetK 0)) ]
  with
  | Error msg -> Alcotest.(check string) "msg" "duplicate label a" msg
  | Ok _ -> Alcotest.fail "expected error"

let test_asm_backward_jump () =
  match
    Asm.assemble
      [
        Asm.Label "loop";
        Asm.I (Insn.Ld (Insn.W, Insn.Imm 0));
        Asm.Goto "loop";
        Asm.I (Insn.Ret (Insn.RetK 0));
      ]
  with
  | Error msg -> Alcotest.(check string) "msg" "backward jump to loop" msg
  | Ok _ -> Alcotest.fail "expected error"

(* --- session filters ------------------------------------------------- *)

let tcp_spec =
  {
    Filter.proto = Filter.Tcp;
    local_ip = 0x0a000002;
    local_port = 80;
    remote_ip = Some 0x0a000001;
    remote_port = Some 1234;
  }

let test_filter_accepts_match () =
  let prog = Filter.session tcp_spec in
  Alcotest.(check bool) "match" true (accepts prog (make_frame ()))

let test_filter_rejects_wrong_fields () =
  let prog = Filter.session tcp_spec in
  let cases =
    [
      ("ethertype", make_frame ~ethertype:0x0806 ());
      ("proto", make_frame ~ip_proto:17 ());
      ("dst ip", make_frame ~dst_ip:0x0a000003 ());
      ("src ip", make_frame ~src_ip:0x0a000009 ());
      ("dst port", make_frame ~dst_port:81 ());
      ("src port", make_frame ~src_port:4321 ());
    ]
  in
  List.iter
    (fun (name, frame) ->
      Alcotest.(check bool) name false (accepts prog frame))
    cases

let test_filter_wildcard_remote () =
  let spec =
    { tcp_spec with Filter.remote_ip = None; remote_port = None }
  in
  let prog = Filter.session spec in
  Alcotest.(check bool) "any peer" true
    (accepts prog (make_frame ~src_ip:0x01020304 ~src_port:9999 ()));
  Alcotest.(check bool) "still checks dst port" false
    (accepts prog (make_frame ~dst_port:8080 ()))

let test_filter_ip_options () =
  (* A larger IP header moves the ports; MSH addressing must follow. *)
  let prog = Filter.session tcp_spec in
  Alcotest.(check bool) "ihl=8" true (accepts prog (make_frame ~ip_hl:8 ()))

let test_filter_fragments () =
  let prog = Filter.session tcp_spec in
  (* Non-first fragment matching at address level: accepted though ports
     are garbage at the transport offset. *)
  let frag = make_frame ~frag_off:0x0010 ~dst_port:0 ~src_port:0 () in
  Alcotest.(check bool) "non-first frag accepted" true (accepts prog frag);
  (* Non-first fragment of someone else's flow: rejected on address. *)
  let other = make_frame ~frag_off:0x0010 ~dst_ip:0x0a000007 () in
  Alcotest.(check bool) "other host frag rejected" false (accepts prog other)

let test_filter_udp () =
  let spec =
    {
      Filter.proto = Filter.Udp;
      local_ip = 0x0a000002;
      local_port = 7;
      remote_ip = None;
      remote_port = None;
    }
  in
  let prog = Filter.session spec in
  Alcotest.(check bool) "udp match" true
    (accepts prog (make_frame ~ip_proto:17 ~dst_port:7 ()));
  Alcotest.(check bool) "tcp rejected" false
    (accepts prog (make_frame ~ip_proto:6 ~dst_port:7 ()))

let test_filter_arp () =
  Alcotest.(check bool) "arp" true
    (accepts Filter.arp (make_frame ~ethertype:0x0806 ()));
  Alcotest.(check bool) "not ip" false (accepts Filter.arp (make_frame ()))

let test_filter_icmp () =
  let prog = Filter.icmp ~local_ip:0x0a000002 in
  Alcotest.(check bool) "icmp" true
    (accepts prog (make_frame ~ip_proto:1 ()));
  Alcotest.(check bool) "tcp no" false (accepts prog (make_frame ()))

let test_filter_short_packet () =
  let prog = Filter.session tcp_spec in
  Alcotest.(check bool) "truncated rejected" false
    (accepts prog (Bytes.create 10))

let prop_session_exactness =
  QCheck.Test.make ~name:"filter: accepts iff all fields match" ~count:500
    QCheck.(
      quad (int_bound 1) (int_bound 1) (int_bound 1) (int_bound 1))
    (fun (wrong_dst, wrong_proto, wrong_dport, wrong_sport) ->
      let prog = Filter.session tcp_spec in
      let frame =
        make_frame
          ~dst_ip:(if wrong_dst = 1 then 0x0b0b0b0b else 0x0a000002)
          ~ip_proto:(if wrong_proto = 1 then 17 else 6)
          ~dst_port:(if wrong_dport = 1 then 81 else 80)
          ~src_port:(if wrong_sport = 1 then 55 else 1234)
          ()
      in
      let should_match =
        wrong_dst = 0 && wrong_proto = 0 && wrong_dport = 0 && wrong_sport = 0
      in
      accepts prog frame = should_match)

(* Fuzz: any program the validator accepts must be interpretable on any
   packet — terminating, raising nothing, returning a value. *)
let gen_insn =
  let open QCheck.Gen in
  let size = oneofl [ Insn.B; Insn.H; Insn.W ] in
  let mode =
    oneof
      [
        map (fun k -> Insn.Abs (k mod 80)) small_nat;
        map (fun k -> Insn.Ind (k mod 80)) small_nat;
        return Insn.Len;
        map (fun k -> Insn.Imm k) small_nat;
        map (fun k -> Insn.Mem (k mod 16)) small_nat;
      ]
  in
  let alu =
    oneofl
      [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.And; Insn.Or;
        Insn.Lsh; Insn.Rsh ]
  in
  let src =
    oneof [ map (fun k -> Insn.K (k + 1)) small_nat; return Insn.X ]
  in
  let cond = oneofl [ Insn.Jeq; Insn.Jgt; Insn.Jge; Insn.Jset ] in
  oneof
    [
      map2 (fun s m -> Insn.Ld (s, m)) size mode;
      map (fun m -> Insn.Ldx m) mode;
      map (fun k -> Insn.St (k mod 16)) small_nat;
      map (fun k -> Insn.Stx (k mod 16)) small_nat;
      map2 (fun a s -> Insn.Alu (a, s)) alu src;
      return Insn.Neg;
      return Insn.Tax;
      return Insn.Txa;
      map (fun k -> Insn.Ja k) (int_bound 3);
      map3
        (fun c s (jt, jf) -> Insn.Jmp (c, s, jt, jf))
        cond src
        (pair (int_bound 3) (int_bound 3));
      map (fun k -> Insn.Ret (Insn.RetK k)) small_nat;
      return (Insn.Ret Insn.RetA);
    ]

let gen_program =
  QCheck.Gen.(
    map
      (fun insns -> Array.of_list (insns @ [ Insn.Ret (Insn.RetK 0) ]))
      (list_size (1 -- 24) gen_insn))

(* --- differential: compiled closures vs interpreter ------------------- *)

(* Any valid program, any packet: the compiled closure must return
   exactly the interpreter's (accept, steps) — the simulator charges
   per-instruction costs from this count, so the fast path must not
   perturb virtual time. *)
let gen_packet =
  QCheck.Gen.(
    int_bound 80 >>= fun n ->
    map Bytes.unsafe_of_string (string_size ~gen:char (return n)))

let prop_compile_matches_interpreter =
  QCheck.Test.make ~name:"compile: (accept, steps) equals interpreter"
    ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_program gen_packet))
    (fun (prog, pkt) ->
      match Vm.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let reference = Vm.run_exn prog pkt in
        let compiled = Compile.compile_exn prog in
        Compile.run compiled pkt = reference)

let prop_compile_view_matches_interpreter =
  (* exec over a view into a larger buffer = interpreting the copy *)
  QCheck.Test.make ~name:"compile: packet views equal sub-packet interp"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(triple gen_program gen_packet (int_bound 16)))
    (fun (prog, pkt, lead) ->
      match Vm.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let padded = Bytes.cat (Bytes.make lead '\xaa') (Bytes.cat pkt (Bytes.make 3 '\xbb')) in
        let compiled = Compile.compile_exn prog in
        Compile.exec compiled padded ~off:lead ~len:(Bytes.length pkt)
        = Vm.run_exn prog pkt)

(* --- differential: flat session descriptors vs interpreter ------------ *)

(* Draw spec fields and frame fields from small overlapping pools so
   accepts, each distinct rejection point, fragments, IP options and
   truncations all occur; flat match, compiled closure and interpreter
   must agree exactly, steps included. *)
let gen_session_case =
  let open QCheck.Gen in
  let ips = [ 0x0a000001; 0x0a000002; 0x0a000003 ] in
  let ports = [ 7; 80; 1234; 9999 ] in
  let gen_spec =
    oneofl [ Filter.Tcp; Filter.Udp ] >>= fun proto ->
    oneofl ips >>= fun local_ip ->
    oneofl ports >>= fun local_port ->
    opt (oneofl ips) >>= fun remote_ip ->
    opt (oneofl ports) >>= fun remote_port ->
    return { Filter.proto; local_ip; local_port; remote_ip; remote_port }
  in
  let gen_frame =
    oneofl [ 0x0800; 0x0806 ] >>= fun ethertype ->
    oneofl [ 1; 6; 17 ] >>= fun ip_proto ->
    oneofl ips >>= fun src_ip ->
    oneofl ips >>= fun dst_ip ->
    oneofl ports >>= fun src_port ->
    oneofl ports >>= fun dst_port ->
    oneofl [ 0; 0x0010; 0x2000 ] >>= fun frag_off ->
    oneofl [ 5; 8 ] >>= fun ip_hl ->
    int_bound 4 >>= fun payload_len ->
    return
      (make_frame ~ethertype ~ip_proto ~src_ip ~dst_ip ~src_port ~dst_port
         ~frag_off ~ip_hl ~payload_len ())
  in
  triple gen_spec gen_frame (int_bound 60)

let prop_flat_matches_interpreter =
  QCheck.Test.make
    ~name:"filter: flat, compiled and interpreter agree on (accept, steps)"
    ~count:2000
    (QCheck.make gen_session_case)
    (fun (spec, frame, cut) ->
      (* random truncation exercises every out-of-bounds load path *)
      let frame =
        if cut < Bytes.length frame then Bytes.sub frame 0 cut else frame
      in
      let prog = Filter.session spec in
      let flat = Filter.flat_of_spec spec in
      let reference = Vm.run_exn prog frame in
      let compiled = Compile.compile_exn prog in
      Filter.flat_run flat frame = reference
      && Compile.run compiled frame = reference)

let prop_validated_programs_run_safely =
  QCheck.Test.make ~name:"bpf: validated programs always run to completion"
    ~count:2000
    (QCheck.make gen_program)
    (fun prog ->
      match Vm.validate prog with
      | Error _ -> true (* rejected: nothing to check *)
      | Ok () -> (
        let pkt = Bytes.init 64 (fun i -> Char.chr (i * 37 mod 256)) in
        match Vm.run prog pkt with
        | Ok (v, steps) -> v >= 0 && steps > 0 && steps <= 1000
        | Error `Invalid -> false
        | exception _ -> false))

let () =
  Alcotest.run "psd_bpf"
    [
      ( "vm",
        [
          Alcotest.test_case "loads" `Quick test_vm_loads;
          Alcotest.test_case "oob rejects" `Quick
            test_vm_out_of_bounds_rejects;
          Alcotest.test_case "alu" `Quick test_vm_alu;
          Alcotest.test_case "scratch" `Quick test_vm_scratch;
          Alcotest.test_case "msh" `Quick test_vm_msh;
          Alcotest.test_case "jumps" `Quick test_vm_jumps;
          Alcotest.test_case "insn count" `Quick test_vm_insn_count;
        ] );
      ( "validate",
        [
          Alcotest.test_case "errors" `Quick test_validate_errors;
          Alcotest.test_case "ok" `Quick test_validate_ok;
        ] );
      ( "asm",
        [
          Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "backward jump" `Quick test_asm_backward_jump;
        ] );
      ( "filter",
        [
          Alcotest.test_case "accepts match" `Quick test_filter_accepts_match;
          Alcotest.test_case "rejects wrong fields" `Quick
            test_filter_rejects_wrong_fields;
          Alcotest.test_case "wildcard remote" `Quick
            test_filter_wildcard_remote;
          Alcotest.test_case "ip options" `Quick test_filter_ip_options;
          Alcotest.test_case "fragments" `Quick test_filter_fragments;
          Alcotest.test_case "udp" `Quick test_filter_udp;
          Alcotest.test_case "arp" `Quick test_filter_arp;
          Alcotest.test_case "icmp" `Quick test_filter_icmp;
          Alcotest.test_case "short packet" `Quick test_filter_short_packet;
          QCheck_alcotest.to_alcotest prop_session_exactness;
          QCheck_alcotest.to_alcotest prop_validated_programs_run_safely;
        ] );
      ( "fastpath",
        [
          QCheck_alcotest.to_alcotest prop_compile_matches_interpreter;
          QCheck_alcotest.to_alcotest prop_compile_view_matches_interpreter;
          QCheck_alcotest.to_alcotest prop_flat_matches_interpreter;
        ] );
    ]
