open Psd_util

let bytes_of_ints ints =
  let b = Bytes.create (List.length ints) in
  List.iteri (fun i v -> Bytes.set b i (Char.chr v)) ints;
  b

(* --- Checksum ------------------------------------------------------- *)

let test_checksum_rfc1071 () =
  (* Worked example from RFC 1071 section 3. *)
  let b = bytes_of_ints [ 0x00; 0x01; 0xf2; 0x03; 0xf4; 0xf5; 0xf6; 0xf7 ] in
  Alcotest.(check int)
    "rfc1071 vector" 0x220d
    (Checksum.of_bytes b ~off:0 ~len:8)

let test_checksum_odd_length () =
  let b = bytes_of_ints [ 0x01; 0x02; 0x03 ] in
  (* 0x0102 + 0x0300 = 0x0402 -> complement 0xfbfd *)
  Alcotest.(check int) "odd" 0xfbfd (Checksum.of_bytes b ~off:0 ~len:3)

let test_checksum_zero () =
  let b = Bytes.make 4 '\x00' in
  Alcotest.(check int) "all-zero" 0xffff (Checksum.of_bytes b ~off:0 ~len:4)

let test_checksum_incremental () =
  let b = bytes_of_ints [ 0xde; 0xad; 0xbe; 0xef; 0x12; 0x34 ] in
  let whole = Checksum.of_bytes b ~off:0 ~len:6 in
  let acc = Checksum.add_bytes Checksum.empty b ~off:0 ~len:2 in
  let acc = Checksum.add_bytes acc b ~off:2 ~len:4 in
  Alcotest.(check int) "split = whole" whole (Checksum.finish acc);
  let acc = Checksum.add_u16 Checksum.empty 0xdead in
  let acc = Checksum.add_u16 acc 0xbeef in
  let acc = Checksum.add_u16 acc 0x1234 in
  Alcotest.(check int) "u16 = bytes" whole (Checksum.finish acc)

let test_checksum_verify_roundtrip () =
  (* Store complement at an offset; the whole range must then verify. *)
  let b = bytes_of_ints [ 0x45; 0x00; 0x00; 0x1c; 0x00; 0x00; 0x00; 0x00 ] in
  let c = Checksum.of_bytes b ~off:0 ~len:8 in
  Codec.set_u16 b 4 c;
  Alcotest.(check bool) "validates" true (Checksum.valid b ~off:0 ~len:8)

let test_checksum_bounds () =
  let b = Bytes.create 4 in
  Alcotest.check_raises "oob" (Invalid_argument "Checksum.add_bytes")
    (fun () -> ignore (Checksum.of_bytes b ~off:2 ~len:4))

let prop_checksum_valid_after_store =
  QCheck.Test.make ~name:"checksum: storing complement validates" ~count:200
    QCheck.(list_of_size Gen.(2 -- 64) (int_bound 255))
    (fun ints ->
      let ints = 0 :: 0 :: ints in
      let b = bytes_of_ints ints in
      let len = Bytes.length b in
      let c = Checksum.of_bytes b ~off:0 ~len in
      Codec.set_u16 b 0 c;
      Checksum.valid b ~off:0 ~len)

(* --- differential: word-at-a-time checksum vs byte-at-a-time --------- *)

(* Independent byte-at-a-time reference (the pre-fast-path algorithm,
   re-derived here rather than shared with the implementation). *)
let ref_add_bytes acc b ~off ~len =
  let acc = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc :=
      !acc
      + (Char.code (Bytes.get b !i) lsl 8)
      + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let ref_finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

let gen_checksum_case =
  QCheck.Gen.(
    (* sizes straddling the word-at-a-time threshold, odd offsets and odd
       lengths included *)
    int_bound 4000 >>= fun size ->
    map Bytes.unsafe_of_string (string_size ~gen:char (return size))
    >>= fun b ->
    int_bound size >>= fun off ->
    int_bound (size - off) >>= fun len ->
    int_bound 0xffff >>= fun seed -> return (b, off, len, seed))

let prop_checksum_matches_reference =
  QCheck.Test.make ~name:"checksum: word-at-a-time equals reference"
    ~count:2000
    (QCheck.make gen_checksum_case)
    (fun (b, off, len, seed) ->
      let acc0 = Checksum.add_u16 Checksum.empty seed in
      Checksum.finish (Checksum.add_bytes acc0 b ~off ~len)
      = ref_finish (ref_add_bytes seed b ~off ~len))

let prop_checksum_chained_matches_reference =
  (* split at a random even boundary: accumulator chaining across calls *)
  QCheck.Test.make ~name:"checksum: chained add_bytes equals reference"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(pair gen_checksum_case (int_bound 2000)))
    (fun ((b, off, len, seed), cut) ->
      let cut = 2 * (min cut len / 2) in
      let acc0 = Checksum.add_u16 Checksum.empty seed in
      let acc = Checksum.add_bytes acc0 b ~off ~len:cut in
      let acc = Checksum.add_bytes acc b ~off:(off + cut) ~len:(len - cut) in
      Checksum.finish acc = ref_finish (ref_add_bytes seed b ~off ~len))

let prop_checksum_update_agrees_with_recompute =
  QCheck.Test.make
    ~name:"checksum: rfc1624 update equals recomputation" ~count:1000
    QCheck.(
      triple
        (list_of_size Gen.(4 -- 20) (int_bound 255))
        small_nat (int_bound 0xffff))
    (fun (ints, field_idx, new_val) ->
      (* an even-length buffer with a guaranteed nonzero byte, a stored
         checksum at word 0 and a rewritten 16-bit field elsewhere *)
      let ints = 0 :: 0 :: 0x45 :: 0x17 :: ints in
      let ints = if List.length ints mod 2 = 0 then ints else ints @ [ 0 ] in
      let b = bytes_of_ints ints in
      let len = Bytes.length b in
      let c = Checksum.of_bytes b ~off:0 ~len in
      Codec.set_u16 b 0 c;
      let words = len / 2 in
      let field = 2 * (1 + (field_idx mod (words - 1))) in
      let old = Codec.get_u16 b field in
      Codec.set_u16 b field new_val;
      let updated = Checksum.update ~cksum:c ~old ~new_:new_val in
      (* recompute over the buffer with the checksum field zeroed *)
      Codec.set_u16 b 0 0;
      let recomputed = Checksum.of_bytes b ~off:0 ~len in
      Codec.set_u16 b 0 updated;
      updated = recomputed && Checksum.valid b ~off:0 ~len)

(* --- Codec ---------------------------------------------------------- *)

let test_codec_roundtrip () =
  let b = Bytes.create 16 in
  Codec.set_u8 b 0 0xab;
  Codec.set_u16 b 1 0xcdef;
  Codec.set_u32 b 3 0xdeadbeefl;
  Codec.set_u32i b 7 0x01020304;
  Alcotest.(check int) "u8" 0xab (Codec.get_u8 b 0);
  Alcotest.(check int) "u16" 0xcdef (Codec.get_u16 b 1);
  Alcotest.(check int32) "u32" 0xdeadbeefl (Codec.get_u32 b 3);
  Alcotest.(check int) "u32i" 0x01020304 (Codec.get_u32i b 7)

let test_codec_u32i_high_bit () =
  let b = Bytes.create 4 in
  Codec.set_u32i b 0 0xffffffff;
  Alcotest.(check int) "high bit" 0xffffffff (Codec.get_u32i b 0)

let test_codec_truncation () =
  let b = Bytes.create 8 in
  Codec.set_u16 b 0 0x12345;
  Alcotest.(check int) "u16 trunc" 0x2345 (Codec.get_u16 b 0);
  Codec.set_u8 b 2 0x1ff;
  Alcotest.(check int) "u8 trunc" 0xff (Codec.get_u8 b 2)

let test_hexdump () =
  let b = Bytes.of_string "Hello, world! \x01\x02extra" in
  let s = Codec.hexdump b ~off:0 ~len:(Bytes.length b) in
  Alcotest.(check bool) "contains ascii" true
    (String.length s > 0
    && String.length (String.concat "" (String.split_on_char 'H' s)) < String.length s)

(* --- Heap ----------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5; 3; 8; 1; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 9; 8; 5; 3; 2; 1 ] !out

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:7 v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek_key h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap: pop order is sorted" ~count:200
    QCheck.(list int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare keys)

(* --- Stats ---------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.max s);
  Alcotest.(check (float 1e-9)) "total" 15. (Stats.total s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "p50" 3. (Stats.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile s 100.)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s))

(* --- Ring ----------------------------------------------------------- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check bool) "push1" true (Ring.push r 1);
  Alcotest.(check bool) "push2" true (Ring.push r 2);
  Alcotest.(check bool) "push3" true (Ring.push r 3);
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check bool) "push4 fails" false (Ring.push r 4);
  Alcotest.(check (option int)) "pop1" (Some 1) (Ring.pop r);
  Alcotest.(check bool) "push5" true (Ring.push r 5);
  Alcotest.(check (option int)) "pop2" (Some 2) (Ring.pop r);
  Alcotest.(check (option int)) "pop3" (Some 3) (Ring.pop r);
  Alcotest.(check (option int)) "pop5" (Some 5) (Ring.pop r);
  Alcotest.(check (option int)) "empty" None (Ring.pop r)

let test_ring_wraparound_iter () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 4 do
    ignore (Ring.push r i)
  done;
  ignore (Ring.pop r);
  ignore (Ring.pop r);
  ignore (Ring.push r 5);
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int)) "iter order" [ 3; 4; 5 ] (List.rev !seen)

let prop_ring_behaves_like_queue =
  QCheck.Test.make ~name:"ring: equivalent to bounded queue" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let cap = 5 in
      let r = Ring.create ~capacity:cap in
      let q = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            let ok = Ring.push r v in
            let qok = Queue.length q < cap in
            if qok then Queue.push v q;
            ok = qok
          end
          else
            let a = Ring.pop r in
            let b = Queue.take_opt q in
            a = b)
        ops)

(* --- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_differs () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different" true (Rng.next a <> Rng.next b)

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of range"
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range"
  done

let test_rng_split_independent () =
  let r = Rng.create ~seed:9 in
  let r2 = Rng.split r in
  let x = Rng.next r and y = Rng.next r2 in
  Alcotest.(check bool) "streams differ" true (x <> y)

(* Copy accounting must survive concurrent charges: every count from
   every domain lands in the totals (atomic counters, and sums are
   interleaving-independent). *)
let test_copies_multi_domain () =
  Psd_util.Copies.reset ();
  let per_domain = 10_000 and ndom = 4 in
  let doms =
    Array.init ndom (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Psd_util.Copies.count Psd_util.Copies.Wire 64;
              Psd_util.Copies.count Psd_util.Copies.Rx_ring ~n:2 128
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "wire copies" (ndom * per_domain)
    (Psd_util.Copies.copies Psd_util.Copies.Wire);
  Alcotest.(check int) "wire bytes"
    (ndom * per_domain * 64)
    (Psd_util.Copies.bytes Psd_util.Copies.Wire);
  Alcotest.(check int) "ring copies"
    (ndom * per_domain * 2)
    (Psd_util.Copies.copies Psd_util.Copies.Rx_ring);
  Alcotest.(check int) "ring bytes"
    (ndom * per_domain * 128)
    (Psd_util.Copies.bytes Psd_util.Copies.Rx_ring);
  Psd_util.Copies.reset ();
  Alcotest.(check int) "reset" 0
    (Psd_util.Copies.copies Psd_util.Copies.Wire)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "psd_util"
    [
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 vector" `Quick test_checksum_rfc1071;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          Alcotest.test_case "all zero" `Quick test_checksum_zero;
          Alcotest.test_case "incremental" `Quick test_checksum_incremental;
          Alcotest.test_case "verify roundtrip" `Quick
            test_checksum_verify_roundtrip;
          Alcotest.test_case "bounds" `Quick test_checksum_bounds;
        ]
        @ qsuite
            [
              prop_checksum_valid_after_store;
              prop_checksum_matches_reference;
              prop_checksum_chained_matches_reference;
              prop_checksum_update_agrees_with_recompute;
            ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "u32i high bit" `Quick test_codec_u32i_high_bit;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          Alcotest.test_case "hexdump" `Quick test_hexdump;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
        ]
        @ qsuite [ prop_heap_sorts ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "wraparound iter" `Quick
            test_ring_wraparound_iter;
        ]
        @ qsuite [ prop_ring_behaves_like_queue ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed differs" `Quick test_rng_seed_differs;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "copies",
        [
          Alcotest.test_case "multi-domain counts survive" `Quick
            test_copies_multi_domain;
        ] );
    ]
