open Psd_tcp
open Psd_mbuf
open Psd_test_support.Harness

let ( => ) name b = Alcotest.(check bool) name true b

(* --- Seq -------------------------------------------------------------- *)

let test_seq_wraparound () =
  let near_top = 0xffff_fff0 in
  let wrapped = Seq.add near_top 0x20 in
  "wraps" => (wrapped = 0x10);
  "lt across wrap" => Seq.lt near_top wrapped;
  "gt across wrap" => Seq.gt wrapped near_top;
  Alcotest.(check int) "diff" 0x20 (Seq.diff wrapped near_top);
  Alcotest.(check int) "negative diff" (-0x20) (Seq.diff near_top wrapped)

let prop_seq_ordering =
  QCheck.Test.make ~name:"seq: add then diff roundtrips" ~count:500
    QCheck.(pair (int_bound 0xfffffff) (int_bound 60000))
    (fun (base, n) ->
      let s = Seq.add base n in
      Seq.diff s base = n && Seq.geq s base && (n = 0 || Seq.gt s base))

let test_seq_in_window () =
  "start" => Seq.in_window 100 ~base:100 ~size:10;
  "end excl" => not (Seq.in_window 110 ~base:100 ~size:10);
  "wrap" => Seq.in_window 3 ~base:0xffff_fffa ~size:20

(* --- Segment codec ----------------------------------------------------- *)

let test_segment_roundtrip () =
  let src = Psd_ip.Addr.of_string "10.0.0.1"
  and dst = Psd_ip.Addr.of_string "10.0.0.2" in
  let seg =
    {
      Segment.src_port = 1234;
      dst_port = 80;
      seq = 0xdeadbeef;
      ack = 0x01020304;
      flags = { Segment.no_flags with Segment.ack = true; psh = true };
      window = 8192;
      mss = None;
    }
  in
  let packet = Segment.encode seg ~src ~dst ~payload:(Mbuf.of_string "data!") in
  match Segment.decode (Mbuf.to_bytes packet) ~src ~dst with
  | Error e -> Alcotest.failf "%a" Segment.pp_decode_error e
  | Ok (seg', payload) ->
    Alcotest.(check int) "sport" 1234 seg'.Segment.src_port;
    Alcotest.(check int) "seq" 0xdeadbeef seg'.Segment.seq;
    Alcotest.(check int) "ack" 0x01020304 seg'.Segment.ack;
    "psh" => seg'.Segment.flags.Segment.psh;
    Alcotest.(check string) "payload" "data!" (Mbuf.to_string payload)

let test_segment_mss_option () =
  let src = Psd_ip.Addr.of_string "10.0.0.1"
  and dst = Psd_ip.Addr.of_string "10.0.0.2" in
  let seg =
    {
      Segment.src_port = 1;
      dst_port = 2;
      seq = 0;
      ack = 0;
      flags = { Segment.no_flags with Segment.syn = true };
      window = 1000;
      mss = Some 1460;
    }
  in
  let packet = Segment.encode seg ~src ~dst ~payload:(Mbuf.empty ()) in
  match Segment.decode (Mbuf.to_bytes packet) ~src ~dst with
  | Ok (seg', _) -> Alcotest.(check (option int)) "mss" (Some 1460) seg'.Segment.mss
  | Error e -> Alcotest.failf "%a" Segment.pp_decode_error e

let test_segment_checksum_detects () =
  let src = Psd_ip.Addr.of_string "10.0.0.1"
  and dst = Psd_ip.Addr.of_string "10.0.0.2" in
  let seg =
    {
      Segment.src_port = 1;
      dst_port = 2;
      seq = 7;
      ack = 0;
      flags = Segment.no_flags;
      window = 0;
      mss = None;
    }
  in
  let packet =
    Mbuf.to_bytes (Segment.encode seg ~src ~dst ~payload:(Mbuf.of_string "xy"))
  in
  Bytes.set packet 21 'z';
  match Segment.decode packet ~src ~dst with
  | Error Segment.Bad_checksum -> ()
  | Error e ->
    Alcotest.failf "expected Bad_checksum, got %a" Segment.pp_decode_error e
  | Ok _ -> Alcotest.fail "corruption accepted"

let test_decode_error_classes () =
  let src = Psd_ip.Addr.of_string "10.0.0.1"
  and dst = Psd_ip.Addr.of_string "10.0.0.2" in
  (match Segment.decode (Bytes.create 10) ~src ~dst with
  | Error Segment.Truncated -> ()
  | _ -> Alcotest.fail "short buffer must be Truncated");
  let seg =
    {
      Segment.src_port = 1;
      dst_port = 2;
      seq = 7;
      ack = 0;
      flags = Segment.no_flags;
      window = 0;
      mss = None;
    }
  in
  let packet =
    Mbuf.to_bytes (Segment.encode seg ~src ~dst ~payload:(Mbuf.of_string "xy"))
  in
  (* data offset claiming 60 header bytes in a 22-byte segment: framing,
     not checksum, even though the checksum is now stale too *)
  Bytes.set_uint8 packet 12 0xf0;
  match Segment.decode packet ~src ~dst with
  | Error Segment.Bad_offset -> ()
  | Error e ->
    Alcotest.failf "expected Bad_offset, got %a" Segment.pp_decode_error e
  | Ok _ -> Alcotest.fail "impossible offset accepted"

(* --- connection establishment ------------------------------------------ *)

(* Server that accepts everything on [port], records into a sink, and —
   like a real socket layer — consumes received data so the window
   reopens. *)
let autoserver net ?(rcv_assign = fun _ -> ()) port =
  let sink = make_sink () in
  let listener = Tcp.listen net.b.tcp ~port () in
  Tcp.on_ready listener (fun () ->
      Psd_sim.Engine.spawn net.eng ~name:"accept" (fun () ->
          match Tcp.accept_ready listener with
          | Some pcb ->
            let h = sink_handlers sink in
            Tcp.set_handlers pcb
              {
                h with
                Tcp.deliver =
                  (fun _ m ->
                    let n = Mbuf.length m in
                    Buffer.add_string sink.buf (Mbuf.to_string m);
                    (* upcalls run under the stack lock: consume later *)
                    Psd_sim.Engine.spawn net.eng ~name:"consume" (fun () ->
                        Tcp.user_consumed pcb n));
              };
            rcv_assign pcb
          | None -> ()));
  (sink, listener)

let test_handshake () =
  let net = create () in
  let server_pcb = ref None in
  let _server_sink, _l =
    autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80
  in
  let client_sink = make_sink () in
  let pcb = ref None in
  Psd_sim.Engine.spawn net.eng (fun () ->
      pcb :=
        Some
          (Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
             ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()));
  run_for net (Psd_sim.Time.ms 20);
  "client established" => client_sink.established;
  "server accepted+established"
  => (match !server_pcb with
     | Some p -> Tcp.state p = Tcp.Established
     | None -> false);
  (match !pcb with
  | Some p -> Alcotest.(check string) "state" "ESTABLISHED"
                (Format.asprintf "%a" Tcp.pp_state (Tcp.state p))
  | None -> Alcotest.fail "no pcb");
  (* exactly one connection on each side *)
  Alcotest.(check int) "a pcbs" 1 (Tcp.active_pcbs net.a.tcp);
  Alcotest.(check int) "b pcbs" 1 (Tcp.active_pcbs net.b.tcp)

let test_connect_refused () =
  let net = create () in
  let sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      ignore
        (Tcp.connect net.a.tcp ~handlers:(sink_handlers sink) ~src_port:5000
           ~dst:net.b.addr ~dst_port:81 ()));
  run_for net (Psd_sim.Time.ms 20);
  "refused" => (sink.errors = [ Tcp.Refused ]);
  Alcotest.(check int) "rst sent" 1 (Tcp.stats net.b.tcp).Tcp.rst_out

let test_handshake_with_syn_loss () =
  let net = create () in
  (* drop the first packet on the wire: the SYN *)
  drop_nth net 1;
  let server_pcb = ref None in
  let _, _ = autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80 in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      ignore
        (Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
           ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()));
  run_for net (Psd_sim.Time.ms 500);
  "established despite SYN loss" => client_sink.established;
  "server side up"
  => (match !server_pcb with
     | Some p -> Tcp.state p = Tcp.Established
     | None -> false)

let test_simultaneous_open () =
  let net = create () in
  let sa = make_sink () and sb = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      ignore
        (Tcp.connect net.a.tcp ~handlers:(sink_handlers sa) ~src_port:5000
           ~dst:net.b.addr ~dst_port:6000 ()));
  Psd_sim.Engine.spawn net.eng (fun () ->
      ignore
        (Tcp.connect net.b.tcp ~handlers:(sink_handlers sb) ~src_port:6000
           ~dst:net.a.addr ~dst_port:5000 ()));
  run_for net (Psd_sim.Time.sec 2);
  "a established" => sa.established;
  "b established" => sb.established

let test_backlog_limit () =
  let net = create () in
  let listener = Tcp.listen net.b.tcp ~port:80 ~backlog:2 () in
  for i = 0 to 4 do
    Psd_sim.Engine.spawn net.eng (fun () ->
        ignore
          (Tcp.connect net.a.tcp ~src_port:(6000 + i) ~dst:net.b.addr
             ~dst_port:80 ()))
  done;
  run_for net (Psd_sim.Time.ms 10);
  "backlog respected" => (Tcp.pending listener <= 2)

(* --- data transfer ------------------------------------------------------ *)

let oneway_transfer ?(nodelay = true) ?seed ?chunks payload =
  let net = create ?seed () in
  let server_sink, _ = autoserver net 80 in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Tcp.set_nodelay pcb nodelay;
      (* wait for establishment *)
      let cond = Psd_sim.Cond.create net.eng in
      let h = sink_handlers client_sink in
      Tcp.set_handlers pcb
        {
          h with
          Tcp.on_established =
            (fun _ ->
              client_sink.established <- true;
              Psd_sim.Cond.broadcast cond);
          on_acked =
            (fun _ n ->
              client_sink.acked <- client_sink.acked + n;
              Psd_sim.Cond.broadcast cond);
        };
      if not client_sink.established then Psd_sim.Cond.wait cond;
      (match chunks with
      | None -> Tcp.send pcb (Mbuf.of_string payload)
      | Some sizes ->
        let off = ref 0 in
        List.iter
          (fun sz ->
            let sz = min sz (String.length payload - !off) in
            if sz > 0 then begin
              Tcp.send pcb (Mbuf.of_string (String.sub payload !off sz));
              off := !off + sz
            end)
          sizes;
        if !off < String.length payload then
          Tcp.send pcb
            (Mbuf.of_string
               (String.sub payload !off (String.length payload - !off))));
      (* wait until all acked *)
      while client_sink.acked < String.length payload do
        Psd_sim.Cond.wait cond
      done;
      Tcp.shutdown_send pcb);
  run_for net (Psd_sim.Time.sec 30);
  (net, server_sink, client_sink)

let test_small_transfer () =
  let _, server, _ = oneway_transfer "hello, world" in
  Alcotest.(check string) "payload" "hello, world" (contents server);
  "eof delivered" => server.eof

let test_empty_close () =
  let _, server, _ = oneway_transfer "" in
  Alcotest.(check string) "payload" "" (contents server);
  "eof" => server.eof

let test_large_transfer () =
  let payload = String.init 200_000 (fun i -> Char.chr (i * 31 mod 256)) in
  let net, server, _ = oneway_transfer payload in
  Alcotest.(check int) "length" (String.length payload)
    (String.length (contents server));
  "content" => String.equal payload (contents server);
  (* Sliding window must bound in-flight data: many segments. *)
  "many segments" => ((Tcp.stats net.a.tcp).Tcp.segs_out > 100)

let test_mss_respected () =
  let payload = String.make 10_000 'x' in
  let net, server, _ = oneway_transfer payload in
  ignore server;
  let st = Tcp.stats net.a.tcp in
  (* 10000 bytes / 1460 mss -> at least 7 data segments *)
  "segmented" => (st.Tcp.segs_out >= 7)

let test_echo_bidirectional () =
  let net = create () in
  let server_pcb = ref None in
  let server_sink = make_sink () in
  let listener = Tcp.listen net.b.tcp ~port:7 () in
  (* echo server: send back whatever arrives *)
  Tcp.on_ready listener (fun () ->
      Psd_sim.Engine.spawn net.eng ~name:"echo" (fun () ->
          match Tcp.accept_ready listener with
          | Some pcb ->
            server_pcb := Some pcb;
            let h = sink_handlers server_sink in
            Tcp.set_handlers pcb
              {
                h with
                Tcp.deliver =
                  (fun _ m ->
                    Buffer.add_string server_sink.buf (Mbuf.to_string m);
                    Psd_sim.Engine.spawn net.eng (fun () ->
                        Tcp.send pcb
                          (Mbuf.of_string (Mbuf.to_string m))));
              }
          | None -> ()));
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:7 ()
      in
      Tcp.set_nodelay pcb true;
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string "ping-1;");
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string "ping-2;"));
  run_for net (Psd_sim.Time.sec 2);
  Alcotest.(check string) "server saw" "ping-1;ping-2;" (contents server_sink);
  Alcotest.(check string) "client got echo" "ping-1;ping-2;"
    (contents client_sink)

let test_data_loss_retransmit () =
  let net = create () in
  let server_sink, _ = autoserver net 80 in
  (* drop the first TCP segment carrying >= 100 bytes of data *)
  drop_nth net ~pred:(tcp_data_at_least 100) 1;
  let payload = String.init 5_000 (fun i -> Char.chr (i mod 251)) in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string payload));
  run_for net (Psd_sim.Time.sec 5);
  "delivered despite loss" => String.equal payload (contents server_sink);
  "retransmitted" => ((Tcp.stats net.a.tcp).Tcp.rexmt_segs >= 1)

let test_fast_retransmit () =
  let net = create () in
  let server_sink, _ = autoserver net 80 in
  (* Lose a full-size segment once the congestion window has opened; the
     following segments generate duplicate ACKs that trigger fast
     retransmit before the RTO. *)
  drop_nth net ~pred:(tcp_data_at_least 1000) 8;
  let payload = String.init 60_000 (fun i -> Char.chr (i * 7 mod 256)) in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string payload));
  run_for net (Psd_sim.Time.sec 10);
  "delivered" => String.equal payload (contents server_sink);
  let st = Tcp.stats net.a.tcp in
  "dup acks seen" => (st.Tcp.dup_acks_in >= 3);
  "fast retransmit fired" => (st.Tcp.fast_rexmt >= 1);
  "receiver reassembled ooo" => ((Tcp.stats net.b.tcp).Tcp.ooo_segs >= 1)

let test_flow_control_zero_window () =
  let net = create () in
  (* Server with a tiny receive buffer that consumes nothing at first. *)
  let server_pcb = ref None in
  let received = Buffer.create 64 in
  let listener = Tcp.listen net.b.tcp ~port:80 () in
  Tcp.on_ready listener (fun () ->
      Psd_sim.Engine.spawn net.eng (fun () ->
          match Tcp.accept_ready listener with
          | Some pcb ->
            server_pcb := Some pcb;
            Tcp.set_handlers pcb
              {
                Tcp.null_handlers with
                Tcp.deliver =
                  (fun _ m -> Buffer.add_string received (Mbuf.to_string m));
              }
          | None -> ()));
  let payload = String.make 100_000 'q' in
  let client_sink = make_sink () in
  let stalled_sndq = ref 0 in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string payload);
      (* give it time to stall against the closed window *)
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.sec 2);
      stalled_sndq := Tcp.sndq_length pcb;
      (* now drain the receiver as data arrives *)
      match !server_pcb with
      | Some spcb ->
        let rec drain () =
          let n = Tcp.rcv_buffered spcb in
          if n > 0 then Tcp.user_consumed spcb n;
          if Buffer.length received < String.length payload then begin
            Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
            drain ()
          end
        in
        drain ()
      | None -> Alcotest.fail "no server pcb");
  run_for net (Psd_sim.Time.sec 120);
  (* sender must have been throttled by the 24KB receive buffer *)
  "sender stalled" => (!stalled_sndq > String.length payload - 30_000);
  "eventually delivered" => (Buffer.length received = String.length payload)

let test_nagle_coalesces () =
  let count_segments nodelay =
    let payload = String.make 400 'n' in
    let chunks = List.init 40 (fun _ -> 10) in
    let net, server, _ = oneway_transfer ~nodelay ~chunks payload in
    "delivered" => String.equal payload (contents server);
    (Tcp.stats net.a.tcp).Tcp.segs_out
  in
  let with_nagle = count_segments false in
  let without_nagle = count_segments true in
  "nagle sends fewer segments" => (with_nagle < without_nagle)

let test_delayed_ack () =
  let payload = String.make 1000 'd' in
  (* single small write: the lone segment's ACK must come from the
     delayed-ack timer *)
  let net, server, _ = oneway_transfer payload in
  "delivered" => String.equal payload (contents server);
  "some acks delayed" => ((Tcp.stats net.b.tcp).Tcp.acks_delayed >= 1)

(* --- teardown ----------------------------------------------------------- *)

let test_graceful_close () =
  let net = create () in
  let server_pcb = ref None in
  let server_sink, _ =
    autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80
  in
  let client_sink = make_sink () in
  let client_pcb = ref None in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      client_pcb := Some pcb;
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string "bye");
      Tcp.shutdown_send pcb;
      (* server sees EOF, closes its side too *)
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 50);
      match !server_pcb with
      | Some spcb -> Tcp.shutdown_send spcb
      | None -> Alcotest.fail "no server pcb");
  run_for net (Psd_sim.Time.ms 200);
  "server got data" => String.equal "bye" (contents server_sink);
  "server saw eof" => server_sink.eof;
  "client saw eof" => client_sink.eof;
  (* client entered TIME_WAIT, which expires after 2MSL (100ms here) *)
  run_for net (Psd_sim.Time.sec 2);
  Alcotest.(check int) "a pcbs drained" 0 (Tcp.active_pcbs net.a.tcp);
  Alcotest.(check int) "b pcbs drained" 0 (Tcp.active_pcbs net.b.tcp)

let test_simultaneous_close () =
  let net = create () in
  let server_pcb = ref None in
  let _, _ = autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80 in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      (* both sides close at the same instant *)
      Psd_sim.Engine.spawn net.eng (fun () ->
          match !server_pcb with
          | Some spcb -> Tcp.shutdown_send spcb
          | None -> ());
      Tcp.shutdown_send pcb);
  run_for net (Psd_sim.Time.sec 5);
  Alcotest.(check int) "a drained" 0 (Tcp.active_pcbs net.a.tcp);
  Alcotest.(check int) "b drained" 0 (Tcp.active_pcbs net.b.tcp)

let test_retransmitted_fin_single_eof () =
  (* Regression: when the ACK of the peer's FIN is lost, the peer
     retransmits the FIN into a state whose rcv_nxt already sits past
     it. That duplicate must re-ACK (and in TIME-WAIT restart 2MSL) —
     it must NOT run the FIN machinery again and hand the application a
     second EOF. *)
  let net = create () in
  let server_pcb = ref None in
  let _sink, _ =
    autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80
  in
  let eofs = ref 0 in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let h = sink_handlers client_sink in
      let pcb =
        Tcp.connect net.a.tcp
          ~handlers:{ h with Tcp.deliver_fin = (fun _ -> incr eofs) }
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      Tcp.shutdown_send pcb;
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      (* server closes too; drop the client's ACK of the server FIN so
         the FIN is retransmitted into the client's TIME-WAIT *)
      drop_nth net 2;
      match !server_pcb with
      | Some spcb -> Tcp.shutdown_send spcb
      | None -> ());
  run_for net (Psd_sim.Time.sec 10);
  Alcotest.(check int) "exactly one EOF" 1 !eofs;
  Alcotest.(check int) "no resets" 0 (Tcp.stats net.a.tcp).Tcp.rst_out;
  "server FIN was retransmitted"
  => ((Tcp.stats net.b.tcp).Tcp.rexmt_segs >= 1);
  Alcotest.(check int) "a drained" 0 (Tcp.active_pcbs net.a.tcp);
  Alcotest.(check int) "b drained" 0 (Tcp.active_pcbs net.b.tcp)

(* Close-sequence property: both ends close — simultaneously or with
   arbitrary skew — over a wire with random per-packet latency
   (reordering) and early random drops (retransmitted FINs arriving in
   states that already processed them). Whatever the interleaving, each
   side must see exactly one EOF, the byte streams must survive intact,
   and both connection tables must drain through TIME-WAIT. *)
let prop_close_sequence =
  QCheck.Test.make ~name:"tcp: both-ends close converges under drop/reorder"
    ~count:25
    QCheck.(triple small_int (int_range 0 15) (int_range 0 50))
    (fun (seed, drop_pct, skew_ms) ->
      let eng = Psd_sim.Engine.create ~seed:(seed + 900) () in
      let a = make_host eng "closer-a" "10.0.0.1" in
      let b = make_host eng "closer-b" "10.0.0.2" in
      let rng =
        Psd_util.Rng.create ~seed:((seed * 37) + (drop_pct * 5) + skew_ms)
      in
      let wire src dst =
        Psd_ip.Ip.set_transmit src.ip (fun ~next_hop:_ ~iface:_ m ->
            let packet = Psd_mbuf.Mbuf.to_bytes m in
            let dropped =
              Psd_sim.Engine.now eng < Psd_sim.Time.sec 3
              && Psd_util.Rng.int rng 100 < drop_pct
            in
            if not dropped then
              let delay = 30_000 + Psd_util.Rng.int rng 60_000 in
              Psd_sim.Engine.schedule eng delay (fun () ->
                  Psd_sim.Engine.spawn eng (fun () ->
                      Psd_ip.Ip.input dst.ip packet ~off:0
                        ~len:(Bytes.length packet))))
      in
      wire a b;
      wire b a;
      let a_eofs = ref 0 and b_eofs = ref 0 in
      let a_got = Buffer.create 64 and b_got = Buffer.create 64 in
      let consumer pcbref eofs got =
        {
          Tcp.null_handlers with
          Tcp.deliver =
            (fun _ m ->
              let n = Mbuf.length m in
              Buffer.add_string got (Mbuf.to_string m);
              Psd_sim.Engine.spawn eng (fun () ->
                  match !pcbref with
                  | Some p -> Tcp.user_consumed p n
                  | None -> ()));
          deliver_fin = (fun _ -> incr eofs);
        }
      in
      let b_pcb = ref None in
      let listener = Tcp.listen b.tcp ~port:80 () in
      Tcp.on_ready listener (fun () ->
          Psd_sim.Engine.spawn eng (fun () ->
              match Tcp.accept_ready listener with
              | None -> ()
              | Some p ->
                b_pcb := Some p;
                Tcp.set_handlers p (consumer b_pcb b_eofs b_got);
                Psd_sim.Engine.spawn eng (fun () ->
                    Tcp.send p (Mbuf.of_string "server-goodbye");
                    Psd_sim.Engine.sleep eng (Psd_sim.Time.ms skew_ms);
                    Tcp.shutdown_send p)));
      let a_pcb = ref None in
      Psd_sim.Engine.spawn eng (fun () ->
          let established = ref false in
          let cond = Psd_sim.Cond.create eng in
          let h = consumer a_pcb a_eofs a_got in
          let p =
            Tcp.connect a.tcp
              ~handlers:
                {
                  h with
                  Tcp.on_established =
                    (fun _ ->
                      established := true;
                      Psd_sim.Cond.broadcast cond);
                }
              ~src_port:5000 ~dst:b.addr ~dst_port:80 ()
          in
          a_pcb := Some p;
          if not !established then Psd_sim.Cond.wait cond;
          Tcp.send p (Mbuf.of_string "client-goodbye");
          Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 25);
          Tcp.shutdown_send p);
      Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 120);
      !a_eofs = 1 && !b_eofs = 1
      && String.equal (Buffer.contents b_got) "client-goodbye"
      && String.equal (Buffer.contents a_got) "server-goodbye"
      && Tcp.active_pcbs a.tcp = 0
      && Tcp.active_pcbs b.tcp = 0)

(* PCB pooling must be observationally invisible: the same randomized
   sequence of connect / exchange / close rounds over a lossy wire,
   run once with the free list enabled and once with it disabled, must
   produce identical byte streams, EOF counts, TCP counters, and
   virtual end times. Reuse makes this nontrivial — a recycled PCB
   must carry nothing from its previous life (timers, sequence state,
   flags), and the generation counter must keep any timer fire armed
   in that previous life dead. Sequential rounds force reuse: each
   round's PCBs drain through TIME_WAIT onto the free list before the
   next round connects. *)
let prop_pool_differential =
  QCheck.Test.make
    ~name:"tcp: pooled and unpooled runs produce identical transcripts"
    ~count:15
    QCheck.(triple small_int (int_range 0 10) (int_range 2 5))
    (fun (seed, drop_pct, rounds) ->
      let run_once pcb_pool =
        let net = create ~seed:(seed + 1300) ~pcb_pool () in
        let rng =
          Psd_util.Rng.create ~seed:((seed * 53) + (drop_pct * 7) + rounds)
        in
        net.tap <- (fun _ -> Psd_util.Rng.int rng 100 < drop_pct);
        let transcript = Buffer.create 256 in
        let server_sink, _ = autoserver net 80 in
        for r = 0 to rounds - 1 do
          let sink = make_sink () in
          let closed = ref false in
          Psd_sim.Engine.spawn net.eng (fun () ->
              let pcb =
                Tcp.connect net.a.tcp
                  ~handlers:(sink_handlers sink)
                  ~src_port:(5000 + r) ~dst:net.b.addr ~dst_port:80 ()
              in
              Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 30);
              if Tcp.can_send pcb then
                Tcp.send pcb (Mbuf.of_string (Printf.sprintf "round-%d" r));
              Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 30);
              Tcp.shutdown_send pcb;
              closed := true);
          (* bounded drain: on a clean wire both tables empty out
             through TIME_WAIT well inside this window; under drops a
             straggler is fine — both runs see the identical one *)
          let deadline = Psd_sim.Engine.now net.eng + Psd_sim.Time.sec 5 in
          while
            Psd_sim.Engine.now net.eng < deadline
            && not
                 (!closed
                 && Tcp.active_pcbs net.a.tcp = 0
                 && Tcp.active_pcbs net.b.tcp = 0)
          do
            run_for net (Psd_sim.Time.ms 50)
          done;
          Buffer.add_string transcript
            (Printf.sprintf "r%d eof=%b err=%d got=%d@%d " r sink.eof
               (List.length sink.errors)
               (Buffer.length sink.buf)
               (Psd_sim.Engine.now net.eng))
        done;
        let st t =
          let s = Tcp.stats t in
          ( s.Tcp.segs_out,
            s.Tcp.bytes_out,
            s.Tcp.segs_in,
            s.Tcp.bytes_in,
            s.Tcp.rexmt_segs,
            s.Tcp.rst_out )
        in
        ( ( Buffer.contents transcript,
            contents server_sink,
            server_sink.eof,
            st net.a.tcp,
            st net.b.tcp,
            Tcp.active_pcbs net.a.tcp,
            Tcp.active_pcbs net.b.tcp,
            Psd_sim.Engine.now net.eng ),
          Tcp.pool_stats net.a.tcp )
      in
      let pooled, (_, p_hits, p_puts, p_free) = run_once 1024 in
      let unpooled, (_, u_hits, u_puts, _) = run_once 0 in
      pooled = unpooled
      && p_free = p_puts - p_hits
      && u_hits = 0 && u_puts = 0
      (* reuse actually exercised: on a clean wire every round after
         the first connects out of the free list *)
      && (drop_pct > 0 || p_hits > 0))

let test_abort_resets_peer () =
  let net = create () in
  let server_sink, _ = autoserver net 80 in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      Tcp.abort pcb);
  run_for net (Psd_sim.Time.ms 100);
  "server reset" => (server_sink.errors = [ Tcp.Reset ]);
  Alcotest.(check int) "a drained" 0 (Tcp.active_pcbs net.a.tcp);
  Alcotest.(check int) "b drained" 0 (Tcp.active_pcbs net.b.tcp)

(* --- migration ----------------------------------------------------------- *)

let test_export_import_same_stack_roundtrip () =
  (* Sanity: export then immediately import into the same instance. *)
  let net = create () in
  let server_pcb = ref None in
  let server_sink, _ =
    autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80
  in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      Tcp.send pcb (Mbuf.of_string "before-");
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 50);
      (* migrate the CLIENT side *)
      let snap = Tcp.export pcb in
      "snapshot has size" => (Tcp.snapshot_size snap >= 96);
      Alcotest.(check int) "snap port" 5000 (Tcp.snapshot_local_port snap);
      let pcb' =
        Tcp.import net.a.tcp ~handlers:(sink_handlers client_sink) snap
      in
      Tcp.send pcb' (Mbuf.of_string "after");
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 50);
      Tcp.shutdown_send pcb');
  run_for net (Psd_sim.Time.sec 2);
  Alcotest.(check string) "continuity" "before-after" (contents server_sink);
  "eof" => server_sink.eof

let test_migration_between_stacks () =
  (* The paper's core mechanism: a connection established in one stack
     (the OS server) continues in another (the application library).
     Host B runs two stacks sharing address 10.0.0.2; a dispatch ref
     plays the role of the packet filter. *)
  let eng = Psd_sim.Engine.create () in
  let a = make_host eng "client" "10.0.0.1" in
  let b1 = make_host eng "b-server-stack" "10.0.0.2" in
  let b2 = make_host eng "b-app-stack" "10.0.0.2" in
  let b_active = ref b1 in
  let tap = ref (fun _ -> false) in
  Psd_ip.Ip.set_transmit a.ip (fun ~next_hop:_ ~iface:_ m ->
      let packet = Psd_mbuf.Mbuf.to_bytes m in
      if not (!tap packet) then
        Psd_sim.Engine.schedule eng 50_000 (fun () ->
            Psd_sim.Engine.spawn eng (fun () ->
                Psd_ip.Ip.input !b_active.ip packet ~off:0
                  ~len:(Bytes.length packet))));
  let to_a host =
    Psd_ip.Ip.set_transmit host.ip (fun ~next_hop:_ ~iface:_ m ->
        let packet = Psd_mbuf.Mbuf.to_bytes m in
        Psd_sim.Engine.schedule eng 50_000 (fun () ->
            Psd_sim.Engine.spawn eng (fun () ->
                Psd_ip.Ip.input a.ip packet ~off:0 ~len:(Bytes.length packet))))
  in
  to_a b1;
  to_a b2;
  let server_sink = make_sink () in
  let b1_pcb = ref None in
  let listener = Tcp.listen b1.tcp ~port:80 () in
  Tcp.on_ready listener (fun () ->
      Psd_sim.Engine.spawn eng (fun () ->
          match Tcp.accept_ready listener with
          | Some p ->
            Tcp.set_handlers p (sink_handlers server_sink);
            b1_pcb := Some p
          | None -> ()));
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn eng (fun () ->
      let pcb =
        Tcp.connect a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:(Psd_ip.Addr.of_string "10.0.0.2") ~dst_port:80
          ()
      in
      Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string "one,");
      Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 30);
      (* --- migrate the server-side session from b1 to b2 --- *)
      (match !b1_pcb with
      | Some p ->
        let snap = Tcp.export p in
        let p' = Tcp.import b2.tcp ~handlers:(sink_handlers server_sink) snap in
        b_active := b2;
        ignore p'
      | None -> Alcotest.fail "not accepted yet");
      (* continue the conversation: data must flow into the new stack *)
      Tcp.send pcb (Mbuf.of_string "two,");
      Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 30);
      Tcp.send pcb (Mbuf.of_string "three");
      Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 30);
      Tcp.shutdown_send pcb);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 2);
  Alcotest.(check string) "stream continuity across migration" "one,two,three"
    (contents server_sink);
  "eof in new stack" => server_sink.eof;
  Alcotest.(check int) "b1 released the session" 0 (Tcp.active_pcbs b1.tcp);
  Alcotest.(check int) "b2 owns the session" 1 (Tcp.active_pcbs b2.tcp)

let test_migration_with_unacked_data () =
  (* Export while data is in flight/unacked: the importing stack must
     retransmit from its own timers. *)
  let net = create () in
  let server_sink, _ = autoserver net 80 in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      (* drop everything while we send, so data stays unacked *)
      net.tap <- (fun _ -> true);
      Tcp.send pcb (Mbuf.of_string "resilient");
      (* export with the data unacknowledged *)
      let snap = Tcp.export pcb in
      "unacked data in snapshot" => (Tcp.snapshot_size snap >= 96 + 9);
      net.tap <- (fun _ -> false);
      let pcb' =
        Tcp.import net.a.tcp ~handlers:(sink_handlers client_sink) snap
      in
      ignore pcb');
  run_for net (Psd_sim.Time.sec 10);
  "data arrives after re-import" => String.equal "resilient" (contents server_sink)

(* --- property: arbitrary chunking preserves the stream ------------------ *)

let prop_stream_integrity =
  QCheck.Test.make ~name:"tcp: chunked sends preserve byte stream" ~count:15
    QCheck.(
      pair small_int (list_of_size Gen.(1 -- 12) (int_range 1 4000)))
    (fun (seed, sizes) ->
      let total = List.fold_left ( + ) 0 sizes in
      let payload = String.init total (fun i -> Char.chr (i * 13 mod 256)) in
      let _, server, _ =
        oneway_transfer ~seed:(seed + 1) ~chunks:sizes payload
      in
      String.equal payload (contents server) && server.eof)

(* --- window probing / teardown corners ----------------------------------- *)

let test_persist_probes_zero_window () =
  (* Receiver never consumes: the window closes; the sender must probe
     (persist timer) rather than deadlock, and resume when it reopens. *)
  let net = create () in
  let server_pcb = ref None in
  let received = Buffer.create 64 in
  let listener = Tcp.listen net.b.tcp ~port:80 () in
  Tcp.on_ready listener (fun () ->
      Psd_sim.Engine.spawn net.eng (fun () ->
          match Tcp.accept_ready listener with
          | Some pcb ->
            server_pcb := Some pcb;
            Tcp.set_handlers pcb
              {
                Tcp.null_handlers with
                Tcp.deliver =
                  (fun _ m -> Buffer.add_string received (Mbuf.to_string m));
              }
          | None -> ()));
  let payload = String.make 60_000 'w' in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 10);
      Tcp.send pcb (Mbuf.of_string payload);
      (* stall long enough for several persist intervals *)
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.sec 3);
      (* receiver wakes up and drains *)
      match !server_pcb with
      | Some spcb ->
        let rec drain () =
          let n = Tcp.rcv_buffered spcb in
          if n > 0 then Tcp.user_consumed spcb n;
          if Buffer.length received < String.length payload then begin
            Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
            drain ()
          end
        in
        drain ()
      | None -> Alcotest.fail "no server pcb");
  run_for net (Psd_sim.Time.sec 120);
  "all delivered after window reopened"
  => (Buffer.length received = String.length payload);
  (* while stalled, the sender emitted window probes *)
  "probes or retransmissions occurred"
  => ((Tcp.stats net.a.tcp).Tcp.rexmt_segs >= 1
     || (Tcp.stats net.a.tcp).Tcp.segs_out > 50)

let test_time_wait_handles_duplicate_fin () =
  (* Drop the client's final ACK once: the server retransmits its FIN and
     the client's TIME_WAIT must re-ACK it rather than RST. *)
  let net = create () in
  let server_pcb = ref None in
  let _sink, _ = autoserver net ~rcv_assign:(fun p -> server_pcb := Some p) 80 in
  let client_sink = make_sink () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      Tcp.shutdown_send pcb;
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      (* server closes too; drop the client's ACK of the server FIN *)
      drop_nth net 2;
      (match !server_pcb with
      | Some spcb -> Tcp.shutdown_send spcb
      | None -> ()));
  run_for net (Psd_sim.Time.sec 10);
  Alcotest.(check int) "no resets" 0 (Tcp.stats net.a.tcp).Tcp.rst_out;
  Alcotest.(check int) "a drained" 0 (Tcp.active_pcbs net.a.tcp);
  Alcotest.(check int) "b drained" 0 (Tcp.active_pcbs net.b.tcp)

let test_mute_suppresses_rst_then_expires () =
  let net = create () in
  (* a stray segment for a connection nobody has *)
  let stray () =
    let seg =
      {
        Segment.src_port = 1111;
        dst_port = 2222;
        seq = 500;
        ack = 0;
        flags = { Segment.no_flags with Segment.ack = true };
        window = 1000;
        mss = None;
      }
    in
    let packet =
      Segment.encode seg ~src:net.a.addr ~dst:net.b.addr
        ~payload:(Mbuf.empty ())
    in
    ignore
      (Psd_ip.Ip.output net.a.ip ~proto:Psd_ip.Header.proto_tcp
         ~dst:net.b.addr packet)
  in
  Psd_sim.Engine.spawn net.eng (fun () ->
      Tcp.mute net.b.tcp ~local_port:2222 ~remote:(net.a.addr, 1111)
        ~duration_ns:(Psd_sim.Time.ms 100);
      stray ();
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 50);
      Alcotest.(check int) "muted: no rst" 0
        (Tcp.stats net.b.tcp).Tcp.rst_out;
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 100);
      stray ();
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 50);
      Alcotest.(check int) "mute expired: rst" 1
        (Tcp.stats net.b.tcp).Tcp.rst_out);
  run_for net (Psd_sim.Time.sec 2)

(* --- keepalive ---------------------------------------------------------- *)

let test_keepalive_detects_dead_peer () =
  let net =
    create ~keep_idle_ns:(Psd_sim.Time.ms 100)
      ~keep_interval_ns:(Psd_sim.Time.ms 50) ~keep_max_probes:3 ()
  in
  let client_sink = make_sink () in
  let _server_sink, _ = autoserver net 80 in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      Tcp.set_keepalive pcb true;
      (* the peer silently disappears *)
      net.tap <- (fun _ -> true));
  run_for net (Psd_sim.Time.sec 10);
  "dead peer detected" => (client_sink.errors = [ Tcp.Timed_out ]);
  Alcotest.(check int) "pcb reaped" 0 (Tcp.active_pcbs net.a.tcp)

let test_keepalive_keeps_healthy_connection () =
  let net =
    create ~keep_idle_ns:(Psd_sim.Time.ms 100)
      ~keep_interval_ns:(Psd_sim.Time.ms 50) ~keep_max_probes:3 ()
  in
  let client_sink = make_sink () in
  let _server_sink, _ = autoserver net 80 in
  let pcb_ref = ref None in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let pcb =
        Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
          ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()
      in
      pcb_ref := Some pcb;
      Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 20);
      Tcp.set_keepalive pcb true);
  (* idle far beyond the probe budget: probes are answered, so the
     connection must survive *)
  run_for net (Psd_sim.Time.sec 5);
  "no errors" => (client_sink.errors = []);
  (match !pcb_ref with
  | Some pcb -> "still established" => (Tcp.state pcb = Tcp.Established)
  | None -> Alcotest.fail "no pcb");
  "probes were exchanged" => ((Tcp.stats net.a.tcp).Tcp.segs_out > 10)

(* The paper-core property: exporting a live connection at an arbitrary
   moment mid-transfer and importing it into a different stack never
   corrupts or loses the byte stream. *)
let prop_migration_at_random_time =
  QCheck.Test.make ~name:"tcp: migration at any moment preserves the stream"
    ~count:10
    QCheck.(int_range 1 120)
    (fun migrate_at_ms ->
      let eng = Psd_sim.Engine.create ~seed:migrate_at_ms () in
      let a = make_host eng "client" "10.0.0.1" in
      let b1 = make_host eng "b-first" "10.0.0.2" in
      let b2 = make_host eng "b-second" "10.0.0.2" in
      let b_active = ref b1 in
      Psd_ip.Ip.set_transmit a.ip (fun ~next_hop:_ ~iface:_ m ->
          let packet = Psd_mbuf.Mbuf.to_bytes m in
          Psd_sim.Engine.schedule eng 50_000 (fun () ->
              Psd_sim.Engine.spawn eng (fun () ->
                  Psd_ip.Ip.input !b_active.ip packet ~off:0
                    ~len:(Bytes.length packet))));
      let to_a host =
        Psd_ip.Ip.set_transmit host.ip (fun ~next_hop:_ ~iface:_ m ->
            let packet = Psd_mbuf.Mbuf.to_bytes m in
            Psd_sim.Engine.schedule eng 50_000 (fun () ->
                Psd_sim.Engine.spawn eng (fun () ->
                    Psd_ip.Ip.input a.ip packet ~off:0
                      ~len:(Bytes.length packet))))
      in
      to_a b1;
      to_a b2;
      let payload =
        String.init 120_000 (fun i -> Char.chr ((i * 13 + migrate_at_ms) mod 256))
      in
      let received = Buffer.create 1024 in
      let b_pcb = ref None in
      let wire_consumer pcb =
        {
          Tcp.null_handlers with
          Tcp.deliver =
            (fun _ m ->
              Buffer.add_string received (Mbuf.to_string m);
              let n = Mbuf.length m in
              Psd_sim.Engine.spawn eng (fun () -> Tcp.user_consumed pcb n));
        }
      in
      let listener = Tcp.listen b1.tcp ~port:80 () in
      Tcp.on_ready listener (fun () ->
          Psd_sim.Engine.spawn eng (fun () ->
              match Tcp.accept_ready listener with
              | Some p ->
                b_pcb := Some p;
                Tcp.set_handlers p (wire_consumer p)
              | None -> ()));
      Psd_sim.Engine.spawn eng (fun () ->
          let pcb =
            Tcp.connect a.tcp ~src_port:5000
              ~dst:(Psd_ip.Addr.of_string "10.0.0.2") ~dst_port:80 ()
          in
          Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 5);
          Tcp.send pcb (Mbuf.of_string payload));
      (* migrate the receiver at the chosen instant, mid-flight *)
      Psd_sim.Engine.schedule eng (Psd_sim.Time.ms migrate_at_ms) (fun () ->
          Psd_sim.Engine.spawn eng (fun () ->
              match !b_pcb with
              | Some p when Tcp.state p <> Tcp.Closed ->
                let snap = Tcp.export p in
                Tcp.mute b1.tcp ~local_port:80
                  ~remote:(Psd_ip.Addr.of_string "10.0.0.1", 5000)
                  ~duration_ns:(Psd_sim.Time.sec 1);
                (* handlers must be live at import time (buffered data is
                   re-delivered through them); consumption is deferred so
                   the pcb ref is filled in by then *)
                let pcb_ref = ref None in
                let handlers =
                  {
                    Tcp.null_handlers with
                    Tcp.deliver =
                      (fun _ m ->
                        Buffer.add_string received (Mbuf.to_string m);
                        let n = Mbuf.length m in
                        Psd_sim.Engine.spawn eng (fun () ->
                            match !pcb_ref with
                            | Some p' -> Tcp.user_consumed p' n
                            | None -> ()));
                  }
                in
                let p' = Tcp.import b2.tcp ~handlers snap in
                pcb_ref := Some p';
                b_pcb := Some p';
                b_active := b2
              | _ -> ()));
      Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 120);
      String.equal (Buffer.contents received) payload)

(* Random bidirectional traffic under probabilistic loss: every byte must
   arrive, in order, in both directions, despite drops. *)
let prop_bidirectional_with_loss =
  QCheck.Test.make ~name:"tcp: bidirectional stream survives random loss"
    ~count:8
    QCheck.(pair small_int (int_range 0 15))
    (fun (seed, drop_pct) ->
      let net = create ~seed:(seed + 100) () in
      (* deterministic loss process over the wire *)
      let rng = Psd_util.Rng.create ~seed:(seed * 31 + 7) in
      net.tap <- (fun _ -> Psd_util.Rng.int rng 100 < drop_pct);
      let a_to_b = String.init 30_000 (fun i -> Char.chr (i mod 256)) in
      let b_to_a = String.init 22_000 (fun i -> Char.chr ((i * 3) mod 256)) in
      let server_sink = make_sink () in
      let client_sink = make_sink () in
      (* server: consume and also transmit its own stream *)
      let listener = Tcp.listen net.b.tcp ~port:80 () in
      Tcp.on_ready listener (fun () ->
          Psd_sim.Engine.spawn net.eng (fun () ->
              match Tcp.accept_ready listener with
              | None -> ()
              | Some pcb ->
                let h = sink_handlers server_sink in
                Tcp.set_handlers pcb
                  {
                    h with
                    Tcp.deliver =
                      (fun _ m ->
                        let n = Mbuf.length m in
                        Buffer.add_string server_sink.buf (Mbuf.to_string m);
                        Psd_sim.Engine.spawn net.eng (fun () ->
                            Tcp.user_consumed pcb n));
                  };
                Tcp.send pcb (Mbuf.of_string b_to_a)));
      Psd_sim.Engine.spawn net.eng (fun () ->
          let pcb =
            Tcp.connect net.a.tcp ~src_port:5000 ~dst:net.b.addr ~dst_port:80
              ()
          in
          let h = sink_handlers client_sink in
          Tcp.set_handlers pcb
            {
              h with
              Tcp.deliver =
                (fun _ m ->
                  let n = Mbuf.length m in
                  Buffer.add_string client_sink.buf (Mbuf.to_string m);
                  Psd_sim.Engine.spawn net.eng (fun () ->
                      Tcp.user_consumed pcb n));
            };
          Psd_sim.Engine.sleep net.eng (Psd_sim.Time.ms 5);
          Tcp.send pcb (Mbuf.of_string a_to_b));
      run_for net (Psd_sim.Time.sec 300);
      String.equal (contents server_sink) a_to_b
      && String.equal (contents client_sink) b_to_a)

(* --- drop accounting --------------------------------------------------- *)

(* One data segment mangled in flight lands in exactly one drop counter
   of the receiving stack: payload damage in [drop_checksum], framing
   damage (an impossible data offset) in [drop_malformed] — and the
   retransmission still delivers the data. *)
let test_drop_accounting_classes () =
  let net = create () in
  let sink, _l = autoserver net 80 in
  let client_sink = make_sink () in
  let pcb = ref None in
  Psd_sim.Engine.spawn net.eng (fun () ->
      pcb :=
        Some
          (Tcp.connect net.a.tcp ~handlers:(sink_handlers client_sink)
             ~src_port:5000 ~dst:net.b.addr ~dst_port:80 ()));
  run_for net (Psd_sim.Time.ms 20);
  "established" => client_sink.established;
  let is_data packet =
    (* only a data segment is longer than bare IP + TCP headers *)
    Bytes.length packet > Psd_ip.Header.size + Segment.base_size
  in
  let mangle = ref None in
  net.tap <-
    (fun packet ->
      (match !mangle with
      | Some f when is_data packet ->
        mangle := None;
        f packet
      | _ -> ());
      false);
  let send_mangled data f =
    mangle := Some f;
    Psd_sim.Engine.spawn net.eng (fun () ->
        Tcp.send (Option.get !pcb) (Mbuf.of_string data));
    run_for net (Psd_sim.Time.sec 10)
  in
  (* flip a payload byte: IP's header checksum doesn't cover it, so it
     reaches TCP and must die as a checksum drop *)
  send_mangled "hello" (fun packet ->
      let off = Psd_ip.Header.size + Segment.base_size in
      Bytes.set_uint8 packet off (Bytes.get_uint8 packet off lxor 0xff));
  (* wreck the data offset: framing damage, not a checksum miss *)
  send_mangled "world" (fun packet ->
      Bytes.set_uint8 packet (Psd_ip.Header.size + 12) 0xf0);
  let st = Tcp.stats net.b.tcp in
  Alcotest.(check int) "one checksum drop" 1 st.Tcp.drop_checksum;
  Alcotest.(check int) "one malformed drop" 1 st.Tcp.drop_malformed;
  Alcotest.(check string) "rexmt delivered both" "helloworld"
    (Buffer.contents sink.buf)

let () =
  Alcotest.run "psd_tcp"
    [
      ( "drop accounting",
        [ Alcotest.test_case "checksum vs malformed" `Quick
            test_drop_accounting_classes ] );
      ( "seq",
        [
          Alcotest.test_case "wraparound" `Quick test_seq_wraparound;
          Alcotest.test_case "in_window" `Quick test_seq_in_window;
          QCheck_alcotest.to_alcotest prop_seq_ordering;
        ] );
      ( "segment",
        [
          Alcotest.test_case "roundtrip" `Quick test_segment_roundtrip;
          Alcotest.test_case "mss option" `Quick test_segment_mss_option;
          Alcotest.test_case "checksum" `Quick test_segment_checksum_detects;
          Alcotest.test_case "error classes" `Quick test_decode_error_classes;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "three-way" `Quick test_handshake;
          Alcotest.test_case "refused" `Quick test_connect_refused;
          Alcotest.test_case "syn loss" `Quick test_handshake_with_syn_loss;
          Alcotest.test_case "simultaneous open" `Quick
            test_simultaneous_open;
          Alcotest.test_case "backlog" `Quick test_backlog_limit;
        ] );
      ( "data",
        [
          Alcotest.test_case "small" `Quick test_small_transfer;
          Alcotest.test_case "empty+close" `Quick test_empty_close;
          Alcotest.test_case "large 200KB" `Quick test_large_transfer;
          Alcotest.test_case "mss" `Quick test_mss_respected;
          Alcotest.test_case "echo" `Quick test_echo_bidirectional;
          Alcotest.test_case "loss+rto" `Quick test_data_loss_retransmit;
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
          Alcotest.test_case "flow control" `Quick
            test_flow_control_zero_window;
          Alcotest.test_case "nagle" `Quick test_nagle_coalesces;
          Alcotest.test_case "delayed ack" `Quick test_delayed_ack;
          QCheck_alcotest.to_alcotest prop_stream_integrity;
          QCheck_alcotest.to_alcotest prop_bidirectional_with_loss;
        ] );
      ( "migration-property",
        [ QCheck_alcotest.to_alcotest prop_migration_at_random_time ] );
      ( "teardown",
        [
          Alcotest.test_case "graceful" `Quick test_graceful_close;
          Alcotest.test_case "simultaneous" `Quick test_simultaneous_close;
          Alcotest.test_case "retransmitted fin single eof" `Quick
            test_retransmitted_fin_single_eof;
          Alcotest.test_case "abort" `Quick test_abort_resets_peer;
          QCheck_alcotest.to_alcotest prop_close_sequence;
          QCheck_alcotest.to_alcotest prop_pool_differential;
        ] );
      ( "corners",
        [
          Alcotest.test_case "persist probes" `Quick
            test_persist_probes_zero_window;
          Alcotest.test_case "time_wait dup fin" `Quick
            test_time_wait_handles_duplicate_fin;
          Alcotest.test_case "mute expiry" `Quick
            test_mute_suppresses_rst_then_expires;
        ] );
      ( "keepalive",
        [
          Alcotest.test_case "dead peer" `Quick
            test_keepalive_detects_dead_peer;
          Alcotest.test_case "healthy peer" `Quick
            test_keepalive_keeps_healthy_connection;
        ] );
      ( "migration",
        [
          Alcotest.test_case "export/import" `Quick
            test_export_import_same_stack_roundtrip;
          Alcotest.test_case "across stacks" `Quick
            test_migration_between_stacks;
          Alcotest.test_case "with unacked data" `Quick
            test_migration_with_unacked_data;
        ] );
    ]
