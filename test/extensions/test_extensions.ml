(* Tests for the Section 3.4 extensions: the wire tap, session-level
   encryption with application-confined keys, and outgoing-packet
   limiting. *)

open Psd_core
module Cfg = Psd_cost.Config

let ( => ) name b = Alcotest.(check bool) name true b

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" name e

type world = {
  eng : Psd_sim.Engine.t;
  seg : Psd_link.Segment.t;
  sys_a : System.t;
  sys_b : System.t;
  tap : Snoop.t;
}

let make ?(config = Cfg.library_shm_ipf) () =
  let eng = Psd_sim.Engine.create ~seed:13 () in
  let seg = Psd_link.Segment.create eng () in
  let sys_a =
    System.create ~eng ~segment:seg ~config ~addr:"10.0.0.1" ~name:"a" ()
  in
  let sys_b =
    System.create ~eng ~segment:seg ~config ~addr:"10.0.0.2" ~name:"b" ()
  in
  let tap = Snoop.attach eng seg in
  { eng; seg; sys_a; sys_b; tap }

let dst_b = Psd_ip.Addr.of_string "10.0.0.2"

(* run a one-connection server that applies [serve] to the accepted conn *)
let with_server w serve =
  let app = System.app w.sys_b ~name:"server" in
  Psd_sim.Engine.spawn w.eng ~name:"server" (fun () ->
      let l = Sockets.stream app in
      ignore (ok "bind" (Sockets.bind l ~port:443 ()));
      ok "listen" (Sockets.listen l ());
      let c = ok "accept" (Sockets.accept l) in
      serve c)

(* --- Snoop --------------------------------------------------------------- *)

let test_snoop_sees_and_decodes () =
  let w = make () in
  with_server w (fun c ->
      match Sockets.recv c ~max:100 with
      | Ok _ -> Sockets.close c
      | Error _ -> ());
  let app = System.app w.sys_a ~name:"client" in
  Psd_sim.Engine.spawn w.eng (fun () ->
      let s = Sockets.stream app in
      ok "connect" (Sockets.connect s dst_b 443);
      ignore (ok "send" (Sockets.send s "plainly-visible-secret"));
      Sockets.close s);
  Psd_sim.Engine.run_for w.eng (Psd_sim.Time.sec 10);
  "frames captured" => (Snoop.count w.tap > 5);
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec at i =
      i + nl <= hl && (String.sub hay i nl = needle || at (i + 1))
    in
    at 0
  in
  let trace = Format.asprintf "%a" Snoop.pp_trace w.tap in
  "decodes arp" => contains trace "arp who-has";
  "decodes tcp syn" => contains trace "tcp [S]";
  "plaintext readable on the wire"
  => Snoop.payload_seen w.tap "plainly-visible-secret";
  (* the trace mentions the tcp ports involved *)
  let lines = List.map (fun r -> r.Snoop.line) (Snoop.records w.tap) in
  "tcp lines decoded"
  => List.exists
       (fun l ->
         String.length l > 10
         && String.sub l 0 2 = "10"
         &&
         try
           ignore (String.index l 'S');
           true
         with Not_found -> false)
       lines

(* --- Secure -------------------------------------------------------------- *)

let test_secure_roundtrip_hides_plaintext () =
  let w = make () in
  let served = ref "" in
  with_server w (fun c ->
      let ch = ok "server handshake" (Secure.server c ~psk:"hunter2") in
      (match Secure.recv ch with
      | Ok msg ->
        served := msg;
        ignore (ok "reply" (Secure.send ch ("ack:" ^ msg)))
      | Error e -> Alcotest.failf "secure recv: %s" e);
      Secure.close ch);
  let echoed = ref "" in
  let app = System.app w.sys_a ~name:"client" in
  Psd_sim.Engine.spawn w.eng (fun () ->
      let s = Sockets.stream app in
      ok "connect" (Sockets.connect s dst_b 443);
      let ch = ok "client handshake" (Secure.client s ~psk:"hunter2") in
      ignore (ok "send" (Secure.send ch "attack-at-dawn"));
      (match Secure.recv ch with
      | Ok r -> echoed := r
      | Error e -> Alcotest.failf "client recv: %s" e);
      Secure.close ch);
  Psd_sim.Engine.run_for w.eng (Psd_sim.Time.sec 10);
  Alcotest.(check string) "server decrypted" "attack-at-dawn" !served;
  Alcotest.(check string) "client decrypted reply" "ack:attack-at-dawn"
    !echoed;
  "eavesdropper cannot read the message"
  => not (Snoop.payload_seen w.tap "attack-at-dawn");
  "nor the reply" => not (Snoop.payload_seen w.tap "ack:attack-at-dawn")

let test_secure_wrong_key_detected () =
  let w = make () in
  let server_result = ref (Ok "") in
  with_server w (fun c ->
      let ch = ok "server handshake" (Secure.server c ~psk:"correct") in
      server_result := Secure.recv ch);
  let app = System.app w.sys_a ~name:"client" in
  Psd_sim.Engine.spawn w.eng (fun () ->
      let s = Sockets.stream app in
      ok "connect" (Sockets.connect s dst_b 443);
      let ch = ok "client handshake" (Secure.client s ~psk:"WRONG") in
      ignore (Secure.send ch "sensitive"));
  Psd_sim.Engine.run_for w.eng (Psd_sim.Time.sec 10);
  (match !server_result with
  | Error _ -> ()
  | Ok data -> Alcotest.failf "accepted garbage %S" data)

(* --- egress limiting ------------------------------------------------------ *)

let test_egress_blocks_unauthorized_frames () =
  let eng = Psd_sim.Engine.create () in
  let seg = Psd_link.Segment.create eng () in
  let host =
    Psd_mach.Host.create ~eng ~plat:Psd_cost.Platform.decstation ~name:"h"
  in
  let dev = Psd_mach.Netdev.create host seg ~mac:(Psd_link.Macaddr.of_host_id 1) in
  let peer = Psd_link.Segment.attach seg ~mac:(Psd_link.Macaddr.of_host_id 2) in
  let received = ref 0 in
  Psd_link.Segment.set_rx peer (fun _ -> incr received);
  (* only UDP from 10.0.0.1:777 may leave; note the egress filter matches
     the packet the way an ingress filter at the PEER would *)
  let allow =
    Psd_bpf.Filter.session
      {
        Psd_bpf.Filter.proto = Psd_bpf.Filter.Udp;
        local_ip = Psd_ip.Addr.to_int (Psd_ip.Addr.of_string "10.0.0.2");
        local_port = 9;
        remote_ip = Some (Psd_ip.Addr.to_int (Psd_ip.Addr.of_string "10.0.0.1"));
        remote_port = Some 777;
      }
  in
  let (_ : Psd_mach.Netdev.filter_id) =
    Psd_mach.Netdev.attach_egress dev ~prog:allow ()
  in
  let frame ~src_port =
    let b = Bytes.make 60 '\x00' in
    Psd_link.Frame.set_header b ~off:0 ~dst:(Psd_link.Segment.mac peer)
      ~src:(Psd_mach.Netdev.mac dev) ~ethertype:Psd_link.Frame.ethertype_ip;
    Psd_util.Codec.set_u8 b 14 0x45;
    Psd_util.Codec.set_u8 b (14 + 9) 17;
    Psd_util.Codec.set_u32i b (14 + 12) 0x0a000001;
    Psd_util.Codec.set_u32i b (14 + 16) 0x0a000002;
    Psd_util.Codec.set_u16 b (14 + 20) src_port;
    Psd_util.Codec.set_u16 b (14 + 22) 9;
    b
  in
  let kctx = Psd_mach.Host.kernel_ctx host in
  Psd_sim.Engine.spawn eng (fun () ->
      Psd_mach.Netdev.transmit dev ~ctx:kctx ~from_user:false
        (frame ~src_port:777);
      (* a spoofed frame from a different port must not leave the host *)
      Psd_mach.Netdev.transmit dev ~ctx:kctx ~from_user:false
        (frame ~src_port:666));
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "authorized frame delivered" 1 !received;
  Alcotest.(check int) "spoofed frame blocked" 1
    (Psd_mach.Netdev.tx_blocked dev)

(* --- routing between segments --------------------------------------------- *)

let make_routed_topology config =
  (* A on segment 1, B on segment 2, router R between them. *)
  let eng = Psd_sim.Engine.create ~seed:17 () in
  let seg1 = Psd_link.Segment.create eng () in
  let seg2 = Psd_link.Segment.create eng () in
  let sys_a =
    System.create ~eng ~segment:seg1 ~config ~addr:"10.0.1.1" ~name:"a" ()
  in
  let sys_b =
    System.create ~eng ~segment:seg2 ~config ~addr:"10.0.2.1" ~name:"b" ()
  in
  let router =
    Router.create ~eng ~name:"r"
      ~ifaces:[ (seg1, "10.0.1.254"); (seg2, "10.0.2.254") ]
      ()
  in
  System.add_route sys_a ~net:"10.0.2.0" ~mask:"255.255.255.0"
    ~gateway:"10.0.1.254";
  System.add_route sys_b ~net:"10.0.1.0" ~mask:"255.255.255.0"
    ~gateway:"10.0.2.254";
  (eng, seg1, seg2, sys_a, sys_b, router)

let test_tcp_across_router () =
  let eng, seg1, seg2, sys_a, sys_b, router =
    make_routed_topology Cfg.library_shm_ipf
  in
  let payload = String.init 30_000 (fun i -> Char.chr (i mod 251)) in
  let received = Buffer.create 1024 in
  let srv = System.app sys_b ~name:"srv" in
  Psd_sim.Engine.spawn eng (fun () ->
      let l = Sockets.stream srv in
      ignore (ok "bind" (Sockets.bind l ~port:7 ()));
      ok "listen" (Sockets.listen l ());
      let c = ok "accept" (Sockets.accept l) in
      let rec drain () =
        match Sockets.recv c ~max:65536 with
        | Ok "" -> ()
        | Ok d ->
          Buffer.add_string received d;
          drain ()
        | Error e -> Alcotest.failf "recv: %s" e
      in
      drain ());
  let cli = System.app sys_a ~name:"cli" in
  Psd_sim.Engine.spawn eng (fun () ->
      let s = Sockets.stream cli in
      ok "connect across router" (Sockets.connect s (System.addr sys_b) 7);
      let (_ : int) = ok "send" (Sockets.send s payload) in
      Sockets.close s);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 60);
  "full stream across two segments"
  => String.equal (Buffer.contents received) payload;
  "router forwarded traffic" => (Router.forwarded router > 30);
  (* traffic crossed both wires *)
  "segment 1 carried frames" => (Psd_link.Segment.frames_sent seg1 > 20);
  "segment 2 carried frames" => (Psd_link.Segment.frames_sent seg2 > 20)

let test_udp_across_router_and_isolation () =
  let eng, seg1, _seg2, sys_a, sys_b, router =
    make_routed_topology Cfg.mach25_kernel
  in
  let tap1 = Snoop.attach eng seg1 in
  let got = ref "" in
  let srv = System.app sys_b ~name:"udp-srv" in
  Psd_sim.Engine.spawn eng (fun () ->
      let s = Sockets.dgram srv in
      ignore (ok "bind" (Sockets.bind s ~port:9 ()));
      match Sockets.recvfrom s ~max:1000 with
      | Ok (d, Some src) ->
        got := d;
        ignore (ok "reply" (Sockets.send s ~dst:src ("pong:" ^ d)))
      | _ -> Alcotest.fail "no datagram");
  let answered = ref "" in
  let cli = System.app sys_a ~name:"udp-cli" in
  Psd_sim.Engine.spawn eng (fun () ->
      let s = Sockets.dgram cli in
      ignore (ok "bind" (Sockets.bind s ()));
      let (_ : int) =
        ok "send" (Sockets.send s ~dst:(System.addr sys_b, 9) "ping")
      in
      match Sockets.recv s ~max:1000 with
      | Ok d -> answered := d
      | Error e -> Alcotest.failf "recv: %s" e);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 20);
  Alcotest.(check string) "request crossed" "ping" !got;
  Alcotest.(check string) "reply crossed back" "pong:ping" !answered;
  "router forwarded both ways" => (Router.forwarded router >= 2);
  (* L2 isolation: host B's MAC never appears on segment 1 *)
  let b_mac =
    Format.asprintf "%a" Psd_link.Macaddr.pp
      (Psd_mach.Netdev.mac (System.netdev sys_b))
  in
  let seg1_lines =
    String.concat "\n"
      (List.map (fun r -> r.Snoop.line) (Snoop.records tap1))
  in
  ignore seg1_lines;
  "b's frames never on segment 1"
  => List.for_all
       (fun r ->
         let src =
           Format.asprintf "%a" Psd_link.Macaddr.pp
             (Psd_link.Frame.src r.Snoop.frame)
         in
         src <> b_mac)
       (Snoop.records tap1)

let test_router_drops_expired_ttl () =
  let eng, _seg1, _seg2, sys_a, sys_b, router =
    make_routed_topology Cfg.mach25_kernel
  in
  (* hand-craft a TTL-1 datagram through the kernel stack's IP layer *)
  (match System.kernel_stack sys_a with
  | Some stack ->
    Psd_sim.Engine.spawn eng (fun () ->
        ignore
          (Psd_ip.Ip.output (Netstack.ip stack) ~ttl:1 ~proto:200
             ~dst:(System.addr sys_b)
             (Psd_mbuf.Mbuf.of_string "dying")))
  | None -> Alcotest.fail "no kernel stack");
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 10);
  Alcotest.(check int) "dropped at the router" 1 (Router.dropped_ttl router);
  Alcotest.(check int) "not forwarded" 0 (Router.forwarded router)

let () =
  Alcotest.run "extensions"
    [
      ( "snoop",
        [ Alcotest.test_case "decode" `Quick test_snoop_sees_and_decodes ] );
      ( "secure",
        [
          Alcotest.test_case "roundtrip+privacy" `Quick
            test_secure_roundtrip_hides_plaintext;
          Alcotest.test_case "wrong key" `Quick test_secure_wrong_key_detected;
        ] );
      ( "egress",
        [
          Alcotest.test_case "packet limiting" `Quick
            test_egress_blocks_unauthorized_frames;
        ] );
      ( "router",
        [
          Alcotest.test_case "tcp across segments" `Quick
            test_tcp_across_router;
          Alcotest.test_case "udp + L2 isolation" `Quick
            test_udp_across_router_and_isolation;
          Alcotest.test_case "ttl expiry" `Quick test_router_drops_expired_ttl;
        ] );
    ]
