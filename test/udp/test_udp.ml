open Psd_udp
open Psd_mbuf
open Psd_test_support.Harness

let ( => ) name b = Alcotest.(check bool) name true b

let bind_exn t ~port ~receive =
  match Udp.bind t ~port ~receive with
  | Ok pcb -> pcb
  | Error `Port_in_use -> Alcotest.fail "port in use"

let test_roundtrip () =
  let net = create () in
  let got = ref [] in
  let _server =
    bind_exn net.b.udp ~port:7 ~receive:(fun dg ->
        got := (dg.Udp.src_port, Mbuf.to_string dg.Udp.payload) :: !got)
  in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let client = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
      match Udp.send client ~dst:(net.b.addr, 7) (Mbuf.of_string "ping") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send failed");
  run net;
  (match !got with
  | [ (5001, "ping") ] -> ()
  | _ -> Alcotest.fail "wrong delivery");
  Alcotest.(check int) "stats out" 1 (Udp.stats net.a.udp).Udp.udp_out;
  Alcotest.(check int) "stats in" 1 (Udp.stats net.b.udp).Udp.udp_in

let test_connected_send_and_filter () =
  let net = create () in
  let got = ref 0 in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let client = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> incr got) in
      Udp.connect client net.b.addr 7;
      (* echo server *)
      let _srv =
        bind_exn net.b.udp ~port:7 ~receive:(fun dg ->
            Psd_sim.Engine.spawn net.eng (fun () ->
                let srv2 = bind_exn net.b.udp ~port:99 ~receive:(fun _ -> ()) in
                (* reply from the WRONG port: must be filtered out *)
                ignore
                  (Udp.send srv2 ~dst:(dg.Udp.src, dg.Udp.src_port)
                     (Mbuf.of_string "stray"));
                Udp.close net.b.udp srv2))
      in
      match Udp.send client (Mbuf.of_string "hello") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "connected send failed");
  run net;
  Alcotest.(check int) "stray filtered by connected pcb" 0 !got;
  Alcotest.(check int) "dropped" 1 (Udp.stats net.a.udp).Udp.udp_drop_no_port

let test_unconnected_receives_any () =
  let net = create () in
  let got = ref 0 in
  let _c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> incr got) in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let s = bind_exn net.b.udp ~port:9000 ~receive:(fun _ -> ()) in
      ignore (Udp.send s ~dst:(net.a.addr, 5001) (Mbuf.of_string "a")));
  run net;
  Alcotest.(check int) "wildcard receives" 1 !got

let test_demux_connected_beats_wildcard () =
  let net = create () in
  let wild = ref 0 and conn = ref 0 in
  (* Both PCBs share port 5001 on host a. *)
  let _w = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> incr wild) in
  let c =
    match
      Udp.bind net.a.udp ~port:5001 ~receive:(fun _ -> incr conn)
    with
    | Ok _ ->
      Alcotest.fail "second wildcard bind should fail"
    | Error `Port_in_use ->
      (* bind a connected one via a different path: bind on another port
         is not what we want — instead verify Port_in_use semantics *)
      ()
  in
  ignore c;
  ignore wild;
  ignore conn

let test_port_in_use () =
  let net = create () in
  let _a = bind_exn net.a.udp ~port:53 ~receive:(fun _ -> ()) in
  match Udp.bind net.a.udp ~port:53 ~receive:(fun _ -> ()) with
  | Error `Port_in_use -> ()
  | Ok _ -> Alcotest.fail "double bind accepted"

let test_close_releases_port () =
  let net = create () in
  let pcb = bind_exn net.a.udp ~port:53 ~receive:(fun _ -> ()) in
  Udp.close net.a.udp pcb;
  match Udp.bind net.a.udp ~port:53 ~receive:(fun _ -> ()) with
  | Ok _ -> ()
  | Error `Port_in_use -> Alcotest.fail "port not released"

let test_no_listener_dropped () =
  let net = create () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
      ignore (Udp.send c ~dst:(net.b.addr, 4242) (Mbuf.of_string "void")));
  run net;
  Alcotest.(check int) "dropped" 1 (Udp.stats net.b.udp).Udp.udp_drop_no_port

let test_checksum_corruption_dropped () =
  let net = create () in
  let got = ref 0 in
  let _s = bind_exn net.b.udp ~port:7 ~receive:(fun _ -> incr got) in
  (* corrupt one payload byte in flight *)
  net.tap <-
    (fun pkt ->
      if Bytes.length pkt > 30 && Psd_util.Codec.get_u8 pkt 9 = 17 then begin
        Bytes.set pkt (Bytes.length pkt - 1) '\xff';
        (* recompute the IP header checksum so only UDP detects it *)
        Psd_util.Codec.set_u16 pkt 10 0;
        let c = Psd_util.Checksum.of_bytes pkt ~off:0 ~len:20 in
        Psd_util.Codec.set_u16 pkt 10 c;
        false
      end
      else false);
  Psd_sim.Engine.spawn net.eng (fun () ->
      let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
      ignore (Udp.send c ~dst:(net.b.addr, 7) (Mbuf.of_string "payload-x")));
  run net;
  Alcotest.(check int) "not delivered" 0 !got;
  Alcotest.(check int) "checksum drop" 1
    (Udp.stats net.b.udp).Udp.udp_drop_checksum

let test_malformed_length_dropped () =
  let net = create () in
  let got = ref 0 in
  let _s = bind_exn net.b.udp ~port:7 ~receive:(fun _ -> incr got) in
  (* forge the UDP length field in flight (offset 24 = IP header + 4),
     patching the IP header checksum so the damage reaches UDP *)
  let forged_len = ref 0 in
  net.tap <-
    (fun pkt ->
      if Bytes.length pkt > 30 && Psd_util.Codec.get_u8 pkt 9 = 17 then begin
        Psd_util.Codec.set_u16 pkt 24 !forged_len;
        Psd_util.Codec.set_u16 pkt 10 0;
        let c = Psd_util.Checksum.of_bytes pkt ~off:0 ~len:20 in
        Psd_util.Codec.set_u16 pkt 10 c;
        false
      end
      else false);
  let send_one () =
    Psd_sim.Engine.spawn net.eng (fun () ->
        let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
        ignore (Udp.send c ~dst:(net.b.addr, 7) (Mbuf.of_string "payload-x"));
        Udp.close net.a.udp c);
    run net
  in
  (* longer than the IP payload delivers nothing... *)
  forged_len := 0xffff;
  send_one ();
  (* ...and shorter than the UDP header can't even frame *)
  forged_len := 3;
  send_one ();
  Alcotest.(check int) "not delivered" 0 !got;
  Alcotest.(check int) "malformed drops" 2
    (Udp.stats net.b.udp).Udp.udp_drop_malformed;
  Alcotest.(check int) "not a checksum miss" 0
    (Udp.stats net.b.udp).Udp.udp_drop_checksum

let test_large_datagram_fragments () =
  let net = create () in
  let got = ref None in
  let _s =
    bind_exn net.b.udp ~port:7 ~receive:(fun dg ->
        got := Some (Mbuf.to_string dg.Udp.payload))
  in
  let payload = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
      match Udp.send c ~dst:(net.b.addr, 7) (Mbuf.of_string payload) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send failed");
  run net;
  (match !got with
  | Some s -> "reassembled datagram" => String.equal s payload
  | None -> Alcotest.fail "not delivered");
  "fragmented on the way"
  => ((Psd_ip.Ip.stats net.a.ip).Psd_ip.Ip.ip_fragmented >= 2)

let test_too_big () =
  let net = create () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
      match
        Udp.send c ~dst:(net.b.addr, 7)
          (Mbuf.of_string (String.make 70_000 'x'))
      with
      | Error `Too_big -> ()
      | _ -> Alcotest.fail "oversized datagram accepted");
  run net

let test_send_without_destination () =
  let net = create () in
  Psd_sim.Engine.spawn net.eng (fun () ->
      let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
      match Udp.send c (Mbuf.of_string "x") with
      | Error `No_destination -> ()
      | _ -> Alcotest.fail "unconnected send without dst accepted");
  run net

let prop_udp_payload_integrity =
  QCheck.Test.make ~name:"udp: arbitrary payloads arrive intact" ~count:40
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun payload ->
      let net = create () in
      let got = ref None in
      let _s =
        bind_exn net.b.udp ~port:7 ~receive:(fun dg ->
            got := Some (Mbuf.to_string dg.Udp.payload))
      in
      Psd_sim.Engine.spawn net.eng (fun () ->
          let c = bind_exn net.a.udp ~port:5001 ~receive:(fun _ -> ()) in
          ignore (Udp.send c ~dst:(net.b.addr, 7) (Mbuf.of_string payload)));
      run net;
      !got = Some payload)

let () =
  Alcotest.run "psd_udp"
    [
      ( "udp",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "connected filter" `Quick
            test_connected_send_and_filter;
          Alcotest.test_case "wildcard receive" `Quick
            test_unconnected_receives_any;
          Alcotest.test_case "double wildcard bind" `Quick
            test_demux_connected_beats_wildcard;
          Alcotest.test_case "port in use" `Quick test_port_in_use;
          Alcotest.test_case "close releases" `Quick test_close_releases_port;
          Alcotest.test_case "no listener" `Quick test_no_listener_dropped;
          Alcotest.test_case "checksum" `Quick
            test_checksum_corruption_dropped;
          Alcotest.test_case "malformed length" `Quick
            test_malformed_length_dropped;
          Alcotest.test_case "fragmentation" `Quick
            test_large_datagram_fragments;
          Alcotest.test_case "too big" `Quick test_too_big;
          Alcotest.test_case "no destination" `Quick
            test_send_without_destination;
          QCheck_alcotest.to_alcotest prop_udp_payload_integrity;
        ] );
    ]
