open Psd_ip
open Psd_mbuf

let addr = Addr.of_string

(* --- Addr ------------------------------------------------------------ *)

let test_addr_parse () =
  Alcotest.(check int) "octets" 0x0a000001 (Addr.to_int (addr "10.0.0.1"));
  Alcotest.(check string) "pp" "10.0.0.1" (Addr.to_string (addr "10.0.0.1"));
  Alcotest.(check string) "broadcast" "255.255.255.255"
    (Addr.to_string Addr.broadcast)

let test_addr_parse_errors () =
  List.iter
    (fun s ->
      match Addr.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "10.0.0"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "-1.0.0.0" ]

let test_addr_subnet () =
  Alcotest.(check bool) "in" true
    (Addr.in_subnet (addr "10.0.5.7") ~net:(addr "10.0.0.0")
       ~mask:(addr "255.255.0.0"));
  Alcotest.(check bool) "out" false
    (Addr.in_subnet (addr "10.1.5.7") ~net:(addr "10.0.0.0")
       ~mask:(addr "255.255.0.0"))

(* --- Header ----------------------------------------------------------- *)

let sample_header () =
  {
    Header.src = addr "10.0.0.1";
    dst = addr "10.0.0.2";
    proto = Header.proto_udp;
    ttl = 64;
    ident = 777;
    dont_frag = false;
    more_frags = false;
    frag_off = 0;
    total_len = Header.size + 100;
  }

let test_header_roundtrip () =
  let h = sample_header () in
  let b = Bytes.make 40 '\xaa' in
  Header.encode_into b ~off:4 h;
  match Header.decode b ~off:4 ~len:(Header.size + 100) with
  | Error e -> Alcotest.failf "decode: %a" Header.pp_error e
  | Ok h' ->
    Alcotest.(check bool) "src" true (Addr.equal h.Header.src h'.Header.src);
    Alcotest.(check bool) "dst" true (Addr.equal h.Header.dst h'.Header.dst);
    Alcotest.(check int) "proto" h.Header.proto h'.Header.proto;
    Alcotest.(check int) "ident" h.Header.ident h'.Header.ident;
    Alcotest.(check int) "total" h.Header.total_len h'.Header.total_len

let test_header_frag_fields () =
  let h =
    { (sample_header ()) with Header.more_frags = true; frag_off = 1480 }
  in
  let b = Bytes.create (Header.size + 100) in
  Header.encode_into b ~off:0 h;
  match Header.decode b ~off:0 ~len:(Bytes.length b) with
  | Ok h' ->
    Alcotest.(check bool) "mf" true h'.Header.more_frags;
    Alcotest.(check int) "off" 1480 h'.Header.frag_off
  | Error e -> Alcotest.failf "decode: %a" Header.pp_error e

let test_header_checksum_detects_corruption () =
  let b = Bytes.create Header.size in
  Header.encode_into b ~off:0 { (sample_header ()) with Header.total_len = 20 };
  Psd_util.Codec.set_u8 b 8 13 (* flip ttl *);
  match Header.decode b ~off:0 ~len:Header.size with
  | Error Header.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Header.pp_error e
  | Ok _ -> Alcotest.fail "corruption accepted"

let test_header_rejects () =
  let b = Bytes.create Header.size in
  Header.encode_into b ~off:0 { (sample_header ()) with Header.total_len = 20 };
  (match Header.decode b ~off:0 ~len:10 with
  | Error Header.Too_short -> ()
  | _ -> Alcotest.fail "short accepted");
  let bad_ver = Bytes.copy b in
  Psd_util.Codec.set_u8 bad_ver 0 0x55;
  (match Header.decode bad_ver ~off:0 ~len:Header.size with
  | Error (Header.Bad_version 5) -> ()
  | _ -> Alcotest.fail "version accepted")

(* --- Route ------------------------------------------------------------ *)

let test_route_longest_prefix () =
  let r = Route.create () in
  Route.add r
    {
      Route.net = addr "0.0.0.0";
      mask = addr "0.0.0.0";
      hop = Route.Gateway (addr "10.0.0.254");
      iface = 0;
    };
  Route.add r
    {
      Route.net = addr "10.0.0.0";
      mask = addr "255.255.255.0";
      hop = Route.Direct;
      iface = 0;
    };
  (match Route.lookup r (addr "10.0.0.9") with
  | Some (hop, 0) ->
    Alcotest.(check string) "direct" "10.0.0.9" (Addr.to_string hop)
  | _ -> Alcotest.fail "no direct route");
  match Route.lookup r (addr "192.168.1.1") with
  | Some (hop, 0) ->
    Alcotest.(check string) "via gw" "10.0.0.254" (Addr.to_string hop)
  | _ -> Alcotest.fail "no default route"

let test_route_no_match () =
  let r = Route.create () in
  Route.add r
    {
      Route.net = addr "10.0.0.0";
      mask = addr "255.0.0.0";
      hop = Route.Direct;
      iface = 0;
    };
  Alcotest.(check bool) "none" true (Route.lookup r (addr "11.0.0.1") = None)

let test_route_replace_and_generation () =
  let r = Route.create () in
  let g0 = Route.generation r in
  let e =
    {
      Route.net = addr "10.0.0.0";
      mask = addr "255.0.0.0";
      hop = Route.Direct;
      iface = 0;
    }
  in
  Route.add r e;
  Route.add r { e with Route.hop = Route.Gateway (addr "10.9.9.9") };
  Alcotest.(check int) "single entry" 1 (List.length (Route.entries r));
  Alcotest.(check bool) "generation moved" true (Route.generation r > g0);
  Route.remove r ~net:e.Route.net ~mask:e.Route.mask;
  Alcotest.(check int) "removed" 0 (List.length (Route.entries r))

(* --- Stack pair harness ------------------------------------------------ *)

type host = { ip : Ip.t; ctx : Psd_cost.Ctx.t }

let make_pair eng =
  let cpu_a = Psd_sim.Cpu.create eng and cpu_b = Psd_sim.Cpu.create eng in
  let plat = Psd_cost.Platform.decstation in
  let mk cpu a =
    let ctx =
      Psd_cost.Ctx.create ~eng ~cpu ~plat ~role:Psd_cost.Ctx.Library_stack
    in
    let routes = Route.create () in
    Route.add routes
      {
        Route.net = addr "10.0.0.0";
        mask = addr "255.255.255.0";
        hop = Route.Direct;
        iface = 0;
      };
    { ip = Ip.create ~ctx ~addr:a ~routes (); ctx }
  in
  let a = mk cpu_a (addr "10.0.0.1") in
  let b = mk cpu_b (addr "10.0.0.2") in
  (* Wire the two stacks together with a small propagation delay. *)
  let connect src dst =
    Ip.set_transmit src.ip (fun ~next_hop:_ ~iface:_ m ->
        let packet = Mbuf.to_bytes m in
        Psd_sim.Engine.schedule eng 1000 (fun () ->
            Psd_sim.Engine.spawn eng (fun () ->
                Ip.input dst.ip packet ~off:0 ~len:(Bytes.length packet))))
  in
  connect a b;
  connect b a;
  (a, b)

let run_to_completion eng = Psd_sim.Engine.run eng

let test_ip_end_to_end () =
  let eng = Psd_sim.Engine.create () in
  let a, b = make_pair eng in
  let got = ref [] in
  Ip.register b.ip ~proto:200 (fun ~hdr m ->
      got := (hdr.Header.src, Mbuf.to_string m) :: !got);
  Psd_sim.Engine.spawn eng (fun () ->
      match
        Ip.output a.ip ~proto:200 ~dst:(addr "10.0.0.2")
          (Mbuf.of_string "ping")
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "output failed");
  run_to_completion eng;
  match !got with
  | [ (src, payload) ] ->
    Alcotest.(check string) "src" "10.0.0.1" (Addr.to_string src);
    Alcotest.(check string) "payload" "ping" payload
  | _ -> Alcotest.fail "expected one delivery"

let test_ip_fragmentation_roundtrip () =
  let eng = Psd_sim.Engine.create () in
  let a, b = make_pair eng in
  let payload = String.init 4000 (fun i -> Char.chr (i mod 251)) in
  let got = ref None in
  Ip.register b.ip ~proto:201 (fun ~hdr:_ m -> got := Some (Mbuf.to_string m));
  Psd_sim.Engine.spawn eng (fun () ->
      match
        Ip.output a.ip ~proto:201 ~dst:(addr "10.0.0.2")
          (Mbuf.of_string payload)
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "output failed");
  run_to_completion eng;
  (match !got with
  | Some s -> Alcotest.(check string) "reassembled" payload s
  | None -> Alcotest.fail "not delivered");
  Alcotest.(check int) "fragments produced" 3 (Ip.stats a.ip).ip_fragmented;
  Alcotest.(check int) "reassembled count" 1 (Ip.stats b.ip).ip_reassembled

let test_ip_fragment_loss_times_out () =
  let eng = Psd_sim.Engine.create () in
  let a, b = make_pair eng in
  let got = ref None in
  Ip.register b.ip ~proto:201 (fun ~hdr:_ m -> got := Some (Mbuf.to_string m));
  (* re-wire a->b to lose the middle fragment of the three *)
  let nth = ref 0 in
  Ip.set_transmit a.ip (fun ~next_hop:_ ~iface:_ m ->
      let packet = Mbuf.to_bytes m in
      incr nth;
      if !nth <> 2 then
        Psd_sim.Engine.schedule eng 1000 (fun () ->
            Psd_sim.Engine.spawn eng (fun () ->
                Ip.input b.ip packet ~off:0 ~len:(Bytes.length packet))));
  Psd_sim.Engine.spawn eng (fun () ->
      match
        Ip.output a.ip ~proto:201 ~dst:(addr "10.0.0.2")
          (Mbuf.of_string (String.make 4000 'f'))
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "output failed");
  run_to_completion eng;
  Alcotest.(check (option string)) "never delivered" None !got;
  Alcotest.(check int) "reassembly gave up" 1 (Ip.reass_timed_out b.ip);
  Alcotest.(check int) "no datagram counted" 0
    (Ip.stats b.ip).ip_reassembled

let test_ip_dont_frag () =
  let eng = Psd_sim.Engine.create () in
  let a, _b = make_pair eng in
  let result = ref (Ok ()) in
  Psd_sim.Engine.spawn eng (fun () ->
      result :=
        Ip.output a.ip ~dont_frag:true ~proto:200 ~dst:(addr "10.0.0.2")
          (Mbuf.of_string (String.make 3000 'x')));
  run_to_completion eng;
  Alcotest.(check bool) "would fragment" true (!result = Error `Would_fragment)

let test_ip_no_route () =
  let eng = Psd_sim.Engine.create () in
  let a, _b = make_pair eng in
  let result = ref (Ok ()) in
  Psd_sim.Engine.spawn eng (fun () ->
      result :=
        Ip.output a.ip ~proto:200 ~dst:(addr "192.168.7.7")
          (Mbuf.of_string "x"));
  run_to_completion eng;
  Alcotest.(check bool) "no route" true (!result = Error `No_route);
  Alcotest.(check int) "stat" 1 (Ip.stats a.ip).ip_no_route

let test_ip_wrong_addr_dropped () =
  let eng = Psd_sim.Engine.create () in
  let _a, b = make_pair eng in
  (* Hand-build a packet addressed to someone else. *)
  let h = { (sample_header ()) with Header.dst = addr "10.0.0.99" } in
  let b' = Bytes.create (Header.size + 100) in
  Header.encode_into b' ~off:0 h;
  Psd_sim.Engine.spawn eng (fun () ->
      Ip.input b.ip b' ~off:0 ~len:(Bytes.length b'));
  run_to_completion eng;
  Alcotest.(check int) "dropped" 1 (Ip.stats b.ip).ip_dropped_addr

let test_ip_unknown_proto_dropped () =
  let eng = Psd_sim.Engine.create () in
  let a, b = make_pair eng in
  Psd_sim.Engine.spawn eng (fun () ->
      ignore
        (Ip.output a.ip ~proto:99 ~dst:(addr "10.0.0.2") (Mbuf.of_string "x")));
  run_to_completion eng;
  Alcotest.(check int) "dropped proto" 1 (Ip.stats b.ip).ip_dropped_proto

let test_ip_too_big () =
  let eng = Psd_sim.Engine.create () in
  let a, _ = make_pair eng in
  let result = ref (Ok ()) in
  Psd_sim.Engine.spawn eng (fun () ->
      result :=
        Ip.output a.ip ~proto:200 ~dst:(addr "10.0.0.2")
          (Mbuf.of_string (String.make 70_000 'x')));
  run_to_completion eng;
  Alcotest.(check bool) "too big" true (!result = Error `Too_big)

(* --- Reassembly corner cases ------------------------------------------- *)

let feed_fragment reass ~ident ~off ~mf payload =
  let h =
    {
      (sample_header ()) with
      Header.ident;
      frag_off = off;
      more_frags = mf;
      total_len = Header.size + String.length payload;
    }
  in
  Reass.input reass h (Mbuf.of_string payload)

let test_reass_out_of_order () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  Alcotest.(check bool) "tail first" true
    (feed_fragment r ~ident:1 ~off:8 ~mf:false "WORLD" = None);
  match feed_fragment r ~ident:1 ~off:0 ~mf:true "HELLO..." with
  | Some (h, m) ->
    Alcotest.(check string) "joined" "HELLO...WORLD" (Mbuf.to_string m);
    Alcotest.(check int) "len" (Header.size + 13) h.Header.total_len;
    Alcotest.(check bool) "frag cleared" false h.Header.more_frags
  | None -> Alcotest.fail "incomplete"

let test_reass_hole_not_complete () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  ignore (feed_fragment r ~ident:2 ~off:0 ~mf:true "12345678");
  Alcotest.(check bool) "hole" true
    (feed_fragment r ~ident:2 ~off:16 ~mf:false "tail" = None);
  Alcotest.(check int) "pending" 1 (Reass.pending r)

let test_reass_interleaved_datagrams () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  ignore (feed_fragment r ~ident:10 ~off:0 ~mf:true "AAAAAAAA");
  ignore (feed_fragment r ~ident:11 ~off:0 ~mf:true "BBBBBBBB");
  (match feed_fragment r ~ident:11 ~off:8 ~mf:false "bb" with
  | Some (_, m) -> Alcotest.(check string) "b" "BBBBBBBBbb" (Mbuf.to_string m)
  | None -> Alcotest.fail "b incomplete");
  match feed_fragment r ~ident:10 ~off:8 ~mf:false "aa" with
  | Some (_, m) -> Alcotest.(check string) "a" "AAAAAAAAaa" (Mbuf.to_string m)
  | None -> Alcotest.fail "a incomplete"

let test_reass_timeout () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng ~timeout_ns:(Psd_sim.Time.ms 100) () in
  ignore (feed_fragment r ~ident:3 ~off:0 ~mf:true "xxxxxxxx");
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "timed out" 1 (Reass.timed_out r);
  Alcotest.(check int) "pending cleared" 0 (Reass.pending r);
  (* Late fragment restarts a fresh datagram rather than completing. *)
  Alcotest.(check bool) "late tail alone" true
    (feed_fragment r ~ident:3 ~off:8 ~mf:false "tail" = None)

let test_reass_inconsistent_final () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  (* the true final fragment fixes the datagram's total length at 13 *)
  ignore (feed_fragment r ~ident:5 ~off:8 ~mf:false "WORLD");
  (* a damaged copy claiming a different end must not re-truncate it *)
  Alcotest.(check bool) "conflicting final rejected" true
    (feed_fragment r ~ident:5 ~off:8 ~mf:false "ab" = None);
  Alcotest.(check int) "counted" 1 (Reass.dropped_inconsistent r);
  match feed_fragment r ~ident:5 ~off:0 ~mf:true "HELLO..." with
  | Some (_, m) ->
    Alcotest.(check string) "completes at the original total"
      "HELLO...WORLD" (Mbuf.to_string m)
  | None -> Alcotest.fail "incomplete"

let test_reass_fragment_beyond_total () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  ignore (feed_fragment r ~ident:6 ~off:8 ~mf:false "IJ");
  (* data past the established end of the datagram is damage *)
  Alcotest.(check bool) "overshoot rejected" true
    (feed_fragment r ~ident:6 ~off:16 ~mf:true "XX" = None);
  Alcotest.(check int) "counted" 1 (Reass.dropped_inconsistent r);
  match feed_fragment r ~ident:6 ~off:0 ~mf:true "ABCDEFGH" with
  | Some (_, m) ->
    Alcotest.(check string) "intact" "ABCDEFGHIJ" (Mbuf.to_string m)
  | None -> Alcotest.fail "incomplete"

let test_reass_final_below_extent () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  ignore (feed_fragment r ~ident:7 ~off:8 ~mf:true "BBBBBBBB");
  (* a final that ends before data we already hold cannot be genuine *)
  Alcotest.(check bool) "short final rejected" true
    (feed_fragment r ~ident:7 ~off:8 ~mf:false "b" = None);
  Alcotest.(check int) "counted" 1 (Reass.dropped_inconsistent r);
  ignore (feed_fragment r ~ident:7 ~off:0 ~mf:true "AAAAAAAA");
  match feed_fragment r ~ident:7 ~off:16 ~mf:false "CC" with
  | Some (_, m) ->
    Alcotest.(check string) "intact" "AAAAAAAABBBBBBBBCC" (Mbuf.to_string m)
  | None -> Alcotest.fail "incomplete"

let test_reass_duplicate_fragment () =
  let eng = Psd_sim.Engine.create () in
  let r = Reass.create eng () in
  ignore (feed_fragment r ~ident:4 ~off:0 ~mf:true "ABCDEFGH");
  ignore (feed_fragment r ~ident:4 ~off:0 ~mf:true "ABCDEFGH");
  match feed_fragment r ~ident:4 ~off:8 ~mf:false "IJ" with
  | Some (_, m) -> Alcotest.(check string) "dedup" "ABCDEFGHIJ" (Mbuf.to_string m)
  | None -> Alcotest.fail "incomplete"

let prop_header_roundtrip =
  QCheck.Test.make ~name:"ip header: encode/decode roundtrip" ~count:300
    QCheck.(
      quad (int_bound 0xffff) (int_bound 255) (int_bound 0xffff)
        (pair (int_bound 0xff) (int_bound 1000)))
    (fun (ident, ttl, _, (proto, payload)) ->
      let h =
        {
          Header.src = Addr.of_int 0x0a000001;
          dst = Addr.of_int 0x0a000002;
          proto;
          ttl;
          ident;
          dont_frag = false;
          more_frags = false;
          frag_off = 0;
          total_len = Header.size + payload;
        }
      in
      let b = Bytes.create Header.size in
      Header.encode_into b ~off:0 h;
      match Header.decode b ~off:0 ~len:(Header.size + payload) with
      | Ok h' -> h = h'
      | Error _ -> false)

(* --- ICMP codec -------------------------------------------------------- *)

let test_icmp_echo_roundtrip () =
  let msg = Icmp.Echo_request { id = 7; seq = 42; payload = "ping-data" } in
  let b = Icmp.encode msg in
  (match Icmp.decode b with
  | Ok (Icmp.Echo_request { id = 7; seq = 42; payload = "ping-data" }) -> ()
  | _ -> Alcotest.fail "echo request roundtrip");
  let reply = Icmp.Echo_reply { id = 7; seq = 42; payload = "ping-data" } in
  match Icmp.decode (Icmp.encode reply) with
  | Ok (Icmp.Echo_reply { id = 7; seq = 42; _ }) -> ()
  | _ -> Alcotest.fail "echo reply roundtrip"

let test_icmp_unreachable_roundtrip () =
  let original = Bytes.of_string (String.make 28 '\x05') in
  let msg =
    Icmp.Dest_unreachable { code = Icmp.code_port_unreachable; original }
  in
  match Icmp.decode (Icmp.encode msg) with
  | Ok (Icmp.Dest_unreachable { code; original = o }) ->
    Alcotest.(check int) "code" 3 code;
    Alcotest.(check bytes) "original" original o
  | _ -> Alcotest.fail "unreachable roundtrip"

let test_icmp_rejects_corruption () =
  let b = Icmp.encode (Icmp.Echo_request { id = 1; seq = 1; payload = "x" }) in
  Bytes.set b 4 '\xff';
  match Icmp.decode b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt icmp accepted"

let test_icmp_echo_between_stacks () =
  let eng = Psd_sim.Engine.create () in
  let a, b = make_pair eng in
  let icmp_a = Icmp.create ~ctx:a.ctx ~ip:a.ip () in
  let _icmp_b = Icmp.create ~ctx:b.ctx ~ip:b.ip () in
  let replied = ref None in
  Icmp.on_reply icmp_a (fun ~src ~id ~seq ~payload:_ ->
      replied := Some (src, id, seq));
  Psd_sim.Engine.spawn eng (fun () ->
      Icmp.ping icmp_a ~dst:(addr "10.0.0.2") ~id:3 ~seq:9 ());
  run_to_completion eng;
  (match !replied with
  | Some (src, 3, 9) ->
    Alcotest.(check string) "from" "10.0.0.2" (Addr.to_string src)
  | _ -> Alcotest.fail "no echo reply");
  Alcotest.(check int) "b answered one request" 1
    (Icmp.stats _icmp_b).Icmp.echo_requests_in

let () =
  Alcotest.run "psd_ip"
    [
      ( "addr",
        [
          Alcotest.test_case "parse" `Quick test_addr_parse;
          Alcotest.test_case "parse errors" `Quick test_addr_parse_errors;
          Alcotest.test_case "subnet" `Quick test_addr_subnet;
        ] );
      ( "header",
        [
          Alcotest.test_case "roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "frag fields" `Quick test_header_frag_fields;
          Alcotest.test_case "checksum" `Quick
            test_header_checksum_detects_corruption;
          Alcotest.test_case "rejects" `Quick test_header_rejects;
          QCheck_alcotest.to_alcotest prop_header_roundtrip;
        ] );
      ( "route",
        [
          Alcotest.test_case "longest prefix" `Quick test_route_longest_prefix;
          Alcotest.test_case "no match" `Quick test_route_no_match;
          Alcotest.test_case "replace+generation" `Quick
            test_route_replace_and_generation;
        ] );
      ( "stack",
        [
          Alcotest.test_case "end to end" `Quick test_ip_end_to_end;
          Alcotest.test_case "fragmentation" `Quick
            test_ip_fragmentation_roundtrip;
          Alcotest.test_case "dont frag" `Quick test_ip_dont_frag;
          Alcotest.test_case "fragment loss times out" `Quick
            test_ip_fragment_loss_times_out;
          Alcotest.test_case "no route" `Quick test_ip_no_route;
          Alcotest.test_case "wrong addr" `Quick test_ip_wrong_addr_dropped;
          Alcotest.test_case "unknown proto" `Quick
            test_ip_unknown_proto_dropped;
          Alcotest.test_case "too big" `Quick test_ip_too_big;
        ] );
      ( "icmp",
        [
          Alcotest.test_case "echo roundtrip" `Quick test_icmp_echo_roundtrip;
          Alcotest.test_case "unreachable roundtrip" `Quick
            test_icmp_unreachable_roundtrip;
          Alcotest.test_case "corruption" `Quick test_icmp_rejects_corruption;
          Alcotest.test_case "echo between stacks" `Quick
            test_icmp_echo_between_stacks;
        ] );
      ( "reass",
        [
          Alcotest.test_case "out of order" `Quick test_reass_out_of_order;
          Alcotest.test_case "hole" `Quick test_reass_hole_not_complete;
          Alcotest.test_case "interleaved" `Quick
            test_reass_interleaved_datagrams;
          Alcotest.test_case "timeout" `Quick test_reass_timeout;
          Alcotest.test_case "duplicate" `Quick test_reass_duplicate_fragment;
          Alcotest.test_case "inconsistent final" `Quick
            test_reass_inconsistent_final;
          Alcotest.test_case "beyond total" `Quick
            test_reass_fragment_beyond_total;
          Alcotest.test_case "final below extent" `Quick
            test_reass_final_below_extent;
        ] );
    ]
