open Psd_cost

let ( => ) name b = Alcotest.(check bool) name true b

let test_frame_time_wire_rate () =
  let p = Platform.decstation in
  (* 1514-byte frame at 10 Mb/s: (1514+8)*8 = 12176 bits = 1217.6 us *)
  Alcotest.(check int) "max frame" (1_217_600 + 9_600)
    (Platform.frame_time p 1514);
  "min frame padded cost positive" => (Platform.frame_time p 60 > 57_000)

let test_platforms_sane () =
  let d = Platform.decstation and g = Platform.gateway486 in
  "gateway device reads are an order slower"
  => (g.Platform.device_read_per_byte > 4 * d.Platform.device_read_per_byte);
  "sync: kernel < library < server"
  => (d.Platform.sync_kernel < d.Platform.sync_light
     && d.Platform.sync_light < d.Platform.sync_heavy);
  "wakeups: library < kernel < server"
  => (d.Platform.wakeup_light < d.Platform.wakeup_kernel
     && d.Platform.wakeup_kernel < d.Platform.wakeup_heavy)

let test_effective_platform_profiles () =
  let base = Platform.decstation in
  let m25 = Config.effective_platform base Config.Mach25 in
  let bnr2 = Config.effective_platform base Config.Psd in
  "4.3BSD udp layer heavier than Net/2"
  => (m25.Platform.udp_fixed > 3 * bnr2.Platform.udp_fixed);
  let ultrix = Config.effective_platform base Config.Ultrix in
  "ultrix protocols slower than mach 2.5"
  => (ultrix.Platform.tcp_fixed > m25.Platform.tcp_fixed);
  let bsd386 = Config.effective_platform base Config.Bsd386 in
  "386bsd interrupt handling inflated"
  => (bsd386.Platform.intr > 2 * bnr2.Platform.intr)

let test_config_rows () =
  Alcotest.(check int) "dec rows" 6 (List.length Config.decstation_rows);
  Alcotest.(check int) "gateway rows" 6 (List.length Config.gateway_rows);
  Alcotest.(check int) "table3 rows" 5 (List.length Config.table3_rows);
  "bug flags" => Config.bsd386_kernel.Config.large_tcp_bug;
  "newapi flag"
  => (Config.library_newapi_shm.Config.api = Config.Newapi);
  (* labels are unique within each table *)
  let labels = List.map (fun c -> c.Config.label) Config.decstation_rows in
  Alcotest.(check int) "unique labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let test_ctx_roles () =
  let eng = Psd_sim.Engine.create () in
  let cpu = Psd_sim.Cpu.create eng in
  let plat = Platform.decstation in
  let k = Ctx.create ~eng ~cpu ~plat ~role:Ctx.Kernel_stack in
  let s = Ctx.create ~eng ~cpu ~plat ~role:Ctx.Server_stack in
  let l = Ctx.create ~eng ~cpu ~plat ~role:Ctx.Library_stack in
  "kernel sync cheapest" => (k.Ctx.sync_ns < l.Ctx.sync_ns);
  "server sync heaviest" => (s.Ctx.sync_ns > l.Ctx.sync_ns);
  "kernel runs at kernel priority" => (k.Ctx.prio = Psd_sim.Cpu.Kernel);
  "server runs at user priority" => (s.Ctx.prio = Psd_sim.Cpu.User)

let test_ctx_charging_and_breakdown () =
  let eng = Psd_sim.Engine.create () in
  let cpu = Psd_sim.Cpu.create eng in
  let ctx =
    Ctx.create ~eng ~cpu ~plat:Platform.decstation ~role:Ctx.Library_stack
  in
  let b = Breakdown.create () in
  ctx.Ctx.breakdown <- Some b;
  Psd_sim.Engine.spawn eng (fun () ->
      Ctx.charge ctx Phase.Proto_output 1_000;
      Ctx.charge ctx Phase.Proto_output 2_000;
      Ctx.charge ctx Phase.Ip_output 500;
      Ctx.account ctx Phase.Wire 999);
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "accumulated" 3_000 (Breakdown.total b Phase.Proto_output);
  Alcotest.(check int) "other phase" 500 (Breakdown.total b Phase.Ip_output);
  Alcotest.(check int) "account does not consume cpu" 999
    (Breakdown.total b Phase.Wire);
  Alcotest.(check int) "grand total" 4_499 (Breakdown.grand_total b);
  Alcotest.(check int) "cpu time excludes account" 3_500
    (Psd_sim.Cpu.busy_time cpu);
  Breakdown.reset b;
  Alcotest.(check int) "reset" 0 (Breakdown.grand_total b)

let test_phase_labels_cover_table4 () =
  (* every Table 4 row label is distinct and printable *)
  let labels = List.map Phase.label Phase.all in
  Alcotest.(check int) "distinct" (List.length labels)
    (List.length (List.sort_uniq compare labels));
  Alcotest.(check int) "send path rows" 4 (List.length Phase.send_path);
  Alcotest.(check int) "receive path rows" 8 (List.length Phase.receive_path)

let () =
  Alcotest.run "psd_cost"
    [
      ( "platform",
        [
          Alcotest.test_case "frame time" `Quick test_frame_time_wire_rate;
          Alcotest.test_case "sanity" `Quick test_platforms_sane;
          Alcotest.test_case "os profiles" `Quick
            test_effective_platform_profiles;
        ] );
      ("config", [ Alcotest.test_case "rows" `Quick test_config_rows ]);
      ( "ctx",
        [
          Alcotest.test_case "roles" `Quick test_ctx_roles;
          Alcotest.test_case "charging+breakdown" `Quick
            test_ctx_charging_and_breakdown;
          Alcotest.test_case "phases" `Quick test_phase_labels_cover_table4;
        ] );
    ]
