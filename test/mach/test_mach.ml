open Psd_mach

let ( => ) name b = Alcotest.(check bool) name true b

let make_host ?(name = "h") () =
  let eng = Psd_sim.Engine.create () in
  let host = Host.create ~eng ~plat:Psd_cost.Platform.decstation ~name in
  (eng, host)

(* --- Task -------------------------------------------------------------- *)

let test_task_lifecycle () =
  let _eng, host = make_host () in
  let t = Task.create host ~name:"init" () in
  "alive" => Task.alive t;
  let log = ref [] in
  Task.on_exit t (fun () -> log := "a" :: !log);
  Task.on_exit t (fun () -> log := "b" :: !log);
  Task.exit t;
  "dead" => not (Task.alive t);
  Alcotest.(check (list string)) "hooks in order" [ "a"; "b" ] (List.rev !log);
  Task.exit t;
  Alcotest.(check int) "exit idempotent" 2 (List.length !log)

let test_task_fork () =
  let _eng, host = make_host () in
  let parent = Task.create host ~name:"parent" () in
  let child = Task.fork parent ~name:"child" in
  (* physical identity: a task transitively holds the engine (timer
     wheel, event heap), so structural [=] would walk into closures *)
  "parent link"
  => (match Task.parent child with Some p -> p == parent | None -> false);
  "distinct ids" => (Task.id parent <> Task.id child);
  Task.exit parent;
  Alcotest.check_raises "fork after death"
    (Invalid_argument "Task.fork: dead task") (fun () ->
      ignore (Task.fork parent ~name:"x"))

(* --- Ipc --------------------------------------------------------------- *)

let mk_ctx eng host =
  Psd_cost.Ctx.create ~eng ~cpu:(Host.cpu host)
    ~plat:(Host.plat host) ~role:Psd_cost.Ctx.Library_stack

let test_ipc_rpc_roundtrip () =
  let eng, host = make_host () in
  let port : (int, int) Ipc.port = Ipc.create_port host in
  Ipc.serve port (fun x -> x * 2);
  let results = ref [] in
  Psd_sim.Engine.spawn eng (fun () ->
      let ctx = mk_ctx eng host in
      for i = 1 to 3 do
        results := Ipc.call port ~ctx ~phase:Psd_cost.Phase.Control i :: !results
      done);
  Psd_sim.Engine.run eng;
  Alcotest.(check (list int)) "replies" [ 2; 4; 6 ] (List.rev !results)

let test_ipc_costs_charged () =
  let eng, host = make_host () in
  let port : (unit, unit) Ipc.port = Ipc.create_port host in
  Ipc.serve port (fun () -> ());
  let elapsed = ref 0 in
  Psd_sim.Engine.spawn eng (fun () ->
      let ctx = mk_ctx eng host in
      let t0 = Psd_sim.Engine.now eng in
      ignore (Ipc.call port ~ctx ~phase:Psd_cost.Phase.Control ());
      elapsed := Psd_sim.Engine.now eng - t0);
  Psd_sim.Engine.run eng;
  (* trap + 2 messages + 2 wakeups on the DECstation: several hundred us *)
  "rpc costs simulated time" => (!elapsed > Psd_sim.Time.us 200);
  "but well under a millisecond" => (!elapsed < Psd_sim.Time.ms 1)

let test_ipc_blocking_handler_with_workers () =
  (* One handler blocks forever; other workers keep serving. *)
  let eng, host = make_host () in
  let port : (bool, unit) Ipc.port = Ipc.create_port host in
  let forever = Psd_sim.Cond.create eng in
  Ipc.serve port ~workers:2 (fun block ->
      if block then Psd_sim.Cond.wait forever);
  let served = ref 0 in
  Psd_sim.Engine.spawn eng (fun () ->
      let ctx = mk_ctx eng host in
      ignore (Ipc.oneway port ~ctx ~phase:Psd_cost.Phase.Control true);
      ignore (Ipc.call port ~ctx ~phase:Psd_cost.Phase.Control false);
      incr served);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 1);
  Alcotest.(check int) "second worker served" 1 !served

(* --- Pktchan ------------------------------------------------------------ *)

let test_pktchan_ipc_delivers_in_order () =
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:Pktchan.Ipc ~deliver_fixed:1000
      ~deliver_per_byte:10
  in
  let got = ref [] in
  Psd_sim.Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Bytes.to_string (Pktchan.recv ch) :: !got
      done);
  Psd_sim.Engine.spawn eng (fun () ->
      List.iter
        (fun s -> Pktchan.deliver ch (Bytes.of_string s))
        [ "one"; "two"; "three" ]);
  Psd_sim.Engine.run eng;
  Alcotest.(check (list string)) "order" [ "one"; "two"; "three" ]
    (List.rev !got);
  Alcotest.(check int) "ipc wakes per packet" 3 (Pktchan.wakeups ch)

let test_pktchan_shm_batches_wakeups () =
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:(Pktchan.Shm 16) ~deliver_fixed:1000
      ~deliver_per_byte:10
  in
  let got = ref 0 in
  (* consumer that takes a while per packet: deliveries pile up *)
  Psd_sim.Engine.spawn eng (fun () ->
      for _ = 1 to 6 do
        ignore (Pktchan.recv ch);
        incr got;
        Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 1)
      done);
  Psd_sim.Engine.spawn eng (fun () ->
      for i = 1 to 6 do
        Pktchan.deliver ch (Bytes.make 10 (Char.chr i));
        Psd_sim.Engine.sleep eng (Psd_sim.Time.us 50)
      done);
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "all delivered" 6 !got;
  "wakeups amortised over the train" => (Pktchan.wakeups ch < 6)

let test_pktchan_shm_drops_when_full () =
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:(Pktchan.Shm 2) ~deliver_fixed:0
      ~deliver_per_byte:0
  in
  Psd_sim.Engine.spawn eng (fun () ->
      for _ = 1 to 5 do
        Pktchan.deliver ch (Bytes.create 4)
      done);
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "kept ring capacity" 2 (Pktchan.queued ch);
  Alcotest.(check int) "dropped the rest" 3 (Pktchan.dropped ch)

let test_pktchan_shm_tail_drop_preserves_queue () =
  (* Overflow must tail-drop: the packets already in the ring are the
     oldest deliveries, byte-for-byte, never overwritten by later ones —
     and with no receiver blocked the kernel never pays a wakeup. *)
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:(Pktchan.Shm 2) ~deliver_fixed:0
      ~deliver_per_byte:0
  in
  Psd_sim.Engine.spawn eng (fun () ->
      List.iter
        (fun s -> Pktchan.deliver ch (Bytes.of_string s))
        [ "a"; "b"; "c"; "d"; "e" ]);
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "dropped the overflow" 3 (Pktchan.dropped ch);
  Alcotest.(check int) "no wakeups while receiver not blocked" 0
    (Pktchan.wakeups ch);
  let kept = List.map Bytes.to_string (Pktchan.drain ch) in
  Alcotest.(check (list string)) "oldest survive, in order" [ "a"; "b" ] kept;
  Alcotest.(check int) "ring empty after drain" 0 (Pktchan.queued ch)

let test_pktchan_recv_batch_takes_train () =
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:(Pktchan.Shm 8) ~deliver_fixed:0
      ~deliver_per_byte:0
  in
  let batch = ref [] in
  Psd_sim.Engine.spawn eng (fun () ->
      List.iter
        (fun s -> Pktchan.deliver ch (Bytes.of_string s))
        [ "x"; "y"; "z" ]);
  Psd_sim.Engine.spawn eng (fun () ->
      Psd_sim.Engine.sleep eng (Psd_sim.Time.us 10);
      batch := List.map Bytes.to_string (Pktchan.recv_batch ch));
  Psd_sim.Engine.run eng;
  Alcotest.(check (list string)) "whole train in one call" [ "x"; "y"; "z" ]
    !batch;
  Alcotest.(check int) "queued train needs no wakeup" 0 (Pktchan.wakeups ch)

(* --- Pktchan tx --------------------------------------------------------- *)

let frame_to dst_mac src_mac =
  let b = Bytes.make 64 '\x00' in
  Psd_link.Frame.set_header b ~off:0 ~dst:dst_mac ~src:src_mac
    ~ethertype:Psd_link.Frame.ethertype_ip;
  (* minimal IP header so session filters can parse if needed *)
  Psd_util.Codec.set_u8 b 14 0x45;
  b

let test_pktchan_send_batch_order () =
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:Pktchan.Ipc ~deliver_fixed:1000
      ~deliver_per_byte:10
  in
  let got = ref [] in
  Psd_sim.Engine.spawn eng (fun () ->
      Pktchan.send_batch ch
        (List.map Bytes.of_string [ "a"; "bb"; "ccc" ]));
  Psd_sim.Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Bytes.to_string (Pktchan.tx_recv ch) :: !got
      done);
  Psd_sim.Engine.run eng;
  Alcotest.(check (list string))
    "batch comes out in order" [ "a"; "bb"; "ccc" ] (List.rev !got);
  Alcotest.(check int) "ipc pays a message per frame" 3
    (Pktchan.tx_wakeups ch);
  Alcotest.(check int) "all accepted" 3 (Pktchan.tx_sent ch)

let test_pktchan_tx_ring_tail_drop () =
  let eng, host = make_host () in
  let ch =
    Pktchan.create host ~kind:(Pktchan.Shm 2) ~deliver_fixed:0
      ~deliver_per_byte:0
  in
  Psd_sim.Engine.spawn eng (fun () ->
      Pktchan.send_batch ch
        (List.map Bytes.of_string [ "1"; "2"; "3"; "4"; "5" ]));
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "kept tx ring capacity" 2 (Pktchan.tx_queued ch);
  Alcotest.(check int) "tail-dropped the rest" 3 (Pktchan.tx_dropped ch);
  let kept = List.map Bytes.to_string (Pktchan.tx_drain ch) in
  Alcotest.(check (list string)) "oldest frames survive" [ "1"; "2" ] kept;
  Alcotest.(check int) "no consumer, no wakeups" 0 (Pktchan.tx_wakeups ch)

(* Batch/singleton equivalence through a full tx chain: application
   frames go through the tx channel, a kernel fiber moves them onto a
   (faulty) wire, and a second NIC records what arrives. Per-frame
   send/tx_recv/transmit and send_batch/tx_recv_batch/transmit_batch
   must produce the same accepted count and the same delivered frame
   sequence — including under the PR 2 fault policies, whose RNG draws
   depend on event order and so detect any reordering. *)
let tx_chain ~use_batch ~fault_rate =
  let eng, host = make_host () in
  let seg = Psd_link.Segment.create eng () in
  (match fault_rate with
  | Some rate ->
    let f =
      Psd_link.Fault.create
        ~rng:(Psd_util.Rng.split (Psd_sim.Engine.rng eng))
        (Psd_link.Fault.chaos rate)
    in
    Psd_link.Segment.set_fault seg (Some f)
  | None -> ());
  let dev = Netdev.create host seg ~mac:(Psd_link.Macaddr.of_host_id 1) in
  let rx = Psd_link.Segment.attach seg ~mac:(Psd_link.Macaddr.of_host_id 2) in
  let got = ref [] in
  Psd_link.Segment.set_rx rx (fun b -> got := Bytes.to_string b :: !got);
  let ch =
    Pktchan.create host ~kind:(Pktchan.Shm 32) ~deliver_fixed:100
      ~deliver_per_byte:1
  in
  let n = 20 in
  let frames =
    List.init n (fun i ->
        let b =
          frame_to (Psd_link.Macaddr.of_host_id 2)
            (Psd_link.Macaddr.of_host_id 1)
        in
        Bytes.set b 20 (Char.chr (i land 0xff));
        b)
  in
  Psd_sim.Engine.spawn eng (fun () ->
      if use_batch then Pktchan.send_batch ch frames
      else List.iter (fun f -> Pktchan.send ch f) frames);
  Psd_sim.Engine.spawn eng (fun () ->
      let ctx = Host.kernel_ctx host in
      let rec pump moved =
        if moved < n then
          if use_batch then begin
            let pkts = Pktchan.tx_recv_batch ch in
            Netdev.transmit_batch dev ~ctx ~from_user:true pkts;
            pump (moved + List.length pkts)
          end
          else begin
            Netdev.transmit dev ~ctx ~from_user:true (Pktchan.tx_recv ch);
            pump (moved + 1)
          end
      in
      pump 0);
  Psd_sim.Engine.run eng;
  (Pktchan.tx_sent ch, Psd_link.Segment.frames_sent seg, List.rev !got)

let test_pktchan_tx_batch_singleton_equivalence () =
  List.iter
    (fun fault_rate ->
      let sent_s, wire_s, got_s = tx_chain ~use_batch:false ~fault_rate in
      let sent_b, wire_b, got_b = tx_chain ~use_batch:true ~fault_rate in
      Alcotest.(check int) "same frames accepted" sent_s sent_b;
      Alcotest.(check int) "same frames on the wire" wire_s wire_b;
      Alcotest.(check (list string))
        "same frames delivered, same order" got_s got_b)
    [ None; Some 0.05; Some 0.2 ]

(* --- Netdev ------------------------------------------------------------- *)

let test_netdev_filter_priority_first_match () =
  let eng, host = make_host () in
  let seg = Psd_link.Segment.create eng () in
  let dev = Netdev.create host seg ~mac:(Psd_link.Macaddr.of_host_id 1) in
  let other = Psd_link.Segment.attach seg ~mac:(Psd_link.Macaddr.of_host_id 2) in
  let hits_hi = ref 0 and hits_lo = ref 0 in
  let accept_all = Psd_bpf.Filter.ip_all in
  let _lo =
    Netdev.attach dev ~prio:50 ~prog:accept_all
      ~sink:(fun _ -> incr hits_lo) ()
  in
  let hi =
    Netdev.attach dev ~prio:5 ~prog:accept_all ~sink:(fun _ -> incr hits_hi) ()
  in
  Psd_link.Segment.transmit other
    (frame_to (Netdev.mac dev) (Psd_link.Macaddr.of_host_id 2));
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "high priority won" 1 !hits_hi;
  Alcotest.(check int) "low priority skipped" 0 !hits_lo;
  (* detach the high-priority one: low now receives *)
  Netdev.detach dev hi;
  Psd_link.Segment.transmit other
    (frame_to (Netdev.mac dev) (Psd_link.Macaddr.of_host_id 2));
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "fallback after detach" 1 !hits_lo

let test_netdev_unmatched_counted () =
  let eng, host = make_host () in
  let seg = Psd_link.Segment.create eng () in
  let dev = Netdev.create host seg ~mac:(Psd_link.Macaddr.of_host_id 1) in
  let other = Psd_link.Segment.attach seg ~mac:(Psd_link.Macaddr.of_host_id 2) in
  Psd_link.Segment.transmit other
    (frame_to (Netdev.mac dev) (Psd_link.Macaddr.of_host_id 2));
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "rx seen" 1 (Netdev.rx_frames dev);
  Alcotest.(check int) "unmatched dropped" 1 (Netdev.rx_unmatched dev)

let test_netdev_rejects_invalid_filter () =
  let eng, host = make_host () in
  ignore eng;
  let seg = Psd_sim.Engine.create () |> fun e -> Psd_link.Segment.create e () in
  let dev = Netdev.create host seg ~mac:(Psd_link.Macaddr.of_host_id 1) in
  match
    Netdev.attach dev ~prog:[| Psd_bpf.Insn.Ld (Psd_bpf.Insn.W, Psd_bpf.Insn.Imm 0) |]
      ~sink:(fun _ -> ()) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid program accepted"

let test_netdev_deferred_rx_cheaper_interrupt () =
  (* Rx_deferred charges less CPU at interrupt time than Rx_full_copy. *)
  let run mode =
    let eng, host = make_host () in
    let seg = Psd_link.Segment.create eng () in
    let dev = Netdev.create host seg ~mac:(Psd_link.Macaddr.of_host_id 1) in
    Netdev.set_rx_mode dev mode;
    let other = Psd_link.Segment.attach seg ~mac:(Psd_link.Macaddr.of_host_id 2) in
    let _f =
      Netdev.attach dev ~prog:Psd_bpf.Filter.ip_all ~sink:(fun _ -> ()) ()
    in
    let big = Bytes.make 1400 'x' in
    let frame = Bytes.create (14 + Bytes.length big) in
    Psd_link.Frame.set_header frame ~off:0 ~dst:(Netdev.mac dev)
      ~src:(Psd_link.Macaddr.of_host_id 2)
      ~ethertype:Psd_link.Frame.ethertype_ip;
    Bytes.blit big 0 frame 14 (Bytes.length big);
    Psd_link.Segment.transmit other frame;
    Psd_sim.Engine.run eng;
    Psd_sim.Cpu.busy_time (Host.cpu host)
  in
  let full = run Netdev.Rx_full_copy in
  let deferred = run Netdev.Rx_deferred in
  "deferred interrupt is much cheaper" => (deferred * 2 < full)

let () =
  Alcotest.run "psd_mach"
    [
      ( "task",
        [
          Alcotest.test_case "lifecycle" `Quick test_task_lifecycle;
          Alcotest.test_case "fork" `Quick test_task_fork;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "rpc roundtrip" `Quick test_ipc_rpc_roundtrip;
          Alcotest.test_case "costs" `Quick test_ipc_costs_charged;
          Alcotest.test_case "blocking handler" `Quick
            test_ipc_blocking_handler_with_workers;
        ] );
      ( "pktchan",
        [
          Alcotest.test_case "ipc order" `Quick
            test_pktchan_ipc_delivers_in_order;
          Alcotest.test_case "shm batching" `Quick
            test_pktchan_shm_batches_wakeups;
          Alcotest.test_case "shm overflow" `Quick
            test_pktchan_shm_drops_when_full;
          Alcotest.test_case "shm tail-drop" `Quick
            test_pktchan_shm_tail_drop_preserves_queue;
          Alcotest.test_case "recv_batch train" `Quick
            test_pktchan_recv_batch_takes_train;
          Alcotest.test_case "send_batch order" `Quick
            test_pktchan_send_batch_order;
          Alcotest.test_case "tx ring tail-drop" `Quick
            test_pktchan_tx_ring_tail_drop;
          Alcotest.test_case "tx batch == singleton (faults)" `Quick
            test_pktchan_tx_batch_singleton_equivalence;
        ] );
      ( "netdev",
        [
          Alcotest.test_case "filter priority" `Quick
            test_netdev_filter_priority_first_match;
          Alcotest.test_case "unmatched" `Quick test_netdev_unmatched_counted;
          Alcotest.test_case "invalid filter" `Quick
            test_netdev_rejects_invalid_filter;
          Alcotest.test_case "deferred rx" `Quick
            test_netdev_deferred_rx_cheaper_interrupt;
        ] );
    ]
