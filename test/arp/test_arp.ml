open Psd_arp
open Psd_link

let addr = Psd_ip.Addr.of_string

let ( => ) name b = Alcotest.(check bool) name true b

let test_packet_roundtrip () =
  let p =
    {
      Packet.op = Packet.Request;
      sender_mac = Macaddr.of_host_id 1;
      sender_ip = addr "10.0.0.1";
      target_mac = Macaddr.of_string "\x00\x00\x00\x00\x00\x00";
      target_ip = addr "10.0.0.2";
    }
  in
  let b = Packet.encode p in
  Alcotest.(check int) "size" Packet.size (Bytes.length b);
  match Packet.decode b ~off:0 ~len:(Bytes.length b) with
  | Ok p' ->
    "op" => (p'.Packet.op = Packet.Request);
    "sender ip" => Psd_ip.Addr.equal p'.Packet.sender_ip (addr "10.0.0.1");
    "sender mac" => Macaddr.equal p'.Packet.sender_mac (Macaddr.of_host_id 1)
  | Error e -> Alcotest.fail e

let test_packet_rejects () =
  let b = Bytes.make 10 '\x00' in
  (match Packet.decode b ~off:0 ~len:10 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short accepted");
  let p =
    Packet.encode
      {
        Packet.op = Packet.Reply;
        sender_mac = Macaddr.of_host_id 1;
        sender_ip = addr "10.0.0.1";
        target_mac = Macaddr.of_host_id 2;
        target_ip = addr "10.0.0.2";
      }
  in
  Psd_util.Codec.set_u16 p 6 9 (* bad op *);
  match Packet.decode p ~off:0 ~len:(Bytes.length p) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad op accepted"

let test_cache_basic () =
  let eng = Psd_sim.Engine.create () in
  let c = Cache.create eng () in
  Alcotest.(check bool) "miss" true (Cache.lookup c (addr "10.0.0.9") = None);
  Cache.insert c (addr "10.0.0.9") (Macaddr.of_host_id 9);
  (match Cache.lookup c (addr "10.0.0.9") with
  | Some mac -> "hit" => Macaddr.equal mac (Macaddr.of_host_id 9)
  | None -> Alcotest.fail "expected hit");
  Cache.invalidate c (addr "10.0.0.9");
  "gone" => (Cache.lookup c (addr "10.0.0.9") = None)

let test_cache_expiry () =
  let eng = Psd_sim.Engine.create () in
  let c = Cache.create eng ~ttl_ns:(Psd_sim.Time.ms 100) () in
  Cache.insert c (addr "10.0.0.9") (Macaddr.of_host_id 9);
  Psd_sim.Engine.run_until eng (Psd_sim.Time.ms 50);
  "still valid" => (Cache.lookup c (addr "10.0.0.9") <> None);
  Psd_sim.Engine.run_until eng (Psd_sim.Time.ms 150);
  "expired" => (Cache.lookup c (addr "10.0.0.9") = None)

let test_cache_notification () =
  (* The paper's metastate-invalidation mechanism: subscribers (application
     caches) hear about every change. *)
  let eng = Psd_sim.Engine.create () in
  let c = Cache.create eng () in
  let events = ref [] in
  Cache.subscribe c (fun ip -> events := ip :: !events);
  Cache.insert c (addr "10.0.0.9") (Macaddr.of_host_id 9);
  Cache.invalidate c (addr "10.0.0.9");
  Alcotest.(check int) "two events" 2 (List.length !events)

let test_cache_flush () =
  let eng = Psd_sim.Engine.create () in
  let c = Cache.create eng () in
  Cache.insert c (addr "10.0.0.1") (Macaddr.of_host_id 1);
  Cache.insert c (addr "10.0.0.2") (Macaddr.of_host_id 2);
  Alcotest.(check int) "two" 2 (Cache.size c);
  Cache.flush c;
  Alcotest.(check int) "zero" 0 (Cache.size c)

(* Two resolvers wired over a lossless broadcast medium. *)
let wire_pair () =
  let eng = Psd_sim.Engine.create () in
  let make ip id peer_input =
    let cache = Cache.create eng () in
    let resolver = ref None in
    let send ~dst p =
      ignore dst;
      Psd_sim.Engine.schedule eng 10_000 (fun () ->
          match !peer_input with Some f -> f p | None -> ())
    in
    let r =
      Resolver.create ~eng ~cache ~my_ip:(addr ip)
        ~my_mac:(Macaddr.of_host_id id) ~send
        ~retry_interval_ns:(Psd_sim.Time.ms 50) ()
    in
    resolver := Some r;
    (r, cache)
  in
  let input_b = ref None and input_a = ref None in
  let ra, ca = make "10.0.0.1" 1 input_b in
  let rb, cb = make "10.0.0.2" 2 input_a in
  input_a := Some (fun p -> Resolver.input ra p);
  input_b := Some (fun p -> Resolver.input rb p);
  (eng, ra, ca, rb, cb)

let test_resolve_query_reply () =
  let eng, ra, ca, _rb, _cb = wire_pair () in
  let result = ref None in
  Resolver.resolve ra (addr "10.0.0.2") (fun r -> result := r);
  Psd_sim.Engine.run eng;
  (match !result with
  | Some mac -> "resolved" => Macaddr.equal mac (Macaddr.of_host_id 2)
  | None -> Alcotest.fail "resolution failed");
  "cached" => (Cache.lookup ca (addr "10.0.0.2") <> None);
  Alcotest.(check int) "no pending" 0 (Resolver.pending ra)

let test_resolve_cache_hit_no_traffic () =
  let eng, ra, ca, _rb, _cb = wire_pair () in
  Cache.insert ca (addr "10.0.0.2") (Macaddr.of_host_id 2);
  let immediate = ref false in
  Resolver.resolve ra (addr "10.0.0.2") (fun r ->
      immediate := r <> None);
  "cache hit is synchronous" => !immediate;
  Psd_sim.Engine.run eng

let test_resolve_timeout () =
  let eng = Psd_sim.Engine.create () in
  let cache = Cache.create eng () in
  let queries = ref 0 in
  let r =
    Resolver.create ~eng ~cache ~my_ip:(addr "10.0.0.1")
      ~my_mac:(Macaddr.of_host_id 1)
      ~send:(fun ~dst:_ _ -> incr queries)
      ~retries:3
      ~retry_interval_ns:(Psd_sim.Time.ms 10) ()
  in
  let result = ref (Some (Macaddr.of_host_id 9)) in
  Resolver.resolve r (addr "10.0.0.99") (fun res -> result := res);
  Psd_sim.Engine.run eng;
  "timed out with None" => (!result = None);
  Alcotest.(check int) "1 + 3 retries" 4 !queries;
  Alcotest.(check int) "no pending" 0 (Resolver.pending r)

let test_concurrent_resolutions_share_query () =
  let eng, ra, _ca, _rb, _cb = wire_pair () in
  let hits = ref 0 in
  for _ = 1 to 5 do
    Resolver.resolve ra (addr "10.0.0.2") (fun r ->
        if r <> None then incr hits)
  done;
  Alcotest.(check int) "single pending entry" 1 (Resolver.pending ra);
  Psd_sim.Engine.run eng;
  Alcotest.(check int) "all continuations fired" 5 !hits

let test_request_triggers_reply_and_learning () =
  let eng, ra, ca, rb, _cb = wire_pair () in
  ignore rb;
  (* b resolves a; a should end up knowing b as well (it replied to it) *)
  let done_ = ref false in
  Resolver.resolve ra (addr "10.0.0.2") (fun _ -> done_ := true);
  Psd_sim.Engine.run eng;
  "resolved" => !done_;
  "a learned b" => (Cache.lookup ca (addr "10.0.0.2") <> None)

let test_reply_loss_retries () =
  (* The wire eats the first ARP reply: the resolver must retry the
     query and succeed on the second round trip, not hang or fail. *)
  let eng = Psd_sim.Engine.create () in
  let input_a = ref None and input_b = ref None in
  let queries = ref 0 in
  let replies_to_drop = ref 1 in
  let make ip id peer_input ~drop =
    let cache = Cache.create eng () in
    let send ~dst p =
      ignore dst;
      if not (drop p) then
        Psd_sim.Engine.schedule eng 10_000 (fun () ->
            match !peer_input with Some f -> f p | None -> ())
    in
    let r =
      Resolver.create ~eng ~cache ~my_ip:(addr ip)
        ~my_mac:(Macaddr.of_host_id id) ~send
        ~retry_interval_ns:(Psd_sim.Time.ms 50) ()
    in
    (r, cache)
  in
  let ra, ca =
    make "10.0.0.1" 1 input_b ~drop:(fun p ->
        if p.Packet.op = Packet.Request then incr queries;
        false)
  in
  let rb, _cb =
    make "10.0.0.2" 2 input_a ~drop:(fun p ->
        p.Packet.op = Packet.Reply && !replies_to_drop > 0
        && begin
             decr replies_to_drop;
             true
           end)
  in
  input_a := Some (fun p -> Resolver.input ra p);
  input_b := Some (fun p -> Resolver.input rb p);
  let result = ref None in
  Resolver.resolve ra (addr "10.0.0.2") (fun r -> result := r);
  Psd_sim.Engine.run eng;
  (match !result with
  | Some mac -> "resolved after loss" => Macaddr.equal mac (Macaddr.of_host_id 2)
  | None -> Alcotest.fail "reply loss killed the resolution");
  Alcotest.(check int) "retried exactly once" 2 !queries;
  "cached" => (Cache.lookup ca (addr "10.0.0.2") <> None);
  Alcotest.(check int) "no pending" 0 (Resolver.pending ra)

let () =
  Alcotest.run "psd_arp"
    [
      ( "packet",
        [
          Alcotest.test_case "roundtrip" `Quick test_packet_roundtrip;
          Alcotest.test_case "rejects" `Quick test_packet_rejects;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basic" `Quick test_cache_basic;
          Alcotest.test_case "expiry" `Quick test_cache_expiry;
          Alcotest.test_case "notification" `Quick test_cache_notification;
          Alcotest.test_case "flush" `Quick test_cache_flush;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "query/reply" `Quick test_resolve_query_reply;
          Alcotest.test_case "cache hit" `Quick
            test_resolve_cache_hit_no_traffic;
          Alcotest.test_case "timeout" `Quick test_resolve_timeout;
          Alcotest.test_case "shared query" `Quick
            test_concurrent_resolutions_share_query;
          Alcotest.test_case "learning" `Quick
            test_request_triggers_reply_and_learning;
          Alcotest.test_case "reply loss retries" `Quick
            test_reply_loss_retries;
        ] );
    ]
