(* Two protocol stacks wired back to back with a controllable lossy pipe:
   the unit-test substrate for TCP and UDP, below the mach/link layers. *)

open Psd_ip

type host = {
  ctx : Psd_cost.Ctx.t;
  ip : Ip.t;
  tcp : Psd_tcp.Tcp.t;
  udp : Psd_udp.Udp.t;
  addr : Addr.t;
}

type net = {
  eng : Psd_sim.Engine.t;
  a : host;
  b : host;
  (* return true to drop the packet (applied to every transmitted IP
     packet, both directions) *)
  mutable tap : Bytes.t -> bool;
  mutable delay_ns : int;
}

let make_host ?keep_idle_ns ?keep_interval_ns ?keep_max_probes ?pcb_pool eng
    name addr_s =
  ignore name;
  let cpu = Psd_sim.Cpu.create eng in
  let plat = Psd_cost.Platform.decstation in
  let ctx =
    Psd_cost.Ctx.create ~eng ~cpu ~plat ~role:Psd_cost.Ctx.Library_stack
  in
  let routes = Route.create () in
  Route.add routes
    {
      Route.net = Addr.of_string "10.0.0.0";
      mask = Addr.of_string "255.255.255.0";
      hop = Route.Direct;
      iface = 0;
    };
  let addr = Addr.of_string addr_s in
  let ip = Ip.create ~ctx ~addr ~routes () in
  let tcp =
    Psd_tcp.Tcp.create ~ctx ~ip ~msl_ns:(Psd_sim.Time.ms 50)
      ~rto_min_ns:(Psd_sim.Time.ms 20) ~rto_init_ns:(Psd_sim.Time.ms 40)
      ~delack_ns:(Psd_sim.Time.ms 5) ?keep_idle_ns ?keep_interval_ns
      ?keep_max_probes ?pcb_pool ()
  in
  let udp = Psd_udp.Udp.create ~ctx ~ip () in
  { ctx; ip; tcp; udp; addr }

let create ?(seed = 1) ?keep_idle_ns ?keep_interval_ns ?keep_max_probes
    ?pcb_pool () =
  let eng = Psd_sim.Engine.create ~seed () in
  let a =
    make_host ?keep_idle_ns ?keep_interval_ns ?keep_max_probes ?pcb_pool eng
      "a" "10.0.0.1"
  in
  let b =
    make_host ?keep_idle_ns ?keep_interval_ns ?keep_max_probes ?pcb_pool eng
      "b" "10.0.0.2"
  in
  let net = { eng; a; b; tap = (fun _ -> false); delay_ns = 50_000 } in
  let connect src dst =
    Ip.set_transmit src.ip (fun ~next_hop:_ ~iface:_ m ->
        let packet = Psd_mbuf.Mbuf.to_bytes m in
        if not (net.tap packet) then
          Psd_sim.Engine.schedule eng net.delay_ns (fun () ->
              Psd_sim.Engine.spawn eng ~name:"deliver" (fun () ->
                  Ip.input dst.ip packet ~off:0 ~len:(Bytes.length packet))))
  in
  connect a b;
  connect b a;
  net

(* Drop the [n]th packet (1-based) that satisfies [pred], once. *)
let drop_nth net ?(pred = fun _ -> true) n =
  let count = ref 0 in
  net.tap <-
    (fun pkt ->
      if pred pkt then begin
        incr count;
        !count = n
      end
      else false)

(* Predicate: TCP packet with a payload of at least [n] bytes. *)
let tcp_data_at_least n pkt =
  Bytes.length pkt >= 40
  && Psd_util.Codec.get_u8 pkt 9 = 6
  &&
  let total = Psd_util.Codec.get_u16 pkt 2 in
  let hlen = 20 + (Psd_util.Codec.get_u8 pkt 32 lsr 4 * 4) in
  total - hlen >= n

let run net = Psd_sim.Engine.run net.eng

let run_for net ns = Psd_sim.Engine.run_for net.eng ns

(* A simple collector for the receive side of a TCP connection. *)
type sink = {
  buf : Buffer.t;
  mutable eof : bool;
  mutable established : bool;
  mutable errors : Psd_tcp.Tcp.error list;
  mutable acked : int;
  mutable states : Psd_tcp.Tcp.state list;
}

let make_sink () =
  {
    buf = Buffer.create 256;
    eof = false;
    established = false;
    errors = [];
    acked = 0;
    states = [];
  }

let sink_handlers sink =
  {
    Psd_tcp.Tcp.deliver =
      (fun _ m -> Buffer.add_string sink.buf (Psd_mbuf.Mbuf.to_string m));
    deliver_fin = (fun _ -> sink.eof <- true);
    on_established = (fun _ -> sink.established <- true);
    on_acked = (fun _ n -> sink.acked <- sink.acked + n);
    on_error = (fun _ e -> sink.errors <- e :: sink.errors);
    on_state = (fun _ s -> sink.states <- s :: sink.states);
  }

let contents sink = Buffer.contents sink.buf
