open Psd_sim

(* --- Engine --------------------------------------------------------- *)

let test_clock_starts_at_zero () =
  let eng = Engine.create () in
  Alcotest.(check int) "t0" 0 (Engine.now eng)

let test_sleep_advances_clock () =
  let eng = Engine.create () in
  let seen = ref (-1) in
  Engine.spawn eng (fun () ->
      Engine.sleep eng (Time.us 5);
      seen := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "5us" (Time.us 5) !seen;
  Alcotest.(check int) "no fibers left" 0 (Engine.alive eng)

let test_schedule_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng 30 (fun () -> log := "c" :: !log);
  Engine.schedule eng 10 (fun () -> log := "a" :: !log);
  Engine.schedule eng 20 (fun () -> log := "b" :: !log);
  Engine.run eng;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule eng 100 (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_after_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let cancel = Engine.after eng 50 (fun () -> fired := true) in
  Engine.schedule eng 10 (fun () -> cancel ());
  Engine.run eng;
  Alcotest.(check bool) "not fired" false !fired

let test_run_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule eng (i * 100) (fun () -> incr count)
  done;
  Engine.run_until eng 500;
  Alcotest.(check int) "half fired" 5 !count;
  Alcotest.(check int) "clock at stop" 500 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "all fired" 10 !count

let test_fiber_failure_reported () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> failwith "boom");
  (try
     Engine.run eng;
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  Alcotest.(check int) "recorded" 1 (List.length (Engine.failures eng))

let test_spawn_nested () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      log := "outer" :: !log;
      Engine.spawn eng (fun () -> log := "inner" :: !log);
      Engine.sleep eng 10;
      log := "outer2" :: !log);
  Engine.run eng;
  Alcotest.(check (list string))
    "interleave" [ "outer"; "inner"; "outer2" ] (List.rev !log)

let test_deadlock_detectable () =
  let eng = Engine.create () in
  let c = Cond.create eng in
  Engine.spawn eng (fun () -> Cond.wait c);
  Engine.run eng;
  Alcotest.(check int) "blocked fiber alive" 1 (Engine.alive eng)

(* --- Cond ----------------------------------------------------------- *)

let test_cond_signal_wakes_one () =
  let eng = Engine.create () in
  let c = Cond.create eng in
  let woke = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () ->
        Cond.wait c;
        incr woke)
  done;
  Engine.schedule eng 10 (fun () -> Cond.signal c);
  Engine.run eng;
  Alcotest.(check int) "one woke" 1 !woke;
  Alcotest.(check int) "two blocked" 2 (Engine.alive eng)

let test_cond_broadcast_wakes_all () =
  let eng = Engine.create () in
  let c = Cond.create eng in
  let woke = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () ->
        Cond.wait c;
        incr woke)
  done;
  Engine.schedule eng 10 (fun () -> Cond.broadcast c);
  Engine.run eng;
  Alcotest.(check int) "all woke" 3 !woke

let test_cond_timeout () =
  let eng = Engine.create () in
  let c = Cond.create eng in
  let result = ref `Ok in
  Engine.spawn eng (fun () -> result := Cond.wait_timeout c (Time.us 100));
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!result = `Timeout);
  Alcotest.(check int) "clock advanced" (Time.us 100) (Engine.now eng);
  Alcotest.(check int) "waiter removed" 0 (Cond.waiters c)

let test_cond_signal_beats_timeout () =
  let eng = Engine.create () in
  let c = Cond.create eng in
  let result = ref `Timeout in
  Engine.spawn eng (fun () -> result := Cond.wait_timeout c (Time.us 100));
  Engine.schedule eng (Time.us 10) (fun () -> Cond.signal c);
  Engine.run eng;
  Alcotest.(check bool) "ok" true (!result = `Ok)

let test_cond_until () =
  let eng = Engine.create () in
  let c = Cond.create eng in
  let box = ref None in
  let got = ref 0 in
  Engine.spawn eng (fun () -> got := Cond.until c (fun () -> !box));
  Engine.schedule eng 10 (fun () ->
      (* spurious signal with no value: fiber must keep waiting *)
      Cond.signal c);
  Engine.schedule eng 20 (fun () ->
      box := Some 42;
      Cond.signal c);
  Engine.run eng;
  Alcotest.(check int) "value" 42 !got

(* --- Cpu ------------------------------------------------------------ *)

let test_cpu_serializes () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    Engine.spawn eng (fun () ->
        Cpu.consume cpu ~prio:Cpu.User (Time.us 10);
        done_at.(i) <- Engine.now eng)
  done;
  Engine.run eng;
  Alcotest.(check int) "first" (Time.us 10) done_at.(0);
  Alcotest.(check int) "second serialized" (Time.us 20) done_at.(1);
  Alcotest.(check int) "busy time" (Time.us 20) (Cpu.busy_time cpu)

let test_cpu_priority () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let order = ref [] in
  (* Occupy the CPU, then queue a user and an interrupt waiter. *)
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~prio:Cpu.User (Time.us 10);
      order := "owner" :: !order);
  Engine.schedule eng 1 (fun () ->
      Engine.spawn eng (fun () ->
          Cpu.consume cpu ~prio:Cpu.User (Time.us 10);
          order := "user" :: !order));
  Engine.schedule eng 2 (fun () ->
      Engine.spawn eng (fun () ->
          Cpu.consume cpu ~prio:Cpu.Interrupt (Time.us 1);
          order := "intr" :: !order));
  Engine.run eng;
  Alcotest.(check (list string))
    "interrupt preferred" [ "owner"; "intr"; "user" ] (List.rev !order)

let test_cpu_zero_cost_no_acquire () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~prio:Cpu.User 0;
      Alcotest.(check int) "no time" 0 (Engine.now eng));
  Engine.run eng

(* --- Mailbox -------------------------------------------------------- *)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.schedule eng 10 (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocks_until_send () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let at = ref 0 in
  Engine.spawn eng (fun () ->
      ignore (Mailbox.recv mb);
      at := Engine.now eng);
  Engine.schedule eng (Time.us 50) (fun () -> Mailbox.send mb ());
  Engine.run eng;
  Alcotest.(check int) "woke at send" (Time.us 50) !at

let test_mailbox_recv_timeout () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create eng in
  let r = ref (Some 0) in
  Engine.spawn eng (fun () -> r := Mailbox.recv_timeout mb (Time.us 10));
  Engine.run eng;
  Alcotest.(check (option int)) "timeout none" None !r

let test_mailbox_drain () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  Mailbox.send mb "x";
  Mailbox.send mb "y";
  Alcotest.(check (list string)) "drain" [ "x"; "y" ] (Mailbox.drain mb);
  Alcotest.(check int) "empty" 0 (Mailbox.length mb)

(* --- determinism ---------------------------------------------------- *)

let run_simulation seed =
  let eng = Engine.create ~seed () in
  let cpu = Cpu.create eng in
  let log = Buffer.create 64 in
  for i = 1 to 5 do
    Engine.spawn eng (fun () ->
        let r = Engine.rng eng in
        Engine.sleep eng (Psd_util.Rng.int r 1000);
        Cpu.consume cpu ~prio:Cpu.User (Psd_util.Rng.int r 1000 + 1);
        Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now eng)))
  done;
  Engine.run eng;
  Buffer.contents log

let test_determinism () =
  Alcotest.(check string)
    "same seed same trace" (run_simulation 11) (run_simulation 11);
  Alcotest.(check bool)
    "different seed different trace" true
    (run_simulation 11 <> run_simulation 12)

(* --- Timing wheel ---------------------------------------------------- *)

let test_wheel_same_key_fifo () =
  let w = Wheel.create ~dummy:(-1) () in
  for i = 0 to 9 do
    ignore (Wheel.insert w ~key:100 ~seq:i i)
  done;
  let out = List.init 10 (fun _ -> Wheel.pop_min w) in
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] out;
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_wheel_cascade_boundaries () =
  (* keys straddling slot/level boundaries pop in key order *)
  let w = Wheel.create ~dummy:(-1) () in
  let keys = [ 255; 256; 257; 65535; 65536; 16777216; 1; 0 ] in
  List.iteri (fun i k -> ignore (Wheel.insert w ~key:k ~seq:i k)) keys;
  let out = List.init (List.length keys) (fun _ -> Wheel.pop_min w) in
  Alcotest.(check (list int))
    "sorted" (List.sort compare keys) out

let test_wheel_cancel_min () =
  let w = Wheel.create ~dummy:(-1) () in
  let a = Wheel.insert w ~key:10 ~seq:0 1 in
  let _b = Wheel.insert w ~key:20 ~seq:1 2 in
  Alcotest.(check int) "min is a" 10 (Wheel.min_key w);
  Wheel.cancel w a;
  Wheel.cancel w a (* idempotent *);
  Alcotest.(check int) "min now b" 20 (Wheel.min_key w);
  Alcotest.(check int) "pops b" 2 (Wheel.pop_min w);
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_wheel_reinsert_after_cancel () =
  let w = Wheel.create ~dummy:(-1) () in
  let n = Wheel.insert w ~key:50 ~seq:0 1 in
  Wheel.cancel w n;
  Wheel.reinsert w n ~key:30 ~seq:1 2;
  Alcotest.(check bool) "active" true (Wheel.active n);
  Alcotest.(check int) "new key" 30 (Wheel.min_key w);
  Alcotest.(check int) "new value" 2 (Wheel.pop_min w);
  Alcotest.(check bool) "inactive after fire" false (Wheel.active n)

(* Differential property backing the timer migration: a wheel and the
   4-ary heap fed the same (key, seq) stream — under random insert /
   cancel / advance (pop) interleavings, with re-arms reusing cancelled
   nodes — fire the exact same (key, seq, value) sequence. Keys span
   several wheel levels so the cascade paths are exercised, and every
   insert respects the advance-to-min-only restriction (key >= the last
   popped key), exactly as Engine.timer_arm guarantees. *)
let prop_wheel_heap_differential =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun d -> `Ins d) (int_bound 255));
          (2, map (fun d -> `Ins d) (int_bound 65_535));
          (2, map (fun d -> `Ins d) (int_bound (1 lsl 24)));
          (1, map (fun d -> `Ins d) (int_bound (1 lsl 40)));
          (3, map (fun i -> `Cancel i) (int_bound 10_000));
          (3, return `Pop);
        ])
  in
  let print_op = function
    | `Ins d -> Printf.sprintf "Ins %d" d
    | `Cancel i -> Printf.sprintf "Cancel %d" i
    | `Pop -> "Pop"
  in
  QCheck.Test.make ~name:"wheel: fires in heap (key, seq) order" ~count:300
    QCheck.(
      list_of_size Gen.(1 -- 150)
        (make ~print:print_op op_gen))
    (fun ops ->
      let w = Wheel.create ~dummy:(-1) () in
      let h = Psd_util.Heap.create () in
      let seq = ref 0 in
      let floor = ref 0 in
      (* live: (seq, node) for entries possibly still armed; freed:
         unlinked nodes available for reinsert *)
      let live = ref [] in
      let freed = ref [] in
      let cancelled = Hashtbl.create 64 in
      let wheel_fired = ref [] in
      let heap_fired = ref [] in
      let pop_heap_live () =
        let rec go () =
          if Psd_util.Heap.is_empty h then None
          else begin
            let k = Psd_util.Heap.min_key h in
            let s = Psd_util.Heap.min_seq h in
            let v = Psd_util.Heap.pop_min h in
            if Hashtbl.mem cancelled s then go () else Some (k, s, v)
          end
        in
        go ()
      in
      let pop_both () =
        match pop_heap_live () with
        | None ->
          if not (Wheel.is_empty w) then
            QCheck.Test.fail_report "wheel non-empty after heap drained"
        | Some (k, s, v) ->
          heap_fired := (k, s, v) :: !heap_fired;
          let wk = Wheel.min_key w in
          let ws = Wheel.min_seq w in
          let wv = Wheel.pop_min w in
          floor := k;
          wheel_fired := (wk, ws, wv) :: !wheel_fired
      in
      let insert delta =
        let key = !floor + delta in
        let s = !seq in
        incr seq;
        let node =
          match !freed with
          | n :: rest ->
            freed := rest;
            Wheel.reinsert w n ~key ~seq:s s;
            n
          | [] -> Wheel.insert w ~key ~seq:s s
        in
        Psd_util.Heap.push_seq h ~key ~seq:s s;
        live := (s, node) :: !live
      in
      List.iter
        (function
          | `Ins delta -> insert delta
          | `Pop -> pop_both ()
          | `Cancel i -> (
            match !live with
            | [] -> ()
            | l ->
              let n = List.length l in
              let idx = i mod n in
              let s, node = List.nth l idx in
              live := List.filteri (fun j _ -> j <> idx) l;
              if Wheel.active node then begin
                Wheel.cancel w node;
                Hashtbl.replace cancelled s ();
                freed := node :: !freed
              end))
        ops;
      while not (Psd_util.Heap.is_empty h) do
        pop_both ()
      done;
      if not (Wheel.is_empty w) then
        QCheck.Test.fail_report "wheel retains entries after drain";
      !wheel_fired = !heap_fired)

(* Cross-queue ordering: timers (wheel) and scheduled events (heap)
   due at the same instant fire in global arm/schedule order, because
   both draw seqs from the engine's single counter. *)
let test_timer_heap_same_instant_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  let push tag () = log := tag :: !log in
  let t1 = Engine.timer () and t2 = Engine.timer () in
  Engine.schedule eng 100 (push "h1");
  Engine.timer_arm eng t1 100 (push "w1");
  Engine.schedule eng 100 (push "h2");
  Engine.timer_arm eng t2 100 (push "w2");
  Engine.schedule eng 100 (push "h3");
  Engine.run eng;
  Alcotest.(check (list string))
    "arm order" [ "h1"; "w1"; "h2"; "w2"; "h3" ] (List.rev !log)

let test_timer_cancel_and_rearm () =
  let eng = Engine.create () in
  let fired = ref [] in
  let t = Engine.timer () in
  Engine.timer_arm eng t 50 (fun () -> fired := 50 :: !fired);
  (* re-arm before expiry: only the new deadline fires *)
  Engine.schedule eng 10 (fun () ->
      Engine.timer_arm eng t 200 (fun () ->
          fired := Engine.now eng :: !fired));
  Engine.run eng;
  Alcotest.(check (list int)) "one firing, re-armed deadline" [ 210 ] !fired;
  Alcotest.(check bool) "disarmed after fire" false (Engine.timer_armed t);
  let t2 = Engine.timer () in
  Engine.timer_arm eng t2 30 (fun () -> fired := -1 :: !fired);
  Engine.timer_cancel eng t2;
  Alcotest.(check bool) "cancel disarms" false (Engine.timer_armed t2);
  Engine.run eng;
  Alcotest.(check (list int)) "cancelled never fires" [ 210 ] !fired

let prop_sleep_sums =
  QCheck.Test.make ~name:"engine: sequential sleeps sum" ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (int_bound 10_000))
    (fun sleeps ->
      let eng = Engine.create () in
      let finished = ref 0 in
      Engine.spawn eng (fun () ->
          List.iter (Engine.sleep eng) sleeps;
          finished := Engine.now eng);
      Engine.run eng;
      !finished = List.fold_left ( + ) 0 sleeps)

(* --- Shard ----------------------------------------------------------- *)

let two_shards () =
  let sh = Shard.create ~n:2 () in
  Shard.set_lookahead sh ~src:0 ~dst:1 10;
  Shard.set_lookahead sh ~src:1 ~dst:0 10;
  sh

let test_shard_post_delivery () =
  let sh = two_shards () in
  let log = ref [] in
  Engine.schedule (Shard.engine sh 0) 0 (fun () ->
      Shard.post sh ~src:0 ~dst:1 ~key:30 (fun () -> log := 30 :: !log);
      Shard.post sh ~src:0 ~dst:1 ~key:20 (fun () -> log := 20 :: !log);
      Shard.post sh ~src:0 ~dst:1 ~key:40 (fun () -> log := 40 :: !log));
  Shard.run ~domains:false sh;
  Alcotest.(check (list int)) "key order" [ 20; 30; 40 ] (List.rev !log);
  Alcotest.(check int) "posted" 3 (Shard.posted sh);
  Alcotest.(check int) "receiver clock" 40 (Engine.now (Shard.engine sh 1))

let test_shard_same_key_fifo () =
  let sh = two_shards () in
  let log = ref [] in
  Engine.schedule (Shard.engine sh 0) 0 (fun () ->
      for i = 1 to 5 do
        Shard.post sh ~src:0 ~dst:1 ~key:50 (fun () -> log := i :: !log)
      done);
  Shard.run ~domains:false sh;
  Alcotest.(check (list int)) "fifo at one instant" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_shard_post_validation () =
  let sh = Shard.create ~n:2 () in
  (try
     Shard.post sh ~src:0 ~dst:1 ~key:100 ignore;
     Alcotest.fail "post without a link accepted"
   with Invalid_argument _ -> ());
  (try
     Shard.set_lookahead sh ~src:0 ~dst:1 0;
     Alcotest.fail "zero lookahead accepted"
   with Invalid_argument _ -> ());
  Shard.set_lookahead sh ~src:0 ~dst:1 10;
  (try
     Shard.post sh ~src:0 ~dst:1 ~key:5 ignore;
     Alcotest.fail "lookahead violation accepted"
   with Invalid_argument _ -> ());
  Shard.post sh ~src:0 ~dst:1 ~key:10 ignore;
  Alcotest.(check int) "valid post accepted" 1 (Shard.posted sh)

(* Cross-shard ping-pong: the transcript must not depend on the driver. *)
let shard_pingpong domains =
  let sh = two_shards () in
  let log0 = ref [] and log1 = ref [] in
  let rec bounce side key () =
    let l = if side = 0 then log0 else log1 in
    l := key :: !l;
    if key < 2000 then
      Shard.post sh ~src:side ~dst:(1 - side) ~key:(key + 17)
        (bounce (1 - side) (key + 17))
  in
  Engine.schedule (Shard.engine sh 0) 0 (bounce 0 0);
  Shard.run ~domains sh;
  (List.rev !log0, List.rev !log1, Shard.rounds sh)

let test_shard_pingpong_deterministic () =
  let seq = shard_pingpong false in
  let dom = shard_pingpong true in
  let dom' = shard_pingpong true in
  let pp_t = Alcotest.(triple (list int) (list int) int) in
  Alcotest.check pp_t "domains == sequential" seq dom;
  Alcotest.check pp_t "domain runs repeat" dom dom';
  let l0, l1, _ = seq in
  Alcotest.(check bool) "both sides fired" true (l0 <> [] && l1 <> [])

let test_shard_failure_aborts () =
  let sh = two_shards () in
  Engine.schedule (Shard.engine sh 0) 5 (fun () -> failwith "boom");
  (* give the other shard a long event chain it must NOT finish *)
  let count = ref 0 in
  let rec chain key () =
    incr count;
    if key < 100_000 then
      Engine.schedule_abs (Shard.engine sh 1) ~key:(key + 10) (chain (key + 10))
  in
  Engine.schedule_abs (Shard.engine sh 1) ~key:1 (chain 1);
  (match Shard.run ~domains:true sh with
  | () -> Alcotest.fail "expected the failure to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "original error" "boom" msg);
  Alcotest.(check bool) "peer stopped early" true (!count < 10_000)

let test_shard_run_for_advances () =
  let sh = two_shards () in
  Shard.run_for ~domains:false sh 1000;
  Alcotest.(check int) "shard 0 clock" 1000 (Engine.now (Shard.engine sh 0));
  Alcotest.(check int) "shard 1 clock" 1000 (Engine.now (Shard.engine sh 1))

(* Differential: a random host-partitioned cascade of events produces
   the same per-host (key, class) fire sequence on one plain engine, on
   a sharded engine stepped sequentially, and on one domain per shard.
   Child keys are [key * stride + class] with distinct classes per
   (kind, src, dst), so every event's key encodes its causal path —
   collisions can only be between duplicated seeds, which both modes
   schedule in the same order. *)
let stride = 64

let shard_lookahead = 50

let run_script mode n (a, b) seeds =
  let logs = Array.make n [] in
  let emit =
    match mode with
    | `Engine ->
      let eng = Engine.create () in
      ((fun ~src:_ ~dst:_ ~key fn -> Engine.schedule_abs eng ~key fn),
       fun () -> Engine.run eng)
    | `Shard domains ->
      let sh = Shard.create ~n () in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d then Shard.set_lookahead sh ~src:s ~dst:d shard_lookahead
        done
      done;
      ((fun ~src ~dst ~key fn -> Shard.post sh ~src ~dst ~key fn),
       fun () -> Shard.run ~domains sh)
  in
  let post, run = emit in
  let rec node h cls key () =
    logs.(h) <- (key, cls) :: logs.(h);
    if key < stride * stride * stride then begin
      let row = key / stride in
      for d = 0 to n - 1 do
        if d <> h && (row + (a * d) + key) mod 3 <> 0 then begin
          let c = n + (h * n) + d in
          let k' = (key * stride) + c in
          post ~src:h ~dst:d ~key:k' (node d c k')
        end
      done;
      if (row + b) mod 2 = 0 then begin
        let k' = (key * stride) + h in
        post ~src:h ~dst:h ~key:k' (node h h k')
      end
    end
  in
  List.iter
    (fun (hs, k) ->
      let h = hs mod n in
      let key = (k * stride) + h in
      post ~src:h ~dst:h ~key (node h h key))
    seeds;
  run ();
  Array.map List.rev logs

let prop_shard_engine_differential =
  let print (n, (a, b), seeds) =
    Printf.sprintf "n=%d a=%d b=%d seeds=[%s]" n a b
      (String.concat ";"
         (List.map (fun (h, k) -> Printf.sprintf "(%d,%d)" h k) seeds))
  in
  QCheck.Test.make
    ~name:"shard: 1-domain and N-domain fire sequences identical" ~count:60
    QCheck.(
      make ~print
        Gen.(
          triple (2 -- 3) (pair (0 -- 7) (0 -- 7))
            (list_size (2 -- 6) (pair (0 -- 2) (1 -- 8)))))
    (fun (n, ab, seeds) ->
      let base = run_script `Engine n ab seeds in
      let seq = run_script (`Shard false) n ab seeds in
      let dom = run_script (`Shard true) n ab seeds in
      base = seq && base = dom)

let () =
  Alcotest.run "psd_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "clock zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "sleep advances" `Quick test_sleep_advances_clock;
          Alcotest.test_case "schedule order" `Quick test_schedule_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "after cancel" `Quick test_after_cancel;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "fiber failure" `Quick test_fiber_failure_reported;
          Alcotest.test_case "nested spawn" `Quick test_spawn_nested;
          Alcotest.test_case "deadlock detectable" `Quick
            test_deadlock_detectable;
          QCheck_alcotest.to_alcotest prop_sleep_sums;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "same-key fifo" `Quick test_wheel_same_key_fifo;
          Alcotest.test_case "cascade boundaries" `Quick
            test_wheel_cascade_boundaries;
          Alcotest.test_case "cancel min" `Quick test_wheel_cancel_min;
          Alcotest.test_case "reinsert after cancel" `Quick
            test_wheel_reinsert_after_cancel;
          QCheck_alcotest.to_alcotest prop_wheel_heap_differential;
          Alcotest.test_case "timer/heap same-instant fifo" `Quick
            test_timer_heap_same_instant_fifo;
          Alcotest.test_case "timer cancel + re-arm" `Quick
            test_timer_cancel_and_rearm;
        ] );
      ( "cond",
        [
          Alcotest.test_case "signal wakes one" `Quick
            test_cond_signal_wakes_one;
          Alcotest.test_case "broadcast wakes all" `Quick
            test_cond_broadcast_wakes_all;
          Alcotest.test_case "timeout" `Quick test_cond_timeout;
          Alcotest.test_case "signal beats timeout" `Quick
            test_cond_signal_beats_timeout;
          Alcotest.test_case "until" `Quick test_cond_until;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes" `Quick test_cpu_serializes;
          Alcotest.test_case "priority" `Quick test_cpu_priority;
          Alcotest.test_case "zero cost" `Quick test_cpu_zero_cost_no_acquire;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocks" `Quick test_mailbox_blocks_until_send;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
          Alcotest.test_case "drain" `Quick test_mailbox_drain;
        ] );
      ("determinism", [ Alcotest.test_case "replay" `Quick test_determinism ]);
      ( "shard",
        [
          Alcotest.test_case "post delivery order" `Quick
            test_shard_post_delivery;
          Alcotest.test_case "same-key fifo" `Quick test_shard_same_key_fifo;
          Alcotest.test_case "post validation" `Quick
            test_shard_post_validation;
          Alcotest.test_case "ping-pong deterministic" `Quick
            test_shard_pingpong_deterministic;
          Alcotest.test_case "failure aborts all shards" `Quick
            test_shard_failure_aborts;
          Alcotest.test_case "run_for advances clocks" `Quick
            test_shard_run_for_advances;
          QCheck_alcotest.to_alcotest prop_shard_engine_differential;
        ] );
    ]
