module W = Psd_workloads
module Cfg = Psd_cost.Config

let ( => ) name b = Alcotest.(check bool) name true b

(* --- Paper reference data ------------------------------------------------ *)

let test_paper_lookups () =
  Alcotest.(check (option (float 0.01)))
    "dec kernel throughput" (Some 1070.)
    (W.Paper.table2_throughput W.Paper.Dec "Mach 2.5 In-Kernel");
  Alcotest.(check (option (float 0.001)))
    "lib-shm-ipf udp 1B" (Some 1.23)
    (W.Paper.table2_udp_latency W.Paper.Dec "Mach 3.0+UX Library-SHM-IPF" 1);
  Alcotest.(check (option (float 0.001)))
    "gateway server tcp 512B" (Some 7.76)
    (W.Paper.table2_tcp_latency W.Paper.Gateway "Mach 3.0+UX Server" 512);
  Alcotest.(check (option (float 0.01)))
    "table3 newapi shm-ipf" (Some 1099.)
    (W.Paper.table3_throughput "Mach 3.0+UX Library-NEWAPI-SHM-IPF");
  "unknown label" => (W.Paper.table2_throughput W.Paper.Dec "nope" = None)

let test_paper_na_cells () =
  (* 386BSD's large-TCP bug: 1024/1460 cells are NA in the paper *)
  "386bsd tcp 1460 NA"
  => (W.Paper.table2_tcp_latency W.Paper.Gateway "386BSD In-Kernel" 1460
      = None);
  "386bsd tcp 100 present"
  => (W.Paper.table2_tcp_latency W.Paper.Gateway "386BSD In-Kernel" 100
      <> None)

let test_paper_table4_cells () =
  Alcotest.(check (option int)) "kernel copyout zero" (Some 0)
    (W.Paper.table4_cell "Kernel" ~proto:"tcp" ~size:1 "kernel copyout");
  Alcotest.(check (option int)) "server entry 1460" (Some 579)
    (W.Paper.table4_cell "Server" ~proto:"tcp" ~size:1460 "entry/copyin");
  "bad phase" => (W.Paper.table4_cell "Server" ~proto:"tcp" ~size:1 "x" = None)

let test_best_rcv_buf () =
  Alcotest.(check int) "dec kernel" (24 * 1024)
    (W.Paper.best_rcv_buf W.Paper.Dec Cfg.mach25_kernel);
  Alcotest.(check int) "dec shm clamped to 16-bit window" 65535
    (W.Paper.best_rcv_buf W.Paper.Dec Cfg.library_shm);
  Alcotest.(check int) "gateway kernel" (8 * 1024)
    (W.Paper.best_rcv_buf W.Paper.Gateway Cfg.mach25_kernel)

(* --- drivers ------------------------------------------------------------- *)

let test_ttcp_fields () =
  let r = W.Ttcp.run ~mb:1 Cfg.library_shm in
  Alcotest.(check int) "bytes" (1024 * 1024) r.W.Ttcp.bytes;
  "throughput positive" => (r.W.Ttcp.kb_per_sec > 100.);
  "wire utilisation sane"
  => (r.W.Ttcp.wire_utilization > 0.1 && r.W.Ttcp.wire_utilization <= 1.0);
  "segments counted" => (r.W.Ttcp.segs_out > 700)

let test_protolat_na () =
  let r =
    W.Protolat.run ~machine:W.Paper.Gateway ~proto:W.Protolat.Tcp ~size:1460
      Cfg.bnr2ss_server
  in
  "bnr2ss large tcp NA" => r.W.Protolat.na

let test_protolat_monotone_in_size () =
  let at size =
    (W.Protolat.run ~rounds:40 ~proto:W.Protolat.Udp ~size Cfg.mach25_kernel)
      .W.Protolat.rtt_ms
  in
  let s1 = at 1 and s512 = at 512 and s1472 = at 1472 in
  "1 < 512" => (s1 < s512);
  "512 < 1472" => (s512 < s1472)

let test_tables_structs () =
  let rows = W.Tables.table2 ~machine:W.Paper.Dec ~mb:1 ~rounds:20 () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "five tcp sizes" 5 (List.length r.W.Tables.tcp_ms);
      Alcotest.(check int) "five udp sizes" 5 (List.length r.W.Tables.udp_ms);
      "throughput present" => (r.W.Tables.throughput <> None))
    rows

(* --- loss soak ----------------------------------------------------------- *)

(* [Ttcp.run] verifies every delivered byte against the payload pattern
   and fails the transfer on any shortfall, so surviving the call IS the
   bit-identical-delivery check; the assertions below are about the
   recovery machinery. *)

let chaos_run ?(mb = 2) ?(seed = 23) ?(rate = 0.01) () =
  W.Ttcp.run ~mb ~seed ~fault:(Psd_link.Fault.chaos rate) Cfg.library_shm_ipf

let test_loss_soak_short () =
  let rc = (chaos_run ()).W.Ttcp.recovery in
  "faults were injected" => (rc.W.Ttcp.injected > 0);
  "loss forced retransmission" => (rc.W.Ttcp.rexmt > 0);
  "duplicate acks observed" => (rc.W.Ttcp.dup_acks_in > 0)

let test_loss_soak_deterministic () =
  let a = chaos_run () and b = chaos_run () in
  "same seed, same fault schedule and counters"
  => (a.W.Ttcp.recovery = b.W.Ttcp.recovery);
  Alcotest.(check int) "same virtual duration" a.W.Ttcp.elapsed_ns
    b.W.Ttcp.elapsed_ns;
  let c = chaos_run ~seed:24 () in
  "different seed, different schedule"
  => (a.W.Ttcp.recovery <> c.W.Ttcp.recovery)

let test_loss_soak_16mb () =
  let r = chaos_run ~mb:16 () in
  Alcotest.(check int) "full volume" (16 * 1024 * 1024) r.W.Ttcp.bytes;
  let rc = r.W.Ttcp.recovery in
  "rexmt fired" => (rc.W.Ttcp.rexmt > 0);
  "fast rexmt fired" => (rc.W.Ttcp.fast_rexmt > 0);
  "checksums caught corruption" => (rc.W.Ttcp.drop_checksum > 0)

let test_clean_wire_reports_no_faults () =
  let r = W.Ttcp.run ~mb:1 ~fault:Psd_link.Fault.none Cfg.library_shm in
  let baseline = W.Ttcp.run ~mb:1 Cfg.library_shm in
  Alcotest.(check int) "no injections" 0 r.W.Ttcp.recovery.W.Ttcp.injected;
  (* a null policy must not even perturb the run *)
  Alcotest.(check int) "same duration as no policy at all"
    baseline.W.Ttcp.elapsed_ns r.W.Ttcp.elapsed_ns

(* --- copy accounting --------------------------------------------------- *)

let site_copies r name =
  match
    List.find_opt (fun (n, _, _) -> n = name) r.W.Copymeter.sites
  with
  | Some (_, copies, _) -> copies
  | None -> Alcotest.failf "unknown copy site %s" name

let test_shm_ipf_single_body_copy () =
  (* The paper's central memory claim: with SHM-IPF delivery the receive
     datapath touches packet bytes exactly once (device memory → shared
     ring); no separate device copy, no IPC message, no flatten, no RPC
     marshalling. The ring copy count may exceed the datagram count only
     by the handful of ARP frames the blast needs. *)
  let count = 100 in
  let r = W.Copymeter.run ~count Cfg.library_shm_ipf in
  Alcotest.(check int) "no device-to-kernel copy" 0
    (site_copies r "rx_device");
  Alcotest.(check int) "no per-packet IPC message" 0
    (site_copies r "rx_ipc");
  Alcotest.(check int) "no reassembly flatten" 0 (site_copies r "rx_flatten");
  Alcotest.(check int) "no RPC marshalling" 0 (site_copies r "rx_rpc");
  let ring = site_copies r "rx_ring" in
  "exactly one body copy per packet (± ARP frames)"
  => (ring >= r.W.Copymeter.packets && ring <= r.W.Copymeter.packets + 8);
  Alcotest.(check int) "datapath total is the ring copy"
    ring r.W.Copymeter.rx_body_copies

let test_copies_ordering_across_placements () =
  let per config =
    let r = W.Copymeter.run ~count:100 config in
    float_of_int r.W.Copymeter.rx_body_copies
    /. float_of_int r.W.Copymeter.packets
  in
  let kernel = per Cfg.mach25_kernel in
  let server = per Cfg.ux_server in
  let ipc = per Cfg.library_ipc in
  let shm = per Cfg.library_shm in
  let ipf = per Cfg.library_shm_ipf in
  "server placement copies the most" => (server > ipc);
  "ipc beats server, loses to shm" => (ipc > shm);
  "shm still pays the device copy" => (shm > ipf);
  "shm-ipf matches the in-kernel copy count" => (ipf <= kernel +. 0.01)

let test_tx_copies_per_placement () =
  (* Transmit-side copy discipline: the frame gather is the single body
     copy every placement pays; the in-kernel placements add the real
     user->kernel copyin, the server placement adds the three RPC
     message passes plus its own socket copyin, and no placement copies
     to retain the send queue (first transmission and retransmission
     both emit shared views). tx counts are exact — ARP traffic never
     carries payload through these sites. *)
  let sent = 100 in
  let tx_per config =
    let r = W.Copymeter.run ~count:sent config in
    Alcotest.(check int) "no retain copy" 0 (site_copies r "tx_retain");
    Alcotest.(check int) "tx gather once per datagram" sent
      (site_copies r "tx_frame");
    r.W.Copymeter.tx_body_copies / r.W.Copymeter.sent
  in
  Alcotest.(check int) "kernel: copyin + gather" 2 (tx_per Cfg.mach25_kernel);
  Alcotest.(check int) "server: 3 rpc + copyin + gather" 5
    (tx_per Cfg.ux_server);
  Alcotest.(check int) "library-ipc: gather only" 1 (tx_per Cfg.library_ipc);
  Alcotest.(check int) "library-shm: gather only" 1 (tx_per Cfg.library_shm);
  Alcotest.(check int) "shm-ipf: gather only" 1 (tx_per Cfg.library_shm_ipf)

let test_newapi_zero_copy_receive () =
  (* The tentpole number (paper Table 4, NEWAPI column): shared-buffer
     delivery plus loans leaves the receive datapath with ZERO body
     copies — the application reads each packet exactly where the
     device-integrated filter deposited it. The loan deposit itself is
     counted at the rx_loan site, which is bookkeeping, not a copy. *)
  let count = 100 in
  let r = W.Copymeter.run ~count Cfg.library_newapi_shm_ipf in
  Alcotest.(check int) "zero rx body copies" 0 r.W.Copymeter.rx_body_copies;
  Alcotest.(check int) "no copy-out" 0 (site_copies r "rx_copyout");
  Alcotest.(check int) "no ring copy" 0 (site_copies r "rx_ring");
  Alcotest.(check int) "no device copy" 0 (site_copies r "rx_device");
  Alcotest.(check int) "no reassembly flatten" 0 (site_copies r "rx_flatten");
  Alcotest.(check int) "every packet loaned" r.W.Copymeter.packets
    (site_copies r "rx_loan");
  (* transmit side: the frame gather remains the single body copy; the
     classic user->stack copyin is replaced by an ownership transfer *)
  Alcotest.(check int) "tx: gather is the only body copy"
    r.W.Copymeter.sent r.W.Copymeter.tx_body_copies;
  Alcotest.(check int) "no copy-in" 0 (site_copies r "tx_copyin");
  Alcotest.(check int) "every send an ownership transfer"
    r.W.Copymeter.sent (site_copies r "tx_owned")

let test_newapi_copy_ladder () =
  (* receive body copies step down the delivery ladder exactly as the
     paper's NEWAPI rows argue: per-packet IPC still pays the device
     copy and one message copy, the shared ring drops the message, the
     integrated filter drops the device copy too *)
  let rx config =
    let r = W.Copymeter.run ~count:100 config in
    Alcotest.(check int)
      ("all datagrams delivered under " ^ config.Cfg.label)
      100 r.W.Copymeter.packets;
    r.W.Copymeter.rx_body_copies / r.W.Copymeter.packets
  in
  Alcotest.(check int) "NEWAPI-IPC: device + message" 2
    (rx Cfg.library_newapi_ipc);
  Alcotest.(check int) "NEWAPI-SHM: device only" 1 (rx Cfg.library_newapi_shm);
  Alcotest.(check int) "NEWAPI-SHM-IPF: zero" 0
    (rx Cfg.library_newapi_shm_ipf)

let test_shm_ipf_allocation_guard () =
  (* Steady-state receive must not allocate per payload byte: the whole
     1MB simulation (engine, fibers, views, socket strings) stays under
     a fixed minor-heap budget per data segment. Measured ~3.6k words;
     the bound leaves ~65% headroom so only a real regression (e.g. a
     reintroduced per-segment flatten) trips it. *)
  let w0 = Gc.minor_words () in
  let r = W.Ttcp.run ~mb:1 Cfg.library_shm_ipf in
  let w1 = Gc.minor_words () in
  let per_seg = (w1 -. w0) /. float_of_int r.W.Ttcp.segs_out in
  if per_seg >= 6000. then
    Alcotest.failf "allocation regression: %.0f minor words/segment" per_seg

let test_send_path_allocation_guard () =
  (* Send-side counterpart: with the transmit path zero-copy, a data
     segment's sender-side work (sndq view, header prepends, checksum,
     frame gather) allocates records and one frame — never payload-sized
     scratch. Measured ~3.1k words/segment whole-simulation; the bound
     is set so reintroducing a per-segment payload copy on the send
     path (copyin ~260 words + retain ~270 words per MSS) plus noise
     trips it, while leaving headroom over the measurement. *)
  let w0 = Gc.minor_words () in
  let r = W.Ttcp.run ~mb:1 Cfg.library_shm in
  let w1 = Gc.minor_words () in
  let per_seg = (w1 -. w0) /. float_of_int r.W.Ttcp.segs_out in
  if per_seg >= 5000. then
    Alcotest.failf "send-path allocation regression: %.0f minor words/segment"
      per_seg

let test_newapi_loan_allocation_guard () =
  (* Loan-path discipline over a whole transfer: the NEWAPI drain hands
     out views and never cooks strings, so the run must show no flatten
     and no copy-out at all, and the minor-heap budget per data segment
     sits below the classic receive guard (the per-chunk copy-out
     strings are gone). *)
  Psd_util.Copies.reset ();
  let w0 = Gc.minor_words () in
  let r = W.Ttcp.run ~mb:1 Cfg.library_newapi_shm_ipf in
  let w1 = Gc.minor_words () in
  let site name =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Psd_util.Copies.all ())
    with
    | Some (_, c, _) -> c
    | None -> 0
  in
  Alcotest.(check int) "loan drain never flattens" 0 (site "rx_flatten");
  Alcotest.(check int) "loan drain never copies out" 0 (site "rx_copyout");
  "chunks were loaned" => (site "rx_loan" > 0);
  let per_seg = (w1 -. w0) /. float_of_int r.W.Ttcp.segs_out in
  if per_seg >= 5500. then
    Alcotest.failf "loan-path allocation regression: %.0f minor words/segment"
      per_seg

(* --- header prediction ------------------------------------------------- *)

let hit_rate (rc : W.Ttcp.recovery) =
  let hit = rc.W.Ttcp.predict_hit and miss = rc.W.Ttcp.predict_miss in
  if hit + miss = 0 then 0.
  else float_of_int hit /. float_of_int (hit + miss)

(* recovery records with the observational prediction counters blanked,
   for comparing predict-on against predict-off runs *)
let strip_predict (rc : W.Ttcp.recovery) =
  { rc with W.Ttcp.predict_hit = 0; predict_miss = 0 }

let test_predict_hit_rate () =
  (* Steady-state bulk transfer is the fast path's home turf: nearly
     every synchronized-state segment (in-order data toward the
     receiver, pure acks toward the sender) must be predicted. The
     acceptance bar is 80%; the observed rate is ~99%. *)
  List.iter
    (fun config ->
      let r = W.Ttcp.run ~mb:2 config in
      let rc = r.W.Ttcp.recovery in
      "prediction exercised" => (rc.W.Ttcp.predict_hit > 0);
      let rate = hit_rate rc in
      if rate < 0.8 then
        Alcotest.failf "hit rate %.1f%% < 80%% on %s" (100. *. rate)
          config.Psd_cost.Config.label)
    [ Cfg.mach25_kernel; Cfg.library_shm_ipf ]

let test_predict_differential_clean () =
  (* The knob is observational: a clean-wire run with prediction off is
     bit-identical in virtual time, throughput, and every recovery
     counter; only the hit/miss counters differ (and are all zero when
     disabled). *)
  let on = W.Ttcp.run ~mb:2 Cfg.library_shm_ipf in
  let off = W.Ttcp.run ~mb:2 ~predict:false Cfg.library_shm_ipf in
  Alcotest.(check int) "same virtual duration" on.W.Ttcp.elapsed_ns
    off.W.Ttcp.elapsed_ns;
  Alcotest.(check int) "same segments" on.W.Ttcp.segs_out off.W.Ttcp.segs_out;
  "same recovery counters"
  => (strip_predict on.W.Ttcp.recovery = strip_predict off.W.Ttcp.recovery);
  Alcotest.(check int) "prediction disabled counts nothing" 0
    (off.W.Ttcp.recovery.W.Ttcp.predict_hit
    + off.W.Ttcp.recovery.W.Ttcp.predict_miss)

(* Differential property, mirroring the PR 1 BPF engine-equivalence
   suite: under arbitrary wire-fault regimes (loss, duplication,
   reordering, corruption — exercising the out-of-order, dup-ack, and
   retransmission slow paths the predicate must correctly refuse) a
   predict-on run and a predict-off run of the same seed produce the
   same virtual time, the same emitted-segment count, and the same
   recovery counters. [Ttcp.run] additionally pattern-verifies every
   delivered byte, so payload integrity is checked inside the property. *)
let prop_predict_differential =
  QCheck.Test.make ~name:"ttcp: fast path == slow path under chaos" ~count:8
    QCheck.(
      triple (int_bound 1000) (int_range 0 3)
        (QCheck.make
           Gen.(oneofl [ `Chaos 0.005; `Chaos 0.02; `Drop 0.03; `None ])))
    (fun (seed, cfg_i, kind) ->
      let config =
        List.nth
          [
            Cfg.mach25_kernel; Cfg.library_ipc; Cfg.library_shm;
            Cfg.library_shm_ipf;
          ]
          cfg_i
      in
      let fault =
        match kind with
        | `Chaos r -> Psd_link.Fault.chaos r
        | `Drop r -> Psd_link.Fault.drop_only r
        | `None -> Psd_link.Fault.none
      in
      let on = W.Ttcp.run ~mb:1 ~seed ~fault config in
      let off = W.Ttcp.run ~mb:1 ~seed ~fault ~predict:false config in
      on.W.Ttcp.elapsed_ns = off.W.Ttcp.elapsed_ns
      && on.W.Ttcp.segs_out = off.W.Ttcp.segs_out
      && on.W.Ttcp.kb_per_sec = off.W.Ttcp.kb_per_sec
      && strip_predict on.W.Ttcp.recovery
         = strip_predict off.W.Ttcp.recovery)

(* --- Smart-NIC offload ------------------------------------------------- *)

(* Runs [Ttcp] under the Offload placement capturing both hosts' NIC
   pipeline counters. [Ttcp.run] pattern-verifies every delivered byte
   and fails on any shortfall, so a returned result IS the proof that
   the application saw the exact byte stream. *)
let offload_run ?(mb = 1) ?seed ?fault config =
  let pipes = ref [] in
  let probe ~sender ~receiver =
    let grab sys =
      match Psd_core.System.nic_pipe sys with
      | Some p -> p
      | None -> Alcotest.fail "offload system without a NIC pipeline"
    in
    pipes := [ grab sender; grab receiver ]
  in
  let r = W.Ttcp.run ~mb ?seed ?fault ~probe config in
  match !pipes with
  | [ s; d ] -> (r, s, d)
  | _ -> Alcotest.fail "probe did not run"

let test_offload_smoke () =
  let r, snd_pipe, rcv_pipe = offload_run Cfg.offload in
  Alcotest.(check int) "bytes" (1024 * 1024) r.W.Ttcp.bytes;
  "throughput positive" => (r.W.Ttcp.kb_per_sec > 100.);
  "clean wire, no retransmissions" => (r.W.Ttcp.rexmt = 0);
  (* the host never takes a per-packet interrupt; all datapath work sits
     in the pipeline, whose counters must account for both directions *)
  "sender pipeline carried segments" => (Psd_mach.Nicpipe.segs snd_pipe > 0);
  "doorbells rung" => (Psd_mach.Nicpipe.doorbells snd_pipe > 0);
  "completions reaped" => (Psd_mach.Nicpipe.completions rcv_pipe > 0);
  "occupancy within bounds"
  => (let o = Psd_mach.Nicpipe.proto_occupancy_pct snd_pipe in
      o > 0 && o <= 100)

let test_offload_pipeline_speedup () =
  (* the tentpole claim in miniature: per-segment stage pipelining on N
     processing elements beats the same NIC serialised to one PE, in
     virtual time, on the bulk-transfer cell *)
  let piped, _, _ = offload_run Cfg.offload in
  let serial, _, _ = offload_run Cfg.offload_serial in
  "N-PE pipeline strictly faster than 1 PE"
  => (piped.W.Ttcp.elapsed_ns < serial.W.Ttcp.elapsed_ns);
  (* and deterministically so: replaying either run reproduces the
     whole result record *)
  let piped', _, _ = offload_run Cfg.offload in
  "offload replay bit-identical" => (piped = piped')

let test_offload_zero_copy () =
  (* the descriptor-ring contract: the NIC DMAs straight into loaned
     application memory, so the host receive datapath performs zero
     body copies, and transmit pays only the NIC-side frame gather *)
  let count = 100 in
  let r = W.Copymeter.run ~count Cfg.offload in
  Alcotest.(check int) "zero host rx body copies" 0
    r.W.Copymeter.rx_body_copies;
  Alcotest.(check int) "no copy-out" 0 (site_copies r "rx_copyout");
  Alcotest.(check int) "no ring copy" 0 (site_copies r "rx_ring");
  Alcotest.(check int) "no device copy" 0 (site_copies r "rx_device");
  Alcotest.(check int) "no per-packet IPC" 0 (site_copies r "rx_ipc");
  Alcotest.(check int) "no reassembly flatten" 0 (site_copies r "rx_flatten");
  Alcotest.(check int) "every packet loaned" r.W.Copymeter.packets
    (site_copies r "rx_loan");
  Alcotest.(check int) "tx: NIC gather is the only body copy"
    r.W.Copymeter.sent r.W.Copymeter.tx_body_copies;
  Alcotest.(check int) "no copy-in" 0 (site_copies r "tx_copyin");
  Alcotest.(check int) "every send an ownership transfer"
    r.W.Copymeter.sent (site_copies r "tx_owned")

let test_offload_no_pcb_leak () =
  (* full teardown on the NIC stacks: one echo connection, both sides
     close, and after 2MSL the offloaded PCB population returns to
     zero — session state lives (and dies) on the NIC like it would in
     the kernel; EOF is delivered exactly once per side *)
  let open Psd_core in
  let eng = Psd_sim.Engine.create () in
  let segment = Psd_link.Segment.create eng () in
  let sys_a =
    System.create ~eng ~segment ~config:Cfg.offload ~addr:"10.0.0.1"
      ~name:"a" ()
  in
  let sys_b =
    System.create ~eng ~segment ~config:Cfg.offload ~addr:"10.0.0.2"
      ~name:"b" ()
  in
  let pcbs = ref 0 and peak = ref 0 in
  let hook sys =
    match System.kernel_stack sys with
    | Some st ->
      Psd_tcp.Tcp.set_conn_gauge (Netstack.tcp st) (fun d ->
          pcbs := !pcbs + d;
          if !pcbs > !peak then peak := !pcbs)
    | None -> Alcotest.fail "offload system without a NIC stack"
  in
  hook sys_a;
  hook sys_b;
  let eofs = ref 0 in
  let srv = System.app sys_b ~name:"srv" in
  Psd_sim.Engine.spawn eng (fun () ->
      let l = Sockets.stream srv in
      ignore (Result.get_ok (Sockets.bind l ~port:7 ()));
      Result.get_ok (Sockets.listen l ());
      let c = Result.get_ok (Sockets.accept l) in
      let rec loop () =
        match Sockets.recv c ~max:65536 with
        | Ok "" -> incr eofs
        | Ok d ->
          ignore (Sockets.send c d);
          loop ()
        | Error e -> Alcotest.failf "offload echo server: %s" e
      in
      loop ();
      Sockets.close c;
      Sockets.close l);
  let cli = System.app sys_a ~name:"cli" in
  Psd_sim.Engine.spawn eng (fun () ->
      let s = Sockets.stream cli in
      Result.get_ok (Sockets.connect s (System.addr sys_b) 7);
      ignore (Result.get_ok (Sockets.send s (String.make 3000 'x')));
      let rec read n =
        if n < 3000 then
          match Sockets.recv s ~max:4096 with
          | Ok "" -> Alcotest.fail "early EOF on the echo client"
          | Ok d -> read (n + String.length d)
          | Error e -> Alcotest.failf "offload echo client: %s" e
      in
      read 0;
      (* half-close: our FIN lets the server's echo loop hit EOF and
         close, whose FIN we must then see exactly once *)
      Result.get_ok (Sockets.shutdown s);
      (match Sockets.recv s ~max:1 with
      | Ok "" -> incr eofs
      | Ok _ -> Alcotest.fail "data after the echo completed"
      | Error e -> Alcotest.failf "offload echo client EOF: %s" e);
      Sockets.close s);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 300);
  "both NIC connection tables were populated" => (!peak >= 2);
  Alcotest.(check int) "both sides saw exactly one EOF" 2 !eofs;
  Alcotest.(check int) "no PCBs left after teardown + 2MSL" 0 !pcbs

(* Differential: under arbitrary wire-fault regimes the Offload
   placement delivers exactly the application byte stream the reference
   host placement (Library-NEWAPI-SHM-IPF) delivers. Both runs verify
   every byte against the shared stream pattern and fail on shortfall
   or corruption, so two returned results mean two bit-identical app
   streams; the property additionally pins the volumes. *)
let prop_offload_differential =
  QCheck.Test.make
    ~name:"offload == library byte streams under chaos" ~count:6
    QCheck.(
      pair (int_bound 1000)
        (QCheck.make
           Gen.(oneofl [ `Chaos 0.005; `Chaos 0.02; `Drop 0.03; `None ])))
    (fun (seed, kind) ->
      let fault =
        match kind with
        | `Chaos r -> Psd_link.Fault.chaos r
        | `Drop r -> Psd_link.Fault.drop_only r
        | `None -> Psd_link.Fault.none
      in
      let off, _, _ = offload_run ~seed ~fault Cfg.offload in
      let lib = W.Ttcp.run ~mb:1 ~seed ~fault Cfg.library_newapi_shm_ipf in
      off.W.Ttcp.bytes = 1024 * 1024 && lib.W.Ttcp.bytes = off.W.Ttcp.bytes)

(* Pipeline-depth transcript equality: one processing element and N
   must hand the application identical byte streams under faults (both
   runs pattern-verify), differing only in virtual time — and the
   replay of each depth is deterministic. *)
let prop_offload_depth_transcript =
  QCheck.Test.make ~name:"offload: depth 1 == depth N app transcript"
    ~count:6
    QCheck.(
      pair (int_bound 1000)
        (QCheck.make Gen.(oneofl [ `Chaos 0.01; `Drop 0.02; `None ])))
    (fun (seed, kind) ->
      let fault =
        match kind with
        | `Chaos r -> Psd_link.Fault.chaos r
        | `Drop r -> Psd_link.Fault.drop_only r
        | `None -> Psd_link.Fault.none
      in
      let piped, _, _ = offload_run ~seed ~fault Cfg.offload in
      let serial, _, _ = offload_run ~seed ~fault Cfg.offload_serial in
      let piped', _, _ = offload_run ~seed ~fault Cfg.offload in
      piped.W.Ttcp.bytes = serial.W.Ttcp.bytes
      && piped = piped'
      && (kind <> `None
         || piped.W.Ttcp.elapsed_ns < serial.W.Ttcp.elapsed_ns))

(* --- control-plane scale -------------------------------------------- *)

let scale_ok what = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %a" what W.Scale.pp_error e

let test_scale_smoke () =
  let r = scale_ok "smoke" (W.Scale.run ~conns:2000 ()) in
  Alcotest.(check int) "all echoed" 2000 r.W.Scale.echoed;
  Alcotest.(check int) "no failures" 0 r.W.Scale.failed;
  Alcotest.(check int) "no PCB leak after drain" 0 r.W.Scale.final_pcbs;
  Alcotest.(check int) "clean wire, no retransmissions" 0 r.W.Scale.rexmt_segs;
  (* C1M budget: 2.2 KB per connection (two PCBs plus sockets, buffers
     and fibers) — the bound the million-connection sweep is run at *)
  if r.W.Scale.bytes_per_conn >= 2_252. then
    Alcotest.failf "%.0f bytes/conn over the 2.2 KB budget"
      r.W.Scale.bytes_per_conn;
  if r.W.Scale.bytes_per_pcb >= 1_126. then
    Alcotest.failf "%.0f bytes/pcb over the 1.1 KB budget"
      r.W.Scale.bytes_per_pcb;
  (* PCB pool leak check: every free-list slot is a put not yet
     reused, and after the drain no pooled record is still live in a
     connection table (final_pcbs above covers the tables; this covers
     the free-list bookkeeping). *)
  Alcotest.(check int) "pool accounting closes"
    (r.W.Scale.pool_puts - r.W.Scale.pool_hits)
    r.W.Scale.pool_free;
  "pool exercised" => (r.W.Scale.pool_puts > 0)

let test_scale_plan_errors () =
  let err what = function
    | Ok _ -> Alcotest.failf "%s: expected a plan error" what
    | Error e -> e
  in
  (match err "conns=0" (W.Scale.run ~conns:0 ()) with
  | W.Scale.Bad_conns 0 -> ()
  | e -> Alcotest.failf "conns=0: wrong error %a" W.Scale.pp_error e);
  (match err "per_host=0" (W.Scale.run ~conns:10 ~per_host:0 ()) with
  | W.Scale.Bad_per_host 0 -> ()
  | e -> Alcotest.failf "per_host=0: wrong error %a" W.Scale.pp_error e);
  (match
     err "too many hosts" (W.Scale.run ~conns:100_000 ~per_host:1 ())
   with
  | W.Scale.Too_many_hosts { hosts = 100_000; limit = 62_500 } -> ()
  | e -> Alcotest.failf "too many hosts: wrong error %a" W.Scale.pp_error e);
  (match
     err "par too many hosts"
       (W.Scale.run_par ~conns:100_000 ~per_host:1 ())
   with
  | W.Scale.Too_many_hosts _ -> ()
  | e ->
    Alcotest.failf "par too many hosts: wrong error %a" W.Scale.pp_error e);
  (* the largest combination the address plan admits builds fine: the
     plan is the only gate, so probe it via the typed error instead of
     constructing 62,500 systems *)
  match W.Scale.run ~conns:1 ~per_host:1 () with
  | Ok r ->
    Alcotest.(check int) "one host" 1 r.W.Scale.hosts;
    Alcotest.(check int) "one segment" 1 r.W.Scale.segments
  | Error e -> Alcotest.failf "conns=1: unexpected error %a" W.Scale.pp_error e

(* Strip the wall-clock and GC-derived fields; what remains is the
   deterministic transcript of the run. *)
let scale_transcript (r : W.Scale.result) =
  {
    r with
    W.Scale.wall_s = 0.;
    events_per_wall_s = 0.;
    wall_ms_per_sim_s = 0.;
    bytes_per_conn = 0.;
    bytes_per_pcb = 0.;
  }

let test_scale_chaos_soak_deterministic () =
  (* 10k concurrent connections under wire chaos (loss, duplication,
     reordering, corruption on both segments), twice with one seed:
     every event count, fault count, and TCP counter must replay
     exactly. This is the whole-control-plane determinism check for
     the timing-wheel engine. *)
  let soak () =
    scale_ok "chaos soak"
      (W.Scale.run ~conns:10_000 ~seed:23
         ~fault:(Psd_link.Fault.chaos 0.002) ())
  in
  let a = soak () in
  let b = soak () in
  "chaos exercised" => (a.W.Scale.injected > 0);
  "rexmt exercised" => (a.W.Scale.rexmt_segs > 0);
  "most connections still complete"
  => (a.W.Scale.echoed > 9_000);
  if scale_transcript a <> scale_transcript b then
    Alcotest.failf "soak transcripts diverge:@.%a@.%a" W.Scale.pp a
      W.Scale.pp b

(* --- Domain-parallel differentials ------------------------------------ *)

(* The whole ttcp result record is virtual-time-derived, so the shard
   count and driver (sequential rounds vs one domain per shard) must
   not change a single field. *)
let ttcp_par ?fault ~nshards ~domains () =
  W.Ttcp.run_par ~mb:4 ~seed:7 ?fault ~nshards ~domains Cfg.library_shm_ipf

let test_ttcp_par_differential () =
  let base = ttcp_par ~nshards:1 ~domains:false () in
  let seq = ttcp_par ~nshards:2 ~domains:false () in
  let dom = ttcp_par ~nshards:2 ~domains:true () in
  "throughput sane" => (base.W.Ttcp.kb_per_sec > 500.);
  "all bytes arrived" => (base.W.Ttcp.bytes = 4 * 1024 * 1024);
  if base <> seq then
    Alcotest.failf "sequential 2-shard diverges from 1-shard:@.%a@.%a"
      W.Ttcp.pp base W.Ttcp.pp seq;
  if base <> dom then
    Alcotest.failf "2-domain diverges from 1-shard:@.%a@.%a" W.Ttcp.pp base
      W.Ttcp.pp dom

let test_ttcp_par_chaos_soak () =
  (* fixed-seed chaos on the duplex wire: the two-domain transcript
     must equal the single-shard one and replay exactly *)
  let soak nshards domains =
    ttcp_par ~fault:(Psd_link.Fault.chaos 0.01) ~nshards ~domains ()
  in
  let base = soak 1 false in
  let dom = soak 2 true in
  let dom' = soak 2 true in
  "chaos exercised" => (base.W.Ttcp.recovery.W.Ttcp.injected > 0);
  "recovery exercised"
  => (base.W.Ttcp.rexmt > 0 || base.W.Ttcp.recovery.W.Ttcp.fast_rexmt > 0);
  if base <> dom then
    Alcotest.failf "2-domain chaos diverges from 1-shard:@.%a@.%a" W.Ttcp.pp
      base W.Ttcp.pp dom;
  if dom <> dom' then
    Alcotest.failf "2-domain chaos replay diverges:@.%a@.%a" W.Ttcp.pp dom
      W.Ttcp.pp dom'

(* [events] legitimately differs between drivers (the sleep bypass sees
   different horizons), so compare the scale transcript minus it. *)
let scale_par_transcript r = { (scale_transcript r) with W.Scale.events = 0 }

let scale_par ?fault ~nshards ~domains () =
  scale_ok "scale par"
    (W.Scale.run_par ~conns:300 ~per_host:100 ~hold_ns:(Psd_sim.Time.sec 2)
       ~seed:11 ?fault ~nshards ~domains ())

let test_scale_par_differential () =
  let base = scale_par ~nshards:1 ~domains:false () in
  let seq = scale_par ~nshards:2 ~domains:false () in
  let dom = scale_par ~nshards:3 ~domains:true () in
  "all echoed" => (base.W.Scale.echoed = 300);
  "no pcb leak" => (base.W.Scale.final_pcbs = 0);
  if scale_par_transcript base <> scale_par_transcript seq then
    Alcotest.failf "sequential 2-shard scale diverges:@.%a@.%a" W.Scale.pp
      base W.Scale.pp seq;
  if scale_par_transcript base <> scale_par_transcript dom then
    Alcotest.failf "3-domain scale diverges:@.%a@.%a" W.Scale.pp base
      W.Scale.pp dom

let test_scale_par_chaos () =
  let soak nshards domains =
    scale_par ~fault:(Psd_link.Fault.chaos 0.002) ~nshards ~domains ()
  in
  let base = soak 1 false in
  let dom = soak 3 true in
  "chaos exercised" => (base.W.Scale.injected > 0);
  if scale_par_transcript base <> scale_par_transcript dom then
    Alcotest.failf "3-domain chaos scale diverges:@.%a@.%a" W.Scale.pp base
      W.Scale.pp dom

let () =
  Alcotest.run "psd_workloads"
    [
      ( "paper",
        [
          Alcotest.test_case "lookups" `Quick test_paper_lookups;
          Alcotest.test_case "na cells" `Quick test_paper_na_cells;
          Alcotest.test_case "table4 cells" `Quick test_paper_table4_cells;
          Alcotest.test_case "rcv buf" `Quick test_best_rcv_buf;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "ttcp fields" `Quick test_ttcp_fields;
          Alcotest.test_case "protolat NA" `Quick test_protolat_na;
          Alcotest.test_case "latency monotone" `Quick
            test_protolat_monotone_in_size;
          Alcotest.test_case "table structs" `Quick test_tables_structs;
        ] );
      ( "copies",
        [
          Alcotest.test_case "shm-ipf single body copy" `Quick
            test_shm_ipf_single_body_copy;
          Alcotest.test_case "placement ordering" `Quick
            test_copies_ordering_across_placements;
          Alcotest.test_case "tx per placement" `Quick
            test_tx_copies_per_placement;
          Alcotest.test_case "newapi zero-copy receive" `Quick
            test_newapi_zero_copy_receive;
          Alcotest.test_case "newapi copy ladder" `Quick
            test_newapi_copy_ladder;
          Alcotest.test_case "allocation guard" `Quick
            test_shm_ipf_allocation_guard;
          Alcotest.test_case "send-path allocation guard" `Quick
            test_send_path_allocation_guard;
          Alcotest.test_case "newapi loan allocation guard" `Quick
            test_newapi_loan_allocation_guard;
        ] );
      ( "predict",
        [
          Alcotest.test_case "hit rate >= 80%" `Quick test_predict_hit_rate;
          Alcotest.test_case "clean-wire differential" `Quick
            test_predict_differential_clean;
          QCheck_alcotest.to_alcotest prop_predict_differential;
        ] );
      ( "soak",
        [
          Alcotest.test_case "chaos 2MB" `Quick test_loss_soak_short;
          Alcotest.test_case "deterministic replay" `Quick
            test_loss_soak_deterministic;
          Alcotest.test_case "chaos 16MB" `Slow test_loss_soak_16mb;
          Alcotest.test_case "clean wire" `Quick
            test_clean_wire_reports_no_faults;
        ] );
      ( "offload",
        [
          Alcotest.test_case "smoke" `Quick test_offload_smoke;
          Alcotest.test_case "pipeline speedup" `Quick
            test_offload_pipeline_speedup;
          Alcotest.test_case "zero host rx copies" `Quick
            test_offload_zero_copy;
          Alcotest.test_case "teardown leaves no PCBs" `Quick
            test_offload_no_pcb_leak;
          QCheck_alcotest.to_alcotest prop_offload_differential;
          QCheck_alcotest.to_alcotest prop_offload_depth_transcript;
        ] );
      ( "scale",
        [
          Alcotest.test_case "smoke 2k conns" `Quick test_scale_smoke;
          Alcotest.test_case "plan validation" `Quick test_scale_plan_errors;
          Alcotest.test_case "chaos soak 10k deterministic" `Quick
            test_scale_chaos_soak_deterministic;
        ] );
      ( "par",
        [
          Alcotest.test_case "ttcp differential" `Quick
            test_ttcp_par_differential;
          Alcotest.test_case "ttcp chaos soak" `Quick test_ttcp_par_chaos_soak;
          Alcotest.test_case "scale differential" `Quick
            test_scale_par_differential;
          Alcotest.test_case "scale chaos" `Quick test_scale_par_chaos;
        ] );
    ]
