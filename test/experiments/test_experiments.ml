(* Shape tests: the paper's qualitative results, asserted as invariants.
   These are the acceptance criteria of the reproduction (DESIGN.md
   section 4) — who wins, by roughly what factor, where the crossovers
   fall. Absolute numbers are checked loosely; orderings strictly. *)

module W = Psd_workloads
module Cfg = Psd_cost.Config

let ( => ) name b = Alcotest.(check bool) name true b

let tp config = (W.Ttcp.run ~mb:2 config).W.Ttcp.kb_per_sec

let rtt ?(proto = W.Protolat.Udp) ?(size = 1) config =
  (W.Protolat.run ~rounds:60 ~proto ~size config).W.Protolat.rtt_ms

(* --- Table 2 shapes ---------------------------------------------------- *)

let test_throughput_ordering () =
  let kernel = tp Cfg.mach25_kernel in
  let server = tp Cfg.ux_server in
  let lib_ipc = tp Cfg.library_ipc in
  let lib_shm = tp Cfg.library_shm in
  let lib_ipf = tp Cfg.library_shm_ipf in
  "server is the slowest" => (server < lib_ipc);
  "IPC < SHM (wakeup batching)" => (lib_ipc < lib_shm);
  "SHM <= SHM-IPF (copy elimination)" => (lib_shm <= lib_ipf);
  "library within 10% of the kernel"
  => (lib_ipf >= 0.90 *. kernel);
  "server substantially below kernel" => (server < 0.75 *. kernel);
  (* absolute sanity: a 10Mb/s wire cannot beat ~1250 KB/s *)
  "under wire capacity" => (kernel < 1250.);
  "kernel near paper value (1070)" => (abs_float (kernel -. 1070.) < 120.)

let test_udp_latency_shapes () =
  let kernel = rtt Cfg.mach25_kernel in
  let server = rtt Cfg.ux_server in
  let lib_ipf = rtt Cfg.library_shm_ipf in
  let lib_ipc = rtt Cfg.library_ipc in
  "library beats the kernel on small UDP rtt" => (lib_ipf < kernel);
  "server more than twice the library's latency"
  => (server > 2. *. lib_ipf);
  "IPC delivery slower than integrated filter" => (lib_ipc > lib_ipf);
  "library near the paper's 1.23 ms" => (abs_float (lib_ipf -. 1.23) < 0.25);
  "server near the paper's 3.64 ms" => (abs_float (server -. 3.64) < 0.8)

let test_tcp_latency_scales_with_size () =
  let at size = rtt ~proto:W.Protolat.Tcp ~size Cfg.library_shm_ipf in
  let small = at 1 and big = at 1460 in
  "latency grows with message size" => (big > 3. *. small);
  "1460B near the paper's 6.56 ms" => (abs_float (big -. 6.56) < 1.0)

let test_gateway_device_bound () =
  let kernel = (W.Ttcp.run ~machine:W.Paper.Gateway ~mb:2 Cfg.mach25_kernel).W.Ttcp.kb_per_sec in
  let lib = (W.Ttcp.run ~machine:W.Paper.Gateway ~mb:2 Cfg.library_shm).W.Ttcp.kb_per_sec in
  "gateway is device-bound (~500 KB/s ceiling)" => (kernel < 550.);
  "library beats in-kernel on the gateway" => (lib > kernel)

let test_na_cells () =
  let r =
    W.Protolat.run ~machine:W.Paper.Gateway ~rounds:10 ~proto:W.Protolat.Tcp
      ~size:1460 Cfg.bsd386_kernel
  in
  "386BSD cannot send large TCP segments" => r.W.Protolat.na;
  let ok =
    W.Protolat.run ~machine:W.Paper.Gateway ~rounds:30 ~proto:W.Protolat.Tcp
      ~size:100 Cfg.bsd386_kernel
  in
  "small segments still work" => not ok.W.Protolat.na

(* --- Table 3 shapes ---------------------------------------------------- *)

let test_newapi_beats_classic () =
  let classic = tp Cfg.library_shm_ipf in
  let newapi = tp Cfg.library_newapi_shm_ipf in
  "copy elimination helps throughput" => (newapi >= classic);
  let classic_lat = rtt ~proto:W.Protolat.Tcp ~size:1460 Cfg.library_shm_ipf in
  let newapi_lat =
    rtt ~proto:W.Protolat.Tcp ~size:1460 Cfg.library_newapi_shm_ipf
  in
  "copy elimination helps large-packet latency" => (newapi_lat < classic_lat);
  let kernel = tp Cfg.mach25_kernel in
  "NEWAPI library reaches kernel throughput" => (newapi >= 0.99 *. kernel)

(* --- Table 4 shapes ---------------------------------------------------- *)

let test_breakdown_shapes () =
  let run config =
    let b = Psd_cost.Breakdown.create () in
    ignore
      (W.Protolat.run ~rounds:60 ~breakdown:b ~proto:W.Protolat.Tcp ~size:1
         config);
    b
  in
  let lib = run Cfg.library_shm_ipf in
  let kernel = run Cfg.mach25_kernel in
  let server = run Cfg.ux_server in
  let cell b p = Psd_cost.Breakdown.total b p / 60 / 1000 in
  (* the kernel implementation has no kernel->user packet copy *)
  Alcotest.(check int) "kernel copyout zero in-kernel" 0
    (cell kernel Psd_cost.Phase.Kernel_copyout);
  "library and server DO pay the copyout"
  => (cell lib Psd_cost.Phase.Kernel_copyout > 0
     && cell server Psd_cost.Phase.Kernel_copyout > 0);
  (* server entry is dominated by the 4-copy RPC *)
  "server entry >> library entry"
  => (cell server Psd_cost.Phase.Entry_copyin
      > 5 * cell lib Psd_cost.Phase.Entry_copyin);
  (* heavyweight synchronisation shows up in the server's protocol rows *)
  "server tcp_output > kernel tcp_output"
  => (cell server Psd_cost.Phase.Proto_output
      > 2 * cell kernel Psd_cost.Phase.Proto_output);
  (* grand totals roughly reproduce the paper's columns *)
  let total b =
    List.fold_left
      (fun acc p -> acc + cell b p)
      0
      (List.filter (fun p -> p <> Psd_cost.Phase.Control) Psd_cost.Phase.all)
  in
  let near x target slack = abs (x - target) < slack in
  "library total ~ paper 934-128us" => (near (total lib) 806 250);
  "kernel total ~ paper 613us" => (near (total kernel) 562 200);
  "server total ~ paper 1864us" => (near (total server) 1813 450)

(* --- ablation directions ------------------------------------------------ *)

let test_sync_weight_causal () =
  match W.Ablation.sync_weight ~rounds:60 () with
  | [ (_, light); (_, heavy) ] ->
    "heavy synchronisation costs latency" => (heavy > light +. 0.5)
  | _ -> Alcotest.fail "unexpected ablation shape"

let test_migration_amortization () =
  match W.Ablation.migration_cost ~conns:8 ~bytes_per_conn:512 () with
  | [ (_, lib); (_, server); (_, kernel) ] ->
    "library short connections still beat the server" => (lib < server);
    "but pay migration overhead relative to in-kernel" => (lib > kernel)
  | _ -> Alcotest.fail "unexpected ablation shape"

let test_bufsize_sweep_monotone_then_flat () =
  let sweep =
    W.Ablation.bufsize_sweep ~mb:2 ~sizes_kb:[ 4; 16; 63 ] Cfg.library_shm_ipf
  in
  match sweep with
  | [ (_, small); (_, mid); (_, big) ] ->
    "larger buffers never hurt" => (mid >= small -. 20. && big >= mid -. 20.);
    "small buffers throttle throughput" => (small < big)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_simulation_is_deterministic () =
  let run () =
    let r1 = W.Ttcp.run ~mb:1 ~seed:99 Cfg.library_shm in
    let l1 =
      W.Protolat.run ~rounds:40 ~seed:42 ~proto:W.Protolat.Tcp ~size:512
        Cfg.ux_server
    in
    (r1.W.Ttcp.elapsed_ns, r1.W.Ttcp.segs_out, l1.W.Protolat.rtt_ms)
  in
  let a = run () and b = run () in
  "bit-identical replay" => (a = b)

let () =
  Alcotest.run "experiments"
    [
      ( "table2",
        [
          Alcotest.test_case "throughput ordering" `Quick
            test_throughput_ordering;
          Alcotest.test_case "udp latency" `Quick test_udp_latency_shapes;
          Alcotest.test_case "tcp latency vs size" `Quick
            test_tcp_latency_scales_with_size;
          Alcotest.test_case "gateway device bound" `Quick
            test_gateway_device_bound;
          Alcotest.test_case "NA cells" `Quick test_na_cells;
        ] );
      ( "table3",
        [ Alcotest.test_case "newapi" `Quick test_newapi_beats_classic ] );
      ( "table4",
        [ Alcotest.test_case "breakdown shapes" `Quick test_breakdown_shapes ]
      );
      ( "determinism",
        [
          Alcotest.test_case "replay" `Quick test_simulation_is_deterministic;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "sync weight" `Quick test_sync_weight_causal;
          Alcotest.test_case "migration" `Quick test_migration_amortization;
          Alcotest.test_case "bufsize sweep" `Quick
            test_bufsize_sweep_monotone_then_flat;
        ] );
    ]
