open Psd_socket
open Psd_sim

let ( => ) name b = Alcotest.(check bool) name true b

(* --- Sockbuf ------------------------------------------------------------ *)

let test_sockbuf_fifo_bytes () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "hello ");
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "world");
  Alcotest.(check int) "cc" 11 (Sockbuf.cc sb);
  (match Sockbuf.try_read sb ~max:8 with
  | Ok m -> Alcotest.(check string) "first 8" "hello wo" (Psd_mbuf.Mbuf.to_string m)
  | Error _ -> Alcotest.fail "read failed");
  (match Sockbuf.try_read sb ~max:100 with
  | Ok m -> Alcotest.(check string) "rest" "rld" (Psd_mbuf.Mbuf.to_string m)
  | Error _ -> Alcotest.fail "read failed");
  (match Sockbuf.try_read sb ~max:1 with
  | Error `Empty -> ()
  | _ -> Alcotest.fail "expected empty")

let test_sockbuf_blocking_read () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  let got = ref "" in
  Engine.spawn eng (fun () ->
      match Sockbuf.read sb ~max:100 with
      | Ok m -> got := Psd_mbuf.Mbuf.to_string m
      | Error _ -> ());
  Engine.schedule eng (Time.ms 5) (fun () ->
      Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "late"));
  Engine.run eng;
  Alcotest.(check string) "woke with data" "late" !got

let test_sockbuf_eof_after_data () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "tail");
  Sockbuf.set_eof sb;
  "readable with eof" => Sockbuf.readable sb;
  (match Sockbuf.try_read sb ~max:100 with
  | Ok m -> Alcotest.(check string) "data first" "tail" (Psd_mbuf.Mbuf.to_string m)
  | Error _ -> Alcotest.fail "data lost at eof");
  match Sockbuf.try_read sb ~max:100 with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "expected eof"

let test_sockbuf_error_propagates () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  let result = ref (Ok ()) in
  Engine.spawn eng (fun () ->
      match Sockbuf.read sb ~max:10 with
      | Error (`Error e) -> result := Error e
      | _ -> ());
  Engine.schedule eng 10 (fun () -> Sockbuf.set_error sb "reset");
  Engine.run eng;
  Alcotest.(check bool) "error delivered" true (!result = Error "reset")

let test_sockbuf_change_hooks_and_waiters () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  let changes = ref 0 in
  Sockbuf.on_change sb (fun () -> incr changes);
  "no waiters initially" => not (Sockbuf.has_waiters sb);
  Engine.spawn eng (fun () -> ignore (Sockbuf.read sb ~max:1));
  Engine.run_for eng 1;
  "reader registered" => Sockbuf.has_waiters sb;
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "x");
  Engine.run eng;
  "hooks fired" => (!changes >= 1);
  "reader gone" => not (Sockbuf.has_waiters sb)

let test_sockbuf_space () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng ~hiwat:10 () in
  Alcotest.(check int) "initial space" 10 (Sockbuf.space sb);
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "123456");
  Alcotest.(check int) "space shrinks" 4 (Sockbuf.space sb);
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "789012");
  Alcotest.(check int) "floored at zero" 0 (Sockbuf.space sb)

(* --- NEWAPI loans: bytes leave the queue but stay charged ---------------- *)

let test_sockbuf_loan_accounting () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng ~hiwat:10 () in
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "12345678");
  Alcotest.(check int) "space before loan" 2 (Sockbuf.space sb);
  (match Sockbuf.try_read_loan sb ~max:5 with
  | Ok m ->
    Alcotest.(check string) "loan bytes" "12345" (Psd_mbuf.Mbuf.to_string m)
  | Error _ -> Alcotest.fail "loan failed");
  Alcotest.(check int) "cc drops at loan" 3 (Sockbuf.cc sb);
  Alcotest.(check int) "loaned" 5 (Sockbuf.loaned sb);
  Alcotest.(check int) "space unchanged while loaned" 2 (Sockbuf.space sb);
  Sockbuf.loan_return sb 2;
  Alcotest.(check int) "partial return reopens space" 4 (Sockbuf.space sb);
  Sockbuf.loan_return sb 3;
  Alcotest.(check int) "full return" 7 (Sockbuf.space sb);
  Alcotest.(check int) "no loans out" 0 (Sockbuf.loaned sb)

let test_sockbuf_loan_return_validation () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "abcd");
  (match Sockbuf.try_read_loan sb ~max:4 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "loan failed");
  Alcotest.check_raises "over-return"
    (Invalid_argument "Sockbuf.loan_return: not loaned") (fun () ->
      Sockbuf.loan_return sb 5);
  Alcotest.check_raises "negative"
    (Invalid_argument "Sockbuf.loan_return: negative length") (fun () ->
      Sockbuf.loan_return sb (-1));
  Sockbuf.loan_return sb 4;
  Alcotest.(check int) "settled" 0 (Sockbuf.loaned sb)

let test_sockbuf_loan_return_fires_hooks () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_string "window");
  (match Sockbuf.try_read_loan sb ~max:6 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "loan failed");
  let changes = ref 0 in
  Sockbuf.on_change sb (fun () -> incr changes);
  Sockbuf.loan_return sb 0;
  Alcotest.(check int) "zero-length return is silent" 0 !changes;
  (* the TCP window-update path hangs off these hooks: a real return
     must announce the reclaimed space *)
  Sockbuf.loan_return sb 6;
  "return announces space" => (!changes >= 1)

let test_sockbuf_loan_never_flattens () =
  let eng = Engine.create () in
  let sb = Sockbuf.create eng () in
  let page = Bytes.of_string "shared-page-contents" in
  Sockbuf.append sb (Psd_mbuf.Mbuf.of_bytes_view page ~off:0 ~len:20);
  match Sockbuf.try_read_loan sb ~max:20 with
  | Ok m ->
    let aliases =
      Psd_mbuf.Mbuf.fold_ranges m ~init:false
        ~f:(fun acc buf ~off:_ ~len:_ -> acc || buf == page)
    in
    "loan aliases the deposited page" => aliases;
    Sockbuf.loan_return sb 20
  | Error _ -> Alcotest.fail "loan failed"

let prop_sockbuf_loans_preserve_stream =
  QCheck.Test.make
    ~name:"sockbuf: loaned reads concatenate to appends, charges settle"
    ~count:100
    QCheck.(list (string_of_size Gen.(0 -- 200)))
    (fun chunks ->
      let eng = Engine.create () in
      let sb = Sockbuf.create eng () in
      List.iter (fun c -> Sockbuf.append sb (Psd_mbuf.Mbuf.of_string c)) chunks;
      Sockbuf.set_eof sb;
      let total = List.fold_left (fun a c -> a + String.length c) 0 chunks in
      let buf = Buffer.create 64 in
      (* hold every loan until the queue is dry, then return them all *)
      let rec drain loans =
        match Sockbuf.try_read_loan sb ~max:41 with
        | Ok m ->
          Buffer.add_string buf (Psd_mbuf.Mbuf.to_string m);
          drain (Psd_mbuf.Mbuf.length m :: loans)
        | Error `Eof | Error `Empty | Error (`Error _) -> loans
      in
      let loans = drain [] in
      let drained_ok =
        Sockbuf.loaned sb = total
        && Buffer.contents buf = String.concat "" chunks
      in
      List.iter (fun n -> Sockbuf.loan_return sb n) loans;
      drained_ok && Sockbuf.loaned sb = 0
      && Sockbuf.space sb = Sockbuf.hiwat sb)

let prop_sockbuf_preserves_stream =
  QCheck.Test.make ~name:"sockbuf: reads concatenate to appends" ~count:100
    QCheck.(list (string_of_size Gen.(0 -- 200)))
    (fun chunks ->
      let eng = Engine.create () in
      let sb = Sockbuf.create eng () in
      List.iter (fun c -> Sockbuf.append sb (Psd_mbuf.Mbuf.of_string c)) chunks;
      Sockbuf.set_eof sb;
      let buf = Buffer.create 64 in
      let rec drain () =
        match Sockbuf.try_read sb ~max:37 with
        | Ok m ->
          Buffer.add_string buf (Psd_mbuf.Mbuf.to_string m);
          drain ()
        | Error `Eof | Error `Empty -> ()
        | Error (`Error _) -> ()
      in
      drain ();
      Buffer.contents buf = String.concat "" chunks)

(* --- Dgramq ------------------------------------------------------------- *)

let test_dgramq_boundaries () =
  let eng = Engine.create () in
  let q = Dgramq.create eng () in
  ignore (Dgramq.push q ~src:(1, 10) "first");
  ignore (Dgramq.push q ~src:(2, 20) "second");
  (match Dgramq.try_recv q with
  | Some ((1, 10), "first") -> ()
  | _ -> Alcotest.fail "wrong first datagram");
  (match Dgramq.try_recv q with
  | Some ((2, 20), "second") -> ()
  | _ -> Alcotest.fail "wrong second datagram");
  "drained" => (Dgramq.try_recv q = None)

let test_dgramq_drops_when_full () =
  let eng = Engine.create () in
  let q = Dgramq.create eng ~max_queued:2 () in
  "1" => Dgramq.push q ~src:(0, 0) "a";
  "2" => Dgramq.push q ~src:(0, 0) "b";
  "3 dropped" => not (Dgramq.push q ~src:(0, 0) "c");
  Alcotest.(check int) "dropped count" 1 (Dgramq.dropped q);
  Alcotest.(check int) "length" 2 (Dgramq.length q)

let test_dgramq_blocking () =
  let eng = Engine.create () in
  let q = Dgramq.create eng () in
  let got = ref "" in
  Engine.spawn eng (fun () ->
      let _, payload = Dgramq.recv q in
      got := payload);
  Engine.schedule eng (Time.ms 3) (fun () ->
      ignore (Dgramq.push q ~src:(9, 9) "wake"));
  Engine.run eng;
  Alcotest.(check string) "blocking recv" "wake" !got

let () =
  Alcotest.run "psd_socket"
    [
      ( "sockbuf",
        [
          Alcotest.test_case "fifo bytes" `Quick test_sockbuf_fifo_bytes;
          Alcotest.test_case "blocking read" `Quick test_sockbuf_blocking_read;
          Alcotest.test_case "eof after data" `Quick test_sockbuf_eof_after_data;
          Alcotest.test_case "error" `Quick test_sockbuf_error_propagates;
          Alcotest.test_case "hooks+waiters" `Quick
            test_sockbuf_change_hooks_and_waiters;
          Alcotest.test_case "space" `Quick test_sockbuf_space;
          Alcotest.test_case "loan accounting" `Quick
            test_sockbuf_loan_accounting;
          Alcotest.test_case "loan return validation" `Quick
            test_sockbuf_loan_return_validation;
          Alcotest.test_case "loan return fires hooks" `Quick
            test_sockbuf_loan_return_fires_hooks;
          Alcotest.test_case "loan never flattens" `Quick
            test_sockbuf_loan_never_flattens;
          QCheck_alcotest.to_alcotest prop_sockbuf_preserves_stream;
          QCheck_alcotest.to_alcotest prop_sockbuf_loans_preserve_stream;
        ] );
      ( "dgramq",
        [
          Alcotest.test_case "boundaries" `Quick test_dgramq_boundaries;
          Alcotest.test_case "overflow" `Quick test_dgramq_drops_when_full;
          Alcotest.test_case "blocking" `Quick test_dgramq_blocking;
        ] );
    ]
