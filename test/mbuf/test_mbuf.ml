open Psd_mbuf

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test_of_string_roundtrip () =
  let m = Mbuf.of_string "hello world" in
  check_int "length" 11 (Mbuf.length m);
  check_str "payload" "hello world" (Mbuf.to_string m)

let test_empty () =
  let m = Mbuf.empty () in
  check_int "length" 0 (Mbuf.length m);
  Alcotest.(check bool) "is_empty" true (Mbuf.is_empty m);
  check_str "flat" "" (Mbuf.to_string m)

let test_chunking () =
  let payload = String.make (Mbuf.cluster_size * 2 + 100) 'x' in
  let m = Mbuf.of_string payload in
  check_int "length" (String.length payload) (Mbuf.length m);
  check_int "segments" 3 (Mbuf.seg_count m);
  check_str "roundtrip" payload (Mbuf.to_string m)

let test_prepend_in_headroom () =
  let m = Mbuf.of_string "payload" in
  let before = Mbuf.seg_count m in
  let buf, off = Mbuf.prepend m 4 in
  Bytes.blit_string "HDR:" 0 buf off 4;
  check_int "no new segment" before (Mbuf.seg_count m);
  check_str "prefixed" "HDR:payload" (Mbuf.to_string m)

let test_prepend_overflow_headroom () =
  let m = Mbuf.of_string ~headroom:2 "xy" in
  let buf, off = Mbuf.prepend m 10 in
  Bytes.blit_string "0123456789" 0 buf off 10;
  check_str "new seg" "0123456789xy" (Mbuf.to_string m);
  check_int "segments" 2 (Mbuf.seg_count m)

let test_prepend_empty_payload () =
  (* A pure-ACK TCP segment: headers prepended onto an empty chain. *)
  let m = Mbuf.of_string "" in
  let buf, off = Mbuf.prepend m 20 in
  Bytes.fill buf off 20 'h';
  check_int "len" 20 (Mbuf.length m)

let test_trim_front () =
  let m = Mbuf.of_string "ETHIPhello" in
  Mbuf.trim_front m 5;
  check_str "stripped" "hello" (Mbuf.to_string m)

let test_trim_front_across_segments () =
  let payload =
    String.make Mbuf.cluster_size 'a' ^ String.make 10 'b'
  in
  let m = Mbuf.of_string payload in
  Mbuf.trim_front m (Mbuf.cluster_size + 4);
  check_str "tail" "bbbbbb" (Mbuf.to_string m)

let test_trim_back () =
  let m = Mbuf.of_string "hello world" in
  Mbuf.trim_back m 6;
  check_str "front kept" "hello" (Mbuf.to_string m)

let test_trim_back_across_segments () =
  let payload = String.make Mbuf.cluster_size 'a' ^ "tail" in
  let m = Mbuf.of_string payload in
  Mbuf.trim_back m 8;
  check_int "len" (Mbuf.cluster_size - 4) (Mbuf.length m)

let test_trim_bounds () =
  let m = Mbuf.of_string "abc" in
  Alcotest.check_raises "too much" (Invalid_argument "Mbuf.trim_front")
    (fun () -> Mbuf.trim_front m 4)

let test_concat () =
  let a = Mbuf.of_string "foo" and b = Mbuf.of_string "bar" in
  Mbuf.concat a b;
  check_str "joined" "foobar" (Mbuf.to_string a);
  Alcotest.(check bool) "b emptied" true (Mbuf.is_empty b)

let test_copy_range () =
  let m = Mbuf.of_string "0123456789" in
  let c = Mbuf.copy_range m ~off:3 ~len:4 in
  check_str "copy" "3456" (Mbuf.to_string c);
  check_str "original intact" "0123456789" (Mbuf.to_string m)

let test_copy_range_across_segments () =
  let payload = String.init (Mbuf.cluster_size + 50) (fun i -> Char.chr (i mod 26 + 65)) in
  let m = Mbuf.of_string payload in
  let off = Mbuf.cluster_size - 10 and len = 30 in
  let c = Mbuf.copy_range m ~off ~len in
  check_str "cross-seg copy" (String.sub payload off len) (Mbuf.to_string c)

let test_copy_range_bounds () =
  let m = Mbuf.of_string "abc" in
  Alcotest.check_raises "oob" (Invalid_argument "Mbuf.copy_range") (fun () ->
      ignore (Mbuf.copy_range m ~off:1 ~len:3))

let test_split () =
  let m = Mbuf.of_string "headtail!" in
  let head = Mbuf.split m 4 in
  check_str "head" "head" (Mbuf.to_string head);
  check_str "tail" "tail!" (Mbuf.to_string m)

let test_get_u8 () =
  let m = Mbuf.of_string "AZ" in
  check_int "first" 65 (Mbuf.get_u8 m 0);
  check_int "second" 90 (Mbuf.get_u8 m 1)

let test_fold_ranges_checksum_consistency () =
  let payload = String.init 5000 (fun i -> Char.chr (i * 7 mod 256)) in
  let m = Mbuf.of_string payload in
  let count =
    Mbuf.fold_ranges m ~init:0 ~f:(fun acc _ ~off:_ ~len -> acc + len)
  in
  check_int "ranges cover payload" (String.length payload) count

(* --- storage selection (small mbuf vs cluster) ------------------------- *)

let test_small_mbuf_for_small_payload () =
  (* headroom + len ≤ mlen must yield exactly one small mbuf whose
     headroom the TCP/IP/link prepends then reuse without new segments *)
  let len = Mbuf.mlen - Mbuf.default_headroom in
  let m = Mbuf.of_string (String.make len 'p') in
  check_int "one segment" 1 (Mbuf.seg_count m);
  let buf, off = Mbuf.prepend m Mbuf.default_headroom in
  Bytes.fill buf off Mbuf.default_headroom 'h';
  check_int "headers fit in headroom" 1 (Mbuf.seg_count m);
  check_int "length" Mbuf.mlen (Mbuf.length m)

let test_cluster_chunk_boundaries () =
  let one = Mbuf.of_bytes (Bytes.make Mbuf.cluster_size 'x') ~off:0
      ~len:Mbuf.cluster_size
  in
  check_int "exactly one cluster" 1 (Mbuf.seg_count one);
  let two = Mbuf.of_bytes (Bytes.make (Mbuf.cluster_size + 1) 'x') ~off:0
      ~len:(Mbuf.cluster_size + 1)
  in
  check_int "one byte over spills" 2 (Mbuf.seg_count two)

(* --- differential suite: view-based ops vs a copying reference --------- *)

(* A multi-segment chain of zero-copy views over one shared buffer, cut
   at arbitrary (frequently odd) offsets — the shape the receive path
   builds — checked against plain string arithmetic. *)
let chain_of_cuts s cuts =
  let n = String.length s in
  let b = Bytes.of_string s in
  let cuts =
    List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cuts)
  in
  let m = Mbuf.empty () in
  let rec go off = function
    | [] -> if n - off >= 0 then Mbuf.concat m (Mbuf.of_bytes_view b ~off ~len:(n - off))
    | c :: rest ->
      Mbuf.concat m (Mbuf.of_bytes_view b ~off ~len:(c - off));
      go c rest
  in
  go 0 cuts;
  (m, b)

let chain_gen =
  QCheck.(pair (string_of_size Gen.(0 -- 3000)) (list_of_size Gen.(0 -- 8) small_nat))

let prop_view_roundtrip =
  QCheck.Test.make ~name:"view: chain of views = original" ~count:200
    chain_gen
    (fun (s, cuts) ->
      let m, _ = chain_of_cuts s cuts in
      Mbuf.to_string m = s)

let prop_view_split_partition =
  QCheck.Test.make ~name:"view: split partitions, concat restores"
    ~count:200
    QCheck.(pair chain_gen small_nat)
    (fun ((s, cuts), n) ->
      let n = n mod (String.length s + 1) in
      let m, _ = chain_of_cuts s cuts in
      let head = Mbuf.split m n in
      let parts_ok =
        Mbuf.to_string head = String.sub s 0 n
        && Mbuf.to_string m = String.sub s n (String.length s - n)
      in
      Mbuf.concat head m;
      parts_ok && Mbuf.to_string head = s)

let prop_sub_view_matches_sub =
  QCheck.Test.make ~name:"view: sub_view = String.sub, non-destructive"
    ~count:200
    QCheck.(triple chain_gen small_nat small_nat)
    (fun ((s, cuts), a, b) ->
      let len_s = String.length s in
      let off = if len_s = 0 then 0 else a mod len_s in
      let len = b mod (len_s - off + 1) in
      let m, _ = chain_of_cuts s cuts in
      Mbuf.to_string (Mbuf.sub_view m ~off ~len) = String.sub s off len
      && Mbuf.to_string m = s)

let prop_view_trim =
  QCheck.Test.make ~name:"view: trim_front/back = String.sub" ~count:200
    QCheck.(triple chain_gen small_nat small_nat)
    (fun ((s, cuts), f, bk) ->
      let len_s = String.length s in
      let f = if len_s = 0 then 0 else f mod (len_s + 1) in
      let bk = bk mod (len_s - f + 1) in
      let m, _ = chain_of_cuts s cuts in
      Mbuf.trim_front m f;
      Mbuf.trim_back m bk;
      Mbuf.to_string m = String.sub s f (len_s - f - bk))

let prop_view_copy_range =
  QCheck.Test.make ~name:"view: copy_range = String.sub" ~count:200
    QCheck.(triple chain_gen small_nat small_nat)
    (fun ((s, cuts), a, b) ->
      let len_s = String.length s in
      let off = if len_s = 0 then 0 else a mod len_s in
      let len = b mod (len_s - off + 1) in
      let m, _ = chain_of_cuts s cuts in
      Mbuf.to_string (Mbuf.copy_range m ~off ~len) = String.sub s off len)

let prop_chain_checksum_equals_flat =
  QCheck.Test.make
    ~name:"view: segment-wise checksum = flat checksum" ~count:500
    chain_gen
    (fun (s, cuts) ->
      let m, _ = chain_of_cuts s cuts in
      let flat = Bytes.of_string s in
      let chain_ck =
        Psd_util.Checksum.finish (Mbuf.checksum_add m Psd_util.Checksum.empty)
      in
      chain_ck
      = Psd_util.Checksum.of_bytes flat ~off:0 ~len:(String.length s))

let prop_prepend_never_writes_shared =
  QCheck.Test.make
    ~name:"view: prepend never mutates the viewed buffer" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 500)) Gen.(1 -- 64 |> fun g -> make g))
    (fun (s, hdr) ->
      (* view into the middle of a buffer: bytes before [off] look like
         headroom, but the segment is shared, so prepend must not reuse
         them *)
      let b = Bytes.of_string ("PREFIX__" ^ s) in
      let before = Bytes.to_string b in
      let m = Mbuf.of_bytes_view b ~off:8 ~len:(String.length s) in
      let buf, off = Mbuf.prepend m hdr in
      Bytes.fill buf off hdr 'Z';
      Bytes.to_string b = before
      && Mbuf.to_string m = String.make hdr 'Z' ^ s)

let prop_split_isolates_halves =
  QCheck.Test.make
    ~name:"view: prepend after split never corrupts the other half"
    ~count:200
    QCheck.(pair (string_of_size Gen.(2 -- 2000)) small_nat)
    (fun (s, n) ->
      let n = 1 + (n mod (String.length s - 1)) in
      let m = Mbuf.of_string s in
      let head = Mbuf.split m n in
      let buf, off = Mbuf.prepend m 16 in
      Bytes.fill buf off 16 'Z';
      let buf2, off2 = Mbuf.prepend head 16 in
      Bytes.fill buf2 off2 16 'Y';
      Mbuf.to_string head = String.make 16 'Y' ^ String.sub s 0 n
      && Mbuf.to_string m
         = String.make 16 'Z' ^ String.sub s n (String.length s - n))

(* --- loan lifetime: the NEWAPI hands these same view chains to the
   application as borrowed references, so a loaned head must keep
   reading correct bytes no matter what the protocol stack does to the
   rest of the chain afterwards ------------------------------------- *)

let prop_loan_survives_source_drain =
  QCheck.Test.make
    ~name:"view: loaned head survives drain/append on the source chain"
    ~count:200
    QCheck.(triple chain_gen small_nat (string_of_size Gen.(0 -- 500)))
    (fun ((s, cuts), n, extra) ->
      let n = n mod (String.length s + 1) in
      let m, _ = chain_of_cuts s cuts in
      (* split is the sockbuf take discipline: the loan shares buffers
         with what stays queued *)
      let loan = Mbuf.split m n in
      Mbuf.concat m (Mbuf.of_string extra);
      let rest = String.sub s n (String.length s - n) ^ extra in
      let drained = Mbuf.split m (Mbuf.length m / 2) in
      Mbuf.to_string loan = String.sub s 0 n
      && Mbuf.to_string drained ^ Mbuf.to_string m = rest)

let prop_loan_view_outlives_parent_trim =
  QCheck.Test.make
    ~name:"view: sub_view loan stays correct as the parent is trimmed away"
    ~count:200
    QCheck.(triple chain_gen small_nat small_nat)
    (fun ((s, cuts), a, b) ->
      let len_s = String.length s in
      let off = if len_s = 0 then 0 else a mod len_s in
      let len = b mod (len_s - off + 1) in
      let m, _ = chain_of_cuts s cuts in
      let loan = Mbuf.sub_view m ~off ~len in
      Mbuf.trim_front m (min len_s (off + len));
      Mbuf.trim_back m (Mbuf.length m);
      Mbuf.to_string loan = String.sub s off len)

let prop_owned_alias_rexmt_isolation =
  QCheck.Test.make
    ~name:"view: aliases of one owned buffer (tx + rexmt) never corrupt it"
    ~count:200
    QCheck.(triple (string_of_size Gen.(1 -- 2000)) small_nat small_nat)
    (fun (s, a, b) ->
      let len_s = String.length s in
      let off = a mod len_s in
      let len = 1 + (b mod (len_s - off)) in
      let owned = Bytes.of_string s in
      (* send_owned's first transmission and a later retransmission both
         alias the caller's bytes; each prepends its own headers *)
      let tx1 = Mbuf.of_bytes_view owned ~off ~len in
      let tx2 = Mbuf.of_bytes_view owned ~off ~len in
      let h1, o1 = Mbuf.prepend tx1 40 in
      Bytes.fill h1 o1 40 'H';
      let h2, o2 = Mbuf.prepend tx2 40 in
      Bytes.fill h2 o2 40 'R';
      let body = String.sub s off len in
      Bytes.to_string owned = s
      && Mbuf.to_string tx1 = String.make 40 'H' ^ body
      && Mbuf.to_string tx2 = String.make 40 'R' ^ body)

let prop_roundtrip =
  QCheck.Test.make ~name:"mbuf: of_string/to_string roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 5000))
    (fun s -> Mbuf.to_string (Mbuf.of_string s) = s)

let prop_trim_then_length =
  QCheck.Test.make ~name:"mbuf: trim_front reduces length" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 4000)) small_nat)
    (fun (s, n) ->
      let n = n mod (String.length s + 1) in
      let m = Mbuf.of_string s in
      Mbuf.trim_front m n;
      Mbuf.to_string m = String.sub s n (String.length s - n))

let prop_copy_range_matches_sub =
  QCheck.Test.make ~name:"mbuf: copy_range = String.sub" ~count:200
    QCheck.(triple (string_of_size Gen.(1 -- 4000)) small_nat small_nat)
    (fun (s, a, b) ->
      let len_s = String.length s in
      let off = a mod len_s in
      let len = b mod (len_s - off + 1) in
      let m = Mbuf.of_string s in
      Mbuf.to_string (Mbuf.copy_range m ~off ~len) = String.sub s off len)

let prop_split_partition =
  QCheck.Test.make ~name:"mbuf: split partitions payload" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 3000)) small_nat)
    (fun (s, n) ->
      let n = n mod (String.length s + 1) in
      let m = Mbuf.of_string s in
      let head = Mbuf.split m n in
      Mbuf.to_string head ^ Mbuf.to_string m = s)

let () =
  Alcotest.run "psd_mbuf"
    [
      ( "mbuf",
        [
          Alcotest.test_case "roundtrip" `Quick test_of_string_roundtrip;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "chunking" `Quick test_chunking;
          Alcotest.test_case "prepend headroom" `Quick
            test_prepend_in_headroom;
          Alcotest.test_case "prepend overflow" `Quick
            test_prepend_overflow_headroom;
          Alcotest.test_case "prepend empty" `Quick test_prepend_empty_payload;
          Alcotest.test_case "trim front" `Quick test_trim_front;
          Alcotest.test_case "trim front cross-seg" `Quick
            test_trim_front_across_segments;
          Alcotest.test_case "trim back" `Quick test_trim_back;
          Alcotest.test_case "trim back cross-seg" `Quick
            test_trim_back_across_segments;
          Alcotest.test_case "trim bounds" `Quick test_trim_bounds;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "copy_range" `Quick test_copy_range;
          Alcotest.test_case "copy_range cross-seg" `Quick
            test_copy_range_across_segments;
          Alcotest.test_case "copy_range bounds" `Quick test_copy_range_bounds;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "get_u8" `Quick test_get_u8;
          Alcotest.test_case "fold_ranges" `Quick
            test_fold_ranges_checksum_consistency;
          Alcotest.test_case "small mbuf" `Quick
            test_small_mbuf_for_small_payload;
          Alcotest.test_case "cluster boundaries" `Quick
            test_cluster_chunk_boundaries;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_roundtrip;
              prop_trim_then_length;
              prop_copy_range_matches_sub;
              prop_split_partition;
            ] );
      ( "views",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_view_roundtrip;
            prop_view_split_partition;
            prop_sub_view_matches_sub;
            prop_view_trim;
            prop_view_copy_range;
            prop_chain_checksum_equals_flat;
            prop_prepend_never_writes_shared;
            prop_split_isolates_halves;
            prop_loan_survives_source_drain;
            prop_loan_view_outlives_parent_trim;
            prop_owned_alias_rexmt_isolation;
          ] );
    ]
