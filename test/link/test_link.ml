open Psd_link
open Psd_sim

let mk_frame ~dst ~src ~len =
  let b = Bytes.make (max len Frame.header_size) '\x00' in
  Frame.set_header b ~off:0 ~dst ~src ~ethertype:Frame.ethertype_ip;
  b

let test_macaddr_roundtrip () =
  let m = Macaddr.of_host_id 5 in
  let b = Bytes.create 10 in
  Macaddr.write m b 2;
  Alcotest.(check bool) "roundtrip" true (Macaddr.equal m (Macaddr.read b 2))

let test_macaddr_broadcast () =
  Alcotest.(check bool) "bcast" true (Macaddr.is_broadcast Macaddr.broadcast);
  Alcotest.(check bool) "unicast" false
    (Macaddr.is_broadcast (Macaddr.of_host_id 1))

let test_macaddr_pp () =
  let s = Format.asprintf "%a" Macaddr.pp (Macaddr.of_host_id 1) in
  Alcotest.(check string) "pp" "02:00:00:00:00:01" s

let test_frame_header () =
  let dst = Macaddr.of_host_id 1 and src = Macaddr.of_host_id 2 in
  let b = mk_frame ~dst ~src ~len:64 in
  Alcotest.(check bool) "dst" true (Macaddr.equal dst (Frame.dst b));
  Alcotest.(check bool) "src" true (Macaddr.equal src (Frame.src b));
  Alcotest.(check int) "ethertype" 0x0800 (Frame.ethertype b)

let two_nics () =
  let eng = Engine.create () in
  let seg = Segment.create eng () in
  let a = Segment.attach seg ~mac:(Macaddr.of_host_id 1) in
  let b = Segment.attach seg ~mac:(Macaddr.of_host_id 2) in
  (eng, seg, a, b)

let test_unicast_delivery () =
  let eng, _seg, a, b = two_nics () in
  let got = ref [] in
  Segment.set_rx b (fun frame -> got := frame :: !got);
  let self = ref 0 in
  Segment.set_rx a (fun _ -> incr self);
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:100);
  Engine.run eng;
  Alcotest.(check int) "b got one" 1 (List.length !got);
  Alcotest.(check int) "a does not hear itself" 0 !self

let test_wrong_dst_filtered () =
  let eng, seg, a, b = two_nics () in
  let c = Segment.attach seg ~mac:(Macaddr.of_host_id 3) in
  let got_b = ref 0 and got_c = ref 0 in
  Segment.set_rx b (fun _ -> incr got_b);
  Segment.set_rx c (fun _ -> incr got_c);
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac c) ~src:(Segment.mac a) ~len:80);
  Engine.run eng;
  Alcotest.(check int) "b filtered" 0 !got_b;
  Alcotest.(check int) "c got it" 1 !got_c

let test_broadcast_delivery () =
  let eng, seg, a, b = two_nics () in
  let c = Segment.attach seg ~mac:(Macaddr.of_host_id 3) in
  let got_b = ref 0 and got_c = ref 0 in
  Segment.set_rx b (fun _ -> incr got_b);
  Segment.set_rx c (fun _ -> incr got_c);
  Segment.transmit a
    (mk_frame ~dst:Macaddr.broadcast ~src:(Segment.mac a) ~len:80);
  Engine.run eng;
  Alcotest.(check int) "b" 1 !got_b;
  Alcotest.(check int) "c" 1 !got_c

let test_promiscuous () =
  let eng, _seg, a, b = two_nics () in
  Segment.set_promiscuous b true;
  let got = ref 0 in
  Segment.set_rx b (fun _ -> incr got);
  Segment.transmit a
    (mk_frame ~dst:(Macaddr.of_host_id 9) ~src:(Segment.mac a) ~len:80);
  Engine.run eng;
  Alcotest.(check int) "promisc hears all" 1 !got

let test_serialization_at_wire_rate () =
  (* A 1514-byte frame at 10 Mb/s: (1514+8)*8 bits = 1217.6 us + 9.6 ifg. *)
  let eng, seg, a, b = two_nics () in
  let at = ref 0 in
  Segment.set_rx b (fun _ -> at := Engine.now eng);
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:1514);
  Engine.run eng;
  let expected = Segment.frame_time seg 1514 - 9_600 in
  Alcotest.(check int) "arrival at last bit" expected !at

let test_fifo_back_to_back () =
  (* Two frames queued at once: second arrives one frame-time later. *)
  let eng, seg, a, b = two_nics () in
  let times = ref [] in
  Segment.set_rx b (fun _ -> times := Engine.now eng :: !times);
  let f = mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:1514 in
  Segment.transmit a f;
  Segment.transmit a (Bytes.copy f);
  Engine.run eng;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check int) "spacing is frame time"
      (Segment.frame_time seg 1514) (t2 - t1)
  | _ -> Alcotest.fail "expected two arrivals"

let test_min_frame_padding () =
  let eng, _seg, a, b = two_nics () in
  let size = ref 0 in
  Segment.set_rx b (fun frame -> size := Bytes.length frame);
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:20);
  Engine.run eng;
  Alcotest.(check int) "padded" Frame.min_frame !size

let test_giant_frame_rejected () =
  let _eng, _seg, a, b = two_nics () in
  Alcotest.check_raises "giant"
    (Invalid_argument "Segment.transmit: giant frame") (fun () ->
      Segment.transmit a
        (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:1600))

let test_stats () =
  let eng, seg, a, b = two_nics () in
  Segment.set_rx b (fun _ -> ());
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:100);
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:200);
  Engine.run eng;
  Alcotest.(check int) "frames" 2 (Segment.frames_sent seg);
  Alcotest.(check int) "bytes" 300 (Segment.bytes_sent seg);
  Alcotest.(check bool) "busy" true (Segment.busy_ns seg > 0)

let test_throughput_bound () =
  (* Saturating the wire with max frames cannot exceed ~10 Mb/s. *)
  let eng, seg, a, b = two_nics () in
  let received = ref 0 in
  Segment.set_rx b (fun frame -> received := !received + Bytes.length frame);
  let f = mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:1514 in
  for _ = 1 to 100 do
    Segment.transmit a (Bytes.copy f)
  done;
  Engine.run eng;
  let elapsed_s = Time.to_sec (Engine.now eng) in
  let rate_bps = float_of_int (!received * 8) /. elapsed_s in
  Alcotest.(check bool) "under 10Mb/s" true (rate_bps < 10_000_000.);
  Alcotest.(check bool) "over 9.5Mb/s" true (rate_bps > 9_500_000.);
  ignore seg

(* --- fault injection --------------------------------------------------- *)

let ip_frame ?(claimed_len = None) ~len () =
  (* an IP-ethertype frame; [claimed_len] forges the IP total-length
     field (offset 16) — default claims the whole payload *)
  let b = mk_frame ~dst:(Macaddr.of_host_id 2) ~src:(Macaddr.of_host_id 1) ~len in
  let total = match claimed_len with Some l -> l | None -> len - 14 in
  Bytes.set_uint8 b 16 (total lsr 8);
  Bytes.set_uint8 b 17 (total land 0xff);
  b

let test_fault_null_passthrough () =
  let f = Fault.create ~rng:(Psd_util.Rng.create ~seed:1) Fault.none in
  let frame = ip_frame ~len:100 () in
  let before = Bytes.copy frame in
  (match Fault.apply f frame with
  | [ (0, frm) ] ->
    Alcotest.(check bool) "same frame" true (frm == frame);
    Alcotest.(check bytes) "untouched" before frm
  | _ -> Alcotest.fail "null policy must deliver exactly once, delay 0");
  Alcotest.(check int) "counted" 1 (Fault.stats f).Fault.frames;
  Alcotest.(check int) "no faults" 0 (Fault.injected (Fault.stats f))

let test_fault_drop_all () =
  let f = Fault.create ~rng:(Psd_util.Rng.create ~seed:1) (Fault.drop_only 1.0) in
  for _ = 1 to 10 do
    Alcotest.(check (list (pair int bytes))) "dropped" []
      (Fault.apply f (ip_frame ~len:80 ()))
  done;
  Alcotest.(check int) "all counted" 10 (Fault.stats f).Fault.dropped

let test_fault_duplicate () =
  let f =
    Fault.create ~rng:(Psd_util.Rng.create ~seed:1)
      { Fault.none with Fault.duplicate = 1.0 }
  in
  match Fault.apply f (ip_frame ~len:80 ()) with
  | [ (0, a); (0, b) ] ->
    Alcotest.(check bytes) "copies equal" a b;
    Bytes.set_uint8 a 20 0xff;
    Alcotest.(check bool) "copies independent" false (Bytes.equal a b)
  | l -> Alcotest.failf "expected two immediate copies, got %d" (List.length l)

let test_fault_corrupt_scoped () =
  let f =
    Fault.create ~rng:(Psd_util.Rng.create ~seed:3)
      { Fault.none with Fault.corrupt = 1.0 }
  in
  (* IP frame claiming 20 bytes of a 60-byte payload: the corrupted byte
     must land inside the claimed datagram, never in the pad *)
  for _ = 1 to 50 do
    let frame = ip_frame ~claimed_len:(Some 20) ~len:74 () in
    let before = Bytes.copy frame in
    (match Fault.apply f frame with
    | [ (0, frm) ] ->
      let diffs = ref [] in
      Bytes.iteri
        (fun i c -> if c <> Bytes.get before i then diffs := i :: !diffs)
        frm;
      (match !diffs with
      | [ i ] ->
        Alcotest.(check bool) "inside claimed datagram" true
          (i >= 14 && i < 14 + 20)
      | _ -> Alcotest.fail "exactly one byte must differ")
    | _ -> Alcotest.fail "corrupt must still deliver once")
  done;
  (* a non-IP frame (ARP) is never corrupted *)
  let arp = mk_frame ~dst:(Macaddr.of_host_id 2) ~src:(Macaddr.of_host_id 1) ~len:60 in
  Bytes.set_uint8 arp 12 0x08;
  Bytes.set_uint8 arp 13 0x06;
  let before = Bytes.copy arp in
  (match Fault.apply f arp with
  | [ (0, frm) ] -> Alcotest.(check bytes) "arp untouched" before frm
  | _ -> Alcotest.fail "non-IP frames pass through");
  Alcotest.(check int) "only IP corruptions counted" 50
    (Fault.stats f).Fault.corrupted

let test_fault_same_seed_same_schedule () =
  let run () =
    let f =
      Fault.create ~rng:(Psd_util.Rng.create ~seed:99) (Fault.chaos 0.3)
    in
    let log = ref [] in
    for i = 1 to 200 do
      let frame = ip_frame ~len:(60 + (i mod 40)) () in
      let fate =
        Fault.apply f frame
        |> List.map (fun (d, frm) -> (d, Bytes.to_string frm))
      in
      log := fate :: !log
    done;
    (!log, Fault.injected (Fault.stats f))
  in
  let log1, n1 = run () and log2, n2 = run () in
  Alcotest.(check bool) "identical schedules" true (log1 = log2);
  Alcotest.(check int) "identical counts" n1 n2;
  Alcotest.(check bool) "faults actually fired" true (n1 > 0)

let test_fault_on_segment () =
  (* wire a drop-everything fault into the segment: nothing arrives *)
  let eng, seg, a, b = two_nics () in
  Segment.set_fault seg
    (Some
       (Fault.create ~rng:(Psd_util.Rng.create ~seed:1) (Fault.drop_only 1.0)));
  let got = ref 0 in
  Segment.set_rx b (fun _ -> incr got);
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:100);
  Engine.run eng;
  Alcotest.(check int) "all dropped" 0 !got;
  (* a per-NIC null process overrides the lossy segment-wide one *)
  Segment.set_nic_fault b
    (Some (Fault.create ~rng:(Psd_util.Rng.create ~seed:1) Fault.none));
  Segment.transmit a
    (mk_frame ~dst:(Segment.mac b) ~src:(Segment.mac a) ~len:100);
  Engine.run eng;
  Alcotest.(check int) "nic override wins" 1 !got

let () =
  Alcotest.run "psd_link"
    [
      ( "macaddr",
        [
          Alcotest.test_case "roundtrip" `Quick test_macaddr_roundtrip;
          Alcotest.test_case "broadcast" `Quick test_macaddr_broadcast;
          Alcotest.test_case "pp" `Quick test_macaddr_pp;
        ] );
      ("frame", [ Alcotest.test_case "header" `Quick test_frame_header ]);
      ( "segment",
        [
          Alcotest.test_case "unicast" `Quick test_unicast_delivery;
          Alcotest.test_case "dst filter" `Quick test_wrong_dst_filtered;
          Alcotest.test_case "broadcast" `Quick test_broadcast_delivery;
          Alcotest.test_case "promiscuous" `Quick test_promiscuous;
          Alcotest.test_case "wire rate" `Quick
            test_serialization_at_wire_rate;
          Alcotest.test_case "fifo" `Quick test_fifo_back_to_back;
          Alcotest.test_case "padding" `Quick test_min_frame_padding;
          Alcotest.test_case "giant rejected" `Quick
            test_giant_frame_rejected;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "throughput bound" `Quick test_throughput_bound;
        ] );
      ( "fault",
        [
          Alcotest.test_case "null passthrough" `Quick
            test_fault_null_passthrough;
          Alcotest.test_case "drop all" `Quick test_fault_drop_all;
          Alcotest.test_case "duplicate" `Quick test_fault_duplicate;
          Alcotest.test_case "corrupt scoped" `Quick
            test_fault_corrupt_scoped;
          Alcotest.test_case "same seed, same schedule" `Quick
            test_fault_same_seed_same_schedule;
          Alcotest.test_case "segment wiring" `Quick test_fault_on_segment;
        ] );
    ]
