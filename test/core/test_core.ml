open Psd_core
module Cfg = Psd_cost.Config

let ( => ) name b = Alcotest.(check bool) name true b

let all_configs =
  [
    Cfg.mach25_kernel;
    Cfg.ux_server;
    Cfg.library_ipc;
    Cfg.library_shm;
    Cfg.library_shm_ipf;
    Cfg.library_newapi_shm_ipf;
  ]

type pair = {
  eng : Psd_sim.Engine.t;
  seg : Psd_link.Segment.t;
  sys_a : System.t;
  sys_b : System.t;
}

let make_pair ?(config = Cfg.library_shm_ipf) ?(seed = 3) () =
  let eng = Psd_sim.Engine.create ~seed () in
  let seg = Psd_link.Segment.create eng () in
  let sys_a =
    System.create ~eng ~segment:seg ~config ~addr:"10.0.0.1" ~name:"alpha" ()
  in
  let sys_b =
    System.create ~eng ~segment:seg ~config ~addr:"10.0.0.2" ~name:"beta" ()
  in
  { eng; seg; sys_a; sys_b }

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" name e

(* run an echo server on sys_b accepting [n] connections *)
let spawn_echo_server p ?(port = 7) ?(n = 1) () =
  let app = System.app p.sys_b ~name:"echo-server" in
  Psd_sim.Engine.spawn p.eng ~name:"echo-server" (fun () ->
      let s = Sockets.stream app in
      let (_ : int) = ok "bind" (Sockets.bind s ~port ()) in
      ok "listen" (Sockets.listen s ());
      for _ = 1 to n do
        let c = ok "accept" (Sockets.accept s) in
        Psd_sim.Engine.spawn p.eng ~name:"echo-conn" (fun () ->
            let rec loop () =
              match Sockets.recv c ~max:65536 with
              | Ok "" -> Sockets.close c
              | Ok data ->
                let (_ : int) = ok "echo send" (Sockets.send c data) in
                loop ()
              | Error _ -> Sockets.close c
            in
            loop ())
      done);
  app

let dst_b = Psd_ip.Addr.of_string "10.0.0.2"

(* --- every configuration carries data end to end ---------------------- *)

let test_tcp_echo_all_configs () =
  List.iter
    (fun config ->
      let p = make_pair ~config () in
      let (_ : Sockets.app) = spawn_echo_server p () in
      let done_ = ref false in
      let client = System.app p.sys_a ~name:"client" in
      Psd_sim.Engine.spawn p.eng ~name:"client" (fun () ->
          let s = Sockets.stream client in
          ok "connect" (Sockets.connect s dst_b 7);
          let msg = "hello through " ^ config.Cfg.label in
          let (_ : int) = ok "send" (Sockets.send s msg) in
          let rec read_all acc =
            if String.length acc >= String.length msg then acc
            else
              match Sockets.recv s ~max:4096 with
              | Ok "" -> acc
              | Ok d -> read_all (acc ^ d)
              | Error e -> Alcotest.failf "recv: %s" e
          in
          let echoed = read_all "" in
          Alcotest.(check string) ("echo " ^ config.Cfg.label) msg echoed;
          Sockets.close s;
          done_ := true);
      Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 20);
      if not !done_ then Alcotest.failf "%s: did not finish" config.Cfg.label)
    all_configs

let test_udp_roundtrip_all_configs () =
  List.iter
    (fun config ->
      let p = make_pair ~config () in
      let server = System.app p.sys_b ~name:"udp-server" in
      Psd_sim.Engine.spawn p.eng ~name:"udp-server" (fun () ->
          let s = Sockets.dgram server in
          let (_ : int) = ok "bind" (Sockets.bind s ~port:9 ()) in
          match Sockets.recvfrom s ~max:65536 with
          | Ok (data, Some (ip, pt)) ->
            let (_ : int) =
              ok "reply" (Sockets.send s ~dst:(ip, pt) ("re:" ^ data))
            in
            ()
          | Ok (_, None) -> Alcotest.fail "no source address"
          | Error e -> Alcotest.failf "server recv: %s" e);
      let got = ref "" in
      let client = System.app p.sys_a ~name:"udp-client" in
      Psd_sim.Engine.spawn p.eng ~name:"udp-client" (fun () ->
          let s = Sockets.dgram client in
          let (_ : int) = ok "bind" (Sockets.bind s ()) in
          let (_ : int) = ok "send" (Sockets.send s ~dst:(dst_b, 9) "ping") in
          match Sockets.recv s ~max:4096 with
          | Ok d -> got := d
          | Error e -> Alcotest.failf "client recv: %s" e);
      Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 20);
      Alcotest.(check string) ("udp " ^ config.Cfg.label) "re:ping" !got)
    all_configs

(* --- migration observables -------------------------------------------- *)

let test_library_sessions_migrate () =
  let p = make_pair ~config:Cfg.library_shm () in
  let (_ : Sockets.app) = spawn_echo_server p () in
  let loc = ref Sockets.Loc_none in
  let client = System.app p.sys_a ~name:"client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      loc := Sockets.location s;
      let (_ : int) = ok "send" (Sockets.send s "x") in
      ignore (Sockets.recv s ~max:10);
      Sockets.close s);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  "client session was library-resident" => (!loc = Sockets.Loc_library);
  (match System.server p.sys_a with
  | Some srv ->
    (* connect migrated out; close migrated back *)
    "migrations happened" => (Os_server.migrations srv >= 2)
  | None -> Alcotest.fail "no server");
  match System.server p.sys_b with
  | Some srv ->
    "server-side migrations (accept out, close back)"
    => (Os_server.migrations srv >= 2)
  | None -> Alcotest.fail "no server"

let test_server_sessions_stay () =
  let p = make_pair ~config:Cfg.ux_server () in
  let (_ : Sockets.app) = spawn_echo_server p () in
  let loc = ref Sockets.Loc_none in
  let client = System.app p.sys_a ~name:"client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      loc := Sockets.location s;
      Sockets.close s);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  "server placement keeps sessions" => (!loc = Sockets.Loc_server);
  match System.server p.sys_a with
  | Some srv -> Alcotest.(check int) "no migrations" 0 (Os_server.migrations srv)
  | None -> Alcotest.fail "no server"

let test_data_before_accept_survives_migration () =
  (* Client connects and immediately sends; the server app accepts only
     later. The data accumulated in the listening stack must arrive via
     the migration snapshot. *)
  let p = make_pair ~config:Cfg.library_shm_ipf () in
  let server_app = System.app p.sys_b ~name:"slow-server" in
  let got = ref "" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream server_app in
      let (_ : int) = ok "bind" (Sockets.bind s ~port:7 ()) in
      ok "listen" (Sockets.listen s ());
      (* deliberately late accept *)
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 300);
      let c = ok "accept" (Sockets.accept s) in
      match Sockets.recv c ~max:4096 with
      | Ok d -> got := d
      | Error e -> Alcotest.failf "recv: %s" e);
  let client = System.app p.sys_a ~name:"eager-client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      let (_ : int) = ok "send" (Sockets.send s "early-bird") in
      ());
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  Alcotest.(check string) "pre-accept data" "early-bird" !got

(* --- fork -------------------------------------------------------------- *)

let test_fork_returns_sessions () =
  let p = make_pair ~config:Cfg.library_shm () in
  let (_ : Sockets.app) = spawn_echo_server p () in
  let before_fork = ref Sockets.Loc_none in
  let after_fork = ref Sockets.Loc_none in
  let echoed = ref "" in
  let client = System.app p.sys_a ~name:"parent" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      before_fork := Sockets.location s;
      let (_ : Sockets.app) = Sockets.fork client ~name:"child" in
      after_fork := Sockets.location s;
      (* data operations are now routed through the server *)
      let (_ : int) = ok "send after fork" (Sockets.send s "post-fork") in
      (match Sockets.recv s ~max:4096 with
      | Ok d -> echoed := d
      | Error e -> Alcotest.failf "recv: %s" e);
      Sockets.close s);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  "was in library" => (!before_fork = Sockets.Loc_library);
  "returned to server" => (!after_fork = Sockets.Loc_server);
  Alcotest.(check string) "data still flows" "post-fork" !echoed

(* --- select ------------------------------------------------------------- *)

let test_select_timeout () =
  let p = make_pair ~config:Cfg.library_shm () in
  let client = System.app p.sys_a ~name:"selector" in
  let result = ref [ 1 ] in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram client in
      let (_ : int) = ok "bind" (Sockets.bind s ()) in
      let ready = Sockets.select ~timeout_ns:(Psd_sim.Time.ms 50) [ s ] in
      result := List.map (fun _ -> 0) ready);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  Alcotest.(check (list int)) "timeout -> empty" [] !result

let test_select_wakes_on_local_data () =
  (* Library placement: data arrives in the application's own stack; the
     proxy_status notification must wake the server-side select. *)
  let p = make_pair ~config:Cfg.library_shm () in
  let server_app = System.app p.sys_b ~name:"udp-peer" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram server_app in
      let (_ : int) = ok "bind" (Sockets.bind s ~port:9 ()) in
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 100);
      let (_ : int) =
        ok "send"
          (Sockets.send s ~dst:(Psd_ip.Addr.of_string "10.0.0.1", 5000) "wake")
      in
      ());
  let woke = ref false in
  let client = System.app p.sys_a ~name:"selector" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram client in
      let (_ : int) = ok "bind" (Sockets.bind s ~port:5000 ()) in
      let ready = Sockets.select [ s ] in
      woke := ready <> [];
      match Sockets.recv s ~max:100 with
      | Ok "wake" -> ()
      | _ -> Alcotest.fail "wrong datagram");
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  "select woke on datagram" => !woke

(* --- exceptional conditions --------------------------------------------- *)

let test_task_exit_aborts_connections () =
  let p = make_pair ~config:Cfg.library_shm () in
  let server_sessions_after = ref (-1) in
  let (_ : Sockets.app) = spawn_echo_server p () in
  let client = System.app p.sys_a ~name:"dying-client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 50);
      (* process dies without closing *)
      Sockets.exit client;
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.sec 1);
      match System.server p.sys_a with
      | Some srv -> server_sessions_after := Os_server.sessions_active srv
      | None -> ());
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  Alcotest.(check int) "naming state cleaned" 0 !server_sessions_after

let test_socket_creation_error_text_survives () =
  (* Socket creation from an exited application: the operating-system
     server rejects the request, and the Rs_err cause must reach the
     caller verbatim through [try_stream]/[try_dgram] — or as the
     payload of the [Failure] the convenience constructors raise. *)
  let p = make_pair ~config:Cfg.library_shm () in
  let checked = ref false in
  let app = System.app p.sys_a ~name:"ghost" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      Sockets.exit app;
      (match Sockets.try_stream app with
      | Error e ->
        Alcotest.(check string) "stream error text" "unknown application" e
      | Ok _ -> Alcotest.fail "stream socket granted to exited app");
      (match Sockets.try_dgram app with
      | Error e ->
        Alcotest.(check string) "dgram error text" "unknown application" e
      | Ok _ -> Alcotest.fail "dgram socket granted to exited app");
      (match Sockets.stream app with
      | exception Failure msg ->
        Alcotest.(check string) "convenience keeps cause"
          "socket: unknown application" msg
      | _ -> Alcotest.fail "stream did not raise for exited app");
      checked := true);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  "error-path checks ran" => !checked

let test_connect_refused () =
  let p = make_pair ~config:Cfg.library_shm () in
  let result = ref (Ok ()) in
  let client = System.app p.sys_a ~name:"client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      result := Sockets.connect s dst_b 4444);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  (match !result with
  | Error e -> Alcotest.(check string) "refused" "connection refused" e
  | Ok () -> Alcotest.fail "connect succeeded to closed port")

let test_port_conflict_across_apps () =
  (* Two applications on one host: the server's port namespace must make
     the second bind fail even though the stacks are separate. *)
  let p = make_pair ~config:Cfg.library_shm () in
  let app1 = System.app p.sys_b ~name:"app1" in
  let app2 = System.app p.sys_b ~name:"app2" in
  let second = ref (Ok 0) in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s1 = Sockets.dgram app1 in
      let (_ : int) = ok "first bind" (Sockets.bind s1 ~port:111 ()) in
      let s2 = Sockets.dgram app2 in
      second := Sockets.bind s2 ~port:111 ());
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  (match !second with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting bind accepted")

let test_backpressure_large_transfer () =
  (* 200 KB through the full system exercises window flow control,
     send-buffer blocking, and ordered delivery. *)
  let p = make_pair ~config:Cfg.library_shm_ipf () in
  let payload = String.init 200_000 (fun i -> Char.chr (i * 11 mod 256)) in
  let received = Buffer.create 1024 in
  let server_app = System.app p.sys_b ~name:"sink-server" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream server_app in
      let (_ : int) = ok "bind" (Sockets.bind s ~port:7 ()) in
      ok "listen" (Sockets.listen s ());
      let c = ok "accept" (Sockets.accept s) in
      let rec loop () =
        match Sockets.recv c ~max:32768 with
        | Ok "" -> ()
        | Ok d ->
          Buffer.add_string received d;
          loop ()
        | Error e -> Alcotest.failf "recv: %s" e
      in
      loop ());
  let client = System.app p.sys_a ~name:"pump" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      let (_ : int) = ok "send" (Sockets.send s payload) in
      Sockets.close s);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 60);
  Alcotest.(check int) "all bytes" (String.length payload)
    (Buffer.length received);
  "content intact" => String.equal payload (Buffer.contents received)

let test_arp_metastate_cached () =
  let p = make_pair ~config:Cfg.library_shm () in
  let server_app = System.app p.sys_b ~name:"udp-sink" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram server_app in
      let (_ : int) = ok "bind" (Sockets.bind s ~port:9 ()) in
      for _ = 1 to 3 do
        ignore (Sockets.recv s ~max:100)
      done);
  let client = System.app p.sys_a ~name:"udp-src" in
  let frames_after_first = ref 0 in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram client in
      let (_ : int) = ok "bind" (Sockets.bind s ()) in
      let (_ : int) = ok "send1" (Sockets.send s ~dst:(dst_b, 9) "one") in
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 100);
      frames_after_first := Psd_link.Segment.frames_sent p.seg;
      let (_ : int) = ok "send2" (Sockets.send s ~dst:(dst_b, 9) "two") in
      let (_ : int) = ok "send3" (Sockets.send s ~dst:(dst_b, 9) "three") in
      ());
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  let total = Psd_link.Segment.frames_sent p.seg in
  (* first send cost ARP query+reply+datagram = 3 frames; the next two
     sends must be exactly one frame each (cache hits, no server RPC
     visible on the wire) *)
  Alcotest.(check int) "first send: arp+data" 3 !frames_after_first;
  Alcotest.(check int) "cached sends: data only" 5 total

let test_udp_unreachable_soft_error_kernel () =
  (* connected UDP to a dead port: the kernel's ICMP turns the remote
     port-unreachable into a soft error on the next send *)
  let p = make_pair ~config:Cfg.mach25_kernel () in
  let result = ref (Ok 0) in
  let client = System.app p.sys_a ~name:"udp-client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram client in
      ignore (ok "bind" (Sockets.bind s ()));
      ok "connect" (Sockets.connect s dst_b 4242);
      ignore (ok "first send leaves" (Sockets.send s "into the void"));
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 100);
      result := Sockets.send s "second try");
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  (match !result with
  | Error e -> Alcotest.(check string) "refused" "connection refused" e
  | Ok _ -> Alcotest.fail "soft error not delivered")

let test_udp_unreachable_soft_error_library () =
  (* same, in the decomposed architecture: the ICMP arrives at the OS
     server (exceptional packet) and is forwarded into the application's
     migrated session *)
  let p = make_pair ~config:Cfg.library_shm_ipf () in
  let result = ref (Ok 0) in
  let client = System.app p.sys_a ~name:"udp-client" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram client in
      ignore (ok "bind" (Sockets.bind s ()));
      ok "connect" (Sockets.connect s dst_b 4242);
      ignore (ok "first send leaves" (Sockets.send s "into the void"));
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 100);
      result := Sockets.send s "second try");
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  (match !result with
  | Error e -> Alcotest.(check string) "refused" "connection refused" e
  | Ok _ -> Alcotest.fail "soft error not forwarded")

let test_ping_via_kernel_stacks () =
  let p = make_pair ~config:Cfg.mach25_kernel () in
  let replied = ref false in
  (match System.kernel_stack p.sys_a with
  | Some stack -> (
    match Netstack.icmp stack with
    | Some icmp ->
      Psd_ip.Icmp.on_reply icmp (fun ~src:_ ~id:_ ~seq:_ ~payload:_ ->
          replied := true);
      Psd_sim.Engine.spawn p.eng (fun () ->
          Psd_ip.Icmp.ping icmp ~dst:dst_b ())
    | None -> Alcotest.fail "kernel stack has no icmp")
  | None -> Alcotest.fail "no kernel stack");
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  "echo reply received" => !replied

let test_two_apps_concurrent_on_one_host () =
  (* Two applications on one host, each with its own protocol library and
     packet filters, stream concurrently to the same remote server: the
     kernel demultiplexer must keep the flows apart. *)
  let p = make_pair ~config:Cfg.library_shm_ipf () in
  let (_ : Sockets.app) = spawn_echo_server p ~n:2 () in
  let done_count = ref 0 in
  for i = 1 to 2 do
    let app = System.app p.sys_a ~name:(Printf.sprintf "worker%d" i) in
    Psd_sim.Engine.spawn p.eng (fun () ->
        let s = Sockets.stream app in
        ok "connect" (Sockets.connect s dst_b 7);
        let payload =
          String.init 50_000 (fun j -> Char.chr ((j * i * 7) mod 256))
        in
        let (_ : int) = ok "send" (Sockets.send s payload) in
        let rec read_all acc =
          if acc >= String.length payload then acc
          else
            match Sockets.recv s ~max:65536 with
            | Ok "" -> acc
            | Ok d -> read_all (acc + String.length d)
            | Error e -> Alcotest.failf "recv: %s" e
        in
        let n = read_all 0 in
        Alcotest.(check int)
          (Printf.sprintf "worker%d echoed all" i)
          (String.length payload) n;
        Sockets.close s;
        incr done_count)
  done;
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 120);
  Alcotest.(check int) "both finished" 2 !done_count

let test_migration_storm_no_leaks () =
  (* Many short-lived connections: every one migrates out on accept/connect
     and back on close. Afterwards the servers' naming state must be
     exactly the listener session — nothing leaked. *)
  let p = make_pair ~config:Cfg.library_shm () in
  let conns = 12 in
  let (_ : Sockets.app) = spawn_echo_server p ~n:conns () in
  let finished = ref 0 in
  let client = System.app p.sys_a ~name:"storm" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      for i = 1 to conns do
        let s = Sockets.stream client in
        ok "connect" (Sockets.connect s dst_b 7);
        let msg = Printf.sprintf "conn-%d" i in
        let (_ : int) = ok "send" (Sockets.send s msg) in
        (match Sockets.recv s ~max:100 with
        | Ok d when d = msg -> incr finished
        | Ok d -> Alcotest.failf "wrong echo %S" d
        | Error e -> Alcotest.failf "recv: %s" e);
        Sockets.close s
      done);
  (* run past 2MSL so TIME_WAIT states are reaped *)
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 200);
  Alcotest.(check int) "all conversations completed" conns !finished;
  (match System.server p.sys_a with
  | Some srv ->
    Alcotest.(check int) "client host: no leaked sessions" 0
      (Os_server.sessions_active srv);
    "many migrations" => (Os_server.migrations srv >= 2 * conns)
  | None -> Alcotest.fail "no server");
  match System.server p.sys_b with
  | Some srv ->
    Alcotest.(check int) "server host: only the listener remains" 1
      (Os_server.sessions_active srv)
  | None -> Alcotest.fail "no server"

(* --- BSD conformity extras ---------------------------------------------- *)

let test_half_close () =
  (* shutdown(SHUT_WR): our FIN goes out, but we can still receive the
     peer's response afterwards — the classic request/response close. *)
  let p = make_pair ~config:Cfg.library_shm () in
  let server_app = System.app p.sys_b ~name:"responder" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let l = Sockets.stream server_app in
      ignore (ok "bind" (Sockets.bind l ~port:7 ()));
      ok "listen" (Sockets.listen l ());
      let c = ok "accept" (Sockets.accept l) in
      (* read until EOF, then answer *)
      let rec drain acc =
        match Sockets.recv c ~max:4096 with
        | Ok "" -> acc
        | Ok d -> drain (acc ^ d)
        | Error e -> Alcotest.failf "server recv: %s" e
      in
      let request = drain "" in
      ignore (ok "respond" (Sockets.send c ("answer:" ^ request)));
      Sockets.close c);
  let got = ref "" in
  let client = System.app p.sys_a ~name:"asker" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      ignore (ok "send" (Sockets.send s "question"));
      ok "shutdown" (Sockets.shutdown s);
      (match Sockets.recv s ~max:4096 with
      | Ok d -> got := d
      | Error e -> Alcotest.failf "client recv after shutdown: %s" e);
      Sockets.close s);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  Alcotest.(check string) "response after half-close" "answer:question" !got

let test_nonblocking_recv_and_accept () =
  let p = make_pair ~config:Cfg.library_shm () in
  let results = ref [] in
  let app = System.app p.sys_a ~name:"nb" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.dgram app in
      ignore (ok "bind" (Sockets.bind s ()));
      Sockets.set_nonblocking s true;
      (match Sockets.recv s ~max:100 with
      | Error e -> results := ("recv", e) :: !results
      | Ok _ -> Alcotest.fail "recv should not succeed");
      let l = Sockets.stream app in
      ignore (ok "bind l" (Sockets.bind l ~port:99 ()));
      ok "listen" (Sockets.listen l ());
      Sockets.set_nonblocking l true;
      match Sockets.accept l with
      | Error e -> results := ("accept", e) :: !results
      | Ok _ -> Alcotest.fail "accept should not succeed");
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  Alcotest.(check int) "two ewouldblocks" 2 (List.length !results);
  List.iter
    (fun (_, e) ->
      Alcotest.(check string) "ewouldblock" "operation would block" e)
    !results

let test_nonblocking_send_partial () =
  (* a non-blocking sender against a stalled receiver eventually gets a
     partial write, then EWOULDBLOCK — never a hang *)
  let p = make_pair ~config:Cfg.library_shm () in
  let server_app = System.app p.sys_b ~name:"stall" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let l = Sockets.stream server_app in
      ignore (ok "bind" (Sockets.bind l ~port:7 ()));
      ok "listen" (Sockets.listen l ());
      let _c = ok "accept" (Sockets.accept l) in
      (* never reads *)
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.sec 30));
  let saw_partial = ref false and saw_block = ref false in
  let client = System.app p.sys_a ~name:"nb-sender" in
  Psd_sim.Engine.spawn p.eng (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      Sockets.set_nonblocking s true;
      let big = String.make 200_000 'z' in
      let rec loop budget =
        if budget > 0 && not !saw_block then begin
          (match Sockets.send s big with
          | Ok n when n < String.length big -> saw_partial := true
          | Ok _ -> ()
          | Error "operation would block" -> saw_block := true
          | Error e -> Alcotest.failf "send: %s" e);
          Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 10);
          loop (budget - 1)
        end
      in
      loop 50);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 20);
  "partial write happened" => !saw_partial;
  "then would-block" => !saw_block

(* --- port allocator ------------------------------------------------------ *)

let test_portalloc_invariants () =
  let pa = Portalloc.create () in
  (match Portalloc.reserve pa 80 with Ok () -> () | Error _ -> Alcotest.fail "reserve");
  (match Portalloc.reserve pa 80 with
  | Error `In_use -> ()
  | Ok () -> Alcotest.fail "double reserve");
  let e1 = Portalloc.alloc_ephemeral pa in
  let e2 = Portalloc.alloc_ephemeral pa in
  "ephemeral distinct" => (e1 <> e2);
  "ephemeral range" => (e1 >= 1024 && e2 >= 1024);
  Alcotest.(check int) "count" 3 (Portalloc.count pa);
  Portalloc.release pa 80;
  (match Portalloc.reserve pa 80 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "reserve after release");
  (* an ephemeral allocation never collides with anything reserved *)
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen 80 ();
  Hashtbl.replace seen e1 ();
  Hashtbl.replace seen e2 ();
  for _ = 1 to 200 do
    let p = Portalloc.alloc_ephemeral pa in
    if Hashtbl.mem seen p then Alcotest.failf "port %d allocated twice" p;
    Hashtbl.replace seen p ()
  done

(* --- lazy receive buffers and hangup hooks ---------------------------- *)

(* Lazy receive-buffer allocation must be invisible: a socket that never
   received a byte and one that received and fully drained behave
   identically — the buffer deflates back to nothing once it holds no
   observable state (no bytes, no loan, no EOF/error) and re-inflates
   on the next byte. Exercised through the NEWAPI loan path, whose
   space/loan accounting is the state a deflate/re-inflate cycle would
   most easily corrupt. *)
let test_lazy_rcv_fresh_vs_drained () =
  let p = make_pair ~config:Cfg.library_newapi_shm_ipf () in
  let app_b = System.app p.sys_b ~name:"lazy-srv" in
  let srv = ref None in
  Psd_sim.Engine.spawn p.eng ~name:"lazy-srv" (fun () ->
      let l = Sockets.stream app_b in
      let (_ : int) = ok "bind" (Sockets.bind l ~port:7 ()) in
      ok "listen" (Sockets.listen l ());
      srv := Some (ok "accept" (Sockets.accept l)));
  let done_ = ref false in
  let client = System.app p.sys_a ~name:"lazy-cli" in
  Psd_sim.Engine.spawn p.eng ~name:"lazy-cli" (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 10);
      "fresh socket not readable" => not (Sockets.readable s);
      let round tag msg =
        (match !srv with
        | Some c -> ignore (ok "srv send" (Sockets.send c msg) : int)
        | None -> Alcotest.fail "no server socket");
        let loan = ok (tag ^ " recv_loan") (Sockets.recv_loan s ~max:4096) in
        Alcotest.(check int)
          (tag ^ " loan length")
          (String.length msg)
          (Sockets.loan_length loan);
        Alcotest.(check string) (tag ^ " loan bytes") msg
          (Psd_mbuf.Mbuf.to_string (Sockets.loan_view loan));
        Sockets.return_loan s loan;
        (try
           Sockets.return_loan s loan;
           Alcotest.fail (tag ^ ": double return accepted")
         with Invalid_argument _ -> ());
        (tag ^ ": drained socket not readable") => not (Sockets.readable s)
      in
      (* first round inflates the buffer; returning the loan drains it
         back to nothing *)
      round "fresh" "written-once";
      (* second round must see exactly the fresh behavior again *)
      round "drained" "written-twice-longer";
      (match !srv with Some c -> Sockets.close c | None -> ());
      (* EOF lands on a drained (deflated) buffer and re-inflates it *)
      let eof_loan = ok "eof recv_loan" (Sockets.recv_loan s ~max:4096) in
      Alcotest.(check int) "eof loan is empty" 0 (Sockets.loan_length eof_loan);
      Sockets.return_loan s eof_loan;
      Sockets.close s;
      done_ := true);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  "finished" => !done_

(* Same drill through the classic copying API: recv on a never-written
   socket and on a written-then-drained socket must be
   indistinguishable, EOF included. *)
let test_lazy_rcv_classic_recv () =
  let p = make_pair ~config:Cfg.mach25_kernel () in
  let app_b = System.app p.sys_b ~name:"lazy2-srv" in
  let srv = ref None in
  Psd_sim.Engine.spawn p.eng ~name:"lazy2-srv" (fun () ->
      let l = Sockets.stream app_b in
      let (_ : int) = ok "bind" (Sockets.bind l ~port:7 ()) in
      ok "listen" (Sockets.listen l ());
      srv := Some (ok "accept" (Sockets.accept l)));
  let done_ = ref false in
  let client = System.app p.sys_a ~name:"lazy2-cli" in
  Psd_sim.Engine.spawn p.eng ~name:"lazy2-cli" (fun () ->
      let s = Sockets.stream client in
      ok "connect" (Sockets.connect s dst_b 7);
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 10);
      "fresh not readable" => not (Sockets.readable s);
      List.iter
        (fun msg ->
          (match !srv with
          | Some c -> ignore (ok "srv send" (Sockets.send c msg) : int)
          | None -> Alcotest.fail "no server socket");
          let rec read_all acc =
            if String.length acc >= String.length msg then acc
            else
              match Sockets.recv s ~max:4096 with
              | Ok "" -> acc
              | Ok d -> read_all (acc ^ d)
              | Error e -> Alcotest.failf "recv: %s" e
          in
          Alcotest.(check string) "echo" msg (read_all "");
          "drained not readable" => not (Sockets.readable s))
        [ "alpha"; "beta-longer"; "gamma" ];
      (match !srv with Some c -> Sockets.close c | None -> ());
      (match Sockets.recv s ~max:4096 with
      | Ok "" -> ()
      | Ok d -> Alcotest.failf "expected EOF, got %S" d
      | Error e -> Alcotest.failf "expected EOF, got error %s" e);
      Sockets.close s;
      done_ := true);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 10);
  "finished" => !done_

(* [Sockets.on_hangup]: the hook fires once when the peer's FIN
   arrives, and immediately when registered on a connection that
   already hung up. *)
let test_on_hangup_hook () =
  let p = make_pair ~config:Cfg.mach25_kernel () in
  let app_b = System.app p.sys_b ~name:"hup-srv" in
  let fired = ref 0 in
  Psd_sim.Engine.spawn p.eng ~name:"hup-srv" (fun () ->
      let l = Sockets.stream app_b in
      let (_ : int) = ok "bind" (Sockets.bind l ~port:7 ()) in
      ok "listen" (Sockets.listen l ());
      (* connection 1: hook registered while the peer is still open *)
      let c1 = ok "accept" (Sockets.accept l) in
      Sockets.on_hangup c1 (fun () ->
          incr fired;
          Sockets.close c1);
      (* connection 2: hook registered long after the FIN arrived *)
      let c2 = ok "accept" (Sockets.accept l) in
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 200);
      Sockets.on_hangup c2 (fun () ->
          incr fired;
          Sockets.close c2));
  let client = System.app p.sys_a ~name:"hup-cli" in
  Psd_sim.Engine.spawn p.eng ~name:"hup-cli" (fun () ->
      let s1 = Sockets.stream client in
      ok "connect1" (Sockets.connect s1 dst_b 7);
      let s2 = Sockets.stream client in
      ok "connect2" (Sockets.connect s2 dst_b 7);
      Sockets.close s2;
      Psd_sim.Engine.sleep p.eng (Psd_sim.Time.ms 500);
      Sockets.close s1);
  Psd_sim.Engine.run_for p.eng (Psd_sim.Time.sec 5);
  Alcotest.(check int) "both hooks fired exactly once" 2 !fired

let () =
  Alcotest.run "psd_core"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "tcp echo, all configs" `Quick
            test_tcp_echo_all_configs;
          Alcotest.test_case "udp roundtrip, all configs" `Quick
            test_udp_roundtrip_all_configs;
          Alcotest.test_case "200KB transfer" `Quick
            test_backpressure_large_transfer;
          Alcotest.test_case "two apps, one host" `Quick
            test_two_apps_concurrent_on_one_host;
        ] );
      ( "migration",
        [
          Alcotest.test_case "library sessions migrate" `Quick
            test_library_sessions_migrate;
          Alcotest.test_case "server sessions stay" `Quick
            test_server_sessions_stay;
          Alcotest.test_case "pre-accept data" `Quick
            test_data_before_accept_survives_migration;
          Alcotest.test_case "fork returns sessions" `Quick
            test_fork_returns_sessions;
          Alcotest.test_case "migration storm, no leaks" `Quick
            test_migration_storm_no_leaks;
        ] );
      ( "select",
        [
          Alcotest.test_case "timeout" `Quick test_select_timeout;
          Alcotest.test_case "wakes on local data" `Quick
            test_select_wakes_on_local_data;
        ] );
      ( "exceptional",
        [
          Alcotest.test_case "task exit cleanup" `Quick
            test_task_exit_aborts_connections;
          Alcotest.test_case "socket error text survives" `Quick
            test_socket_creation_error_text_survives;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
          Alcotest.test_case "port conflict" `Quick
            test_port_conflict_across_apps;
          Alcotest.test_case "arp metastate" `Quick test_arp_metastate_cached;
          Alcotest.test_case "icmp soft error (kernel)" `Quick
            test_udp_unreachable_soft_error_kernel;
          Alcotest.test_case "icmp soft error (library)" `Quick
            test_udp_unreachable_soft_error_library;
          Alcotest.test_case "ping" `Quick test_ping_via_kernel_stacks;
        ] );
      ( "portalloc",
        [ Alcotest.test_case "invariants" `Quick test_portalloc_invariants ]
      );
      ( "lazy-state",
        [
          Alcotest.test_case "newapi loans, fresh vs drained" `Quick
            test_lazy_rcv_fresh_vs_drained;
          Alcotest.test_case "classic recv, fresh vs drained" `Quick
            test_lazy_rcv_classic_recv;
          Alcotest.test_case "on_hangup hook" `Quick test_on_hangup_hook;
        ] );
      ( "bsd-conformity",
        [
          Alcotest.test_case "half close" `Quick test_half_close;
          Alcotest.test_case "nonblocking recv/accept" `Quick
            test_nonblocking_recv_and_accept;
          Alcotest.test_case "nonblocking partial send" `Quick
            test_nonblocking_send_partial;
        ] );
    ]
