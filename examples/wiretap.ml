(* Eavesdropping on the segment — and defeating the eavesdropper.

   Paper Section 3.4 observes that network security is fragile against
   physically vulnerable connections and recommends session-level
   encryption with keys confined to the application's address space.
   This example attaches a promiscuous wire tap, sends a secret twice —
   once in the clear, once through the Secure channel — and shows what
   the tap could read each time, along with a tcpdump-style trace.

   Run with: dune exec examples/wiretap.exe *)

open Psd_core

let secret = "LAUNCH-CODE-00000000"

let () =
  let eng = Psd_sim.Engine.create () in
  let segment = Psd_link.Segment.create eng () in
  let config = Psd_cost.Config.library_shm_ipf in
  let host_a =
    System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"alice" ()
  in
  let host_b =
    System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"bob" ()
  in
  let tap = Snoop.attach eng segment in

  (* bob: one plaintext service on 80, one encrypted service on 443 *)
  let bob = System.app host_b ~name:"bob" in
  Psd_sim.Engine.spawn eng ~name:"bob" (fun () ->
      let l80 = Sockets.stream bob in
      ignore (Result.get_ok (Sockets.bind l80 ~port:80 ()));
      Result.get_ok (Sockets.listen l80 ());
      let c = Result.get_ok (Sockets.accept l80) in
      (match Sockets.recv c ~max:256 with
      | Ok msg -> Format.printf "[bob]   plaintext service got: %S@." msg
      | Error e -> Format.printf "[bob]   error: %s@." e);
      Sockets.close c);
  Psd_sim.Engine.spawn eng ~name:"bob-secure" (fun () ->
      let l443 = Sockets.stream bob in
      ignore (Result.get_ok (Sockets.bind l443 ~port:443 ()));
      Result.get_ok (Sockets.listen l443 ());
      let c = Result.get_ok (Sockets.accept l443) in
      let ch = Result.get_ok (Secure.server c ~psk:"our-shared-key") in
      (match Secure.recv ch with
      | Ok msg -> Format.printf "[bob]   secure service decrypted: %S@." msg
      | Error e -> Format.printf "[bob]   secure error: %s@." e);
      Secure.close ch);

  (* alice sends the secret both ways; the tap is inspected (and
     cleared) between the two exchanges *)
  let plaintext_leaked = ref false and ciphertext_leaked = ref true in
  let alice = System.app host_a ~name:"alice" in
  Psd_sim.Engine.spawn eng ~name:"alice" (fun () ->
      let s = Sockets.stream alice in
      Result.get_ok (Sockets.connect s (System.addr host_b) 80);
      ignore (Result.get_ok (Sockets.send s secret));
      Sockets.close s;
      Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 50);
      plaintext_leaked := Snoop.payload_seen tap secret;
      Format.printf "@.--- wiretap during the plaintext exchange ---@.";
      List.iteri
        (fun i r ->
          if i < 8 then
            Format.printf "%10.3fms  %s@."
              (float_of_int r.Snoop.at_ns /. 1e6)
              r.Snoop.line)
        (Snoop.records tap);
      Snoop.clear tap;
      let s = Sockets.stream alice in
      Result.get_ok (Sockets.connect s (System.addr host_b) 443);
      let ch = Result.get_ok (Secure.client s ~psk:"our-shared-key") in
      ignore (Result.get_ok (Secure.send ch secret));
      Secure.close ch;
      Psd_sim.Engine.sleep eng (Psd_sim.Time.ms 50);
      ciphertext_leaked := Snoop.payload_seen tap secret);

  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 10);

  Format.printf "@.could the eavesdropper read the secret?@.";
  Format.printf "  port 80  (plaintext):                 %b@."
    !plaintext_leaked;
  Format.printf "  port 443 (session-level encryption):  %b@."
    !ciphertext_leaked;
  Format.printf
    "@.the encryption keys never left the applications' address spaces;@.the \
     protocol libraries and the wire carried only ciphertext.@."
