(* An FTP-style bulk-transfer workload: a client fetches "files" from a
   file server and we compare the same application code running under
   three protocol placements — the paper's headline comparison, as an
   application rather than a microbenchmark.

   Run with: dune exec examples/file_server.exe *)

open Psd_core
module Cfg = Psd_cost.Config

(* The protocol is trivial: the client sends "GET <size>\n"; the server
   responds with that many bytes and closes the data direction. *)

let run_one config =
  let eng = Psd_sim.Engine.create ~seed:21 () in
  let segment = Psd_link.Segment.create eng () in
  let host_srv =
    System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"ftpd-host" ()
  in
  let host_cli =
    System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"cli-host" ()
  in
  let app = System.app host_srv ~name:"ftpd" in
  Psd_sim.Engine.spawn eng ~name:"ftpd" (fun () ->
      let listener = Sockets.stream app in
      ignore (Result.get_ok (Sockets.bind listener ~port:21 ()));
      Result.get_ok (Sockets.listen listener ());
      let rec serve () =
        match Sockets.accept listener with
        | Error _ -> ()
        | Ok c ->
          (match Sockets.recv c ~max:256 with
          | Ok req when String.length req > 4 ->
            let size = int_of_string (String.trim (String.sub req 4 (String.length req - 4))) in
            let block = String.make 8192 'f' in
            let rec push sent =
              if sent < size then begin
                let n = min (String.length block) (size - sent) in
                match Sockets.send c (String.sub block 0 n) with
                | Ok _ -> push (sent + n)
                | Error _ -> ()
              end
            in
            push 0
          | _ -> ());
          Sockets.close c;
          serve ()
      in
      serve ());
  let fetched = ref 0 in
  let elapsed = ref 0 in
  let app = System.app host_cli ~name:"ftp" in
  Psd_sim.Engine.spawn eng ~name:"ftp" (fun () ->
      let t0 = Psd_sim.Engine.now eng in
      (* three files of increasing size, like a small mirror run *)
      List.iter
        (fun size ->
          let s = Sockets.stream app in
          Result.get_ok (Sockets.connect s (System.addr host_srv) 21);
          ignore (Result.get_ok (Sockets.send s (Printf.sprintf "GET %d\n" size)));
          let rec drain got =
            if got < size then
              match Sockets.recv s ~max:65536 with
              | Ok "" -> got
              | Ok d -> drain (got + String.length d)
              | Error _ -> got
            else got
          in
          fetched := !fetched + drain 0;
          Sockets.close s)
        [ 256 * 1024; 1024 * 1024; 2 * 1024 * 1024 ];
      elapsed := Psd_sim.Engine.now eng - t0);
  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 300);
  ( float_of_int !fetched /. 1024. /. (float_of_int !elapsed /. 1e9),
    !fetched )

let () =
  Format.printf "fetching 3 files (0.25 + 1 + 2 MB) over each placement:@.";
  List.iter
    (fun config ->
      let kbps, bytes = run_one config in
      Format.printf "  %-36s %6.0f KB/s (%d bytes)@."
        config.Cfg.label kbps bytes)
    [ Cfg.mach25_kernel; Cfg.ux_server; Cfg.library_shm_ipf ];
  Format.printf
    "@.the decomposed library placement moves bulk data at in-kernel \
     speed;@.the server placement pays four copies and two scheduler \
     handoffs per call.@."
