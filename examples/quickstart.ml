(* Quickstart: two simulated DECstations on one Ethernet, the paper's
   decomposed protocol architecture (Library-SHM-IPF), one TCP exchange.

   Run with: dune exec examples/quickstart.exe *)

open Psd_core

let () =
  (* A simulation world and a 10 Mb/s Ethernet segment. *)
  let eng = Psd_sim.Engine.create () in
  let segment = Psd_link.Segment.create eng () in

  (* Two hosts in the paper's architecture: protocol library in each
     application, operating-system server for naming/setup/teardown. *)
  let config = Psd_cost.Config.library_shm_ipf in
  let alpha =
    System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"alpha" ()
  in
  let beta =
    System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"beta" ()
  in

  (* A server process on beta. *)
  let server_app = System.app beta ~name:"greeter" in
  Psd_sim.Engine.spawn eng (fun () ->
      let listener = Sockets.stream server_app in
      ignore (Result.get_ok (Sockets.bind listener ~port:7777 ()));
      Result.get_ok (Sockets.listen listener ());
      let conn = Result.get_ok (Sockets.accept listener) in
      Format.printf "[beta] accepted; session is now %s@."
        (match Sockets.location conn with
        | Sockets.Loc_library -> "in the application's protocol library"
        | Sockets.Loc_server -> "in the OS server"
        | _ -> "elsewhere");
      let name = Result.get_ok (Sockets.recv conn ~max:1024) in
      ignore (Result.get_ok (Sockets.send conn ("hello, " ^ name ^ "!")));
      Sockets.close conn);

  (* A client process on alpha. *)
  let client_app = System.app alpha ~name:"client" in
  Psd_sim.Engine.spawn eng (fun () ->
      let s = Sockets.stream client_app in
      Result.get_ok (Sockets.connect s (System.addr beta) 7777);
      Format.printf "[alpha] connected in %.2f simulated ms@."
        (Psd_sim.Time.to_ms (Psd_sim.Engine.now eng));
      ignore (Result.get_ok (Sockets.send s "world"));
      let reply = Result.get_ok (Sockets.recv s ~max:1024) in
      Format.printf "[alpha] got: %S@." reply;
      Sockets.close s);

  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 10);

  (* What the decomposition did under the hood. *)
  (match System.server beta with
  | Some srv ->
    Format.printf
      "[beta]  OS server performed %d session migrations (accept out, \
       close back)@."
      (Os_server.migrations srv)
  | None -> ());
  Format.printf "simulation finished at t=%.2f ms, %d frames on the wire@."
    (Psd_sim.Time.to_ms (Psd_sim.Engine.now eng))
    (Psd_link.Segment.frames_sent segment)
