(* A telnet-style interactive workload — the kind of application the
   paper's latency numbers matter for.

   One single-threaded "terminal server" multiplexes three interactive
   clients with select(). Because the sessions live in the server
   application's protocol library, readiness is propagated to the
   operating-system server through the cooperative proxy_status protocol
   (paper Section 3.2) — this example exercises exactly that machinery.

   Run with: dune exec examples/remote_terminal.exe *)

open Psd_core

let config = Psd_cost.Config.library_shm

let () =
  let eng = Psd_sim.Engine.create () in
  let segment = Psd_link.Segment.create eng () in
  let host_srv =
    System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"termsrv" ()
  in
  let host_cli =
    System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"clients" ()
  in

  let n_clients = 3 in
  let keystrokes_per_client = 40 in
  let echo_count = ref 0 in

  (* --- the terminal server: accept three sessions, then select() --- *)
  let app = System.app host_srv ~name:"termd" in
  Psd_sim.Engine.spawn eng ~name:"termd" (fun () ->
      let listener = Sockets.stream app in
      ignore (Result.get_ok (Sockets.bind listener ~port:23 ()));
      Result.get_ok (Sockets.listen listener ~backlog:8 ());
      let conns =
        List.init n_clients (fun _ -> Result.get_ok (Sockets.accept listener))
      in
      List.iter (fun c -> Sockets.set_nodelay c true) conns;
      let open_conns = ref conns in
      while !open_conns <> [] do
        let ready = Sockets.select !open_conns in
        List.iter
          (fun c ->
            match Sockets.recv c ~max:256 with
            | Ok "" ->
              Sockets.close c;
              open_conns := List.filter (fun c' -> c' != c) !open_conns
            | Ok keys ->
              incr echo_count;
              ignore (Sockets.send c (String.uppercase_ascii keys))
            | Error _ ->
              open_conns := List.filter (fun c' -> c' != c) !open_conns)
          ready
      done);

  (* --- three interactive "users" typing at different cadences --- *)
  let rtts = Psd_util.Stats.create () in
  for i = 1 to n_clients do
    let app = System.app host_cli ~name:(Printf.sprintf "user%d" i) in
    Psd_sim.Engine.spawn eng ~name:(Printf.sprintf "user%d" i) (fun () ->
        let s = Sockets.stream app in
        Result.get_ok (Sockets.connect s (System.addr host_srv) 23);
        Sockets.set_nodelay s true;
        let think_time = Psd_sim.Time.ms (80 + (i * 37)) in
        for k = 1 to keystrokes_per_client do
          Psd_sim.Engine.sleep eng think_time;
          let t0 = Psd_sim.Engine.now eng in
          ignore (Result.get_ok (Sockets.send s (Printf.sprintf "key%d" k)));
          (match Sockets.recv s ~max:256 with
          | Ok echoed ->
            assert (String.length echoed > 0);
            Psd_util.Stats.add rtts
              (float_of_int (Psd_sim.Engine.now eng - t0))
          | Error e -> failwith e)
        done;
        Sockets.close s)
  done;

  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 120);
  Format.printf "terminal session: %d clients, %d echoes served@." n_clients
    !echo_count;
  Format.printf "keystroke echo rtt: mean %.2f ms, p99 %.2f ms@."
    (Psd_util.Stats.mean rtts /. 1e6)
    (Psd_util.Stats.percentile rtts 99. /. 1e6);
  Format.printf
    "(each echo crossed the wire twice with zero operating-system \
     involvement on the data path)@."
