(* A classic forking daemon (the inetd pattern) on the decomposed
   architecture — the hard case the paper designs for.

   BSD fork semantics require parent and child descriptors to name the
   SAME session, which is impossible while the session lives in one
   address space. The proxy therefore returns all sessions to the
   operating-system server before forking (proxy_return, Table 1); both
   processes then reach the session through the server.

   Run with: dune exec examples/fork_worker.exe *)

open Psd_core

let () =
  let eng = Psd_sim.Engine.create () in
  let segment = Psd_link.Segment.create eng () in
  let config = Psd_cost.Config.library_shm in
  let host_a =
    System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"daemon-host" ()
  in
  let host_b =
    System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"client-host" ()
  in

  (* --- the daemon: accept, then fork a worker per connection --- *)
  let daemon = System.app host_a ~name:"inetd" in
  Psd_sim.Engine.spawn eng ~name:"inetd" (fun () ->
      let listener = Sockets.stream daemon in
      ignore (Result.get_ok (Sockets.bind listener ~port:79 ()));
      Result.get_ok (Sockets.listen listener ~backlog:8 ());
      for i = 1 to 2 do
        let conn = Result.get_ok (Sockets.accept listener) in
        Format.printf "[inetd] conn %d accepted, session location: %s@." i
          (match Sockets.location conn with
          | Sockets.Loc_library -> "library (fast path)"
          | Sockets.Loc_server -> "server"
          | _ -> "?");
        (* fork: all sessions are first returned to the OS server *)
        let child = Sockets.fork daemon ~name:(Printf.sprintf "worker%d" i) in
        Format.printf "[inetd] after fork, session location: %s@."
          (match Sockets.location conn with
          | Sockets.Loc_server -> "server (shared by parent and child)"
          | _ -> "?");
        Psd_sim.Engine.spawn eng ~name:(Printf.sprintf "worker%d" i)
          (fun () ->
            (* child serves the request on its inherited descriptor (the
               most recently accepted connection) *)
            match
              List.find_opt
                (fun s -> Sockets.kind s = Session.Stream
                          && Sockets.remote_endpoint s <> None)
                (List.rev (Sockets.fork_inherited child))
            with
            | Some c ->
              (match Sockets.recv c ~max:256 with
              | Ok user ->
                ignore
                  (Sockets.send c
                     (Printf.sprintf "%s is logged on from a forked worker\n"
                        user))
              | Error e -> Format.printf "[worker] recv error: %s@." e);
              Sockets.close c;
              Sockets.exit child
            | None -> Format.printf "[worker%d] no inherited socket@." i);
        (* the parent closes its copy of the connection *)
        Sockets.close conn
      done);

  (* --- two finger-style clients --- *)
  for i = 1 to 2 do
    let cli = System.app host_b ~name:(Printf.sprintf "finger%d" i) in
    Psd_sim.Engine.spawn eng ~name:(Printf.sprintf "finger%d" i) (fun () ->
        Psd_sim.Engine.sleep eng (Psd_sim.Time.ms (50 * i));
        let s = Sockets.stream cli in
        Result.get_ok (Sockets.connect s (System.addr host_a) 79);
        ignore (Result.get_ok (Sockets.send s (Printf.sprintf "user%d" i)));
        (match Sockets.recv s ~max:256 with
        | Ok reply -> Format.printf "[finger%d] %s" i reply
        | Error e -> Format.printf "[finger%d] error: %s@." i e);
        Sockets.close s)
  done;

  Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 30);
  match System.server host_a with
  | Some srv ->
    Format.printf
      "[daemon-host] OS server: %d migrations performed, %d sessions still \
       active@."
      (Os_server.migrations srv)
      (Os_server.sessions_active srv)
  | None -> ()
