(* Benchmark harness: one Bechamel test per paper table (measuring the
   wall-clock cost of regenerating that table's characteristic cell with
   this reproduction), followed by the full tables themselves so that
   `dune exec bench/main.exe` emits the complete paper-vs-measured run. *)

open Bechamel
module W = Psd_workloads
module Cfg = Psd_cost.Config

(* --- one Test.make per table ------------------------------------------ *)

let test_table2 =
  Test.make ~name:"table2: ttcp+protolat cell (DECstation)"
    (Staged.stage (fun () ->
         ignore (W.Ttcp.run ~mb:1 Cfg.library_shm_ipf);
         ignore
           (W.Protolat.run ~rounds:20 ~proto:W.Protolat.Udp ~size:1
              Cfg.library_shm_ipf)))

let test_table2_gateway =
  Test.make ~name:"table2: ttcp cell (Gateway 486)"
    (Staged.stage (fun () ->
         ignore (W.Ttcp.run ~machine:W.Paper.Gateway ~mb:1 Cfg.mach25_kernel)))

let test_table3 =
  Test.make ~name:"table3: NEWAPI ttcp cell"
    (Staged.stage (fun () ->
         ignore (W.Ttcp.run ~mb:1 Cfg.library_newapi_shm_ipf)))

let test_table4 =
  Test.make ~name:"table4: instrumented protolat cell"
    (Staged.stage (fun () ->
         let b = Psd_cost.Breakdown.create () in
         ignore
           (W.Protolat.run ~rounds:20 ~breakdown:b ~proto:W.Protolat.Tcp
              ~size:1 Cfg.ux_server)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"psd" ~fmt:"%s %s"
      [ test_table2; test_table2_gateway; test_table3; test_table4 ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "=== Bechamel: harness cost per regenerated cell ===@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Format.printf "  %-44s %10.2f ms/run@." name (est /. 1e6)
      | _ -> Format.printf "  %-44s (no estimate)@." name)
    results

(* --- the full reproduction --------------------------------------------- *)

let () =
  benchmark ();
  W.Tables.figure1 ();
  W.Tables.table1 ();
  W.Tables.print_rows ~header:"Table 2 — DECstation 5000/200"
    (W.Tables.table2 ~machine:W.Paper.Dec ~mb:8 ~rounds:150 ());
  W.Tables.print_rows ~header:"Table 2 — Gateway 486"
    (W.Tables.table2 ~machine:W.Paper.Gateway ~mb:8 ~rounds:150 ());
  W.Tables.print_rows ~header:"Table 3 — NEWAPI (shared-buffer interface)"
    (W.Tables.table3 ~mb:8 ~rounds:150 ());
  ignore (W.Tables.table4 ~rounds:150 ());
  ignore (W.Ablation.delivery ~mb:4 ~rounds:100 ());
  ignore (W.Ablation.ack_strategy ~mb:4 ());
  ignore (W.Ablation.sync_weight ~rounds:100 ());
  ignore (W.Ablation.migration_cost ~conns:10 ());
  List.iter
    (fun config -> ignore (W.Ablation.bufsize_sweep ~mb:4 config))
    [ Cfg.mach25_kernel; Cfg.ux_server; Cfg.library_shm_ipf ]
