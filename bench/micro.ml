(* Fast-path microbenchmarks: the three data-plane inner loops this
   reproduction's wall-clock time is spent in (BPF demultiplex, Internet
   checksum, mbuf churn) plus the table2 macro cell, measured with
   Bechamel and emitted as BENCH_fastpath.json so successive PRs can
   track the wall-clock trajectory. The byte-at-a-time checksum and the
   BPF interpreter are measured alongside the fast paths, so every run
   records its own before/after ratios.

   `--smoke` (the @bench-smoke dune alias, part of the default test run)
   instead executes each workload a handful of times and writes nothing:
   it exists so the harness cannot silently rot. *)

open Bechamel
module W = Psd_workloads
module Cfg = Psd_cost.Config

(* --- workloads -------------------------------------------------------- *)

let buf1500 = Bytes.init 1500 (fun i -> Char.chr (i * 131 land 0xff))

(* the pre-fast-path algorithm, kept as the measured reference *)
let ref_checksum b ~off ~len =
  let acc = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc :=
      !acc
      + (Char.code (Bytes.get b !i) lsl 8)
      + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  let acc = ref !acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

let spec =
  {
    Psd_bpf.Filter.proto = Psd_bpf.Filter.Tcp;
    local_ip = 0x0a000002;
    local_port = 80;
    remote_ip = Some 0x0a000001;
    remote_port = Some 1234;
  }

let prog = Psd_bpf.Filter.session spec
let compiled = Psd_bpf.Compile.compile_exn prog
let flat = Psd_bpf.Filter.flat_of_spec spec

let match_frame =
  (* a frame the session filter accepts: the full demultiplexing path *)
  let b = Bytes.make 64 '\x00' in
  Psd_util.Codec.set_u16 b 12 0x0800;
  Psd_util.Codec.set_u8 b 14 0x45;
  Psd_util.Codec.set_u8 b 23 6;
  Psd_util.Codec.set_u32i b 26 0x0a000001;
  Psd_util.Codec.set_u32i b 30 0x0a000002;
  Psd_util.Codec.set_u16 b 34 1234;
  Psd_util.Codec.set_u16 b 36 80;
  b

let payload4k = String.make 4096 'x'

let mbuf_churn () =
  let m = Psd_mbuf.Mbuf.of_string payload4k in
  let front = Psd_mbuf.Mbuf.split m 1000 in
  Psd_mbuf.Mbuf.concat front m;
  Psd_mbuf.Mbuf.length front

(* The steady-state receive inner loop, isolated from the simulator: a
   full-MSS TCP segment is decoded in place (checksum straight over the
   buffer), its payload viewed into a sockbuf chain, and the chain split
   off as the application read — the sequence the zero-copy datapath
   runs once per received segment. The segment bytes are built once;
   per-run work allocates only mbuf view records, never payload bytes. *)
let rx_src = Psd_ip.Addr.of_string "10.0.0.1"
let rx_dst = Psd_ip.Addr.of_string "10.0.0.2"

let rx_segment_bytes =
  let payload =
    Psd_mbuf.Mbuf.of_string (String.init 1460 (fun i -> Char.chr (i land 0xff)))
  in
  let hdr =
    {
      Psd_tcp.Segment.src_port = 5001;
      dst_port = 1234;
      seq = 7000;
      ack = 42;
      flags = { Psd_tcp.Segment.no_flags with ack = true };
      window = 16384;
      mss = None;
    }
  in
  let m = Psd_tcp.Segment.encode hdr ~src:rx_src ~dst:rx_dst ~payload in
  Psd_mbuf.Mbuf.to_bytes m

let rx_sockbuf = Psd_mbuf.Mbuf.empty ()

let rx_datapath () =
  match
    Psd_tcp.Segment.decode rx_segment_bytes ~src:rx_src ~dst:rx_dst
  with
  | Error _ -> failwith "rx_datapath: decode failed"
  | Ok (_hdr, payload) ->
    Psd_mbuf.Mbuf.concat rx_sockbuf payload;
    let read = Psd_mbuf.Mbuf.split rx_sockbuf (Psd_mbuf.Mbuf.length rx_sockbuf) in
    Psd_mbuf.Mbuf.length read

(* The steady-state transmit inner loop, isolated from the simulator:
   one MSS is viewed out of a standing send queue (no retain copy), the
   TCP header is prepended and the checksum run over the chain, the
   IP and Ethernet headers are prepended, and the chain is gathered
   into the wire frame — the one body copy of the zero-copy send path.
   The send queue is built once; per-run work allocates only view and
   header records plus the frame itself. *)
let tx_sndq =
  Psd_mbuf.Mbuf.of_string
    (String.init 4096 (fun i -> Char.chr (i land 0xff)))

let tx_datapath () =
  let payload = Psd_mbuf.Mbuf.sub_view tx_sndq ~off:0 ~len:1460 in
  let hdr =
    {
      Psd_tcp.Segment.src_port = 1234;
      dst_port = 5001;
      seq = 9000;
      ack = 77;
      flags = { Psd_tcp.Segment.no_flags with ack = true; psh = true };
      window = 16384;
      mss = None;
    }
  in
  let m = Psd_tcp.Segment.encode hdr ~src:rx_dst ~dst:rx_src ~payload in
  ignore (Psd_mbuf.Mbuf.prepend m 20);
  ignore (Psd_mbuf.Mbuf.prepend m 14);
  Bytes.length (Psd_mbuf.Mbuf.to_bytes m)

let table2_cell () =
  ignore (W.Ttcp.run ~mb:1 Cfg.library_shm_ipf);
  ignore
    (W.Protolat.run ~rounds:20 ~proto:W.Protolat.Udp ~size:1
       Cfg.library_shm_ipf)

(* The domain-parallel table2 cell, at 1 shard and at 2 domains: the
   ratio is the measured 2-domain speedup (or, on a host without two
   free cores, the synchronization overhead) of the sharded engine on
   the same workload. *)
let table2_par_cell nshards () =
  ignore
    (W.Ttcp.run_par ~mb:1 ~nshards ~domains:(nshards > 1) Cfg.library_shm_ipf)

let workloads =
  [
    ( "checksum_ref_1500B",
      fun () -> ignore (ref_checksum buf1500 ~off:0 ~len:1500) );
    ( "checksum_fast_1500B",
      fun () -> ignore (Psd_util.Checksum.of_bytes buf1500 ~off:0 ~len:1500) );
    ( "checksum_fast_64B",
      fun () -> ignore (Psd_util.Checksum.of_bytes buf1500 ~off:0 ~len:64) );
    ( "bpf_session_interp",
      fun () -> ignore (Psd_bpf.Vm.run_exn prog match_frame) );
    ( "bpf_session_compiled",
      fun () -> ignore (Psd_bpf.Compile.run compiled match_frame) );
    ( "bpf_session_flat",
      fun () -> ignore (Psd_bpf.Filter.flat_run flat match_frame) );
    ("mbuf_churn_4096B", fun () -> ignore (mbuf_churn ()));
    ("rx_datapath_1460B", fun () -> ignore (rx_datapath ()));
    ("tx_datapath_1460B", fun () -> ignore (tx_datapath ()));
    ("table2_ttcp_protolat_cell", fun () -> table2_cell ());
    ("table2_ttcp_par_1dom", table2_par_cell 1);
    ("table2_ttcp_par_2dom", table2_par_cell 2);
  ]

(* --- measurement ------------------------------------------------------ *)

let measure () =
  (* Bench-harness GC config: the table2 cell allocates a few million
     minor words per run, so with the default 256k-word nursery the
     minor-collection count is a property of the harness, not of the
     code under test. A large nursery takes the collector out of the
     measurement; the smoke path deliberately keeps defaults. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let tests =
    List.map
      (fun (name, f) -> Test.make ~name (Staged.stage f))
      workloads
  in
  let grouped = Test.make_grouped ~name:"fastpath" ~fmt:"%s/%s" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let estimate name =
    match Hashtbl.find_opt results ("fastpath/" ^ name) with
    | Some r -> (
      match Analyze.OLS.estimates r with Some [ est ] -> Some est | _ -> None)
    | None -> None
  in
  List.filter_map
    (fun (name, _) -> Option.map (fun e -> (name, e)) (estimate name))
    workloads

let ratio results num den =
  match (List.assoc_opt num results, List.assoc_opt den results) with
  | Some n, Some d when d > 0.0 -> Some (n /. d)
  | _ -> None

let emit_json path results =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"fastpath\",\n";
  p "  \"unit\": \"ns_per_run\",\n";
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"results\": {\n";
  let n = List.length results in
  List.iteri
    (fun i (name, est) ->
      p "    \"%s\": %.1f%s\n" name est (if i = n - 1 then "" else ","))
    results;
  p "  },\n";
  p "  \"speedups\": {\n";
  let speedups =
    List.filter_map
      (fun (label, num, den) ->
        Option.map (fun r -> (label, r)) (ratio results num den))
      [
        ("checksum_1500B", "checksum_ref_1500B", "checksum_fast_1500B");
        ("bpf_session_compiled", "bpf_session_interp", "bpf_session_compiled");
        ("bpf_session_flat", "bpf_session_interp", "bpf_session_flat");
        ("ttcp_par_2dom", "table2_ttcp_par_1dom", "table2_ttcp_par_2dom");
      ]
  in
  let m = List.length speedups in
  List.iteri
    (fun i (label, r) ->
      p "    \"%s\": %.2f%s\n" label r (if i = m - 1 then "" else ","))
    speedups;
  p "  }\n";
  p "}\n";
  close_out oc

(* --- entry ------------------------------------------------------------ *)

let smoke () =
  (* tiny iteration counts: prove every workload still runs *)
  List.iter
    (fun (name, f) ->
      let reps =
        if String.length name >= 6 && String.sub name 0 6 = "table2" then 1
        else 100
      in
      for _ = 1 to reps do
        f ()
      done;
      Format.printf "bench-smoke %-28s ok (%d reps)@." name reps)
    workloads

let () =
  match Sys.argv with
  | [| _; "--smoke" |] -> smoke ()
  | [| _; arg |] ->
    Printf.eprintf "micro: unknown argument %S\nusage: micro.exe [--smoke]\n" arg;
    exit 2
  | _ ->
    let results = measure () in
    Format.printf "=== fastpath microbenchmarks ===@.";
    List.iter
      (fun (name, est) -> Format.printf "  %-28s %12.1f ns/run@." name est)
      results;
    let out = "BENCH_fastpath.json" in
    emit_json out results;
    Format.printf "wrote %s@." out
