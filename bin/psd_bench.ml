(* psd_bench: regenerate every table and figure of "Protocol Service
   Decomposition for High-Performance Networking" (SOSP 1993), plus the
   sweeps and ablations described in DESIGN.md. *)

open Cmdliner
module W = Psd_workloads
module Cfg = Psd_cost.Config

let machine_arg =
  let machine_conv =
    Arg.enum [ ("dec", W.Paper.Dec); ("gateway", W.Paper.Gateway) ]
  in
  Arg.(
    value
    & opt machine_conv W.Paper.Dec
    & info [ "machine" ] ~docv:"MACHINE"
        ~doc:"Platform: $(b,dec) (DECstation 5000/200) or $(b,gateway) \
              (Gateway 486).")

let mb_arg =
  Arg.(
    value
    & opt int 16
    & info [ "mb" ] ~docv:"MB"
        ~doc:"Megabytes per ttcp transfer (the paper used 16).")

let rounds_arg =
  Arg.(
    value
    & opt int 200
    & info [ "rounds" ] ~docv:"N" ~doc:"Round trips per latency cell.")

let table1_cmd =
  let run () = W.Tables.table1 () in
  Cmd.v (Cmd.info "table1" ~doc:"Print the proxy interface (paper Table 1).")
    Term.(const run $ const ())

let figure1_cmd =
  let run () = W.Tables.figure1 () in
  Cmd.v
    (Cmd.info "figure1"
       ~doc:"Print the component placement of each configuration (Figure 1).")
    Term.(const run $ const ())

let table2_cmd =
  let run machine mb rounds =
    let rows = W.Tables.table2 ~machine ~mb ~rounds () in
    let name =
      match machine with W.Paper.Dec -> "DECstation 5000/200" | W.Paper.Gateway -> "Gateway 486"
    in
    W.Tables.print_rows ~header:("Table 2 — " ^ name) rows
  in
  Cmd.v
    (Cmd.info "table2"
       ~doc:"TCP throughput and TCP/UDP round-trip latency for every \
             configuration (paper Table 2).")
    Term.(const run $ machine_arg $ mb_arg $ rounds_arg)

let table3_cmd =
  let run mb rounds =
    let rows = W.Tables.table3 ~mb ~rounds () in
    W.Tables.print_rows ~header:"Table 3 — NEWAPI (shared-buffer interface)"
      rows
  in
  Cmd.v
    (Cmd.info "table3"
       ~doc:"The modified (shared-buffer) socket interface (paper Table 3).")
    Term.(const run $ mb_arg $ rounds_arg)

let table4_cmd =
  let run rounds = ignore (W.Tables.table4 ~rounds ()) in
  Cmd.v
    (Cmd.info "table4"
       ~doc:"Per-layer latency breakdown for library, kernel and server \
             implementations (paper Table 4).")
    Term.(const run $ rounds_arg)

let sweep_cmd =
  let which =
    Arg.(
      value
      & pos 0 (enum [ ("bufsize", `Bufsize); ("loss", `Loss) ]) `Bufsize
      & info [] ~docv:"WHICH" ~doc:"$(b,bufsize) (default) or $(b,loss).")
  in
  let run which mb =
    match which with
    | `Bufsize ->
      List.iter
        (fun config -> ignore (W.Ablation.bufsize_sweep ~mb config))
        [ Cfg.mach25_kernel; Cfg.ux_server; Cfg.library_shm_ipf ]
    | `Loss -> ignore (W.Ablation.loss_sweep ~mb:(min mb 2) ())
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Parameter sweeps: $(b,bufsize) — throughput versus \
             receive-buffer size (how the paper found each \
             configuration's best buffer); $(b,loss) — goodput and \
             retransmissions versus injected frame-loss rate for all \
             six placements.")
    Term.(const run $ which $ mb_arg)

let ablation_cmd =
  let which =
    Arg.(
      value
      & pos 0 (enum
                 [ ("delivery", `Delivery); ("ack", `Ack); ("spl", `Spl);
                   ("migration", `Migration); ("loss", `Loss);
                   ("all", `All) ])
          `All
      & info [] ~docv:"WHICH"
          ~doc:"$(b,delivery), $(b,ack), $(b,spl), $(b,migration), \
                $(b,loss) or $(b,all).")
  in
  let run which =
    let dl () = ignore (W.Ablation.delivery ()) in
    let ack () = ignore (W.Ablation.ack_strategy ()) in
    let spl () = ignore (W.Ablation.sync_weight ()) in
    let mig () = ignore (W.Ablation.migration_cost ()) in
    let loss () = ignore (W.Ablation.loss_faults ()) in
    match which with
    | `Delivery -> dl ()
    | `Ack -> ack ()
    | `Spl -> spl ()
    | `Migration -> mig ()
    | `Loss -> loss ()
    | `All ->
      dl ();
      ack ();
      spl ();
      mig ();
      loss ()
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Ablations of the design choices: delivery variant, ack \
             strategy, synchronisation weight, migration cost, wire \
             fault class.")
    Term.(const run $ which)

let series_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 100
      & info [ "rounds" ] ~docv:"N" ~doc:"Round trips per point.")
  in
  let run rounds =
    (* figure-style artifact: UDP round-trip latency versus message size,
       one series per configuration — the data behind Table 2's latency
       columns at a finer grain *)
    let sizes = [ 1; 64; 128; 256; 512; 768; 1024; 1280; 1472 ] in
    let configs =
      [
        Cfg.mach25_kernel;
        Cfg.ux_server;
        Cfg.library_ipc;
        Cfg.library_shm;
        Cfg.library_shm_ipf;
      ]
    in
    Format.printf
      "@.=== Series: UDP round-trip latency (ms) vs message size ===@.";
    Format.printf "%-8s" "bytes";
    List.iter
      (fun (c : Cfg.t) ->
        let label = c.Cfg.label in
        let short =
          String.sub label (max 0 (String.length label - 15))
            (min 15 (String.length label))
        in
        Format.printf " %15s" short)
      configs;
    Format.printf "@.";
    List.iter
      (fun size ->
        Format.printf "%-8d" size;
        List.iter
          (fun config ->
            let r =
              W.Protolat.run ~rounds ~proto:W.Protolat.Udp ~size config
            in
            Format.printf " %15.2f" r.W.Protolat.rtt_ms)
          configs;
        Format.printf "@.")
      sizes;
    Format.printf
      "(series are linear in size with slopes set by per-byte costs:        checksum + copies + wire)@."
  in
  Cmd.v
    (Cmd.info "series"
       ~doc:"UDP latency versus message size, one series per configuration              (plot-ready).")
    Term.(const run $ rounds_arg)

let trace_cmd =
  let config_arg =
    let names =
      [
        ("kernel", Cfg.mach25_kernel);
        ("server", Cfg.ux_server);
        ("library-ipc", Cfg.library_ipc);
        ("library-shm", Cfg.library_shm);
        ("library-shm-ipf", Cfg.library_shm_ipf);
      ]
    in
    Arg.(
      value
      & opt (enum names) Cfg.library_shm_ipf
      & info [ "config" ] ~docv:"CONFIG"
          ~doc:"Placement to trace: $(b,kernel), $(b,server),                 $(b,library-ipc), $(b,library-shm), $(b,library-shm-ipf).")
  in
  let run config =
    let open Psd_core in
    let eng = Psd_sim.Engine.create () in
    let segment = Psd_link.Segment.create eng () in
    let a =
      System.create ~eng ~segment ~config ~addr:"10.0.0.1" ~name:"a" ()
    in
    let b =
      System.create ~eng ~segment ~config ~addr:"10.0.0.2" ~name:"b" ()
    in
    let tap = Snoop.attach eng segment in
    let srv = System.app b ~name:"srv" in
    Psd_sim.Engine.spawn eng (fun () ->
        let l = Sockets.stream srv in
        ignore (Result.get_ok (Sockets.bind l ~port:7 ()));
        Result.get_ok (Sockets.listen l ());
        let c = Result.get_ok (Sockets.accept l) in
        let rec loop () =
          match Sockets.recv c ~max:65536 with
          | Ok "" -> Sockets.close c
          | Ok d ->
            ignore (Sockets.send c d);
            loop ()
          | Error _ -> ()
        in
        loop ());
    let cli = System.app a ~name:"cli" in
    Psd_sim.Engine.spawn eng (fun () ->
        let s = Sockets.stream cli in
        Result.get_ok (Sockets.connect s (System.addr b) 7);
        ignore (Result.get_ok (Sockets.send s (String.make 3000 'x')));
        let rec read n =
          if n < 3000 then
            match Sockets.recv s ~max:4096 with
            | Ok "" -> ()
            | Ok d -> read (n + String.length d)
            | Error _ -> ()
        in
        read 0;
        Sockets.close s);
    Psd_sim.Engine.run_for eng (Psd_sim.Time.sec 10);
    Format.printf
      "trace of connect + 3000B echo + close under %s (%d frames):@."
      config.Cfg.label (Snoop.count tap);
    Format.printf "%a" Snoop.pp_trace tap
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a tcpdump-style decode of a small echo scenario on the              simulated wire.")
    Term.(const run $ config_arg)

let copies_cmd =
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Datagrams per placement.")
  in
  let size_arg =
    Arg.(
      value & opt int 1024
      & info [ "size" ] ~docv:"BYTES" ~doc:"Datagram payload size.")
  in
  let run count size =
    Format.printf
      "@.=== Copies per packet (one-way UDP blast, %d x %dB) ===@.@." count
      size;
    List.iter
      (fun config ->
        let r = W.Copymeter.run ~count ~size config in
        Format.printf "%a@." W.Copymeter.pp r)
      (Cfg.decstation_rows @ Cfg.newapi_rows @ [ Cfg.offload ]);
    (* The NEWAPI-SHM-IPF row is the paper's end state — zero receive
       body copies (the application reads the packet where the filter
       deposited it) and the single transmit gather. Enforce it here so
       the recorded bench output cannot silently regress. *)
    let r = W.Copymeter.run ~count ~size Cfg.library_newapi_shm_ipf in
    if r.W.Copymeter.rx_body_copies <> 0 then
      failwith
        (Printf.sprintf
           "copies: NEWAPI-SHM-IPF performed %d rx body copies (want 0)"
           r.W.Copymeter.rx_body_copies);
    if r.W.Copymeter.tx_body_copies <> r.W.Copymeter.sent then
      failwith
        (Printf.sprintf
           "copies: NEWAPI-SHM-IPF performed %d tx body copies (want %d)"
           r.W.Copymeter.tx_body_copies r.W.Copymeter.sent);
    Format.printf
      "NEWAPI-SHM-IPF verified: 0 rx body copies, 1 tx gather per packet@.";
    (* Same discipline for the Offload placement: the NIC DMAs each
       packet into the loaned buffer the application reads, so the host
       receive datapath must touch payload bytes exactly zero times,
       and transmit pays only the NIC's frame gather. *)
    let r = W.Copymeter.run ~count ~size Cfg.offload in
    if r.W.Copymeter.rx_body_copies <> 0 then
      failwith
        (Printf.sprintf
           "copies: Offload performed %d host rx body copies (want 0)"
           r.W.Copymeter.rx_body_copies);
    if r.W.Copymeter.tx_body_copies <> r.W.Copymeter.sent then
      failwith
        (Printf.sprintf
           "copies: Offload performed %d tx body copies (want %d)"
           r.W.Copymeter.tx_body_copies r.W.Copymeter.sent);
    Format.printf
      "Offload verified: 0 host rx body copies, 1 NIC gather per packet@."
  in
  Cmd.v
    (Cmd.info "copies"
       ~doc:"Count the data-touching copies each placement performs per \
             packet, transmit and receive (the measurement behind the \
             single-copy claim for the SHM-IPF datapath: one tx gather, \
             one rx delivery copy — and zero rx body copies under the \
             shared-buffer NEWAPI).")
    Term.(const run $ count_arg $ size_arg)

let offload_cmd =
  let mb_arg =
    Arg.(
      value & opt int 4
      & info [ "mb" ] ~docv:"MB"
          ~doc:"Megabytes per ttcp transfer (bulk cell and table rows).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 60
      & info [ "rounds" ] ~docv:"N" ~doc:"Round trips per latency cell.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_offload.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let run mb rounds out =
    let open Psd_core in
    let nic =
      match Cfg.offload.Cfg.nic with
      | Some n -> n
      | None -> Psd_cost.Platform.nic_default
    in
    Format.printf "@.=== Smart-NIC offload (%s, %d PEs, %d-slot ring) ===@.@."
      nic.Psd_cost.Platform.nic_name nic.Psd_cost.Platform.pes
      nic.Psd_cost.Platform.ring_slots;
    (* bulk-transfer cell: the N-PE pipeline against the same NIC with
       one processing element — FlexTOE's claim in miniature. Virtual
       time is deterministic, so the speedup is a recorded number, not
       a wall-clock measurement. *)
    let cell config =
      let nic_counters = ref [] in
      let probe ~sender ~receiver =
        let grab who sys =
          match System.nic_pipe sys with
          | Some p -> [ (who, Psd_mach.Nicpipe.counters p) ]
          | None -> []
        in
        nic_counters := grab "sender" sender @ grab "receiver" receiver
      in
      let r = W.Ttcp.run ~mb ~probe config in
      (r, !nic_counters)
    in
    let piped, piped_nic = cell Cfg.offload in
    let serial, _ = cell Cfg.offload_serial in
    Format.printf "%a@.%a@." W.Ttcp.pp piped W.Ttcp.pp serial;
    let speedup =
      float_of_int serial.W.Ttcp.elapsed_ns
      /. float_of_int piped.W.Ttcp.elapsed_ns
    in
    Format.printf "@.pipeline speedup (virtual time, %d PEs over 1): %.2fx@."
      nic.Psd_cost.Platform.pes speedup;
    List.iter
      (fun (who, cs) ->
        Format.printf "@.%s NIC pipeline:@.%a@." who
          Psd_util.Stats.pp_counters cs)
      piped_nic;
    if piped.W.Ttcp.elapsed_ns >= serial.W.Ttcp.elapsed_ns then begin
      Format.eprintf
        "FATAL: pipeline (%d PEs) no faster than 1 PE on the bulk cell \
         (%d ns vs %d ns)@."
        nic.Psd_cost.Platform.pes piped.W.Ttcp.elapsed_ns
        serial.W.Ttcp.elapsed_ns;
      exit 1
    end;
    (* latency cells (the Table 4 corner points) *)
    let lat =
      List.map
        (fun (name, proto, size) ->
          let r = W.Protolat.run ~rounds ~proto ~size Cfg.offload in
          Format.printf "%-14s %8.3f ms rtt@." name r.W.Protolat.rtt_ms;
          (name, r.W.Protolat.rtt_ms))
        [
          ("tcp_1", W.Protolat.Tcp, 1);
          ("tcp_1460", W.Protolat.Tcp, 1460);
          ("udp_1", W.Protolat.Udp, 1);
          ("udp_1472", W.Protolat.Udp, 1472);
        ]
    in
    (* tables with the Offload column, and the regression gate: the
       classic rows of the extended run must be bit-identical to the
       seed tables (the offload row is opt-in; nothing about it may
       perturb an existing configuration's virtual time). *)
    let prefix n l = List.filteri (fun i _ -> i < n) l in
    let rows2 = W.Tables.table2 ~mb ~rounds ~with_offload:true () in
    let rows2_plain = W.Tables.table2 ~mb ~rounds () in
    let rows3 = W.Tables.table3 ~mb ~rounds ~with_offload:true () in
    let rows3_plain = W.Tables.table3 ~mb ~rounds () in
    let t2_ok = prefix (List.length rows2_plain) rows2 = rows2_plain in
    let t3_ok = prefix (List.length rows3_plain) rows3 = rows3_plain in
    W.Tables.print_rows ~header:"Table 2 + Offload — DECstation 5000/200"
      rows2;
    W.Tables.print_rows ~header:"Table 3 + Offload — NEWAPI" rows3;
    let t4 = W.Tables.table4 ~rounds ~with_offload:true () in
    let t4_plain = W.Tables.table4 ~rounds () in
    (* per (proto, size) case: every classic row of the extended table,
       restricted to its classic columns, must equal the seed row *)
    let classic_cols (r : W.Tables.breakdown_row) =
      {
        r with
        W.Tables.us =
          List.filter (fun (impl, _, _) -> impl <> "Offload") r.W.Tables.us;
      }
    in
    let t4_ok =
      List.for_all2
        (fun case case_plain ->
          let classic =
            List.filter
              (fun (r : W.Tables.breakdown_row) ->
                r.W.Tables.phase
                <> Psd_cost.Phase.label Psd_cost.Phase.Desc_crossing)
              case
          in
          List.length classic = List.length case_plain
          && List.for_all2
               (fun r r_plain -> classic_cols r = r_plain)
               classic case_plain)
        t4 t4_plain
    in
    if not (t2_ok && t3_ok && t4_ok) then begin
      Format.eprintf
        "FATAL: classic rows changed under the offload run (table2 %b, \
         table3 %b, table4 %b)@."
        t2_ok t3_ok t4_ok;
      exit 1
    end;
    Format.printf
      "@.classic rows verified bit-identical with the Offload column added@.";
    let oc = open_out out in
    let p fmt = Printf.fprintf oc fmt in
    p "{\n";
    p "  \"benchmark\": \"offload\",\n";
    p "  \"nic\": {\"name\": \"%s\", \"pes\": %d, \"ring_slots\": %d},\n"
      nic.Psd_cost.Platform.nic_name nic.Psd_cost.Platform.pes
      nic.Psd_cost.Platform.ring_slots;
    p "  \"bulk\": {\n";
    p "    \"mb\": %d,\n" mb;
    p "    \"piped_kb_per_sec\": %.0f,\n" piped.W.Ttcp.kb_per_sec;
    p "    \"serial_kb_per_sec\": %.0f,\n" serial.W.Ttcp.kb_per_sec;
    p "    \"piped_elapsed_ns\": %d,\n" piped.W.Ttcp.elapsed_ns;
    p "    \"serial_elapsed_ns\": %d,\n" serial.W.Ttcp.elapsed_ns;
    p "    \"speedup\": %.2f\n" speedup;
    p "  },\n";
    p "  \"latency_ms\": {";
    List.iteri
      (fun i (name, ms) ->
        p "%s\"%s\": %.3f" (if i = 0 then "" else ", ") name ms)
      lat;
    p "},\n";
    p "  \"pipeline\": {\n";
    let nsides = List.length piped_nic in
    List.iteri
      (fun i (who, cs) ->
        p "    \"%s\": {" who;
        List.iteri
          (fun j (k, v) ->
            p "%s\"%s\": %d" (if j = 0 then "" else ", ") k v)
          cs;
        p "}%s\n" (if i = nsides - 1 then "" else ","))
      piped_nic;
    p "  },\n";
    p "  \"classic_rows_identical\": true\n";
    p "}\n";
    close_out oc;
    Format.printf "@.wrote %s@." out
  in
  Cmd.v
    (Cmd.info "offload"
       ~doc:"The Smart-NIC Offload placement: bulk-transfer cell with \
             N-PE pipeline versus 1-PE serialisation (exits nonzero \
             unless the pipeline is faster in virtual time), latency \
             cells, Tables 2/3/4 with the Offload column (exits \
             nonzero if any classic row changes), NIC pipeline \
             occupancy/stall counters, all into BENCH_offload.json.")
    Term.(const run $ mb_arg $ rounds_arg $ out_arg)

let predict_cmd =
  let mb_arg =
    Arg.(
      value & opt int 4
      & info [ "mb" ] ~docv:"MB" ~doc:"Megabytes per transfer.")
  in
  let run mb =
    Format.printf
      "@.=== TCP header prediction (ttcp bulk transfer, %d MB) ===@.@." mb;
    Format.printf "%-36s %10s %10s %9s@." "" "hits" "misses" "hit rate";
    List.iter
      (fun config ->
        let r = W.Ttcp.run ~mb config in
        let hit = r.W.Ttcp.recovery.W.Ttcp.predict_hit in
        let miss = r.W.Ttcp.recovery.W.Ttcp.predict_miss in
        let rate =
          if hit + miss = 0 then 0.
          else float_of_int hit /. float_of_int (hit + miss)
        in
        Format.printf "%-36s %10d %10d %8.1f%%@."
          config.Psd_cost.Config.label hit miss (100. *. rate))
      Cfg.decstation_rows
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Header-prediction fast-path hit rate per placement on the \
             steady-state ttcp bulk transfer (both hosts' stacks \
             summed). The fast path is observational: virtual-time \
             results are identical with it on or off.")
    Term.(const run $ mb_arg)

let scale_cmd =
  let conns_arg =
    Arg.(
      value
      & opt (list int) [ 1_000; 10_000; 100_000 ]
      & info [ "conns" ] ~docv:"N,N,..."
          ~doc:"Concurrent-connection counts to sweep.")
  in
  let spacing_arg =
    Arg.(
      value & opt int 2000
      & info [ "spacing-us" ] ~docv:"US"
          ~doc:"Microseconds between consecutive connects.")
  in
  let hold_arg =
    Arg.(
      value & opt int 5
      & info [ "hold-s" ] ~docv:"S"
          ~doc:"Seconds every connection stays open past the ramp, so \
                all of them overlap at the sampling point.")
  in
  let seed_arg =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_scale.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let budget_arg =
    Arg.(
      value & opt int 0
      & info [ "budget-bytes" ] ~docv:"B"
          ~doc:"Fail (exit 1) if any sweep point exceeds this many bytes \
                per connection, or echoes fewer than every connection, or \
                leaks a PCB. 0 disables the gate.")
  in
  let emit_json path spacing_us hold_s seed points =
    let oc = open_out path in
    let p fmt = Printf.fprintf oc fmt in
    p "{\n";
    p "  \"benchmark\": \"scale\",\n";
    p "  \"config\": {\n";
    p "    \"platform\": \"%s\",\n" Cfg.mach25_kernel.Cfg.label;
    p "    \"spacing_us\": %d,\n" spacing_us;
    p "    \"hold_s\": %d,\n" hold_s;
    p "    \"seed\": %d\n" seed;
    p "  },\n";
    p "  \"points\": [\n";
    let n = List.length points in
    List.iteri
      (fun i (r : W.Scale.result) ->
        p "    {\n";
        p "      \"conns\": %d,\n" r.W.Scale.conns;
        p "      \"hosts\": %d,\n" r.W.Scale.hosts;
        p "      \"segments\": %d,\n" r.W.Scale.segments;
        p "      \"echoed\": %d,\n" r.W.Scale.echoed;
        p "      \"failed\": %d,\n" r.W.Scale.failed;
        p "      \"peak_pcbs\": %d,\n" r.W.Scale.peak_pcbs;
        p "      \"bytes_per_conn\": %.0f,\n" r.W.Scale.bytes_per_conn;
        p "      \"bytes_per_pcb\": %.0f,\n" r.W.Scale.bytes_per_pcb;
        p "      \"events\": %d,\n" r.W.Scale.events;
        p "      \"virtual_s\": %.3f,\n"
          (float_of_int r.W.Scale.virtual_ns /. 1e9);
        p "      \"wall_s\": %.3f,\n" r.W.Scale.wall_s;
        p "      \"events_per_wall_s\": %.0f,\n" r.W.Scale.events_per_wall_s;
        p "      \"wall_ms_per_sim_s\": %.1f,\n" r.W.Scale.wall_ms_per_sim_s;
        p "      \"rexmt_segs\": %d,\n" r.W.Scale.rexmt_segs;
        p "      \"final_pcbs\": %d,\n" r.W.Scale.final_pcbs;
        p "      \"pool_fresh\": %d,\n" r.W.Scale.pool_fresh;
        p "      \"pool_hits\": %d,\n" r.W.Scale.pool_hits;
        p "      \"pool_puts\": %d,\n" r.W.Scale.pool_puts;
        p "      \"pool_free\": %d\n" r.W.Scale.pool_free;
        p "    }%s\n" (if i = n - 1 then "" else ","))
      points;
    p "  ]\n";
    p "}\n";
    close_out oc
  in
  let run conns spacing_us hold_s seed out budget =
    Format.printf "@.=== Control-plane scale sweep (%s) ===@.@."
      Cfg.mach25_kernel.Cfg.label;
    let points =
      List.map
        (fun c ->
          match
            W.Scale.run ~conns:c
              ~spacing_ns:(Psd_sim.Time.us spacing_us)
              ~hold_ns:(Psd_sim.Time.sec hold_s) ~seed ()
          with
          | Ok r ->
            Format.printf "%a@." W.Scale.pp r;
            r
          | Error e ->
            Format.eprintf "FATAL: scale %d conns: %a@." c W.Scale.pp_error
              e;
            exit 1)
        conns
    in
    emit_json out spacing_us hold_s seed points;
    Format.printf "@.wrote %s@." out;
    if budget > 0 then
      List.iter
        (fun (r : W.Scale.result) ->
          if r.W.Scale.echoed <> r.W.Scale.conns then (
            Format.eprintf "FATAL: %d conns: only %d echoed@."
              r.W.Scale.conns r.W.Scale.echoed;
            exit 1);
          if r.W.Scale.final_pcbs <> 0 then (
            Format.eprintf "FATAL: %d conns: %d PCBs leaked@."
              r.W.Scale.conns r.W.Scale.final_pcbs;
            exit 1);
          if r.W.Scale.bytes_per_conn > float_of_int budget then (
            Format.eprintf "FATAL: %d conns: %.0f B/conn over the %d B \
                            budget@."
              r.W.Scale.conns r.W.Scale.bytes_per_conn budget;
            exit 1))
        points
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Sweep concurrent TCP connection count (default 1k, 10k, \
             100k) through the gateway topology and report memory per \
             connection, events/sec, and wall-clock per simulated \
             second into BENCH_scale.json.")
    Term.(
      const run $ conns_arg $ spacing_arg $ hold_arg $ seed_arg $ out_arg
      $ budget_arg)

let par_cmd =
  let domains_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "domains" ] ~docv:"N,N,..."
          ~doc:"Domain counts to sweep. ttcp has two hosts, so its rows \
                cap at 2 shards; scale distributes its client hosts over \
                all of them.")
  in
  let mb_arg =
    Arg.(
      value & opt int 16
      & info [ "mb" ] ~docv:"MB" ~doc:"Megabytes per ttcp transfer.")
  in
  let conns_arg =
    Arg.(
      value & opt int 2_000
      & info [ "conns" ] ~docv:"N"
          ~doc:"Concurrent connections for the scale rows.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_par.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run domain_counts mb conns out =
    let cores = Domain.recommended_domain_count () in
    Format.printf
      "@.=== Domain-parallel engine sweep (%d core%s available) ===@.@."
      cores
      (if cores = 1 then "" else "s");
    (* ttcp rows: sender/receiver split over at most two shards *)
    let ttcp_rows =
      List.map
        (fun nd ->
          let nshards = min nd 2 in
          let r, w =
            wall (fun () ->
                W.Ttcp.run_par ~mb ~nshards ~domains:(nd > 1)
                  Cfg.library_shm_ipf)
          in
          Format.printf
            "ttcp  %d-domain: %8.0f KB/s  wall %6.3f s  (%d MB)@." nd
            r.W.Ttcp.kb_per_sec w mb;
          (nd, r, w))
        domain_counts
    in
    (* scale rows: clients round-robin over the non-server shards *)
    let scale_rows =
      List.map
        (fun nd ->
          let r, w =
            wall (fun () ->
                match
                  W.Scale.run_par ~conns ~nshards:(max nd 1)
                    ~domains:(nd > 1) ()
                with
                | Ok r -> r
                | Error e ->
                  Format.eprintf "FATAL: scale par: %a@." W.Scale.pp_error e;
                  exit 1)
          in
          Format.printf
            "scale %d-domain: %7d echoed  wall %6.3f s  (%d conns)@." nd
            r.W.Scale.echoed w conns;
          (nd, r, w))
        domain_counts
    in
    (* determinism gate: every row must carry the same virtual-time
       transcript as the first *)
    (match ttcp_rows with
    | (_, r0, _) :: rest ->
      List.iter
        (fun (nd, r, _) ->
          if r <> r0 then (
            Format.eprintf
              "FATAL: ttcp %d-domain transcript diverges from %d-domain@."
              nd
              (match ttcp_rows with (n0, _, _) :: _ -> n0 | [] -> 0);
            exit 1))
        rest
    | [] -> ());
    (match scale_rows with
    | (_, r0, _) :: rest ->
      let strip (r : W.Scale.result) =
        {
          r with
          W.Scale.events = 0;
          wall_s = 0.;
          events_per_wall_s = 0.;
          wall_ms_per_sim_s = 0.;
          bytes_per_conn = 0.;
          bytes_per_pcb = 0.;
        }
      in
      List.iter
        (fun (nd, r, _) ->
          if strip r <> strip r0 then (
            Format.eprintf
              "FATAL: scale %d-domain transcript diverges@." nd;
            exit 1))
        rest
    | [] -> ());
    let base_wall rows =
      match rows with (_, _, w) :: _ -> w | [] -> 1.
    in
    let oc = open_out out in
    let p fmt = Printf.fprintf oc fmt in
    p "{\n";
    p "  \"benchmark\": \"par\",\n";
    p "  \"cores\": %d,\n" cores;
    p "  \"deterministic\": true,\n";
    p "  \"ttcp\": {\n";
    p "    \"config\": \"%s\",\n" Cfg.library_shm_ipf.Cfg.label;
    p "    \"mb\": %d,\n" mb;
    p "    \"rows\": [\n";
    let n = List.length ttcp_rows in
    List.iteri
      (fun i (nd, (r : W.Ttcp.result), w) ->
        p
          "      {\"domains\": %d, \"kb_per_sec\": %.0f, \"wall_s\": %.3f, \
           \"speedup\": %.2f}%s\n"
          nd r.W.Ttcp.kb_per_sec w
          (base_wall ttcp_rows /. w)
          (if i = n - 1 then "" else ","))
      ttcp_rows;
    p "    ]\n";
    p "  },\n";
    p "  \"scale\": {\n";
    p "    \"conns\": %d,\n" conns;
    p "    \"rows\": [\n";
    let m = List.length scale_rows in
    List.iteri
      (fun i (nd, (r : W.Scale.result), w) ->
        p
          "      {\"domains\": %d, \"echoed\": %d, \"wall_s\": %.3f, \
           \"speedup\": %.2f}%s\n"
          nd r.W.Scale.echoed w
          (base_wall scale_rows /. w)
          (if i = m - 1 then "" else ","))
      scale_rows;
    p "    ]\n";
    p "  }\n";
    p "}\n";
    close_out oc;
    Format.printf "@.wrote %s@." out
  in
  Cmd.v
    (Cmd.info "par"
       ~doc:"Sweep the domain-parallel engine over domain counts \
             (default 1,2,4) on the ttcp and scale workloads, verify \
             every row's virtual-time transcript is bit-identical to \
             the single-domain run, and write wall-clock speedups to \
             BENCH_par.json. Speedup above 1 requires the host to have \
             free cores; the report records the core count.")
    Term.(const run $ domains_arg $ mb_arg $ conns_arg $ out_arg)

let all_cmd =
  let run mb rounds =
    W.Tables.figure1 ();
    W.Tables.table1 ();
    W.Tables.print_rows ~header:"Table 2 — DECstation 5000/200"
      (W.Tables.table2 ~machine:W.Paper.Dec ~mb ~rounds ());
    W.Tables.print_rows ~header:"Table 2 — Gateway 486"
      (W.Tables.table2 ~machine:W.Paper.Gateway ~mb ~rounds ());
    W.Tables.print_rows ~header:"Table 3 — NEWAPI (shared-buffer interface)"
      (W.Tables.table3 ~mb ~rounds ());
    ignore (W.Tables.table4 ~rounds ());
    ignore (W.Ablation.delivery ());
    ignore (W.Ablation.ack_strategy ());
    ignore (W.Ablation.sync_weight ());
    ignore (W.Ablation.migration_cost ());
    List.iter
      (fun config -> ignore (W.Ablation.bufsize_sweep ~mb:(min mb 8) config))
      [ Cfg.mach25_kernel; Cfg.ux_server; Cfg.library_shm_ipf ]
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:"Run every experiment: Figure 1, Tables 1-4 (both machines), \
             ablations and sweeps.")
    Term.(const run $ mb_arg $ rounds_arg)

let main =
  Cmd.group
    (Cmd.info "psd_bench" ~version:"1.0"
       ~doc:
         "Reproduction harness for 'Protocol Service Decomposition for \
          High-Performance Networking' (Maeda & Bershad, SOSP 1993).")
    [
      table1_cmd;
      figure1_cmd;
      table2_cmd;
      table3_cmd;
      table4_cmd;
      sweep_cmd;
      ablation_cmd;
      series_cmd;
      trace_cmd;
      copies_cmd;
      offload_cmd;
      predict_cmd;
      scale_cmd;
      par_cmd;
      all_cmd;
    ]

let () = Stdlib.exit (Cmd.eval main)
